//! Positive sanitizer tests: every stock kernel variant, with the full
//! `sim-check` suite enabled, must come out clean — no lock-order
//! inversions, no empty-lockset races, no happens-before races, no
//! shard-policy violations, no partition-invariant violations, across
//! core counts and seeds.

use fastsocket::{AppSpec, KernelSpec, SimConfig, Simulation};

fn run_checked(kernel: KernelSpec, app: AppSpec, cores: u16, seed: u64) -> fastsocket::RunReport {
    let cfg = SimConfig::new(kernel, app, cores)
        .warmup_secs(0.03)
        .measure_secs(0.12)
        .concurrency(u32::from(cores) * 60)
        .seed(seed)
        .check(true);
    Simulation::new(cfg).run()
}

fn assert_clean(r: &fastsocket::RunReport, what: &str) {
    let checks = r
        .checks
        .as_ref()
        .expect("check(true) must produce a report");
    assert!(
        checks.is_clean(),
        "{what}: sanitizer reported violations: lockdep={} lockset={} hb={} shard={} \
         partition={} invariant={}\n{:#?}",
        checks.lockdep,
        checks.lockset,
        checks.hb,
        checks.shard,
        checks.partition,
        checks.invariant,
        checks.diagnostics,
    );
}

#[test]
fn every_stock_kernel_is_clean_on_the_web_workload() {
    for kernel in [
        KernelSpec::BaseLinux,
        KernelSpec::Linux313,
        KernelSpec::Fastsocket,
    ] {
        for cores in [1, 2, 4, 8] {
            let label = kernel.label();
            let r = run_checked(kernel.clone(), AppSpec::web(), cores, 0xfa57_50c7);
            assert_clean(&r, &format!("{label} web x{cores}"));
            assert!(r.completed > 0, "{label} x{cores} made no progress");
        }
    }
}

#[test]
fn every_stock_kernel_is_clean_on_the_proxy_workload() {
    // The proxy drives the active-connect side (RFD steering, per-core
    // ports), which the web workload never exercises.
    for kernel in [
        KernelSpec::BaseLinux,
        KernelSpec::Linux313,
        KernelSpec::Fastsocket,
    ] {
        let label = kernel.label();
        let r = run_checked(kernel.clone(), AppSpec::proxy(), 6, 0xfa57_50c7);
        assert_clean(&r, &format!("{label} proxy x6"));
        assert!(r.completed > 0, "{label} proxy made no progress");
    }
}

#[test]
fn stock_kernels_stay_clean_across_seeds() {
    for seed in [1, 7, 0xdead_beef] {
        let r = run_checked(KernelSpec::Fastsocket, AppSpec::web(), 4, seed);
        assert_clean(&r, &format!("fastsocket web seed {seed:#x}"));
        let r = run_checked(KernelSpec::BaseLinux, AppSpec::web(), 4, seed);
        assert_clean(&r, &format!("base web seed {seed:#x}"));
    }
}

#[test]
fn single_core_runs_can_never_race() {
    // With one core every object stays in the lockset detector's
    // exclusive state forever; whatever the schedule, no race report is
    // possible — and nothing else may fire either.
    for seed in [0, 3, 99, 0x5eed] {
        for kernel in [KernelSpec::BaseLinux, KernelSpec::Fastsocket] {
            let label = kernel.label();
            let r = run_checked(kernel.clone(), AppSpec::web(), 1, seed);
            let checks = r.checks.as_ref().unwrap();
            assert_eq!(
                checks.lockset, 0,
                "{label} single-core seed {seed}: impossible race\n{:#?}",
                checks.diagnostics
            );
            assert_clean(&r, &format!("{label} single-core seed {seed}"));
        }
    }
}

#[test]
fn shard_report_digests_are_bit_identical_across_doubled_runs() {
    // The shard certifier's inventory is part of the determinism
    // contract: the same seed must reproduce the exact same ownership
    // history — every object count, every cross-core edge, every
    // witness site — on all three kernels.
    for kernel in [
        KernelSpec::BaseLinux,
        KernelSpec::Linux313,
        KernelSpec::Fastsocket,
    ] {
        let label = kernel.label();
        let digest = |r: &fastsocket::RunReport| {
            r.checks
                .as_ref()
                .and_then(|c| c.shard_report.as_ref())
                .expect("enabled checker must emit a shard report")
                .digest()
        };
        let a = run_checked(kernel.clone(), AppSpec::web(), 4, 0x5eed);
        let b = run_checked(kernel.clone(), AppSpec::web(), 4, 0x5eed);
        assert_eq!(
            digest(&a),
            digest(&b),
            "{label}: doubled same-seed runs must produce bit-identical shard reports"
        );
        // And the report is non-trivial: connections were tracked.
        let rep = a.checks.as_ref().unwrap().shard_report.as_ref().unwrap();
        assert!(
            rep.kind(sim_mem::ObjKind::Tcb).is_some(),
            "{label}: shard report must classify TCBs\n{rep:#?}"
        );
    }
}

#[test]
fn disabled_checker_reports_nothing() {
    let cfg = SimConfig::new(KernelSpec::Fastsocket, AppSpec::web(), 2)
        .warmup_secs(0.03)
        .measure_secs(0.1)
        .concurrency(120)
        .check(false);
    let r = Simulation::new(cfg).run();
    assert!(r.checks.is_none(), "disabled checker must not report");
}
