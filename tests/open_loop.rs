//! Open-loop workload gates: closed-loop digests must not move, and
//! same-seed open-loop runs must be bit-identical — across scheduler
//! backends, across repeated runs, and under keep-alive sessions.
//!
//! The golden digests below were captured from the tree *before* the
//! open-loop engine existed. They pin the promise that `sim-load` is
//! purely additive: every closed-loop figure reproduces byte-for-byte.

use fastsocket::{
    AppSpec, ArrivalProcess, KernelSpec, MmppPhase, OpenLoopConfig, SessionDist, SimConfig,
    Simulation,
};
use proptest::prelude::*;
use sim_core::SchedulerKind;

/// The exact closed-loop cells whose digests were pinned from the seed
/// tree (8-core web sweep plus a 4-core proxy cell).
fn golden_cell(kernel: KernelSpec, app: AppSpec, cores: u16) -> SimConfig {
    SimConfig::new(kernel, app, cores)
        .warmup_secs(0.02)
        .measure_secs(0.06)
        .concurrency(u32::from(cores) * 60)
}

#[test]
fn closed_loop_golden_digests_are_unchanged() {
    let golden: [(KernelSpec, AppSpec, u16, &str, &str); 4] = [
        (
            KernelSpec::BaseLinux,
            AppSpec::web(),
            8,
            "b1d753914e2879db",
            "10b3cea4bd68edc2",
        ),
        (
            KernelSpec::Linux313,
            AppSpec::web(),
            8,
            "31154f95822d4911",
            "a61bd7f749e70c32",
        ),
        (
            KernelSpec::Fastsocket,
            AppSpec::web(),
            8,
            "271027ae3854ba79",
            "ad52d456c616c3da",
        ),
        (
            KernelSpec::Fastsocket,
            AppSpec::proxy(),
            4,
            "971740e01fc5c30a",
            "914a66b7635e033f",
        ),
    ];
    for (kernel, app, cores, cfg_digest, report_digest) in golden {
        let label = kernel.label();
        let app_label = app.label();
        let cfg = golden_cell(kernel, app, cores);
        assert_eq!(
            cfg.config_digest(),
            cfg_digest,
            "config digest moved: {label}/{app_label}"
        );
        let r = Simulation::new(cfg).run();
        assert_eq!(
            r.results_digest(),
            report_digest,
            "results digest moved: {label}/{app_label}"
        );
        assert!(r.load.is_none(), "closed loop must not report load");
    }
}

fn open_cell(rate_cps: f64, seed: u64) -> SimConfig {
    SimConfig::new(KernelSpec::Fastsocket, AppSpec::web(), 2)
        .warmup_secs(0.02)
        .measure_secs(0.08)
        .seed(seed)
        .open_loop(OpenLoopConfig::poisson(rate_cps).population(400))
}

#[test]
fn same_seed_open_loop_runs_are_bit_identical() {
    let a = Simulation::new(open_cell(30_000.0, 7)).run();
    let b = Simulation::new(open_cell(30_000.0, 7)).run();
    assert_eq!(a.results_digest(), b.results_digest());
    let (la, lb) = (a.load.unwrap(), b.load.unwrap());
    assert_eq!(la.schedule_digest, lb.schedule_digest);
    assert_eq!(la, lb);
    // And a different seed forks the schedule.
    let c = Simulation::new(open_cell(30_000.0, 8)).run();
    assert_ne!(
        la.schedule_digest,
        c.load.unwrap().schedule_digest,
        "seed must drive the arrival schedule"
    );
}

#[test]
fn open_loop_offers_the_configured_rate() {
    let r = Simulation::new(open_cell(30_000.0, 3)).run();
    let load = r.load.expect("open-loop run reports load");
    // 0.1 s at 30K cps ⇒ ~3000 arrivals (±4σ ≈ ±220).
    assert!(
        (2_700..=3_300).contains(&load.offered),
        "offered {} out of range",
        load.offered
    );
    assert!(load.admitted > 0);
    assert!(
        load.offered >= load.admitted,
        "cannot admit more than offered"
    );
    // The server keeps up at this rate: nearly everything completes.
    assert!(
        load.completed_sessions * 10 >= load.admitted * 9,
        "completed {} of {} admitted",
        load.completed_sessions,
        load.admitted
    );
}

#[test]
fn keep_alive_sessions_multiply_requests_over_connections() {
    let cfg = SimConfig::new(KernelSpec::Fastsocket, AppSpec::web(), 2)
        .warmup_secs(0.02)
        .measure_secs(0.08)
        .open_loop(
            OpenLoopConfig::poisson(12_000.0)
                .population(400)
                .session(SessionDist::Fixed(4)),
        );
    let r = Simulation::new(cfg).run();
    assert!(r.completed > 0, "sessions must complete");
    assert!(
        r.requests_per_sec > 3.0 * r.throughput_cps,
        "4-request sessions: {} req/s vs {} cps",
        r.requests_per_sec,
        r.throughput_cps
    );
}

#[test]
fn proxy_serves_open_loop_keep_alive_sessions() {
    let cfg = SimConfig::new(KernelSpec::Fastsocket, AppSpec::proxy(), 2)
        .warmup_secs(0.02)
        .measure_secs(0.08)
        .open_loop(
            OpenLoopConfig::poisson(6_000.0)
                .population(300)
                .session(SessionDist::Fixed(3)),
        );
    let r = Simulation::new(cfg).run();
    assert!(r.completed > 0, "proxy sessions must complete");
    assert!(
        r.requests_per_sec > 2.0 * r.throughput_cps,
        "3-request proxy sessions: {} req/s vs {} cps",
        r.requests_per_sec,
        r.throughput_cps
    );
    assert!(r.stack.active_established > 0, "backend conns happened");
}

#[test]
fn mmpp_bursts_overflow_a_small_population() {
    // A flash crowd against a tiny population: the burst phase must
    // overflow into the admission backlog (and some arrivals abandon),
    // which the closed loop structurally cannot express.
    let cfg = SimConfig::new(KernelSpec::BaseLinux, AppSpec::web(), 1)
        .warmup_secs(0.0)
        .measure_secs(0.12)
        .open_loop(
            OpenLoopConfig::mmpp(vec![
                MmppPhase {
                    rate_cps: 2_000.0,
                    mean_dwell_secs: 0.02,
                },
                MmppPhase {
                    rate_cps: 150_000.0,
                    mean_dwell_secs: 0.01,
                },
            ])
            .population(64)
            .patience_secs(0.01),
        );
    let r = Simulation::new(cfg).run();
    let load = r.load.unwrap();
    assert!(load.peak_backlog > 0, "burst should overflow the slots");
    assert!(
        load.abandoned_wait > 0,
        "short patience should shed backlog"
    );
}

#[test]
fn queue_wait_is_charged_to_setup_latency() {
    // Coordinated omission gate: identical load, but a starved
    // population forces arrivals through the admission backlog. The
    // pre-marked scheduled arrival time must charge that wait to setup
    // latency, so the starved run's p99 is far above the roomy run's.
    let run = |population: u32| {
        let cfg = SimConfig::new(KernelSpec::Fastsocket, AppSpec::web(), 2)
            .warmup_secs(0.0)
            .measure_secs(0.08)
            .trace(true)
            .open_loop(
                OpenLoopConfig::poisson(40_000.0)
                    .population(population)
                    .patience_secs(10.0),
            );
        Simulation::new(cfg).run()
    };
    let roomy = run(800);
    let starved = run(4);
    assert!(
        starved.load.as_ref().unwrap().queued_admissions > 0,
        "population 4 at 40K cps must queue admissions"
    );
    let roomy_p99 = roomy.latency.as_ref().unwrap().setup.p99_us;
    let starved_p99 = starved.latency.as_ref().unwrap().setup.p99_us;
    assert!(
        starved_p99 > 10.0 * roomy_p99,
        "queue wait missing from setup latency: starved p99 {starved_p99}µs \
         vs roomy p99 {roomy_p99}µs"
    );
}

proptest! {
    /// Same seed ⇒ bit-identical results and arrival-schedule digests
    /// across event-queue backends, and the schedule digest depends
    /// only on the seed and workload — never on the kernel under test
    /// (the offered load is identical for every column of a capacity
    /// table).
    #[test]
    fn open_loop_digests_are_scheduler_and_kernel_invariant(
        seed in 0u64..1_000,
        kernel_pick in 0u8..3,
        rate in 2_000f64..8_000f64,
    ) {
        let kernel = match kernel_pick {
            0 => KernelSpec::BaseLinux,
            1 => KernelSpec::Linux313,
            _ => KernelSpec::Fastsocket,
        };
        let cell = |kernel: KernelSpec, sched: SchedulerKind| {
            let cfg = SimConfig::new(kernel, AppSpec::web(), 1)
                .warmup_secs(0.005)
                .measure_secs(0.02)
                .seed(seed)
                .scheduler(sched)
                .open_loop(OpenLoopConfig::poisson(rate).population(100));
            Simulation::new(cfg).run()
        };
        let wheel = cell(kernel.clone(), SchedulerKind::Wheel);
        let heap = cell(kernel.clone(), SchedulerKind::Heap);
        prop_assert_eq!(wheel.results_digest(), heap.results_digest());
        let wheel_sched = wheel.load.unwrap().schedule_digest;
        prop_assert_eq!(&wheel_sched, &heap.load.unwrap().schedule_digest);
        // A different kernel serves the identical arrival schedule.
        let other = match kernel {
            KernelSpec::BaseLinux => KernelSpec::Fastsocket,
            _ => KernelSpec::BaseLinux,
        };
        let cross = cell(other, SchedulerKind::Wheel);
        prop_assert_eq!(&wheel_sched, &cross.load.unwrap().schedule_digest);
    }
}
