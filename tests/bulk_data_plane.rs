//! Data-plane determinism gates: with the sliding-window data plane
//! armed, same-seed runs must stay bit-identical per congestion
//! controller, and the three controllers must be distinguishable in
//! the results — same seed, same offered work, different dynamics.
//!
//! The closed-loop golden digests in `open_loop.rs` already pin that
//! an *unarmed* data plane changes nothing; this file covers the
//! armed side.

use fastsocket::{AppSpec, DataPlaneConfig, KernelSpec, SimConfig, Simulation};
use sim_nic::BatchConfig;
use tcp_stack::CcAlgo;

fn bulk_cell(cc: CcAlgo) -> SimConfig {
    SimConfig::new(KernelSpec::Fastsocket, AppSpec::web(), 2)
        .warmup_secs(0.01)
        .measure_secs(0.03)
        .seed(7)
        .data_plane(DataPlaneConfig {
            cc,
            response_bytes: 49_152,
            batch: BatchConfig::offload(),
            ..DataPlaneConfig::default()
        })
}

#[test]
fn same_seed_bulk_runs_are_bit_identical_per_controller() {
    let mut digests = Vec::new();
    for cc in CcAlgo::ALL {
        let a = Simulation::new(bulk_cell(cc)).run();
        let b = Simulation::new(bulk_cell(cc)).run();
        assert_eq!(
            a.results_digest(),
            b.results_digest(),
            "{}: same-seed bulk reruns diverged",
            cc.name()
        );
        let bulk = a.bulk.as_ref().expect("data plane was armed");
        assert_eq!(bulk.cc, cc.name());
        assert!(
            bulk.payload_bytes > 0 && bulk.goodput_gbps > 0.0,
            "{}: no payload streamed",
            cc.name()
        );
        digests.push((cc.name(), a.results_digest()));
    }
    for i in 0..digests.len() {
        for j in i + 1..digests.len() {
            assert_ne!(
                digests[i].1, digests[j].1,
                "controllers {} and {} produced identical runs",
                digests[i].0, digests[j].0
            );
        }
    }
}

#[test]
fn proxy_bulk_relay_streams_and_stays_deterministic() {
    let cell = || {
        SimConfig::new(KernelSpec::Fastsocket, AppSpec::proxy(), 2)
            .warmup_secs(0.01)
            .measure_secs(0.03)
            .seed(11)
            .data_plane(DataPlaneConfig {
                cc: CcAlgo::NewReno,
                response_bytes: 24_576,
                ..DataPlaneConfig::default()
            })
    };
    let a = Simulation::new(cell()).run();
    let b = Simulation::new(cell()).run();
    assert_eq!(
        a.results_digest(),
        b.results_digest(),
        "same-seed proxy bulk reruns diverged"
    );
    let bulk = a.bulk.as_ref().expect("data plane was armed");
    assert!(
        bulk.payload_bytes > 0,
        "proxy relayed no bulk payload: {bulk:?}"
    );
    assert!(a.throughput_cps > 0.0, "proxy served no exchanges");
}
