//! Negative sanitizer tests: each fault-injection knob must trigger
//! exactly its own detector class, with the right lock classes /
//! object kinds in the report — proving the detectors actually detect
//! and do not merely stay silent.

use fastsocket::{AppSpec, FaultInjection, KernelSpec, SimConfig, Simulation};
use sim_check::CheckReport;

fn run_faulty(kernel: KernelSpec, app: AppSpec, cores: u16, fault: FaultInjection) -> CheckReport {
    let cfg = SimConfig::new(kernel, app, cores)
        .warmup_secs(0.03)
        .measure_secs(0.12)
        .concurrency(u32::from(cores) * 60)
        .check(true)
        .fault(fault);
    Simulation::new(cfg)
        .run()
        .checks
        .expect("check(true) must produce a report")
}

fn subjects(checks: &CheckReport) -> Vec<&str> {
    checks
        .diagnostics
        .iter()
        .map(|v| v.subject.as_str())
        .collect()
}

#[test]
fn skip_slock_triggers_the_lockset_race_detector() {
    let checks = run_faulty(
        KernelSpec::BaseLinux,
        AppSpec::web(),
        4,
        FaultInjection::SkipSlock,
    );
    assert!(
        checks.lockset > 0,
        "softirq writing TCP state without the slock must race\n{:#?}",
        checks.diagnostics
    );
    assert_eq!(checks.lockdep, 0, "no lock-order fault was injected");
    let subj = subjects(&checks);
    assert!(
        subj.iter().any(|s| *s == "sock_buf" || *s == "tcb"),
        "race must be on connection state, got {subj:?}"
    );
    // The witness must span two distinct cores — a single-core "race"
    // would be a detector bug.
    let race = checks
        .diagnostics
        .iter()
        .find(|v| v.subject == "sock_buf" || v.subject == "tcb")
        .unwrap();
    assert_eq!(race.cores.len(), 2, "two witness cores: {race:#?}");
    assert_ne!(race.cores[0], race.cores[1], "distinct cores: {race:#?}");
}

#[test]
fn reversed_lock_order_triggers_lockdep() {
    let checks = run_faulty(
        KernelSpec::BaseLinux,
        AppSpec::web(),
        4,
        FaultInjection::ReverseLockOrder,
    );
    assert!(
        checks.lockdep > 0,
        "base.lock-then-slock inverts the stock slock-then-base.lock order\n{:#?}",
        checks.diagnostics
    );
    let inversion = checks
        .diagnostics
        .iter()
        .find(|v| v.detector == sim_check::Detector::Lockdep)
        .expect("a lockdep diagnostic must be recorded");
    assert!(
        inversion.subject.contains("slock") && inversion.subject.contains("base.lock"),
        "the cycle must involve slock and base.lock: {inversion:#?}"
    );
}

#[test]
fn missteered_packets_trigger_the_rfd_delivery_lint() {
    let checks = run_faulty(
        KernelSpec::Fastsocket,
        AppSpec::proxy(),
        4,
        FaultInjection::MisSteer,
    );
    assert!(
        checks.partition > 0,
        "packets steered to the wrong core must be linted\n{:#?}",
        checks.diagnostics
    );
    assert!(
        subjects(&checks).contains(&"rfd_delivery"),
        "wrong lint class: {:?}",
        subjects(&checks)
    );
    assert_eq!(checks.lockset, 0, "mis-steering alone must not race");
}

#[test]
fn cross_core_accept_triggers_the_local_listen_lint() {
    let checks = run_faulty(
        KernelSpec::Fastsocket,
        AppSpec::web(),
        4,
        FaultInjection::CrossCoreAccept,
    );
    assert!(
        checks.partition > 0,
        "accepting from another core's local listen table must be linted\n{:#?}",
        checks.diagnostics
    );
    assert!(
        subjects(&checks).contains(&"local_listen"),
        "wrong lint class: {:?}",
        subjects(&checks)
    );
}

#[test]
fn cross_core_timer_triggers_the_timer_base_lint() {
    let checks = run_faulty(
        KernelSpec::Fastsocket,
        AppSpec::web(),
        4,
        FaultInjection::CrossCoreTimer,
    );
    assert!(
        checks.partition > 0,
        "modifying another core's timer wheel must be linted\n{:#?}",
        checks.diagnostics
    );
    assert!(
        subjects(&checks).contains(&"timer_base"),
        "wrong lint class: {:?}",
        subjects(&checks)
    );
}

#[test]
fn silent_handoff_triggers_exactly_the_happens_before_detector() {
    // Two remote cores write a fresh socket buffer with no connecting
    // synchronization channel. The lockset detector is structurally
    // blind to it (first write exclusive, second write holds a lock),
    // so a report can only come from the vector clocks.
    let checks = run_faulty(
        KernelSpec::BaseLinux,
        AppSpec::web(),
        4,
        FaultInjection::SilentHandoff,
    );
    assert_eq!(
        checks.hb, 1,
        "the unsynchronized handoff must race exactly once\n{:#?}",
        checks.diagnostics
    );
    assert_eq!(checks.lockset, 0, "the lockset detector cannot see it");
    assert_eq!(checks.lockdep, 0, "no ordering fault was injected");
    assert_eq!(checks.shard, 0, "a one-way migration breaks no shard bound");
    assert_eq!(checks.partition, 0, "no partition lint is involved");
    assert_eq!(checks.invariant, 0, "no table invariant is involved");
    let race = checks
        .diagnostics
        .iter()
        .find(|v| v.detector == sim_check::Detector::Hb)
        .expect("an hb diagnostic must be recorded");
    assert_eq!(race.subject, "sock_buf", "the racing object kind is named");
    assert_eq!(race.cores.len(), 2, "both witness cores: {race:#?}");
    assert_ne!(race.cores[0], race.cores[1], "distinct cores: {race:#?}");
    assert!(
        race.detail.contains("no happens-before edge"),
        "actionable detail: {race:#?}"
    );
}

#[test]
fn owner_ping_pong_triggers_exactly_the_shard_certifier() {
    // A remote core takes an established connection's socket lock and
    // writes its buffer; the owning core writes it again right after.
    // Every write is locked (lockset clean) and channel-ordered (hb
    // clean) — only the ownership history shows the ping-pong.
    let checks = run_faulty(
        KernelSpec::Fastsocket,
        AppSpec::web(),
        4,
        FaultInjection::OwnerPingPong,
    );
    assert!(
        checks.shard > 0,
        "bounced buffer ownership must break the migrated-once bound\n{:#?}",
        checks.diagnostics
    );
    assert_eq!(checks.hb, 0, "the locked handoff is fully ordered");
    assert_eq!(checks.lockset, 0, "every write held the socket lock");
    assert_eq!(checks.lockdep, 0, "no ordering fault was injected");
    assert_eq!(checks.partition, 0, "no partition lint is involved");
    assert_eq!(checks.invariant, 0, "no table invariant is involved");
    let v = checks
        .diagnostics
        .iter()
        .find(|v| v.detector == sim_check::Detector::Shard)
        .expect("a shard diagnostic must be recorded");
    assert_eq!(v.subject, "sock_buf");
    assert!(
        v.detail.contains("shared") && v.detail.contains("migrated"),
        "class and bound are named: {v:#?}"
    );
}

#[test]
fn faults_without_check_cost_nothing_and_report_nothing() {
    // The knobs perturb behavior but the sanitizer layer stays dark when
    // disabled — the run must still complete and report no checks.
    let cfg = SimConfig::new(KernelSpec::BaseLinux, AppSpec::web(), 2)
        .warmup_secs(0.03)
        .measure_secs(0.08)
        .concurrency(120)
        .fault(FaultInjection::SkipSlock)
        .check(false);
    let r = Simulation::new(cfg).run();
    assert!(r.checks.is_none());
    assert!(r.completed > 0);
}
