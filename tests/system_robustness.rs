//! Whole-system robustness and reproducibility tests.

use fastsocket::{AppSpec, KernelSpec, SimConfig, Simulation};
use sim_core::CoreId;

#[test]
fn determinism_across_identical_runs() {
    let mk = || {
        let cfg = SimConfig::new(KernelSpec::Fastsocket, AppSpec::proxy(), 4)
            .warmup_secs(0.02)
            .measure_secs(0.08)
            .concurrency(160)
            .seed(12345);
        Simulation::new(cfg).run()
    };
    let a = mk();
    let b = mk();
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.events, b.events);
    assert_eq!(a.stack.passive_established, b.stack.passive_established);
    for (la, lb) in a.locks.iter().zip(&b.locks) {
        assert_eq!(la.contentions, lb.contentions, "{}", la.name);
    }
}

#[test]
fn different_seeds_change_microstate_not_shape() {
    let mk = |seed| {
        let cfg = SimConfig::new(KernelSpec::Fastsocket, AppSpec::web(), 4)
            .warmup_secs(0.02)
            .measure_secs(0.1)
            .concurrency(160)
            .seed(seed);
        Simulation::new(cfg).run()
    };
    let a = mk(1);
    let b = mk(2);
    let ratio = a.throughput_cps / b.throughput_cps;
    assert!(
        (0.9..1.1).contains(&ratio),
        "seeds should only perturb noise: {ratio}"
    );
}

#[test]
fn worker_crash_mid_run_does_not_reset_clients() {
    // Kill one worker's local listen socket mid-simulation; the global
    // fallback must keep accepting its core's connections (Figure 2's
    // slow path at system scale).
    let cfg = SimConfig::new(KernelSpec::Fastsocket, AppSpec::web(), 4)
        .warmup_secs(0.02)
        .measure_secs(0.1)
        .concurrency(120);
    let mut sim = Simulation::new(cfg);
    sim.crash_worker(CoreId(2));
    let r = sim.run();
    assert_eq!(r.resets, 0, "no client may be refused: {r:?}");
    assert!(r.completed > 500);
    assert!(
        r.stack.accepts_global > 0,
        "core 2's connections must flow through the global queue"
    );
    assert!(r.stack.accepts_local > 0, "other cores use the fast path");
}

#[test]
fn utilization_is_balanced_under_fastsocket_but_not_base() {
    let mk = |kernel| {
        let cfg = SimConfig::new(kernel, AppSpec::proxy(), 8)
            .warmup_secs(0.05)
            .measure_secs(0.15)
            .concurrency(400)
            .think_secs(0.004) // partial load, where imbalance shows
            .seed(3);
        Simulation::new(cfg).run()
    };
    let base = mk(KernelSpec::BaseLinux);
    let fs = mk(KernelSpec::Fastsocket);
    let (bmin, bmax) = base.utilization_spread();
    let (fmin, fmax) = fs.utilization_spread();
    let base_spread = bmax - bmin;
    let fs_spread = fmax - fmin;
    assert!(
        fs_spread < base_spread,
        "fastsocket must balance better: base {base_spread:.3} vs fs {fs_spread:.3}"
    );
    assert!(
        fs_spread < 0.05,
        "fastsocket cores stay within 5pp: {fs_spread:.3}"
    );
}

#[test]
fn kernel_resources_are_reclaimed() {
    // After thousands of completed connections, live sockets must be
    // bounded by listen sockets + in-flight connections — a
    // per-connection leak would scale with completions.
    for kernel in [KernelSpec::BaseLinux, KernelSpec::Fastsocket] {
        let concurrency = 60;
        let cfg = SimConfig::new(kernel, AppSpec::web(), 2)
            .warmup_secs(0.02)
            .measure_secs(0.1)
            .concurrency(concurrency);
        let r = Simulation::new(cfg).run();
        assert!(r.completed > 1_000, "{}", r.kernel);
        // Listen sockets (≤ 1 global + 2 local) + at most one socket
        // per concurrent client + TIME_WAIT stragglers.
        let bound = 3 + 2 * concurrency + 64;
        assert!(
            r.live_sockets <= bound,
            "{}: {} live sockets after {} connections (bound {bound})",
            r.kernel,
            r.live_sockets,
            r.completed
        );
    }
}
