//! Whole-system robustness and reproducibility tests.

use fastsocket::{AppSpec, FaultSchedule, KernelSpec, SimConfig, Simulation};
use sim_core::{secs_to_cycles, CoreId};

#[test]
fn determinism_across_identical_runs() {
    let mk = || {
        let cfg = SimConfig::new(KernelSpec::Fastsocket, AppSpec::proxy(), 4)
            .warmup_secs(0.02)
            .measure_secs(0.08)
            .concurrency(160)
            .seed(12345);
        Simulation::new(cfg).run()
    };
    let a = mk();
    let b = mk();
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.events, b.events);
    assert_eq!(a.stack.passive_established, b.stack.passive_established);
    for (la, lb) in a.locks.iter().zip(&b.locks) {
        assert_eq!(la.contentions, lb.contentions, "{}", la.name);
    }
}

#[test]
fn different_seeds_change_microstate_not_shape() {
    let mk = |seed| {
        let cfg = SimConfig::new(KernelSpec::Fastsocket, AppSpec::web(), 4)
            .warmup_secs(0.02)
            .measure_secs(0.1)
            .concurrency(160)
            .seed(seed);
        Simulation::new(cfg).run()
    };
    let a = mk(1);
    let b = mk(2);
    let ratio = a.throughput_cps / b.throughput_cps;
    assert!(
        (0.9..1.1).contains(&ratio),
        "seeds should only perturb noise: {ratio}"
    );
}

#[test]
fn worker_crash_mid_run_does_not_reset_clients() {
    // Kill one worker's local listen socket mid-simulation; the global
    // fallback must keep accepting its core's connections (Figure 2's
    // slow path at system scale).
    let cfg = SimConfig::new(KernelSpec::Fastsocket, AppSpec::web(), 4)
        .warmup_secs(0.02)
        .measure_secs(0.1)
        .concurrency(120);
    let mut sim = Simulation::new(cfg);
    sim.crash_worker(CoreId(2));
    let r = sim.run();
    assert_eq!(r.resets, 0, "no client may be refused: {r:?}");
    assert!(r.completed > 500);
    assert!(
        r.stack.accepts_global > 0,
        "core 2's connections must flow through the global queue"
    );
    assert!(r.stack.accepts_local > 0, "other cores use the fast path");

    // The contrast: Linux 3.13's SO_REUSEPORT has no fallback. Killing
    // a worker mid-run strands its reuseport copy's queued connections,
    // and the kernel answers them with RST — clients observe resets.
    let crash_at = secs_to_cycles(0.05);
    let cfg = SimConfig::new(KernelSpec::Linux313, AppSpec::web(), 4)
        .warmup_secs(0.02)
        .measure_secs(0.1)
        .concurrency(120)
        .client_timeout_secs(0.04)
        .faults(FaultSchedule::new().worker_crash(crash_at, None, 2));
    let r313 = Simulation::new(cfg).run();
    assert!(
        r313.resets > 0,
        "SO_REUSEPORT must reset the crashed worker's connections: {:?}",
        r313.robustness
    );
    let rec = &r313.robustness.as_ref().unwrap().faults[0];
    assert_eq!(rec.kind, "worker_crash");
    assert!(
        rec.resets_during > 0,
        "the resets must land inside the fault window: {rec:?}"
    );
}

#[test]
fn scheduled_worker_crash_and_restart_recovers() {
    // The tentpole scenario: a Fastsocket worker dies mid-run and
    // restarts. The local listen table migrates its embryos and queued
    // connections to the global fallback (zero refusals, zero resets),
    // and windowed sampling must show throughput back at ≥90% of the
    // pre-fault baseline after the restart.
    let crash_at = secs_to_cycles(0.05);
    let heal_at = secs_to_cycles(0.08);
    let cfg = SimConfig::new(KernelSpec::Fastsocket, AppSpec::web(), 4)
        .warmup_secs(0.02)
        .measure_secs(0.15)
        .concurrency(120)
        .client_timeout_secs(0.04)
        .faults(
            FaultSchedule::new()
                .worker_crash(crash_at, Some(heal_at), 2)
                .sample_every(secs_to_cycles(0.005)),
        );
    let r = Simulation::new(cfg).run();
    // Connections in flight on the dying worker at the crash instant
    // can be lost (a handful); the listen path itself loses nothing.
    assert!(
        r.resets <= 10,
        "only in-flight conns of the dead worker may reset: {}",
        r.resets
    );
    let rob = r
        .robustness
        .as_ref()
        .expect("fault schedule => robustness report");
    assert!(!rob.samples.is_empty());
    let rec = &rob.faults[0];
    assert_eq!(rec.kind, "worker_crash");
    assert!(rec.baseline_cps > 0.0, "{rec:?}");
    assert_eq!(rec.refusals_during, 0, "no SYN may be refused: {rec:?}");
    assert!(
        rec.time_to_recover.is_some(),
        "throughput must return to 90% of baseline after restart: {rec:?}"
    );
    assert!(
        r.stack.accepts_global > 0,
        "migrated connections flow through the global queue"
    );
}

#[test]
fn loss_sweep_degrades_monotonically_and_stays_deterministic() {
    // Loss on the client wire costs throughput monotonically; RTO
    // retransmission recovers every connection (no resets), and the
    // whole run stays bit-reproducible under loss.
    let mk = |loss: f64| {
        let cfg = SimConfig::new(KernelSpec::Fastsocket, AppSpec::web(), 2)
            .warmup_secs(0.02)
            .measure_secs(0.1)
            .concurrency(60)
            .client_timeout_secs(0.2)
            .seed(7)
            .loss(loss);
        Simulation::new(cfg).run()
    };
    let sweep: Vec<_> = [0.0, 0.005, 0.02, 0.05].iter().map(|&l| mk(l)).collect();
    for pair in sweep.windows(2) {
        assert!(
            pair[1].throughput_cps <= pair[0].throughput_cps * 1.02,
            "more loss must not raise throughput: {} -> {}",
            pair[0].throughput_cps,
            pair[1].throughput_cps
        );
    }
    assert!(
        sweep[3].throughput_cps < sweep[0].throughput_cps * 0.9,
        "5% loss must cost >10%: {} vs {}",
        sweep[3].throughput_cps,
        sweep[0].throughput_cps
    );
    assert_eq!(sweep[0].stack.retransmits, 0);
    for r in &sweep[1..] {
        assert!(r.stack.retransmits > 0, "loss must exercise the RTO path");
    }
    // Same seed, same loss => bit-identical results.
    assert_eq!(mk(0.02).results_digest(), sweep[2].results_digest());
}

#[test]
fn syn_flood_cookies_preserve_goodput() {
    // A spoofed SYN flood overflows a small backlog. With SYN cookies
    // the server still answers legitimate clients statelessly; with
    // cookies off, legitimate SYNs are dropped on the floor and
    // goodput collapses.
    let mk = |cookies: bool| {
        let flood_at = secs_to_cycles(0.04);
        let heal_at = secs_to_cycles(0.1);
        let mut cfg = SimConfig::new(KernelSpec::Fastsocket, AppSpec::web(), 2)
            .warmup_secs(0.02)
            .measure_secs(0.12)
            .concurrency(60)
            .client_timeout_secs(0.05)
            .syn_cookies(cookies)
            .faults(
                FaultSchedule::new()
                    .syn_flood(flood_at, Some(heal_at), 6)
                    .sample_every(secs_to_cycles(0.005)),
            );
        cfg.backlog = 128;
        Simulation::new(cfg).run()
    };
    let with = mk(true);
    let without = mk(false);
    assert!(
        with.stack.syn_cookies_sent > 0,
        "flood must trigger cookies"
    );
    assert!(
        with.stack.syn_cookies_ok > 0,
        "legitimate clients must complete via cookies"
    );
    assert_eq!(without.stack.syn_cookies_sent, 0);
    assert!(
        without.stack.syn_drops > 0,
        "cookie-less backlog overflow drops SYNs"
    );
    let rec_with = &with.robustness.as_ref().unwrap().faults[0];
    let rec_without = &without.robustness.as_ref().unwrap().faults[0];
    assert!(
        rec_with.degraded_cps > rec_without.degraded_cps,
        "cookies must preserve goodput under flood: {} vs {}",
        rec_with.degraded_cps,
        rec_without.degraded_cps
    );
}

#[test]
fn tcb_cap_sheds_flood_by_admission_control() {
    // Memory pressure: a TCB cap keeps a flood from exhausting socket
    // memory — excess SYNs are dropped by admission control and counted.
    let cfg = SimConfig::new(KernelSpec::Fastsocket, AppSpec::web(), 2)
        .warmup_secs(0.02)
        .measure_secs(0.08)
        .concurrency(40)
        .client_timeout_secs(0.05)
        .tcb_cap(96)
        .faults(FaultSchedule::new().syn_flood(secs_to_cycles(0.04), None, 6))
        .seed(11);
    let r = Simulation::new(cfg).run();
    assert!(
        r.stack.mem_pressure_drops > 0,
        "the cap must shed flood SYNs: {:?}",
        r.stack
    );
    assert!(
        r.live_sockets <= 96 + 3,
        "live TCBs stay capped (plus listen sockets): {}",
        r.live_sockets
    );
    let rec = &r.robustness.as_ref().unwrap().faults[0];
    assert!(
        rec.refusals_during > 0,
        "drops must appear in the fault record"
    );
}

#[test]
fn core_stall_degrades_then_recovers() {
    // Softirq starvation on one core: its connections stall, the other
    // cores keep serving, and throughput recovers once the core heals.
    let stall_at = secs_to_cycles(0.05);
    let heal_at = secs_to_cycles(0.08);
    let cfg = SimConfig::new(KernelSpec::Fastsocket, AppSpec::web(), 4)
        .warmup_secs(0.02)
        .measure_secs(0.15)
        .concurrency(120)
        .faults(
            FaultSchedule::new()
                .core_stall(stall_at, Some(heal_at), 1)
                .sample_every(secs_to_cycles(0.005)),
        );
    let r = Simulation::new(cfg).run();
    let rec = &r.robustness.as_ref().unwrap().faults[0];
    assert!(
        rec.degradation_depth > 0.1,
        "a stalled core must dent throughput: {rec:?}"
    );
    assert!(
        rec.time_to_recover.is_some(),
        "throughput must recover after the stall: {rec:?}"
    );
    assert_eq!(r.resets, 0, "a stall delays, it does not reset");
}

#[test]
fn queue_failure_resteers_without_resets() {
    // An RX queue dies; the NIC re-steers its traffic to a survivor.
    // RFD re-delivers established-connection packets to their owner
    // cores in software, so nothing is lost — merely slower.
    let fail_at = secs_to_cycles(0.05);
    let heal_at = secs_to_cycles(0.08);
    let cfg = SimConfig::new(KernelSpec::Fastsocket, AppSpec::web(), 4)
        .warmup_secs(0.02)
        .measure_secs(0.15)
        .concurrency(120)
        .faults(
            FaultSchedule::new()
                .queue_failure(fail_at, Some(heal_at), 2)
                .sample_every(secs_to_cycles(0.005)),
        );
    let r = Simulation::new(cfg).run();
    // The survivor core absorbs two queues' load: backlog pressure and
    // RTO recovery cost some connections, but only a tiny fraction.
    assert!(
        (r.resets as f64) < 0.01 * r.completed as f64,
        "resets stay under 1%: {} of {}",
        r.resets,
        r.completed
    );
    let rec = &r.robustness.as_ref().unwrap().faults[0];
    assert_eq!(rec.refusals_during, 0, "no SYN refused: {rec:?}");
    assert!(rec.degradation_depth > 0.0, "{rec:?}");
    assert!(
        rec.time_to_recover.is_some(),
        "throughput recovers once the queue heals: {rec:?}"
    );
    assert!(
        r.stack.retransmits > 0,
        "overload recovery runs through RTO"
    );
}

#[test]
fn robustness_report_is_bit_identical_across_runs() {
    // Criterion (c): the full degrade-and-recover analysis — samples,
    // depths, recovery times — must be reproducible bit for bit.
    let mk = || {
        let cfg = SimConfig::new(KernelSpec::Fastsocket, AppSpec::web(), 4)
            .warmup_secs(0.02)
            .measure_secs(0.12)
            .concurrency(100)
            .client_timeout_secs(0.04)
            .seed(99)
            .faults(
                FaultSchedule::new()
                    .worker_crash(secs_to_cycles(0.04), Some(secs_to_cycles(0.06)), 1)
                    .loss_burst(secs_to_cycles(0.08), Some(secs_to_cycles(0.1)), 0.05)
                    .sample_every(secs_to_cycles(0.005)),
            );
        Simulation::new(cfg).run()
    };
    let a = mk();
    let b = mk();
    if let Some(checks) = &a.checks {
        assert!(
            checks.is_clean(),
            "fault schedules stay sanitizer-clean: {checks:?}"
        );
    }
    let ra = a.robustness.as_ref().unwrap();
    let rb = b.robustness.as_ref().unwrap();
    assert_eq!(ra.digest(), rb.digest(), "robustness must be deterministic");
    assert_eq!(a.results_digest(), b.results_digest());
    // The loss burst must actually have fired (retransmits) and healed
    // (clients finish the run).
    assert!(a.stack.retransmits > 0);
    assert_eq!(ra.faults.len(), 2);
}

#[test]
fn utilization_is_balanced_under_fastsocket_but_not_base() {
    let mk = |kernel| {
        let cfg = SimConfig::new(kernel, AppSpec::proxy(), 8)
            .warmup_secs(0.05)
            .measure_secs(0.15)
            .concurrency(400)
            .think_secs(0.004) // partial load, where imbalance shows
            .seed(3);
        Simulation::new(cfg).run()
    };
    let base = mk(KernelSpec::BaseLinux);
    let fs = mk(KernelSpec::Fastsocket);
    let (bmin, bmax) = base.utilization_spread();
    let (fmin, fmax) = fs.utilization_spread();
    let base_spread = bmax - bmin;
    let fs_spread = fmax - fmin;
    assert!(
        fs_spread < base_spread,
        "fastsocket must balance better: base {base_spread:.3} vs fs {fs_spread:.3}"
    );
    assert!(
        fs_spread < 0.05,
        "fastsocket cores stay within 5pp: {fs_spread:.3}"
    );
}

#[test]
fn kernel_resources_are_reclaimed() {
    // After thousands of completed connections, live sockets must be
    // bounded by listen sockets + in-flight connections — a
    // per-connection leak would scale with completions.
    for kernel in [KernelSpec::BaseLinux, KernelSpec::Fastsocket] {
        let concurrency = 60;
        let cfg = SimConfig::new(kernel, AppSpec::web(), 2)
            .warmup_secs(0.02)
            .measure_secs(0.1)
            .concurrency(concurrency);
        let r = Simulation::new(cfg).run();
        assert!(r.completed > 1_000, "{}", r.kernel);
        // Listen sockets (≤ 1 global + 2 local) + at most one socket
        // per concurrent client + TIME_WAIT stragglers.
        let bound = 3 + 2 * concurrency + 64;
        assert!(
            r.live_sockets <= bound,
            "{}: {} live sockets after {} connections (bound {bound})",
            r.kernel,
            r.live_sockets,
            r.completed
        );
    }
}
