//! Whole-system tests of the paper's central claim: the full partition
//! eliminates every shared-lock contention, feature by feature
//! (Table 1's structure), and connection locality governs cache
//! behaviour (Figure 5's structure).

use fastsocket::experiments::table1::FeatureStep;
use fastsocket::{AppSpec, KernelSpec, SimConfig, Simulation};
use sim_nic::SteeringMode;

fn run_step(step: FeatureStep, cores: u16) -> fastsocket::RunReport {
    let cfg = SimConfig::new(
        KernelSpec::Custom(Box::new(step.config(cores))),
        AppSpec::proxy(),
        cores,
    )
    .warmup_secs(0.03)
    .measure_secs(0.12)
    .concurrency(u32::from(cores) * 60);
    Simulation::new(cfg).run()
}

#[test]
fn vfs_fastpath_eliminates_dcache_and_inode_contention() {
    let cores = 6;
    let baseline = run_step(FeatureStep::Baseline, cores);
    let v = run_step(FeatureStep::V, cores);
    assert!(
        baseline.lock_contentions("dcache_lock") > 0,
        "baseline must contend on dcache: {baseline:?}"
    );
    assert_eq!(v.lock_contentions("dcache_lock"), 0);
    assert_eq!(v.lock_contentions("inode_lock"), 0);
    // Removing the VFS bottleneck raises throughput (the paper's "+V"
    // column shows the other locks getting hotter because of this).
    assert!(v.throughput_cps > baseline.throughput_cps);
}

#[test]
fn full_fastsocket_contends_on_nothing() {
    let r = run_step(FeatureStep::Vlre, 6);
    for lock in [
        "dcache_lock",
        "inode_lock",
        "slock",
        "ep.lock",
        "ehash.lock",
    ] {
        assert_eq!(
            r.lock_contentions(lock),
            0,
            "{lock} contended under full Fastsocket"
        );
    }
    assert!(r.lock_spin_share() < 0.01);
}

#[test]
fn each_feature_step_never_hurts_throughput() {
    let cores = 6;
    let mut last = 0.0;
    for step in FeatureStep::ALL {
        let r = run_step(step, cores);
        assert!(
            r.throughput_cps >= last * 0.97, // allow 3% noise
            "{} regressed: {} after {}",
            step.label(),
            r.throughput_cps,
            last
        );
        last = r.throughput_cps;
    }
}

#[test]
fn rfd_software_steering_fixes_every_active_packet() {
    // RSS delivers active-connection packets blindly; RFD must re-steer
    // exactly the non-local ones, and none may be processed remotely.
    let cfg = SimConfig::new(KernelSpec::Fastsocket, AppSpec::proxy(), 4)
        .warmup_secs(0.03)
        .measure_secs(0.1)
        .concurrency(200);
    let r = Simulation::new(cfg).run();
    assert_eq!(
        r.stack.steered_packets,
        r.stack.active_in_packets - r.stack.active_in_local,
        "steered must equal the non-local remainder"
    );
}

#[test]
fn perfect_filtering_yields_full_nic_locality_and_lower_misses() {
    let mk = |steering| {
        let cfg = SimConfig::new(KernelSpec::Fastsocket, AppSpec::proxy(), 4)
            .steering(steering)
            .warmup_secs(0.03)
            .measure_secs(0.1)
            .concurrency(200);
        Simulation::new(cfg).run()
    };
    let rss = mk(SteeringMode::Rss);
    let perfect = mk(SteeringMode::FdirPerfect);
    assert!(rss.local_packet_proportion < 0.5);
    assert!(perfect.local_packet_proportion > 0.999);
    assert_eq!(perfect.stack.steered_packets, 0, "nothing left to steer");
}

#[test]
fn atr_learns_most_flows_but_not_all() {
    let cfg = SimConfig::new(KernelSpec::Fastsocket, AppSpec::proxy(), 8)
        .steering(SteeringMode::FdirAtr)
        .warmup_secs(0.05)
        .measure_secs(0.15)
        .concurrency(2_000);
    let r = Simulation::new(cfg).run();
    assert!(
        r.local_packet_proportion > 0.4,
        "ATR should learn most flows: {}",
        r.local_packet_proportion
    );
    assert!(
        r.local_packet_proportion < 0.999,
        "ATR's finite signature table must collide sometimes: {}",
        r.local_packet_proportion
    );
}
