//! Whole-system integration tests: throughput ordering and scaling
//! across kernels, spanning every crate in the workspace.
//!
//! Core counts and windows are kept small so the suite stays fast in
//! debug builds; the shapes asserted here are the same ones the bench
//! harnesses regenerate at paper scale.

use fastsocket::{AppSpec, KernelSpec, SimConfig, Simulation};

fn run(kernel: KernelSpec, app: AppSpec, cores: u16) -> fastsocket::RunReport {
    let cfg = SimConfig::new(kernel, app, cores)
        .warmup_secs(0.03)
        .measure_secs(0.12)
        .concurrency(u32::from(cores) * 60);
    Simulation::new(cfg).run()
}

#[test]
fn fastsocket_scales_nearly_linearly_on_web() {
    let one = run(KernelSpec::Fastsocket, AppSpec::web(), 1);
    let four = run(KernelSpec::Fastsocket, AppSpec::web(), 4);
    let ratio = four.throughput_cps / one.throughput_cps;
    assert!(
        ratio > 3.5,
        "fastsocket 1->4 cores should be near-linear, got {ratio:.2}x"
    );
}

#[test]
fn fastsocket_beats_both_baselines_on_web() {
    let cores = 8;
    let fs = run(KernelSpec::Fastsocket, AppSpec::web(), cores);
    let base = run(KernelSpec::BaseLinux, AppSpec::web(), cores);
    let l313 = run(KernelSpec::Linux313, AppSpec::web(), cores);
    assert!(
        fs.throughput_cps > base.throughput_cps,
        "fastsocket {} <= base {}",
        fs.throughput_cps,
        base.throughput_cps
    );
    assert!(
        fs.throughput_cps > l313.throughput_cps,
        "fastsocket {} <= 3.13 {}",
        fs.throughput_cps,
        l313.throughput_cps
    );
}

#[test]
fn fastsocket_beats_both_baselines_on_proxy() {
    let cores = 8;
    let fs = run(KernelSpec::Fastsocket, AppSpec::proxy(), cores);
    let base = run(KernelSpec::BaseLinux, AppSpec::proxy(), cores);
    let l313 = run(KernelSpec::Linux313, AppSpec::proxy(), cores);
    assert!(fs.throughput_cps > base.throughput_cps);
    assert!(fs.throughput_cps > l313.throughput_cps);
    // Active connections actually happened.
    assert!(fs.stack.active_established > 0);
}

#[test]
fn reuseport_listener_walk_grows_with_cores() {
    let small = run(KernelSpec::Linux313, AppSpec::web(), 2);
    let large = run(KernelSpec::Linux313, AppSpec::web(), 8);
    assert!(small.avg_listen_walk > 1.9 && small.avg_listen_walk < 2.1);
    assert!(large.avg_listen_walk > 7.9 && large.avg_listen_walk < 8.1);
    assert!(
        large.cycle_share(sim_core::CycleClass::ListenLookup)
            > small.cycle_share(sim_core::CycleClass::ListenLookup),
        "the O(n) walk must cost more per core as copies multiply"
    );
}

#[test]
fn single_core_throughputs_are_close_across_kernels() {
    // Figure 4: "the single CPU core throughputs are very close among
    // all the three kernels".
    let base = run(KernelSpec::BaseLinux, AppSpec::web(), 1).throughput_cps;
    let l313 = run(KernelSpec::Linux313, AppSpec::web(), 1).throughput_cps;
    let fs = run(KernelSpec::Fastsocket, AppSpec::web(), 1).throughput_cps;
    let max = base.max(l313).max(fs);
    let min = base.min(l313).min(fs);
    assert!(
        max / min < 1.2,
        "single-core spread too wide: base={base:.0} 3.13={l313:.0} fs={fs:.0}"
    );
}

#[test]
fn report_digest_is_identical_across_schedulers_at_24_cores() {
    // The timing-wheel scheduler is an implementation detail: the fig4a
    // 24-core cell must produce bit-identical results (and therefore an
    // identical report digest) under both event-queue backends.
    for kernel in [
        KernelSpec::BaseLinux,
        KernelSpec::Linux313,
        KernelSpec::Fastsocket,
    ] {
        let cfg = |sched| {
            SimConfig::new(kernel.clone(), AppSpec::web(), 24)
                .warmup_secs(0.02)
                .measure_secs(0.06)
                .concurrency(24 * 60)
                .scheduler(sched)
        };
        let wheel = Simulation::new(cfg(sim_core::SchedulerKind::Wheel)).run();
        let heap = Simulation::new(cfg(sim_core::SchedulerKind::Heap)).run();
        assert_eq!(
            wheel.results_digest(),
            heap.results_digest(),
            "{}: wheel and heap reports diverge",
            wheel.kernel
        );
        assert_eq!(
            wheel.config_hash, heap.config_hash,
            "provenance must not fork"
        );
    }
}

#[test]
fn no_connection_failures_under_normal_load() {
    for kernel in [
        KernelSpec::BaseLinux,
        KernelSpec::Linux313,
        KernelSpec::Fastsocket,
    ] {
        let r = run(kernel, AppSpec::proxy(), 4);
        assert_eq!(r.resets, 0, "{}: unexpected resets", r.kernel);
        assert_eq!(r.timeouts, 0, "{}: unexpected timeouts", r.kernel);
        assert!(r.completed > 1_000, "{}: too few completions", r.kernel);
    }
}
