//! Whole-system tracing integration: latency percentiles in run
//! reports, provenance fields, the paper-level tail-latency claim, and
//! the chrome://tracing export round-trip.

use fastsocket::{AppSpec, KernelSpec, RunReport, SimConfig, Simulation};
use sim_core::usecs_to_cycles;
use sim_trace::{ChromeTrace, Tracer};

fn traced(kernel: KernelSpec, cores: u16) -> (RunReport, Tracer) {
    let cfg = SimConfig::new(kernel, AppSpec::web(), cores)
        .warmup_secs(0.02)
        .measure_secs(0.08)
        .concurrency(u32::from(cores) * 50)
        .trace(true);
    let sim = Simulation::new(cfg);
    let tracer = sim.tracer();
    let report = sim.run();
    (report, tracer)
}

#[test]
fn traced_runs_surface_latency_and_provenance() {
    let (report, tracer) = traced(KernelSpec::Fastsocket, 4);
    assert_eq!(
        report.seed, 0xfa57_50c7,
        "default seed surfaces in the report"
    );
    assert_eq!(
        report.config_hash.len(),
        16,
        "config digest is a 64-bit hex string"
    );
    let lat = report.latency.as_ref().expect("traced run reports latency");
    assert!(
        lat.setup.count > 100,
        "too few setups measured: {}",
        lat.setup.count
    );
    assert!(lat.setup.p50_us <= lat.setup.p99_us);
    assert!(lat.setup.p99_us <= lat.setup.p999_us);
    assert!(
        lat.ttfb.p50_us >= lat.setup.p50_us,
        "first byte cannot precede setup"
    );
    assert_eq!(
        tracer.unbalanced_exits(),
        0,
        "every exit edge must match an enter"
    );
    assert!(tracer.established_count() > 0);
    assert!(
        !tracer.folded().is_empty(),
        "cycle attribution must be populated"
    );
    assert!(
        tracer
            .dispatch_counts()
            .iter()
            .any(|(l, _)| *l == "softirq"),
        "engine dispatch counts must include softirqs"
    );
}

#[test]
fn untraced_runs_pay_nothing_and_report_no_latency() {
    let cfg = SimConfig::new(KernelSpec::Fastsocket, AppSpec::web(), 2)
        .warmup_secs(0.02)
        .measure_secs(0.05)
        .concurrency(100);
    let sim = Simulation::new(cfg);
    let tracer = sim.tracer();
    let report = sim.run();
    assert!(
        report.latency.is_none(),
        "latency requires SimConfig::trace"
    );
    assert!(!tracer.is_enabled());
    assert!(tracer.events().is_empty());
    assert_eq!(report.seed, 0xfa57_50c7);
}

#[test]
fn fastsocket_p99_setup_beats_base_at_24_cores() {
    // The paper's motivation restated as tail latency: at high core
    // counts the base kernel's shared accept queue and lock contention
    // stretch connection setup; Fastsocket's per-core partitioning
    // keeps the p99 at or below it.
    let (fs, _) = traced(KernelSpec::Fastsocket, 24);
    let (base, _) = traced(KernelSpec::BaseLinux, 24);
    let fs_p99 = fs.latency.expect("fastsocket latency").setup.p99_us;
    let base_p99 = base.latency.expect("base latency").setup.p99_us;
    assert!(
        fs_p99 <= base_p99,
        "fastsocket p99 setup {fs_p99:.1}us should not exceed base {base_p99:.1}us at 24 cores"
    );
}

#[test]
fn chrome_export_round_trips_through_serde_json() {
    let (_, tracer) = traced(KernelSpec::Fastsocket, 2);
    let trace = tracer.chrome_trace(usecs_to_cycles(1.0) as f64);
    assert!(!trace.traceEvents.is_empty());
    let json = trace.to_json();
    let back: ChromeTrace = serde_json::from_str(&json).expect("chrome JSON parses back");
    assert_eq!(back, trace);
    assert!(
        trace.traceEvents.iter().any(|e| e.ph == "X"),
        "export must contain complete spans"
    );
    assert!(
        trace.traceEvents.iter().any(|e| e.ph == "i"),
        "export must contain lifecycle instants"
    );
}
