//! Conservation oracle for the sim-res memory-accounting subsystem.
//!
//! The contract under test: with the ledger armed, every schedule —
//! any kernel, any core/lane split, either executor, any budget from
//! roomy to brutally tight — drains to a **balanced** account (the
//! ledger agrees with a ground-truth walk of the socket tables), and
//! the serial-windowed and threaded lane executors stay bit-identical.
//! Runs execute in strict mode (`check(true)`, no fault schedule), so
//! any imbalance the driver's audit catches panics inside the run
//! itself rather than surfacing as a soft finding.
//!
//! Tight budgets are the interesting half: they force the pressure
//! reactions (SYN drops, embryo pruning, window clamps, buffer
//! reclaim, TIME_WAIT forced recycle, orphan kills), each of which
//! must uncharge exactly what its victim charged.

use fastsocket::{
    run_sharded, AppSpec, KernelSpec, LongLivedMix, MemConfig, OpenLoopConfig, ParConfig,
    RunReport, SimConfig,
};
use proptest::prelude::*;

/// Budget shapes, from "never reacts" down to "always at High".
fn budget(sel: u8) -> MemConfig {
    match sel % 3 {
        // Roomy: the ledger observes, no reaction ever fires.
        0 => MemConfig::ram_mb(64),
        // Pressure zone: clamps and reclaim, tight TIME_WAIT/orphan
        // caps so forced recycles and orphan kills fire too.
        1 => MemConfig::ram_bytes(1_000_000).tw_buckets(8).orphans(4),
        // Brutal: the standing population alone overruns `high`, so
        // SYN drops and embryo pruning gate every admission.
        _ => MemConfig::ram_bytes(200_000)
            .tw_buckets(4)
            .orphans(2)
            .scaled(8),
    }
}

/// Decodes a compact proptest case into a full ledger-armed config.
fn decode_cfg(
    kernel_sel: u8,
    cores_sel: u8,
    lanes_sel: u8,
    budget_sel: u8,
    longlived: bool,
    seed: u64,
) -> SimConfig {
    let kernel = match kernel_sel % 3 {
        0 => KernelSpec::BaseLinux,
        1 => KernelSpec::Linux313,
        _ => KernelSpec::Fastsocket,
    };
    let cores = [1u16, 2, 4, 8][usize::from(cores_sel % 4)];
    let lanes = [2u16, 3, 4][usize::from(lanes_sel % 3)];
    let mut open = OpenLoopConfig::poisson(30_000.0).population(64);
    if longlived {
        // Half the arrivals park mid-window; some are still holding
        // when the run drains, so the audit also covers live sockets.
        open = open.longlived(LongLivedMix::fraction_held(0.5, 0.004));
    }
    let mut cfg = SimConfig::new(kernel, AppSpec::web(), cores)
        .warmup_secs(0.003)
        .measure_secs(0.01)
        .check(true)
        .seed(seed)
        .mem(budget(budget_sel))
        .open_loop(open);
    cfg.workload.concurrency_per_core = 40;
    cfg.par(ParConfig::lanes(lanes))
}

fn run(cfg: SimConfig) -> RunReport {
    run_sharded(cfg)
}

/// Asserts the per-run ledger contract: report present, balanced, and
/// (strict mode aside) no detector findings.
fn assert_ledger_clean(r: &RunReport, what: &str) {
    let mem = r.mem.as_ref().expect("ledger was armed");
    assert!(mem.balanced, "{what}: ledger did not balance at drain");
    let checks = r.checks.as_ref().expect("sanitizers were armed");
    assert!(checks.is_clean(), "{what}: detector findings: {checks:?}");
}

/// All three kernels under the brutal budget: the heaviest reaction
/// traffic (drops, prunes, recycles, kills) must still balance, on
/// both executors, with identical digests.
#[test]
fn all_kernels_balance_under_high_pressure_on_both_executors() {
    for kernel_sel in 0u8..3 {
        for budget_sel in 1u8..3 {
            let mk = |threads: bool| {
                let mut cfg = decode_cfg(kernel_sel, 3, 0, budget_sel, true, 0x5ca1e);
                cfg.par = cfg.par.map(|p| p.threads(threads));
                run(cfg)
            };
            let serial = mk(false);
            let threaded = mk(true);
            let what = format!("kernel {kernel_sel} budget {budget_sel}");
            assert_ledger_clean(&serial, &what);
            assert_ledger_clean(&threaded, &what);
            assert_eq!(
                serial.results_digest(),
                threaded.results_digest(),
                "{what}: executors diverged"
            );
        }
    }
}

/// The tight budgets really do fire reactions (otherwise the pressure
/// half of this oracle is vacuous).
#[test]
fn brutal_budget_fires_pressure_reactions() {
    let r = run(decode_cfg(2, 3, 0, 2, false, 7));
    let mem = r.mem.as_ref().expect("ledger was armed");
    let reactions = mem.stats.pressure_syn_drops
        + mem.stats.embryos_pruned
        + mem.stats.window_clamps
        + mem.stats.buffer_reclaims
        + mem.stats.tw_forced_recycles
        + mem.stats.orphans_killed;
    assert!(
        reactions > 0,
        "200 KB x8-scale budget never reacted: {:?}",
        mem.stats
    );
    assert!(mem.balanced, "reacting run did not balance");
}

/// Lane splitting must conserve the budget: the merged report's
/// budget re-adds to at most the unsplit total (integer division may
/// shave remainders), never more.
#[test]
fn lane_split_budgets_readd_to_the_total() {
    let cfg = decode_cfg(2, 3, 2, 0, false, 11);
    let unsplit = MemConfig::ram_mb(64).high_bytes;
    let r = run(cfg);
    let mem = r.mem.as_ref().expect("ledger was armed");
    assert!(
        mem.budget_bytes <= unsplit && mem.budget_bytes >= unsplit / 2,
        "merged lane budgets drifted: {} vs unsplit {unsplit}",
        mem.budget_bytes
    );
    assert_ledger_clean(&r, "lane split");
}

proptest! {
    /// Randomized sweep: any (kernel, cores, lanes, budget, session
    /// mix, seed) combination must balance its accounts and stay
    /// executor-identical.
    #[test]
    fn random_schedules_conserve_memory_accounts(
        kernel_sel in 0u8..3,
        cores_sel in 0u8..4,
        lanes_sel in 0u8..3,
        budget_sel in 0u8..3,
        longlived in any::<bool>(),
        seed in 0u64..1_000_000,
    ) {
        let threaded = decode_cfg(kernel_sel, cores_sel, lanes_sel, budget_sel, longlived, seed);
        let mut serial = threaded.clone();
        serial.par = serial.par.map(|p| p.threads(false));
        let a = run(serial);
        let b = run(threaded);
        prop_assert_eq!(a.results_digest(), b.results_digest(), "executors diverged");
        let mem = a.mem.as_ref().expect("ledger was armed");
        prop_assert!(mem.balanced, "ledger did not balance at drain");
        prop_assert!(a.checks.as_ref().expect("armed").is_clean(), "detector findings");
    }
}
