//! Differential oracle for the parallel lane-sharded engine.
//!
//! The contract under test: for every configuration, the serial
//! windowed executor and the threaded executor produce **bit-identical**
//! [`RunReport`] digests — same seed, same lanes, same everything —
//! with every sanitizer armed inside the lanes. A deliberately violated
//! lookahead horizon must *break* the digest (against the default
//! horizon) while remaining internally deterministic, proving the
//! digest actually watches the synchronization protocol.

use fastsocket::{
    effective_lanes, run_sharded, AppSpec, DataPlaneConfig, KernelSpec, OpenLoopConfig, ParConfig,
    SimConfig,
};
use proptest::prelude::*;

fn base_cfg(kernel: KernelSpec, cores: u16) -> SimConfig {
    SimConfig::new(kernel, AppSpec::web(), cores)
        .warmup_secs(0.01)
        .measure_secs(0.03)
        .check(true)
        .seed(0x1a7e5)
}

fn digest_of(cfg: SimConfig) -> String {
    run_sharded(cfg).results_digest()
}

/// All three kernels at 1, 8 and 24 simulated cores: the serial and
/// threaded executors must agree bit-for-bit. Shared-table kernels
/// resolve to one lane (both executors take the identical legacy path);
/// Fastsocket actually shards.
#[test]
fn serial_and_threaded_executors_are_bit_identical() {
    for kernel in [
        KernelSpec::BaseLinux,
        KernelSpec::Linux313,
        KernelSpec::Fastsocket,
    ] {
        for cores in [1u16, 8, 24] {
            let serial = base_cfg(kernel.clone(), cores).par(ParConfig::lanes(8).threads(false));
            let threaded = base_cfg(kernel.clone(), cores).par(ParConfig::lanes(8));
            assert_eq!(
                digest_of(serial),
                digest_of(threaded),
                "{}/{cores} cores: executors diverged",
                kernel.label()
            );
        }
    }
}

/// The sharded engine must also be reproducible run-to-run on the
/// threaded executor: host-thread scheduling (which permutes actual
/// lane startup and progress order) must not leak into the results.
#[test]
fn threaded_run_is_reproducible_across_reruns() {
    let mk = || base_cfg(KernelSpec::Fastsocket, 8).par(ParConfig::lanes(4));
    assert_eq!(digest_of(mk()), digest_of(mk()));
}

/// A horizon longer than the modeled packet latency violates the
/// conservative lookahead: deliveries get clamped to window boundaries
/// and the result must diverge from the default-horizon digest. The
/// divergence itself stays deterministic (serial == threads at the same
/// wrong horizon) — the protocol is wrong, not racy.
#[test]
fn violated_lookahead_horizon_breaks_the_digest() {
    let cfg = base_cfg(KernelSpec::Fastsocket, 8);
    let bad_horizon = cfg.rtt * 4;
    let good = digest_of(cfg.clone().par(ParConfig::lanes(4).threads(false)));
    let bad_serial = digest_of(
        cfg.clone()
            .par(ParConfig::lanes(4).threads(false).horizon(bad_horizon)),
    );
    let bad_threads = digest_of(cfg.clone().par(ParConfig::lanes(4).horizon(bad_horizon)));
    assert_ne!(
        good, bad_serial,
        "a violated horizon must change the results"
    );
    assert_eq!(
        bad_serial, bad_threads,
        "even a violated horizon must stay executor-deterministic"
    );
}

/// Sanitizers stay armed inside lanes: a sharded fastsocket run reports
/// a merged `CheckReport` covering all simulated cores.
#[test]
fn sharded_run_merges_armed_check_reports() {
    let cfg = base_cfg(KernelSpec::Fastsocket, 8).par(ParConfig::lanes(4));
    assert_eq!(effective_lanes(&cfg), 4);
    let report = run_sharded(cfg);
    let checks = report.checks.expect("checker armed in lanes");
    assert_eq!(
        checks.lockdep + checks.lockset + checks.hb,
        0,
        "lanes must stay race-free"
    );
    assert_eq!(report.core_utilization.len(), 8);
    assert!(
        report.completed > 0,
        "sharded run must complete connections"
    );
}

/// Shared-table kernels certify `Shared` state, so the engine must
/// refuse to shard them.
#[test]
fn shared_table_kernels_fall_back_to_serial() {
    for kernel in [KernelSpec::BaseLinux, KernelSpec::Linux313] {
        let cfg = base_cfg(kernel, 8).par(ParConfig::lanes(8));
        assert_eq!(effective_lanes(&cfg), 1);
    }
    // IsoStack's dedicated stack core is cross-core by design.
    let mut iso = base_cfg(KernelSpec::Fastsocket, 8).par(ParConfig::lanes(8));
    iso.dedicated_stack_core = true;
    assert_eq!(effective_lanes(&iso), 1);
    // Requested lanes snap to the largest divisor of the core count.
    let cfg = base_cfg(KernelSpec::Fastsocket, 8).par(ParConfig::lanes(3));
    assert_eq!(effective_lanes(&cfg), 2);
}

/// Decodes a compact proptest case into a full `SimConfig` sweeping
/// kernel, core count, lane count, data plane, open loop and seed.
fn decode_cfg(
    kernel_sel: u8,
    cores_sel: u8,
    lanes_sel: u8,
    open_loop: bool,
    data_plane: bool,
    seed: u64,
) -> SimConfig {
    let kernel = match kernel_sel % 3 {
        0 => KernelSpec::BaseLinux,
        1 => KernelSpec::Linux313,
        _ => KernelSpec::Fastsocket,
    };
    let cores = [1u16, 2, 4, 8][usize::from(cores_sel % 4)];
    let lanes = [2u16, 3, 4][usize::from(lanes_sel % 3)];
    let mut cfg = SimConfig::new(kernel, AppSpec::web(), cores)
        .warmup_secs(0.003)
        .measure_secs(0.01)
        .check(true)
        .seed(seed);
    cfg.workload.concurrency_per_core = 40;
    if open_loop {
        cfg = cfg.open_loop(OpenLoopConfig::poisson(30_000.0).population(64));
    }
    if data_plane {
        cfg = cfg.data_plane(DataPlaneConfig {
            response_bytes: 8_192,
            ..DataPlaneConfig::default()
        });
    }
    cfg.par(ParConfig::lanes(lanes))
}

proptest! {
    /// Randomized differential sweep: any (kernel, cores, lanes, data
    /// plane, open loop, seed) combination must be executor-identical.
    #[test]
    fn random_configs_are_executor_identical(
        kernel_sel in 0u8..3,
        cores_sel in 0u8..4,
        lanes_sel in 0u8..3,
        open_loop in any::<bool>(),
        data_plane in any::<bool>(),
        seed in 0u64..1_000_000,
    ) {
        let threaded = decode_cfg(kernel_sel, cores_sel, lanes_sel, open_loop, data_plane, seed);
        let mut serial = threaded.clone();
        serial.par = serial.par.map(|p| p.threads(false));
        prop_assert_eq!(digest_of(serial), digest_of(threaded), "executors diverged");
    }
}
