#!/usr/bin/env bash
# Repo-wide quality gate: formatting, lints, and the full test suite.
#
# Everything runs against the vendored in-tree dependency set (see
# vendor/README.md) — no registry access is needed or attempted.
set -euo pipefail
cd "$(dirname "$0")/.."

# The registry is unreachable in the build environment; every dependency
# is an in-tree path crate, so force cargo to never try the network.
export CARGO_NET_OFFLINE=true

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo test -q --workspace"
cargo test -q --workspace

# Bench smoke: self-profile the event core on a short window and hold
# the timing-wheel's events/sec against the committed baseline. The
# wide tolerance absorbs machine-to-machine variance (the committed
# baseline is a full-length run on the reference box); a real scheduler
# regression shows up as a multiple, not a few percent.
echo "==> bench smoke (event-core self-profile vs committed baseline)"
cargo build -q --release -p fastsocket-bench --bin selfprof
./target/release/selfprof 0.02 --baseline results/BENCH_event_core.json --tolerance 0.5

# Sanitizer pass: the `check` feature defaults SimConfig::check to on,
# so every system test re-runs with lockdep, lockset race detection and
# partition lints armed (plus the sanitizer-specific suites).
echo "==> cargo test -q --features check (sanitizers armed)"
cargo test -q --features check --test check_invariants --test check_negative --test system_partition

# Chaos smoke: one short fault schedule per kernel with every sanitizer
# armed. Fails on any lockdep/lockset/partition finding during fault
# handling, or if a kernel never climbs back to 90% of its pre-fault
# throughput after the heal (time_to_recover == None).
echo "==> chaos smoke (fault injection under sanitizers)"
cargo build -q --release -p fastsocket-bench --bin chaos
./target/release/chaos --smoke

# Edge smoke: one short edge-tier fault schedule per kernel (SYN flood
# behind the pre-steering drop filter, a backend flap, a backend crash)
# with all five sim-check detectors armed. Fails on any sanitizer
# finding or on a single lost request — the retry budget must save
# every client that hits a dead backend.
echo "==> edge smoke (edge-tier resilience under sanitizers)"
cargo build -q --release -p fastsocket-bench --bin edge
./target/release/edge --smoke

# Capacity smoke: a short open-loop ladder per kernel with sanitizers
# armed — doubled same-seed runs must be bit-identical and the emitted
# bench artifact must round-trip through the schema. Then the committed
# full-matrix artifact is schema-checked, including the 24-core SLO
# capacity ordering (fastsocket > linux-3.13 > base).
echo "==> capacity smoke (open-loop SLO ladder under sanitizers)"
cargo build -q --release -p fastsocket-bench --bin capacity
./target/release/capacity --smoke
./target/release/capacity --validate results/BENCH_capacity.json

# Concurrency smoke: a short 2-core max-concurrency ladder against a
# deliberately tight modeled RAM budget with all five sim-check
# detectors armed — the first rung of every ladder runs doubled and
# must be bit-identical, every rung's memory accounts must balance at
# drain, and the top rung must cross into the pressure zone. Then the
# committed full artifact is schema-checked (fastsocket must hold 1M+
# modeled concurrent sockets under the SLO, never behind a baseline).
echo "==> concurrency smoke (memory ledger + pressure under sanitizers)"
cargo build -q --release -p fastsocket-bench --bin concurrency
./target/release/concurrency --smoke
./target/release/concurrency --validate results/BENCH_concurrency.json

# Bulk smoke: a short kernel x congestion-control x response-size
# matrix with the sliding-window data plane armed and sanitizers on —
# the first cell of every (kernel, cc) column runs doubled and must be
# bit-identical, the three controllers must leave distinct result
# digests, and the emitted bench artifact must round-trip through the
# schema. Then the committed full-matrix artifact is coverage-checked
# (3 kernels x 3 cc x >= 3 sizes, every cell moving payload).
echo "==> bulk smoke (sliding-window data plane under sanitizers)"
cargo build -q --release -p fastsocket-bench --bin bulk
./target/release/bulk --smoke
./target/release/bulk --validate results/BENCH_bulk.json

# Parallel-engine smoke: a 2-lane sharded run with every sanitizer
# armed, digest-asserted bit-identical between the serial-windowed and
# threaded executors. Then the speedup gate: the 8-lane point of the
# 24-core fig4a profile must stay at >= 3x over the legacy serial
# engine — but only on hosts with >= 8 cores to express it; smaller
# hosts still run the sweep (every point stays digest-asserted) and
# skip only the wall-clock threshold.
echo "==> par smoke (lane-sharded engine under sanitizers)"
cargo build -q --release -p fastsocket-bench --bin par_speedup
./target/release/par_speedup --smoke
host_cores=$(nproc 2>/dev/null || echo 1)
if [ "$host_cores" -ge 8 ]; then
  echo "==> par speedup gate (host has ${host_cores} cores: enforcing >= 3x at 8 lanes)"
  ./target/release/par_speedup 0.1 --min-speedup 3.0
else
  echo "==> par speedup sweep (host has ${host_cores} cores: digest-asserted, wall-clock gate skipped)"
  ./target/release/par_speedup 0.1
fi

# Verification gate: the write-scope lint proves (via --self-test)
# that it still catches deliberately mis-scoped writes, then scans the
# real tcp-stack sources; the verify bin runs all three runtime
# detectors (lockset, happens-before, shard certifier) plus strict
# partition invariants at 1, 8 and 24 cores on every kernel, prints
# the cross-core ownership table, and re-checks doubled-run digest
# determinism.
echo "==> verify (write-scope lint + three-detector gate at 1/8/24 cores)"
cargo build -q --release -p fastsocket-bench --bin lint --bin verify
./target/release/lint --self-test
./target/release/lint
./target/release/verify 0.1

echo "All checks passed."
