//! Scheduled fault injection and degrade-and-recover verification.
//!
//! The paper's central robustness claim is architectural: Fastsocket's
//! partitioned tables keep a *global fallback* (Figure 2's slow path)
//! precisely so the server stays alive when locality breaks — a worker
//! dies, a NIC queue fails, the wire gets hostile. This crate provides
//! the vocabulary for exercising that claim:
//!
//! * [`FaultSchedule`] — a deterministic timeline of [`FaultEvent`]s
//!   (inject at a cycle, optionally heal later) that the simulation
//!   driver fires like any other event;
//! * [`WindowSample`] — periodic throughput/error samples the driver
//!   records while a schedule is active;
//! * [`RobustnessReport`] — the per-fault degrade-and-recover analysis
//!   ([`RobustnessReport::analyze`]): pre-fault baseline, degradation
//!   depth, time to recover to [`RECOVERY_FRACTION`] of baseline, and
//!   the resets/timeouts/refusals clients suffered inside the fault
//!   window.
//!
//! Like `sim-trace`, this crate sits below `sim-core` in the dependency
//! graph, so timestamps are plain `u64` cycles rather than
//! `sim_core::Cycles`.

use serde::{Deserialize, Serialize};

/// A recovery window ends at the first sample whose throughput reaches
/// this fraction of the pre-fault baseline.
pub const RECOVERY_FRACTION: f64 = 0.9;

/// What kind of fault an event injects.
///
/// (Not serialized: schedules are simulation *inputs*; reports carry
/// the [`FaultKind::label`] string instead.)
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The worker process pinned to `core` is killed; its per-process
    /// listen socket (local listen table entry or `SO_REUSEPORT` copy)
    /// dies with it. Healing restarts the worker (fork + listen +
    /// epoll registration).
    WorkerCrash {
        /// The core whose worker dies.
        core: u16,
    },
    /// NIC RX `queue` stops delivering; the NIC re-steers its traffic
    /// to a surviving queue until healed.
    QueueFailure {
        /// The failing RX queue index.
        queue: u16,
    },
    /// `core` stops servicing softirqs and process wakeups until healed
    /// (softirq starvation under a runaway thread / SMI window).
    CoreStall {
        /// The stalled core.
        core: u16,
    },
    /// The client wire's packet-loss probability jumps to `loss` for
    /// the fault window, then falls back to the configured baseline.
    LossBurst {
        /// Loss probability in `[0, 1)` during the burst.
        loss: f64,
    },
    /// Spoofed SYNs (addresses that never complete a handshake) arrive
    /// at `syns_per_tick` per driver flood tick until healed,
    /// exercising SYN-queue overflow, SYN cookies, and the TCB
    /// memory-pressure cap.
    SynFlood {
        /// Spoofed SYNs injected per flood tick.
        syns_per_tick: u32,
    },
    /// Backend `backend` (index into the proxy's union backend list)
    /// crashes: it answers every packet with RST and drops its in-flight
    /// connections, so the edge tier sees refusals on new connects and
    /// resets on relays. Healing brings it back; the health checker must
    /// then re-admit it into its pool.
    BackendCrash {
        /// Index of the crashing backend.
        backend: u16,
    },
}

impl FaultKind {
    /// Short stable label for reports.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::WorkerCrash { .. } => "worker_crash",
            FaultKind::QueueFailure { .. } => "queue_failure",
            FaultKind::CoreStall { .. } => "core_stall",
            FaultKind::LossBurst { .. } => "loss_burst",
            FaultKind::SynFlood { .. } => "syn_flood",
            FaultKind::BackendCrash { .. } => "backend_crash",
        }
    }
}

/// One scheduled fault: injected at `at`, optionally healed at
/// `heal_at`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Injection cycle.
    pub at: u64,
    /// Heal cycle; `None` means the fault persists to the end of the
    /// run.
    pub heal_at: Option<u64>,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic timeline of faults plus the sampling period for the
/// windowed throughput measurements that feed the analysis.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    /// The scheduled faults, in the order they were added.
    pub events: Vec<FaultEvent>,
    /// Throughput sampling period in cycles; `0` lets the driver pick
    /// a default.
    pub sample_window: u64,
}

impl FaultSchedule {
    /// An empty schedule.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn push(mut self, at: u64, heal_at: Option<u64>, kind: FaultKind) -> Self {
        if let Some(h) = heal_at {
            assert!(h > at, "heal must come after injection");
        }
        self.events.push(FaultEvent { at, heal_at, kind });
        self
    }

    /// Schedules a worker crash on `core` at `at`; `heal_at` restarts
    /// the worker (builder style).
    #[must_use]
    pub fn worker_crash(self, at: u64, heal_at: Option<u64>, core: u16) -> Self {
        self.push(at, heal_at, FaultKind::WorkerCrash { core })
    }

    /// Schedules an RX queue failure (builder style).
    #[must_use]
    pub fn queue_failure(self, at: u64, heal_at: Option<u64>, queue: u16) -> Self {
        self.push(at, heal_at, FaultKind::QueueFailure { queue })
    }

    /// Schedules a softirq stall on `core` (builder style).
    #[must_use]
    pub fn core_stall(self, at: u64, heal_at: Option<u64>, core: u16) -> Self {
        self.push(at, heal_at, FaultKind::CoreStall { core })
    }

    /// Schedules a packet-loss burst on the client wire (builder
    /// style).
    #[must_use]
    pub fn loss_burst(self, at: u64, heal_at: Option<u64>, loss: f64) -> Self {
        assert!((0.0..1.0).contains(&loss), "loss probability in [0,1)");
        self.push(at, heal_at, FaultKind::LossBurst { loss })
    }

    /// Schedules a SYN flood (builder style).
    #[must_use]
    pub fn syn_flood(self, at: u64, heal_at: Option<u64>, syns_per_tick: u32) -> Self {
        self.push(at, heal_at, FaultKind::SynFlood { syns_per_tick })
    }

    /// Schedules a backend crash (builder style).
    #[must_use]
    pub fn backend_crash(self, at: u64, heal_at: Option<u64>, backend: u16) -> Self {
        self.push(at, heal_at, FaultKind::BackendCrash { backend })
    }

    /// Schedules a flapping backend: `cycles` crash/heal pairs starting
    /// at `at`, each down for `down` cycles and up for `up` cycles
    /// before the next crash (builder style). Each pair is analyzed as
    /// its own [`FaultRecord`].
    #[must_use]
    pub fn backend_flap(
        mut self,
        at: u64,
        down: u64,
        up: u64,
        cycles_n: u16,
        backend: u16,
    ) -> Self {
        assert!(down > 0 && up > 0, "flap phases must be non-empty");
        let mut t = at;
        for _ in 0..cycles_n {
            self = self.backend_crash(t, Some(t + down), backend);
            t += down + up;
        }
        self
    }

    /// Sets the sampling period (builder style).
    #[must_use]
    pub fn sample_every(mut self, cycles: u64) -> Self {
        self.sample_window = cycles;
        self
    }

    /// Whether no fault is scheduled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Whether the schedule kills (and possibly restarts) any worker.
    /// Crash-induced slow-path connections legitimately re-arm timers
    /// across cores, so the `timer_affinity` partition lint must stand
    /// down for such schedules.
    #[must_use]
    pub fn has_worker_crash(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e.kind, FaultKind::WorkerCrash { .. }))
    }

    /// Whether any loss burst is scheduled (the driver must provision
    /// client-side retransmission nudges up front).
    #[must_use]
    pub fn has_loss_burst(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e.kind, FaultKind::LossBurst { .. }))
    }

    /// Whether any backend crash (or flap) is scheduled — the driver
    /// must route such schedules through the edge tier's health/failover
    /// machinery.
    #[must_use]
    pub fn has_backend_fault(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e.kind, FaultKind::BackendCrash { .. }))
    }
}

/// One windowed sample of client-observed progress: counter deltas over
/// `[start, end)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowSample {
    /// Window start cycle.
    pub start: u64,
    /// Window end cycle.
    pub end: u64,
    /// Connections completed inside the window.
    pub completed: u64,
    /// Client-observed resets inside the window.
    pub resets: u64,
    /// Client connect timeouts inside the window.
    pub timeouts: u64,
    /// Connection refusals (RST answering a SYN) inside the window.
    pub refusals: u64,
}

impl WindowSample {
    /// Completed connections per second, given the cycle frequency.
    #[must_use]
    pub fn cps(&self, cycles_per_sec: f64) -> f64 {
        let w = self.end.saturating_sub(self.start);
        if w == 0 {
            0.0
        } else {
            self.completed as f64 / (w as f64 / cycles_per_sec)
        }
    }
}

/// The degrade-and-recover verdict for one scheduled fault.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultRecord {
    /// [`FaultKind::label`] of the fault.
    pub kind: String,
    /// Injection cycle.
    pub injected_at: u64,
    /// Heal cycle, if the fault healed.
    pub healed_at: Option<u64>,
    /// Mean throughput (connections/sec) over the windows fully before
    /// injection.
    pub baseline_cps: f64,
    /// Worst windowed throughput while the fault was active.
    pub degraded_cps: f64,
    /// `1 - degraded/baseline`, clamped to `[0, 1]`.
    pub degradation_depth: f64,
    /// Cycles from heal (or injection, for unhealed faults) until the
    /// first window at ≥ [`RECOVERY_FRACTION`] × baseline; `None` if
    /// throughput never recovered inside the run.
    pub time_to_recover: Option<u64>,
    /// Client-observed resets inside the fault window.
    pub resets_during: u64,
    /// Client connect timeouts inside the fault window.
    pub timeouts_during: u64,
    /// Connection refusals inside the fault window.
    pub refusals_during: u64,
}

/// The robustness section of a run report: the raw windowed samples
/// plus one [`FaultRecord`] per scheduled fault.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RobustnessReport {
    /// Sampling period used, in cycles.
    pub sample_window: u64,
    /// All windowed samples, in time order.
    pub samples: Vec<WindowSample>,
    /// Per-fault analysis, in schedule order.
    pub faults: Vec<FaultRecord>,
}

impl RobustnessReport {
    /// Computes the per-fault degrade-and-recover records from the
    /// windowed samples. Pure arithmetic over the inputs: two runs
    /// with identical samples produce bit-identical reports.
    #[must_use]
    pub fn analyze(
        schedule: &FaultSchedule,
        sample_window: u64,
        samples: Vec<WindowSample>,
        cycles_per_sec: f64,
    ) -> Self {
        let faults = schedule
            .events
            .iter()
            .map(|ev| analyze_fault(ev, &samples, cycles_per_sec))
            .collect();
        RobustnessReport {
            sample_window,
            samples,
            faults,
        }
    }

    /// FNV-1a digest over the report's JSON serialization — the
    /// bit-identical-across-runs check.
    #[must_use]
    pub fn digest(&self) -> String {
        let json = serde_json::to_string(self).expect("RobustnessReport serializes");
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in json.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        format!("{h:016x}")
    }
}

fn analyze_fault(ev: &FaultEvent, samples: &[WindowSample], cycles_per_sec: f64) -> FaultRecord {
    let run_end = samples.last().map_or(ev.at, |s| s.end);
    let active_until = ev.heal_at.unwrap_or(run_end);

    let baseline: Vec<f64> = samples
        .iter()
        .filter(|s| s.end <= ev.at)
        .map(|s| s.cps(cycles_per_sec))
        .collect();
    let baseline_cps = if baseline.is_empty() {
        0.0
    } else {
        baseline.iter().sum::<f64>() / baseline.len() as f64
    };

    // Windows overlapping the active fault interval.
    let during: Vec<&WindowSample> = samples
        .iter()
        .filter(|s| s.start < active_until && s.end > ev.at)
        .collect();
    let degraded_cps = during
        .iter()
        .map(|s| s.cps(cycles_per_sec))
        .fold(f64::INFINITY, f64::min);
    let degraded_cps = if degraded_cps.is_finite() {
        degraded_cps
    } else {
        baseline_cps
    };
    let degradation_depth = if baseline_cps > 0.0 {
        (1.0 - degraded_cps / baseline_cps).clamp(0.0, 1.0)
    } else {
        0.0
    };

    let recover_from = ev.heal_at.unwrap_or(ev.at);
    let time_to_recover = if baseline_cps > 0.0 {
        samples
            .iter()
            .filter(|s| s.start >= recover_from)
            .find(|s| s.cps(cycles_per_sec) >= RECOVERY_FRACTION * baseline_cps)
            .map(|s| s.end.saturating_sub(recover_from))
    } else {
        None
    };

    FaultRecord {
        kind: ev.kind.label().to_string(),
        injected_at: ev.at,
        healed_at: ev.heal_at,
        baseline_cps,
        degraded_cps,
        degradation_depth,
        time_to_recover,
        resets_during: during.iter().map(|s| s.resets).sum(),
        timeouts_during: during.iter().map(|s| s.timeouts).sum(),
        refusals_during: during.iter().map(|s| s.refusals).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HZ: f64 = 1_000.0; // 1000 cycles per second for easy math

    fn sample(start: u64, end: u64, completed: u64) -> WindowSample {
        WindowSample {
            start,
            end,
            completed,
            ..WindowSample::default()
        }
    }

    /// 10-cycle windows at 10 completions each (1000 cps baseline),
    /// dipping to 2 during [30, 50), back to 10 from 60.
    fn dip_samples() -> Vec<WindowSample> {
        let mut v = Vec::new();
        for i in 0..10u64 {
            let c = if (3..5).contains(&i) {
                2
            } else if i == 5 {
                6
            } else {
                10
            };
            v.push(sample(i * 10, (i + 1) * 10, c));
        }
        v
    }

    #[test]
    fn schedule_builders_and_flags() {
        let s = FaultSchedule::new()
            .worker_crash(100, Some(200), 2)
            .loss_burst(300, Some(400), 0.05)
            .sample_every(10);
        assert_eq!(s.events.len(), 2);
        assert_eq!(s.sample_window, 10);
        assert!(s.has_worker_crash());
        assert!(s.has_loss_burst());
        assert!(!FaultSchedule::new()
            .syn_flood(1, None, 8)
            .has_worker_crash());
        assert!(FaultSchedule::new().is_empty());
    }

    #[test]
    #[should_panic(expected = "heal must come after injection")]
    fn heal_before_injection_panics() {
        let _ = FaultSchedule::new().worker_crash(100, Some(100), 0);
    }

    #[test]
    fn backend_crash_and_flap_builders() {
        let s = FaultSchedule::new().backend_crash(100, Some(200), 1);
        assert!(s.has_backend_fault());
        assert!(!s.has_worker_crash());
        assert_eq!(s.events[0].kind.label(), "backend_crash");

        let f = FaultSchedule::new().backend_flap(100, 50, 30, 3, 0);
        assert_eq!(f.events.len(), 3);
        assert_eq!(f.events[0].at, 100);
        assert_eq!(f.events[0].heal_at, Some(150));
        assert_eq!(f.events[1].at, 180);
        assert_eq!(f.events[1].heal_at, Some(230));
        assert_eq!(f.events[2].at, 260);
        assert!(f.has_backend_fault());
        assert!(!FaultSchedule::new()
            .syn_flood(1, None, 4)
            .has_backend_fault());
    }

    #[test]
    #[should_panic(expected = "flap phases must be non-empty")]
    fn empty_flap_phase_panics() {
        let _ = FaultSchedule::new().backend_flap(100, 0, 10, 2, 0);
    }

    #[test]
    fn window_cps() {
        let s = sample(0, 10, 5);
        assert!((s.cps(HZ) - 500.0).abs() < 1e-9);
        assert_eq!(sample(5, 5, 9).cps(HZ), 0.0, "degenerate window");
    }

    #[test]
    fn analysis_finds_baseline_depth_and_recovery() {
        let sched = FaultSchedule::new()
            .core_stall(30, Some(50), 1)
            .sample_every(10);
        let r = RobustnessReport::analyze(&sched, 10, dip_samples(), HZ);
        assert_eq!(r.faults.len(), 1);
        let f = &r.faults[0];
        assert!((f.baseline_cps - 1_000.0).abs() < 1e-9, "{f:?}");
        assert!((f.degraded_cps - 200.0).abs() < 1e-9);
        assert!((f.degradation_depth - 0.8).abs() < 1e-9);
        // Heal at 50; window [50,60) holds 6 (600 cps < 900), [60,70)
        // holds 10 (1000 cps ≥ 900) → recovered at 70, i.e. 20 cycles.
        assert_eq!(f.time_to_recover, Some(20));
    }

    #[test]
    fn analysis_counts_errors_inside_fault_window() {
        let mut samples = dip_samples();
        samples[3].resets = 4;
        samples[4].timeouts = 2;
        samples[4].refusals = 7;
        samples[8].resets = 99; // outside the fault window
        let sched = FaultSchedule::new().worker_crash(30, Some(50), 0);
        let r = RobustnessReport::analyze(&sched, 10, samples, HZ);
        let f = &r.faults[0];
        assert_eq!(f.resets_during, 4);
        assert_eq!(f.timeouts_during, 2);
        assert_eq!(f.refusals_during, 7);
    }

    #[test]
    fn unrecovered_fault_reports_none() {
        // Throughput never returns after the fault.
        let mut v = Vec::new();
        for i in 0..6u64 {
            v.push(sample(i * 10, (i + 1) * 10, if i < 3 { 10 } else { 1 }));
        }
        let sched = FaultSchedule::new().queue_failure(30, Some(40), 1);
        let r = RobustnessReport::analyze(&sched, 10, v, HZ);
        assert_eq!(r.faults[0].time_to_recover, None);
    }

    #[test]
    fn unhealed_fault_measures_recovery_from_injection() {
        // A fault with no heal: degradation window runs to the end, and
        // recovery (adaptation) is measured from the injection point.
        let mut v = Vec::new();
        for i in 0..6u64 {
            v.push(sample(i * 10, (i + 1) * 10, if i == 3 { 2 } else { 10 }));
        }
        let sched = FaultSchedule::new().worker_crash(30, None, 0);
        let r = RobustnessReport::analyze(&sched, 10, v, HZ);
        let f = &r.faults[0];
        assert_eq!(f.healed_at, None);
        assert_eq!(
            f.time_to_recover,
            Some(20),
            "window [40,50) is back at baseline"
        );
    }

    #[test]
    fn empty_samples_are_harmless() {
        let sched = FaultSchedule::new().syn_flood(5, Some(9), 4);
        let r = RobustnessReport::analyze(&sched, 10, Vec::new(), HZ);
        let f = &r.faults[0];
        assert_eq!(f.baseline_cps, 0.0);
        assert_eq!(f.time_to_recover, None);
        assert_eq!(f.degradation_depth, 0.0);
    }

    #[test]
    fn report_digest_is_stable_and_content_sensitive() {
        let sched = FaultSchedule::new().core_stall(30, Some(50), 1);
        let a = RobustnessReport::analyze(&sched, 10, dip_samples(), HZ);
        let b = RobustnessReport::analyze(&sched, 10, dip_samples(), HZ);
        assert_eq!(a.digest(), b.digest());
        let mut tampered = dip_samples();
        tampered[0].completed += 1;
        let c = RobustnessReport::analyze(&sched, 10, tampered, HZ);
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn report_round_trips_through_json() {
        let sched = FaultSchedule::new().worker_crash(30, Some(50), 2);
        let r = RobustnessReport::analyze(&sched, 10, dip_samples(), HZ);
        let json = serde_json::to_string(&r).unwrap();
        let back: RobustnessReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
