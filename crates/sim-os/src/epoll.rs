//! Epoll instances with the `ep.lock`-guarded ready list.
//!
//! The NET_RX softirq posts readiness events onto an epoll instance's
//! ready list under `ep.lock`; the owning process drains the list in
//! `epoll_wait` under the same lock. When softirq processing and the
//! application run on different cores (no connection locality), the two
//! sides contend — the `ep.lock` row of Table 1. Under Fastsocket's
//! per-core process zones, both sides run on one core and the contention
//! count drops to zero.

use serde::{Deserialize, Serialize};
use sim_core::{CoreId, CycleClass, Cycles};
use sim_mem::ObjKind;
use sim_sync::LockClass;

use crate::ctx::{KernelCtx, Op};

/// Identifies an epoll instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EpollId(u32);

/// A readiness event delivered through epoll.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpollEvent {
    /// User token supplied at registration time (`epoll_data`); apps
    /// typically store the file descriptor or a connection id here.
    pub data: u64,
    /// Whether the descriptor is readable.
    pub readable: bool,
    /// Whether the descriptor is writable.
    pub writable: bool,
}

/// Cycle costs of epoll operations.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EpollCosts {
    /// `epoll_ctl` fixed cost.
    pub ctl: Cycles,
    /// Protected work per event post (softirq side).
    pub post_hold: Cycles,
    /// `epoll_wait` fixed cost plus protected drain work.
    pub wait_hold: Cycles,
    /// Extra `epoll_wait` cycles per 1024 *watched* descriptors
    /// (modeled, after `watched_scale`): the rbtree/ready-list
    /// bookkeeping that stops being free at million-fd interest sets.
    /// Zero (the default) keeps the legacy constant-cost model.
    pub wait_scan_per_1k: Cycles,
    /// Each registered interest models this many real descriptors
    /// (mirrors `MemConfig::scale` so 64k simulated sockets can stand
    /// in for millions of watched fds).
    pub watched_scale: u32,
}

impl Default for EpollCosts {
    fn default() -> Self {
        EpollCosts {
            ctl: 700,
            post_hold: 260,
            wait_hold: 420,
            wait_scan_per_1k: 0,
            watched_scale: 1,
        }
    }
}

#[derive(Debug)]
struct Instance {
    lock: sim_sync::LockId,
    obj: sim_mem::ObjId,
    owner_core: CoreId,
    ready: Vec<EpollEvent>,
    interest: u32,
}

/// All epoll instances in the system.
#[derive(Debug)]
pub struct EpollSystem {
    instances: Vec<Instance>,
    costs: EpollCosts,
}

impl EpollSystem {
    /// Creates an empty system with the given costs.
    pub fn new(costs: EpollCosts) -> Self {
        EpollSystem {
            instances: Vec::new(),
            costs,
        }
    }

    /// Creates an epoll instance owned by a process pinned to `core`.
    pub fn create(&mut self, ctx: &mut KernelCtx, core: CoreId) -> EpollId {
        let id = EpollId(self.instances.len() as u32);
        self.instances.push(Instance {
            lock: ctx.locks.register(LockClass::EpLock),
            obj: ctx.cache.alloc(ObjKind::Epoll, core),
            owner_core: core,
            ready: Vec::new(),
            interest: 0,
        });
        id
    }

    /// `epoll_ctl(EPOLL_CTL_ADD)`: registers interest in a descriptor.
    pub fn ctl_add(&mut self, ctx: &mut KernelCtx, op: &mut Op, ep: EpollId) {
        op.trace_enter(sim_trace::TraceLabel::Epoll);
        let inst = &mut self.instances[ep.0 as usize];
        inst.interest += 1;
        op.work(CycleClass::Epoll, self.costs.ctl);
        op.touch_mut(ctx, inst.obj);
        op.lock_do(
            &mut ctx.locks,
            inst.lock,
            CycleClass::Epoll,
            self.costs.post_hold,
        );
        op.trace_exit(sim_trace::TraceLabel::Epoll);
    }

    /// `epoll_ctl(EPOLL_CTL_DEL)`: removes interest.
    pub fn ctl_del(&mut self, ctx: &mut KernelCtx, op: &mut Op, ep: EpollId) {
        op.trace_enter(sim_trace::TraceLabel::Epoll);
        let inst = &mut self.instances[ep.0 as usize];
        debug_assert!(inst.interest > 0, "ctl_del without interest");
        inst.interest -= 1;
        op.work(CycleClass::Epoll, self.costs.ctl);
        op.touch_mut(ctx, inst.obj);
        op.lock_do(
            &mut ctx.locks,
            inst.lock,
            CycleClass::Epoll,
            self.costs.post_hold,
        );
        op.trace_exit(sim_trace::TraceLabel::Epoll);
    }

    /// Posts a readiness event from softirq context (as part of `op`,
    /// which may run on any core). Level-triggered semantics: an event
    /// for a `data` token already on the ready list is coalesced into
    /// it rather than queued twice. Returns `true` when the list was
    /// previously empty — i.e. the owner process needs a wakeup.
    pub fn post(&mut self, ctx: &mut KernelCtx, op: &mut Op, ep: EpollId, ev: EpollEvent) -> bool {
        op.trace_enter(sim_trace::TraceLabel::Epoll);
        let inst = &mut self.instances[ep.0 as usize];
        // The post→wait wakeup is a happens-before edge on this
        // instance: the waiter is ordered after everything the posting
        // op wrote (published at the poster's commit).
        op.checker()
            .hb_publish(op.core().0, sim_check::Chan::Epoll(ep.0));
        op.touch_mut(ctx, inst.obj);
        op.lock_do(
            &mut ctx.locks,
            inst.lock,
            CycleClass::Epoll,
            self.costs.post_hold,
        );
        op.trace_exit(sim_trace::TraceLabel::Epoll);
        let was_empty = inst.ready.is_empty();
        if let Some(existing) = inst.ready.iter_mut().find(|e| e.data == ev.data) {
            existing.readable |= ev.readable;
            existing.writable |= ev.writable;
        } else {
            inst.ready.push(ev);
        }
        was_empty
    }

    /// `epoll_wait`: drains up to `max_events` pending events into
    /// `out` (as part of `op`, running on the owner's core).
    pub fn wait(
        &mut self,
        ctx: &mut KernelCtx,
        op: &mut Op,
        ep: EpollId,
        max_events: usize,
        out: &mut Vec<EpollEvent>,
    ) {
        op.trace_enter(sim_trace::TraceLabel::Epoll);
        let inst = &mut self.instances[ep.0 as usize];
        op.checker().lint(
            sim_check::PartitionLint::EpollWait,
            op.core().0,
            inst.owner_core.0,
        );
        op.checker()
            .hb_join(op.core().0, sim_check::Chan::Epoll(ep.0));
        op.touch_mut(ctx, inst.obj);
        if self.costs.wait_scan_per_1k > 0 {
            // Ready-list scaling: the cost of a wait grows with the
            // modeled watched-set size, in 1k-descriptor steps.
            let watched = u64::from(inst.interest) * u64::from(self.costs.watched_scale.max(1));
            op.work(
                CycleClass::Epoll,
                self.costs.wait_scan_per_1k * watched.div_ceil(1024),
            );
        }
        op.lock_do(
            &mut ctx.locks,
            inst.lock,
            CycleClass::Epoll,
            self.costs.wait_hold,
        );
        let n = max_events.min(inst.ready.len());
        out.extend(inst.ready.drain(..n));
        op.trace_exit(sim_trace::TraceLabel::Epoll);
    }

    /// Number of pending (undelivered) events on an instance.
    pub fn pending(&self, ep: EpollId) -> usize {
        self.instances[ep.0 as usize].ready.len()
    }

    /// The core of the process owning this instance.
    pub fn owner_core(&self, ep: EpollId) -> CoreId {
        self.instances[ep.0 as usize].owner_core
    }

    /// Number of registered interests on an instance.
    pub fn interest_count(&self, ep: EpollId) -> u32 {
        self.instances[ep.0 as usize].interest
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::SimRng;
    use sim_mem::{CacheCosts, CacheModel};
    use sim_sync::{LockCosts, LockTable};

    fn ctx(cores: usize) -> KernelCtx {
        KernelCtx::new(
            cores,
            LockTable::new(LockCosts::default()),
            CacheModel::new(CacheCosts::default()),
            SimRng::seed(21),
        )
    }

    fn ev(data: u64) -> EpollEvent {
        EpollEvent {
            data,
            readable: true,
            writable: false,
        }
    }

    #[test]
    fn post_then_wait_delivers_events_in_order() {
        let mut c = ctx(2);
        let mut eps = EpollSystem::new(EpollCosts::default());
        let ep = eps.create(&mut c, CoreId(0));

        let mut op = c.begin(CoreId(1), 0);
        assert!(eps.post(&mut c, &mut op, ep, ev(3)), "first post wakes");
        assert!(
            !eps.post(&mut c, &mut op, ep, ev(4)),
            "second post does not"
        );
        op.commit(&mut c.cpu);

        let mut out = Vec::new();
        let mut op = c.begin(CoreId(0), 0);
        eps.wait(&mut c, &mut op, ep, 64, &mut out);
        op.commit(&mut c.cpu);
        assert_eq!(out, vec![ev(3), ev(4)]);
        assert_eq!(eps.pending(ep), 0);
    }

    #[test]
    fn cross_core_post_and_wait_contend_on_ep_lock() {
        let mut c = ctx(2);
        let mut eps = EpollSystem::new(EpollCosts::default());
        let ep = eps.create(&mut c, CoreId(0));
        // Softirq on core 1 posts while the app on core 0 waits, at
        // overlapping times.
        let mut post_op = c.begin(CoreId(1), 0);
        eps.post(&mut c, &mut post_op, ep, ev(1));
        post_op.commit(&mut c.cpu);
        let mut out = Vec::new();
        let mut wait_op = c.begin(CoreId(0), 0);
        eps.wait(&mut c, &mut wait_op, ep, 64, &mut out);
        wait_op.commit(&mut c.cpu);
        assert!(c.locks.stats(LockClass::EpLock).contentions > 0);
    }

    #[test]
    fn same_core_usage_never_contends() {
        let mut c = ctx(1);
        let mut eps = EpollSystem::new(EpollCosts::default());
        let ep = eps.create(&mut c, CoreId(0));
        for i in 0..50 {
            let mut op = c.begin(CoreId(0), 0);
            eps.post(&mut c, &mut op, ep, ev(i));
            let mut out = Vec::new();
            eps.wait(&mut c, &mut op, ep, 64, &mut out);
            op.commit(&mut c.cpu);
        }
        assert_eq!(c.locks.stats(LockClass::EpLock).contentions, 0);
    }

    #[test]
    fn interest_tracking() {
        let mut c = ctx(1);
        let mut eps = EpollSystem::new(EpollCosts::default());
        let ep = eps.create(&mut c, CoreId(0));
        let mut op = c.begin(CoreId(0), 0);
        eps.ctl_add(&mut c, &mut op, ep);
        eps.ctl_add(&mut c, &mut op, ep);
        eps.ctl_del(&mut c, &mut op, ep);
        op.commit(&mut c.cpu);
        assert_eq!(eps.interest_count(ep), 1);
        assert_eq!(eps.owner_core(ep), CoreId(0));
    }
}
