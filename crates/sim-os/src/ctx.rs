//! The kernel execution fabric: shared context and costed operations.

use sim_check::Checker;
use sim_core::{CoreId, CostSheet, Cpu, CycleClass, Cycles, SimRng};
use sim_mem::{CacheModel, ObjId};
use sim_sync::{LockClass, LockId, LockTable};
use sim_trace::{TraceEvent, TraceLabel, Tracer};

/// Shared mutable state of the simulated kernel: the CPU, every lock,
/// every tracked cache object, and the RNG.
#[derive(Debug)]
pub struct KernelCtx {
    /// The multicore CPU.
    pub cpu: Cpu,
    /// All simulated locks.
    pub locks: LockTable,
    /// The cache-coherence model.
    pub cache: CacheModel,
    /// Deterministic randomness.
    pub rng: SimRng,
    /// Observability sink; disabled by default (one branch per event).
    pub tracer: Tracer,
    /// Sanitizer sink; disabled by default (one branch per hook). Never
    /// affects costs or timing — it only observes.
    pub checker: Checker,
}

impl KernelCtx {
    /// Creates a context for `cores` cores with the given lock/cache
    /// models and seed.
    pub fn new(cores: usize, locks: LockTable, cache: CacheModel, rng: SimRng) -> Self {
        KernelCtx {
            cpu: Cpu::new(cores),
            locks,
            cache,
            rng,
            tracer: Tracer::disabled(),
            checker: Checker::disabled(),
        }
    }

    /// Installs the tracer every subsequent [`Op`] will report into.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Installs the checker every subsequent [`Op`] will report into.
    pub fn set_checker(&mut self, checker: Checker) {
        self.checker = checker;
    }

    /// Begins a costed operation on `core`, not earlier than `earliest`.
    pub fn begin(&self, core: CoreId, earliest: Cycles) -> Op {
        let start = earliest.max(self.cpu.free_at(core));
        let tracer = self.tracer.clone();
        tracer.record(TraceEvent::enter(start, core.0, TraceLabel::CoreOp));
        let checker = self.checker.clone();
        checker.op_begin(core.0);
        Op {
            core,
            start,
            sheet: CostSheet::new(),
            syscalls: 0,
            tracer,
            checker,
        }
    }
}

/// Token for a lock held across part of an operation, returned by
/// [`Op::lock_scope`] and consumed by [`Op::unlock`].
///
/// The scope is *logical*: it tells the sim-check lockdep detector that
/// every lock acquired before the matching [`Op::unlock`] nests inside
/// this one. Cost accounting is identical to [`Op::lock_do`] — the
/// timed-reservation lock model already charges the full hold time at
/// acquisition.
#[derive(Debug)]
#[must_use = "a scoped hold must be released with Op::unlock before the op commits"]
pub struct HeldLock {
    class: LockClass,
    subclass: u8,
}

/// One kernel path being executed on a core: accumulates work, lock
/// acquisitions and cache accesses, then commits to the CPU.
///
/// Lock acquisition and cache-access timestamps use the operation's
/// *current* virtual time (`start` + cost so far), so two overlapping
/// operations on different cores contend realistically.
///
/// # Example
///
/// ```
/// use sim_core::{CoreId, CycleClass, SimRng};
/// use sim_mem::{CacheCosts, CacheModel, ObjKind};
/// use sim_os::KernelCtx;
/// use sim_sync::{LockClass, LockCosts, LockTable};
///
/// let mut ctx = KernelCtx::new(
///     2,
///     LockTable::new(LockCosts::default()),
///     CacheModel::new(CacheCosts::default()),
///     SimRng::seed(1),
/// );
/// let lock = ctx.locks.register(LockClass::Slock);
/// let tcb = ctx.cache.alloc(ObjKind::Tcb, CoreId(0));
///
/// let mut op = ctx.begin(CoreId(0), 0);
/// op.work(CycleClass::Syscall, 200);
/// op.touch_mut(&mut ctx, tcb);
/// let held = op.lock_scope(&mut ctx.locks, lock, CycleClass::Handshake, 500);
/// op.unlock(held);
/// let span = op.commit(&mut ctx.cpu);
/// assert!(span.end >= 700);
/// ```
#[derive(Debug)]
pub struct Op {
    core: CoreId,
    start: Cycles,
    sheet: CostSheet,
    syscalls: u32,
    tracer: Tracer,
    checker: Checker,
}

impl Op {
    /// The core this operation runs on.
    pub fn core(&self) -> CoreId {
        self.core
    }

    /// The operation's current virtual time.
    pub fn now(&self) -> Cycles {
        self.start + self.sheet.total()
    }

    /// When the operation began executing.
    pub fn start(&self) -> Cycles {
        self.start
    }

    /// Cost accumulated so far.
    pub fn cost(&self) -> Cycles {
        self.sheet.total()
    }

    /// The sanitizer handle for this operation (disabled ⇒ every hook
    /// is a no-op). Used by subsystems to run partition lints.
    pub fn checker(&self) -> &Checker {
        &self.checker
    }

    /// Marks a sanitizer boundary between logical kernel entries
    /// (packets, syscalls) batched into this op: locks acquired for one
    /// entry must not vouch for a later entry's writes. No-op when
    /// checking is disabled.
    pub fn check_boundary(&self) {
        self.checker.boundary(self.core.0);
    }

    /// Adds `cycles` of straight-line work attributed to `class`.
    pub fn work(&mut self, class: CycleClass, cycles: Cycles) {
        self.sheet.add(class, cycles);
    }

    /// Number of syscalls performed within this operation (used by the
    /// syscall-batching model to amortize entry/exit costs).
    pub fn syscall_count(&self) -> u32 {
        self.syscalls
    }

    /// Records one syscall within this operation.
    pub fn count_syscall(&mut self) {
        self.syscalls += 1;
    }

    /// Opens a trace span labelled `label` at the op's current virtual
    /// time. No-op when tracing is disabled.
    pub fn trace_enter(&self, label: TraceLabel) {
        self.tracer
            .record(TraceEvent::enter(self.now(), self.core.0, label));
        self.checker.site_enter(self.core.0, label.name());
    }

    /// Closes the innermost trace span labelled `label`.
    pub fn trace_exit(&self, label: TraceLabel) {
        self.tracer
            .record(TraceEvent::exit(self.now(), self.core.0, label));
        self.checker.site_exit(self.core.0);
    }

    /// Emits an instantaneous event tied to connection `conn` (a
    /// [`flow_hash`](sim_trace) style identifier); lifecycle labels
    /// feed the latency histograms.
    pub fn trace_mark(&self, conn: u64, label: TraceLabel) {
        self.tracer
            .record(TraceEvent::instant(self.now(), self.core.0, conn, label));
    }

    /// Performs a tracked cache access to `obj`, charging the stall to
    /// `CycleClass::CacheMiss`.
    pub fn touch(&mut self, ctx: &mut KernelCtx, obj: ObjId) {
        self.touch_class(ctx, obj, CycleClass::CacheMiss);
    }

    /// Performs a tracked cache access, attributing the stall cycles to
    /// `class` (e.g. the listener-walk stalls count as
    /// `CycleClass::ListenLookup` so the paper's `inet_lookup_listener`
    /// cycle share can be measured).
    pub fn touch_class(&mut self, ctx: &mut KernelCtx, obj: ObjId, class: CycleClass) {
        let access = ctx.cache.access(obj, self.core, &mut ctx.rng);
        self.sheet.add(class, access.cost);
    }

    /// Like [`Op::touch`], but declares the access a *write* to the
    /// sim-check lockset detector. Cost-wise identical to `touch`.
    pub fn touch_mut(&mut self, ctx: &mut KernelCtx, obj: ObjId) {
        self.touch_mut_class(ctx, obj, CycleClass::CacheMiss);
    }

    /// Like [`Op::touch_class`], but declares the access a write.
    pub fn touch_mut_class(&mut self, ctx: &mut KernelCtx, obj: ObjId, class: CycleClass) {
        self.touch_class(ctx, obj, class);
        if self.checker.is_enabled() {
            self.checker.on_write(
                self.core.0,
                obj.index(),
                ctx.cache.gen_of(obj),
                ctx.cache.kind_of(obj),
            );
        }
    }

    /// Acquires `lock`, performs `hold` cycles of protected work
    /// attributed to `class`, and releases. Spin time is charged to
    /// `CycleClass::LockSpin`; the fixed acquisition cost to `class`.
    ///
    /// The acquisition is *transient* for lock-order purposes: it
    /// orders after any scoped hold currently open, but nothing orders
    /// after it.
    pub fn lock_do(
        &mut self,
        locks: &mut LockTable,
        lock: LockId,
        class: CycleClass,
        hold: Cycles,
    ) {
        self.lock_do_nested(locks, lock, class, hold, 0);
    }

    /// [`Op::lock_do`] with an explicit lockdep nesting subclass (the
    /// `SINGLE_DEPTH_NESTING` analog; listen-socket `slock`s use 1).
    pub fn lock_do_nested(
        &mut self,
        locks: &mut LockTable,
        lock: LockId,
        class: CycleClass,
        hold: Cycles,
        subclass: u8,
    ) {
        self.lock_acquire(locks, lock, class, hold);
        self.checker
            .on_acquire(self.core.0, locks.class_of(lock), subclass, false);
    }

    /// Like [`Op::lock_do`], but keeps the lock on the lockdep held
    /// stack until [`Op::unlock`]: locks acquired in between nest
    /// inside it. Costs and timing are identical to [`Op::lock_do`].
    pub fn lock_scope(
        &mut self,
        locks: &mut LockTable,
        lock: LockId,
        class: CycleClass,
        hold: Cycles,
    ) -> HeldLock {
        self.lock_scope_nested(locks, lock, class, hold, 0)
    }

    /// [`Op::lock_scope`] with an explicit lockdep nesting subclass.
    pub fn lock_scope_nested(
        &mut self,
        locks: &mut LockTable,
        lock: LockId,
        class: CycleClass,
        hold: Cycles,
        subclass: u8,
    ) -> HeldLock {
        self.lock_acquire(locks, lock, class, hold);
        let lock_class = locks.class_of(lock);
        self.checker
            .on_acquire(self.core.0, lock_class, subclass, true);
        HeldLock {
            class: lock_class,
            subclass,
        }
    }

    /// Closes a scoped hold opened by [`Op::lock_scope`].
    pub fn unlock(&mut self, held: HeldLock) {
        self.checker
            .on_release(self.core.0, held.class, held.subclass);
    }

    fn lock_acquire(
        &mut self,
        locks: &mut LockTable,
        lock: LockId,
        class: CycleClass,
        hold: Cycles,
    ) {
        let wait_from = self.now();
        let acq = locks.acquire(lock, self.core, wait_from, hold);
        if acq.spin > 0 {
            // Surface contention as a span so spin time shows up in
            // the flamegraph under whichever path took the lock.
            self.tracer.record(TraceEvent::enter(
                wait_from,
                self.core.0,
                TraceLabel::LockWait,
            ));
            self.tracer.record(TraceEvent::exit(
                wait_from + acq.spin,
                self.core.0,
                TraceLabel::LockWait,
            ));
        }
        self.sheet.add(CycleClass::LockSpin, acq.spin);
        self.sheet.add(class, acq.acquire_cost + hold);
    }

    /// Commits the accumulated cost to the CPU; the core is busy for
    /// the operation's span.
    pub fn commit(self, cpu: &mut Cpu) -> sim_core::cpu::Span {
        let span = cpu.execute(self.core, self.start, &self.sheet);
        self.tracer
            .record(TraceEvent::exit(span.end, self.core.0, TraceLabel::CoreOp));
        self.checker.op_commit(self.core.0);
        span
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_check::PartitionPolicy;
    use sim_core::CycleClass;
    use sim_mem::{CacheCosts, CacheModel, ObjKind};
    use sim_sync::{LockClass, LockCosts, LockTable};

    fn ctx(cores: usize) -> KernelCtx {
        KernelCtx::new(
            cores,
            LockTable::new(LockCosts::default()),
            CacheModel::new(CacheCosts::default()),
            SimRng::seed(7),
        )
    }

    #[test]
    fn op_accumulates_and_commits() {
        let mut c = ctx(1);
        let mut op = c.begin(CoreId(0), 100);
        op.work(CycleClass::AppWork, 50);
        op.work(CycleClass::Syscall, 25);
        assert_eq!(op.now(), 175);
        let span = op.commit(&mut c.cpu);
        assert_eq!(span.start, 100);
        assert_eq!(span.end, 175);
        assert_eq!(c.cpu.class_cycles(CoreId(0), CycleClass::AppWork), 50);
    }

    #[test]
    fn op_starts_after_core_becomes_free() {
        let mut c = ctx(1);
        let mut op1 = c.begin(CoreId(0), 0);
        op1.work(CycleClass::AppWork, 1_000);
        op1.commit(&mut c.cpu);
        let op2 = c.begin(CoreId(0), 500);
        assert_eq!(op2.start(), 1_000);
    }

    #[test]
    fn overlapping_ops_on_different_cores_contend_on_locks() {
        let mut c = ctx(2);
        let lock = c.locks.register(LockClass::Slock);
        let mut a = c.begin(CoreId(0), 0);
        a.lock_do(&mut c.locks, lock, CycleClass::Handshake, 2_000);
        a.commit(&mut c.cpu);
        // Core 1's op overlaps core 0's hold window.
        let mut b = c.begin(CoreId(1), 100);
        b.lock_do(&mut c.locks, lock, CycleClass::Handshake, 100);
        assert!(c.cpu.class_cycles(CoreId(0), CycleClass::LockSpin) == 0);
        b.commit(&mut c.cpu);
        assert!(c.cpu.class_cycles(CoreId(1), CycleClass::LockSpin) > 0);
        assert_eq!(c.locks.stats(LockClass::Slock).contentions, 1);
    }

    #[test]
    fn ops_emit_core_spans_and_lock_wait_spans() {
        let mut c = ctx(2);
        c.set_tracer(Tracer::enabled(2, 1024));
        let lock = c.locks.register(LockClass::Slock);
        let mut a = c.begin(CoreId(0), 0);
        a.lock_do(&mut c.locks, lock, CycleClass::Handshake, 2_000);
        a.commit(&mut c.cpu);
        let mut b = c.begin(CoreId(1), 100);
        b.lock_do(&mut c.locks, lock, CycleClass::Handshake, 100);
        b.commit(&mut c.cpu);
        let t = c.tracer.clone();
        assert!(t.self_cycles(TraceLabel::CoreOp) > 0);
        assert!(
            t.self_cycles(TraceLabel::LockWait) > 0,
            "core 1 spun on the slock"
        );
        assert_eq!(t.unbalanced_exits(), 0);
    }

    #[test]
    fn touch_charges_cache_stalls() {
        let mut c = ctx(2);
        let obj = c.cache.alloc(ObjKind::Tcb, CoreId(0));
        let mut op = c.begin(CoreId(1), 0);
        op.touch(&mut c, obj);
        assert!(op.cost() >= CacheCosts::default().remote_transfer);
        op.commit(&mut c.cpu);
        assert!(c.cpu.class_cycles(CoreId(1), CycleClass::CacheMiss) > 0);
    }

    #[test]
    fn scope_costs_exactly_like_lock_do() {
        let mut plain = ctx(1);
        let mut scoped = ctx(1);
        let lp = plain.locks.register(LockClass::Slock);
        let ls = scoped.locks.register(LockClass::Slock);

        let mut a = plain.begin(CoreId(0), 0);
        a.lock_do(&mut plain.locks, lp, CycleClass::TcbManage, 700);
        let cost_plain = a.cost();
        a.commit(&mut plain.cpu);

        let mut b = scoped.begin(CoreId(0), 0);
        let held = b.lock_scope(&mut scoped.locks, ls, CycleClass::TcbManage, 700);
        let cost_scoped = b.cost();
        b.unlock(held);
        assert_eq!(cost_plain, cost_scoped, "scoping is cost-neutral");
        assert_eq!(b.cost(), cost_scoped, "unlock is free");
        b.commit(&mut scoped.cpu);
    }

    #[test]
    fn checker_observes_op_lifecycle() {
        let mut c = ctx(2);
        c.set_checker(Checker::enabled(2, PartitionPolicy::default()));
        let slock = c.locks.register(LockClass::Slock);
        let base = c.locks.register(LockClass::BaseLock);
        let obj = c.cache.alloc(ObjKind::Tcb, CoreId(0));

        // Core 0: slock (scoped) -> base.lock, writing the TCB.
        let mut a = c.begin(CoreId(0), 0);
        let held = a.lock_scope(&mut c.locks, slock, CycleClass::TcbManage, 500);
        a.touch_mut(&mut c, obj);
        a.lock_do(&mut c.locks, base, CycleClass::Timer, 100);
        a.unlock(held);
        a.commit(&mut c.cpu);

        // Core 1: base.lock (scoped) -> slock — an inversion.
        let mut b = c.begin(CoreId(1), 0);
        let held = b.lock_scope(&mut c.locks, base, CycleClass::Timer, 100);
        b.lock_do(&mut c.locks, slock, CycleClass::TcbManage, 100);
        b.unlock(held);
        b.commit(&mut c.cpu);

        let report = c.checker.report().expect("checker enabled");
        assert_eq!(report.lockdep, 1, "{report:?}");
        assert_eq!(report.lockset, 0);
    }
}
