//! Per-process file-descriptor tables.
//!
//! POSIX requires `open`-like calls to return the *lowest* available
//! descriptor. The paper (§5, "Relaxing System Call Restrictions on
//! Semantics") notes that HAProxy relies on this rule — it indexes a
//! connection array by FD — so Fastsocket deliberately keeps it. This
//! table implements the rule exactly and is tested for it.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

/// A file descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Fd(pub u32);

/// Errors from FD allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FdError {
    /// The per-process descriptor limit (RLIMIT_NOFILE) was reached.
    LimitReached,
    /// Operation on a descriptor that is not open.
    BadFd,
}

impl std::fmt::Display for FdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FdError::LimitReached => f.write_str("file descriptor limit reached"),
            FdError::BadFd => f.write_str("bad file descriptor"),
        }
    }
}

impl std::error::Error for FdError {}

/// A per-process FD table mapping descriptors to entries of type `T`.
///
/// # Example
///
/// ```
/// # use sim_os::fdtable::{Fd, FdTable};
/// let mut t: FdTable<&'static str> = FdTable::new(1024);
/// let a = t.alloc("sock-a").unwrap();
/// let b = t.alloc("sock-b").unwrap();
/// assert_eq!((a, b), (Fd(0), Fd(1)));
/// t.close(a).unwrap();
/// // Lowest-available rule: fd 0 is reused before fd 2.
/// assert_eq!(t.alloc("sock-c").unwrap(), Fd(0));
/// ```
#[derive(Debug, Clone)]
pub struct FdTable<T> {
    entries: Vec<Option<T>>,
    freed: BTreeSet<u32>,
    limit: u32,
    open: u32,
}

impl<T> FdTable<T> {
    /// Creates a table with the given descriptor limit.
    pub fn new(limit: u32) -> Self {
        FdTable {
            entries: Vec::new(),
            freed: BTreeSet::new(),
            limit,
            open: 0,
        }
    }

    /// Allocates the lowest available descriptor for `value`.
    ///
    /// # Errors
    ///
    /// Returns [`FdError::LimitReached`] when the table is full.
    pub fn alloc(&mut self, value: T) -> Result<Fd, FdError> {
        if self.open >= self.limit {
            return Err(FdError::LimitReached);
        }
        self.open += 1;
        if let Some(&lowest) = self.freed.iter().next() {
            self.freed.remove(&lowest);
            self.entries[lowest as usize] = Some(value);
            Ok(Fd(lowest))
        } else {
            let fd = self.entries.len() as u32;
            self.entries.push(Some(value));
            Ok(Fd(fd))
        }
    }

    /// Returns a reference to the entry behind `fd`.
    pub fn get(&self, fd: Fd) -> Option<&T> {
        self.entries.get(fd.0 as usize)?.as_ref()
    }

    /// Returns a mutable reference to the entry behind `fd`.
    pub fn get_mut(&mut self, fd: Fd) -> Option<&mut T> {
        self.entries.get_mut(fd.0 as usize)?.as_mut()
    }

    /// Closes `fd`, returning its entry.
    ///
    /// # Errors
    ///
    /// Returns [`FdError::BadFd`] if `fd` is not open.
    pub fn close(&mut self, fd: Fd) -> Result<T, FdError> {
        let slot = self.entries.get_mut(fd.0 as usize).ok_or(FdError::BadFd)?;
        let value = slot.take().ok_or(FdError::BadFd)?;
        self.freed.insert(fd.0);
        self.open -= 1;
        Ok(value)
    }

    /// Number of open descriptors.
    pub fn open_count(&self) -> u32 {
        self.open
    }

    /// The configured limit.
    pub fn limit(&self) -> u32 {
        self.limit
    }

    /// Iterates over `(fd, entry)` pairs of open descriptors.
    pub fn iter(&self) -> impl Iterator<Item = (Fd, &T)> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.as_ref().map(|v| (Fd(i as u32), v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptors_are_sequential_from_zero() {
        let mut t: FdTable<u32> = FdTable::new(16);
        for i in 0..5 {
            assert_eq!(t.alloc(i).unwrap(), Fd(i));
        }
        assert_eq!(t.open_count(), 5);
    }

    #[test]
    fn lowest_available_rule() {
        let mut t: FdTable<u32> = FdTable::new(16);
        for i in 0..6 {
            t.alloc(i).unwrap();
        }
        t.close(Fd(4)).unwrap();
        t.close(Fd(1)).unwrap();
        t.close(Fd(2)).unwrap();
        // Reuse in ascending order: 1, 2, 4, then fresh 6.
        assert_eq!(t.alloc(100).unwrap(), Fd(1));
        assert_eq!(t.alloc(101).unwrap(), Fd(2));
        assert_eq!(t.alloc(102).unwrap(), Fd(4));
        assert_eq!(t.alloc(103).unwrap(), Fd(6));
    }

    #[test]
    fn haproxy_invariant_fd_below_open_count_plus_closed() {
        // HAProxy assumes fds never exceed the maximum concurrent
        // connection count; with the lowest-fd rule, after any sequence
        // of alloc/close the next fd is at most the number of open fds.
        let mut t: FdTable<()> = FdTable::new(1024);
        let mut open = Vec::new();
        for round in 0..200u32 {
            if round % 3 == 2 {
                if let Some(fd) = open.pop() {
                    t.close(fd).unwrap();
                }
            } else {
                let fd = t.alloc(()).unwrap();
                assert!(
                    fd.0 <= t.open_count(),
                    "fd {} exceeds open count {}",
                    fd.0,
                    t.open_count()
                );
                open.push(fd);
            }
        }
    }

    #[test]
    fn limit_enforced() {
        let mut t: FdTable<()> = FdTable::new(2);
        t.alloc(()).unwrap();
        t.alloc(()).unwrap();
        assert_eq!(t.alloc(()).unwrap_err(), FdError::LimitReached);
        t.close(Fd(0)).unwrap();
        assert!(t.alloc(()).is_ok());
    }

    #[test]
    fn close_errors() {
        let mut t: FdTable<()> = FdTable::new(4);
        assert_eq!(t.close(Fd(0)).unwrap_err(), FdError::BadFd);
        let fd = t.alloc(()).unwrap();
        t.close(fd).unwrap();
        assert_eq!(t.close(fd).unwrap_err(), FdError::BadFd);
    }

    #[test]
    fn get_and_iter() {
        let mut t: FdTable<&str> = FdTable::new(8);
        let a = t.alloc("a").unwrap();
        let b = t.alloc("b").unwrap();
        assert_eq!(t.get(a), Some(&"a"));
        *t.get_mut(b).unwrap() = "B";
        let pairs: Vec<(Fd, &&str)> = t.iter().collect();
        assert_eq!(pairs.len(), 2);
        assert_eq!(*pairs[1].1, "B");
        assert_eq!(t.get(Fd(99)), None);
    }
}
