//! Socket VFS management: dentry/inode setup in three flavours.
//!
//! Sockets are exposed to applications as VFS files, so every socket
//! creation/destruction allocates and initializes a dentry and an inode
//! (§2.3, §3.4). What differs between kernels is the synchronization:
//!
//! * [`VfsMode::Legacy`] — Linux 2.6.32: one global `dcache_lock` and
//!   one global `inode_lock` serialize every allocation and free. These
//!   are the two hottest rows of Table 1 (26.4M and 4.3M contentions).
//! * [`VfsMode::Sharded`] — Linux 3.13-era fine-grained locking
//!   (per-bucket/sb-list locks, sloppy counters); modelled as N-way
//!   sharded locks with smaller critical sections.
//! * [`VfsMode::Fastpath`] — Fastsocket-aware VFS: skips the
//!   initialization/destruction of the unused dentry/inode machinery,
//!   touching only core-local state. No global lock is taken. Enough
//!   state is retained that `/proc`-based tools (`netstat`, `lsof`)
//!   still see the socket — modelled by [`Vfs::proc_visible_sockets`].

use serde::{Deserialize, Serialize};
use sim_core::{CoreId, CycleClass, Cycles};
use sim_mem::ObjKind;
use sim_sync::{LockClass, LockId};

use crate::ctx::{KernelCtx, Op};

/// The VFS implementation flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VfsMode {
    /// Global `dcache_lock` + `inode_lock` (Linux 2.6.32).
    Legacy,
    /// Fine-grained sharded locks (Linux 3.13-era).
    Sharded,
    /// Fastsocket-aware VFS fast path.
    Fastpath,
}

/// The VFS objects backing one socket FD.
#[derive(Debug, Clone, Copy)]
pub struct VfsNode {
    dentry: sim_mem::ObjId,
    inode: sim_mem::ObjId,
}

/// Cycle costs of VFS socket operations.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct VfsCosts {
    /// Protected dentry work per alloc/free under `dcache_lock`.
    pub dentry_hold: Cycles,
    /// Protected inode work per alloc/free under `inode_lock`.
    pub inode_hold: Cycles,
    /// Protected work of `d_instantiate` (second `dcache_lock`
    /// acquisition during allocation in 2.6.32).
    pub instantiate_hold: Cycles,
    /// Unprotected initialization work in Legacy/Sharded modes.
    pub init_work: Cycles,
    /// Total work on the Fastpath (no locks).
    pub fastpath_work: Cycles,
    /// Protected hash-chain maintenance per shard acquisition in
    /// [`VfsMode::Sharded`]: the 3.13-era fine-grained path still walks
    /// the per-bucket dentry chain before it can insert or unhash.
    pub shard_walk: Cycles,
    /// Protected work under 3.13's still-global `inode_sb_list_lock`:
    /// every `sock_alloc`/`iput` splices the inode in or out of the
    /// sockfs superblock list (made per-sb only in Linux 4.3). The list
    /// head and the sloppy inode counters are cold remote lines under
    /// cross-core socket churn, so the critical section is long enough
    /// to contend once every core allocates sockets concurrently.
    pub sb_list_hold: Cycles,
}

impl Default for VfsCosts {
    fn default() -> Self {
        VfsCosts {
            dentry_hold: 3_400,
            inode_hold: 2_100,
            instantiate_hold: 1_700,
            init_work: 1_500,
            fastpath_work: 260,
            shard_walk: 600,
            sb_list_hold: 2_200,
        }
    }
}

/// Number of lock shards in [`VfsMode::Sharded`].
const SHARDS: usize = 16;

/// How much shorter the Sharded (3.13-era) critical sections are than
/// the Legacy global-lock ones (finer-grained locking protects less
/// state per acquisition).
const SHARDED_HOLD_DIV: u64 = 2;

/// The VFS model.
#[derive(Debug)]
pub struct Vfs {
    mode: VfsMode,
    costs: VfsCosts,
    dcache_locks: Vec<LockId>,
    inode_locks: Vec<LockId>,
    /// 3.13's global `inode_sb_list_lock` (Sharded mode only; Legacy's
    /// global `inode_lock` already serializes the same list, Fastpath
    /// never links the inode at all).
    sb_list_lock: Option<LockId>,
    /// Per-shard shared cachelines (Sharded mode only): the dentry
    /// hash-bucket head and the inode hash-chain head that every
    /// insert/unhash dirties, bouncing between whichever cores last
    /// used the shard. Legacy mode pays for the same lines implicitly
    /// through its far longer global critical sections.
    shard_heads: Vec<[sim_mem::ObjId; 2]>,
    visible_sockets: u64,
    shard_rr: usize,
}

impl Vfs {
    /// Creates the VFS model, registering its locks in `ctx`.
    pub fn new(ctx: &mut KernelCtx, mode: VfsMode, costs: VfsCosts) -> Self {
        let shards = match mode {
            VfsMode::Legacy => 1,
            VfsMode::Sharded => SHARDS,
            VfsMode::Fastpath => 0,
        };
        let dcache_locks = (0..shards)
            .map(|_| ctx.locks.register(LockClass::DcacheLock))
            .collect();
        let inode_locks = (0..shards)
            .map(|_| ctx.locks.register(LockClass::InodeLock))
            .collect();
        let sb_list_lock = match mode {
            VfsMode::Sharded => Some(ctx.locks.register(LockClass::InodeLock)),
            _ => None,
        };
        let cores = ctx.cpu.num_cores().max(1);
        let shard_heads = match mode {
            VfsMode::Sharded => (0..shards)
                .map(|i| {
                    let home = CoreId((i % cores) as u16);
                    [
                        ctx.cache.alloc(ObjKind::Dentry, home),
                        ctx.cache.alloc(ObjKind::Inode, home),
                    ]
                })
                .collect(),
            _ => Vec::new(),
        };
        Vfs {
            mode,
            costs,
            dcache_locks,
            inode_locks,
            sb_list_lock,
            shard_heads,
            visible_sockets: 0,
            shard_rr: 0,
        }
    }

    /// The active mode.
    pub fn mode(&self) -> VfsMode {
        self.mode
    }

    fn shard(&mut self) -> usize {
        // Inodes/dentries land in shards by address hash; round-robin is
        // an adequate stand-in for a uniform hash.
        self.shard_rr = (self.shard_rr + 1) % self.dcache_locks.len().max(1);
        self.shard_rr
    }

    fn hold_div(&self) -> u64 {
        match self.mode {
            VfsMode::Sharded => SHARDED_HOLD_DIV,
            _ => 1,
        }
    }

    /// Per-acquisition protected hash-chain walk. Both lock-based modes
    /// walk the bucket chain before inserting or unhashing — 2.6.32
    /// under its global locks, 3.13 under the shard locks; only the
    /// Fastsocket fast path skips the hash entirely.
    fn walk_cost(&self) -> Cycles {
        match self.mode {
            VfsMode::Fastpath => 0,
            _ => self.costs.shard_walk,
        }
    }

    /// Allocates and initializes the VFS state for one new socket, as
    /// part of `op` running on `core`.
    pub fn alloc_socket(&mut self, ctx: &mut KernelCtx, op: &mut Op, core: CoreId) -> VfsNode {
        op.trace_enter(sim_trace::TraceLabel::Vfs);
        let dentry = ctx.cache.alloc(ObjKind::Dentry, core);
        let inode = ctx.cache.alloc(ObjKind::Inode, core);
        self.visible_sockets += 1;
        match self.mode {
            VfsMode::Legacy | VfsMode::Sharded => {
                let s = self.shard();
                let div = self.hold_div();
                let walk = self.walk_cost();
                op.work(CycleClass::Vfs, self.costs.init_work);
                op.touch(ctx, dentry);
                op.touch(ctx, inode);
                if let Some(heads) = self.shard_heads.get(s) {
                    // The shard's shared chain-head cachelines bounce
                    // from whichever core last used this shard.
                    for head in *heads {
                        op.touch_class(ctx, head, CycleClass::Vfs);
                    }
                }
                // d_alloc (+ bucket-chain walk under the lock)
                op.lock_do(
                    &mut ctx.locks,
                    self.dcache_locks[s],
                    CycleClass::Vfs,
                    self.costs.dentry_hold / div + walk,
                );
                // d_instantiate (a second dcache_lock acquisition in
                // the 2.6.32 allocation path)
                op.lock_do(
                    &mut ctx.locks,
                    self.dcache_locks[s],
                    CycleClass::Vfs,
                    self.costs.instantiate_hold / div,
                );
                // new_inode
                op.lock_do(
                    &mut ctx.locks,
                    self.inode_locks[s],
                    CycleClass::Vfs,
                    self.costs.inode_hold / div,
                );
                // inode_sb_list_add under the global inode_sb_list_lock
                if let Some(sb) = self.sb_list_lock {
                    op.lock_do(&mut ctx.locks, sb, CycleClass::Vfs, self.costs.sb_list_hold);
                }
            }
            VfsMode::Fastpath => {
                // Skip dentry/inode initialization; only core-local
                // bookkeeping for /proc visibility.
                op.work(CycleClass::Vfs, self.costs.fastpath_work);
            }
        }
        op.trace_exit(sim_trace::TraceLabel::Vfs);
        VfsNode { dentry, inode }
    }

    /// Tears down the VFS state of a socket, as part of `op`.
    pub fn free_socket(&mut self, ctx: &mut KernelCtx, op: &mut Op, node: VfsNode) {
        op.trace_enter(sim_trace::TraceLabel::Vfs);
        self.visible_sockets -= 1;
        match self.mode {
            VfsMode::Legacy | VfsMode::Sharded => {
                let s = self.shard();
                let div = self.hold_div();
                let walk = self.walk_cost();
                op.work(CycleClass::Vfs, self.costs.init_work / 2);
                op.touch(ctx, node.dentry);
                op.touch(ctx, node.inode);
                if let Some(heads) = self.shard_heads.get(s) {
                    for head in *heads {
                        op.touch_class(ctx, head, CycleClass::Vfs);
                    }
                }
                // d_unhash (+ bucket-chain fixup under the shard lock)
                op.lock_do(
                    &mut ctx.locks,
                    self.dcache_locks[s],
                    CycleClass::Vfs,
                    self.costs.dentry_hold / div + walk,
                );
                // iput
                op.lock_do(
                    &mut ctx.locks,
                    self.inode_locks[s],
                    CycleClass::Vfs,
                    self.costs.inode_hold / div,
                );
                // inode_sb_list_del under the global inode_sb_list_lock
                if let Some(sb) = self.sb_list_lock {
                    op.lock_do(&mut ctx.locks, sb, CycleClass::Vfs, self.costs.sb_list_hold);
                }
            }
            VfsMode::Fastpath => {
                op.work(CycleClass::Vfs, self.costs.fastpath_work / 2);
            }
        }
        ctx.cache.free(node.dentry);
        ctx.cache.free(node.inode);
        op.trace_exit(sim_trace::TraceLabel::Vfs);
    }

    /// Number of sockets currently visible through `/proc` — nonzero in
    /// *every* mode: the fast path keeps compatibility with `netstat`
    /// and `lsof` (§3.4 "Keep Compatibility").
    pub fn proc_visible_sockets(&self) -> u64 {
        self.visible_sockets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::SimRng;
    use sim_mem::{CacheCosts, CacheModel};
    use sim_sync::{LockCosts, LockTable};

    fn ctx(cores: usize) -> KernelCtx {
        KernelCtx::new(
            cores,
            LockTable::new(LockCosts::default()),
            CacheModel::new(CacheCosts::default()),
            SimRng::seed(13),
        )
    }

    fn alloc_free_once(core: CoreId, ctx: &mut KernelCtx, vfs: &mut Vfs) -> Cycles {
        let mut op = ctx.begin(core, 0);
        let node = vfs.alloc_socket(ctx, &mut op, core);
        vfs.free_socket(ctx, &mut op, node);
        let cost = op.cost();
        op.commit(&mut ctx.cpu);
        cost
    }

    #[test]
    fn fastpath_is_much_cheaper_than_legacy() {
        let mut c1 = ctx(1);
        let mut legacy = Vfs::new(&mut c1, VfsMode::Legacy, VfsCosts::default());
        let legacy_cost = alloc_free_once(CoreId(0), &mut c1, &mut legacy);

        let mut c2 = ctx(1);
        let mut fast = Vfs::new(&mut c2, VfsMode::Fastpath, VfsCosts::default());
        let fast_cost = alloc_free_once(CoreId(0), &mut c2, &mut fast);

        assert!(
            fast_cost * 4 < legacy_cost,
            "fast={fast_cost} legacy={legacy_cost}"
        );
    }

    #[test]
    fn legacy_contends_on_global_locks_across_cores() {
        let mut c = ctx(8);
        let mut vfs = Vfs::new(&mut c, VfsMode::Legacy, VfsCosts::default());
        // Overlapping allocations on all 8 cores at t=0.
        for core in 0..8u16 {
            let mut op = c.begin(CoreId(core), 0);
            let _node = vfs.alloc_socket(&mut c, &mut op, CoreId(core));
            op.commit(&mut c.cpu);
        }
        let d = c.locks.stats(LockClass::DcacheLock);
        assert!(d.contentions > 0, "expected dcache contention: {d:?}");
    }

    #[test]
    fn sharded_contends_less_than_legacy() {
        let run = |mode: VfsMode| {
            let mut c = ctx(16);
            let mut vfs = Vfs::new(&mut c, mode, VfsCosts::default());
            for round in 0..8 {
                for core in 0..16u16 {
                    let mut op = c.begin(CoreId(core), round * 100);
                    let node = vfs.alloc_socket(&mut c, &mut op, CoreId(core));
                    vfs.free_socket(&mut c, &mut op, node);
                    op.commit(&mut c.cpu);
                }
            }
            c.locks.stats(LockClass::DcacheLock).contentions
        };
        let legacy = run(VfsMode::Legacy);
        let sharded = run(VfsMode::Sharded);
        assert!(
            sharded < legacy,
            "sharded={sharded} should contend less than legacy={legacy}"
        );
    }

    #[test]
    fn fastpath_takes_no_vfs_locks() {
        let mut c = ctx(8);
        let mut vfs = Vfs::new(&mut c, VfsMode::Fastpath, VfsCosts::default());
        for core in 0..8u16 {
            alloc_free_once(CoreId(core), &mut c, &mut vfs);
        }
        assert_eq!(c.locks.stats(LockClass::DcacheLock).acquisitions, 0);
        assert_eq!(c.locks.stats(LockClass::InodeLock).acquisitions, 0);
    }

    #[test]
    fn proc_visibility_in_all_modes() {
        for mode in [VfsMode::Legacy, VfsMode::Sharded, VfsMode::Fastpath] {
            let mut c = ctx(1);
            let mut vfs = Vfs::new(&mut c, mode, VfsCosts::default());
            let mut op = c.begin(CoreId(0), 0);
            let node = vfs.alloc_socket(&mut c, &mut op, CoreId(0));
            assert_eq!(vfs.proc_visible_sockets(), 1, "{mode:?}");
            vfs.free_socket(&mut c, &mut op, node);
            assert_eq!(vfs.proc_visible_sockets(), 0, "{mode:?}");
            op.commit(&mut c.cpu);
        }
    }
}
