//! Kernel substrate for the Fastsocket simulation.
//!
//! Models the non-TCP pieces of the kernel that the paper's design
//! touches:
//!
//! * [`ctx::KernelCtx`] and [`ctx::Op`] — the execution fabric: an `Op`
//!   accumulates the cycle cost of one kernel path (work, lock
//!   acquisitions, cache accesses) and commits it to a core,
//! * [`fdtable`] — per-process file-descriptor tables honouring the
//!   POSIX lowest-available-FD rule (which HAProxy depends on, §5),
//! * [`vfs`] — socket inode/dentry management in three flavours:
//!   `Legacy` (global `dcache_lock`/`inode_lock`, Linux 2.6.32),
//!   `Sharded` (finer-grained locking, Linux 3.13-era) and `Fastpath`
//!   (Fastsocket-aware VFS: skip the heavyweight initialization, keep
//!   just enough state for `/proc`),
//! * [`epoll`] — epoll instances with the `ep.lock`-guarded ready list,
//! * [`timer`] — per-core timer bases with `base.lock`,
//! * [`softirq`] — per-core NET_RX backlogs,
//! * [`process`] — processes pinned to cores.

pub mod ctx;
pub mod epoll;
pub mod fdtable;
pub mod process;
pub mod softirq;
pub mod timer;
pub mod vfs;

pub use ctx::{KernelCtx, Op};
pub use epoll::{EpollId, EpollSystem};
pub use fdtable::{Fd, FdTable};
pub use process::{Pid, Process, ProcessTable};
pub use softirq::SoftirqQueues;
pub use timer::TimerSystem;
pub use vfs::{Vfs, VfsMode, VfsNode};
