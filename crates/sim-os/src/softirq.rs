//! Per-core NET_RX softirq backlogs.
//!
//! The NIC (or Receive Flow Deliver's software steering) appends
//! incoming work items to a core's backlog; the simulation driver
//! drains backlogs in batches, mirroring softirq's budgeted polling.
//! The item type is generic — the driver stores packets together with
//! delivery metadata (e.g. an "already steered by RFD" flag).

use std::collections::VecDeque;

/// Per-core work backlogs awaiting NET_RX processing.
#[derive(Debug)]
pub struct SoftirqQueues<T> {
    backlogs: Vec<VecDeque<T>>,
    enqueued: Vec<u64>,
    raised: Vec<bool>,
}

impl<T> SoftirqQueues<T> {
    /// Creates empty backlogs for `cores` cores.
    pub fn new(cores: usize) -> Self {
        SoftirqQueues {
            backlogs: (0..cores).map(|_| VecDeque::new()).collect(),
            enqueued: vec![0; cores],
            raised: vec![false; cores],
        }
    }

    /// Appends an item to `core`'s backlog; returns `true` when the
    /// softirq must be raised (it was not already pending).
    pub fn push(&mut self, core: usize, item: T) -> bool {
        self.enqueued[core] += 1;
        self.backlogs[core].push_back(item);
        if self.raised[core] {
            false
        } else {
            self.raised[core] = true;
            true
        }
    }

    /// Removes up to `budget` items from `core`'s backlog and lowers
    /// the raised flag; the caller must re-raise (re-schedule) if items
    /// remain.
    pub fn drain(&mut self, core: usize, budget: usize) -> Vec<T> {
        self.raised[core] = false;
        let q = &mut self.backlogs[core];
        let n = budget.min(q.len());
        q.drain(..n).collect()
    }

    /// Marks `core`'s softirq as raised again (more work remains after
    /// a budgeted drain); returns `true` if it was not already raised.
    pub fn re_raise(&mut self, core: usize) -> bool {
        if self.raised[core] {
            false
        } else {
            self.raised[core] = true;
            true
        }
    }

    /// Items currently pending on `core`.
    pub fn pending(&self, core: usize) -> usize {
        self.backlogs[core].len()
    }

    /// Total items ever enqueued to `core` (for load-balance stats).
    pub fn enqueued(&self, core: usize) -> u64 {
        self.enqueued[core]
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.backlogs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_signals_raise_only_once() {
        let mut q = SoftirqQueues::new(2);
        assert!(q.push(0, 'a'));
        assert!(!q.push(0, 'b'));
        assert!(q.push(1, 'c'), "other core's backlog independent");
    }

    #[test]
    fn drain_respects_budget_and_order_and_lowers_flag() {
        let mut q = SoftirqQueues::new(1);
        for i in 0..5 {
            q.push(0, i);
        }
        let first = q.drain(0, 3);
        assert_eq!(first, vec![0, 1, 2]);
        assert_eq!(q.pending(0), 2);
        // After drain the flag is lowered: a new push raises again.
        assert!(q.push(0, 9));
        let rest = q.drain(0, 100);
        assert_eq!(rest, vec![3, 4, 9]);
    }

    #[test]
    fn re_raise_is_idempotent() {
        let mut q: SoftirqQueues<u8> = SoftirqQueues::new(1);
        q.push(0, 1);
        q.drain(0, 0);
        assert!(q.re_raise(0));
        assert!(!q.re_raise(0));
    }

    #[test]
    fn enqueue_counters_accumulate() {
        let mut q = SoftirqQueues::new(2);
        q.push(0, 1);
        q.push(0, 2);
        q.drain(0, 10);
        q.push(0, 3);
        assert_eq!(q.enqueued(0), 3);
        assert_eq!(q.enqueued(1), 0);
        assert_eq!(q.cores(), 2);
    }
}
