//! Per-core timer bases with `base.lock`.
//!
//! TCP arms and disarms timers (retransmission, delayed-ACK, TIME_WAIT)
//! on nearly every segment. A timer lives on the wheel of the core that
//! armed it; modifying it from another core takes that base's
//! `base.lock` remotely — the `base.lock` row of Table 1. With complete
//! connection locality every timer operation is core-local and the
//! contention disappears.

use serde::{Deserialize, Serialize};
use sim_core::{CoreId, CycleClass, Cycles};
use sim_mem::ObjKind;
use sim_sync::LockClass;

use crate::ctx::{KernelCtx, Op};

/// A handle to one armed kernel timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TimerHandle {
    /// The core whose wheel holds the timer.
    pub base_core: CoreId,
}

/// Cycle costs of timer operations.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TimerCosts {
    /// Protected work to insert/remove a timer from a wheel.
    pub wheel_hold: Cycles,
    /// Unprotected setup cost per operation.
    pub setup: Cycles,
}

impl Default for TimerCosts {
    fn default() -> Self {
        TimerCosts {
            wheel_hold: 190,
            setup: 160,
        }
    }
}

#[derive(Debug)]
struct Base {
    lock: sim_sync::LockId,
    obj: sim_mem::ObjId,
    /// The `base.lock` spinlock word itself: a separate cacheline that
    /// ping-pongs when another core's cmpxchg takes the lock remotely.
    lock_line: sim_mem::ObjId,
    armed: u64,
}

/// All per-core timer bases.
#[derive(Debug)]
pub struct TimerSystem {
    bases: Vec<Base>,
    costs: TimerCosts,
}

impl TimerSystem {
    /// Creates one timer base per core.
    pub fn new(ctx: &mut KernelCtx, cores: usize, costs: TimerCosts) -> Self {
        let bases = (0..cores)
            .map(|i| Base {
                lock: ctx.locks.register(LockClass::BaseLock),
                obj: ctx.cache.alloc(ObjKind::TimerBase, CoreId(i as u16)),
                lock_line: ctx.cache.alloc(ObjKind::TimerBase, CoreId(i as u16)),
                armed: 0,
            })
            .collect();
        TimerSystem { bases, costs }
    }

    /// Arms a timer on the wheel of the core `op` runs on.
    pub fn arm(&mut self, ctx: &mut KernelCtx, op: &mut Op) -> TimerHandle {
        op.trace_enter(sim_trace::TraceLabel::Timer);
        let core = op.core();
        let base = &mut self.bases[core.index()];
        base.armed += 1;
        op.work(CycleClass::Timer, self.costs.setup);
        op.touch_class(ctx, base.lock_line, CycleClass::Timer);
        op.touch_mut(ctx, base.obj);
        op.lock_do(
            &mut ctx.locks,
            base.lock,
            CycleClass::Timer,
            self.costs.wheel_hold,
        );
        op.trace_exit(sim_trace::TraceLabel::Timer);
        TimerHandle { base_core: core }
    }

    /// Modifies (re-arms) an existing timer from whatever core `op`
    /// runs on; remote modification contends with the owning core.
    pub fn modify(&mut self, ctx: &mut KernelCtx, op: &mut Op, timer: TimerHandle) {
        op.trace_enter(sim_trace::TraceLabel::Timer);
        op.checker().lint(
            sim_check::PartitionLint::TimerBase,
            op.core().0,
            timer.base_core.0,
        );
        let base = &mut self.bases[timer.base_core.index()];
        op.work(CycleClass::Timer, self.costs.setup);
        // The spinlock word is its own cacheline: a cross-core re-arm
        // bounces it to the modifying core, and the owner pays again to
        // pull it home on its next local operation. All-local usage
        // (Fastsocket) keeps the line resident and pays a bare hit.
        op.touch_class(ctx, base.lock_line, CycleClass::Timer);
        op.touch_mut(ctx, base.obj);
        op.lock_do(
            &mut ctx.locks,
            base.lock,
            CycleClass::Timer,
            self.costs.wheel_hold,
        );
        op.trace_exit(sim_trace::TraceLabel::Timer);
    }

    /// Disarms (deletes) a timer.
    pub fn disarm(&mut self, ctx: &mut KernelCtx, op: &mut Op, timer: TimerHandle) {
        op.trace_enter(sim_trace::TraceLabel::Timer);
        op.checker().lint(
            sim_check::PartitionLint::TimerBase,
            op.core().0,
            timer.base_core.0,
        );
        let base = &mut self.bases[timer.base_core.index()];
        if base.armed == 0 {
            // A release build must not wrap the counter to ~2^64 and
            // poison `armed_on` diagnostics: report and saturate.
            op.checker().invariant_violation(
                "timer_base",
                op.core().0,
                format!("disarm on empty base {}", timer.base_core.0),
            );
        }
        base.armed = base.armed.saturating_sub(1);
        op.work(CycleClass::Timer, self.costs.setup);
        op.touch_class(ctx, base.lock_line, CycleClass::Timer);
        op.touch_mut(ctx, base.obj);
        op.lock_do(
            &mut ctx.locks,
            base.lock,
            CycleClass::Timer,
            self.costs.wheel_hold,
        );
        op.trace_exit(sim_trace::TraceLabel::Timer);
    }

    /// Number of timers armed on `core`'s wheel.
    pub fn armed_on(&self, core: CoreId) -> u64 {
        self.bases[core.index()].armed
    }

    /// The `base.lock` of `core`'s wheel (fault injection uses this to
    /// construct deliberately inverted acquisition orders).
    pub fn base_lock(&self, core: CoreId) -> sim_sync::LockId {
        self.bases[core.index()].lock
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::SimRng;
    use sim_mem::{CacheCosts, CacheModel};
    use sim_sync::{LockCosts, LockTable};

    fn ctx(cores: usize) -> KernelCtx {
        KernelCtx::new(
            cores,
            LockTable::new(LockCosts::default()),
            CacheModel::new(CacheCosts::default()),
            SimRng::seed(5),
        )
    }

    #[test]
    fn arm_disarm_bookkeeping() {
        let mut c = ctx(2);
        let mut timers = TimerSystem::new(&mut c, 2, TimerCosts::default());
        let mut op = c.begin(CoreId(1), 0);
        let t = timers.arm(&mut c, &mut op);
        assert_eq!(t.base_core, CoreId(1));
        assert_eq!(timers.armed_on(CoreId(1)), 1);
        assert_eq!(timers.armed_on(CoreId(0)), 0);
        timers.disarm(&mut c, &mut op, t);
        op.commit(&mut c.cpu);
        assert_eq!(timers.armed_on(CoreId(1)), 0);
    }

    #[test]
    fn double_disarm_saturates_and_reports() {
        // Regression: `disarm` on an empty base used to wrap the u64
        // counter in release builds (the guard was only a debug_assert),
        // poisoning `armed_on` diagnostics with ~2^64 values.
        let mut c = ctx(1);
        c.set_checker(sim_check::Checker::enabled(
            1,
            sim_check::PartitionPolicy::default(),
        ));
        let mut timers = TimerSystem::new(&mut c, 1, TimerCosts::default());
        let mut op = c.begin(CoreId(0), 0);
        let t = timers.arm(&mut c, &mut op);
        timers.disarm(&mut c, &mut op, t);
        timers.disarm(&mut c, &mut op, t);
        op.commit(&mut c.cpu);
        assert_eq!(
            timers.armed_on(CoreId(0)),
            0,
            "counter must saturate, not wrap"
        );
        let report = c.checker.report().expect("checker enabled");
        assert_eq!(report.invariant, 1, "double disarm must be reported");
    }

    #[test]
    fn remote_modify_contends_with_owner() {
        let mut c = ctx(2);
        let mut timers = TimerSystem::new(&mut c, 2, TimerCosts::default());
        // Core 0 arms many timers at t=0 (long op holding base 0's lock
        // repeatedly).
        let mut op0 = c.begin(CoreId(0), 0);
        let handles: Vec<TimerHandle> = (0..20).map(|_| timers.arm(&mut c, &mut op0)).collect();
        op0.commit(&mut c.cpu);
        // Core 1 modifies those timers at overlapping times.
        let mut op1 = c.begin(CoreId(1), 10);
        for t in &handles[..5] {
            timers.modify(&mut c, &mut op1, *t);
        }
        op1.commit(&mut c.cpu);
        assert!(c.locks.stats(LockClass::BaseLock).contentions > 0);
    }

    #[test]
    fn local_usage_does_not_contend() {
        let mut c = ctx(2);
        let mut timers = TimerSystem::new(&mut c, 2, TimerCosts::default());
        for core in [CoreId(0), CoreId(1)] {
            for _ in 0..30 {
                let mut op = c.begin(core, 0);
                let t = timers.arm(&mut c, &mut op);
                timers.modify(&mut c, &mut op, t);
                timers.disarm(&mut c, &mut op, t);
                op.commit(&mut c.cpu);
            }
        }
        assert_eq!(c.locks.stats(LockClass::BaseLock).contentions, 0);
    }
}
