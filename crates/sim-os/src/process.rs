//! Processes pinned to cores.
//!
//! Server applications in the paper's benchmarks fork one worker per
//! core and pin it (`sched_setaffinity`). A process can be killed to
//! exercise Fastsocket's robustness slow path (the copied local listen
//! socket disappears with its process; connections must still be
//! accepted through the global listen socket).

use serde::{Deserialize, Serialize};
use sim_core::CoreId;

/// Process identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Pid(pub u32);

/// One application worker process.
#[derive(Debug, Clone)]
pub struct Process {
    /// Its PID.
    pub pid: Pid,
    /// The core it is pinned to.
    pub core: CoreId,
    /// Whether it is alive.
    pub alive: bool,
    /// Whether it currently has a wakeup pending/scheduled.
    pub wake_pending: bool,
}

/// The process table.
#[derive(Debug, Default)]
pub struct ProcessTable {
    procs: Vec<Process>,
}

impl ProcessTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Spawns a process pinned to `core`.
    pub fn spawn(&mut self, core: CoreId) -> Pid {
        let pid = Pid(self.procs.len() as u32);
        self.procs.push(Process {
            pid,
            core,
            alive: true,
            wake_pending: false,
        });
        pid
    }

    /// Kills a process (used by robustness tests).
    pub fn kill(&mut self, pid: Pid) {
        self.procs[pid.0 as usize].alive = false;
    }

    /// Returns the process record.
    pub fn get(&self, pid: Pid) -> &Process {
        &self.procs[pid.0 as usize]
    }

    /// Returns the process record mutably.
    pub fn get_mut(&mut self, pid: Pid) -> &mut Process {
        &mut self.procs[pid.0 as usize]
    }

    /// The live process pinned to `core`, if any.
    pub fn on_core(&self, core: CoreId) -> Option<Pid> {
        self.procs
            .iter()
            .find(|p| p.alive && p.core == core)
            .map(|p| p.pid)
    }

    /// All live processes.
    pub fn live(&self) -> impl Iterator<Item = &Process> {
        self.procs.iter().filter(|p| p.alive)
    }

    /// Number of processes ever spawned.
    pub fn len(&self) -> usize {
        self.procs.len()
    }

    /// Whether no process was ever spawned.
    pub fn is_empty(&self) -> bool {
        self.procs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawn_and_lookup_by_core() {
        let mut t = ProcessTable::new();
        let a = t.spawn(CoreId(0));
        let b = t.spawn(CoreId(1));
        assert_eq!(t.on_core(CoreId(0)), Some(a));
        assert_eq!(t.on_core(CoreId(1)), Some(b));
        assert_eq!(t.on_core(CoreId(2)), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn killed_process_disappears_from_core() {
        let mut t = ProcessTable::new();
        let a = t.spawn(CoreId(0));
        t.kill(a);
        assert!(!t.get(a).alive);
        assert_eq!(t.on_core(CoreId(0)), None);
        assert_eq!(t.live().count(), 0);
    }

    #[test]
    fn wake_pending_flag() {
        let mut t = ProcessTable::new();
        let a = t.spawn(CoreId(0));
        assert!(!t.get(a).wake_pending);
        t.get_mut(a).wake_pending = true;
        assert!(t.get(a).wake_pending);
    }
}
