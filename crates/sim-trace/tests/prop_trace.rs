//! Property tests for the tracer's two core invariants:
//!
//! 1. Each core's event record is monotone in timestamp, no matter how
//!    the instrumentation sites interleave (the ring clamps regressions
//!    to its high-water mark).
//! 2. Balanced enter/exit sequences nest cleanly: no unbalanced exits,
//!    empty stacks afterwards, and attributed self-cycles summing
//!    exactly to the time at least one span was open per core.

use proptest::prelude::*;
use sim_trace::{EventKind, TraceEvent, TraceLabel, Tracer};

const LABELS: [TraceLabel; 8] = [
    TraceLabel::Softirq,
    TraceLabel::NetRx,
    TraceLabel::Handshake,
    TraceLabel::Vfs,
    TraceLabel::Epoll,
    TraceLabel::Timer,
    TraceLabel::SysAccept,
    TraceLabel::AppWork,
];

proptest! {
    /// Arbitrary (timestamp, core, label) triples — including ones that
    /// jump backwards in time — come back out of the tracer monotone
    /// per core.
    #[test]
    fn per_core_timestamps_are_monotone(
        raw in collection::vec((0u64..10_000, 0u16..4, 0usize..LABELS.len()), 1..300),
    ) {
        let t = Tracer::enabled(4, 64);
        for &(ts, core, li) in &raw {
            t.record(TraceEvent::enter(ts, core, LABELS[li]));
        }
        let events = t.events();
        prop_assert!(!events.is_empty());
        for core in 0..4u16 {
            let mut last = 0u64;
            for ev in events.iter().filter(|e| e.core == core) {
                prop_assert!(
                    ev.ts >= last,
                    "core {} regressed: {} after {}", core, ev.ts, last
                );
                last = ev.ts;
            }
        }
    }

    /// Random balanced span sequences across three cores: every exit
    /// matches an enter, every stack drains, and the folded attribution
    /// conserves cycles — the sum of all self-cycles equals the total
    /// time each core had at least one span open.
    #[test]
    fn balanced_spans_nest_and_conserve_cycles(
        ops in collection::vec(0u8..=255, 1..400),
    ) {
        // Ring capacity exceeds 2 * ops, so no event is ever overwritten
        // and the recorded stream is the full ground truth.
        let t = Tracer::enabled(3, 1024);
        let mut stacks: [Vec<TraceLabel>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        let mut ts = 0u64;
        for &b in &ops {
            ts += 1 + u64::from(b & 0x7); // strictly increasing clock
            let core = usize::from(b % 3);
            let push = (b / 3) % 2 == 0 || stacks[core].is_empty();
            if push {
                let label = LABELS[usize::from(b / 6) % LABELS.len()];
                stacks[core].push(label);
                t.enter(ts, core as u16, label);
            } else {
                let label = stacks[core].pop().unwrap();
                t.exit(ts, core as u16, label);
            }
        }
        // Drain whatever is still open, innermost first.
        for (core, stack) in stacks.iter_mut().enumerate() {
            while let Some(label) = stack.pop() {
                ts += 1;
                t.exit(ts, core as u16, label);
            }
        }
        prop_assert_eq!(t.unbalanced_exits(), 0);
        for core in 0..3u16 {
            prop_assert_eq!(t.depth(core), 0, "core {} stack not drained", core);
        }
        // Cycle conservation: replay the recorded stream to get the time
        // each core spent with at least one open span; the folder must
        // attribute exactly that many self-cycles, no more, no less.
        let events = t.events();
        let mut expected = 0u64;
        for core in 0..3u16 {
            let mut depth = 0usize;
            let mut open_from = 0u64;
            for ev in events.iter().filter(|e| e.core == core) {
                match ev.kind {
                    EventKind::Enter => {
                        if depth == 0 {
                            open_from = ev.ts;
                        }
                        depth += 1;
                    }
                    EventKind::Exit => {
                        depth -= 1;
                        if depth == 0 {
                            expected += ev.ts - open_from;
                        }
                    }
                    EventKind::Instant => {}
                }
            }
        }
        let attributed: u64 = t.collapsed().iter().map(|(_, c)| c).sum();
        prop_assert_eq!(attributed, expected, "self-cycles must tile the busy time");
    }
}
