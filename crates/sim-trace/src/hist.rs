//! Log-bucketed latency histograms with tail percentiles.
//!
//! The bucket layout is HdrHistogram-like: values below 32 get exact
//! buckets; above that, each power-of-two octave is split into 16
//! linear sub-buckets, giving a worst-case quantization error of ~6%
//! at any magnitude — tight enough for p999 tails over cycle counts
//! spanning nine orders of magnitude, in a few KiB of counters.

use serde::{Deserialize, Serialize};

/// Sub-buckets per power-of-two octave (4 significant bits).
const SUBS: u64 = 16;
/// Values below this are counted exactly.
const LINEAR_LIMIT: u64 = 2 * SUBS;

/// Number of buckets needed to cover the full `u64` domain.
const BUCKETS: usize = (LINEAR_LIMIT + (64 - 5) * SUBS) as usize;

/// A fixed-size log-bucketed histogram of `u64` samples (cycle counts).
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

/// Index of the bucket holding `v`.
fn bucket_index(v: u64) -> usize {
    if v < LINEAR_LIMIT {
        v as usize
    } else {
        // Octave = position of the leading bit; sub-bucket = next 4 bits.
        let octave = 63 - v.leading_zeros() as u64;
        let sub = (v >> (octave - 4)) & (SUBS - 1);
        (LINEAR_LIMIT + (octave - 5) * SUBS + sub) as usize
    }
}

/// Upper-bound representative value of bucket `i` (inverse of
/// [`bucket_index`], rounded to the bucket's top).
fn bucket_value(i: usize) -> u64 {
    let i = i as u64;
    if i < LINEAR_LIMIT {
        i
    } else {
        let rel = i - LINEAR_LIMIT;
        let octave = rel / SUBS + 5;
        let sub = rel % SUBS;
        let base = 1u64 << octave;
        let step = 1u64 << (octave - 4);
        // Written as (base - 1) + ... so the top bucket of the u64
        // domain does not overflow.
        (base - 1) + (sub + 1) * step
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            counts: vec![0; BUCKETS],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Adds one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.total += 1;
        self.sum += u128::from(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Arithmetic mean of the samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Value at or below which `p` (in `[0, 1]`) of the samples fall,
    /// reported as the containing bucket's upper bound. Returns 0 when
    /// empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // The top bucket's representative can exceed the true
                // maximum; clamp so p100 == max.
                return bucket_value(i).min(self.max);
            }
        }
        self.max
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Drops all samples.
    pub fn clear(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.total = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }

    /// The non-empty buckets as `(upper_bound_value, count)` pairs —
    /// the printable shape of the histogram.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_value(i), c))
            .collect()
    }

    /// Condenses the histogram into a serializable summary, converting
    /// cycle samples to microseconds at `cycles_per_usec`.
    pub fn summarize(&self, cycles_per_usec: f64) -> LatencySummary {
        let us = |v: u64| v as f64 / cycles_per_usec;
        LatencySummary {
            count: self.total,
            min_us: us(self.min()),
            mean_us: self.mean() / cycles_per_usec,
            p50_us: us(self.percentile(0.50)),
            p90_us: us(self.percentile(0.90)),
            p99_us: us(self.percentile(0.99)),
            p999_us: us(self.percentile(0.999)),
            max_us: us(self.max),
        }
    }
}

/// Percentile summary of one latency distribution, in microseconds of
/// simulated time. This is the form surfaced in `RunReport` and the
/// experiment JSON.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: u64,
    /// Smallest sample.
    pub min_us: f64,
    /// Arithmetic mean.
    pub mean_us: f64,
    /// Median.
    pub p50_us: f64,
    /// 90th percentile.
    pub p90_us: f64,
    /// 99th percentile.
    pub p99_us: f64,
    /// 99.9th percentile.
    pub p999_us: f64,
    /// Largest sample.
    pub max_us: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_tight() {
        let mut prev = 0;
        for v in (0..1_000).chain((10..40).map(|s| 1u64 << s)) {
            let i = bucket_index(v);
            assert!(i >= prev || v < LINEAR_LIMIT, "index regressed at {v}");
            prev = i;
            let rep = bucket_value(i);
            assert!(rep >= v, "representative {rep} below sample {v}");
            // ≤ ~6.25% relative error above the linear region.
            if v >= LINEAR_LIMIT {
                assert!((rep - v) as f64 <= v as f64 / 16.0 + 1.0, "{v} -> {rep}");
            }
        }
    }

    #[test]
    fn exact_below_linear_limit() {
        let mut h = LatencyHistogram::new();
        for v in 0..LINEAR_LIMIT {
            h.record(v);
        }
        assert_eq!(h.percentile(0.5), (LINEAR_LIMIT / 2) - 1);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), LINEAR_LIMIT - 1);
    }

    #[test]
    fn percentiles_of_uniform_ramp() {
        let mut h = LatencyHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let p50 = h.percentile(0.50);
        let p99 = h.percentile(0.99);
        let p999 = h.percentile(0.999);
        assert!((4_800..=5_400).contains(&p50), "p50={p50}");
        assert!((9_700..=10_000).contains(&p99), "p99={p99}");
        assert!((9_900..=10_000).contains(&p999), "p999={p999}");
        assert_eq!(h.percentile(1.0), 10_000);
        assert!((h.mean() - 5_000.5).abs() < 1.0);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.percentile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.count(), 0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn merge_matches_combined_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut c = LatencyHistogram::new();
        for v in [1u64, 50, 3_000, 70_000, 1 << 40] {
            a.record(v);
            c.record(v);
        }
        for v in [7u64, 900, 1 << 20] {
            b.record(v);
            c.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), c.count());
        for p in [0.1, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.percentile(p), c.percentile(p));
        }
    }

    #[test]
    fn summary_converts_to_microseconds() {
        let mut h = LatencyHistogram::new();
        for _ in 0..100 {
            h.record(2_700); // 1 µs at 2.7 GHz
        }
        let s = h.summarize(2_700.0);
        assert_eq!(s.count, 100);
        assert!((s.p50_us - 1.0).abs() < 0.1);
        assert!((s.mean_us - 1.0).abs() < 0.01);
    }

    #[test]
    fn huge_values_do_not_overflow() {
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        h.record(0);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.percentile(1.0), u64::MAX);
    }
}
