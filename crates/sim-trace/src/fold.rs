//! Streaming span attribution: enter/exit edges fold into perf-style
//! collapsed stacks as they arrive, so cycle attribution survives ring
//! overwrites and costs O(stack depth) memory per core.

use crate::event::TraceLabel;
use std::collections::HashMap;

/// One open span on a core's stack.
#[derive(Debug, Clone, Copy)]
struct OpenSpan {
    label: TraceLabel,
    entered_at: u64,
    /// Cycles already attributed to completed children.
    child_cycles: u64,
}

/// Per-core span stacks folding into a `stack-path -> self-cycles` map.
#[derive(Debug, Default)]
pub struct SpanFolder {
    /// Open-span stack per core (indexed by core id).
    stacks: Vec<Vec<OpenSpan>>,
    /// Collapsed stack (labels root-to-leaf) to self-cycles.
    folded: HashMap<Vec<TraceLabel>, u64>,
    /// Exit edges that had no matching enter (instrumentation bugs
    /// surface here instead of corrupting attribution).
    unbalanced_exits: u64,
}

impl SpanFolder {
    /// A folder for `cores` per-core timelines.
    pub fn new(cores: u16) -> SpanFolder {
        SpanFolder {
            stacks: (0..cores).map(|_| Vec::new()).collect(),
            folded: HashMap::new(),
            unbalanced_exits: 0,
        }
    }

    fn stack(&mut self, core: u16) -> &mut Vec<OpenSpan> {
        let idx = usize::from(core);
        if idx >= self.stacks.len() {
            self.stacks.resize_with(idx + 1, Vec::new);
        }
        &mut self.stacks[idx]
    }

    /// Opens a span.
    pub fn enter(&mut self, core: u16, label: TraceLabel, ts: u64) {
        self.stack(core).push(OpenSpan {
            label,
            entered_at: ts,
            child_cycles: 0,
        });
    }

    /// Closes the innermost open span with `label` (closing any deeper
    /// spans first, as an early-return would).
    pub fn exit(&mut self, core: u16, label: TraceLabel, ts: u64) {
        let stack = self.stack(core);
        if !stack.iter().any(|s| s.label == label) {
            self.unbalanced_exits += 1;
            return;
        }
        loop {
            let closed = self.pop_top(core, ts);
            if closed == Some(label) {
                break;
            }
        }
    }

    /// Closes the top span, attributing its self time.
    fn pop_top(&mut self, core: u16, ts: u64) -> Option<TraceLabel> {
        let stack = self.stack(core);
        let top = stack.pop()?;
        let total = ts.saturating_sub(top.entered_at);
        let self_cycles = total.saturating_sub(top.child_cycles);
        let mut path: Vec<TraceLabel> = self.stacks[usize::from(core)]
            .iter()
            .map(|s| s.label)
            .collect();
        path.push(top.label);
        *self.folded.entry(path).or_insert(0) += self_cycles;
        if let Some(parent) = self.stacks[usize::from(core)].last_mut() {
            parent.child_cycles += total;
        }
        Some(top.label)
    }

    /// Closes every still-open span at `ts` (end of run).
    pub fn finish(&mut self, ts: u64) {
        for core in 0..self.stacks.len() as u16 {
            while self.pop_top(core, ts).is_some() {}
        }
    }

    /// Current stack depth on a core (open spans).
    pub fn depth(&self, core: u16) -> usize {
        self.stacks.get(usize::from(core)).map_or(0, Vec::len)
    }

    /// Exit edges that never matched an enter.
    pub fn unbalanced_exits(&self) -> u64 {
        self.unbalanced_exits
    }

    /// The folded stacks as `(root;child;leaf, self_cycles)` rows,
    /// sorted by descending cycles — the flamegraph `.folded` format
    /// (one `stack-path space count` line per row).
    pub fn collapsed(&self) -> Vec<(String, u64)> {
        let mut rows: Vec<(String, u64)> = self
            .folded
            .iter()
            .filter(|(_, &cycles)| cycles > 0)
            .map(|(path, &cycles)| {
                let joined = path.iter().map(|l| l.name()).collect::<Vec<_>>().join(";");
                (joined, cycles)
            })
            .collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        rows
    }

    /// Renders the collapsed stacks as flamegraph.pl-compatible
    /// `.folded` text.
    pub fn to_folded_text(&self) -> String {
        let mut out = String::new();
        for (path, cycles) in self.collapsed() {
            out.push_str(&path);
            out.push(' ');
            out.push_str(&cycles.to_string());
            out.push('\n');
        }
        out
    }

    /// Total self-cycles attributed to stacks whose leaf is `label`.
    pub fn self_cycles(&self, label: TraceLabel) -> u64 {
        self.folded
            .iter()
            .filter(|(path, _)| path.last() == Some(&label))
            .map(|(_, &c)| c)
            .sum()
    }

    /// Drops all attribution (open stacks survive a window reset so
    /// spans crossing the boundary still close cleanly).
    pub fn clear(&mut self) {
        self.folded.clear();
        self.unbalanced_exits = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use TraceLabel::*;

    #[test]
    fn self_time_excludes_children() {
        let mut f = SpanFolder::new(1);
        f.enter(0, Softirq, 0);
        f.enter(0, NetRx, 10);
        f.enter(0, EstLookup, 20);
        f.exit(0, EstLookup, 30);
        f.exit(0, NetRx, 50);
        f.exit(0, Softirq, 100);
        assert_eq!(f.self_cycles(EstLookup), 10);
        assert_eq!(f.self_cycles(NetRx), 30); // 40 total − 10 child
        assert_eq!(f.self_cycles(Softirq), 60); // 100 total − 40 child
        let folded = f.to_folded_text();
        assert!(
            folded.contains("softirq;net_rx;est_lookup 10\n"),
            "{folded}"
        );
        assert!(folded.contains("softirq;net_rx 30\n"), "{folded}");
        assert!(folded.contains("softirq 60\n"), "{folded}");
    }

    #[test]
    fn early_return_closes_inner_spans() {
        let mut f = SpanFolder::new(1);
        f.enter(0, SysAccept, 0);
        f.enter(0, Vfs, 5);
        // No Vfs exit: the syscall wrapper closes SysAccept directly.
        f.exit(0, SysAccept, 25);
        assert_eq!(f.depth(0), 0);
        assert_eq!(f.self_cycles(Vfs), 20);
        assert_eq!(f.self_cycles(SysAccept), 5);
        assert_eq!(f.unbalanced_exits(), 0);
    }

    #[test]
    fn unmatched_exit_is_counted_not_misattributed() {
        let mut f = SpanFolder::new(1);
        f.enter(0, Softirq, 0);
        f.exit(0, Epoll, 10);
        assert_eq!(f.unbalanced_exits(), 1);
        assert_eq!(f.depth(0), 1);
        f.exit(0, Softirq, 20);
        assert_eq!(f.self_cycles(Softirq), 20);
    }

    #[test]
    fn cores_are_independent() {
        let mut f = SpanFolder::new(2);
        f.enter(0, Softirq, 0);
        f.enter(1, ProcWake, 0);
        f.exit(1, ProcWake, 7);
        f.exit(0, Softirq, 11);
        assert_eq!(f.self_cycles(ProcWake), 7);
        assert_eq!(f.self_cycles(Softirq), 11);
    }

    #[test]
    fn finish_closes_open_spans() {
        let mut f = SpanFolder::new(1);
        f.enter(0, ProcWake, 10);
        f.enter(0, SysRecv, 15);
        f.finish(40);
        assert_eq!(f.depth(0), 0);
        assert_eq!(f.self_cycles(SysRecv), 25);
        assert_eq!(f.self_cycles(ProcWake), 5);
    }

    #[test]
    fn identical_stacks_accumulate() {
        let mut f = SpanFolder::new(1);
        for round in 0..3u64 {
            let t0 = round * 100;
            f.enter(0, Softirq, t0);
            f.exit(0, Softirq, t0 + 9);
        }
        assert_eq!(f.collapsed(), vec![("softirq".to_string(), 27)]);
    }
}
