//! Bounded per-core event rings.
//!
//! Each simulated core owns one ring; a full ring overwrites its oldest
//! entry (ftrace semantics) and counts the loss, so tracing never grows
//! without bound and never aborts a run.

use crate::event::TraceEvent;

/// A fixed-capacity overwrite-oldest ring of [`TraceEvent`]s.
#[derive(Debug, Clone)]
pub struct EventRing {
    buf: Vec<TraceEvent>,
    /// Index of the oldest entry.
    head: usize,
    len: usize,
    capacity: usize,
    /// Events overwritten because the ring was full.
    overwritten: u64,
    /// Highest timestamp pushed so far (rings are per-core, and per-core
    /// simulated time is monotone; see [`EventRing::push`]).
    last_ts: u64,
}

impl EventRing {
    /// An empty ring holding at most `capacity` events.
    pub fn new(capacity: usize) -> EventRing {
        assert!(capacity > 0, "ring capacity must be positive");
        EventRing {
            buf: Vec::with_capacity(capacity),
            head: 0,
            len: 0,
            capacity,
            overwritten: 0,
            last_ts: 0,
        }
    }

    /// Appends an event, overwriting the oldest if full.
    ///
    /// Per-core operations are serialized on a core's timeline, so
    /// events arrive in non-decreasing timestamp order; a regressing
    /// timestamp is clamped to the ring's high-water mark, making the
    /// monotonicity of each core's record an invariant of the ring
    /// rather than a property every instrumentation site must re-prove.
    pub fn push(&mut self, mut ev: TraceEvent) {
        if ev.ts < self.last_ts {
            ev.ts = self.last_ts;
        }
        self.last_ts = ev.ts;
        if self.len < self.capacity {
            self.buf.push(ev);
            self.len += 1;
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
            self.overwritten += 1;
        }
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Events lost to overwriting.
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    /// The events in arrival order (oldest first).
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        let (newer, older) = self.buf.split_at(self.head);
        older.iter().chain(newer.iter())
    }

    /// Drops all events but keeps the capacity and timestamp high-water
    /// mark (so monotonicity holds across a window reset).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
        self.len = 0;
        self.overwritten = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceLabel;

    fn ev(ts: u64) -> TraceEvent {
        TraceEvent::enter(ts, 0, TraceLabel::NetRx)
    }

    #[test]
    fn keeps_newest_when_full() {
        let mut r = EventRing::new(3);
        for t in 1..=5 {
            r.push(ev(t));
        }
        let ts: Vec<u64> = r.iter().map(|e| e.ts).collect();
        assert_eq!(ts, vec![3, 4, 5]);
        assert_eq!(r.overwritten(), 2);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn clamps_regressing_timestamps() {
        let mut r = EventRing::new(8);
        r.push(ev(10));
        r.push(ev(7));
        r.push(ev(12));
        let ts: Vec<u64> = r.iter().map(|e| e.ts).collect();
        assert_eq!(ts, vec![10, 10, 12]);
    }

    #[test]
    fn clear_preserves_watermark() {
        let mut r = EventRing::new(4);
        r.push(ev(100));
        r.clear();
        assert!(r.is_empty());
        r.push(ev(5));
        assert_eq!(r.iter().next().unwrap().ts, 100);
    }
}
