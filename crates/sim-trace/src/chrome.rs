//! chrome://tracing (Trace Event Format) export.
//!
//! The export uses "X" complete events for spans and "i" instant events
//! for lifecycle marks, with one thread lane per simulated core, so a
//! traced run can be dropped into chrome://tracing or Perfetto as-is.

use crate::event::{EventKind, TraceEvent, TraceLabel};
use serde::{Deserialize, Serialize};

/// One entry of the `traceEvents` array.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChromeEvent {
    /// Frame name.
    pub name: String,
    /// Event category (the connection id when present, else "sim").
    pub cat: String,
    /// Phase: "X" (complete span) or "i" (instant).
    pub ph: String,
    /// Start timestamp in microseconds.
    pub ts: f64,
    /// Duration in microseconds ("X" events only).
    pub dur: Option<f64>,
    /// Process id (always 1: the simulated machine).
    pub pid: u32,
    /// Thread id (the simulated core).
    pub tid: u32,
}

/// A complete chrome://tracing document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[allow(non_snake_case)]
pub struct ChromeTrace {
    /// The event array (chrome's required field name).
    pub traceEvents: Vec<ChromeEvent>,
    /// Display unit hint ("ms" renders µs timestamps nicely).
    pub displayTimeUnit: String,
}

impl ChromeTrace {
    /// Builds a document from per-core event streams (each stream must
    /// be in timestamp order, as the rings guarantee). `cycles_per_usec`
    /// converts cycle timestamps to the format's microsecond unit.
    pub fn from_events<'a>(
        events: impl Iterator<Item = &'a TraceEvent>,
        cycles_per_usec: f64,
        end_ts: u64,
    ) -> ChromeTrace {
        let us = |cycles: u64| cycles as f64 / cycles_per_usec;
        let mut out = Vec::new();
        // Per-core stacks of (label, enter_ts, conn) awaiting their exit.
        let mut open: std::collections::HashMap<u16, Vec<(TraceLabel, u64, u64)>> =
            std::collections::HashMap::new();
        for ev in events {
            match ev.kind {
                EventKind::Enter => {
                    open.entry(ev.core)
                        .or_default()
                        .push((ev.label, ev.ts, ev.conn));
                }
                EventKind::Exit => {
                    let stack = open.entry(ev.core).or_default();
                    if !stack.iter().any(|(l, _, _)| *l == ev.label) {
                        continue; // unmatched exit: ring overwrote the enter
                    }
                    // Close deeper spans first (early returns).
                    while let Some((label, t0, conn)) = stack.pop() {
                        out.push(complete(label, t0, ev.ts, ev.core, conn, cycles_per_usec));
                        if label == ev.label {
                            break;
                        }
                    }
                }
                EventKind::Instant => out.push(ChromeEvent {
                    name: ev.label.name().to_string(),
                    cat: category(ev.conn),
                    ph: "i".to_string(),
                    ts: us(ev.ts),
                    dur: None,
                    pid: 1,
                    tid: u32::from(ev.core),
                }),
            }
        }
        // Close anything still open at the end of the capture.
        for (core, stack) in open {
            for (label, t0, conn) in stack.into_iter().rev() {
                out.push(complete(
                    label,
                    t0,
                    end_ts.max(t0),
                    core,
                    conn,
                    cycles_per_usec,
                ));
            }
        }
        out.sort_by(|a, b| a.ts.partial_cmp(&b.ts).unwrap_or(std::cmp::Ordering::Equal));
        ChromeTrace {
            traceEvents: out,
            displayTimeUnit: "ms".to_string(),
        }
    }

    /// Serializes the document to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("chrome trace serializes infallibly")
    }
}

fn category(conn: u64) -> String {
    if conn == 0 {
        "sim".to_string()
    } else {
        format!("conn-{conn:x}")
    }
}

fn complete(
    label: TraceLabel,
    t0: u64,
    t1: u64,
    core: u16,
    conn: u64,
    cycles_per_usec: f64,
) -> ChromeEvent {
    ChromeEvent {
        name: label.name().to_string(),
        cat: category(conn),
        ph: "X".to_string(),
        ts: t0 as f64 / cycles_per_usec,
        dur: Some(t1.saturating_sub(t0) as f64 / cycles_per_usec),
        pid: 1,
        tid: u32::from(core),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;
    use TraceLabel::*;

    #[test]
    fn spans_become_complete_events() {
        let events = [
            TraceEvent::enter(2_700, 0, Softirq),
            TraceEvent::enter(5_400, 0, NetRx),
            TraceEvent::exit(8_100, 0, NetRx),
            TraceEvent::exit(13_500, 0, Softirq),
            TraceEvent::instant(6_000, 0, 0xabc, Established),
        ];
        let trace = ChromeTrace::from_events(events.iter(), 2_700.0, 13_500);
        assert_eq!(trace.traceEvents.len(), 3);
        let net_rx = trace
            .traceEvents
            .iter()
            .find(|e| e.name == "net_rx")
            .unwrap();
        assert_eq!(net_rx.ph, "X");
        assert!((net_rx.ts - 2.0).abs() < 1e-9);
        assert_eq!(net_rx.dur, Some(1.0));
        let inst = trace.traceEvents.iter().find(|e| e.ph == "i").unwrap();
        assert_eq!(inst.cat, "conn-abc");
        assert_eq!(inst.dur, None);
    }

    #[test]
    fn open_spans_are_closed_at_capture_end() {
        let events = [TraceEvent::enter(100, 3, ProcWake)];
        let trace = ChromeTrace::from_events(events.iter(), 1.0, 400);
        assert_eq!(trace.traceEvents.len(), 1);
        assert_eq!(trace.traceEvents[0].dur, Some(300.0));
        assert_eq!(trace.traceEvents[0].tid, 3);
    }

    #[test]
    fn json_round_trips_through_serde() {
        let events = [
            TraceEvent::enter(10, 1, SysAccept),
            TraceEvent::exit(30, 1, SysAccept),
            TraceEvent::instant(20, 1, 5, SynArrival),
        ];
        let trace = ChromeTrace::from_events(events.iter(), 2.5, 30);
        let json = trace.to_json();
        let back: ChromeTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, trace);
        assert!(json.contains("\"traceEvents\""), "{json}");
        assert!(json.contains("\"ph\":\"X\""), "{json}");
    }
}
