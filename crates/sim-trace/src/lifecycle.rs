//! Per-connection lifecycle tracking: SYN arrival → ESTABLISHED →
//! first byte → CLOSED, feeding the latency histograms.

use crate::event::TraceLabel;
use crate::hist::LatencyHistogram;
use std::collections::HashMap;

/// Timestamps seen so far for one in-flight connection.
#[derive(Debug, Clone, Copy, Default)]
struct ConnLife {
    syn_at: Option<u64>,
    established_at: Option<u64>,
    first_byte_at: Option<u64>,
}

/// Turns lifecycle instants into connection-setup / time-to-first-byte
/// / lifetime distributions.
///
/// Setup latency is recorded *when the connection establishes* (not at
/// close), so connections still open at the end of a window contribute
/// to the tail instead of silently dropping out of it.
///
/// # Coordinated omission
///
/// Duplicate marks keep the **first** timestamp per connection. That
/// rule is what lets the open-loop driver (`sim-load`) avoid
/// coordinated omission: it pre-marks `SynArrival` at the *scheduled*
/// arrival cycle before the SYN is admitted, so when the stack marks
/// the same connection at admission the earlier timestamp wins and
/// every latency here is measured from when the user showed up — queue
/// wait included — not from when the server got around to the
/// connection. Closed-loop runs have no admission queue, so their
/// stack-side mark is simply first.
#[derive(Debug, Default)]
pub struct LifecycleTracker {
    inflight: HashMap<u64, ConnLife>,
    /// SYN arrival → ESTABLISHED.
    pub setup: LatencyHistogram,
    /// SYN arrival → first payload byte.
    pub ttfb: LatencyHistogram,
    /// SYN arrival → teardown.
    pub lifetime: LatencyHistogram,
    /// Connections that reached ESTABLISHED (including later closed).
    established: u64,
    /// Connections fully closed.
    closed: u64,
}

impl LifecycleTracker {
    /// An empty tracker.
    pub fn new() -> LifecycleTracker {
        LifecycleTracker::default()
    }

    /// Feeds one lifecycle instant for connection `conn`.
    ///
    /// Duplicate marks (SYN retransmits, repeated payload deliveries)
    /// keep the first timestamp. Marks for unknown connections (e.g. a
    /// close whose SYN predates the tracer) are dropped.
    pub fn mark(&mut self, conn: u64, label: TraceLabel, ts: u64) {
        match label {
            TraceLabel::SynArrival => {
                self.inflight
                    .entry(conn)
                    .or_default()
                    .syn_at
                    .get_or_insert(ts);
            }
            TraceLabel::Established => {
                if let Some(life) = self.inflight.get_mut(&conn) {
                    if life.established_at.is_none() {
                        life.established_at = Some(ts);
                        self.established += 1;
                        if let Some(syn) = life.syn_at {
                            self.setup.record(ts.saturating_sub(syn));
                        }
                    }
                }
            }
            TraceLabel::FirstByte => {
                if let Some(life) = self.inflight.get_mut(&conn) {
                    if life.first_byte_at.is_none() {
                        life.first_byte_at = Some(ts);
                        if let Some(syn) = life.syn_at {
                            self.ttfb.record(ts.saturating_sub(syn));
                        }
                    }
                }
            }
            TraceLabel::Closed => {
                if let Some(life) = self.inflight.remove(&conn) {
                    self.closed += 1;
                    if let Some(syn) = life.syn_at {
                        self.lifetime.record(ts.saturating_sub(syn));
                    }
                }
            }
            _ => {}
        }
    }

    /// Connections currently between SYN and close.
    pub fn inflight(&self) -> usize {
        self.inflight.len()
    }

    /// Connections that reached ESTABLISHED.
    pub fn established_count(&self) -> u64 {
        self.established
    }

    /// Connections fully closed.
    pub fn closed_count(&self) -> u64 {
        self.closed
    }

    /// Clears the distributions but keeps in-flight connections, so a
    /// measurement window starting mid-connection still records its
    /// remaining transitions.
    pub fn clear_histograms(&mut self) {
        self.setup.clear();
        self.ttfb.clear();
        self.lifetime.clear();
        self.established = 0;
        self.closed = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use TraceLabel::*;

    #[test]
    fn full_life_feeds_all_three_histograms() {
        let mut t = LifecycleTracker::new();
        t.mark(7, SynArrival, 100);
        t.mark(7, Established, 160);
        t.mark(7, FirstByte, 200);
        t.mark(7, Closed, 500);
        assert_eq!(t.setup.count(), 1);
        assert_eq!(t.setup.percentile(1.0), 60);
        assert_eq!(t.ttfb.percentile(1.0), 100);
        assert_eq!(t.lifetime.percentile(1.0), 400);
        assert_eq!(t.inflight(), 0);
        assert_eq!(t.closed_count(), 1);
    }

    #[test]
    fn setup_recorded_before_close() {
        let mut t = LifecycleTracker::new();
        t.mark(1, SynArrival, 0);
        t.mark(1, Established, 50);
        // Still open — setup latency must already be visible.
        assert_eq!(t.setup.count(), 1);
        assert_eq!(t.inflight(), 1);
        assert_eq!(t.lifetime.count(), 0);
    }

    #[test]
    fn syn_retransmit_keeps_first_timestamp() {
        let mut t = LifecycleTracker::new();
        t.mark(3, SynArrival, 10);
        t.mark(3, SynArrival, 90); // retransmit
        t.mark(3, Established, 110);
        assert_eq!(t.setup.percentile(1.0), 100);
    }

    #[test]
    fn unknown_connection_marks_are_dropped() {
        let mut t = LifecycleTracker::new();
        t.mark(9, Closed, 100);
        t.mark(9, Established, 50);
        assert_eq!(t.closed_count(), 0);
        assert_eq!(t.setup.count(), 0);
        assert_eq!(t.inflight(), 0);
    }

    #[test]
    fn window_reset_keeps_inflight() {
        let mut t = LifecycleTracker::new();
        t.mark(4, SynArrival, 10);
        t.clear_histograms();
        t.mark(4, Established, 40);
        assert_eq!(t.setup.count(), 1);
        assert_eq!(t.setup.percentile(1.0), 30);
    }
}
