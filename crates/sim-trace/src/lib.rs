//! `sim-trace`: ftrace/perf-style observability for the simulated
//! kernel stack.
//!
//! The crate provides three views over one event stream:
//!
//! 1. **Raw events** — a bounded overwrite-oldest ring per simulated
//!    core ([`ring::EventRing`]), exportable as chrome://tracing JSON
//!    ([`chrome::ChromeTrace`]).
//! 2. **Cycle attribution** — enter/exit span edges fold *online* into
//!    flamegraph collapsed stacks ([`fold::SpanFolder`]), so
//!    attribution is exact even after the rings overwrite.
//! 3. **Latency distributions** — connection lifecycle instants feed
//!    log-bucketed histograms ([`hist::LatencyHistogram`]) with
//!    p50/p90/p99/p999 summaries ([`hist::LatencySummary`]). The
//!    tracker keeps the *first* `SynArrival` mark per connection, so
//!    open-loop drivers can pre-mark the scheduled arrival time and
//!    latencies include admission queueing (no coordinated omission;
//!    see [`lifecycle::LifecycleTracker`]).
//!
//! The [`Tracer`] handle is a cheap clone (`Option<Rc<RefCell<..>>>`);
//! the disabled tracer is `None`, so untraced runs pay one branch per
//! would-be event and allocate nothing.
//!
//! `sim-trace` sits *below* `sim-core` in the crate graph and depends
//! only on `serde`, so every layer of the stack — engine, sync, OS,
//! TCP, apps — can emit events through the same handle.

pub mod chrome;
pub mod event;
pub mod fold;
pub mod hist;
pub mod lifecycle;
pub mod ring;

pub use chrome::{ChromeEvent, ChromeTrace};
pub use event::{EventKind, TraceEvent, TraceLabel};
pub use fold::SpanFolder;
pub use hist::{LatencyHistogram, LatencySummary};
pub use lifecycle::LifecycleTracker;
pub use ring::EventRing;

use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Default per-core ring capacity (events).
pub const DEFAULT_RING_CAPACITY: usize = 64 * 1024;

/// The three latency distributions surfaced by a traced run, summarized
/// in microseconds of simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyReport {
    /// SYN arrival → ESTABLISHED (connection setup).
    pub setup: LatencySummary,
    /// SYN arrival → first payload byte.
    pub ttfb: LatencySummary,
    /// SYN arrival → teardown.
    pub lifetime: LatencySummary,
}

impl LatencyReport {
    /// Summarizes `[setup, ttfb, lifetime]` histograms into a report,
    /// with [`Tracer::latency`]'s convention: `None` when no setup
    /// completed. This is how the parallel engine rebuilds the report
    /// after merging per-lane histograms.
    pub fn from_histograms(hists: &[LatencyHistogram; 3], cycles_per_usec: f64) -> Option<Self> {
        if hists[0].is_empty() {
            return None;
        }
        Some(LatencyReport {
            setup: hists[0].summarize(cycles_per_usec),
            ttfb: hists[1].summarize(cycles_per_usec),
            lifetime: hists[2].summarize(cycles_per_usec),
        })
    }
}

#[derive(Debug)]
struct TraceState {
    rings: Vec<EventRing>,
    ring_capacity: usize,
    folder: SpanFolder,
    lifecycle: LifecycleTracker,
    /// Engine event-dispatch counts by event label.
    dispatch: HashMap<&'static str, u64>,
}

impl TraceState {
    fn ring(&mut self, core: u16) -> &mut EventRing {
        let idx = usize::from(core);
        if idx >= self.rings.len() {
            let cap = self.ring_capacity;
            self.rings.resize_with(idx + 1, || EventRing::new(cap));
        }
        &mut self.rings[idx]
    }

    fn record(&mut self, ev: TraceEvent) {
        match ev.kind {
            EventKind::Enter => self.folder.enter(ev.core, ev.label, ev.ts),
            EventKind::Exit => self.folder.exit(ev.core, ev.label, ev.ts),
            EventKind::Instant => {
                if ev.label.is_lifecycle() {
                    self.lifecycle.mark(ev.conn, ev.label, ev.ts);
                }
            }
        }
        self.ring(ev.core).push(ev);
    }
}

/// The tracing handle threaded through the stack.
///
/// Cloning shares the underlying state (it is an `Rc`). The
/// [`Tracer::disabled`] handle holds `None` and makes every recording
/// method a single-branch no-op, so instrumentation can stay
/// unconditional at the call sites.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    inner: Option<Rc<RefCell<TraceState>>>,
}

impl Tracer {
    /// A no-op tracer: records nothing, allocates nothing.
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// An active tracer with one `ring_capacity`-event ring per core.
    pub fn enabled(cores: u16, ring_capacity: usize) -> Tracer {
        Tracer {
            inner: Some(Rc::new(RefCell::new(TraceState {
                rings: (0..cores).map(|_| EventRing::new(ring_capacity)).collect(),
                ring_capacity,
                folder: SpanFolder::new(cores),
                lifecycle: LifecycleTracker::new(),
                dispatch: HashMap::new(),
            }))),
        }
    }

    /// Whether this handle records anything. Call sites with non-trivial
    /// argument construction should branch on this first.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records one event (no-op when disabled).
    pub fn record(&self, ev: TraceEvent) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().record(ev);
        }
    }

    /// Records a batch of events in order (no-op when disabled).
    pub fn record_batch(&self, events: impl IntoIterator<Item = TraceEvent>) {
        if let Some(inner) = &self.inner {
            let mut state = inner.borrow_mut();
            for ev in events {
                state.record(ev);
            }
        }
    }

    /// Opens a span on `core`.
    pub fn enter(&self, ts: u64, core: u16, label: TraceLabel) {
        self.record(TraceEvent::enter(ts, core, label));
    }

    /// Closes the innermost open `label` span on `core`.
    pub fn exit(&self, ts: u64, core: u16, label: TraceLabel) {
        self.record(TraceEvent::exit(ts, core, label));
    }

    /// Records a point event tied to connection `conn`.
    pub fn mark(&self, ts: u64, core: u16, conn: u64, label: TraceLabel) {
        self.record(TraceEvent::instant(ts, core, conn, label));
    }

    /// Counts one engine dispatch of event type `label`.
    pub fn count_dispatch(&self, label: &'static str) {
        if let Some(inner) = &self.inner {
            *inner.borrow_mut().dispatch.entry(label).or_insert(0) += 1;
        }
    }

    /// Clears rings, attribution, dispatch counts, and latency
    /// histograms at a measurement-window boundary. Open spans and
    /// in-flight connections survive, so work crossing the boundary is
    /// still attributed and connections mid-handshake still measure.
    pub fn reset_window(&self) {
        if let Some(inner) = &self.inner {
            let mut state = inner.borrow_mut();
            for ring in &mut state.rings {
                ring.clear();
            }
            state.folder.clear();
            state.lifecycle.clear_histograms();
            state.dispatch.clear();
        }
    }

    /// Closes every still-open span at `ts` — call at end of run,
    /// before reading attribution.
    pub fn finish(&self, ts: u64) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().folder.finish(ts);
        }
    }

    /// All buffered events, core-major (each core's slice is in
    /// timestamp order).
    pub fn events(&self) -> Vec<TraceEvent> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => {
                let state = inner.borrow();
                state
                    .rings
                    .iter()
                    .flat_map(|r| r.iter().copied().collect::<Vec<_>>())
                    .collect()
            }
        }
    }

    /// Events lost to ring overwrites, across all cores.
    pub fn dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |inner| {
            inner
                .borrow()
                .rings
                .iter()
                .map(EventRing::overwritten)
                .sum()
        })
    }

    /// Exit edges that never matched an enter (should be 0).
    pub fn unbalanced_exits(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |inner| inner.borrow().folder.unbalanced_exits())
    }

    /// Flamegraph collapsed stacks as `(path, self_cycles)` rows, hottest
    /// first.
    pub fn collapsed(&self) -> Vec<(String, u64)> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |inner| inner.borrow().folder.collapsed())
    }

    /// Flamegraph.pl-compatible `.folded` text.
    pub fn folded(&self) -> String {
        self.inner
            .as_ref()
            .map_or_else(String::new, |inner| inner.borrow().folder.to_folded_text())
    }

    /// Self-cycles attributed to stacks whose leaf is `label`.
    pub fn self_cycles(&self, label: TraceLabel) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |inner| inner.borrow().folder.self_cycles(label))
    }

    /// Current open-span depth on `core`.
    pub fn depth(&self, core: u16) -> usize {
        self.inner
            .as_ref()
            .map_or(0, |inner| inner.borrow().folder.depth(core))
    }

    /// Builds the chrome://tracing document from the buffered events.
    pub fn chrome_trace(&self, cycles_per_usec: f64) -> ChromeTrace {
        let events = self.events();
        let end_ts = events.iter().map(|e| e.ts).max().unwrap_or(0);
        ChromeTrace::from_events(events.iter(), cycles_per_usec, end_ts)
    }

    /// Latency summaries (setup / ttfb / lifetime), or `None` when the
    /// tracer is disabled or saw no completed setups.
    pub fn latency(&self, cycles_per_usec: f64) -> Option<LatencyReport> {
        let inner = self.inner.as_ref()?;
        let state = inner.borrow();
        if state.lifecycle.setup.is_empty() {
            return None;
        }
        Some(LatencyReport {
            setup: state.lifecycle.setup.summarize(cycles_per_usec),
            ttfb: state.lifecycle.ttfb.summarize(cycles_per_usec),
            lifetime: state.lifecycle.lifetime.summarize(cycles_per_usec),
        })
    }

    /// Owned copies of the three lifecycle histograms — `[setup, ttfb,
    /// lifetime]` — or `None` when the tracer is disabled. Plain data,
    /// so a parallel lane can ship its histograms across a thread
    /// boundary for merging ([`LatencyHistogram::merge`]); build the
    /// merged summary with [`LatencyReport::from_histograms`].
    pub fn lifecycle_histograms(&self) -> Option<[LatencyHistogram; 3]> {
        let inner = self.inner.as_ref()?;
        let state = inner.borrow();
        Some([
            state.lifecycle.setup.clone(),
            state.lifecycle.ttfb.clone(),
            state.lifecycle.lifetime.clone(),
        ])
    }

    /// Non-empty buckets of the setup-latency histogram as
    /// `(upper_bound_cycles, count)` rows, smallest bucket first — the
    /// printable shape behind [`Tracer::latency`]'s setup summary.
    pub fn setup_buckets(&self) -> Vec<(u64, u64)> {
        self.inner.as_ref().map_or_else(Vec::new, |inner| {
            inner.borrow().lifecycle.setup.nonzero_buckets()
        })
    }

    /// Connections currently between SYN and close.
    pub fn inflight_connections(&self) -> usize {
        self.inner
            .as_ref()
            .map_or(0, |inner| inner.borrow().lifecycle.inflight())
    }

    /// Connections that reached ESTABLISHED since the last window reset.
    pub fn established_count(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |inner| inner.borrow().lifecycle.established_count())
    }

    /// Engine dispatch counts by event label, sorted descending.
    pub fn dispatch_counts(&self) -> Vec<(&'static str, u64)> {
        self.inner.as_ref().map_or_else(Vec::new, |inner| {
            let mut rows: Vec<(&'static str, u64)> = inner
                .borrow()
                .dispatch
                .iter()
                .map(|(&k, &v)| (k, v))
                .collect();
            rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
            rows
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use TraceLabel::*;

    #[test]
    fn disabled_tracer_is_inert() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        t.enter(10, 0, Softirq);
        t.exit(20, 0, Softirq);
        t.mark(15, 0, 1, SynArrival);
        t.count_dispatch("net_rx");
        t.finish(100);
        assert!(t.events().is_empty());
        assert!(t.collapsed().is_empty());
        assert!(t.folded().is_empty());
        assert!(t.latency(2_700.0).is_none());
        assert!(t.dispatch_counts().is_empty());
        assert_eq!(t.dropped(), 0);
        // The chrome export of nothing is still a valid document.
        assert!(t.chrome_trace(2_700.0).traceEvents.is_empty());
    }

    #[test]
    fn clones_share_state() {
        let t = Tracer::enabled(2, 16);
        let clone = t.clone();
        clone.enter(5, 1, ProcWake);
        clone.exit(25, 1, ProcWake);
        assert_eq!(t.self_cycles(ProcWake), 20);
        assert_eq!(t.events().len(), 2);
    }

    #[test]
    fn lifecycle_marks_feed_latency_report() {
        let t = Tracer::enabled(1, 64);
        for conn in 1..=10u64 {
            let t0 = conn * 1_000;
            t.mark(t0, 0, conn, SynArrival);
            t.mark(t0 + 2_700, 0, conn, Established);
            t.mark(t0 + 5_400, 0, conn, FirstByte);
            t.mark(t0 + 27_000, 0, conn, Closed);
        }
        let report = t.latency(2_700.0).unwrap();
        assert_eq!(report.setup.count, 10);
        assert!((report.setup.p99_us - 1.0).abs() < 0.1, "{report:?}");
        assert!((report.ttfb.p50_us - 2.0).abs() < 0.2);
        assert!((report.lifetime.max_us - 10.0).abs() < 0.7);
        assert_eq!(t.inflight_connections(), 0);
        let buckets = t.setup_buckets();
        assert_eq!(buckets.iter().map(|(_, c)| c).sum::<u64>(), 10);
    }

    #[test]
    fn window_reset_preserves_open_spans() {
        let t = Tracer::enabled(1, 64);
        t.enter(0, 0, Softirq);
        t.reset_window();
        t.exit(50, 0, Softirq);
        assert_eq!(t.self_cycles(Softirq), 50);
        assert_eq!(t.unbalanced_exits(), 0);
    }

    #[test]
    fn dispatch_counts_sort_descending() {
        let t = Tracer::enabled(1, 4);
        for _ in 0..3 {
            t.count_dispatch("net_rx");
        }
        t.count_dispatch("timer");
        assert_eq!(t.dispatch_counts(), vec![("net_rx", 3), ("timer", 1)]);
    }

    #[test]
    fn ring_overflow_does_not_break_attribution() {
        let t = Tracer::enabled(1, 4); // tiny ring; folding is online
        for i in 0..100u64 {
            t.enter(i * 10, 0, NetRx);
            t.exit(i * 10 + 3, 0, NetRx);
        }
        assert_eq!(t.self_cycles(NetRx), 300);
        assert_eq!(t.events().len(), 4);
        assert_eq!(t.dropped(), 196);
    }
}
