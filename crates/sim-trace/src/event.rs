//! Trace event model: what happened, where, when, and to which
//! connection.
//!
//! `sim-trace` sits below `sim-core` in the crate graph (so the engine
//! itself can be instrumented), which is why timestamps and core ids
//! are plain `u64`/`u16` here rather than `sim_core::{Cycles, CoreId}`.

use serde::{Deserialize, Serialize};

/// What a [`TraceEvent`] marks: the opening or closing edge of a span,
/// or a point-in-time instant (lifecycle transitions, dispatch marks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventKind {
    /// A span opens at this timestamp.
    Enter,
    /// The innermost open span with this label closes.
    Exit,
    /// A point event.
    Instant,
}

/// Where in the simulated kernel an event originates. Labels double as
/// flamegraph frame names (see [`TraceLabel::name`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TraceLabel {
    // ---- per-core root contexts (driver-level) ----
    /// A NET_RX softirq batch on one core.
    Softirq,
    /// A worker-process wakeup (epoll_wait + syscall burst).
    ProcWake,
    /// Client-side driver work (connection initiation, packet handling).
    ClientWork,
    /// One committed per-core operation (CPU occupancy lane).
    CoreOp,

    // ---- kernel path spans ----
    /// Per-packet receive processing inside a softirq batch.
    NetRx,
    /// Spinning on a contended lock (the wait, not the hold).
    LockWait,
    /// Listen-table lookup (`inet_lookup_listener`).
    ListenLookup,
    /// Established-table lookup (`__inet_lookup_established`).
    EstLookup,
    /// Receive Flow Deliver classification and steering decision.
    RfdSteer,
    /// VFS work: allocating/freeing the socket's dentry + inode.
    Vfs,
    /// Epoll bookkeeping: ctl, event posting, ready-list draining.
    Epoll,
    /// Timer wheel arm/modify/disarm.
    Timer,
    /// Handshake/teardown segment processing (TCP state machine).
    Handshake,
    /// Application-level work modelled between syscalls.
    AppWork,

    // ---- syscall spans (BSD socket API boundary) ----
    /// `accept()`.
    SysAccept,
    /// `connect()`.
    SysConnect,
    /// `send()`.
    SysSend,
    /// `recv()`.
    SysRecv,
    /// `close()`.
    SysClose,
    /// `epoll_wait()`.
    SysEpollWait,
    /// `epoll_ctl()`.
    SysEpollCtl,

    // ---- connection lifecycle instants ----
    /// First SYN of a passive connection arrived.
    SynArrival,
    /// The connection reached ESTABLISHED.
    Established,
    /// First payload byte was delivered to the socket.
    FirstByte,
    /// The socket was torn down.
    Closed,
}

impl TraceLabel {
    /// The flamegraph/chrome frame name for this label.
    pub fn name(self) -> &'static str {
        match self {
            TraceLabel::Softirq => "softirq",
            TraceLabel::ProcWake => "proc_wake",
            TraceLabel::ClientWork => "client_work",
            TraceLabel::CoreOp => "core_op",
            TraceLabel::NetRx => "net_rx",
            TraceLabel::LockWait => "lock_wait",
            TraceLabel::ListenLookup => "listen_lookup",
            TraceLabel::EstLookup => "est_lookup",
            TraceLabel::RfdSteer => "rfd_steer",
            TraceLabel::Vfs => "vfs",
            TraceLabel::Epoll => "epoll",
            TraceLabel::Timer => "timer",
            TraceLabel::Handshake => "handshake",
            TraceLabel::AppWork => "app_work",
            TraceLabel::SysAccept => "sys_accept",
            TraceLabel::SysConnect => "sys_connect",
            TraceLabel::SysSend => "sys_send",
            TraceLabel::SysRecv => "sys_recv",
            TraceLabel::SysClose => "sys_close",
            TraceLabel::SysEpollWait => "sys_epoll_wait",
            TraceLabel::SysEpollCtl => "sys_epoll_ctl",
            TraceLabel::SynArrival => "syn_arrival",
            TraceLabel::Established => "established",
            TraceLabel::FirstByte => "first_byte",
            TraceLabel::Closed => "closed",
        }
    }

    /// Whether this label marks a connection-lifecycle transition.
    pub fn is_lifecycle(self) -> bool {
        matches!(
            self,
            TraceLabel::SynArrival
                | TraceLabel::Established
                | TraceLabel::FirstByte
                | TraceLabel::Closed
        )
    }
}

/// One entry of a per-core trace ring.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Cycle timestamp (simulated time).
    pub ts: u64,
    /// Core the event happened on.
    pub core: u16,
    /// Connection/flow identifier, or 0 when not tied to a connection.
    pub conn: u64,
    /// Edge or instant.
    pub kind: EventKind,
    /// What the event is.
    pub label: TraceLabel,
}

impl TraceEvent {
    /// A span-opening edge.
    pub fn enter(ts: u64, core: u16, label: TraceLabel) -> TraceEvent {
        TraceEvent {
            ts,
            core,
            conn: 0,
            kind: EventKind::Enter,
            label,
        }
    }

    /// A span-closing edge.
    pub fn exit(ts: u64, core: u16, label: TraceLabel) -> TraceEvent {
        TraceEvent {
            ts,
            core,
            conn: 0,
            kind: EventKind::Exit,
            label,
        }
    }

    /// A point event tied to a connection.
    pub fn instant(ts: u64, core: u16, conn: u64, label: TraceLabel) -> TraceEvent {
        TraceEvent {
            ts,
            core,
            conn,
            kind: EventKind::Instant,
            label,
        }
    }

    /// Copies the event with a connection id attached.
    pub fn with_conn(mut self, conn: u64) -> TraceEvent {
        self.conn = conn;
        self
    }
}
