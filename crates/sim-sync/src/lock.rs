//! Timed spinlock model and the lock registry.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};
use sim_core::{CoreId, Cycles};

use crate::stats::{ClassStats, LockClass};

/// Cycle costs of the lock model.
///
/// Defaults are calibrated against measured costs of atomic operations on
/// Ivy Bridge-class hardware: an uncontended `lock cmpxchg` on an owned
/// line is tens of cycles; pulling the lock word from another core's
/// cache costs a coherence round-trip (~hundreds of cycles); a ticket
/// spinlock release broadcasts an invalidation to every spinning waiter,
/// so handoff cost grows linearly with the number of waiters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LockCosts {
    /// Cost of an uncontended acquisition on a core-local line.
    pub uncontended: Cycles,
    /// Extra cost when the lock word must be transferred from another
    /// core's cache.
    pub remote_line: Cycles,
    /// Extra serialization per *polling core* on a contended
    /// acquisition (ticket-lock cache-line storm: every spinning core
    /// re-reads the lock word on each release, so handoff cost grows
    /// with the number of cores recently hammering the lock).
    pub handoff_per_waiter: Cycles,
    /// Poller census length: the distinct-core count is re-sampled
    /// every this many acquisitions (robust to per-core clock skew).
    pub poller_census: u32,
}

impl Default for LockCosts {
    fn default() -> Self {
        LockCosts {
            uncontended: 40,
            remote_line: 360,
            handoff_per_waiter: 210,
            poller_census: 64,
        }
    }
}

/// Handle to a registered lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LockId(u32);

/// Outcome of one acquisition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Acquisition {
    /// Cycles spent spinning before the lock was obtained (0 when
    /// uncontended).
    pub spin: Cycles,
    /// Fixed acquisition cost (atomic op, plus line transfer if the
    /// previous holder was another core).
    pub acquire_cost: Cycles,
    /// Absolute time at which the caller holds the lock.
    pub acquired_at: Cycles,
    /// Whether the acquisition found the lock held (lockstat contention).
    pub contended: bool,
    /// Whether the lock word had to be transferred from another core.
    pub line_transfer: bool,
}

impl Acquisition {
    /// Total cycles the acquisition added to the caller's operation
    /// (spin + fixed cost).
    pub fn cost(&self) -> Cycles {
        self.spin + self.acquire_cost
    }
}

#[derive(Debug)]
struct SimLock {
    class: LockClass,
    last_owner: Option<CoreId>,
    /// Bitmask of cores seen in the current census period, the number
    /// of acquisitions into it, and the previous period's count.
    pollers: u64,
    census_cnt: u32,
    census_prev: u32,
    /// Hold intervals `(start, end)` reserved by in-flight operations,
    /// sorted by start. Operations execute at per-core virtual times
    /// that may run ahead of the event clock, so the lock is modelled
    /// as a timed resource: an acquisition at time `t` takes the first
    /// gap that fits, spinning until then.
    reservations: VecDeque<(Cycles, Cycles)>,
    live: bool,
}

/// Registry of all simulated locks, with per-class statistics.
///
/// Locks are created per kernel object (per socket, per epoll instance,
/// per table bucket) and recycled when the object dies.
#[derive(Debug)]
pub struct LockTable {
    locks: Vec<SimLock>,
    free: Vec<u32>,
    stats: [ClassStats; LockClass::COUNT],
    costs: LockCosts,
    epoch: Cycles,
}

impl LockTable {
    /// Creates an empty registry with the given cost model.
    pub fn new(costs: LockCosts) -> Self {
        LockTable {
            locks: Vec::new(),
            free: Vec::new(),
            stats: [ClassStats::default(); LockClass::COUNT],
            costs,
            epoch: 0,
        }
    }

    /// Advances the global retirement watermark. Operations execute at
    /// per-core virtual times that can lag the event clock, so hold
    /// reservations may only be discarded once the *event* clock has
    /// passed them — no future acquisition can then have an earlier
    /// virtual time. The simulation driver calls this with the event
    /// time as it dispatches.
    pub fn set_epoch(&mut self, epoch: Cycles) {
        debug_assert!(epoch >= self.epoch, "epoch must be monotonic");
        self.epoch = epoch;
    }

    /// Registers a new lock of the given class.
    pub fn register(&mut self, class: LockClass) -> LockId {
        if let Some(idx) = self.free.pop() {
            let slot = &mut self.locks[idx as usize];
            debug_assert!(!slot.live, "free list corrupted");
            let mut reservations = std::mem::take(&mut slot.reservations);
            reservations.clear();
            *slot = SimLock {
                class,
                last_owner: None,
                pollers: 0,
                census_cnt: 0,
                census_prev: 0,
                reservations,
                live: true,
            };
            LockId(idx)
        } else {
            let idx = self.locks.len() as u32;
            self.locks.push(SimLock {
                class,
                last_owner: None,
                pollers: 0,
                census_cnt: 0,
                census_prev: 0,
                reservations: VecDeque::new(),
                live: true,
            });
            LockId(idx)
        }
    }

    /// Returns the class a lock was registered under.
    pub fn class_of(&self, id: LockId) -> LockClass {
        self.locks[id.0 as usize].class
    }

    /// Destroys a lock, recycling its slot.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the lock was already destroyed.
    pub fn destroy(&mut self, id: LockId) {
        let slot = &mut self.locks[id.0 as usize];
        debug_assert!(slot.live, "double destroy of lock {id:?}");
        slot.live = false;
        self.free.push(id.0);
    }

    /// Acquires lock `id` on `core` at time `now`, holding it for `hold`
    /// cycles of protected work. Returns the acquisition outcome; the
    /// caller is responsible for charging [`Acquisition::cost`] (spin to
    /// `CycleClass::LockSpin`, `acquire_cost` wherever the enclosing
    /// function's cycles go) and for doing `hold` cycles of work.
    ///
    /// The lock is a timed resource: the acquisition reserves the first
    /// interval at or after `now` that does not overlap an existing
    /// hold. Queueing behind already-reserved holds additionally pays a
    /// per-waiter handoff penalty (the ticket-lock cache-line storm).
    pub fn acquire(&mut self, id: LockId, core: CoreId, now: Cycles, hold: Cycles) -> Acquisition {
        let costs = self.costs;
        let lock = &mut self.locks[id.0 as usize];
        debug_assert!(lock.live, "acquire on destroyed lock {id:?}");

        // Retire holds that released before the epoch watermark (NOT
        // before `now`: another core's clock may lag `now`, and its
        // acquisition must still collide with these holds).
        let epoch = self.epoch;
        while let Some(&(_, end)) = lock.reservations.front() {
            if end <= epoch {
                lock.reservations.pop_front();
            } else {
                break;
            }
        }

        let line_transfer = lock.last_owner.is_some() && lock.last_owner != Some(core);
        let acquire_cost = costs.uncontended + if line_transfer { costs.remote_line } else { 0 };

        // Track how many distinct cores hammer this lock: on a
        // contended handoff, every one of them re-reads the line. The
        // census is re-sampled every `poller_census` acquisitions,
        // which is robust to per-core virtual-clock skew.
        lock.pollers |= 1u64 << (core.0 % 64);
        lock.census_cnt += 1;
        if lock.census_cnt >= costs.poller_census {
            lock.census_prev = lock.pollers.count_ones();
            lock.pollers = 1u64 << (core.0 % 64);
            lock.census_cnt = 0;
        }
        let pollers = u64::from(lock.pollers.count_ones().max(lock.census_prev));

        // Find the first gap that fits, queueing behind overlapping
        // reservations. Queueing behind more than the current holder
        // adds a per-waiter handoff penalty (ticket-lock storm).
        // Reservations that ended before our arrival are dead history
        // (kept only so cores whose clocks lag can still collide with
        // them): they neither block us nor count as waiters.
        let mut cursor = now;
        let mut waiters: u64 = 0;
        let mut insert_at = 0usize;
        // A contended handoff triggers the ticket-lock line storm: all
        // polling cores re-read the line, which both delays the grant
        // and occupies the line — it extends the *service* interval, so
        // a saturated lock's capacity degrades as pollers grow (this is
        // what makes the base kernel's Figure 4 curve fall past its
        // peak instead of flattening).
        let storm = costs.handoff_per_waiter * pollers.saturating_sub(1);
        let need_free = acquire_cost + hold;
        let need_contended = need_free + storm;
        for (i, &(start, end)) in lock.reservations.iter().enumerate() {
            if end <= cursor {
                insert_at = i + 1;
                continue;
            }
            let need = if waiters > 0 {
                need_contended
            } else {
                need_free
            };
            if cursor + need <= start {
                break;
            }
            cursor = cursor.max(end);
            waiters += 1;
            insert_at = i + 1;
        }
        let acquired_at = cursor;
        let spin = acquired_at - now;
        let contended = spin > 0;

        let release_at = acquired_at + if contended { need_contended } else { need_free };
        lock.reservations
            .insert(insert_at, (acquired_at, release_at));
        #[cfg(debug_assertions)]
        {
            let v: Vec<(Cycles, Cycles)> = lock.reservations.iter().copied().collect();
            for w in v.windows(2) {
                debug_assert!(w[0].0 <= w[1].0, "reservation list unsorted: {v:?}");
                let both_live = w[0].1 > now && w[1].1 > now;
                debug_assert!(
                    !both_live || w[0].1 <= w[1].0,
                    "adjacent live reservations overlap: {w:?} now={now}"
                );
            }
        }
        lock.last_owner = Some(core);

        #[cfg(feature = "lock-trace")]
        if lock.class == LockClass::DcacheLock {
            eprintln!(
                "DCACHE core={} now={} acq_at={} rel={} pollers={} waiters={} contended={}",
                core.0, now, acquired_at, release_at, pollers, waiters, contended
            );
        }
        let st = &mut self.stats[lock.class as usize];
        st.acquisitions += 1;
        if contended {
            st.contentions += 1;
            st.wait_cycles += spin;
        }
        if line_transfer {
            st.line_transfers += 1;
        }
        st.hold_cycles += release_at - acquired_at;

        Acquisition {
            spin,
            acquire_cost,
            acquired_at,
            contended,
            line_transfer,
        }
    }

    /// Statistics for one class.
    pub fn stats(&self, class: LockClass) -> ClassStats {
        self.stats[class as usize]
    }

    /// Statistics for all classes, in [`LockClass::ALL`] order.
    pub fn all_stats(&self) -> [(LockClass, ClassStats); LockClass::COUNT] {
        let mut out = [(LockClass::Other, ClassStats::default()); LockClass::COUNT];
        for (i, class) in LockClass::ALL.iter().enumerate() {
            out[i] = (*class, self.stats[*class as usize]);
        }
        out
    }

    /// Total cycles spent spinning across all classes.
    pub fn total_wait_cycles(&self) -> Cycles {
        self.stats.iter().map(|s| s.wait_cycles).sum()
    }

    /// Resets all statistics (e.g. after warmup).
    pub fn reset_stats(&mut self) {
        self.stats = [ClassStats::default(); LockClass::COUNT];
    }

    /// Number of live locks (diagnostics).
    pub fn live_locks(&self) -> usize {
        self.locks.iter().filter(|l| l.live).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> LockTable {
        LockTable::new(LockCosts::default())
    }

    #[test]
    fn uncontended_acquire_is_cheap() {
        let mut t = table();
        let l = t.register(LockClass::Slock);
        let a = t.acquire(l, CoreId(0), 100, 50);
        assert_eq!(a.spin, 0);
        assert!(!a.contended);
        assert!(!a.line_transfer, "first acquisition has no prior owner");
        assert_eq!(a.acquire_cost, LockCosts::default().uncontended);
        assert_eq!(a.acquired_at, 100);
    }

    #[test]
    fn same_core_reacquire_has_no_transfer() {
        let mut t = table();
        let l = t.register(LockClass::Slock);
        t.acquire(l, CoreId(3), 0, 10);
        let a = t.acquire(l, CoreId(3), 1_000, 10);
        assert!(!a.line_transfer);
        assert_eq!(t.stats(LockClass::Slock).line_transfers, 0);
    }

    #[test]
    fn cross_core_uncontended_pays_line_transfer() {
        let mut t = table();
        let l = t.register(LockClass::EhashLock);
        t.acquire(l, CoreId(0), 0, 10);
        let a = t.acquire(l, CoreId(1), 10_000, 10);
        assert!(!a.contended);
        assert!(a.line_transfer);
        let c = LockCosts::default();
        assert_eq!(a.acquire_cost, c.uncontended + c.remote_line);
        assert_eq!(t.stats(LockClass::EhashLock).contentions, 0);
        assert_eq!(t.stats(LockClass::EhashLock).line_transfers, 1);
    }

    #[test]
    fn contended_acquire_spins_until_release() {
        let mut t = table();
        let l = t.register(LockClass::Slock);
        let a = t.acquire(l, CoreId(0), 0, 1_000);
        let release = a.acquired_at + a.acquire_cost + 1_000;
        let b = t.acquire(l, CoreId(1), 400, 100);
        assert!(b.contended);
        assert_eq!(
            b.acquired_at, release,
            "no other waiters: no handoff penalty"
        );
        assert_eq!(b.spin, release - 400);
        assert_eq!(t.stats(LockClass::Slock).contentions, 1);
        assert_eq!(t.stats(LockClass::Slock).wait_cycles, b.spin);
    }

    #[test]
    fn handoff_grows_with_waiters() {
        let costs = LockCosts::default();
        let mut t = LockTable::new(costs);
        let l = t.register(LockClass::Slock);
        t.acquire(l, CoreId(0), 0, 10_000);
        let spins: Vec<Cycles> = (1..=6)
            .map(|i| t.acquire(l, CoreId(i as u16), 0, 10_000).spin)
            .collect();
        // Each successive waiter queues behind the previous and pays a
        // growing handoff; spins are strictly increasing.
        for w in spins.windows(2) {
            assert!(w[1] > w[0], "spins should grow: {spins:?}");
        }
    }

    #[test]
    fn waiter_queue_drains_over_time() {
        let mut t = table();
        let l = t.register(LockClass::BaseLock);
        t.acquire(l, CoreId(0), 0, 100);
        // Far in the future everything has drained; acquisition is
        // uncontended with no handoff.
        let a = t.acquire(l, CoreId(1), 1_000_000, 100);
        assert!(!a.contended);
        assert_eq!(a.spin, 0);
    }

    #[test]
    fn recycled_lock_starts_fresh() {
        let mut t = table();
        let l = t.register(LockClass::Slock);
        t.acquire(l, CoreId(0), 0, 1_000_000);
        t.destroy(l);
        let l2 = t.register(LockClass::EpLock);
        // Recycled slot must not inherit the old hold.
        let a = t.acquire(l2, CoreId(1), 10, 10);
        assert!(!a.contended);
        assert!(!a.line_transfer);
    }

    #[test]
    fn per_class_stats_are_separate() {
        let mut t = table();
        let a = t.register(LockClass::DcacheLock);
        let b = t.register(LockClass::InodeLock);
        t.acquire(a, CoreId(0), 0, 10);
        t.acquire(a, CoreId(1), 0, 10); // contends
        t.acquire(b, CoreId(0), 0, 10);
        assert_eq!(t.stats(LockClass::DcacheLock).acquisitions, 2);
        assert_eq!(t.stats(LockClass::DcacheLock).contentions, 1);
        assert_eq!(t.stats(LockClass::InodeLock).acquisitions, 1);
        assert_eq!(t.stats(LockClass::InodeLock).contentions, 0);
    }

    #[test]
    fn reset_stats_zeroes_counters() {
        let mut t = table();
        let l = t.register(LockClass::Slock);
        t.acquire(l, CoreId(0), 0, 10);
        t.reset_stats();
        assert_eq!(t.stats(LockClass::Slock).acquisitions, 0);
        assert_eq!(t.total_wait_cycles(), 0);
    }

    #[test]
    fn live_lock_count_tracks_register_destroy() {
        let mut t = table();
        let a = t.register(LockClass::Slock);
        let _b = t.register(LockClass::Slock);
        assert_eq!(t.live_locks(), 2);
        t.destroy(a);
        assert_eq!(t.live_locks(), 1);
    }
}
