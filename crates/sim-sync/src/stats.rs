//! Lock classes and lockstat-style statistics.

use serde::{Deserialize, Serialize};
use sim_core::Cycles;

/// Classes of kernel locks tracked by the simulation, matching the rows
/// of Table 1 in the paper plus a few auxiliary classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(usize)]
pub enum LockClass {
    /// The global VFS dentry cache lock (`dcache_lock`, Linux 2.6.32).
    DcacheLock,
    /// The global VFS inode lock (`inode_lock`, Linux 2.6.32).
    InodeLock,
    /// Per-socket spinlock (`slock`), shared between process context and
    /// NET_RX softirq; the listen socket's `slock` guards its accept and
    /// SYN queues.
    Slock,
    /// Per-epoll-instance lock (`ep.lock`) guarding the ready list.
    EpLock,
    /// Per-CPU timer base lock (`base.lock`) guarding TCP timers.
    BaseLock,
    /// Per-bucket lock of the global established table (`ehash.lock`).
    EhashLock,
    /// Per-core lock of Fastsocket's Local Established Table. Only its
    /// home core takes it in steady state (never contended, lock word
    /// stays core-local); crash-recovery teardown of migrated
    /// connections is the one cross-core taker.
    LocalEstLock,
    /// Listen-table bucket chain lock (`listening_hash`).
    ListenHash,
    /// Ephemeral port allocator lock.
    PortAlloc,
    /// Everything else.
    Other,
}

impl LockClass {
    /// Number of classes; sizes the statistics arrays.
    pub const COUNT: usize = 10;

    /// All classes in declaration order.
    pub const ALL: [LockClass; Self::COUNT] = [
        LockClass::DcacheLock,
        LockClass::InodeLock,
        LockClass::Slock,
        LockClass::EpLock,
        LockClass::BaseLock,
        LockClass::EhashLock,
        LockClass::LocalEstLock,
        LockClass::ListenHash,
        LockClass::PortAlloc,
        LockClass::Other,
    ];

    /// The lock name as Table 1 prints it.
    pub fn name(self) -> &'static str {
        match self {
            LockClass::DcacheLock => "dcache_lock",
            LockClass::InodeLock => "inode_lock",
            LockClass::Slock => "slock",
            LockClass::EpLock => "ep.lock",
            LockClass::BaseLock => "base.lock",
            LockClass::EhashLock => "ehash.lock",
            LockClass::LocalEstLock => "local_est.lock",
            LockClass::ListenHash => "listen_hash",
            LockClass::PortAlloc => "port_alloc",
            LockClass::Other => "other",
        }
    }
}

/// Lockstat-style counters for one lock class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassStats {
    /// Total acquisitions.
    pub acquisitions: u64,
    /// Acquisitions that found the lock held (lockstat `contentions`).
    pub contentions: u64,
    /// Total cycles spent spinning while waiting.
    pub wait_cycles: Cycles,
    /// Total cycles the lock was held.
    pub hold_cycles: Cycles,
    /// Acquisitions whose previous holder was a different core
    /// (cache-line transfer of the lock word).
    pub line_transfers: u64,
}

impl ClassStats {
    /// Fraction of acquisitions that contended, in `[0, 1]`.
    pub fn contention_rate(&self) -> f64 {
        if self.acquisitions == 0 {
            0.0
        } else {
            self.contentions as f64 / self.acquisitions as f64
        }
    }

    /// Merges another stats block into this one.
    pub fn merge(&mut self, other: &ClassStats) {
        self.acquisitions += other.acquisitions;
        self.contentions += other.contentions;
        self.wait_cycles += other.wait_cycles;
        self.hold_cycles += other.hold_cycles;
        self.line_transfers += other.line_transfers;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_table1() {
        assert_eq!(LockClass::DcacheLock.name(), "dcache_lock");
        assert_eq!(LockClass::EpLock.name(), "ep.lock");
        assert_eq!(LockClass::EhashLock.name(), "ehash.lock");
    }

    #[test]
    fn contention_rate_handles_zero() {
        let s = ClassStats::default();
        assert_eq!(s.contention_rate(), 0.0);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = ClassStats {
            acquisitions: 10,
            contentions: 2,
            wait_cycles: 100,
            hold_cycles: 500,
            line_transfers: 3,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.acquisitions, 20);
        assert_eq!(a.contentions, 4);
        assert_eq!(a.line_transfers, 6);
        assert!((a.contention_rate() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn all_covers_every_class() {
        assert_eq!(LockClass::ALL.len(), LockClass::COUNT);
        let mut names: Vec<&str> = LockClass::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), LockClass::COUNT);
    }
}
