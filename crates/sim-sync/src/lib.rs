//! Simulated kernel lock models with lockstat-style accounting.
//!
//! The Fastsocket paper diagnoses the base kernel's scalability problems
//! through lock contention (`lockstat`) and eliminates them through
//! partitioning. This crate models the locks the paper names — the VFS
//! `dcache_lock` and `inode_lock`, the per-socket `slock`, the epoll
//! `ep.lock`, the timer `base.lock`, and the established-table per-bucket
//! `ehash.lock` — as timed resources:
//!
//! * an acquisition that finds the lock free pays a small atomic-op cost,
//!   plus a cache-line transfer penalty when the previous holder was a
//!   different core;
//! * an acquisition that finds the lock held **spins** until the holder
//!   releases, paying an additional per-waiter handoff penalty that
//!   models the cache-line storm of ticket spinlocks (this O(waiters)
//!   term is what makes the base kernel's throughput *collapse* beyond
//!   12 cores in Figure 4a rather than merely flatten);
//! * every acquisition that found the lock held increments the class's
//!   `contentions` counter — exactly lockstat's definition, which is what
//!   Table 1 reports.
//!
//! # Example
//!
//! ```
//! use sim_core::CoreId;
//! use sim_sync::{LockClass, LockCosts, LockTable};
//!
//! let mut locks = LockTable::new(LockCosts::default());
//! let slock = locks.register(LockClass::Slock);
//! // Core 0 takes the lock at t=0 and holds it for 1000 cycles.
//! let a = locks.acquire(slock, CoreId(0), 0, 1_000);
//! assert_eq!(a.spin, 0);
//! // Core 1 arrives at t=500 while the lock is held: contention.
//! let b = locks.acquire(slock, CoreId(1), 500, 1_000);
//! assert!(b.spin >= 500);
//! assert_eq!(locks.stats(LockClass::Slock).contentions, 1);
//! ```

pub mod lock;
pub mod stats;

pub use lock::{Acquisition, LockCosts, LockId, LockTable};
pub use stats::{ClassStats, LockClass};
