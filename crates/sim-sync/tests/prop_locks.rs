//! Property tests for the timed lock model: reservations never overlap
//! while live, waits are never negative, and statistics are conserved.

use proptest::prelude::*;
use sim_core::CoreId;
use sim_sync::{LockClass, LockCosts, LockTable};

proptest! {
    /// For any interleaving of acquisitions (arbitrary cores, times and
    /// hold durations), every granted interval starts at or after the
    /// request time, and the per-class statistics add up.
    #[test]
    fn acquisitions_are_sane(
        reqs in collection::vec(
            (0u16..8, 0u64..100_000, 10u64..3_000),
            1..200
        )
    ) {
        let mut t = LockTable::new(LockCosts::default());
        let lock = t.register(LockClass::Slock);
        let mut granted: Vec<(u64, u64)> = Vec::new();
        let mut contended = 0u64;
        let mut wait_total = 0u64;
        for (core, now, hold) in reqs {
            let a = t.acquire(lock, CoreId(core), now, hold);
            prop_assert!(a.acquired_at >= now);
            prop_assert_eq!(a.spin, a.acquired_at - now);
            prop_assert_eq!(a.contended, a.spin > 0);
            granted.push((a.acquired_at, a.acquired_at + a.acquire_cost + hold));
            if a.contended {
                contended += 1;
                wait_total += a.spin;
            }
        }
        let stats = t.stats(LockClass::Slock);
        prop_assert_eq!(stats.acquisitions, granted.len() as u64);
        prop_assert_eq!(stats.contentions, contended);
        prop_assert_eq!(stats.wait_cycles, wait_total);
    }

    /// Mutual exclusion: granted hold intervals never overlap, for any
    /// request pattern (reservations may be longer than requested when
    /// a contended handoff extends service — use the reported release).
    #[test]
    fn mutual_exclusion(
        reqs in collection::vec(
            (0u16..8, 0u64..50_000, 10u64..2_000),
            2..150
        )
    ) {
        let mut t = LockTable::new(LockCosts::default());
        let lock = t.register(LockClass::EpLock);
        let mut spans: Vec<(u64, u64)> = Vec::new();
        for (core, now, hold) in reqs {
            let a = t.acquire(lock, CoreId(core), now, hold);
            // The minimum guaranteed-exclusive span.
            spans.push((a.acquired_at, a.acquired_at + a.acquire_cost + hold));
        }
        spans.sort_unstable();
        for w in spans.windows(2) {
            prop_assert!(
                w[0].1 <= w[1].0,
                "granted holds overlap: {:?} vs {:?}",
                w[0],
                w[1]
            );
        }
    }

    /// Without concurrent holders there is never contention: strictly
    /// spaced single-core acquisitions are all free.
    #[test]
    fn serial_use_never_contends(holds in collection::vec(1u64..1_000, 1..100)) {
        let mut t = LockTable::new(LockCosts::default());
        let lock = t.register(LockClass::BaseLock);
        let mut now = 0u64;
        for hold in holds {
            let a = t.acquire(lock, CoreId(0), now, hold);
            prop_assert!(!a.contended);
            now = a.acquired_at + a.acquire_cost + hold + 1;
        }
        prop_assert_eq!(t.stats(LockClass::BaseLock).contentions, 0);
    }
}
