//! Arrival processes: when the next connection shows up.
//!
//! The generator produces a strictly increasing sequence of arrival
//! cycles by *thinning*: candidate gaps are drawn exponentially at the
//! peak rate `λ_max`, and each candidate survives with probability
//! `λ(t)/λ_max`, which samples an inhomogeneous Poisson process with
//! intensity `λ(t)` exactly — no time-step discretization error. The
//! intensity is the product of the base process (constant-rate Poisson,
//! or an MMPP whose phase trajectory is itself sampled from the same
//! seeded RNG) and a deterministic rate profile (constant or diurnal).

use sim_core::{Cycles, SimRng, CYCLES_PER_SEC};

/// One phase of a Markov-modulated Poisson process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MmppPhase {
    /// Arrival rate while this phase is active, in connections/sec.
    pub rate_cps: f64,
    /// Mean phase dwell time in seconds (exponentially distributed).
    pub mean_dwell_secs: f64,
}

/// The base arrival process.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalProcess {
    /// Homogeneous Poisson arrivals at a fixed rate.
    Poisson {
        /// Offered load in connections/sec.
        rate_cps: f64,
    },
    /// Markov-modulated Poisson: the rate switches between phases,
    /// cycling in order with exponentially distributed dwell times —
    /// two phases with very different rates model flash crowds.
    Mmpp {
        /// The phases, visited cyclically starting from the first.
        phases: Vec<MmppPhase>,
    },
}

impl ArrivalProcess {
    /// The long-run mean offered rate in connections/sec (before any
    /// rate profile is applied) — what a capacity table should quote.
    pub fn mean_rate_cps(&self) -> f64 {
        match self {
            ArrivalProcess::Poisson { rate_cps } => *rate_cps,
            ArrivalProcess::Mmpp { phases } => {
                let dwell: f64 = phases.iter().map(|p| p.mean_dwell_secs).sum();
                if dwell <= 0.0 {
                    return 0.0;
                }
                phases
                    .iter()
                    .map(|p| p.rate_cps * p.mean_dwell_secs)
                    .sum::<f64>()
                    / dwell
            }
        }
    }

    fn peak_rate_cps(&self) -> f64 {
        match self {
            ArrivalProcess::Poisson { rate_cps } => *rate_cps,
            ArrivalProcess::Mmpp { phases } => {
                phases.iter().map(|p| p.rate_cps).fold(0.0, f64::max)
            }
        }
    }

    /// The process thinned to `1/ways` of its rate, for lane-partitioned
    /// runs where each lane drives an independent arrival stream.
    ///
    /// Splitting a Poisson process by independent thinning yields
    /// exactly `ways` Poisson processes at `rate/ways`, so the
    /// superposition is statistically the original process. For MMPP
    /// each lane's phase trajectory is sampled from its own RNG stream,
    /// so lane bursts desync — the aggregate is an approximation of the
    /// single-stream MMPP (mean rate preserved, burst correlation
    /// across lanes lost).
    ///
    /// # Panics
    ///
    /// Panics if `ways == 0`.
    pub fn split(&self, ways: u32) -> ArrivalProcess {
        assert!(ways > 0, "cannot split an arrival process zero ways");
        let f = f64::from(ways);
        match self {
            ArrivalProcess::Poisson { rate_cps } => ArrivalProcess::Poisson {
                rate_cps: rate_cps / f,
            },
            ArrivalProcess::Mmpp { phases } => ArrivalProcess::Mmpp {
                phases: phases
                    .iter()
                    .map(|p| MmppPhase {
                        rate_cps: p.rate_cps / f,
                        mean_dwell_secs: p.mean_dwell_secs,
                    })
                    .collect(),
            },
        }
    }
}

/// Hourly load shape used by [`RateProfile::diurnal`]: trough before
/// dawn, evening peak — the same consumer-service curve Figure 3 uses.
pub const DEFAULT_DIURNAL: [f64; 24] = [
    0.55, 0.45, 0.35, 0.28, 0.25, 0.27, 0.35, 0.50, 0.65, 0.75, 0.80, 0.82, 0.85, 0.82, 0.80, 0.82,
    0.85, 0.88, 0.95, 1.00, 0.98, 0.90, 0.80, 0.65,
];

/// A deterministic modulation of the base rate over simulated time.
#[derive(Debug, Clone, PartialEq)]
pub enum RateProfile {
    /// No modulation.
    Constant,
    /// A 24-entry hourly shape stretched over `period` cycles (one
    /// simulated "day") and repeated; entries are fractions of peak.
    Diurnal {
        /// Cycles per simulated day.
        period: Cycles,
        /// Fraction of peak per hour, entries in `(0, 1]`.
        shape: [f64; 24],
    },
}

impl RateProfile {
    /// The default consumer-traffic diurnal shape over one `period`.
    pub fn diurnal(period: Cycles) -> RateProfile {
        RateProfile::Diurnal {
            period,
            shape: DEFAULT_DIURNAL,
        }
    }

    /// Rate multiplier at simulated cycle `t`.
    pub fn frac(&self, t: Cycles) -> f64 {
        match self {
            RateProfile::Constant => 1.0,
            RateProfile::Diurnal { period, shape } => {
                let period = (*period).max(24);
                let hour = ((t % period) * 24 / period) as usize;
                shape[hour.min(23)]
            }
        }
    }

    fn peak_frac(&self) -> f64 {
        match self {
            RateProfile::Constant => 1.0,
            RateProfile::Diurnal { shape, .. } => shape.iter().copied().fold(0.0, f64::max),
        }
    }
}

/// Deterministic open-loop arrival generator.
///
/// Same seed ⇒ the identical arrival sequence, independent of anything
/// else the simulation does — the generator owns its RNG and is queried
/// one arrival ahead, so event-loop interleaving cannot perturb it.
#[derive(Debug, Clone)]
pub struct ArrivalGen {
    process: ArrivalProcess,
    profile: RateProfile,
    rng: SimRng,
    now: Cycles,
    /// Current MMPP phase index (unused for Poisson).
    phase: usize,
    /// Cycle at which the current MMPP phase ends.
    phase_until: Cycles,
    peak_cps: f64,
}

impl ArrivalGen {
    /// Creates a generator starting at cycle 0.
    ///
    /// # Panics
    ///
    /// Panics if the process has no positive rate (the generator could
    /// never produce an arrival) or an MMPP phase has a non-positive
    /// mean dwell.
    pub fn new(process: ArrivalProcess, profile: RateProfile, rng: SimRng) -> ArrivalGen {
        let peak_cps = process.peak_rate_cps() * profile.peak_frac();
        assert!(
            peak_cps > 0.0,
            "arrival process must have a positive peak rate"
        );
        if let ArrivalProcess::Mmpp { phases } = &process {
            assert!(!phases.is_empty(), "MMPP needs at least one phase");
            assert!(
                phases.iter().all(|p| p.mean_dwell_secs > 0.0),
                "MMPP phase dwell must be positive"
            );
        }
        let mut gen = ArrivalGen {
            process,
            profile,
            rng,
            now: 0,
            phase: 0,
            phase_until: Cycles::MAX,
            peak_cps,
        };
        if matches!(gen.process, ArrivalProcess::Mmpp { .. }) {
            gen.phase_until = gen.draw_dwell(0);
        }
        gen
    }

    fn draw_dwell(&mut self, from: Cycles) -> Cycles {
        let ArrivalProcess::Mmpp { phases } = &self.process else {
            return Cycles::MAX;
        };
        let mean = phases[self.phase].mean_dwell_secs * CYCLES_PER_SEC as f64;
        from.saturating_add(to_cycles(self.rng.exponential(mean)))
    }

    /// Advances the MMPP phase trajectory up to cycle `t`.
    fn advance_phases(&mut self, t: Cycles) {
        let n = match &self.process {
            ArrivalProcess::Mmpp { phases } => phases.len(),
            ArrivalProcess::Poisson { .. } => return,
        };
        while self.phase_until <= t {
            self.phase = (self.phase + 1) % n;
            self.phase_until = self.draw_dwell(self.phase_until);
        }
    }

    fn base_rate(&self) -> f64 {
        match &self.process {
            ArrivalProcess::Poisson { rate_cps } => *rate_cps,
            ArrivalProcess::Mmpp { phases } => phases[self.phase].rate_cps,
        }
    }

    /// The next arrival cycle — strictly after the previous one.
    pub fn next_arrival(&mut self) -> Cycles {
        // Thinning: candidates at λ_max, accepted at λ(t)/λ_max.
        loop {
            let mean_gap = CYCLES_PER_SEC as f64 / self.peak_cps;
            self.now = self
                .now
                .saturating_add(to_cycles(self.rng.exponential(mean_gap)));
            self.advance_phases(self.now);
            let lambda = self.base_rate() * self.profile.frac(self.now);
            if self.rng.unit() * self.peak_cps < lambda {
                return self.now;
            }
        }
    }
}

/// Converts a (positive) cycle count drawn as `f64` to `Cycles`,
/// clamped to at least 1 so time always advances.
fn to_cycles(x: f64) -> Cycles {
    if !x.is_finite() || x >= 9.0e18 {
        return Cycles::MAX / 2;
    }
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    {
        (x.max(1.0)) as Cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::secs_to_cycles;

    fn poisson(rate: f64, seed: u64) -> ArrivalGen {
        ArrivalGen::new(
            ArrivalProcess::Poisson { rate_cps: rate },
            RateProfile::Constant,
            SimRng::seed(seed),
        )
    }

    #[test]
    fn same_seed_same_schedule() {
        let mut a = poisson(50_000.0, 9);
        let mut b = poisson(50_000.0, 9);
        for _ in 0..10_000 {
            assert_eq!(a.next_arrival(), b.next_arrival());
        }
    }

    #[test]
    fn arrivals_strictly_increase() {
        let mut g = poisson(1_000_000.0, 10);
        let mut last = 0;
        for _ in 0..10_000 {
            let t = g.next_arrival();
            assert!(t > last);
            last = t;
        }
    }

    #[test]
    fn poisson_rate_is_achieved() {
        let mut g = poisson(100_000.0, 11);
        let horizon = secs_to_cycles(1.0);
        let mut n = 0u64;
        while g.next_arrival() < horizon {
            n += 1;
        }
        // 100K arrivals: ±3σ ≈ ±950.
        assert!((99_000..=101_000).contains(&n), "n={n}");
    }

    #[test]
    fn mmpp_bursts_densify_arrivals() {
        let phases = vec![
            MmppPhase {
                rate_cps: 20_000.0,
                mean_dwell_secs: 0.05,
            },
            MmppPhase {
                rate_cps: 200_000.0,
                mean_dwell_secs: 0.01,
            },
        ];
        let process = ArrivalProcess::Mmpp {
            phases: phases.clone(),
        };
        // Mean rate is dwell-weighted: (20K*0.05 + 200K*0.01) / 0.06 = 50K.
        assert!((process.mean_rate_cps() - 50_000.0).abs() < 1.0);
        let mut g = ArrivalGen::new(process, RateProfile::Constant, SimRng::seed(12));
        let horizon = secs_to_cycles(2.0);
        let mut n = 0u64;
        let mut min_gap = Cycles::MAX;
        let mut max_gap = 0;
        let mut last = 0;
        loop {
            let t = g.next_arrival();
            if t >= horizon {
                break;
            }
            if last > 0 {
                min_gap = min_gap.min(t - last);
                max_gap = max_gap.max(t - last);
            }
            last = t;
            n += 1;
        }
        let mean = n as f64 / 2.0;
        assert!((40_000.0..=60_000.0).contains(&mean), "mean cps {mean}");
        // Burstiness: the widest gap dwarfs the tightest far beyond
        // what a homogeneous Poisson at the mean rate would show.
        assert!(max_gap > min_gap * 200, "min {min_gap} max {max_gap}");
    }

    #[test]
    fn diurnal_trough_is_quieter_than_peak() {
        let day = secs_to_cycles(2.4); // 0.1 s per simulated hour
        let mut g = ArrivalGen::new(
            ArrivalProcess::Poisson {
                rate_cps: 100_000.0,
            },
            RateProfile::diurnal(day),
            SimRng::seed(13),
        );
        let hour = day / 24;
        let mut per_hour = [0u64; 24];
        loop {
            let t = g.next_arrival();
            if t >= day {
                break;
            }
            per_hour[((t / hour) as usize).min(23)] += 1;
        }
        // Hour 4 runs at 0.25× peak; hour 19 at 1.00×.
        assert!(per_hour[4] * 3 < per_hour[19], "{per_hour:?}");
    }

    #[test]
    #[should_panic(expected = "positive peak rate")]
    fn zero_rate_is_rejected() {
        let _ = poisson(0.0, 14);
    }
}
