//! Retry backoff: capped exponential with jitter.
//!
//! Retry storms are a load phenomenon — a failing backend turns every
//! client into a synchronized re-arrival source, and without jitter the
//! retries arrive in lockstep waves. The edge tier's failover retries
//! draw their delays from this policy with a forked [`SimRng`] stream,
//! so retry timing is deterministic per seed yet decorrelated across
//! workers.

use sim_core::{Cycles, SimRng};

/// Capped exponential backoff with equal jitter.
///
/// Attempt `n` (0-based) waits uniformly in `[d/2, d)` where
/// `d = base << min(n, cap_shift)` — the "equal jitter" variant: half
/// the delay is deterministic spacing, half is decorrelation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// First-attempt delay ceiling, in cycles.
    pub base: Cycles,
    /// Maximum exponent: delays stop doubling after `cap_shift`
    /// attempts, bounding the worst-case wait.
    pub cap_shift: u8,
}

impl BackoffPolicy {
    /// Creates a policy with first-retry ceiling `base` cycles, capped
    /// at `base << cap_shift`.
    pub fn new(base: Cycles, cap_shift: u8) -> Self {
        assert!(base > 0, "backoff base must be positive");
        BackoffPolicy { base, cap_shift }
    }

    /// The jittered delay before retry `attempt` (0-based).
    pub fn delay(&self, attempt: u8, rng: &mut SimRng) -> Cycles {
        let ceiling = self.base << u32::from(attempt.min(self.cap_shift));
        let half = (ceiling / 2).max(1);
        half + rng.below(half)
    }

    /// The un-jittered ceiling for retry `attempt` (0-based).
    pub fn ceiling(&self, attempt: u8) -> Cycles {
        self.base << u32::from(attempt.min(self.cap_shift))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_double_then_cap() {
        let p = BackoffPolicy::new(1_000, 3);
        assert_eq!(p.ceiling(0), 1_000);
        assert_eq!(p.ceiling(1), 2_000);
        assert_eq!(p.ceiling(3), 8_000);
        assert_eq!(p.ceiling(7), 8_000, "capped at base << cap_shift");
    }

    #[test]
    fn delay_stays_in_equal_jitter_band() {
        let p = BackoffPolicy::new(1_000, 4);
        let mut rng = SimRng::seed(42);
        for attempt in 0..8 {
            for _ in 0..100 {
                let d = p.delay(attempt, &mut rng);
                let c = p.ceiling(attempt);
                assert!(d >= c / 2 && d < c, "delay {d} outside [{}, {c})", c / 2);
            }
        }
    }

    #[test]
    fn same_seed_same_delays() {
        let p = BackoffPolicy::new(500, 2);
        let a: Vec<Cycles> = {
            let mut rng = SimRng::seed(7);
            (0..10).map(|i| p.delay(i, &mut rng)).collect()
        };
        let b: Vec<Cycles> = {
            let mut rng = SimRng::seed(7);
            (0..10).map(|i| p.delay(i, &mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_base_rejected() {
        let _ = BackoffPolicy::new(0, 1);
    }
}
