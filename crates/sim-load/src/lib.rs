//! Open-loop workload engine.
//!
//! Every figure the repo reproduces drives the server with *closed-loop*
//! clients: a fixed population of slots, each starting its next
//! connection only after the previous one finishes. Closed loops
//! self-throttle — under overload the offered rate silently collapses to
//! the service rate, so latency looks fine right up to saturation. Real
//! serving systems are evaluated *open-loop*: connections arrive on a
//! schedule that does not care how the server is doing, and overload
//! shows up as queueing delay, timeouts and abandonment.
//!
//! This crate provides the pieces, all driven from [`sim_core::SimRng`]
//! so a seeded run is bit-reproducible:
//!
//! * [`ArrivalProcess`] — Poisson or MMPP (burst/flash-crowd) arrivals;
//! * [`RateProfile`] — constant or diurnal modulation of the rate;
//! * [`SizeDist`] / [`SessionDist`] — heavy-tailed request/response
//!   sizes and keep-alive session lengths;
//! * [`OpenLoopConfig`] — the knob block `fastsocket::SimConfig` embeds
//!   (closed loop remains the default everywhere);
//! * [`LoadReport`] — offered/admitted/abandoned accounting plus the
//!   arrival-schedule digest, attached to the run report;
//! * [`ScheduleDigest`] — the FNV-1a accumulator that fingerprints the
//!   arrival schedule for the determinism gates;
//! * [`BackoffPolicy`] — capped exponential retry backoff with jitter,
//!   used by the edge tier's failover retries (a failing backend turns
//!   clients into a synchronized re-arrival source — a load problem).

pub mod arrival;
pub mod backoff;
pub mod dist;

pub use arrival::{ArrivalGen, ArrivalProcess, MmppPhase, RateProfile, DEFAULT_DIURNAL};
pub use backoff::BackoffPolicy;
pub use dist::{SessionDist, SizeDist};

use serde::{Deserialize, Serialize};
use sim_core::{secs_to_cycles, Cycles};

/// Configuration of the open-loop client population.
///
/// Embedded as `SimConfig::open_loop`; when present, the simulation
/// replaces the closed-loop recycle (slot finishes → slot restarts)
/// with schedule-driven admission: arrivals claim a free slot, wait in
/// a FIFO backlog when the population is exhausted, and abandon after
/// [`patience`](Self::patience).
#[derive(Debug, Clone)]
pub struct OpenLoopConfig {
    /// The arrival process.
    pub arrivals: ArrivalProcess,
    /// Deterministic rate modulation over the run.
    pub profile: RateProfile,
    /// Client population: the maximum number of concurrently open
    /// connections (each maps to one source IP, as in the closed loop).
    pub population: u32,
    /// Per-connection connect/response timeout; an expired session
    /// sends RST and counts as `abandoned_connect`.
    pub connect_timeout: Cycles,
    /// How long an arrival waits in the admission backlog for a free
    /// slot before abandoning (`abandoned_wait`).
    pub patience: Cycles,
    /// Request payload size, drawn per session.
    pub request_len: SizeDist,
    /// Response payload size, drawn per request by the server worker.
    pub response_len: SizeDist,
    /// Requests per connection (keep-alive), drawn per session.
    pub session: SessionDist,
    /// Optional long-lived (WebSocket-like) session mix: a fraction of
    /// arrivals exchange a few requests and then sit idle, holding
    /// their connection open, before closing. `None` (the default)
    /// keeps the pure short-lived storm and the legacy arrival digest.
    pub longlived: Option<LongLivedMix>,
}

/// Shape of the long-lived slice of an open-loop population
/// ([`OpenLoopConfig::longlived`]). Long-lived sessions are what turn a
/// connections-per-second benchmark into a concurrent-connections one:
/// each held connection pins TCB and buffer memory for its whole hold.
#[derive(Debug, Clone, Copy)]
pub struct LongLivedMix {
    /// Probability that an arrival is long-lived (drawn per arrival
    /// from the shape stream).
    pub fraction: f64,
    /// Requests a long-lived session exchanges before going idle.
    pub requests: u32,
    /// Idle hold after the last response, in cycles, before the client
    /// closes.
    pub hold: Cycles,
}

impl LongLivedMix {
    /// A mix where `fraction` of arrivals hold their connection idle
    /// for `hold_secs` after two requests.
    pub fn fraction_held(fraction: f64, hold_secs: f64) -> LongLivedMix {
        assert!((0.0..=1.0).contains(&fraction), "fraction is a probability");
        LongLivedMix {
            fraction,
            requests: 2,
            hold: secs_to_cycles(hold_secs),
        }
    }

    /// Sets the requests exchanged before the idle hold (builder
    /// style).
    pub fn requests(mut self, n: u32) -> Self {
        assert!(n >= 1, "a session exchanges at least one request");
        self.requests = n;
        self
    }
}

impl OpenLoopConfig {
    /// Poisson arrivals at `rate_cps` with the paper's short-lived
    /// profile: fixed 600 B requests, 1200 B responses, one request per
    /// connection, 2 s connect timeout, 1 s patience, population 2048.
    pub fn poisson(rate_cps: f64) -> OpenLoopConfig {
        OpenLoopConfig {
            arrivals: ArrivalProcess::Poisson { rate_cps },
            profile: RateProfile::Constant,
            population: 2_048,
            connect_timeout: secs_to_cycles(2.0),
            patience: secs_to_cycles(1.0),
            request_len: SizeDist::Fixed(600),
            response_len: SizeDist::Fixed(1_200),
            session: SessionDist::Fixed(1),
            longlived: None,
        }
    }

    /// MMPP arrivals cycling through `phases`, otherwise as
    /// [`poisson`](Self::poisson).
    pub fn mmpp(phases: Vec<MmppPhase>) -> OpenLoopConfig {
        OpenLoopConfig {
            arrivals: ArrivalProcess::Mmpp { phases },
            ..OpenLoopConfig::poisson(1.0)
        }
    }

    /// Sets the rate profile (builder style).
    pub fn profile(mut self, profile: RateProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Sets the client population (builder style).
    pub fn population(mut self, n: u32) -> Self {
        assert!(n >= 1, "population must be at least 1");
        self.population = n;
        self
    }

    /// Sets the connect timeout in seconds (builder style).
    pub fn connect_timeout_secs(mut self, secs: f64) -> Self {
        self.connect_timeout = secs_to_cycles(secs);
        self
    }

    /// Sets the admission patience in seconds (builder style).
    pub fn patience_secs(mut self, secs: f64) -> Self {
        self.patience = secs_to_cycles(secs);
        self
    }

    /// Sets the request-size distribution (builder style).
    pub fn request_len(mut self, d: SizeDist) -> Self {
        self.request_len = d;
        self
    }

    /// Sets the response-size distribution (builder style).
    pub fn response_len(mut self, d: SizeDist) -> Self {
        self.response_len = d;
        self
    }

    /// Sets the session-length distribution (builder style).
    pub fn session(mut self, d: SessionDist) -> Self {
        self.session = d;
        self
    }

    /// Mixes long-lived held sessions into the arrival stream (builder
    /// style).
    pub fn longlived(mut self, mix: LongLivedMix) -> Self {
        self.longlived = Some(mix);
        self
    }

    /// Whether the workload requires the server to hold connections
    /// open across requests (any session can exceed one request).
    pub fn keep_alive(&self) -> bool {
        self.session.max_len() > 1 || self.longlived.is_some_and(|m| m.requests > 1)
    }

    /// The per-lane share of this config for lane `lane` of `lanes`:
    /// arrivals thinned to `1/lanes` of the rate, population divided
    /// with the remainder going to the lowest lanes, everything else
    /// (timeouts, size and session distributions) unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= lanes` or the lane's population share is 0
    /// (more lanes than population).
    pub fn split(&self, lane: u32, lanes: u32) -> OpenLoopConfig {
        assert!(lane < lanes, "lane {lane} out of range for {lanes} lanes");
        let share = self.population / lanes + u32::from(lane < self.population % lanes);
        assert!(
            share >= 1,
            "population {} cannot be split {lanes} ways",
            self.population
        );
        OpenLoopConfig {
            arrivals: self.arrivals.split(lanes),
            population: share,
            ..self.clone()
        }
    }
}

/// Open-loop accounting attached to the run report. Counters cover the
/// whole run (warmup included): the schedule exists independently of
/// the measurement window, and the digest must fingerprint all of it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadReport {
    /// Arrivals generated by the schedule.
    pub offered: u64,
    /// Sessions that claimed a slot and sent a SYN.
    pub admitted: u64,
    /// Of `admitted`, how many waited in the backlog first.
    pub queued_admissions: u64,
    /// Arrivals that gave up waiting for a free slot.
    pub abandoned_wait: u64,
    /// Admitted sessions that hit the connect timeout (RST sent).
    pub abandoned_connect: u64,
    /// Admitted sessions that ran to an end (including server resets).
    pub completed_sessions: u64,
    /// Deepest admission backlog observed.
    pub peak_backlog: u64,
    /// Mean offered rate over the whole run, in connections/sec.
    pub offered_cps: f64,
    /// FNV-1a digest over (arrival cycle, request size, session length)
    /// for every arrival — same seed ⇒ same digest, regardless of the
    /// event-queue backend or how the server behaved.
    pub schedule_digest: String,
}

/// FNV-1a accumulator fingerprinting the arrival schedule.
#[derive(Debug, Clone)]
pub struct ScheduleDigest {
    h: u64,
}

impl ScheduleDigest {
    /// The empty digest (FNV offset basis).
    pub fn new() -> ScheduleDigest {
        ScheduleDigest {
            h: 0xcbf2_9ce4_8422_2325,
        }
    }

    /// Folds one 64-bit word (little-endian bytes) into the digest.
    pub fn push(&mut self, word: u64) {
        for b in word.to_le_bytes() {
            self.h ^= u64::from(b);
            self.h = self.h.wrapping_mul(0x100_0000_01b3);
        }
    }

    /// The digest so far, as 16 hex digits.
    pub fn hex(&self) -> String {
        format!("{:016x}", self.h)
    }

    /// The digest so far as a raw word — used to fold per-lane schedule
    /// digests into one machine-wide digest deterministically.
    pub fn value(&self) -> u64 {
        self.h
    }
}

impl Default for ScheduleDigest {
    fn default() -> Self {
        ScheduleDigest::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_builders_chain() {
        let c = OpenLoopConfig::poisson(50_000.0)
            .population(4_000)
            .connect_timeout_secs(0.5)
            .patience_secs(0.25)
            .request_len(SizeDist::LogNormal {
                median: 600,
                sigma: 0.4,
                cap: 4_000,
            })
            .response_len(SizeDist::Pareto {
                scale: 400,
                shape: 1.3,
                cap: 16_000,
            })
            .session(SessionDist::Geometric { mean: 2.0, cap: 32 });
        assert_eq!(c.population, 4_000);
        assert_eq!(c.connect_timeout, secs_to_cycles(0.5));
        assert!(c.keep_alive());
        assert!(!OpenLoopConfig::poisson(1.0).keep_alive());
    }

    #[test]
    fn mmpp_constructor_carries_phases() {
        let c = OpenLoopConfig::mmpp(vec![MmppPhase {
            rate_cps: 10_000.0,
            mean_dwell_secs: 0.1,
        }]);
        assert!(matches!(c.arrivals, ArrivalProcess::Mmpp { .. }));
    }

    #[test]
    fn digest_is_order_sensitive() {
        let mut a = ScheduleDigest::new();
        a.push(1);
        a.push(2);
        let mut b = ScheduleDigest::new();
        b.push(2);
        b.push(1);
        assert_ne!(a.hex(), b.hex());
        assert_eq!(ScheduleDigest::new().hex(), ScheduleDigest::default().hex());
    }

    #[test]
    fn split_divides_rate_and_population() {
        let c = OpenLoopConfig::poisson(90_000.0).population(10);
        let parts: Vec<_> = (0..3).map(|l| c.split(l, 3)).collect();
        let mut pop = 0;
        let mut rate = 0.0;
        for p in &parts {
            pop += p.population;
            let ArrivalProcess::Poisson { rate_cps } = p.arrivals else {
                panic!("split changed the process kind");
            };
            rate += rate_cps;
            assert_eq!(p.connect_timeout, c.connect_timeout);
        }
        assert_eq!(pop, 10);
        assert_eq!(parts[0].population, 4); // remainder goes low
        assert!((rate - 90_000.0).abs() < 1e-6);
    }

    #[test]
    fn split_mmpp_preserves_dwell() {
        let c = OpenLoopConfig::mmpp(vec![MmppPhase {
            rate_cps: 40_000.0,
            mean_dwell_secs: 0.1,
        }]);
        let part = c.split(0, 2);
        let ArrivalProcess::Mmpp { phases } = &part.arrivals else {
            panic!("split changed the process kind");
        };
        assert!((phases[0].rate_cps - 20_000.0).abs() < 1e-9);
        assert!((phases[0].mean_dwell_secs - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cannot be split")]
    fn split_rejects_starved_lane() {
        let _ = OpenLoopConfig::poisson(1_000.0).population(2).split(2, 3);
    }

    #[test]
    fn longlived_mix_flows_through_split_and_keep_alive() {
        let c = OpenLoopConfig::poisson(1_000.0)
            .population(8)
            .longlived(LongLivedMix::fraction_held(0.25, 5.0).requests(3));
        assert!(c.keep_alive(), "held sessions need server keep-alive");
        let part = c.split(1, 2);
        let m = part.longlived.expect("mix carries through split");
        assert_eq!(m.requests, 3);
        assert!((m.fraction - 0.25).abs() < 1e-12);
        assert!(m.hold > 0);
        assert!(!OpenLoopConfig::poisson(1.0).keep_alive());
    }

    #[test]
    fn digest_value_matches_hex() {
        let mut d = ScheduleDigest::new();
        d.push(7);
        assert_eq!(format!("{:016x}", d.value()), d.hex());
    }

    #[test]
    fn load_report_round_trips_through_json() {
        let r = LoadReport {
            offered: 10,
            admitted: 9,
            queued_admissions: 2,
            abandoned_wait: 1,
            abandoned_connect: 0,
            completed_sessions: 9,
            peak_backlog: 3,
            offered_cps: 1_000.0,
            schedule_digest: "00ff00ff00ff00ff".into(),
        };
        let json = serde_json::to_string(&r).unwrap();
        let back: LoadReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
