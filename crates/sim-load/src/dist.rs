//! Request/response-size and session-length distributions.
//!
//! Real serving traffic is not fixed-size: response sizes are
//! heavy-tailed (a few large objects dominate bytes) and keep-alive
//! session lengths cluster at 1 with a long tail of chatty clients.
//! Every distribution here samples from [`SimRng`], so a seeded run
//! draws the identical sequence on every execution.

use sim_core::SimRng;

/// A payload-size distribution, sampled per request (sizes are `u16`
/// because the wire model carries one-packet payloads).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SizeDist {
    /// Every draw returns the same size (the closed-loop default).
    Fixed(u16),
    /// Uniform in `[lo, hi]`.
    Uniform {
        /// Smallest size.
        lo: u16,
        /// Largest size.
        hi: u16,
    },
    /// Bounded Pareto: `scale / u^(1/shape)` capped at `cap` — the
    /// classic heavy-tailed web-object model (smaller `shape` = heavier
    /// tail; web traces sit near 1.0–1.5).
    Pareto {
        /// Minimum size (the Pareto scale parameter).
        scale: u16,
        /// Tail index α.
        shape: f64,
        /// Hard cap (one-packet payload limit).
        cap: u16,
    },
    /// Log-normal around `median` with shape `sigma`, capped at `cap` —
    /// a good fit for request sizes, which are skewed but not scale-free.
    LogNormal {
        /// Median size (`exp(µ)` of the underlying normal).
        median: u16,
        /// Standard deviation of the underlying normal.
        sigma: f64,
        /// Hard cap (one-packet payload limit).
        cap: u16,
    },
}

impl SizeDist {
    /// Draws one size. Always ≥ 1: zero-byte requests/responses would
    /// degenerate to bare ACKs and break the request/response framing.
    pub fn sample(&self, rng: &mut SimRng) -> u16 {
        match *self {
            SizeDist::Fixed(n) => n.max(1),
            SizeDist::Uniform { lo, hi } => {
                let (lo, hi) = (lo.min(hi), lo.max(hi));
                (lo + rng.below(u64::from(hi - lo) + 1) as u16).max(1)
            }
            SizeDist::Pareto { scale, shape, cap } => {
                // Inverse CDF; u in (0,1] so the draw is finite.
                let u = 1.0 - rng.unit();
                let x = f64::from(scale.max(1)) / u.powf(1.0 / shape.max(0.05));
                clamp_size(x, cap)
            }
            SizeDist::LogNormal { median, sigma, cap } => {
                // Box–Muller; u1 in (0,1] keeps ln(u1) finite.
                let u1 = 1.0 - rng.unit();
                let u2 = rng.unit();
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                let x = f64::from(median.max(1)) * (sigma * z).exp();
                clamp_size(x, cap)
            }
        }
    }

    /// Whether every draw returns the same value.
    pub fn is_fixed(&self) -> bool {
        matches!(self, SizeDist::Fixed(_))
    }
}

fn clamp_size(x: f64, cap: u16) -> u16 {
    if !x.is_finite() || x >= f64::from(cap) {
        cap.max(1)
    } else if x < 1.0 {
        1
    } else {
        // Representable: 1.0 <= x < cap <= u16::MAX.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        {
            x as u16
        }
    }
}

/// Requests-per-connection (keep-alive session length) distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SessionDist {
    /// Every connection carries exactly `n` requests (`n ≥ 1`).
    Fixed(u32),
    /// Geometric with the given mean, capped: each request is the last
    /// with probability `1/mean` — the memoryless keep-alive model.
    Geometric {
        /// Mean requests per connection (≥ 1).
        mean: f64,
        /// Hard cap on session length.
        cap: u32,
    },
    /// Bounded zipf over `1..=cap`: most sessions are length 1, a heavy
    /// tail of clients reuses the connection many times.
    Zipf {
        /// Largest session length.
        cap: u32,
        /// Zipf exponent `s` (larger = lighter tail).
        exponent: f64,
    },
}

impl SessionDist {
    /// Draws one session length (always ≥ 1).
    pub fn sample(&self, rng: &mut SimRng) -> u32 {
        match *self {
            SessionDist::Fixed(n) => n.max(1),
            SessionDist::Geometric { mean, cap } => {
                let mean = mean.max(1.0);
                let p = 1.0 / mean;
                // Inverse CDF of the geometric on {1, 2, ...}.
                let u = 1.0 - rng.unit();
                let k = if p >= 1.0 {
                    1.0
                } else {
                    (u.ln() / (1.0 - p).ln()).floor() + 1.0
                };
                clamp_len(k, cap)
            }
            SessionDist::Zipf { cap, exponent } => {
                let cap = cap.max(1);
                // O(cap) inverse-CDF walk; caps are small (≤ a few
                // hundred), so precomputation isn't worth carrying.
                let norm: f64 = (1..=cap).map(|k| f64::from(k).powf(-exponent)).sum();
                let mut u = rng.unit() * norm;
                for k in 1..=cap {
                    u -= f64::from(k).powf(-exponent);
                    if u <= 0.0 {
                        return k;
                    }
                }
                cap
            }
        }
    }

    /// The largest length a draw can return — drives whether the server
    /// must run in keep-alive mode.
    pub fn max_len(&self) -> u32 {
        match *self {
            SessionDist::Fixed(n) => n.max(1),
            SessionDist::Geometric { cap, .. } | SessionDist::Zipf { cap, .. } => cap.max(1),
        }
    }
}

fn clamp_len(x: f64, cap: u32) -> u32 {
    let cap = cap.max(1);
    if !x.is_finite() || x >= f64::from(cap) {
        cap
    } else if x < 1.0 {
        1
    } else {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        {
            x as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_draws_are_constant() {
        let mut rng = SimRng::seed(1);
        let d = SizeDist::Fixed(1_200);
        for _ in 0..64 {
            assert_eq!(d.sample(&mut rng), 1_200);
        }
        assert!(d.is_fixed());
        assert!(!SizeDist::Uniform { lo: 1, hi: 2 }.is_fixed());
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = SimRng::seed(2);
        let d = SizeDist::Uniform { lo: 100, hi: 200 };
        for _ in 0..1_000 {
            let v = d.sample(&mut rng);
            assert!((100..=200).contains(&v));
        }
    }

    #[test]
    fn pareto_is_heavy_tailed_and_capped() {
        let mut rng = SimRng::seed(3);
        let d = SizeDist::Pareto {
            scale: 200,
            shape: 1.2,
            cap: 8_000,
        };
        let draws: Vec<u16> = (0..20_000).map(|_| d.sample(&mut rng)).collect();
        assert!(draws.iter().all(|&v| (200..=8_000).contains(&v)));
        let mut sorted = draws.clone();
        sorted.sort_unstable();
        let median = sorted[draws.len() / 2];
        let max = *sorted.last().unwrap();
        // Heavy tail: the max dwarfs the median, and the cap is hit.
        assert!(median < 500, "median={median}");
        assert_eq!(max, 8_000, "tail must reach the cap");
    }

    #[test]
    fn lognormal_centers_on_median() {
        let mut rng = SimRng::seed(4);
        let d = SizeDist::LogNormal {
            median: 600,
            sigma: 0.5,
            cap: 16_000,
        };
        let mut draws: Vec<u16> = (0..20_000).map(|_| d.sample(&mut rng)).collect();
        draws.sort_unstable();
        let median = f64::from(draws[draws.len() / 2]);
        assert!((median - 600.0).abs() < 60.0, "median={median}");
    }

    #[test]
    fn geometric_mean_is_plausible() {
        let mut rng = SimRng::seed(5);
        let d = SessionDist::Geometric {
            mean: 4.0,
            cap: 256,
        };
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| u64::from(d.sample(&mut rng))).sum();
        let mean = sum as f64 / f64::from(n);
        assert!((mean - 4.0).abs() < 0.25, "mean={mean}");
        assert_eq!(d.max_len(), 256);
    }

    #[test]
    fn zipf_concentrates_on_short_sessions() {
        let mut rng = SimRng::seed(6);
        let d = SessionDist::Zipf {
            cap: 64,
            exponent: 1.5,
        };
        let draws: Vec<u32> = (0..10_000).map(|_| d.sample(&mut rng)).collect();
        let ones = draws.iter().filter(|&&v| v == 1).count();
        assert!(draws.iter().all(|&v| (1..=64).contains(&v)));
        // P(1) = 1/H_64(1.5) ≈ 0.40: singletons dominate every other
        // length by far.
        assert!(ones > 3_200, "zipf(1.5) favours singletons: {ones}");
        assert!(draws.iter().any(|&v| v > 8), "but has a tail");
    }

    #[test]
    fn session_lengths_are_at_least_one() {
        let mut rng = SimRng::seed(7);
        assert_eq!(SessionDist::Fixed(0).sample(&mut rng), 1);
        assert_eq!(SessionDist::Fixed(0).max_len(), 1);
        let g = SessionDist::Geometric { mean: 0.1, cap: 8 };
        for _ in 0..100 {
            assert!(g.sample(&mut rng) >= 1);
        }
    }
}
