//! The established table: global `ehash` vs Local Established Table.
//!
//! Every established (and actively-opening) connection is registered
//! here so NET_RX can demultiplex incoming segments. The stock kernel
//! uses one global hash table with per-bucket locks taken on insert and
//! remove; lookups are lock-free (RCU) but still pull the bucket's cache
//! line. Fastsocket gives each core its own table (§3.2.2): all
//! operations touch core-local memory and the per-table lock is only
//! ever taken by its home core — never contended, and its lock word
//! never leaves the home core's cache — *provided* Receive Flow Deliver
//! guarantees that a connection's packets are always processed on its
//! home core (§3.3). The lock still exists (the tables are ordinary
//! inet hashtables underneath) and matters on the one path that breaks
//! the partition: crash-recovery teardown of migrated connections,
//! where a surviving core must remove entries from the dead core's
//! table.

use std::collections::HashMap;

use sim_core::{CoreId, CycleClass};
use sim_mem::{ObjId, ObjKind};
use sim_net::FlowTuple;
use sim_os::{KernelCtx, Op};
use sim_sync::{LockClass, LockId};

use crate::costs::StackCosts;
use crate::tcb::SockId;

/// Which established-table design is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EstVariant {
    /// One global table, per-bucket locks (`ehash.lock`).
    Global,
    /// Fastsocket's per-core Local Established Table.
    Local,
}

/// Number of buckets in the global table (Linux sizes `ehash` by
/// memory; 64Ki is typical for the testbed's RAM class).
pub const GLOBAL_BUCKETS: usize = 65_536;

/// FNV-1a hasher for the flow-keyed demux maps. Flow tuples are small
/// fixed-size keys: FNV beats SipHash on them, and seeding no
/// per-process randomness keeps the tables deterministic across runs
/// (the simulator's reproducibility contract).
#[derive(Debug, Clone)]
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl std::hash::Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// Zero-seed build-hasher producing [`FnvHasher`]s.
pub type FnvBuild = std::hash::BuildHasherDefault<FnvHasher>;

type FlowMap = HashMap<FlowTuple, SockId, FnvBuild>;

fn flow_map(capacity: usize) -> FlowMap {
    FlowMap::with_capacity_and_hasher(capacity, FnvBuild::default())
}

/// FNV-1a hash of a flow tuple (deterministic across runs).
pub fn flow_hash(flow: &FlowTuple) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |b: u8| {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for b in flow.src_ip.octets() {
        eat(b);
    }
    for b in flow.dst_ip.octets() {
        eat(b);
    }
    for b in flow.src_port.to_be_bytes() {
        eat(b);
    }
    for b in flow.dst_port.to_be_bytes() {
        eat(b);
    }
    h
}

/// The established table.
#[derive(Debug)]
pub struct EstTable {
    variant: EstVariant,
    // Global variant state.
    map: FlowMap,
    bucket_locks: Vec<LockId>,
    bucket_objs: Vec<ObjId>,
    // Local variant state.
    local_maps: Vec<FlowMap>,
    local_objs: Vec<ObjId>,
    local_locks: Vec<LockId>,
}

impl EstTable {
    /// Creates the table for `cores` cores, registering bucket locks
    /// and cache objects. `capacity` is the expected peak connection
    /// count — the maps are pre-sized for it (split across cores in the
    /// Local variant) so the hot demux path never pays a rehash.
    pub fn new(ctx: &mut KernelCtx, variant: EstVariant, cores: usize, capacity: usize) -> Self {
        match variant {
            EstVariant::Global => {
                let bucket_locks = (0..GLOBAL_BUCKETS)
                    .map(|_| ctx.locks.register(LockClass::EhashLock))
                    .collect();
                let bucket_objs = (0..GLOBAL_BUCKETS)
                    .map(|i| {
                        ctx.cache
                            .alloc(ObjKind::TableBucket, CoreId((i % cores) as u16))
                    })
                    .collect();
                EstTable {
                    variant,
                    map: flow_map(capacity),
                    bucket_locks,
                    bucket_objs,
                    local_maps: Vec::new(),
                    local_objs: Vec::new(),
                    local_locks: Vec::new(),
                }
            }
            EstVariant::Local => {
                let per_core = capacity.div_ceil(cores.max(1));
                let local_maps = (0..cores).map(|_| flow_map(per_core)).collect();
                let local_objs = (0..cores)
                    .map(|i| ctx.cache.alloc(ObjKind::TableBucket, CoreId(i as u16)))
                    .collect();
                let local_locks = (0..cores)
                    .map(|_| ctx.locks.register(LockClass::LocalEstLock))
                    .collect();
                EstTable {
                    variant,
                    map: flow_map(0),
                    bucket_locks: Vec::new(),
                    bucket_objs: Vec::new(),
                    local_maps,
                    local_objs,
                    local_locks,
                }
            }
        }
    }

    /// The active variant.
    pub fn variant(&self) -> EstVariant {
        self.variant
    }

    fn bucket(&self, flow: &FlowTuple) -> usize {
        (flow_hash(flow) as usize) & (GLOBAL_BUCKETS - 1)
    }

    /// Looks up the socket for a connection (local-perspective `flow`),
    /// from `core`. Lock-free in both variants (RCU-style read), but
    /// the global variant pulls a shared bucket line.
    pub fn lookup(
        &mut self,
        ctx: &mut KernelCtx,
        op: &mut Op,
        core: CoreId,
        flow: &FlowTuple,
        costs: &StackCosts,
    ) -> Option<SockId> {
        op.trace_enter(sim_trace::TraceLabel::EstLookup);
        op.work(CycleClass::EstLookup, costs.est_lookup);
        let found = match self.variant {
            EstVariant::Global => {
                let b = self.bucket(flow);
                op.touch(ctx, self.bucket_objs[b]);
                self.map.get(flow).copied()
            }
            EstVariant::Local => {
                op.touch(ctx, self.local_objs[core.index()]);
                self.local_maps[core.index()].get(flow).copied()
            }
        };
        op.trace_exit(sim_trace::TraceLabel::EstLookup);
        found
    }

    /// Inserts a connection, from `core`. Returns the home table core
    /// (`None` for the global table).
    pub fn insert(
        &mut self,
        ctx: &mut KernelCtx,
        op: &mut Op,
        core: CoreId,
        flow: FlowTuple,
        sock: SockId,
        costs: &StackCosts,
    ) -> Option<CoreId> {
        let prev = match self.variant {
            EstVariant::Global => {
                let b = self.bucket(&flow);
                op.touch_mut(ctx, self.bucket_objs[b]);
                op.lock_do(
                    &mut ctx.locks,
                    self.bucket_locks[b],
                    CycleClass::TcbManage,
                    costs.ehash_hold,
                );
                self.map.insert(flow, sock)
            }
            EstVariant::Local => {
                // A core only ever inserts into its own table; the
                // per-table lock is core-local and never contended.
                op.checker()
                    .lint(sim_check::PartitionLint::LocalEst, op.core().0, core.0);
                op.touch_mut(ctx, self.local_objs[core.index()]);
                op.lock_do(
                    &mut ctx.locks,
                    self.local_locks[core.index()],
                    CycleClass::TcbManage,
                    costs.ehash_hold,
                );
                self.local_maps[core.index()].insert(flow, sock)
            }
        };
        if prev.is_some() {
            op.checker().invariant_violation(
                "established",
                op.core().0,
                format!("duplicate established insert for {flow}"),
            );
        }
        match self.variant {
            EstVariant::Global => None,
            EstVariant::Local => Some(core),
        }
    }

    /// Removes a connection. `home` must be the core returned by
    /// [`EstTable::insert`] for the Local variant.
    pub fn remove(
        &mut self,
        ctx: &mut KernelCtx,
        op: &mut Op,
        home: Option<CoreId>,
        flow: &FlowTuple,
        costs: &StackCosts,
    ) {
        let removed = match self.variant {
            EstVariant::Global => {
                let b = self.bucket(flow);
                op.touch_mut(ctx, self.bucket_objs[b]);
                op.lock_do(
                    &mut ctx.locks,
                    self.bucket_locks[b],
                    CycleClass::TcbManage,
                    costs.ehash_hold,
                );
                self.map.remove(flow)
            }
            EstVariant::Local => {
                let home = home.expect("local established entries have a home core");
                // Teardown normally happens on the entry's home core —
                // RFD's delivery guarantee extends to removal. The one
                // legitimate exception is crash recovery, where a
                // survivor reaps a dead worker's migrated connections
                // under the home table's (otherwise core-local) lock.
                op.checker()
                    .lint(sim_check::PartitionLint::LocalEst, op.core().0, home.0);
                op.touch_mut(ctx, self.local_objs[home.index()]);
                op.lock_do(
                    &mut ctx.locks,
                    self.local_locks[home.index()],
                    CycleClass::TcbManage,
                    costs.ehash_hold,
                );
                self.local_maps[home.index()].remove(flow)
            }
        };
        if removed.is_none() {
            op.checker().invariant_violation(
                "established",
                op.core().0,
                format!("removing unknown connection {flow}"),
            );
        }
    }

    /// Total live entries across all tables.
    pub fn len(&self) -> usize {
        self.map.len() + self.local_maps.iter().map(FlowMap::len).sum::<usize>()
    }

    /// Spare pre-sized slots left before any table would rehash (the
    /// smallest per-table headroom; capacity-hint plumbing test hook).
    pub fn spare_capacity(&self) -> usize {
        if self.variant == EstVariant::Global {
            self.map.capacity() - self.map.len()
        } else {
            self.local_maps
                .iter()
                .map(|m| m.capacity() - m.len())
                .min()
                .unwrap_or(0)
        }
    }

    /// Whether no connections are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::SimRng;
    use sim_mem::{CacheCosts, CacheModel};
    use sim_sync::{LockCosts, LockTable};
    use std::net::Ipv4Addr;

    fn ctx(cores: usize) -> KernelCtx {
        KernelCtx::new(
            cores,
            LockTable::new(LockCosts::default()),
            CacheModel::new(CacheCosts::default()),
            SimRng::seed(31),
        )
    }

    fn flow(p: u16) -> FlowTuple {
        FlowTuple::new(
            Ipv4Addr::new(10, 0, 0, 1),
            80,
            Ipv4Addr::new(10, 0, 0, 2),
            p,
        )
    }

    #[test]
    fn global_insert_lookup_remove() {
        let mut c = ctx(4);
        let mut t = EstTable::new(&mut c, EstVariant::Global, 4, 1_024);
        let costs = StackCosts::default();
        let mut op = c.begin(CoreId(0), 0);
        let home = t.insert(&mut c, &mut op, CoreId(0), flow(40_000), SockId(7), &costs);
        assert_eq!(home, None);
        // Lookup from another core still finds it (global table).
        let hit = t.lookup(&mut c, &mut op, CoreId(3), &flow(40_000), &costs);
        assert_eq!(hit, Some(SockId(7)));
        t.remove(&mut c, &mut op, home, &flow(40_000), &costs);
        assert!(t.is_empty());
        op.commit(&mut c.cpu);
        assert!(c.locks.stats(LockClass::EhashLock).acquisitions >= 2);
    }

    #[test]
    fn local_tables_are_partitioned_per_core() {
        let mut c = ctx(4);
        let mut t = EstTable::new(&mut c, EstVariant::Local, 4, 1_024);
        let costs = StackCosts::default();
        let mut op = c.begin(CoreId(1), 0);
        let home = t.insert(&mut c, &mut op, CoreId(1), flow(40_000), SockId(9), &costs);
        assert_eq!(home, Some(CoreId(1)));
        // The home core finds it...
        assert_eq!(
            t.lookup(&mut c, &mut op, CoreId(1), &flow(40_000), &costs),
            Some(SockId(9))
        );
        // ...another core does NOT: this is why naive partition breaks
        // TCP without RFD's delivery guarantee (§2.1).
        assert_eq!(
            t.lookup(&mut c, &mut op, CoreId(2), &flow(40_000), &costs),
            None
        );
        t.remove(&mut c, &mut op, home, &flow(40_000), &costs);
        op.commit(&mut c.cpu);
        // No global-table traffic; the per-core table lock is taken but
        // never contended (only the home core touches it).
        assert_eq!(c.locks.stats(LockClass::EhashLock).acquisitions, 0);
        let local = c.locks.stats(LockClass::LocalEstLock);
        assert_eq!(local.acquisitions, 2);
        assert_eq!(local.contentions, 0);
        assert_eq!(local.line_transfers, 0);
    }

    #[test]
    fn flow_hash_is_deterministic_and_spreads() {
        let a = flow_hash(&flow(40_000));
        assert_eq!(a, flow_hash(&flow(40_000)));
        // Distribution over buckets should be roughly uniform.
        let mut counts = [0u32; 16];
        for p in 32_768..(32_768 + 16_000) {
            counts[(flow_hash(&flow(p)) as usize) % 16] += 1;
        }
        for (i, &n) in counts.iter().enumerate() {
            assert!((800..1_200).contains(&n), "bucket {i}: {n}");
        }
    }

    #[test]
    fn fnv_hasher_matches_flow_hash_and_is_seedless() {
        use std::hash::Hasher;
        let f = flow(40_000);
        let mut h = FnvHasher::default();
        for b in f.src_ip.octets() {
            h.write(&[b]);
        }
        for b in f.dst_ip.octets() {
            h.write(&[b]);
        }
        h.write(&f.src_port.to_be_bytes());
        h.write(&f.dst_port.to_be_bytes());
        assert_eq!(h.finish(), flow_hash(&f), "one FNV-1a, two spellings");
        // Two independently built maps agree on layout (no random seed).
        let a = flow_map(16);
        let b = flow_map(16);
        use std::hash::BuildHasher;
        assert_eq!(
            a.hasher().hash_one(f),
            b.hasher().hash_one(f),
            "seedless build-hasher"
        );
    }

    #[test]
    fn capacity_hint_presizes_tables() {
        let mut c = ctx(4);
        let mut t = EstTable::new(&mut c, EstVariant::Local, 4, 4_000);
        assert!(
            t.spare_capacity() >= 1_000,
            "each local table pre-sized for its share: {}",
            t.spare_capacity()
        );
        let costs = StackCosts::default();
        let mut op = c.begin(CoreId(0), 0);
        for p in 0..500u16 {
            t.insert(
                &mut c,
                &mut op,
                CoreId(0),
                flow(30_000 + p),
                SockId(u32::from(p)),
                &costs,
            );
        }
        op.commit(&mut c.cpu);
        assert!(
            t.spare_capacity() >= 500,
            "no rehash below the hint: {}",
            t.spare_capacity()
        );
    }

    #[test]
    fn len_counts_both_variants() {
        let mut c = ctx(2);
        let mut t = EstTable::new(&mut c, EstVariant::Local, 2, 64);
        let costs = StackCosts::default();
        let mut op = c.begin(CoreId(0), 0);
        t.insert(&mut c, &mut op, CoreId(0), flow(1_025), SockId(1), &costs);
        t.insert(&mut c, &mut op, CoreId(1), flow(1_026), SockId(2), &costs);
        op.commit(&mut c.cpu);
        assert_eq!(t.len(), 2);
    }
}
