//! Receive Flow Deliver (§3.3).
//!
//! RFD makes *active* connections local: when an application on core
//! `c` connects out, the kernel picks a source port `p` with
//! `hash(p) = c`; when a packet later arrives for destination port `p`,
//! any core can compute `hash(p)` and steer the packet to `c`. The hash
//! is the paper's `hash(p) = p & (ROUND_UP_POWER_OF_2(n) - 1)`, chosen
//! to be programmable into Flow Director Perfect-Filtering (bit-wise
//! operations only).
//!
//! Before decoding, RFD must decide whether an incoming packet belongs
//! to a passive or an active connection — applying the hash to passive
//! packets would break the passive locality that the Local Listen Table
//! provides. The paper's three classification rules are implemented in
//! [`Rfd::classify`].

use serde::{Deserialize, Serialize};
use sim_core::CoreId;
use sim_net::{FlowTuple, Packet};

/// Classification of an incoming packet (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PacketClass {
    /// Belongs to a connection this host initiated.
    ActiveIncoming,
    /// Belongs to a connection a peer initiated.
    PassiveIncoming,
}

/// Which rule classified a packet (for statistics and tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClassifiedBy {
    /// Rule 1: source port is well-known.
    Rule1,
    /// Rule 2: destination port is well-known.
    Rule2,
    /// Rule 3: listen-table probe.
    Rule3,
}

/// The Receive Flow Deliver engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rfd {
    mask: u16,
    cores: u16,
    shift: u8,
}

impl Rfd {
    /// Creates the engine for a machine with `cores` CPU cores.
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0`.
    pub fn new(cores: u16) -> Self {
        Self::with_shift(cores, 0)
    }

    /// Creates the engine reading the core id from the bits starting at
    /// `shift` — the paper's security hardening ("introduce some
    /// randomness ... by randomly selecting the bits used in the
    /// operation"), which stops an attacker who knows the plain mapping
    /// from aiming every connection at one core.
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0`, or if the shifted field does not fit a
    /// 16-bit port.
    pub fn with_shift(cores: u16, shift: u8) -> Self {
        assert!(cores > 0, "need at least one core");
        let mask = cores.next_power_of_two() - 1;
        let width = 16 - mask.leading_zeros() as u8;
        assert!(shift + width <= 16, "shifted core field exceeds the port");
        Rfd { mask, cores, shift }
    }

    /// The port mask (`ROUND_UP_POWER_OF_2(n) - 1`).
    pub fn mask(self) -> u16 {
        self.mask
    }

    /// The bit offset of the core field within the port.
    pub fn shift(self) -> u8 {
        self.shift
    }

    /// `hash(p)`: the core id encoded in port `p`. May be `>= cores`
    /// when `cores` is not a power of two and `p` was not RFD-chosen.
    pub fn hash(self, port: u16) -> u16 {
        (port >> self.shift) & self.mask
    }

    /// Whether `port` encodes the given core.
    pub fn port_matches_core(self, port: u16, core: CoreId) -> bool {
        self.hash(port) == core.0
    }

    /// Classifies an incoming packet using the paper's rules, in order:
    ///
    /// 1. well-known source port ⇒ active incoming;
    /// 2. well-known destination port ⇒ passive incoming;
    /// 3. otherwise probe the listen table (`has_listener`): a match
    ///    means passive (one cannot actively connect from a listened
    ///    port), else active.
    pub fn classify<F>(self, flow: &FlowTuple, has_listener: F) -> (PacketClass, ClassifiedBy)
    where
        F: FnOnce(u16) -> bool,
    {
        if flow.src_is_well_known() {
            (PacketClass::ActiveIncoming, ClassifiedBy::Rule1)
        } else if flow.dst_is_well_known() {
            (PacketClass::PassiveIncoming, ClassifiedBy::Rule2)
        } else if has_listener(flow.dst_port) {
            (PacketClass::PassiveIncoming, ClassifiedBy::Rule3)
        } else {
            (PacketClass::ActiveIncoming, ClassifiedBy::Rule3)
        }
    }

    /// For an active incoming packet, the core that must process it —
    /// `None` if the decoded id is out of range (the port was not
    /// chosen by RFD; process wherever it landed).
    pub fn steer_target(self, pkt: &Packet) -> Option<CoreId> {
        let id = self.hash(pkt.flow.dst_port);
        (id < self.cores).then_some(CoreId(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_net::TcpFlags;
    use std::net::Ipv4Addr;

    fn flow(src_port: u16, dst_port: u16) -> FlowTuple {
        FlowTuple::new(
            Ipv4Addr::new(10, 0, 0, 7),
            src_port,
            Ipv4Addr::new(10, 0, 0, 1),
            dst_port,
        )
    }

    #[test]
    fn mask_is_next_power_of_two_minus_one() {
        assert_eq!(Rfd::new(1).mask(), 0);
        assert_eq!(Rfd::new(8).mask(), 7);
        assert_eq!(Rfd::new(16).mask(), 15);
        assert_eq!(Rfd::new(24).mask(), 31);
    }

    #[test]
    fn hash_round_trips_for_rfd_chosen_ports() {
        for cores in [1u16, 2, 4, 8, 12, 16, 24] {
            let rfd = Rfd::new(cores);
            for core in 0..cores {
                // Any port congruent to `core` under the mask decodes
                // back to that core.
                let port = 40_000u16 & !rfd.mask() | core;
                assert!(rfd.port_matches_core(port, CoreId(core)));
                let pkt = Packet::new(flow(80, port), TcpFlags::ACK);
                assert_eq!(rfd.steer_target(&pkt), Some(CoreId(core)));
            }
        }
    }

    #[test]
    fn steer_target_rejects_out_of_range_ids() {
        let rfd = Rfd::new(24); // mask 31
        let port = 40_000u16 & !31 | 28; // decodes to 28 >= 24
        let pkt = Packet::new(flow(80, port), TcpFlags::ACK);
        assert_eq!(rfd.steer_target(&pkt), None);
    }

    #[test]
    fn rule1_well_known_source_is_active() {
        let rfd = Rfd::new(8);
        let (class, by) = rfd.classify(&flow(80, 40_001), |_| true);
        assert_eq!(class, PacketClass::ActiveIncoming);
        assert_eq!(by, ClassifiedBy::Rule1);
    }

    #[test]
    fn rule2_well_known_destination_is_passive() {
        let rfd = Rfd::new(8);
        // Rule 1 does not fire (src ephemeral), rule 2 does.
        let (class, by) = rfd.classify(&flow(40_000, 80), |_| false);
        assert_eq!(class, PacketClass::PassiveIncoming);
        assert_eq!(by, ClassifiedBy::Rule2);
    }

    #[test]
    fn rule3_probes_listen_table() {
        let rfd = Rfd::new(8);
        // Both ports ephemeral: the listen probe decides.
        let (class, by) = rfd.classify(&flow(45_000, 48_000), |p| p == 48_000);
        assert_eq!(class, PacketClass::PassiveIncoming);
        assert_eq!(by, ClassifiedBy::Rule3);
        let (class, by) = rfd.classify(&flow(45_000, 48_000), |_| false);
        assert_eq!(class, PacketClass::ActiveIncoming);
        assert_eq!(by, ClassifiedBy::Rule3);
    }

    #[test]
    fn rules_apply_in_order() {
        let rfd = Rfd::new(8);
        // src and dst both well-known: rule 1 wins.
        let (class, by) = rfd.classify(&flow(443, 80), |_| true);
        assert_eq!(class, PacketClass::ActiveIncoming);
        assert_eq!(by, ClassifiedBy::Rule1);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        let _ = Rfd::new(0);
    }
}
