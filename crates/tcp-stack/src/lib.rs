//! The simulated kernel TCP stack — the paper's core contribution.
//!
//! This crate implements TCB management and the Fastsocket designs on
//! top of the `sim-os` kernel substrate:
//!
//! * [`tcb`] — sockets (TCP control blocks) with the full state machine
//!   ([`state`]), per-socket `slock`, timers and sequence tracking;
//! * [`listen`] — the **listen table** in three variants:
//!   [`ListenVariant::Global`] (one listen socket, Linux 2.6.32),
//!   [`ListenVariant::ReusePort`] (per-process socket copies sharing a
//!   bucket, Linux 3.13's `SO_REUSEPORT`, with its O(n)
//!   `inet_lookup_listener` walk), and [`ListenVariant::Local`]
//!   (Fastsocket's per-core Local Listen Table with the global-socket
//!   fallback slow path, Figure 2);
//! * [`established`] — the **established table**: the global per-bucket
//!   locked `ehash` versus Fastsocket's per-core Local Established
//!   Table;
//! * [`rfd`] — **Receive Flow Deliver**: source-port encoding of the
//!   connecting core, packet classification rules, and software
//!   steering;
//! * [`ports`] — ephemeral port allocation (global locked allocator vs
//!   RFD's per-core partition);
//! * [`stack`] — [`stack::TcpStack`]: the composed NET_RX receive path
//!   and the socket syscalls (`listen`/`accept`/`connect`/`send`/
//!   `recv`/`close`).
//!
//! All variants run the same workload code; a [`stack::StackConfig`]
//! selects which kernel is being simulated.

pub mod cc;
pub mod costs;
pub mod established;
pub mod listen;
pub mod ports;
pub mod rfd;
pub mod stack;
pub mod state;
pub mod stats;
pub mod tcb;
pub mod window;

pub use cc::{AckCtx, CcAlgo, CcConfig, CongestionControl};
pub use established::EstVariant;
pub use listen::ListenVariant;
pub use rfd::{PacketClass, Rfd};
pub use stack::{AcceptSource, FaultInjection, OsServices, RxOutcome, StackConfig, TcpStack};
pub use state::TcpState;
pub use stats::{DataPlaneStats, StackStats};
pub use tcb::SockId;
pub use window::{DataPlane, RecvWindow, SendWindow};
