//! The composed TCP stack: NET_RX receive path and socket syscalls.
//!
//! [`TcpStack`] glues the listen table, established table, Receive Flow
//! Deliver, and port allocator into the two halves the paper analyses:
//!
//! * **softirq half** — [`TcpStack::net_rx`]: RFD classification and
//!   steering, demultiplexing, handshake processing, data delivery,
//!   teardown; runs on whatever core the NIC (or RFD) delivered the
//!   packet to;
//! * **process half** — [`TcpStack::accept`], [`TcpStack::connect`],
//!   [`TcpStack::send`], [`TcpStack::recv`], [`TcpStack::close`]: runs
//!   on the core the application is pinned to.
//!
//! Under the full Fastsocket configuration both halves of any connection
//! execute on one core (the Per-Core Process Zone), which is precisely
//! why every shared-lock contention count in Table 1 drops to zero.

use sim_check::PartitionLint;
use sim_core::{CoreId, CycleClass, Cycles};
use sim_net::{FlowTuple, Packet, TcpFlags};
use sim_os::epoll::{EpollEvent, EpollId, EpollSystem};
use sim_os::process::Pid;
use sim_os::timer::{TimerCosts, TimerSystem};
use sim_os::vfs::{Vfs, VfsCosts, VfsMode};
use sim_os::{KernelCtx, Op};
use sim_res::{MemCharge, PressureLevel};

use sim_trace::TraceLabel;

use crate::cc::{AckCtx, CcConfig};
use crate::costs::StackCosts;
use crate::established::{flow_hash, EstTable, EstVariant};
use crate::listen::{ListenTable, ListenVariant, LsId};
use crate::ports::{PortAlloc, PortAllocVariant};
use crate::rfd::{ClassifiedBy, PacketClass, Rfd};
use crate::state::{self, TcpState};
use crate::stats::StackStats;
use crate::tcb::{SockId, SockTable};
use crate::window::{seq_gt, AckKind, DataPlane, DUP_ACK_THRESHOLD};

/// Seeded fault-injection knobs that break one kernel invariant on
/// purpose, so the `sim-check` sanitizers can be shown to catch real
/// bugs (each knob maps to exactly one detector — see the negative
/// system tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultInjection {
    /// No fault: the stock kernel.
    #[default]
    None,
    /// Softirq segment processing skips the socket `slock`, racing the
    /// syscall half on the TCB and socket buffer (lockset detector).
    SkipSlock,
    /// Softirq takes `base.lock` before the socket `slock`, inverting
    /// the RTO re-arm order `slock -> base.lock` (lockdep detector).
    ReverseLockOrder,
    /// RFD steers active-incoming packets to the wrong core (partition
    /// detector: `rfd_delivery`).
    MisSteer,
    /// `accept()` pops from the next core's local listen table
    /// (partition detector: `local_listen`).
    CrossCoreAccept,
    /// Established-segment timer maintenance re-arms on the next core's
    /// timer base (partition detector: `timer_base`).
    CrossCoreTimer,
    /// A fresh socket buffer is written on one remote core and then on
    /// another with no connecting synchronization channel (happens-
    /// before detector). Invisible to the lockset detector: the first
    /// write is exclusive, and the second holds a real lock so its
    /// candidate set never empties.
    SilentHandoff,
    /// A remote core briefly takes ownership of an established
    /// connection's socket buffer *under its socket lock*, so the
    /// owning core's next write bounces ownership straight back (shard
    /// certifier: `sock_buf` exceeds its migrated-once bound). The
    /// lock makes every write both lockset-clean and happens-before
    /// ordered, so no other detector fires.
    OwnerPingPong,
}

/// Full configuration of the simulated kernel's TCP stack.
#[derive(Debug, Clone)]
pub struct StackConfig {
    /// Number of CPU cores.
    pub cores: u16,
    /// Listen-table design.
    pub listen: ListenVariant,
    /// Established-table design.
    pub established: EstVariant,
    /// Whether Receive Flow Deliver software steering is active.
    pub rfd: bool,
    /// Bit offset of RFD's core field within the source port (§3.3's
    /// security hardening; 0 = the plain low-bits mapping).
    pub rfd_shift: u8,
    /// VFS flavour (used when building [`OsServices`]).
    pub vfs_mode: VfsMode,
    /// Ephemeral-port allocator design.
    pub port_alloc: PortAllocVariant,
    /// Cycle costs.
    pub costs: StackCosts,
    /// TIME_WAIT duration before recycling (the production systems the
    /// paper targets run with TIME_WAIT recycling enabled).
    pub time_wait: Cycles,
    /// ABLATION ONLY: check the local listen table before the global
    /// socket in `accept()`. The paper argues this starves slow-path
    /// connections on a busy server (§3.2.1); keep `false`.
    pub accept_local_first: bool,
    /// Answer SYNs with stateless SYN cookies when the backlog is full
    /// (the security requirement of §1: SYN floods must not break
    /// service). Linux enables this by default.
    pub syn_cookies: bool,
    /// §5 future work: FlexSC-style syscall batching — user↔kernel
    /// transition cost is paid once per worker wakeup instead of per
    /// syscall.
    pub syscall_batching: bool,
    /// §5 future work: zero-copy send/receive — payload copy costs
    /// vanish (page remapping / copy-on-write).
    pub zero_copy: bool,
    /// Retransmission timeout, in cycles (compressed relative to
    /// Linux's 200 ms minimum to keep simulated runs short; the
    /// *mechanism* — timer-driven recovery of lost segments — is what
    /// matters). Doubles per retry up to [`MAX_RTO_BACKOFF_SHIFT`]
    /// doublings, as Linux's exponential backoff does.
    pub rto: Cycles,
    /// Maximum doublings of the base RTO under exponential backoff: the
    /// retry timeout is capped at `rto << rto_backoff_shift`, mirroring
    /// Linux's `TCP_RTO_MAX` clamp. Defaults to
    /// [`MAX_RTO_BACKOFF_SHIFT`]; long fault schedules lower it so a
    /// backed-off retry cannot overshoot the simulated window.
    pub rto_backoff_shift: u8,
    /// Post an epoll error event (readable, like `EPOLLERR`) to the
    /// owning process when an established or connecting socket is torn
    /// down by a peer RST or by retransmission abandonment. Off by
    /// default — the edge tier arms it so the proxy observes backend
    /// death instead of leaking the relay; the stock request/response
    /// benchmarks keep the historical silent-teardown behaviour (and
    /// their pinned digests).
    pub err_events: bool,
    /// Memory-pressure cap on live TCBs (Linux's `tcp_max_orphans` /
    /// `tcp_mem` analogue): when the socket slab holds this many live
    /// sockets, new embryo allocations are refused (admission-control
    /// drop, counted in `mem_pressure_drops`). `None` = uncapped.
    pub tcb_cap: Option<u32>,
    /// Deliberately broken invariant for sanitizer validation; keep
    /// [`FaultInjection::None`] for any measurement run.
    pub fault: FaultInjection,
    /// Sliding-window data plane: when set, every established
    /// connection gets send/receive windows and the configured
    /// congestion controller, enabling [`TcpStack::send_bulk`]
    /// multi-segment streaming. `None` keeps the single-packet
    /// request/response model byte-identical to the pre-data-plane
    /// stack.
    pub cc: Option<CcConfig>,
    /// Memory-accounting subsystem (`sim-res`): when set, every TCB,
    /// buffer byte, and TIME_WAIT/orphan bucket is charged to a
    /// per-core ledger with `tcp_mem`-style low/pressure/high
    /// thresholds, and the pressure reactions (SYN drops, embryo
    /// pruning, window clamping, receive-queue collapse, forced
    /// TIME_WAIT recycle, orphan killing) arm. `None` keeps the stack
    /// byte-identical to the unaccounted model.
    pub mem: Option<sim_res::MemConfig>,
}

impl StackConfig {
    /// The stock Linux 2.6.32 kernel: global listen socket, global
    /// established table, legacy VFS, global port allocator, no RFD.
    pub fn base_linux(cores: u16) -> Self {
        StackConfig {
            cores,
            listen: ListenVariant::Global,
            established: EstVariant::Global,
            rfd: false,
            rfd_shift: 0,
            vfs_mode: VfsMode::Legacy,
            port_alloc: PortAllocVariant::Global,
            costs: StackCosts::default(),
            time_wait: 2_700_000, // 1 ms at 2.7 GHz (recycled)
            accept_local_first: false,
            syn_cookies: true,
            syscall_batching: false,
            zero_copy: false,
            rto: 13_500_000, // 5 ms at 2.7 GHz
            rto_backoff_shift: MAX_RTO_BACKOFF_SHIFT,
            err_events: false,
            tcb_cap: None,
            fault: FaultInjection::None,
            cc: None,
            mem: None,
        }
    }

    /// Enables the sliding-window data plane with the given
    /// congestion-control configuration (builder style).
    pub fn with_cc(mut self, cc: CcConfig) -> Self {
        self.cc = Some(cc);
        self
    }

    /// Linux 3.13: `SO_REUSEPORT` listen copies and finer-grained VFS
    /// locking; everything else as the base kernel.
    pub fn linux_313(cores: u16) -> Self {
        StackConfig {
            listen: ListenVariant::ReusePort,
            vfs_mode: VfsMode::Sharded,
            ..Self::base_linux(cores)
        }
    }

    /// Full Fastsocket: Local Listen Table, Local Established Table,
    /// Receive Flow Deliver, Fastsocket-aware VFS, per-core ports.
    pub fn fastsocket(cores: u16) -> Self {
        StackConfig {
            listen: ListenVariant::Local,
            established: EstVariant::Local,
            rfd: true,
            vfs_mode: VfsMode::Fastpath,
            port_alloc: PortAllocVariant::PerCore,
            ..Self::base_linux(cores)
        }
    }

    /// Pre-size hint for the established tables: the TCB cap when one
    /// is configured, else a 4Ki default. The tables grow past the
    /// hint as needed — pre-sizing only keeps a million-entry climb
    /// from rehashing mid-run.
    pub fn est_capacity(&self) -> usize {
        self.tcb_cap.map_or(4_096, |c| c as usize)
    }
}

/// The OS services the TCP stack drives (VFS, epoll, timers), built to
/// match a [`StackConfig`].
#[derive(Debug)]
pub struct OsServices {
    /// The VFS model.
    pub vfs: Vfs,
    /// All epoll instances.
    pub epolls: EpollSystem,
    /// Per-core timer bases.
    pub timers: TimerSystem,
}

impl OsServices {
    /// Builds the services for `config` in `ctx`.
    pub fn new(ctx: &mut KernelCtx, config: &StackConfig) -> Self {
        let mut ep_costs = sim_os::epoll::EpollCosts::default();
        if let Some(m) = &config.mem {
            // Million-connection realism: with the memory subsystem on,
            // `epoll_wait` pays a ready-list/interest-tree scan cost
            // that grows with the *modeled* watched-fd count (simulated
            // interest x the accounting scale). Zero (legacy-exact)
            // otherwise.
            ep_costs.wait_scan_per_1k = EPOLL_SCAN_PER_1K_WATCHED;
            ep_costs.watched_scale = m.scale.max(1);
        }
        OsServices {
            vfs: Vfs::new(ctx, config.vfs_mode, VfsCosts::default()),
            epolls: EpollSystem::new(ep_costs),
            timers: TimerSystem::new(ctx, config.cores as usize, TimerCosts::default()),
        }
    }
}

/// Where an accepted connection came from (Figure 2's fast vs slow
/// path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcceptSource {
    /// The core's local listen table (fast path) — or the only listen
    /// socket in non-Fastsocket kernels.
    Local,
    /// The global listen socket (Fastsocket slow path).
    Global,
}

/// Result of processing one received packet.
#[derive(Debug, Default)]
pub struct RxOutcome {
    /// RFD decided the packet belongs to another core: the driver must
    /// re-enqueue it there. Nothing else was done.
    pub steer: Option<CoreId>,
    /// Segments to transmit in response.
    pub replies: Vec<Packet>,
    /// Processes whose epoll gained its first ready event.
    pub wakeups: Vec<Pid>,
    /// Sockets that just entered TIME_WAIT (driver schedules expiry).
    pub time_wait: Vec<SockId>,
    /// Sockets that reached CLOSED and were freed.
    pub closed: Vec<SockId>,
}

/// RTO firings tolerated per segment before the connection is aborted
/// (Linux's `tcp_retries2`-style bound).
pub const MAX_RTX_ATTEMPTS: u8 = 8;

/// Default maximum doublings of the base RTO under exponential backoff
/// (the retry timeout is capped at `rto << rto_backoff_shift`,
/// mirroring Linux's `TCP_RTO_MAX` clamp); configurable via
/// `StackConfig::rto_backoff_shift`.
pub const MAX_RTO_BACKOFF_SHIFT: u8 = 6;

/// `epoll_wait` scan cycles per 1024 *modeled* watched fds, armed by
/// [`OsServices::new`] when `StackConfig::mem` is set (~0.02 cycles of
/// interest-tree cache pressure per watched descriptor — ≈7 µs per
/// wait at 1M watched fds on the 2.7 GHz model).
pub const EPOLL_SCAN_PER_1K_WATCHED: u64 = 18;

/// The simulated kernel TCP stack.
#[derive(Debug)]
pub struct TcpStack {
    config: StackConfig,
    rfd_engine: Rfd,
    /// All sockets.
    pub socks: SockTable,
    listen_table: ListenTable,
    est: EstTable,
    ports: PortAlloc,
    stats: StackStats,
    cookie_secret: u64,
    pending_rto: Vec<(SockId, u64, Cycles)>,
    /// Processes woken by an error event posted outside softirq context
    /// (RTO abandonment has no [`RxOutcome`] to carry the wakeup); the
    /// driver drains these via [`TcpStack::take_err_wakeups`].
    pending_err_wakeups: Vec<Pid>,
    /// One-shot latch for the [`FaultInjection::SilentHandoff`] and
    /// [`FaultInjection::OwnerPingPong`] knobs.
    fault_fired: bool,
    /// Victim `(socket, generation)` armed for `OwnerPingPong`: the
    /// knob fires while a *different* connection is being processed so
    /// the victim has no writes pending in the current op segment.
    fault_victim: Option<(SockId, u64)>,
    /// The memory-accounting ledger (`StackConfig::mem`); `None` keeps
    /// every charge site a no-op.
    mem: Option<sim_res::MemAccounts>,
}

impl TcpStack {
    /// Builds the stack for `config`, registering tables in `ctx`.
    pub fn new(ctx: &mut KernelCtx, config: StackConfig) -> Self {
        let rfd_engine = Rfd::with_shift(config.cores, config.rfd_shift);
        let listen_table = ListenTable::new(config.listen, config.cores as usize);
        let est = EstTable::new(
            ctx,
            config.established,
            config.cores as usize,
            config.est_capacity(),
        );
        let ports = PortAlloc::with_rfd(ctx, config.port_alloc, config.cores, rfd_engine);
        let mem = config
            .mem
            .map(|m| sim_res::MemAccounts::new(m, config.cores as usize));
        TcpStack {
            config,
            rfd_engine,
            socks: SockTable::new(),
            listen_table,
            est,
            ports,
            stats: StackStats::default(),
            cookie_secret: ctx.rng.next_u64(),
            pending_rto: Vec::new(),
            pending_err_wakeups: Vec::new(),
            fault_fired: false,
            fault_victim: None,
            mem,
        }
    }

    /// Drains the `(socket, generation, delay)` triples whose
    /// retransmission timer must be (re)armed `delay` cycles from now
    /// (`config.rto`, exponentially backed off per retry). The driver
    /// schedules the expirations and calls [`TcpStack::on_rto`].
    pub fn take_rto_arms(&mut self) -> Vec<(SockId, u64, Cycles)> {
        std::mem::take(&mut self.pending_rto)
    }

    /// Drains the processes that gained their first ready event from an
    /// error notification posted outside softirq context (currently:
    /// retransmission abandonment with `err_events` armed). The driver
    /// schedules a process wakeup for each.
    pub fn take_err_wakeups(&mut self) -> Vec<Pid> {
        std::mem::take(&mut self.pending_err_wakeups)
    }

    // ------------------------------------------------------------------
    // Memory accounting (sim-res)
    // ------------------------------------------------------------------
    //
    // Every charge site below is a no-op when `StackConfig::mem` is
    // unset: no counters move, no RNG is drawn, no costs are paid, so
    // the unaccounted stack stays byte-identical (pinned digests).

    /// Records a pressure-zone transition reported by a charge.
    fn mem_note(&mut self, transition: Option<PressureLevel>) {
        if let Some(level) = transition {
            self.stats.mem_mut().on_transition(level);
        }
    }

    /// Whether the ledger sits at or past `level` (false when
    /// accounting is off).
    fn mem_at_least(&self, level: PressureLevel) -> bool {
        self.mem.as_ref().is_some_and(|m| m.level() >= level)
    }

    /// Charges a new embryonic connection and tags the TCB.
    fn mem_charge_embryo(&mut self, sock: SockId) {
        if self.mem.is_none() {
            return;
        }
        let core = {
            let t = self.socks.get_mut(sock);
            t.mem_charge = MemCharge::Embryo;
            t.mem_core
        };
        let tr = self
            .mem
            .as_mut()
            .expect("accounting armed")
            .charge_embryo(core);
        self.mem_note(tr);
    }

    /// Charges a full TCB for a connection that never held an embryo
    /// charge (active `connect`, cookie-validated handshake).
    fn mem_charge_tcb(&mut self, sock: SockId) {
        if self.mem.is_none() {
            return;
        }
        let core = {
            let t = self.socks.get_mut(sock);
            t.mem_charge = MemCharge::Tcb;
            t.mem_core
        };
        let tr = self
            .mem
            .as_mut()
            .expect("accounting armed")
            .charge_tcb(core);
        self.mem_note(tr);
    }

    /// Converts `sock`'s embryo charge into a full TCB charge
    /// (handshake completion).
    fn mem_promote(&mut self, sock: SockId) {
        if self.mem.is_none() {
            return;
        }
        let core = {
            let t = self.socks.get_mut(sock);
            debug_assert_eq!(t.mem_charge, MemCharge::Embryo, "promote without embryo");
            t.mem_charge = MemCharge::Tcb;
            t.mem_core
        };
        let tr = self.mem.as_mut().expect("accounting armed").promote(core);
        self.mem_note(tr);
    }

    /// Converts `sock`'s TCB charge into a TIME_WAIT bucket.
    fn mem_enter_tw(&mut self, sock: SockId) {
        if self.mem.is_none() {
            return;
        }
        let core = {
            let t = self.socks.get_mut(sock);
            debug_assert_eq!(t.mem_charge, MemCharge::Tcb, "TIME_WAIT without TCB");
            t.mem_charge = MemCharge::TimeWait;
            t.mem_core
        };
        let tr = self
            .mem
            .as_mut()
            .expect("accounting armed")
            .enter_time_wait(core);
        self.mem_note(tr);
    }

    /// Charges delivered payload (plus skb overhead) to the receive
    /// account; under pressure the queue is collapsed on the spot —
    /// the overhead slack is reclaimed (`tcp_collapse`), the data kept.
    fn mem_charge_recv(&mut self, sock: SockId, bytes: u16) {
        if bytes == 0 || self.mem.is_none() {
            return;
        }
        let charged = u64::from(bytes) + sim_res::SKB_OVERHEAD_BYTES;
        let core = {
            let t = self.socks.get_mut(sock);
            t.mem_rcv += charged as u32;
            t.mem_core
        };
        let tr = self
            .mem
            .as_mut()
            .expect("accounting armed")
            .charge_recv_buf(core, charged);
        self.mem_note(tr);
        if self.mem_at_least(PressureLevel::Pressure) {
            let slack = {
                let t = self.socks.get_mut(sock);
                let slack = t.mem_rcv.saturating_sub(t.rx_ready);
                t.mem_rcv = t.rx_ready;
                slack
            };
            if slack > 0 {
                let tr = self
                    .mem
                    .as_mut()
                    .expect("accounting armed")
                    .uncharge_recv_buf(core, u64::from(slack));
                self.mem_note(tr);
                let ms = self.stats.mem_mut();
                ms.buffer_reclaims += 1;
                ms.bytes_reclaimed += u64::from(slack);
            }
        }
    }

    /// Uncharges the socket's whole receive charge (the application
    /// read everything that was queued).
    fn mem_drain_recv(&mut self, sock: SockId) {
        if self.mem.is_none() {
            return;
        }
        let (core, charged) = {
            let t = self.socks.get_mut(sock);
            (t.mem_core, std::mem::take(&mut t.mem_rcv))
        };
        if charged == 0 {
            return;
        }
        let tr = self
            .mem
            .as_mut()
            .expect("accounting armed")
            .uncharge_recv_buf(core, u64::from(charged));
        self.mem_note(tr);
    }

    /// Charges queued-but-unacked payload to the send account.
    fn mem_charge_send(&mut self, sock: SockId, bytes: u16) {
        if bytes == 0 || self.mem.is_none() {
            return;
        }
        let core = {
            let t = self.socks.get_mut(sock);
            t.mem_snd += u32::from(bytes);
            t.mem_core
        };
        let tr = self
            .mem
            .as_mut()
            .expect("accounting armed")
            .charge_send_buf(core, u64::from(bytes));
        self.mem_note(tr);
    }

    /// Uncharges `bytes` of acknowledged send payload.
    fn mem_uncharge_send(&mut self, sock: SockId, bytes: u64) {
        if bytes == 0 || self.mem.is_none() {
            return;
        }
        let core = {
            let t = self.socks.get_mut(sock);
            t.mem_snd -= bytes as u32;
            t.mem_core
        };
        let tr = self
            .mem
            .as_mut()
            .expect("accounting armed")
            .uncharge_send_buf(core, bytes);
        self.mem_note(tr);
    }

    /// Uncharges everything `sock` still holds (bucket, buffer bytes,
    /// orphan). Every socket release funnels through here (via
    /// `teardown` or `abort_embryonic`), so the ledger provably drains
    /// with the socket table.
    fn mem_uncharge_sock(&mut self, sock: SockId) {
        if self.mem.is_none() {
            return;
        }
        let (core, kind, rcv, snd, orphan) = {
            let t = self.socks.get_mut(sock);
            (
                t.mem_core,
                std::mem::take(&mut t.mem_charge),
                std::mem::take(&mut t.mem_rcv),
                std::mem::take(&mut t.mem_snd),
                std::mem::take(&mut t.mem_orphan),
            )
        };
        let mem = self.mem.as_mut().expect("accounting armed");
        let tr = match kind {
            MemCharge::None => None,
            MemCharge::Embryo => mem.uncharge_embryo(core),
            MemCharge::Tcb => mem.uncharge_tcb(core),
            MemCharge::TimeWait => mem.leave_time_wait(core),
        };
        self.mem_note(tr);
        if rcv > 0 {
            let tr = self
                .mem
                .as_mut()
                .expect("accounting armed")
                .uncharge_recv_buf(core, u64::from(rcv));
            self.mem_note(tr);
        }
        if snd > 0 {
            let tr = self
                .mem
                .as_mut()
                .expect("accounting armed")
                .uncharge_send_buf(core, u64::from(snd));
            self.mem_note(tr);
        }
        if orphan {
            self.mem
                .as_mut()
                .expect("accounting armed")
                .uncharge_orphan(core);
        }
    }

    /// Audits the ledger against the socket table: each live socket's
    /// tagged bucket and buffer bytes, scaled, must equal the accounts
    /// exactly (zero once the table drains). Returns a description of
    /// the divergence, or `None` when clean or accounting is off. The
    /// driver runs this at end of run under the strict-mode invariant
    /// `mem_account`.
    pub fn mem_imbalance(&self) -> Option<String> {
        let mem = self.mem.as_ref()?;
        let scale = u64::from(self.config.mem.map_or(1, |m| m.scale.max(1)));
        let (mut bytes, mut sockets, mut embryos, mut tw, mut orphans) = (0u64, 0, 0, 0, 0u64);
        for t in self.socks.iter() {
            match t.mem_charge {
                MemCharge::None => {}
                MemCharge::Embryo => {
                    embryos += 1;
                    bytes += sim_res::EMBRYO_BYTES;
                }
                MemCharge::Tcb => {
                    sockets += 1;
                    bytes += sim_res::TCB_BYTES;
                }
                MemCharge::TimeWait => {
                    tw += 1;
                    bytes += sim_res::TW_BYTES;
                }
            }
            bytes += u64::from(t.mem_rcv) + u64::from(t.mem_snd);
            if t.mem_orphan {
                orphans += 1;
            }
        }
        let table = (
            bytes * scale,
            sockets * scale,
            embryos * scale,
            tw * scale,
            orphans * scale,
        );
        let ledger = (
            mem.total_bytes(),
            mem.sockets(),
            mem.embryos(),
            mem.time_wait(),
            mem.orphans(),
        );
        if ledger == table {
            return None;
        }
        Some(format!(
            "memory ledger diverges from socket table: ledger \
             (bytes {}, socks {}, embryos {}, tw {}, orphans {}) vs \
             table ({}, {}, {}, {}, {})",
            ledger.0,
            ledger.1,
            ledger.2,
            ledger.3,
            ledger.4,
            table.0,
            table.1,
            table.2,
            table.3,
            table.4,
        ))
    }

    /// The `mem` report block: ledger peaks, reaction counters, and
    /// the conservation verdict. `None` when accounting is off.
    pub fn mem_report(&self) -> Option<sim_res::MemReport> {
        let mem = self.mem.as_ref()?;
        let mut r = sim_res::MemReport::from_accounts(mem, self.stats.mem.unwrap_or_default());
        r.balanced = self.mem_imbalance().is_none();
        Some(r)
    }

    /// The backed-off retransmission timeout after `attempts` RTO
    /// firings: doubles per retry, capped at
    /// `rto << config.rto_backoff_shift`.
    fn rto_after(&self, attempts: u8) -> Cycles {
        self.config.rto << attempts.min(self.config.rto_backoff_shift)
    }

    /// Retransmission timeout for `sock` (if still live and matching
    /// `gen`): returns the oldest unacknowledged segment to resend, or
    /// `None` when everything has been acknowledged. The caller should
    /// re-arm the timer when a segment is returned.
    pub fn on_rto(
        &mut self,
        ctx: &mut KernelCtx,
        os: &mut OsServices,
        sock: SockId,
        gen: u64,
    ) -> Option<Packet> {
        if !self.socks.exists(sock) || self.socks.get(sock).gen != gen {
            return None;
        }
        let core = self.socks.get(sock).app_core;
        let seg = self.socks.get(sock).unacked.front().copied()?;
        let attempts = {
            let t = self.socks.get_mut(sock);
            t.rtx_attempts += 1;
            t.rtx_attempts
        };
        let mut op = ctx.begin(core, 0);
        if attempts > MAX_RTX_ATTEMPTS {
            // Give up (as `tcp_retries2` does): the peer is gone.
            self.stats.rtx_abandoned += 1;
            if self.config.err_events {
                let mut tmp = RxOutcome::default();
                self.post_epoll(ctx, os, &mut op, sock, true, false, &mut tmp);
                self.pending_err_wakeups.extend(tmp.wakeups);
            }
            self.teardown(ctx, os, &mut op, sock);
            op.commit(&mut ctx.cpu);
            return None;
        }
        op.work(CycleClass::Timer, self.config.costs.tx_per_packet);
        if let Some(t) = self.socks.get(sock).rtx_timer {
            os.timers.modify(ctx, &mut op, t);
        }
        // Timeout is the congestion controller's strongest signal:
        // collapse cwnd and abandon any fast-recovery episode.
        let now = op.now();
        {
            let t = self.socks.get_mut(sock);
            let snd_nxt = t.snd_nxt;
            if let Some(dp) = t.dp.as_mut() {
                dp.cc.on_rto(dp.snd.inflight(snd_nxt), now);
                dp.snd.on_rto();
            }
        }
        op.commit(&mut ctx.cpu);
        self.stats.retransmits += 1;
        let delay = self.rto_after(attempts);
        self.pending_rto.push((sock, gen, delay));
        Some(seg)
    }

    /// Records `seg` as awaiting acknowledgment and requests an RTO arm
    /// for the socket.
    fn track_unacked(&mut self, sock: SockId, seg: Packet) {
        let gen = self.socks.get(sock).gen;
        let rto = self.config.rto;
        let t = self.socks.get_mut(sock);
        t.unacked.push_back(seg);
        self.pending_rto.push((sock, gen, rto));
        self.mem_charge_send(sock, seg.payload_len);
    }

    /// Like [`TcpStack::track_unacked`], but arms the RTO only on the
    /// empty→non-empty transition: a bulk transfer keeps many segments
    /// in flight and one armed expiry per flight suffices ([`on_rto`]
    /// re-arms while segments remain outstanding).
    ///
    /// [`on_rto`]: TcpStack::on_rto
    fn track_unacked_dp(&mut self, sock: SockId, seg: Packet) {
        let gen = self.socks.get(sock).gen;
        let rto = self.config.rto;
        let t = self.socks.get_mut(sock);
        if t.unacked.is_empty() {
            self.pending_rto.push((sock, gen, rto));
        }
        t.unacked.push_back(seg);
        self.mem_charge_send(sock, seg.payload_len);
    }

    /// Drops tracked segments fully acknowledged by `ack`; forward
    /// progress resets the retry counter.
    fn clear_acked(&mut self, sock: SockId, ack: u32) {
        let mut acked_payload = 0u64;
        let t = self.socks.get_mut(sock);
        while let Some(front) = t.unacked.front() {
            let end = front.seq.wrapping_add(front.seq_len());
            // Wrap-safe "end <= ack" via signed distance.
            if (ack.wrapping_sub(end) as i32) >= 0 {
                acked_payload += u64::from(front.payload_len);
                t.unacked.pop_front();
                t.rtx_attempts = 0;
            } else {
                break;
            }
        }
        self.mem_uncharge_send(sock, acked_payload);
    }

    /// Data-plane ACK processing: duplicate-ACK counting with
    /// dup-ACK-threshold fast retransmit, congestion-controller
    /// updates (including the ECN echo), NewReno partial-ACK
    /// retransmission during recovery, recovery exit on a full ACK,
    /// and transmission of whatever the freshly opened window now
    /// allows. Runs under the socket slock in the softirq half.
    fn dp_on_ack(&mut self, op: &mut Op, sock: SockId, pkt: &Packet, out: &mut RxOutcome) {
        let now = op.now();
        let mut fast_rtx: Option<Packet> = None;
        let mut ecn_echo = false;
        {
            let t = self.socks.get_mut(sock);
            let snd_nxt = t.snd_nxt;
            let front = t.unacked.front().copied();
            let Some(dp) = t.dp.as_mut() else { return };
            match dp.snd.on_ack(pkt.ack, snd_nxt, pkt.wnd) {
                AckKind::Old => {}
                AckKind::Dup { count } => {
                    if count == DUP_ACK_THRESHOLD && !dp.snd.in_recovery {
                        dp.cc.on_fast_retransmit(dp.snd.inflight(snd_nxt), now);
                        dp.snd.enter_recovery(snd_nxt);
                        fast_rtx = front;
                    }
                }
                AckKind::Advance { acked } => {
                    let marked = pkt.flags.ece();
                    ecn_echo = marked;
                    let una = dp.snd.una;
                    dp.cc.on_ack(&AckCtx {
                        acked,
                        marked,
                        now,
                        una,
                        snd_nxt,
                    });
                    if dp.snd.in_recovery {
                        if dp.snd.recovery_done() {
                            dp.snd.exit_recovery();
                            dp.cc.on_recovery_exit();
                        } else {
                            // NewReno partial ACK: the next hole starts
                            // at the new una (clear_acked already
                            // dropped what this ACK covered).
                            fast_rtx = front;
                        }
                    }
                }
            }
        }
        if ecn_echo {
            self.stats.dp_mut().ecn_echoes += 1;
        }
        if let Some(seg) = fast_rtx {
            self.stats.dp_mut().fast_retransmits += 1;
            self.transmit(op, seg, out);
        }
        self.push_segments(op, sock, out);
    }

    /// Segments and transmits as much queued data as the congestion
    /// and peer windows allow, charging GSO-amortized per-segment TX
    /// costs, then emits the deferred FIN once the queue drains. The
    /// caller holds the socket slock.
    fn push_segments(&mut self, op: &mut Op, sock: SockId, out: &mut RxOutcome) {
        let costs = self.config.costs;
        loop {
            let seg = {
                let t = self.socks.get_mut(sock);
                let (flow, snd_nxt, rcv_nxt) = (t.flow, t.snd_nxt, t.rcv_nxt);
                let Some(dp) = t.dp.as_mut() else { return };
                match dp.next_segment(snd_nxt) {
                    None => None,
                    Some((seg_len, idx)) => {
                        let cost = dp.batch.gso_cost(idx, costs.tx_per_packet);
                        let seg = Packet::new(flow, TcpFlags::PSH | TcpFlags::ACK)
                            .with_seq(snd_nxt)
                            .with_ack(rcv_nxt)
                            .with_payload(seg_len as u16)
                            .with_wnd(dp.rcv.advertised());
                        t.snd_nxt = snd_nxt.wrapping_add(seg_len);
                        Some((seg, cost))
                    }
                }
            };
            let Some((seg, cost)) = seg else { break };
            op.work(CycleClass::TxPath, cost);
            self.track_unacked_dp(sock, seg);
            self.stats.dp_mut().bytes_streamed += u64::from(seg.payload_len);
            out.replies.push(seg);
        }
        // Deferred FIN: close() ran while bytes were still queued; it
        // rides behind the final data segment.
        let fin = {
            let t = self.socks.get_mut(sock);
            let (flow, snd_nxt, rcv_nxt) = (t.flow, t.snd_nxt, t.rcv_nxt);
            let Some(dp) = t.dp.as_mut() else { return };
            if dp.snd.take_deferred_fin() {
                let fin = Packet::new(flow, TcpFlags::FIN | TcpFlags::ACK)
                    .with_seq(snd_nxt)
                    .with_ack(rcv_nxt)
                    .with_wnd(dp.rcv.advertised());
                t.snd_nxt = snd_nxt.wrapping_add(1);
                Some(fin)
            } else {
                None
            }
        };
        if let Some(fin) = fin {
            op.work(CycleClass::TxPath, costs.tx_per_packet);
            self.track_unacked_dp(sock, fin);
            out.replies.push(fin);
        }
    }

    /// Charges one user↔kernel transition (amortized under batching).
    fn syscall_entry(&self, op: &mut Op) {
        let full = self.config.costs.syscall_entry;
        let c = if self.config.syscall_batching && op.syscall_count() > 0 {
            full / 8
        } else {
            full
        };
        op.work(CycleClass::Syscall, c);
        op.count_syscall();
    }

    /// Payload copy cost (zero under the zero-copy option).
    fn copy_cost(&self, bytes: u32) -> Cycles {
        if self.config.zero_copy {
            0
        } else {
            self.config.costs.copy_cost(bytes)
        }
    }

    fn cookie_for(&self, lflow: &FlowTuple) -> u32 {
        (flow_hash(lflow) ^ self.cookie_secret) as u32
    }

    /// The active configuration.
    pub fn config(&self) -> &StackConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> StackStats {
        self.stats
    }

    /// Resets statistics (after warmup).
    pub fn reset_stats(&mut self) {
        self.stats = StackStats::default();
    }

    /// The RFD engine (port-to-core hash).
    pub fn rfd(&self) -> Rfd {
        self.rfd_engine
    }

    /// The listen table (for tests and fault injection).
    pub fn listen_table_mut(&mut self) -> &mut ListenTable {
        &mut self.listen_table
    }

    // ------------------------------------------------------------------
    // Setup syscalls
    // ------------------------------------------------------------------

    /// `socket()+bind()+listen()`: creates the global listen socket.
    pub fn listen(
        &mut self,
        ctx: &mut KernelCtx,
        op: &mut Op,
        port: u16,
        backlog: usize,
        core: CoreId,
    ) -> LsId {
        op.work(CycleClass::Syscall, self.config.costs.accept);
        self.listen_table
            .listen(ctx, &mut self.socks, port, backlog, core)
    }

    /// `SO_REUSEPORT` copy for the worker `pid` pinned to `core`.
    pub fn reuseport_listen(
        &mut self,
        ctx: &mut KernelCtx,
        op: &mut Op,
        port: u16,
        backlog: usize,
        pid: Pid,
        core: CoreId,
    ) -> LsId {
        op.work(CycleClass::Syscall, self.config.costs.accept);
        self.listen_table
            .add_reuseport_copy(ctx, &mut self.socks, port, backlog, pid, core)
    }

    /// Fastsocket `local_listen()` for the worker `pid` pinned to
    /// `core` (Figure 2, steps 1–2).
    pub fn local_listen(
        &mut self,
        ctx: &mut KernelCtx,
        op: &mut Op,
        port: u16,
        backlog: usize,
        pid: Pid,
        core: CoreId,
    ) -> LsId {
        op.work(CycleClass::Syscall, self.config.costs.accept);
        self.listen_table
            .local_listen(ctx, &mut self.socks, port, backlog, pid, core)
    }

    /// Registers `pid`'s epoll instance as a watcher of listen socket
    /// `ls` with the given `epoll_data` token.
    #[allow(clippy::too_many_arguments)]
    pub fn watch_listen(
        &mut self,
        ctx: &mut KernelCtx,
        os: &mut OsServices,
        op: &mut Op,
        ls: LsId,
        ep: EpollId,
        pid: Pid,
        data: u64,
    ) {
        os.epolls.ctl_add(ctx, op, ep);
        self.listen_table.ls_mut(ls).watchers.push((ep, pid, data));
        // ep_insert polls the fd at EPOLL_CTL_ADD time: a listen socket
        // whose accept queue is already backlogged goes straight onto
        // the epoll ready list. Without this, a worker registered
        // mid-run (crash restart) would wait for the next
        // empty→non-empty edge of the shared queue — which never comes
        // while the surviving workers keep it backlogged.
        if !self.listen_table.ls(ls).accept_queue.is_empty() {
            os.epolls.post(
                ctx,
                op,
                ep,
                EpollEvent {
                    data,
                    readable: true,
                    writable: false,
                },
            );
        }
    }

    /// Registers a connection socket in `ep` with token `data`.
    pub fn register_epoll(
        &mut self,
        ctx: &mut KernelCtx,
        os: &mut OsServices,
        op: &mut Op,
        sock: SockId,
        ep: EpollId,
        data: u64,
    ) {
        os.epolls.ctl_add(ctx, op, ep);
        let tcb = self.socks.get_mut(sock);
        tcb.epoll = Some(ep);
        tcb.epoll_data = data;
    }

    // ------------------------------------------------------------------
    // The NET_RX softirq half
    // ------------------------------------------------------------------

    /// Processes one received packet on `op.core()`. `already_steered`
    /// marks packets re-delivered by RFD so they are not steered (or
    /// counted) twice.
    pub fn net_rx(
        &mut self,
        ctx: &mut KernelCtx,
        os: &mut OsServices,
        op: &mut Op,
        pkt: &Packet,
        already_steered: bool,
    ) -> RxOutcome {
        let costs = self.config.costs;
        let core = op.core();
        let mut out = RxOutcome::default();

        if self.config.fault == FaultInjection::SilentHandoff
            && !self.fault_fired
            && self.config.cores >= 3
        {
            self.fault_fired = true;
            self.inject_silent_handoff(ctx, os, core, op.now());
        }

        // A steered packet must have landed on its connection's owning
        // core — the delivery guarantee the Local Established Table
        // depends on (§3.3).
        if self.config.rfd && already_steered {
            if let Some(owner) = self.rfd_engine.steer_target(pkt) {
                op.checker()
                    .lint(PartitionLint::RfdDelivery, core.0, owner.0);
            }
        }

        // Receive Flow Deliver hooks in early (netif_receive_skb),
        // before the expensive stack traversal: classify, count
        // locality, steer. A steered packet costs this core only the
        // classification + backlog enqueue.
        if self.config.rfd && !already_steered {
            op.trace_enter(TraceLabel::RfdSteer);
            let (class, by) = self
                .rfd_engine
                .classify(&pkt.flow, |p| self.listen_table.has_listener(p));
            match by {
                ClassifiedBy::Rule1 => self.stats.rfd_rule1 += 1,
                ClassifiedBy::Rule2 => self.stats.rfd_rule2 += 1,
                ClassifiedBy::Rule3 => self.stats.rfd_rule3 += 1,
            }
            if class == PacketClass::ActiveIncoming {
                let mut target = self.rfd_engine.steer_target(pkt);
                if self.config.fault == FaultInjection::MisSteer {
                    target = target.map(|c| CoreId((c.0 + 1) % self.config.cores));
                }
                self.stats.active_in_packets += 1;
                if target == Some(core) || target.is_none() {
                    self.stats.active_in_local += 1;
                } else {
                    // Steer to the owning core (§3.3): cheap enqueue on
                    // the remote backlog; the driver re-delivers.
                    self.stats.steered_packets += 1;
                    op.work(CycleClass::Steering, costs.steer);
                    out.steer = target;
                    op.trace_exit(TraceLabel::RfdSteer);
                    return out;
                }
            }
            op.trace_exit(TraceLabel::RfdSteer);
        }
        op.work(CycleClass::SoftirqBase, costs.softirq_per_packet);

        // Demultiplex: established table first.
        let lflow = pkt.flow.reversed();
        if let Some(sock) = self.est.lookup(ctx, op, core, &lflow, &costs) {
            // tcp_tw_reuse: a fresh SYN may recycle a TIME_WAIT socket
            // for the same tuple (clients cycling through their
            // ephemeral range hit this on busy servers).
            if pkt.flags.syn()
                && !pkt.flags.ack()
                && self.socks.get(sock).state == TcpState::TimeWait
            {
                self.stats.tw_reused += 1;
                self.teardown(ctx, os, op, sock);
                op.trace_enter(TraceLabel::Handshake);
                self.process_syn(ctx, os, op, &lflow, pkt, &mut out);
                op.trace_exit(TraceLabel::Handshake);
                return out;
            }
            if !self.config.rfd {
                // Locality accounting when RFD is off (Figure 5's
                // RSS-only and ATR-only rows).
                let tcb = self.socks.get(sock);
                if tcb.active {
                    self.stats.active_in_packets += 1;
                    if tcb.app_core == core {
                        self.stats.active_in_local += 1;
                    }
                }
            }
            self.process_established(ctx, os, op, sock, pkt, &mut out);
            return out;
        }

        // Not established: handshake traffic for a listen socket.
        if pkt.flags.syn() && !pkt.flags.ack() {
            op.trace_enter(TraceLabel::Handshake);
            self.process_syn(ctx, os, op, &lflow, pkt, &mut out);
            op.trace_exit(TraceLabel::Handshake);
        } else if pkt.flags.rst() {
            // RST for a connection not in the established table: it may
            // target an embryonic (SYN-queue) entry — clean that up so
            // aborted handshakes do not clog the backlog.
            self.abort_embryonic(ctx, op, &lflow);
            self.stats.no_match_drops += 1;
        } else {
            op.trace_enter(TraceLabel::Handshake);
            self.process_handshake_ack(ctx, os, op, &lflow, pkt, &mut out);
            op.trace_exit(TraceLabel::Handshake);
        }
        out
    }

    /// Fault: writes a fresh socket buffer on remote core `a`, then on
    /// remote core `b`, with no synchronization channel between the two
    /// ops. The first write is exclusive (lockset stays full) and the
    /// second holds `b`'s timer base lock (candidate set stays
    /// nonempty), so only the happens-before detector can see that
    /// nothing ordered the handoff.
    fn inject_silent_handoff(
        &mut self,
        ctx: &mut KernelCtx,
        os: &mut OsServices,
        core: CoreId,
        now: Cycles,
    ) {
        let a = CoreId((core.0 + 1) % self.config.cores);
        let b = CoreId((core.0 + 2) % self.config.cores);
        let obj = ctx.cache.alloc(sim_mem::ObjKind::SockBuf, a);
        let mut first = ctx.begin(a, now);
        first.touch_mut(ctx, obj);
        first.commit(&mut ctx.cpu);
        let mut second = ctx.begin(b, now);
        second.lock_do(&mut ctx.locks, os.timers.base_lock(b), CycleClass::Timer, 1);
        second.touch_mut(ctx, obj);
        second.commit(&mut ctx.cpu);
        ctx.cache.free(obj);
    }

    /// Fault: arms the first data-carrying connection as a victim, then
    /// — while a *different* connection is being processed, so the
    /// victim has no writes pending in the current op segment — a
    /// remote core takes the victim's socket lock and writes its
    /// buffer. The victim's owning core writes the buffer again soon
    /// after (it is an active connection), bouncing ownership back:
    /// `core-local → migrated → shared`, under a full lock discipline
    /// that keeps every other detector silent.
    fn inject_owner_ping_pong(
        &mut self,
        ctx: &mut KernelCtx,
        core: CoreId,
        now: Cycles,
        sock: SockId,
        payload: bool,
    ) {
        let Some((victim, gen)) = self.fault_victim else {
            if payload {
                self.fault_victim = Some((sock, self.socks.get(sock).gen));
            }
            return;
        };
        if victim == sock {
            return;
        }
        if !self.socks.exists(victim) || self.socks.get(victim).gen != gen {
            self.fault_victim = None; // victim recycled before the knob fired; re-arm
            return;
        }
        let t = self.socks.get(victim);
        let (lock, buf, app) = (t.lock, t.buf_obj, t.app_core);
        let mut thief_core = CoreId((app.0 + 1) % self.config.cores);
        if thief_core == core {
            thief_core = CoreId((app.0 + 2) % self.config.cores);
        }
        if thief_core == core || thief_core == app {
            return; // no usable third core right now; try again later
        }
        self.fault_fired = true;
        let mut thief = ctx.begin(thief_core, now);
        thief.lock_do(&mut ctx.locks, lock, CycleClass::TcbManage, 1);
        thief.touch_mut(ctx, buf);
        thief.commit(&mut ctx.cpu);
    }

    /// Segment processing for a socket found in the established table.
    fn process_established(
        &mut self,
        ctx: &mut KernelCtx,
        os: &mut OsServices,
        op: &mut Op,
        sock: SockId,
        pkt: &Packet,
        out: &mut RxOutcome,
    ) {
        let costs = self.config.costs;
        if self.config.fault == FaultInjection::OwnerPingPong
            && !self.fault_fired
            && self.config.cores >= 3
        {
            self.inject_owner_ping_pong(ctx, op.core(), op.now(), sock, pkt.payload_len > 0);
        }
        let (lock, obj, timer) = {
            let t = self.socks.get(sock);
            (t.lock, t.obj, t.rtx_timer)
        };
        if self.config.fault == FaultInjection::ReverseLockOrder {
            // Fault: take this core's base.lock before the socket
            // slock — the reverse of the re-arm path's order.
            let base = os.timers.base_lock(op.core());
            let inverted = op.lock_scope(&mut ctx.locks, base, CycleClass::Timer, 1);
            op.lock_do(&mut ctx.locks, lock, CycleClass::TcbManage, 1);
            op.unlock(inverted);
        }
        op.touch_mut(ctx, obj);
        // Everything up to the queue/timer/epoll work happens under the
        // socket lock, as tcp_v4_rcv does.
        let mut slock = if self.config.fault == FaultInjection::SkipSlock {
            // Fault: segment processing without lock_sock().
            op.work(CycleClass::TcbManage, costs.slock_hold_softirq);
            None
        } else {
            Some(op.lock_scope(
                &mut ctx.locks,
                lock,
                CycleClass::TcbManage,
                costs.slock_hold_softirq,
            ))
        };

        if pkt.flags.ack() {
            self.clear_acked(sock, pkt.ack);
            if self.socks.get(sock).dp.is_some() {
                self.dp_on_ack(op, sock, pkt, out);
            }
        }
        // Duplicate of an already-received segment (the peer, or we,
        // retransmitted under loss): re-ACK and drop.
        {
            let t = self.socks.get(sock);
            let is_dup = pkt.seq_len() > 0
                && t.state != TcpState::SynSent
                && (t.rcv_nxt.wrapping_sub(pkt.seq.wrapping_add(pkt.seq_len())) as i32) >= 0;
            if is_dup {
                self.stats.duplicate_segments += 1;
                let mut reply = Packet::new(t.flow, TcpFlags::ACK)
                    .with_seq(t.snd_nxt)
                    .with_ack(t.rcv_nxt);
                if let Some(dp) = t.dp.as_ref() {
                    reply = reply.with_wnd(dp.rcv.advertised());
                }
                self.transmit(op, reply, out);
                if let Some(held) = slock.take() {
                    op.unlock(held);
                }
                return;
            }
        }
        // Data-plane receive windows have no reassembly queue: a
        // segment past `rcv_nxt` (a loss upstream) or beyond the buffer
        // budget is dropped, and a duplicate ACK asks the sender to
        // resend from `rcv_nxt`.
        if pkt.seq_len() > 0 && self.socks.get(sock).dp.is_some() {
            let reply = {
                let t = self.socks.get_mut(sock);
                let (flow, snd_nxt, rcv_nxt) = (t.flow, t.snd_nxt, t.rcv_nxt);
                let dp = t.dp.as_mut().expect("checked above");
                let ooo = seq_gt(pkt.seq, rcv_nxt);
                let over = !ooo && pkt.payload_len > 0 && !dp.rcv.accept(pkt.payload_len);
                (ooo || over).then(|| {
                    Packet::new(flow, TcpFlags::ACK)
                        .with_seq(snd_nxt)
                        .with_ack(rcv_nxt)
                        .with_wnd(dp.rcv.advertised())
                })
            };
            if let Some(reply) = reply {
                self.stats.dp_mut().out_of_order_segments += 1;
                self.transmit(op, reply, out);
                if let Some(held) = slock.take() {
                    op.unlock(held);
                }
                return;
            }
        }
        let trans = {
            let t = self.socks.get_mut(sock);
            let seg_end = pkt.seq.wrapping_add(pkt.seq_len());
            if t.dp.is_some() {
                // Wrap-safe advance: bulk transfers cross the u32
                // boundary when the random ISN sits near it.
                if seq_gt(seg_end, t.rcv_nxt) {
                    t.rcv_nxt = seg_end;
                }
            } else {
                t.rcv_nxt = t.rcv_nxt.max(seg_end);
            }
            state::on_segment(t.state, pkt.flags, pkt.payload_len)
        };

        if trans.reset {
            let t = self.socks.get_mut(sock);
            let reply = Packet::new(t.flow, TcpFlags::RST).with_seq(t.snd_nxt);
            t.state = TcpState::Closed;
            self.stats.rst_sent += 1;
            op.work(CycleClass::Handshake, costs.rst);
            self.transmit(op, reply, out);
            if self.config.err_events {
                self.post_epoll(ctx, os, op, sock, true, false, out);
            }
            self.teardown(ctx, os, op, sock);
            out.closed.push(sock);
            if let Some(held) = slock.take() {
                op.unlock(held);
            }
            return;
        }

        // Per-packet timer maintenance (re-arm RTO).
        if let Some(mut t) = timer {
            if self.config.fault == FaultInjection::CrossCoreTimer {
                // Fault: re-arm on the next core's wheel.
                t.base_core = CoreId((op.core().0 + 1) % self.config.cores);
            }
            os.timers.modify(ctx, op, t);
        }

        let mut notify_readable = false;
        let mut notify_writable = false;

        if trans.established {
            let cc_cfg = self.config.cc;
            let t = self.socks.get_mut(sock);
            t.state = trans.next;
            if t.dp.is_none() {
                let snd_nxt = t.snd_nxt;
                t.dp = cc_cfg
                    .as_ref()
                    .map(|c| Box::new(DataPlane::new(c, snd_nxt)));
            }
            let flow = t.flow;
            if t.active {
                self.stats.active_established += 1;
            } else {
                self.stats.passive_established += 1;
            }
            op.trace_mark(flow_hash(&flow), TraceLabel::Established);
            op.work(CycleClass::Handshake, costs.ack_promotion / 2);
            notify_writable = true;
        } else {
            self.socks.get_mut(sock).state = trans.next;
        }

        if pkt.payload_len > 0 {
            let t = self.socks.get_mut(sock);
            t.rx_ready += u32::from(pkt.payload_len);
            let buf = t.buf_obj;
            let flow = t.flow;
            // GRO: an in-order train of data-plane segments amortizes
            // the per-segment receive cost.
            let seg_cost = match t.dp.as_mut() {
                Some(dp) => dp.gro_advance(costs.data_segment),
                None => costs.data_segment,
            };
            op.work(CycleClass::SoftirqBase, seg_cost);
            op.work(
                CycleClass::SoftirqBase,
                costs.copy_cost(u32::from(pkt.payload_len)),
            );
            op.touch_mut(ctx, buf);
            op.trace_mark(flow_hash(&flow), TraceLabel::FirstByte);
            notify_readable = true;
            self.mem_charge_recv(sock, pkt.payload_len);
        }

        if trans.peer_fin {
            let t = self.socks.get_mut(sock);
            t.peer_fin_seen = true;
            op.work(CycleClass::Handshake, costs.fin_processing);
            notify_readable = true;
        }

        if trans.send_ack {
            let mut reply = {
                let t = self.socks.get(sock);
                let mut reply = Packet::new(t.flow, TcpFlags::ACK)
                    .with_seq(t.snd_nxt)
                    .with_ack(t.rcv_nxt);
                if let Some(dp) = t.dp.as_ref() {
                    reply = reply.with_wnd(dp.rcv.advertised());
                }
                reply
            };
            if reply.wnd > 0 && self.mem_at_least(PressureLevel::Pressure) {
                // Pressure reaction: halve the advertised window so
                // senders back off before the budget is breached.
                reply.wnd /= 2;
                self.stats.mem_mut().window_clamps += 1;
            }
            self.transmit(op, reply, out);
        }

        if notify_readable || notify_writable {
            self.post_epoll(ctx, os, op, sock, notify_readable, notify_writable, out);
        }

        if trans.enter_time_wait {
            self.disarm_timer(ctx, os, op, sock);
            let forced = self
                .mem
                .as_ref()
                .is_some_and(sim_res::MemAccounts::tw_at_cap);
            self.mem_enter_tw(sock);
            if forced {
                // tcp_max_tw_buckets overflow: recycle the bucket on
                // the spot instead of holding it for 2*MSL ("TCP: time
                // wait bucket table overflow").
                self.stats.mem_mut().tw_forced_recycles += 1;
                self.teardown(ctx, os, op, sock);
                self.stats.closed += 1;
                out.closed.push(sock);
            } else {
                out.time_wait.push(sock);
            }
        } else if trans.next == TcpState::Closed {
            // A peer RST lands here. With error events armed, the owner
            // learns of the death through its epoll (EPOLLERR-style
            // readable event) instead of a silent teardown — `ctl_del`
            // leaves already-posted events on the ready list, so the
            // notification survives the teardown below.
            if self.config.err_events {
                self.post_epoll(ctx, os, op, sock, true, false, out);
            }
            self.teardown(ctx, os, op, sock);
            self.stats.closed += 1;
            out.closed.push(sock);
        }
        if let Some(held) = slock.take() {
            op.unlock(held);
        }
    }

    /// SYN processing: find a listen socket, create the embryonic
    /// connection, reply SYN-ACK (Figure 2, steps 3–5).
    fn process_syn(
        &mut self,
        ctx: &mut KernelCtx,
        os: &mut OsServices,
        op: &mut Op,
        lflow: &FlowTuple,
        pkt: &Packet,
        out: &mut RxOutcome,
    ) {
        let costs = self.config.costs;
        let core = op.core();
        let Some(ls_id) =
            self.listen_table
                .lookup(ctx, op, core, lflow, &self.socks, &costs, &mut self.stats)
        else {
            // No listener: refuse.
            let reply = Packet::new(*lflow, TcpFlags::RST).with_ack(pkt.seq.wrapping_add(1));
            self.stats.rst_sent += 1;
            self.stats.syn_refusals += 1;
            op.work(CycleClass::Handshake, costs.rst);
            self.transmit(op, reply, out);
            return;
        };

        if self.mem_at_least(PressureLevel::High) {
            // tcp_mem[2]: the hard budget is exhausted. Drop the SYN
            // outright (no cookie either — even a stateless reply
            // invites a handshake completion the budget cannot hold)
            // and prune the oldest embryo to claw memory back.
            self.stats.mem_mut().pressure_syn_drops += 1;
            self.prune_embryo(ctx, os, op, ls_id);
            return;
        }

        let (ls_sock, has_room) = {
            let ls = self.listen_table.ls(ls_id);
            (ls.sock, ls.has_room())
        };
        if !has_room {
            if self.config.syn_cookies {
                // Stateless SYN cookie: answer without consuming backlog
                // (the §1 security requirement — SYN floods must not
                // deny service). `tcp_conn_request` still runs under the
                // listener lock before the cookie decision, so a flood
                // hammers the *shared* listener lock on stock kernels
                // while Fastsocket's per-core listeners each absorb only
                // their slice of it.
                let ls_lock = self.socks.get(ls_sock).lock;
                let ls_obj = self.socks.get(ls_sock).obj;
                op.touch_mut(ctx, ls_obj);
                op.lock_do_nested(
                    &mut ctx.locks,
                    ls_lock,
                    CycleClass::Handshake,
                    costs.listen_hold_softirq / 2,
                    1,
                );
                let isn = self.cookie_for(lflow);
                let reply = Packet::new(*lflow, TcpFlags::SYN | TcpFlags::ACK)
                    .with_seq(isn)
                    .with_ack(pkt.seq.wrapping_add(1));
                self.stats.syn_cookies_sent += 1;
                op.trace_mark(flow_hash(lflow), TraceLabel::SynArrival);
                op.work(CycleClass::Handshake, costs.syn_processing / 2);
                self.transmit(op, reply, out);
            } else {
                self.stats.syn_drops += 1;
            }
            return;
        }

        if let Some(cap) = self.config.tcb_cap {
            // Memory pressure: refuse to allocate another embryo once
            // the socket slab is at the cap (admission control à la
            // `tcp_max_orphans`; the cookie path above stays available
            // because it allocates nothing).
            if self.socks.live_count() >= cap {
                self.stats.mem_pressure_drops += 1;
                return;
            }
        }

        op.trace_mark(flow_hash(lflow), TraceLabel::SynArrival);
        op.work(CycleClass::Handshake, costs.syn_processing);
        let isn = ctx.rng.next_u64() as u32;
        let child = self
            .socks
            .alloc(ctx, *lflow, TcpState::SynRcvd, false, core);
        {
            let t = self.socks.get_mut(child);
            t.snd_nxt = isn.wrapping_add(1);
            t.rcv_nxt = pkt.seq.wrapping_add(1);
        }

        // Queue manipulation under the listen socket's slock: on the
        // shared global socket this is the accept-path bottleneck.
        // Listen-socket slocks nest under connection slocks in the
        // real kernel (SINGLE_DEPTH_NESTING), hence subclass 1.
        let ls_lock = self.socks.get(ls_sock).lock;
        let ls_obj = self.socks.get(ls_sock).obj;
        op.touch_mut(ctx, ls_obj);
        op.lock_do_nested(
            &mut ctx.locks,
            ls_lock,
            CycleClass::Handshake,
            costs.listen_hold_softirq,
            1,
        );
        self.listen_table
            .ls_mut(ls_id)
            .syn_queue
            .insert(*lflow, child);
        self.socks.get_mut(child).syn_queued_in = Some(ls_id);
        self.mem_charge_embryo(child);

        let (rcv_nxt, snd_isn) = {
            let t = self.socks.get(child);
            (t.rcv_nxt, isn)
        };
        let reply = Packet::new(*lflow, TcpFlags::SYN | TcpFlags::ACK)
            .with_seq(snd_isn)
            .with_ack(rcv_nxt);
        self.track_unacked(child, reply);
        self.transmit(op, reply, out);
    }

    /// Prunes the oldest embryonic connection queued on listener
    /// `ls_id` (deterministically: minimum allocation generation),
    /// clawing memory back under `tcp_mem` high pressure.
    fn prune_embryo(&mut self, ctx: &mut KernelCtx, os: &mut OsServices, op: &mut Op, ls_id: LsId) {
        let victim = self
            .listen_table
            .ls(ls_id)
            .syn_queue
            .values()
            .copied()
            .min_by_key(|&s| self.socks.get(s).gen);
        if let Some(v) = victim {
            self.stats.mem_mut().embryos_pruned += 1;
            self.teardown(ctx, os, op, v);
        }
    }

    /// Third-ACK processing: promote an embryonic connection to
    /// established and queue it for `accept()` (Figure 2, steps 4–5).
    fn process_handshake_ack(
        &mut self,
        ctx: &mut KernelCtx,
        os: &mut OsServices,
        op: &mut Op,
        lflow: &FlowTuple,
        pkt: &Packet,
        out: &mut RxOutcome,
    ) {
        let costs = self.config.costs;
        let core = op.core();
        let found =
            self.listen_table
                .lookup(ctx, op, core, lflow, &self.socks, &costs, &mut self.stats);
        // SYN-queue removal and accept-queue insertion happen under one
        // hold of the listen socket's slock (as `tcp_v4_syn_recv_sock`
        // does); the lock is taken below, together with the queue push.
        let child = found.and_then(|ls_id| {
            self.listen_table
                .ls_mut(ls_id)
                .syn_queue
                .remove(lflow)
                .map(|c| (ls_id, c))
        });
        let Some((ls_id, child)) = child else {
            // Not in any SYN queue: it may complete a SYN-cookie
            // handshake (stateless — reconstruct the connection from
            // the cookie embedded in the acknowledgment number).
            if self.config.syn_cookies
                && pkt.flags.ack()
                && pkt.ack == self.cookie_for(lflow).wrapping_add(1)
            {
                if let Some(ls_id) = found {
                    self.stats.syn_cookies_ok += 1;
                    self.complete_cookie_handshake(ctx, os, op, ls_id, lflow, pkt, out);
                    return;
                }
            }
            // Unknown connection: reset (this is exactly what a naive
            // table partition without the global fallback would hit —
            // §2.1).
            if !pkt.flags.rst() {
                let t_reply = Packet::new(*lflow, TcpFlags::RST).with_seq(pkt.ack);
                self.stats.rst_sent += 1;
                op.work(CycleClass::Handshake, costs.rst);
                self.transmit(op, t_reply, out);
            }
            self.stats.no_match_drops += 1;
            return;
        };

        self.socks.get_mut(child).syn_queued_in = None;
        op.work(CycleClass::Handshake, costs.ack_promotion);
        if pkt.flags.ack() {
            // The handshake ACK acknowledges our SYN-ACK.
            self.clear_acked(child, pkt.ack);
        }
        let trans = {
            let t = self.socks.get_mut(child);
            let trans = state::on_segment(t.state, pkt.flags, pkt.payload_len);
            t.state = trans.next;
            t.rcv_nxt = t.rcv_nxt.max(pkt.seq.wrapping_add(pkt.seq_len()));
            trans
        };
        debug_assert!(trans.established, "3rd ACK must establish");
        self.stats.passive_established += 1;
        self.mem_promote(child);
        op.trace_mark(flow_hash(lflow), TraceLabel::Established);
        if pkt.payload_len > 0 {
            op.trace_mark(flow_hash(lflow), TraceLabel::FirstByte);
        }

        // Insert into the established table (home = current core under
        // the Local variant — RFD/RSS guarantee later packets arrive
        // here too).
        let home = self.est.insert(ctx, op, core, *lflow, child, &costs);
        {
            let cc_cfg = self.config.cc;
            let t = self.socks.get_mut(child);
            t.in_est = true;
            t.est_home = home;
            let snd_nxt = t.snd_nxt;
            t.dp = cc_cfg
                .as_ref()
                .map(|c| Box::new(DataPlane::new(c, snd_nxt)));
            if pkt.payload_len > 0 {
                t.rx_ready += u32::from(pkt.payload_len);
                if let Some(dp) = t.dp.as_mut() {
                    let _ = dp.rcv.accept(pkt.payload_len);
                }
            }
        }
        self.mem_charge_recv(child, pkt.payload_len);

        // Queue on the accept queue under the listen slock (held across
        // the watcher notification, as __inet_csk_reqsk_queue_add +
        // sk_data_ready run under the listener lock; subclass 1 because
        // listener slocks nest under connection slocks) and notify the
        // watchers on the empty→non-empty edge (epoll reports readiness
        // transitions; a queue that stays backlogged posts nothing new).
        let ls_sock = self.listen_table.ls(ls_id).sock;
        let ls_lock = self.socks.get(ls_sock).lock;
        let ls_obj = self.socks.get(ls_sock).obj;
        op.touch_mut(ctx, ls_obj);
        let held = op.lock_scope_nested(
            &mut ctx.locks,
            ls_lock,
            CycleClass::Handshake,
            costs.listen_hold_softirq,
            1,
        );
        let was_empty = self.listen_table.ls(ls_id).accept_queue.is_empty();
        self.listen_table
            .ls_mut(ls_id)
            .accept_queue
            .push_back(child);
        self.socks.get_mut(child).queued_in = Some(ls_id);

        if was_empty {
            self.notify_accept_watchers(ctx, os, op, ls_id, out);
        }
        op.unlock(held);
    }

    /// Posts readiness to every epoll watching `ls_id`, rotating the
    /// starting point pseudo-randomly on the base kernel's shared
    /// accept queue. A real kernel's wait queue order depends on
    /// accumulated sleep/wake history; iterating the watcher list
    /// deterministically from index 0 instead pins one worker as the
    /// permanent hot core of the shared accept queue and overstates the
    /// base kernel's worst-core load (Figure 3's whiskers). The
    /// Fastsocket global fallback keeps the deterministic order: its
    /// queue only sees mis-steered connections, and the robustness
    /// guarantee asserted in `stack_lifecycle.rs` is about *who* drains
    /// it, not fairness.
    fn notify_accept_watchers(
        &mut self,
        ctx: &mut KernelCtx,
        os: &mut OsServices,
        op: &mut Op,
        ls_id: LsId,
        out: &mut RxOutcome,
    ) {
        let watchers: Vec<(EpollId, Pid, u64)> = self.listen_table.ls(ls_id).watchers.clone();
        let n = watchers.len();
        if n == 0 {
            return;
        }
        let start = if n > 1 && self.listen_table.variant() == ListenVariant::Global {
            (ctx.rng.next_u64() % n as u64) as usize
        } else {
            0
        };
        for k in 0..n {
            let (ep, pid, data) = watchers[(start + k) % n];
            let woke = os.epolls.post(
                ctx,
                op,
                ep,
                EpollEvent {
                    data,
                    readable: true,
                    writable: false,
                },
            );
            if woke {
                out.wakeups.push(pid);
            }
        }
    }

    /// Whether `accept()` on `port` from `core` would find a ready
    /// connection (level-triggered readiness probe for applications).
    pub fn accept_ready(&self, port: u16, core: CoreId) -> bool {
        let global_ready = !self
            .listen_table
            .ls(self.listen_table.global_of(port))
            .accept_queue
            .is_empty();
        match self.config.listen {
            ListenVariant::Global => global_ready,
            ListenVariant::ReusePort => self
                .listen_table
                .copy_of(port, core)
                .is_some_and(|ls| !self.listen_table.ls(ls).accept_queue.is_empty()),
            ListenVariant::Local => {
                global_ready
                    || self
                        .listen_table
                        .local_of(port, core)
                        .is_some_and(|ls| !self.listen_table.ls(ls).accept_queue.is_empty())
            }
        }
    }

    /// A worker process died mid-run (fault injection): destroys its
    /// per-process listen socket and disposes of the stranded
    /// connections per the listen variant — the behavioral contrast at
    /// the heart of §2.1:
    ///
    /// * `Local` (Fastsocket): stranded embryos and un-accepted
    ///   connections migrate to the global fallback socket, so the
    ///   surviving workers drain them through Figure 2's slow path;
    ///   no client sees a reset.
    /// * `ReusePort`: the dead copy's queues cannot be re-attached —
    ///   every stranded connection is reset and torn down.
    /// * `Global`: the shared listen socket survives; only the dead
    ///   worker's epoll registration goes away.
    pub fn on_worker_crash(
        &mut self,
        ctx: &mut KernelCtx,
        os: &mut OsServices,
        op: &mut Op,
        port: u16,
        core: CoreId,
        pid: Pid,
    ) -> RxOutcome {
        let mut out = RxOutcome::default();
        // The kernel tears the dead process's epoll registrations on
        // *surviving* listen sockets down with its file table.
        let global = self.listen_table.global_of(port);
        self.listen_table
            .ls_mut(global)
            .watchers
            .retain(|&(_, p, _)| p != pid);
        let dead = self.listen_table.destroy_process_socket(port, core);
        if dead.is_empty() {
            return out;
        }
        match self.config.listen {
            ListenVariant::Local => {
                let was_empty = self.listen_table.ls(global).accept_queue.is_empty();
                for &(flow, sock) in &dead.embryos {
                    self.listen_table
                        .ls_mut(global)
                        .syn_queue
                        .insert(flow, sock);
                    self.socks.get_mut(sock).syn_queued_in = Some(global);
                }
                for &sock in &dead.accepted {
                    self.listen_table
                        .ls_mut(global)
                        .accept_queue
                        .push_back(sock);
                    self.socks.get_mut(sock).queued_in = Some(global);
                }
                if was_empty && !dead.accepted.is_empty() {
                    self.notify_accept_watchers(ctx, os, op, global, &mut out);
                }
            }
            ListenVariant::ReusePort | ListenVariant::Global => {
                for &(_, sock) in &dead.embryos {
                    // The dead queue entry is already drained.
                    self.socks.get_mut(sock).syn_queued_in = None;
                    self.reset_stranded(ctx, os, op, sock, &mut out);
                }
                for &sock in &dead.accepted {
                    self.socks.get_mut(sock).queued_in = None;
                    self.reset_stranded(ctx, os, op, sock, &mut out);
                }
            }
        }
        out
    }

    /// Resets and frees one connection stranded by a worker crash.
    fn reset_stranded(
        &mut self,
        ctx: &mut KernelCtx,
        os: &mut OsServices,
        op: &mut Op,
        sock: SockId,
        out: &mut RxOutcome,
    ) {
        let (flow, snd_nxt) = {
            let t = self.socks.get(sock);
            (t.flow, t.snd_nxt)
        };
        let rst = Packet::new(flow, TcpFlags::RST).with_seq(snd_nxt);
        self.stats.rst_sent += 1;
        op.work(CycleClass::Handshake, self.config.costs.rst);
        self.transmit(op, rst, out);
        self.teardown(ctx, os, op, sock);
    }

    // ------------------------------------------------------------------
    // The process half (syscalls)
    // ------------------------------------------------------------------

    /// `accept()`: takes one ready connection for the worker `pid`
    /// pinned to `core`. Implements Figure 2's ordering: the global
    /// listen socket's accept queue is checked first (a lock-free read;
    /// checking local first would starve slow-path connections), then
    /// the core-appropriate queue.
    pub fn accept(
        &mut self,
        ctx: &mut KernelCtx,
        os: &mut OsServices,
        op: &mut Op,
        port: u16,
        core: CoreId,
        pid: Pid,
    ) -> Option<(SockId, AcceptSource)> {
        let costs = self.config.costs;
        self.syscall_entry(op);
        op.work(CycleClass::Syscall, costs.accept);

        let (child, source) = match self.config.listen {
            ListenVariant::Global => {
                let ls_id = self.listen_table.global_of(port);
                let ls_sock = self.listen_table.ls(ls_id).sock;
                let ls_lock = self.socks.get(ls_sock).lock;
                let ls_obj = self.socks.get(ls_sock).obj;
                op.touch_mut(ctx, ls_obj);
                op.lock_do_nested(
                    &mut ctx.locks,
                    ls_lock,
                    CycleClass::Syscall,
                    costs.listen_hold_accept,
                    1,
                );
                (
                    self.listen_table.ls_mut(ls_id).accept_queue.pop_front(),
                    AcceptSource::Local,
                )
            }
            ListenVariant::ReusePort => {
                let ls_id = self.listen_table.copy_of(port, core)?;
                let ls_sock = self.listen_table.ls(ls_id).sock;
                let ls_lock = self.socks.get(ls_sock).lock;
                let ls_obj = self.socks.get(ls_sock).obj;
                op.touch_mut(ctx, ls_obj);
                op.lock_do_nested(
                    &mut ctx.locks,
                    ls_lock,
                    CycleClass::Syscall,
                    costs.listen_hold_accept,
                    1,
                );
                (
                    self.listen_table.ls_mut(ls_id).accept_queue.pop_front(),
                    AcceptSource::Local,
                )
            }
            ListenVariant::Local => {
                // Check the global queue first — a single atomic read
                // when it is empty (the common case). (The ablation
                // flag reverses the order to demonstrate starvation.)
                let global = self.listen_table.global_of(port);
                op.work(CycleClass::Syscall, 25);
                let local_first = self.config.accept_local_first
                    && self
                        .listen_table
                        .local_of(port, core)
                        .is_some_and(|l| !self.listen_table.ls(l).accept_queue.is_empty());
                let lookup_core = if self.config.fault == FaultInjection::CrossCoreAccept {
                    // Fault: pop from the next core's local table.
                    CoreId((core.0 + 1) % self.config.cores)
                } else {
                    core
                };
                if !local_first && !self.listen_table.ls(global).accept_queue.is_empty() {
                    let ls_sock = self.listen_table.ls(global).sock;
                    let ls_lock = self.socks.get(ls_sock).lock;
                    let ls_obj = self.socks.get(ls_sock).obj;
                    op.touch_mut(ctx, ls_obj);
                    op.lock_do_nested(
                        &mut ctx.locks,
                        ls_lock,
                        CycleClass::Syscall,
                        costs.listen_hold_accept,
                        1,
                    );
                    (
                        self.listen_table.ls_mut(global).accept_queue.pop_front(),
                        AcceptSource::Global,
                    )
                } else if let Some(local) = self.listen_table.local_of(port, lookup_core) {
                    let ls = self.listen_table.ls(local);
                    if let Some(owner) = ls.core {
                        // A local listen table entry belongs to exactly
                        // one core (§3.2.1).
                        op.checker()
                            .lint(PartitionLint::LocalListen, core.0, owner.0);
                    }
                    let ls_sock = ls.sock;
                    let ls_lock = self.socks.get(ls_sock).lock;
                    let ls_obj = self.socks.get(ls_sock).obj;
                    op.touch_mut(ctx, ls_obj);
                    op.lock_do_nested(
                        &mut ctx.locks,
                        ls_lock,
                        CycleClass::Syscall,
                        costs.listen_hold_accept,
                        1,
                    );
                    (
                        self.listen_table.ls_mut(local).accept_queue.pop_front(),
                        AcceptSource::Local,
                    )
                } else {
                    (None, AcceptSource::Local)
                }
            }
        };

        let child = child?;
        match source {
            AcceptSource::Local => self.stats.accepts_local += 1,
            AcceptSource::Global => self.stats.accepts_global += 1,
        }

        // The accepting process owns the connection now.
        let obj = {
            let t = self.socks.get_mut(child);
            t.queued_in = None;
            t.owner = Some(pid);
            t.app_core = core;
            t.obj
        };
        op.touch_mut(ctx, obj);
        // VFS socket-FD materialization + descriptor allocation.
        let node = os.vfs.alloc_socket(ctx, op, core);
        self.socks.get_mut(child).vfs = Some(node);
        op.work(CycleClass::Syscall, costs.fd_alloc);
        Some((child, source))
    }

    /// `connect()`: opens an active connection from `core` to
    /// `(dst_ip, dst_port)`. Returns the socket and the SYN to send.
    /// `None` when the ephemeral range is exhausted.
    #[allow(clippy::too_many_arguments)]
    pub fn connect(
        &mut self,
        ctx: &mut KernelCtx,
        os: &mut OsServices,
        op: &mut Op,
        core: CoreId,
        pid: Pid,
        src_ip: std::net::Ipv4Addr,
        dst_ip: std::net::Ipv4Addr,
        dst_port: u16,
    ) -> Option<(SockId, Packet)> {
        let costs = self.config.costs;
        self.syscall_entry(op);
        op.work(CycleClass::Syscall, costs.connect);
        let port = self.ports.alloc(ctx, op, core, dst_ip, dst_port, &costs)?;
        let flow = FlowTuple::new(src_ip, port, dst_ip, dst_port);
        let isn = ctx.rng.next_u64() as u32;
        let sock = self.socks.alloc(ctx, flow, TcpState::SynSent, true, core);
        {
            let t = self.socks.get_mut(sock);
            t.owner = Some(pid);
            t.snd_nxt = isn.wrapping_add(1);
        }
        self.mem_charge_tcb(sock);
        let node = os.vfs.alloc_socket(ctx, op, core);
        self.socks.get_mut(sock).vfs = Some(node);
        op.work(CycleClass::Syscall, costs.fd_alloc);

        let home = self.est.insert(ctx, op, core, flow, sock, &costs);
        {
            let t = self.socks.get_mut(sock);
            t.in_est = true;
            t.est_home = home;
        }
        let timer = os.timers.arm(ctx, op);
        self.socks.get_mut(sock).rtx_timer = Some(timer);

        let syn = Packet::new(flow, TcpFlags::SYN).with_seq(isn);
        self.track_unacked(sock, syn);
        let mut dummy = RxOutcome::default();
        self.transmit(op, syn, &mut dummy);
        Some((sock, dummy.replies.pop().unwrap()))
    }

    /// `write()`: sends `bytes` of payload on an established socket.
    /// Returns the data segment, or `None` if the state forbids
    /// sending.
    pub fn send(
        &mut self,
        ctx: &mut KernelCtx,
        os: &mut OsServices,
        op: &mut Op,
        sock: SockId,
        bytes: u16,
    ) -> Option<Packet> {
        let costs = self.config.costs;
        let (lock, buf, can, timer) = {
            let t = self.socks.get(sock);
            (t.lock, t.buf_obj, t.state.can_send(), t.rtx_timer)
        };
        if !can {
            return None;
        }
        self.syscall_entry(op);
        op.work(CycleClass::Syscall, costs.send);
        op.work(CycleClass::Syscall, self.copy_cost(u32::from(bytes)));
        op.touch_mut(ctx, buf);
        // The slock covers buffer queueing and RTO re-arm, as
        // tcp_sendmsg under lock_sock() does.
        let held = op.lock_scope(
            &mut ctx.locks,
            lock,
            CycleClass::TcbManage,
            costs.slock_hold_app,
        );
        match timer {
            Some(t) => os.timers.modify(ctx, op, t),
            None => {
                let t = os.timers.arm(ctx, op);
                self.socks.get_mut(sock).rtx_timer = Some(t);
            }
        }
        op.unlock(held);
        let t = self.socks.get_mut(sock);
        let seg = Packet::new(t.flow, TcpFlags::PSH | TcpFlags::ACK)
            .with_seq(t.snd_nxt)
            .with_ack(t.rcv_nxt)
            .with_payload(bytes);
        t.snd_nxt = t.snd_nxt.wrapping_add(u32::from(bytes));
        self.track_unacked(sock, seg);
        let mut dummy = RxOutcome::default();
        self.transmit(op, seg, &mut dummy);
        Some(dummy.replies.pop().unwrap())
    }

    /// `write()` for bulk responses: queues `bytes` on the send window
    /// and transmits as many MSS segments as the congestion and peer
    /// windows currently allow (GSO-amortized). Returns the segments
    /// to put on the wire; the rest follow from the softirq half as
    /// ACKs open the window. Falls back to one plain
    /// [`TcpStack::send`] segment when the data plane is disabled.
    pub fn send_bulk(
        &mut self,
        ctx: &mut KernelCtx,
        os: &mut OsServices,
        op: &mut Op,
        sock: SockId,
        bytes: u32,
    ) -> Vec<Packet> {
        if self.socks.get(sock).dp.is_none() {
            return self
                .send(ctx, os, op, sock, bytes.min(u32::from(u16::MAX)) as u16)
                .into_iter()
                .collect();
        }
        let costs = self.config.costs;
        let (lock, buf, can, timer) = {
            let t = self.socks.get(sock);
            (t.lock, t.buf_obj, t.state.can_send(), t.rtx_timer)
        };
        if !can || bytes == 0 {
            return Vec::new();
        }
        self.syscall_entry(op);
        op.work(CycleClass::Syscall, costs.send);
        op.work(CycleClass::Syscall, self.copy_cost(bytes));
        op.touch_mut(ctx, buf);
        // The slock covers window queueing, segmentation and the RTO
        // arm, as tcp_sendmsg under lock_sock() does.
        let held = op.lock_scope(
            &mut ctx.locks,
            lock,
            CycleClass::TcbManage,
            costs.slock_hold_app,
        );
        match timer {
            Some(t) => os.timers.modify(ctx, op, t),
            None => {
                let t = os.timers.arm(ctx, op);
                self.socks.get_mut(sock).rtx_timer = Some(t);
            }
        }
        if let Some(dp) = self.socks.get_mut(sock).dp.as_mut() {
            dp.snd.queue(u64::from(bytes));
        }
        let mut out = RxOutcome::default();
        self.push_segments(op, sock, &mut out);
        op.unlock(held);
        out.replies
    }

    /// `read()`: drains the receive queue, returning the bytes read
    /// and — under the data plane — a window-update ACK when the drain
    /// reopens a mostly-closed advertised window.
    pub fn recv(
        &mut self,
        ctx: &mut KernelCtx,
        op: &mut Op,
        sock: SockId,
    ) -> (u32, Option<Packet>) {
        let costs = self.config.costs;
        let (lock, buf) = {
            let t = self.socks.get(sock);
            (t.lock, t.buf_obj)
        };
        self.syscall_entry(op);
        op.work(CycleClass::Syscall, costs.recv);
        op.touch_mut(ctx, buf);
        op.lock_do(
            &mut ctx.locks,
            lock,
            CycleClass::TcbManage,
            costs.slock_hold_app,
        );
        let t = self.socks.get_mut(sock);
        let bytes = std::mem::take(&mut t.rx_ready);
        let (flow, snd_nxt, rcv_nxt) = (t.flow, t.snd_nxt, t.rcv_nxt);
        let mut update = None;
        if let Some(dp) = t.dp.as_mut() {
            let before = dp.rcv.advertised();
            dp.rcv.drain(bytes);
            let after = dp.rcv.advertised();
            // Only bother the wire when the window was mostly closed
            // (the half-budget heuristic real stacks use to suppress
            // silly-window updates).
            if after > before && u32::from(before) < dp.rcv.budget / 2 {
                update = Some(
                    Packet::new(flow, TcpFlags::ACK)
                        .with_seq(snd_nxt)
                        .with_ack(rcv_nxt)
                        .with_wnd(after),
                );
            }
        }
        self.mem_drain_recv(sock);
        op.work(CycleClass::Syscall, self.copy_cost(bytes));
        if update.is_some() {
            op.work(CycleClass::TxPath, costs.tx_per_packet);
        }
        (bytes, update)
    }

    /// `close()`: releases the FD-side resources and initiates the TCP
    /// teardown. Returns the FIN to send, if one is needed.
    pub fn close(
        &mut self,
        ctx: &mut KernelCtx,
        os: &mut OsServices,
        op: &mut Op,
        sock: SockId,
    ) -> Option<Packet> {
        let costs = self.config.costs;
        self.syscall_entry(op);
        op.work(CycleClass::Syscall, costs.close);
        let lock = self.socks.get(sock).lock;
        op.lock_do(
            &mut ctx.locks,
            lock,
            CycleClass::TcbManage,
            costs.slock_hold_app,
        );

        // FD-side teardown happens immediately (VFS + epoll).
        if let Some(node) = self.socks.get_mut(sock).vfs.take() {
            os.vfs.free_socket(ctx, op, node);
        }
        if let Some(ep) = self.socks.get_mut(sock).epoll.take() {
            os.epolls.ctl_del(ctx, op, ep);
        }

        let state = self.socks.get(sock).state;
        match state::on_close(state) {
            Some((next, send_fin)) => {
                self.socks.get_mut(sock).state = next;
                if send_fin && self.mem.is_some() {
                    if self
                        .mem
                        .as_ref()
                        .is_some_and(sim_res::MemAccounts::orphans_at_cap)
                    {
                        // tcp_max_orphans analogue: too many fd-less
                        // sockets already in teardown — abort with a
                        // RST instead of lingering through FIN states.
                        self.stats.mem_mut().orphans_killed += 1;
                        let rst = {
                            let t = self.socks.get(sock);
                            Packet::new(t.flow, TcpFlags::RST | TcpFlags::ACK)
                                .with_seq(t.snd_nxt)
                                .with_ack(t.rcv_nxt)
                        };
                        self.stats.rst_sent += 1;
                        self.teardown(ctx, os, op, sock);
                        self.stats.closed += 1;
                        let mut dummy = RxOutcome::default();
                        self.transmit(op, rst, &mut dummy);
                        return dummy.replies.pop();
                    }
                    let core = {
                        let t = self.socks.get_mut(sock);
                        t.mem_orphan = true;
                        t.mem_core
                    };
                    if let Some(m) = self.mem.as_mut() {
                        m.charge_orphan(core);
                    }
                }
                // Data plane: bytes still queued for segmentation mean
                // the FIN must ride behind them — push_segments emits
                // it once the window lets the queue drain.
                let defer_fin = send_fin && {
                    let t = self.socks.get_mut(sock);
                    match t.dp.as_mut() {
                        Some(dp) if dp.snd.pending > 0 => {
                            dp.snd.defer_fin();
                            true
                        }
                        _ => false,
                    }
                };
                if defer_fin {
                    None
                } else if send_fin {
                    let (timer,) = { (self.socks.get(sock).rtx_timer,) };
                    match timer {
                        Some(t) => os.timers.modify(ctx, op, t),
                        None => {
                            let t = os.timers.arm(ctx, op);
                            self.socks.get_mut(sock).rtx_timer = Some(t);
                        }
                    }
                    let t = self.socks.get_mut(sock);
                    let mut fin = Packet::new(t.flow, TcpFlags::FIN | TcpFlags::ACK)
                        .with_seq(t.snd_nxt)
                        .with_ack(t.rcv_nxt);
                    if let Some(dp) = t.dp.as_ref() {
                        fin = fin.with_wnd(dp.rcv.advertised());
                    }
                    t.snd_nxt = t.snd_nxt.wrapping_add(1);
                    self.track_unacked(sock, fin);
                    let mut dummy = RxOutcome::default();
                    self.transmit(op, fin, &mut dummy);
                    Some(dummy.replies.pop().unwrap())
                } else {
                    // e.g. closing a SYN_SENT socket: vanish quietly.
                    self.teardown(ctx, os, op, sock);
                    None
                }
            }
            None => None,
        }
    }

    /// Removes an aborted embryonic connection from its listen socket's
    /// SYN queue, if present.
    fn abort_embryonic(&mut self, ctx: &mut KernelCtx, op: &mut Op, lflow: &FlowTuple) {
        let costs = self.config.costs;
        let core = op.core();
        let Some(ls_id) =
            self.listen_table
                .lookup(ctx, op, core, lflow, &self.socks, &costs, &mut self.stats)
        else {
            return;
        };
        if let Some(child) = self.listen_table.ls_mut(ls_id).syn_queue.remove(lflow) {
            self.mem_uncharge_sock(child);
            self.socks.release(ctx, child);
            op.trace_mark(flow_hash(lflow), TraceLabel::Closed);
        }
    }

    /// The generation token of a socket (pass back to
    /// [`TcpStack::tw_expire`] so a deferred expiry cannot recycle an
    /// unrelated reuse of the slab slot).
    pub fn sock_gen(&self, sock: SockId) -> u64 {
        self.socks.get(sock).gen
    }

    /// TIME_WAIT expiry (driven by the simulation's timer events):
    /// recycles the socket. `gen` must match the token captured when
    /// the socket entered TIME_WAIT.
    pub fn tw_expire(&mut self, ctx: &mut KernelCtx, os: &mut OsServices, sock: SockId, gen: u64) {
        if !self.socks.exists(sock) || self.socks.get(sock).gen != gen {
            return;
        }
        if self.socks.get(sock).state != TcpState::TimeWait {
            return;
        }
        let core = self.socks.get(sock).app_core;
        let mut op = ctx.begin(core, 0);
        op.work(CycleClass::Timer, 300);
        self.teardown(ctx, os, &mut op, sock);
        self.stats.closed += 1;
        op.commit(&mut ctx.cpu);
    }

    /// Completes a stateless SYN-cookie handshake: creates the socket
    /// directly in ESTABLISHED (there was never a SYN-queue entry) and
    /// queues it for `accept()`.
    #[allow(clippy::too_many_arguments)]
    fn complete_cookie_handshake(
        &mut self,
        ctx: &mut KernelCtx,
        os: &mut OsServices,
        op: &mut Op,
        ls_id: LsId,
        lflow: &FlowTuple,
        pkt: &Packet,
        out: &mut RxOutcome,
    ) {
        let costs = self.config.costs;
        let core = op.core();
        op.work(CycleClass::Handshake, costs.ack_promotion);
        let child = self
            .socks
            .alloc(ctx, *lflow, TcpState::Established, false, core);
        {
            let cc_cfg = self.config.cc;
            let t = self.socks.get_mut(child);
            t.snd_nxt = pkt.ack;
            t.rcv_nxt = pkt.seq.wrapping_add(pkt.seq_len());
            t.dp = cc_cfg
                .as_ref()
                .map(|c| Box::new(DataPlane::new(c, pkt.ack)));
            if pkt.payload_len > 0 {
                t.rx_ready += u32::from(pkt.payload_len);
                if let Some(dp) = t.dp.as_mut() {
                    let _ = dp.rcv.accept(pkt.payload_len);
                }
            }
        }
        self.mem_charge_tcb(child);
        self.mem_charge_recv(child, pkt.payload_len);
        self.stats.passive_established += 1;
        op.trace_mark(flow_hash(lflow), TraceLabel::SynArrival);
        op.trace_mark(flow_hash(lflow), TraceLabel::Established);
        if pkt.payload_len > 0 {
            op.trace_mark(flow_hash(lflow), TraceLabel::FirstByte);
        }
        let home = self.est.insert(ctx, op, core, *lflow, child, &costs);
        {
            let t = self.socks.get_mut(child);
            t.in_est = true;
            t.est_home = home;
        }
        let ls_sock = self.listen_table.ls(ls_id).sock;
        let ls_lock = self.socks.get(ls_sock).lock;
        let ls_obj = self.socks.get(ls_sock).obj;
        op.touch_mut(ctx, ls_obj);
        let held = op.lock_scope_nested(
            &mut ctx.locks,
            ls_lock,
            CycleClass::Handshake,
            costs.listen_hold_softirq,
            1,
        );
        let was_empty = self.listen_table.ls(ls_id).accept_queue.is_empty();
        self.listen_table
            .ls_mut(ls_id)
            .accept_queue
            .push_back(child);
        self.socks.get_mut(child).queued_in = Some(ls_id);
        if was_empty {
            self.notify_accept_watchers(ctx, os, op, ls_id, out);
        }
        op.unlock(held);
    }

    /// Full resource teardown of a socket: established-table removal,
    /// port release, timers, VFS leftovers, TCB free.
    fn teardown(&mut self, ctx: &mut KernelCtx, os: &mut OsServices, op: &mut Op, sock: SockId) {
        self.mem_uncharge_sock(sock);
        let costs = self.config.costs;
        let (in_est, est_home, flow, active, queued_in, syn_queued_in) = {
            let t = self.socks.get(sock);
            (
                t.in_est,
                t.est_home,
                t.flow,
                t.active,
                t.queued_in,
                t.syn_queued_in,
            )
        };
        if let Some(ls_id) = queued_in {
            // The connection dies while waiting in an accept queue
            // (e.g. the client reset it): unlink it.
            self.listen_table
                .ls_mut(ls_id)
                .accept_queue
                .retain(|&s| s != sock);
        }
        if let Some(ls_id) = syn_queued_in {
            // The embryo dies mid-handshake (e.g. SYN-ACK retries
            // exhausted): unlink its SYN-queue entry so a late
            // handshake ACK cannot resolve to a freed socket.
            self.listen_table.ls_mut(ls_id).syn_queue.remove(&flow);
        }
        if in_est {
            self.est.remove(ctx, op, est_home, &flow, &costs);
        }
        if active {
            self.ports
                .release(flow.dst_ip, flow.dst_port, flow.src_port);
        }
        self.disarm_timer(ctx, os, op, sock);
        if let Some(node) = self.socks.get_mut(sock).vfs.take() {
            os.vfs.free_socket(ctx, op, node);
        }
        if let Some(ep) = self.socks.get_mut(sock).epoll.take() {
            os.epolls.ctl_del(ctx, op, ep);
        }
        self.socks.release(ctx, sock);
        op.trace_mark(flow_hash(&flow), TraceLabel::Closed);
    }

    fn disarm_timer(
        &mut self,
        ctx: &mut KernelCtx,
        os: &mut OsServices,
        op: &mut Op,
        sock: SockId,
    ) {
        if let Some(t) = self.socks.get_mut(sock).rtx_timer.take() {
            os.timers.disarm(ctx, op, t);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn post_epoll(
        &mut self,
        ctx: &mut KernelCtx,
        os: &mut OsServices,
        op: &mut Op,
        sock: SockId,
        readable: bool,
        writable: bool,
        out: &mut RxOutcome,
    ) {
        let (ep, data, owner) = {
            let t = self.socks.get(sock);
            (t.epoll, t.epoll_data, t.owner)
        };
        if let (Some(ep), Some(pid)) = (ep, owner) {
            let woke = os.epolls.post(
                ctx,
                op,
                ep,
                EpollEvent {
                    data,
                    readable,
                    writable,
                },
            );
            if woke {
                out.wakeups.push(pid);
            }
        }
    }

    fn transmit(&mut self, op: &mut Op, pkt: Packet, out: &mut RxOutcome) {
        op.work(CycleClass::TxPath, self.config.costs.tx_per_packet);
        out.replies.push(pkt);
    }

    /// Renders the socket table in `/proc/net/tcp` format — the
    /// compatibility surface §3.4 deliberately preserves so `netstat`
    /// and `lsof` keep working under the Fastsocket-aware VFS.
    ///
    /// ```text
    ///   sl  local_address rem_address   st
    ///    0: 0100000A:0050 00000000:0000 0A
    /// ```
    pub fn proc_net_tcp(&self) -> String {
        fn hex_addr(ip: std::net::Ipv4Addr, port: u16) -> String {
            // Linux prints the address as little-endian hex.
            let o = ip.octets();
            format!(
                "{:02X}{:02X}{:02X}{:02X}:{:04X}",
                o[3], o[2], o[1], o[0], port
            )
        }
        fn state_code(state: TcpState) -> u8 {
            match state {
                TcpState::Established => 0x01,
                TcpState::SynSent => 0x02,
                TcpState::SynRcvd => 0x03,
                TcpState::FinWait1 => 0x04,
                TcpState::FinWait2 => 0x05,
                TcpState::TimeWait => 0x06,
                TcpState::Closed => 0x07,
                TcpState::CloseWait => 0x08,
                TcpState::LastAck => 0x09,
                TcpState::Listen => 0x0A,
                TcpState::Closing => 0x0B,
            }
        }
        let mut out = String::from(
            "  sl  local_address rem_address   st
",
        );
        for (i, tcb) in self.socks.iter().enumerate() {
            out.push_str(&format!(
                "{:4}: {} {} {:02X}
",
                i,
                hex_addr(tcb.flow.src_ip, tcb.flow.src_port),
                hex_addr(tcb.flow.dst_ip, tcb.flow.dst_port),
                state_code(tcb.state),
            ));
        }
        out
    }

    /// Socket counts by state (a `ss -s`-style summary).
    pub fn socket_summary(&self) -> Vec<(TcpState, usize)> {
        let mut counts: Vec<(TcpState, usize)> = Vec::new();
        for tcb in self.socks.iter() {
            match counts.iter_mut().find(|(s, _)| *s == tcb.state) {
                Some((_, n)) => *n += 1,
                None => counts.push((tcb.state, 1)),
            }
        }
        counts
    }
}
