//! TCP control blocks (sockets) and their registry.

use serde::{Deserialize, Serialize};
use sim_core::CoreId;
use sim_mem::{ObjId, ObjKind};
use sim_net::FlowTuple;
use sim_os::epoll::EpollId;
use sim_os::process::Pid;
use sim_os::timer::TimerHandle;
use sim_os::vfs::VfsNode;
use sim_os::KernelCtx;
use sim_sync::{LockClass, LockId};

use crate::state::TcpState;

/// Identifies one socket (TCB).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SockId(pub u32);

/// A TCP control block.
///
/// `flow` is stored from the local endpoint's perspective (`src` =
/// local address/port). `app_core` records where the owning application
/// runs — the reference point for connection-locality accounting.
#[derive(Debug)]
pub struct Tcb {
    /// This socket's id.
    pub id: SockId,
    /// Allocation generation: distinguishes reuses of the same slab
    /// slot (deferred events like TIME_WAIT expiry carry this token).
    pub gen: u64,
    /// Local-perspective connection tuple.
    pub flow: FlowTuple,
    /// Current connection state.
    pub state: TcpState,
    /// Whether this connection was actively opened (`connect`).
    pub active: bool,
    /// Next sequence number to send.
    pub snd_nxt: u32,
    /// Next sequence number expected from the peer.
    pub rcv_nxt: u32,
    /// The per-socket spinlock (`slock`).
    pub lock: LockId,
    /// Cache object for the TCB itself.
    pub obj: ObjId,
    /// Cache object for the socket buffers.
    pub buf_obj: ObjId,
    /// The core the owning application runs on.
    pub app_core: CoreId,
    /// Owning process, once accepted/connected.
    pub owner: Option<Pid>,
    /// Epoll instance watching this socket, if registered.
    pub epoll: Option<EpollId>,
    /// The `epoll_data` token the application registered with.
    pub epoll_data: u64,
    /// Whether this socket is currently in the established table.
    pub in_est: bool,
    /// Retransmission timer, when armed.
    pub rtx_timer: Option<TimerHandle>,
    /// VFS state, once the socket has an FD.
    pub vfs: Option<VfsNode>,
    /// Bytes received and not yet read by the application.
    pub rx_ready: u32,
    /// Whether the peer's FIN has been delivered to the application.
    pub peer_fin_seen: bool,
    /// For the Local Established Table: which core's table holds this
    /// socket (`None` under the global table).
    pub est_home: Option<CoreId>,
    /// The listen socket whose accept queue currently holds this
    /// connection (so an abort can unlink it).
    pub queued_in: Option<crate::listen::LsId>,
    /// The listen socket whose SYN queue holds this embryo (so an
    /// abort before handshake completion can unlink it).
    pub syn_queued_in: Option<crate::listen::LsId>,
    /// Sent-but-unacknowledged segments, oldest first (retransmitted on
    /// RTO expiry under packet loss).
    pub unacked: std::collections::VecDeque<sim_net::Packet>,
    /// Consecutive RTO firings without forward progress; the
    /// connection is aborted past the retry limit.
    pub rtx_attempts: u8,
    /// Sliding-window data-plane state (send/receive windows and the
    /// congestion controller); present only when `StackConfig::cc`
    /// enables bulk transfer. The single-packet request/response paths
    /// never allocate it, so they stay byte-identical to the pre-data-
    /// plane model.
    pub dp: Option<Box<crate::window::DataPlane>>,
    /// What the memory ledger holds for this socket (`StackConfig::mem`
    /// accounting only): the bucket kind to uncharge at teardown, kept
    /// separately from `state` because resets rewrite the TCP state
    /// before release.
    pub mem_charge: sim_res::MemCharge,
    /// Receive-buffer bytes (payload + skb overhead) currently charged
    /// to the memory ledger for this socket, unscaled.
    pub mem_rcv: u32,
    /// Send-buffer bytes currently charged for this socket's unacked
    /// queue, unscaled.
    pub mem_snd: u32,
    /// Whether an orphan bucket is charged (fd closed, TCP alive).
    pub mem_orphan: bool,
    /// The core whose account holds this socket's charges. Pinned at
    /// the first charge so later `app_core` rebinds (accept moves the
    /// socket to the accepting core) cannot unbalance a core account.
    pub mem_core: CoreId,
}

/// The socket registry (slab).
#[derive(Debug, Default)]
pub struct SockTable {
    socks: Vec<Option<Tcb>>,
    free: Vec<u32>,
    live: u32,
    next_gen: u64,
}

impl SockTable {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a TCB in `state` for `flow`, registering its lock and
    /// cache objects on `core`.
    pub fn alloc(
        &mut self,
        ctx: &mut KernelCtx,
        flow: FlowTuple,
        state: TcpState,
        active: bool,
        core: CoreId,
    ) -> SockId {
        let lock = ctx.locks.register(LockClass::Slock);
        let kind = if state == TcpState::Listen {
            ObjKind::ListenSock
        } else {
            ObjKind::Tcb
        };
        let obj = ctx.cache.alloc(kind, core);
        let buf_obj = ctx.cache.alloc(ObjKind::SockBuf, core);
        self.next_gen += 1;
        let tcb = Tcb {
            id: SockId(0), // patched below
            gen: self.next_gen,
            flow,
            state,
            active,
            snd_nxt: 0,
            rcv_nxt: 0,
            lock,
            obj,
            buf_obj,
            app_core: core,
            owner: None,
            epoll: None,
            epoll_data: 0,
            in_est: false,
            rtx_timer: None,
            vfs: None,
            rx_ready: 0,
            peer_fin_seen: false,
            est_home: None,
            queued_in: None,
            syn_queued_in: None,
            unacked: std::collections::VecDeque::new(),
            rtx_attempts: 0,
            dp: None,
            mem_charge: sim_res::MemCharge::None,
            mem_rcv: 0,
            mem_snd: 0,
            mem_orphan: false,
            mem_core: core,
        };
        self.live += 1;
        let id = if let Some(idx) = self.free.pop() {
            self.socks[idx as usize] = Some(tcb);
            SockId(idx)
        } else {
            let idx = self.socks.len() as u32;
            self.socks.push(Some(tcb));
            SockId(idx)
        };
        self.get_mut(id).id = id;
        id
    }

    /// Frees a TCB, destroying its lock and cache objects. The caller
    /// must have already torn down VFS state and timers.
    pub fn release(&mut self, ctx: &mut KernelCtx, id: SockId) {
        let tcb = self.socks[id.0 as usize]
            .take()
            .unwrap_or_else(|| panic!("double free of socket {id:?}"));
        debug_assert!(tcb.rtx_timer.is_none(), "freeing socket with armed timer");
        debug_assert!(tcb.vfs.is_none(), "freeing socket with live VFS state");
        ctx.locks.destroy(tcb.lock);
        ctx.cache.free(tcb.obj);
        ctx.cache.free(tcb.buf_obj);
        self.free.push(id.0);
        self.live -= 1;
    }

    /// Returns the TCB behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if the socket does not exist.
    pub fn get(&self, id: SockId) -> &Tcb {
        self.socks[id.0 as usize]
            .as_ref()
            .unwrap_or_else(|| panic!("no such socket {id:?}"))
    }

    /// Returns the TCB mutably.
    ///
    /// # Panics
    ///
    /// Panics if the socket does not exist.
    pub fn get_mut(&mut self, id: SockId) -> &mut Tcb {
        self.socks[id.0 as usize]
            .as_mut()
            .unwrap_or_else(|| panic!("no such socket {id:?}"))
    }

    /// Whether `id` refers to a live socket.
    pub fn exists(&self, id: SockId) -> bool {
        self.socks.get(id.0 as usize).is_some_and(Option::is_some)
    }

    /// Number of live sockets.
    pub fn live_count(&self) -> u32 {
        self.live
    }

    /// Iterates over all live sockets.
    pub fn iter(&self) -> impl Iterator<Item = &Tcb> {
        self.socks.iter().filter_map(|s| s.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::SimRng;
    use sim_mem::{CacheCosts, CacheModel};
    use sim_sync::{LockCosts, LockTable};
    use std::net::Ipv4Addr;

    fn ctx() -> KernelCtx {
        KernelCtx::new(
            4,
            LockTable::new(LockCosts::default()),
            CacheModel::new(CacheCosts::default()),
            SimRng::seed(3),
        )
    }

    fn flow() -> FlowTuple {
        FlowTuple::new(
            Ipv4Addr::new(10, 0, 0, 1),
            80,
            Ipv4Addr::new(10, 0, 0, 2),
            40_000,
        )
    }

    #[test]
    fn alloc_sets_identity_and_state() {
        let mut c = ctx();
        let mut t = SockTable::new();
        let id = t.alloc(&mut c, flow(), TcpState::SynRcvd, false, CoreId(2));
        let tcb = t.get(id);
        assert_eq!(tcb.id, id);
        assert_eq!(tcb.state, TcpState::SynRcvd);
        assert_eq!(tcb.app_core, CoreId(2));
        assert!(!tcb.active);
        assert_eq!(t.live_count(), 1);
    }

    #[test]
    fn release_recycles_slots() {
        let mut c = ctx();
        let mut t = SockTable::new();
        let a = t.alloc(&mut c, flow(), TcpState::Established, true, CoreId(0));
        t.release(&mut c, a);
        assert!(!t.exists(a));
        assert_eq!(t.live_count(), 0);
        let b = t.alloc(&mut c, flow(), TcpState::SynSent, true, CoreId(1));
        assert_eq!(a.0, b.0, "slot reused");
        assert!(t.exists(b));
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_release_panics() {
        let mut c = ctx();
        let mut t = SockTable::new();
        let a = t.alloc(&mut c, flow(), TcpState::Established, true, CoreId(0));
        t.release(&mut c, a);
        t.release(&mut c, a);
    }

    #[test]
    fn live_lock_and_cache_objects_match_sockets() {
        let mut c = ctx();
        let mut t = SockTable::new();
        let ids: Vec<SockId> = (0..10)
            .map(|i| t.alloc(&mut c, flow(), TcpState::Established, false, CoreId(i % 4)))
            .collect();
        assert_eq!(c.locks.live_locks(), 10);
        for id in ids {
            t.release(&mut c, id);
        }
        assert_eq!(c.locks.live_locks(), 0);
        assert_eq!(c.cache.footprint(), 0);
    }
}
