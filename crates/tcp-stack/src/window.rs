//! Sliding-window data plane: sequence-space arithmetic and the
//! per-connection send/receive window components.
//!
//! Window and congestion state is carved into component-scoped structs
//! with `&mut self` write boundaries (the mlwip-style decomposition
//! from the roadmap): [`SendWindow`] owns everything the ACK clock
//! mutates on the sender side, [`RecvWindow`] owns the receive-buffer
//! budget, and [`DataPlane`] composes them with the pluggable
//! congestion controller. The stack only writes this state through the
//! component methods while holding the socket `slock`, so the
//! sim-check lockset masks align with the component edges.
//!
//! All sequence comparisons are wrap-safe over the `u32` boundary
//! (RFC 1982-style serial arithmetic), property-tested below.

use crate::cc::{self, CcConfig, CongestionControl};
use sim_nic::BatchConfig;

/// `a < b` in sequence space (wrap-safe).
pub fn seq_lt(a: u32, b: u32) -> bool {
    (a.wrapping_sub(b) as i32) < 0
}

/// `a <= b` in sequence space (wrap-safe).
pub fn seq_le(a: u32, b: u32) -> bool {
    (a.wrapping_sub(b) as i32) <= 0
}

/// `a > b` in sequence space (wrap-safe).
pub fn seq_gt(a: u32, b: u32) -> bool {
    (a.wrapping_sub(b) as i32) > 0
}

/// `a >= b` in sequence space (wrap-safe).
pub fn seq_ge(a: u32, b: u32) -> bool {
    (a.wrapping_sub(b) as i32) >= 0
}

/// Distance from `b` forward to `a` in sequence space.
pub fn seq_sub(a: u32, b: u32) -> u32 {
    a.wrapping_sub(b)
}

/// Third duplicate ACK triggers fast retransmit (RFC 5681).
pub const DUP_ACK_THRESHOLD: u8 = 3;

/// What an incoming ACK meant to the send window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckKind {
    /// Stale or irrelevant (acks nothing, nothing in flight).
    Old,
    /// Duplicate ACK with data outstanding; `count` is the running
    /// duplicate counter including this one.
    Dup {
        /// Consecutive duplicates seen so far.
        count: u8,
    },
    /// New data acknowledged.
    Advance {
        /// Bytes newly acknowledged.
        acked: u32,
    },
}

/// Sender-side sliding window: unacknowledged floor, peer-advertised
/// window, duplicate-ACK accounting, fast-recovery bookkeeping and the
/// backlog of application bytes not yet segmented.
#[derive(Debug, Clone)]
pub struct SendWindow {
    /// Oldest unacknowledged sequence number.
    pub una: u32,
    /// Most recent window advertised by the peer, in bytes.
    pub peer_wnd: u32,
    /// Consecutive duplicate ACKs observed.
    pub dup_acks: u8,
    /// Inside NewReno-style fast recovery.
    pub in_recovery: bool,
    /// `snd_nxt` when recovery was entered; recovery ends once `una`
    /// passes this point (the RFC 6582 `recover` variable).
    pub recover: u32,
    /// Application bytes queued but not yet segmented.
    pub pending: u64,
    /// A close() was issued while data was still queued; emit the FIN
    /// after the last data segment.
    pub fin_pending: bool,
}

impl SendWindow {
    /// A fresh window with nothing in flight, starting at `iss`.
    pub fn new(iss: u32) -> SendWindow {
        SendWindow {
            una: iss,
            peer_wnd: 65_535,
            dup_acks: 0,
            in_recovery: false,
            recover: iss,
            pending: 0,
            fin_pending: false,
        }
    }

    /// Bytes in flight given the current `snd_nxt`.
    pub fn inflight(&self, snd_nxt: u32) -> u32 {
        seq_sub(snd_nxt, self.una)
    }

    /// Queues application bytes for segmentation.
    pub fn queue(&mut self, bytes: u64) {
        self.pending += bytes;
    }

    /// Bytes the sender may put on the wire right now: the lesser of
    /// the congestion and peer windows, minus what is in flight.
    pub fn usable(&self, snd_nxt: u32, cwnd: u32) -> u32 {
        cwnd.min(self.peer_wnd)
            .saturating_sub(self.inflight(snd_nxt))
    }

    /// Classifies an incoming ACK and updates `una`, the peer window
    /// and the duplicate counter.
    pub fn on_ack(&mut self, ack: u32, snd_nxt: u32, wnd: u16) -> AckKind {
        self.peer_wnd = u32::from(wnd);
        if seq_lt(snd_nxt, ack) || seq_lt(ack, self.una) {
            return AckKind::Old;
        }
        if ack == self.una {
            if self.inflight(snd_nxt) > 0 {
                self.dup_acks = self.dup_acks.saturating_add(1);
                return AckKind::Dup {
                    count: self.dup_acks,
                };
            }
            return AckKind::Old;
        }
        let acked = seq_sub(ack, self.una);
        self.una = ack;
        self.dup_acks = 0;
        AckKind::Advance { acked }
    }

    /// Enters fast recovery; it ends when `una` reaches the current
    /// `snd_nxt`.
    pub fn enter_recovery(&mut self, snd_nxt: u32) {
        self.in_recovery = true;
        self.recover = snd_nxt;
        self.dup_acks = 0;
    }

    /// Whether a full ACK has taken `una` past the recovery point.
    pub fn recovery_done(&self) -> bool {
        self.in_recovery && seq_ge(self.una, self.recover)
    }

    /// Leaves fast recovery.
    pub fn exit_recovery(&mut self) {
        self.in_recovery = false;
    }

    /// An RTO fired: recovery state is abandoned (the RTO path owns
    /// retransmission from here).
    pub fn on_rto(&mut self) {
        self.dup_acks = 0;
        self.in_recovery = false;
    }

    /// `close()` ran while data was still queued: remember to emit the
    /// FIN once the backlog drains.
    pub fn defer_fin(&mut self) {
        self.fin_pending = true;
    }

    /// Whether a deferred FIN is ready to ride out now (backlog empty);
    /// consumes the pending flag when it is.
    pub fn take_deferred_fin(&mut self) -> bool {
        if self.fin_pending && self.pending == 0 {
            self.fin_pending = false;
            true
        } else {
            false
        }
    }
}

/// Receiver-side window: a per-connection buffer budget backing the
/// advertised window. Without window scaling the advertisement is
/// capped at 65535.
#[derive(Debug, Clone)]
pub struct RecvWindow {
    /// Total buffer budget in bytes.
    pub budget: u32,
    /// Bytes delivered to the socket but not yet consumed by the app.
    pub used: u32,
}

impl RecvWindow {
    /// A window backed by `budget` bytes of socket buffer.
    pub fn new(budget: u32) -> RecvWindow {
        RecvWindow { budget, used: 0 }
    }

    /// Remaining budget.
    pub fn available(&self) -> u32 {
        self.budget.saturating_sub(self.used)
    }

    /// The window to advertise on the wire (no window scaling).
    pub fn advertised(&self) -> u16 {
        self.available().min(65_535) as u16
    }

    /// Accepts `len` payload bytes if they fit the budget; returns
    /// whether the segment was accepted.
    pub fn accept(&mut self, len: u16) -> bool {
        if u32::from(len) <= self.available() {
            self.used += u32::from(len);
            true
        } else {
            false
        }
    }

    /// The application consumed `bytes` via `recv`.
    pub fn drain(&mut self, bytes: u32) {
        self.used = self.used.saturating_sub(bytes);
    }
}

/// Per-connection data-plane state: the two window components, the
/// congestion controller, and batch-offload counters. Boxed inside the
/// TCB and present only when `StackConfig::cc` is set, so the
/// single-packet request/response paths carry no data-plane state.
#[derive(Debug)]
pub struct DataPlane {
    /// Sender-side window component.
    pub snd: SendWindow,
    /// Receiver-side budget component.
    pub rcv: RecvWindow,
    /// The pluggable congestion controller.
    pub cc: Box<dyn CongestionControl>,
    /// Maximum segment size for segmentation.
    pub mss: u16,
    /// GSO/GRO amortization parameters (mirrors the NIC's).
    pub batch: BatchConfig,
    /// Cumulative TX segment index, for GSO burst accounting.
    pub gso_idx: u16,
    /// Cumulative in-order RX segment index, for GRO accounting.
    pub gro_idx: u16,
}

impl DataPlane {
    /// Fresh data-plane state for a connection whose next send
    /// sequence is `snd_nxt` (everything before it already acked).
    pub fn new(cfg: &CcConfig, snd_nxt: u32) -> DataPlane {
        DataPlane {
            snd: SendWindow::new(snd_nxt),
            rcv: RecvWindow::new(cfg.rcv_buf),
            cc: cc::build(cfg),
            mss: cfg.mss.max(1),
            batch: cfg.batch,
            gso_idx: 0,
            gro_idx: 0,
        }
    }

    /// Carves the next data segment off the send backlog if both
    /// windows allow a full one: consumes the backlog bytes, advances
    /// the GSO counter, and returns `(segment_len, gso_index)`.
    pub fn next_segment(&mut self, snd_nxt: u32) -> Option<(u32, u16)> {
        if self.snd.pending == 0 {
            return None;
        }
        let seg_len = self.snd.pending.min(u64::from(self.mss)) as u32;
        if self.snd.usable(snd_nxt, self.cc.cwnd()) < seg_len {
            return None;
        }
        self.snd.pending -= u64::from(seg_len);
        let idx = self.gso_idx;
        self.gso_idx = self.gso_idx.wrapping_add(1);
        Some((seg_len, idx))
    }

    /// One in-order data segment arrived: advances the GRO train
    /// counter and returns the amortized per-segment receive cost.
    pub fn gro_advance(&mut self, per_segment: u64) -> u64 {
        let cost = self.batch.gro_cost(self.gro_idx, per_segment);
        self.gro_idx = self.gro_idx.wrapping_add(1);
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ack_classification() {
        let mut w = SendWindow::new(1_000);
        // 2_000 bytes in flight.
        let snd_nxt = 3_000;
        assert_eq!(
            w.on_ack(2_000, snd_nxt, 65_535),
            AckKind::Advance { acked: 1_000 }
        );
        assert_eq!(w.una, 2_000);
        assert_eq!(w.on_ack(1_500, snd_nxt, 65_535), AckKind::Old);
        assert_eq!(w.on_ack(2_000, snd_nxt, 65_535), AckKind::Dup { count: 1 });
        assert_eq!(w.on_ack(2_000, snd_nxt, 65_535), AckKind::Dup { count: 2 });
        assert_eq!(
            w.on_ack(3_000, snd_nxt, 65_535),
            AckKind::Advance { acked: 1_000 }
        );
        assert_eq!(w.dup_acks, 0);
        // Nothing in flight: repeats are old, not duplicates.
        assert_eq!(w.on_ack(3_000, snd_nxt, 65_535), AckKind::Old);
        // An ACK beyond snd_nxt is nonsense and ignored.
        assert_eq!(w.on_ack(9_000, snd_nxt, 65_535), AckKind::Old);
    }

    #[test]
    fn usable_respects_both_windows_and_inflight() {
        let mut w = SendWindow::new(0);
        w.peer_wnd = 10_000;
        assert_eq!(w.usable(4_000, 8_000), 4_000); // cwnd 8k - 4k inflight
        assert_eq!(w.usable(4_000, 20_000), 6_000); // peer 10k - 4k
        assert_eq!(w.usable(12_000, 20_000), 0); // overshoot saturates
    }

    #[test]
    fn recovery_tracks_recover_point() {
        let mut w = SendWindow::new(0);
        let snd_nxt = 10_000;
        w.on_ack(2_000, snd_nxt, 65_535);
        w.enter_recovery(snd_nxt);
        assert!(w.in_recovery);
        w.on_ack(6_000, snd_nxt, 65_535); // partial ACK
        assert!(!w.recovery_done());
        w.on_ack(10_000, snd_nxt, 65_535); // full ACK
        assert!(w.recovery_done());
        w.exit_recovery();
        assert!(!w.in_recovery);
    }

    #[test]
    fn recv_window_budget() {
        let mut r = RecvWindow::new(4_000);
        assert_eq!(r.advertised(), 4_000);
        assert!(r.accept(1_448));
        assert!(r.accept(1_448));
        assert_eq!(r.advertised(), 4_000 - 2 * 1_448);
        assert!(!r.accept(1_448), "third segment exceeds the budget");
        r.drain(1_448);
        assert!(r.accept(1_448));
        r.drain(10_000); // over-drain saturates at zero
        assert_eq!(r.used, 0);
    }

    #[test]
    fn large_budget_advertises_capped_window() {
        let r = RecvWindow::new(1 << 20);
        assert_eq!(r.advertised(), 65_535);
    }

    proptest! {
        // seq_lt/seq_gt etc. agree with integer comparison whenever the
        // two points are within half the sequence space of each other,
        // including across the u32 wrap boundary.
        #[test]
        fn seq_cmp_matches_offset_sign(base in any::<u32>(), off in 1u32..0x7fff_ffff) {
            let ahead = base.wrapping_add(off);
            prop_assert!(seq_lt(base, ahead));
            prop_assert!(seq_le(base, ahead));
            prop_assert!(seq_gt(ahead, base));
            prop_assert!(seq_ge(ahead, base));
            prop_assert!(!seq_lt(ahead, base));
            prop_assert!(!seq_ge(base, ahead));
        }

        #[test]
        fn seq_cmp_is_reflexive(a in any::<u32>()) {
            prop_assert!(seq_le(a, a));
            prop_assert!(seq_ge(a, a));
            prop_assert!(!seq_lt(a, a));
            prop_assert!(!seq_gt(a, a));
        }

        #[test]
        fn seq_sub_inverts_wrapping_add(base in any::<u32>(), off in any::<u32>()) {
            prop_assert_eq!(seq_sub(base.wrapping_add(off), base), off);
        }

        // Advancing the window by ACKs across the wrap boundary keeps
        // inflight consistent: ack of k bytes reduces inflight by k.
        #[test]
        fn ack_advance_reduces_inflight(iss in any::<u32>(),
                                        sent in 1u32..1_000_000,
                                        acked in 1u32..1_000_000) {
            let acked = acked.min(sent);
            let mut w = SendWindow::new(iss);
            let snd_nxt = iss.wrapping_add(sent);
            prop_assert_eq!(w.inflight(snd_nxt), sent);
            let kind = w.on_ack(iss.wrapping_add(acked), snd_nxt, 65_535);
            prop_assert_eq!(kind, AckKind::Advance { acked });
            prop_assert_eq!(w.inflight(snd_nxt), sent - acked);
        }

        // Duplicate ACKs never move una, and the counter resets on the
        // next advance, wherever the window sits in sequence space.
        #[test]
        fn dup_then_advance_resets_counter(iss in any::<u32>(), dups in 1u8..10) {
            let mut w = SendWindow::new(iss);
            let snd_nxt = iss.wrapping_add(5_000);
            for i in 1..=dups {
                prop_assert_eq!(w.on_ack(iss, snd_nxt, 65_535), AckKind::Dup { count: i });
                prop_assert_eq!(w.una, iss);
            }
            prop_assert_eq!(
                w.on_ack(snd_nxt, snd_nxt, 65_535),
                AckKind::Advance { acked: 5_000 }
            );
            prop_assert_eq!(w.dup_acks, 0);
        }
    }
}
