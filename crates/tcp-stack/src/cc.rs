//! Pluggable congestion control for the bulk-transfer data plane.
//!
//! Three controllers ship behind the [`CongestionControl`] trait:
//!
//! * [`NewReno`] — RFC 5681/6582 slow start, AIMD congestion
//!   avoidance and fast recovery.
//! * [`Cubic`] — RFC 8312 window growth `W(t) = C·(t−K)³ + Wmax`,
//!   driven off the deterministic simulated clock.
//! * [`Dctcp`] — a DCTCP-style ECN responder: it maintains the EWMA
//!   marked fraction `α` and cuts `cwnd` by `α/2` once per window,
//!   instead of NewReno's half-on-any-mark.
//!
//! All state lives in the TCB (inside [`crate::window::DataPlane`]) and
//! every transition is driven off the event path — ACK arrival,
//! duplicate-ACK threshold, RTO — so same-seed runs are bit-identical.
//! The floating-point math in CUBIC/DCTCP is pure (no wall clock, no
//! RNG) and therefore deterministic too.

use serde::{Deserialize, Serialize};
use sim_core::{cycles_to_secs, Cycles};
use sim_nic::BatchConfig;

use crate::window::seq_ge;

/// Hard ceiling on cwnd, well above anything the 16-bit peer window
/// lets a sender use; keeps the arithmetic overflow-free.
const MAX_CWND: u32 = 1 << 24;

/// Which congestion-control algorithm a connection runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CcAlgo {
    /// RFC 5681/6582 NewReno.
    NewReno,
    /// RFC 8312 CUBIC.
    Cubic,
    /// DCTCP-style proportional ECN responder.
    Dctcp,
}

impl CcAlgo {
    /// All algorithms, in sweep order.
    pub const ALL: [CcAlgo; 3] = [CcAlgo::NewReno, CcAlgo::Cubic, CcAlgo::Dctcp];

    /// Short lowercase name, used in bench labels and reports.
    pub fn name(self) -> &'static str {
        match self {
            CcAlgo::NewReno => "newreno",
            CcAlgo::Cubic => "cubic",
            CcAlgo::Dctcp => "dctcp",
        }
    }
}

impl std::fmt::Display for CcAlgo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Data-plane configuration carried by `StackConfig::cc`; present only
/// when the sliding-window data plane is enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CcConfig {
    /// Congestion-control algorithm for every connection.
    pub algo: CcAlgo,
    /// Maximum segment size.
    pub mss: u16,
    /// Initial congestion window, in segments (RFC 6928 IW10).
    pub init_cwnd_segs: u16,
    /// Per-connection receive buffer budget backing the advertised
    /// window.
    pub rcv_buf: u32,
    /// GSO/GRO batch amortization and ECN-marking parameters.
    pub batch: BatchConfig,
}

impl Default for CcConfig {
    fn default() -> Self {
        CcConfig {
            algo: CcAlgo::NewReno,
            mss: 1_448,
            init_cwnd_segs: 10,
            rcv_buf: 65_535,
            batch: BatchConfig::default(),
        }
    }
}

/// Context handed to the controller on every ACK that advances `una`.
#[derive(Debug, Clone, Copy)]
pub struct AckCtx {
    /// Bytes newly acknowledged.
    pub acked: u32,
    /// The ACK carried an ECN echo (ECE).
    pub marked: bool,
    /// Current simulated time.
    pub now: Cycles,
    /// New `snd_una` after this ACK.
    pub una: u32,
    /// Current `snd_nxt`.
    pub snd_nxt: u32,
}

/// A per-connection congestion controller. Implementations own cwnd
/// and ssthresh; the stack owns retransmission and recovery sequencing.
pub trait CongestionControl: std::fmt::Debug + Send {
    /// Algorithm name for reports.
    fn name(&self) -> &'static str;
    /// Current congestion window in bytes.
    fn cwnd(&self) -> u32;
    /// Current slow-start threshold in bytes.
    fn ssthresh(&self) -> u32;
    /// An ACK advanced `snd_una`.
    fn on_ack(&mut self, ctx: &AckCtx);
    /// Third duplicate ACK: entering fast recovery.
    fn on_fast_retransmit(&mut self, inflight: u32, now: Cycles);
    /// A full ACK ended fast recovery.
    fn on_recovery_exit(&mut self);
    /// The retransmission timer fired.
    fn on_rto(&mut self, inflight: u32, now: Cycles);
}

/// Builds the configured controller.
pub fn build(cfg: &CcConfig) -> Box<dyn CongestionControl> {
    let mss = u32::from(cfg.mss.max(1));
    let iw = mss * u32::from(cfg.init_cwnd_segs.max(1));
    match cfg.algo {
        CcAlgo::NewReno => Box::new(NewReno::new(mss, iw)),
        CcAlgo::Cubic => Box::new(Cubic::new(mss, iw)),
        CcAlgo::Dctcp => Box::new(Dctcp::new(mss, iw)),
    }
}

/// Once-per-window ECN guard: reacting to every ECE in a window would
/// collapse cwnd exponentially, so a controller records `snd_nxt` at
/// each cut and ignores further marks until `una` passes it (the
/// `CWR`-state analogue).
#[derive(Debug, Clone, Copy, Default)]
struct EcnGuard {
    cut_at: Option<u32>,
}

impl EcnGuard {
    /// Whether a mark observed at `una` may trigger a new cut.
    fn may_cut(&self, una: u32) -> bool {
        match self.cut_at {
            None => true,
            Some(point) => seq_ge(una, point),
        }
    }

    fn record_cut(&mut self, snd_nxt: u32) {
        self.cut_at = Some(snd_nxt);
    }
}

/// RFC 5681/6582 NewReno.
#[derive(Debug)]
pub struct NewReno {
    mss: u32,
    cwnd: u32,
    ssthresh: u32,
    acked_bytes: u32,
    ecn: EcnGuard,
}

impl NewReno {
    fn new(mss: u32, iw: u32) -> Self {
        NewReno {
            mss,
            cwnd: iw,
            ssthresh: MAX_CWND,
            acked_bytes: 0,
            ecn: EcnGuard::default(),
        }
    }
}

impl CongestionControl for NewReno {
    fn name(&self) -> &'static str {
        "newreno"
    }
    fn cwnd(&self) -> u32 {
        self.cwnd
    }
    fn ssthresh(&self) -> u32 {
        self.ssthresh
    }

    fn on_ack(&mut self, ctx: &AckCtx) {
        if ctx.marked && self.ecn.may_cut(ctx.una) {
            self.ssthresh = (self.cwnd / 2).max(2 * self.mss);
            self.cwnd = self.ssthresh;
            self.ecn.record_cut(ctx.snd_nxt);
            return;
        }
        if self.cwnd < self.ssthresh {
            self.cwnd = (self.cwnd + ctx.acked.min(self.mss)).min(MAX_CWND);
        } else {
            self.acked_bytes += ctx.acked;
            if self.acked_bytes >= self.cwnd {
                self.acked_bytes -= self.cwnd;
                self.cwnd = (self.cwnd + self.mss).min(MAX_CWND);
            }
        }
    }

    fn on_fast_retransmit(&mut self, inflight: u32, _now: Cycles) {
        self.ssthresh = (inflight / 2).max(2 * self.mss);
        // Window inflation by the three duplicates that triggered us.
        self.cwnd = self.ssthresh + 3 * self.mss;
        self.acked_bytes = 0;
    }

    fn on_recovery_exit(&mut self) {
        self.cwnd = self.ssthresh;
    }

    fn on_rto(&mut self, inflight: u32, _now: Cycles) {
        self.ssthresh = (inflight / 2).max(2 * self.mss);
        self.cwnd = self.mss;
        self.acked_bytes = 0;
    }
}

const CUBIC_C: f64 = 0.4;
const CUBIC_BETA: f64 = 0.7;

/// RFC 8312 CUBIC. Window math runs in MSS units; elapsed time comes
/// from the simulated clock, so growth is deterministic.
#[derive(Debug)]
pub struct Cubic {
    mss: u32,
    cwnd: u32,
    ssthresh: u32,
    /// Window (MSS units) at the last congestion event.
    wmax: f64,
    /// Time to return to `wmax`, seconds.
    k: f64,
    /// Start of the current growth epoch.
    epoch: Option<Cycles>,
    ecn: EcnGuard,
}

impl Cubic {
    fn new(mss: u32, iw: u32) -> Self {
        Cubic {
            mss,
            cwnd: iw,
            ssthresh: MAX_CWND,
            wmax: 0.0,
            k: 0.0,
            epoch: None,
            ecn: EcnGuard::default(),
        }
    }

    /// Multiplicative decrease shared by loss and ECN events.
    fn congestion_event(&mut self) {
        self.wmax = f64::from(self.cwnd) / f64::from(self.mss);
        self.k = (self.wmax * (1.0 - CUBIC_BETA) / CUBIC_C).cbrt();
        self.ssthresh = ((f64::from(self.cwnd) * CUBIC_BETA) as u32).max(2 * self.mss);
        self.cwnd = self.ssthresh;
        self.epoch = None;
    }
}

impl CongestionControl for Cubic {
    fn name(&self) -> &'static str {
        "cubic"
    }
    fn cwnd(&self) -> u32 {
        self.cwnd
    }
    fn ssthresh(&self) -> u32 {
        self.ssthresh
    }

    fn on_ack(&mut self, ctx: &AckCtx) {
        if ctx.marked && self.ecn.may_cut(ctx.una) {
            self.congestion_event();
            self.ecn.record_cut(ctx.snd_nxt);
            return;
        }
        if self.cwnd < self.ssthresh {
            self.cwnd = (self.cwnd + ctx.acked.min(self.mss)).min(MAX_CWND);
            return;
        }
        let epoch = *self.epoch.get_or_insert(ctx.now);
        let t = cycles_to_secs(ctx.now.saturating_sub(epoch));
        let w = (CUBIC_C * (t - self.k).powi(3) + self.wmax).clamp(2.0, 16_384.0);
        let target = (w * f64::from(self.mss)) as u32;
        if target > self.cwnd {
            // At most one MSS of growth per ACK keeps the ramp paced
            // by the ACK clock, as the RFC's cwnd/target division does.
            self.cwnd = (self.cwnd + (target - self.cwnd).min(self.mss)).min(MAX_CWND);
        }
    }

    fn on_fast_retransmit(&mut self, _inflight: u32, _now: Cycles) {
        self.congestion_event();
    }

    fn on_recovery_exit(&mut self) {
        self.cwnd = self.ssthresh;
    }

    fn on_rto(&mut self, _inflight: u32, _now: Cycles) {
        self.congestion_event();
        self.cwnd = self.mss;
    }
}

/// EWMA gain for the DCTCP marked fraction, `g = 1/16`.
const DCTCP_G: f64 = 0.0625;

/// DCTCP-style ECN responder: per-window marked-byte fraction feeds an
/// EWMA `α`, and each marked window cuts cwnd by `α/2`. Loss falls
/// back to NewReno behaviour.
#[derive(Debug)]
pub struct Dctcp {
    mss: u32,
    cwnd: u32,
    ssthresh: u32,
    alpha: f64,
    acked_total: u64,
    marked_total: u64,
    /// Sequence ending the current observation window.
    obs_end: Option<u32>,
    acked_bytes: u32,
}

impl Dctcp {
    fn new(mss: u32, iw: u32) -> Self {
        Dctcp {
            mss,
            cwnd: iw,
            ssthresh: MAX_CWND,
            alpha: 1.0,
            acked_total: 0,
            marked_total: 0,
            obs_end: None,
            acked_bytes: 0,
        }
    }
}

impl CongestionControl for Dctcp {
    fn name(&self) -> &'static str {
        "dctcp"
    }
    fn cwnd(&self) -> u32 {
        self.cwnd
    }
    fn ssthresh(&self) -> u32 {
        self.ssthresh
    }

    fn on_ack(&mut self, ctx: &AckCtx) {
        self.acked_total += u64::from(ctx.acked);
        if ctx.marked {
            self.marked_total += u64::from(ctx.acked);
        }
        let end = *self.obs_end.get_or_insert(ctx.snd_nxt);
        let mut cut = false;
        if seq_ge(ctx.una, end) {
            let f = self.marked_total as f64 / self.acked_total.max(1) as f64;
            self.alpha = (1.0 - DCTCP_G) * self.alpha + DCTCP_G * f;
            if self.marked_total > 0 {
                let next = (f64::from(self.cwnd) * (1.0 - self.alpha / 2.0)) as u32;
                self.cwnd = next.max(2 * self.mss);
                self.ssthresh = self.cwnd;
                cut = true;
            }
            self.acked_total = 0;
            self.marked_total = 0;
            self.obs_end = Some(ctx.snd_nxt);
        }
        if cut {
            return;
        }
        if self.cwnd < self.ssthresh {
            self.cwnd = (self.cwnd + ctx.acked.min(self.mss)).min(MAX_CWND);
        } else {
            self.acked_bytes += ctx.acked;
            if self.acked_bytes >= self.cwnd {
                self.acked_bytes -= self.cwnd;
                self.cwnd = (self.cwnd + self.mss).min(MAX_CWND);
            }
        }
    }

    fn on_fast_retransmit(&mut self, inflight: u32, _now: Cycles) {
        self.ssthresh = (inflight / 2).max(2 * self.mss);
        self.cwnd = self.ssthresh + 3 * self.mss;
        self.acked_bytes = 0;
    }

    fn on_recovery_exit(&mut self) {
        self.cwnd = self.ssthresh;
    }

    fn on_rto(&mut self, inflight: u32, _now: Cycles) {
        self.ssthresh = (inflight / 2).max(2 * self.mss);
        self.cwnd = self.mss;
        self.acked_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::CYCLES_PER_SEC;

    fn ack(acked: u32, marked: bool, now: Cycles, una: u32, snd_nxt: u32) -> AckCtx {
        AckCtx {
            acked,
            marked,
            now,
            una,
            snd_nxt,
        }
    }

    fn cfg(algo: CcAlgo) -> CcConfig {
        CcConfig {
            algo,
            ..CcConfig::default()
        }
    }

    #[test]
    fn newreno_slow_start_doubles_per_rtt() {
        let mut cc = build(&cfg(CcAlgo::NewReno));
        let start = cc.cwnd();
        // Ack a full window's worth of segments.
        let mut una = 0;
        for _ in 0..10 {
            una += 1_448;
            cc.on_ack(&ack(1_448, false, 0, una, una + 100_000));
        }
        assert_eq!(cc.cwnd(), start + 10 * 1_448);
    }

    #[test]
    fn newreno_congestion_avoidance_adds_one_mss_per_window() {
        let mut cc = build(&cfg(CcAlgo::NewReno));
        cc.on_fast_retransmit(20 * 1_448, 0);
        cc.on_recovery_exit();
        let base = cc.cwnd();
        assert_eq!(base, 10 * 1_448, "half of 20 segments in flight");
        // One full window of ACKs grows cwnd by exactly one MSS.
        let mut acked = 0;
        while acked < base {
            cc.on_ack(&ack(1_448, false, 0, acked, acked + 100_000));
            acked += 1_448;
        }
        assert_eq!(cc.cwnd(), base + 1_448);
    }

    #[test]
    fn newreno_rto_collapses_to_one_mss() {
        let mut cc = build(&cfg(CcAlgo::NewReno));
        cc.on_rto(10 * 1_448, 0);
        assert_eq!(cc.cwnd(), 1_448);
        assert_eq!(cc.ssthresh(), 5 * 1_448);
    }

    #[test]
    fn newreno_cuts_once_per_window_on_ecn() {
        let mut cc = build(&cfg(CcAlgo::NewReno));
        let before = cc.cwnd();
        cc.on_ack(&ack(1_448, true, 0, 1_448, 50_000));
        let after_first = cc.cwnd();
        assert_eq!(after_first, (before / 2).max(2 * 1_448));
        // Further marks in the same window are ignored.
        cc.on_ack(&ack(1_448, true, 0, 2_896, 50_000));
        assert!(cc.cwnd() >= after_first);
        // A mark after una passes the cut point cuts again.
        cc.on_ack(&ack(1_448, true, 0, 51_000, 80_000));
        assert!(cc.cwnd() < after_first);
    }

    #[test]
    fn cubic_grows_toward_wmax_over_time() {
        let mut cc = build(&cfg(CcAlgo::Cubic));
        // Force a congestion event at a large window.
        while cc.cwnd() < 40 * 1_448 {
            cc.on_ack(&ack(1_448, false, 0, 0, 100_000));
        }
        let peak = cc.cwnd();
        cc.on_fast_retransmit(peak, 0);
        cc.on_recovery_exit();
        let floor = cc.cwnd();
        assert!(floor < peak);
        // ACKs spread over simulated time climb back toward the peak.
        let mut now = 0;
        let mut una = 0u32;
        for _ in 0..4_000 {
            now += CYCLES_PER_SEC / 1_000; // 1 ms of ACK clock
            una = una.wrapping_add(1_448);
            cc.on_ack(&ack(1_448, false, now, una, una.wrapping_add(100_000)));
        }
        assert!(cc.cwnd() > floor, "cubic must regrow");
        let wmax_bytes = peak;
        assert!(
            cc.cwnd() >= wmax_bytes * 9 / 10,
            "after 4s cubic should be near wmax: {} vs {}",
            cc.cwnd(),
            wmax_bytes
        );
    }

    #[test]
    fn dctcp_cut_is_proportional_to_marked_fraction() {
        let mut half = build(&cfg(CcAlgo::Dctcp));
        let mut light = build(&cfg(CcAlgo::Dctcp));
        // Window 1 establishes the observation window [0, 50_000).
        half.on_ack(&ack(1_448, false, 0, 1_448, 50_000));
        light.on_ack(&ack(1_448, false, 0, 1_448, 50_000));
        // Window 1 completes: every byte marked vs. one mark.
        for i in 2..40 {
            let una = i * 1_448;
            half.on_ack(&ack(1_448, true, 0, una, 120_000));
            light.on_ack(&ack(1_448, i == 2, 0, una, 120_000));
        }
        let heavy_cut = half.cwnd();
        let light_cut = light.cwnd();
        assert!(
            heavy_cut < light_cut,
            "heavier marking must cut deeper: {heavy_cut} vs {light_cut}"
        );
    }

    #[test]
    fn all_algorithms_build_and_report_names() {
        for algo in CcAlgo::ALL {
            let cc = build(&cfg(algo));
            assert_eq!(cc.name(), algo.name());
            assert!(cc.cwnd() > 0);
        }
        assert_eq!(CcAlgo::Cubic.to_string(), "cubic");
    }

    #[test]
    fn ecn_guard_is_wrap_safe() {
        let mut g = EcnGuard::default();
        assert!(g.may_cut(u32::MAX - 10));
        g.record_cut(5); // snd_nxt wrapped past zero
        assert!(!g.may_cut(u32::MAX - 2), "still before the cut point");
        assert!(g.may_cut(6), "wrapped past the cut point");
    }
}
