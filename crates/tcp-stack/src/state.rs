//! The TCP connection state machine (RFC 793 subset).
//!
//! Pure transition logic, independent of tables and costs, so it can be
//! tested exhaustively. The simulation runs a lossless in-order network,
//! so simultaneous-open and retransmission paths are modelled but never
//! hot.

use serde::{Deserialize, Serialize};
use sim_net::TcpFlags;

/// TCP connection states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TcpState {
    /// No connection.
    Closed,
    /// Waiting for connection requests (listen sockets only).
    Listen,
    /// Active open: SYN sent, awaiting SYN-ACK.
    SynSent,
    /// Passive open: SYN received, SYN-ACK sent.
    SynRcvd,
    /// Data transfer.
    Established,
    /// Our FIN sent, awaiting its ACK.
    FinWait1,
    /// Our FIN ACKed, awaiting the peer's FIN.
    FinWait2,
    /// Peer's FIN received while established; awaiting local close.
    CloseWait,
    /// Both sides closed simultaneously; awaiting FIN ACK.
    Closing,
    /// Local close after CloseWait; FIN sent, awaiting its ACK.
    LastAck,
    /// Connection done; lingering to absorb stray segments.
    TimeWait,
}

impl TcpState {
    /// Whether data transfer is possible in this state.
    pub fn can_send(self) -> bool {
        matches!(self, TcpState::Established | TcpState::CloseWait)
    }

    /// Whether the connection is fully terminated (resources may be
    /// reclaimed after TIME_WAIT).
    pub fn is_closed(self) -> bool {
        matches!(self, TcpState::Closed)
    }
}

impl std::fmt::Display for TcpState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            TcpState::Closed => "CLOSED",
            TcpState::Listen => "LISTEN",
            TcpState::SynSent => "SYN_SENT",
            TcpState::SynRcvd => "SYN_RECV",
            TcpState::Established => "ESTABLISHED",
            TcpState::FinWait1 => "FIN_WAIT1",
            TcpState::FinWait2 => "FIN_WAIT2",
            TcpState::CloseWait => "CLOSE_WAIT",
            TcpState::Closing => "CLOSING",
            TcpState::LastAck => "LAST_ACK",
            TcpState::TimeWait => "TIME_WAIT",
        };
        f.write_str(s)
    }
}

/// What the stack must do after processing a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// The state after the segment.
    pub next: TcpState,
    /// Send an ACK.
    pub send_ack: bool,
    /// The connection just became established.
    pub established: bool,
    /// The peer signalled end of stream (FIN consumed).
    pub peer_fin: bool,
    /// The segment is invalid for this state: send RST and drop.
    pub reset: bool,
    /// Enter TIME_WAIT (schedule its expiry).
    pub enter_time_wait: bool,
}

impl Transition {
    fn stay(state: TcpState) -> Transition {
        Transition {
            next: state,
            send_ack: false,
            established: false,
            peer_fin: false,
            reset: false,
            enter_time_wait: false,
        }
    }

    fn to(next: TcpState) -> Transition {
        Transition::stay(next)
    }

    fn reset_from(state: TcpState) -> Transition {
        Transition {
            reset: true,
            ..Transition::stay(state)
        }
    }
}

/// Computes the transition for a segment with `flags` and `payload_len`
/// bytes arriving in `state`.
///
/// RST segments always move the connection to [`TcpState::Closed`]
/// (without replying). SYN segments in synchronized states are invalid
/// and elicit a reset. Pure ACKs advance the opening/closing
/// handshakes; FINs are acknowledged and progress the teardown.
pub fn on_segment(state: TcpState, flags: TcpFlags, payload_len: u16) -> Transition {
    if flags.rst() {
        return Transition::to(TcpState::Closed);
    }
    match state {
        TcpState::Closed | TcpState::Listen => {
            // Handled by listen-socket logic before reaching here.
            Transition::reset_from(state)
        }
        TcpState::SynSent => {
            if flags.syn() && flags.ack() {
                Transition {
                    next: TcpState::Established,
                    send_ack: true,
                    established: true,
                    ..Transition::stay(state)
                }
            } else if flags.syn() {
                // Simultaneous open.
                Transition {
                    next: TcpState::SynRcvd,
                    send_ack: true,
                    ..Transition::stay(state)
                }
            } else {
                Transition::reset_from(state)
            }
        }
        TcpState::SynRcvd => {
            if flags.syn() {
                // Retransmitted SYN: re-ACK, stay.
                Transition {
                    next: TcpState::SynRcvd,
                    send_ack: true,
                    ..Transition::stay(state)
                }
            } else if flags.fin() {
                Transition {
                    next: TcpState::CloseWait,
                    send_ack: true,
                    established: true,
                    peer_fin: true,
                    ..Transition::stay(state)
                }
            } else if flags.ack() {
                Transition {
                    next: TcpState::Established,
                    established: true,
                    ..Transition::stay(state)
                }
            } else {
                Transition::reset_from(state)
            }
        }
        TcpState::Established => {
            if flags.syn() {
                Transition::reset_from(state)
            } else if flags.fin() {
                Transition {
                    next: TcpState::CloseWait,
                    send_ack: true,
                    peer_fin: true,
                    ..Transition::stay(state)
                }
            } else {
                Transition {
                    next: TcpState::Established,
                    send_ack: payload_len > 0,
                    ..Transition::stay(state)
                }
            }
        }
        TcpState::FinWait1 => {
            if flags.fin() && flags.ack() {
                Transition {
                    next: TcpState::TimeWait,
                    send_ack: true,
                    peer_fin: true,
                    enter_time_wait: true,
                    ..Transition::stay(state)
                }
            } else if flags.fin() {
                Transition {
                    next: TcpState::Closing,
                    send_ack: true,
                    peer_fin: true,
                    ..Transition::stay(state)
                }
            } else if flags.ack() {
                Transition {
                    next: TcpState::FinWait2,
                    send_ack: payload_len > 0,
                    ..Transition::stay(state)
                }
            } else {
                Transition::stay(state)
            }
        }
        TcpState::FinWait2 => {
            if flags.fin() {
                Transition {
                    next: TcpState::TimeWait,
                    send_ack: true,
                    peer_fin: true,
                    enter_time_wait: true,
                    ..Transition::stay(state)
                }
            } else {
                Transition {
                    next: TcpState::FinWait2,
                    send_ack: payload_len > 0,
                    ..Transition::stay(state)
                }
            }
        }
        TcpState::CloseWait => {
            // Peer already FINed; only ACKs of our data arrive.
            Transition::stay(TcpState::CloseWait)
        }
        TcpState::Closing => {
            if flags.ack() {
                Transition {
                    next: TcpState::TimeWait,
                    enter_time_wait: true,
                    ..Transition::stay(state)
                }
            } else {
                Transition::stay(state)
            }
        }
        TcpState::LastAck => {
            if flags.ack() {
                Transition::to(TcpState::Closed)
            } else {
                Transition::stay(state)
            }
        }
        TcpState::TimeWait => {
            // Re-ACK retransmitted FINs; otherwise ignore.
            Transition {
                next: TcpState::TimeWait,
                send_ack: flags.fin(),
                ..Transition::stay(state)
            }
        }
    }
}

/// The state entered by a local `close()` call, and whether a FIN must
/// be sent. Returns `None` when close is a no-op for the state.
pub fn on_close(state: TcpState) -> Option<(TcpState, bool)> {
    match state {
        TcpState::Established | TcpState::SynRcvd => Some((TcpState::FinWait1, true)),
        TcpState::CloseWait => Some((TcpState::LastAck, true)),
        TcpState::SynSent | TcpState::Listen => Some((TcpState::Closed, false)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SYN: TcpFlags = TcpFlags::SYN;
    const ACK: TcpFlags = TcpFlags::ACK;

    fn synack() -> TcpFlags {
        TcpFlags::SYN | TcpFlags::ACK
    }
    fn finack() -> TcpFlags {
        TcpFlags::FIN | TcpFlags::ACK
    }

    #[test]
    fn active_open_handshake() {
        let t = on_segment(TcpState::SynSent, synack(), 0);
        assert_eq!(t.next, TcpState::Established);
        assert!(t.send_ack && t.established && !t.reset);
    }

    #[test]
    fn passive_open_completion() {
        let t = on_segment(TcpState::SynRcvd, ACK, 0);
        assert_eq!(t.next, TcpState::Established);
        assert!(t.established && !t.send_ack);
    }

    #[test]
    fn retransmitted_syn_is_reacked() {
        let t = on_segment(TcpState::SynRcvd, SYN, 0);
        assert_eq!(t.next, TcpState::SynRcvd);
        assert!(t.send_ack && !t.established);
    }

    #[test]
    fn data_in_established_is_acked() {
        let t = on_segment(TcpState::Established, TcpFlags::PSH | ACK, 600);
        assert_eq!(t.next, TcpState::Established);
        assert!(t.send_ack);
        let t2 = on_segment(TcpState::Established, ACK, 0);
        assert!(!t2.send_ack, "pure ACK not re-ACKed");
    }

    #[test]
    fn remote_close_while_established() {
        let t = on_segment(TcpState::Established, finack(), 0);
        assert_eq!(t.next, TcpState::CloseWait);
        assert!(t.peer_fin && t.send_ack);
    }

    #[test]
    fn local_close_full_sequence() {
        // close() in ESTABLISHED: FIN_WAIT1.
        let (s, fin) = on_close(TcpState::Established).unwrap();
        assert_eq!((s, fin), (TcpState::FinWait1, true));
        // Peer ACKs our FIN: FIN_WAIT2.
        let t = on_segment(s, ACK, 0);
        assert_eq!(t.next, TcpState::FinWait2);
        // Peer FINs: TIME_WAIT with ACK.
        let t = on_segment(t.next, finack(), 0);
        assert_eq!(t.next, TcpState::TimeWait);
        assert!(t.send_ack && t.enter_time_wait && t.peer_fin);
    }

    #[test]
    fn fin_and_ack_together_skips_fin_wait2() {
        let t = on_segment(TcpState::FinWait1, finack(), 0);
        assert_eq!(t.next, TcpState::TimeWait);
        assert!(t.enter_time_wait);
    }

    #[test]
    fn simultaneous_close() {
        let t = on_segment(TcpState::FinWait1, TcpFlags::FIN, 0);
        assert_eq!(t.next, TcpState::Closing);
        let t = on_segment(t.next, ACK, 0);
        assert_eq!(t.next, TcpState::TimeWait);
        assert!(t.enter_time_wait);
    }

    #[test]
    fn passive_close_completes_in_last_ack() {
        let (s, fin) = on_close(TcpState::CloseWait).unwrap();
        assert_eq!((s, fin), (TcpState::LastAck, true));
        let t = on_segment(s, ACK, 0);
        assert_eq!(t.next, TcpState::Closed);
    }

    #[test]
    fn rst_always_closes() {
        for state in [
            TcpState::SynSent,
            TcpState::SynRcvd,
            TcpState::Established,
            TcpState::FinWait1,
            TcpState::CloseWait,
            TcpState::LastAck,
            TcpState::TimeWait,
        ] {
            let t = on_segment(state, TcpFlags::RST, 0);
            assert_eq!(t.next, TcpState::Closed, "from {state}");
            assert!(!t.send_ack, "no reply to RST from {state}");
        }
    }

    #[test]
    fn syn_in_established_resets() {
        let t = on_segment(TcpState::Established, SYN, 0);
        assert!(t.reset);
    }

    #[test]
    fn time_wait_reacks_fin_only() {
        let t = on_segment(TcpState::TimeWait, finack(), 0);
        assert!(t.send_ack);
        let t = on_segment(TcpState::TimeWait, ACK, 0);
        assert!(!t.send_ack);
        assert_eq!(t.next, TcpState::TimeWait);
    }

    #[test]
    fn close_is_noop_in_terminal_states() {
        assert!(on_close(TcpState::TimeWait).is_none());
        assert!(on_close(TcpState::Closed).is_none());
        assert!(on_close(TcpState::LastAck).is_none());
    }

    #[test]
    fn fin_in_syn_rcvd_establishes_then_closes() {
        // Client sent request+FIN before we saw the handshake ACK
        // separately (piggybacked teardown).
        let t = on_segment(TcpState::SynRcvd, finack(), 0);
        assert_eq!(t.next, TcpState::CloseWait);
        assert!(t.established && t.peer_fin);
    }

    #[test]
    fn can_send_and_is_closed_helpers() {
        assert!(TcpState::Established.can_send());
        assert!(TcpState::CloseWait.can_send());
        assert!(!TcpState::FinWait1.can_send());
        assert!(TcpState::Closed.is_closed());
        assert!(!TcpState::TimeWait.is_closed());
    }

    #[test]
    fn display_names_match_proc_net_tcp() {
        assert_eq!(TcpState::Established.to_string(), "ESTABLISHED");
        assert_eq!(TcpState::SynRcvd.to_string(), "SYN_RECV");
        assert_eq!(TcpState::TimeWait.to_string(), "TIME_WAIT");
    }
}
