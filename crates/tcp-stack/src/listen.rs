//! The listen table in three variants (§2.1, §3.2.1).
//!
//! * [`ListenVariant::Global`] — one listen socket per port, shared by
//!   every worker process (Linux 2.6.32). Its `slock` serializes SYN
//!   processing, handshake promotion and `accept()` across all cores.
//! * [`ListenVariant::ReusePort`] — `SO_REUSEPORT` (Linux 3.13): each
//!   process has a private copy, all linked into one bucket; there is no
//!   shared accept queue, but `inet_lookup_listener` must walk the
//!   bucket — O(n) in the number of cores, with a remote cache line per
//!   entry. This is the 0.26% → 24.2% CPU blow-up the paper measures.
//! * [`ListenVariant::Local`] — Fastsocket's Local Listen Table: a
//!   per-core table whose entry is found in O(1) with no lock, plus the
//!   original global listen socket kept for robustness. The fast path
//!   and slow path of Figure 2 are implemented in
//!   [`crate::stack::TcpStack`] on top of this structure.

use std::collections::{HashMap, VecDeque};

use sim_core::{CoreId, CycleClass};
use sim_net::FlowTuple;
use sim_os::epoll::EpollId;
use sim_os::process::Pid;
use sim_os::{KernelCtx, Op};

use crate::costs::StackCosts;
use crate::established::flow_hash;
use crate::state::TcpState;
use crate::stats::StackStats;
use crate::tcb::{SockId, SockTable};

/// Which listen-table design is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ListenVariant {
    /// One shared listen socket per port.
    Global,
    /// SO_REUSEPORT per-process copies.
    ReusePort,
    /// Fastsocket Local Listen Table + global fallback.
    Local,
}

/// Identifies one listen socket (global, copy, or local).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LsId(u32);

/// One kernel listen socket with its queues.
#[derive(Debug)]
pub struct ListenSocket {
    /// Backing TCB (holds the `slock` and cache object).
    pub sock: SockId,
    /// Owning process for copies/local sockets; `None` for the shared
    /// global socket.
    pub owner: Option<Pid>,
    /// Core of the owning process (`None` for the global socket).
    pub core: Option<CoreId>,
    /// Pending (mid-handshake) connections, keyed by the connection's
    /// local-perspective flow.
    pub syn_queue: HashMap<FlowTuple, SockId>,
    /// Fully established connections awaiting `accept()`.
    pub accept_queue: VecDeque<SockId>,
    /// Maximum of `syn_queue` + `accept_queue` before SYN drops.
    pub backlog: usize,
    /// Epoll instances watching this socket (with the owner process of
    /// each instance, for wakeups, and the registered `epoll_data`).
    pub watchers: Vec<(EpollId, Pid, u64)>,
}

impl ListenSocket {
    /// Whether the backlog has room for another embryonic connection.
    pub fn has_room(&self) -> bool {
        self.syn_queue.len() + self.accept_queue.len() < self.backlog
    }
}

/// Connections stranded by [`ListenTable::destroy_process_socket`]:
/// mid-handshake embryos (with their flows, so they can be re-keyed
/// into another syn queue) and established-but-unaccepted sockets.
/// Both lists are sorted by [`SockId`] for determinism.
#[derive(Debug, Default)]
pub struct DestroyedListener {
    /// Mid-handshake connections from the dead socket's SYN queue.
    pub embryos: Vec<(FlowTuple, SockId)>,
    /// Established connections from the dead socket's accept queue.
    pub accepted: Vec<SockId>,
}

impl DestroyedListener {
    /// Whether the dead listener stranded nothing.
    pub fn is_empty(&self) -> bool {
        self.embryos.is_empty() && self.accepted.is_empty()
    }

    /// Total stranded connections.
    pub fn len(&self) -> usize {
        self.embryos.len() + self.accepted.len()
    }
}

#[derive(Debug)]
struct PortEntry {
    global: LsId,
    copies: Vec<LsId>,
    local: Vec<Option<LsId>>,
}

/// The listen table for all ports.
#[derive(Debug)]
pub struct ListenTable {
    variant: ListenVariant,
    sockets: Vec<ListenSocket>,
    by_port: HashMap<u16, PortEntry>,
    cores: usize,
}

impl ListenTable {
    /// Creates an empty table for a machine with `cores` cores.
    pub fn new(variant: ListenVariant, cores: usize) -> Self {
        ListenTable {
            variant,
            sockets: Vec::new(),
            by_port: HashMap::new(),
            cores,
        }
    }

    /// The active variant.
    pub fn variant(&self) -> ListenVariant {
        self.variant
    }

    fn push_socket(
        &mut self,
        ctx: &mut KernelCtx,
        socks: &mut SockTable,
        port: u16,
        backlog: usize,
        owner: Option<Pid>,
        core: CoreId,
    ) -> LsId {
        let flow = FlowTuple::new(
            std::net::Ipv4Addr::UNSPECIFIED,
            port,
            std::net::Ipv4Addr::UNSPECIFIED,
            0,
        );
        let sock = socks.alloc(ctx, flow, TcpState::Listen, false, core);
        let id = LsId(self.sockets.len() as u32);
        self.sockets.push(ListenSocket {
            sock,
            owner,
            core: owner.map(|_| core),
            syn_queue: HashMap::new(),
            accept_queue: VecDeque::new(),
            backlog,
            watchers: Vec::new(),
        });
        id
    }

    /// `listen()`: creates the original (global) listen socket for
    /// `port`. Must be called once per port before copies or local
    /// listen sockets are added; a duplicate `listen()` is reported to
    /// the sanitizer (when enabled) and returns the existing socket
    /// (`EADDRINUSE` in a real kernel).
    pub fn listen(
        &mut self,
        ctx: &mut KernelCtx,
        socks: &mut SockTable,
        port: u16,
        backlog: usize,
        core: CoreId,
    ) -> LsId {
        if let Some(entry) = self.by_port.get(&port) {
            ctx.checker.invariant_violation(
                "listen_table",
                core.0,
                format!("port {port} already listened"),
            );
            return entry.global;
        }
        let global = self.push_socket(ctx, socks, port, backlog, None, core);
        let cores = self.cores;
        self.by_port.insert(
            port,
            PortEntry {
                global,
                copies: Vec::new(),
                local: vec![None; cores],
            },
        );
        global
    }

    /// `SO_REUSEPORT`: adds a per-process copy of the listen socket.
    pub fn add_reuseport_copy(
        &mut self,
        ctx: &mut KernelCtx,
        socks: &mut SockTable,
        port: u16,
        backlog: usize,
        owner: Pid,
        core: CoreId,
    ) -> LsId {
        debug_assert_eq!(self.variant, ListenVariant::ReusePort);
        let id = self.push_socket(ctx, socks, port, backlog, Some(owner), core);
        self.entry_mut(port).copies.push(id);
        id
    }

    /// Fastsocket `local_listen()`: copies the listen socket into
    /// `core`'s local listen table (Figure 2, step 2).
    pub fn local_listen(
        &mut self,
        ctx: &mut KernelCtx,
        socks: &mut SockTable,
        port: u16,
        backlog: usize,
        owner: Pid,
        core: CoreId,
    ) -> LsId {
        debug_assert_eq!(self.variant, ListenVariant::Local);
        if let Some(existing) = self.entry(port).local[core.index()] {
            // Double registration is a workload bug, not a kernel one:
            // report it and hand back the existing local socket.
            ctx.checker.invariant_violation(
                "listen_table",
                core.0,
                format!("core {core} already has a local listen socket for port {port}"),
            );
            return existing;
        }
        let id = self.push_socket(ctx, socks, port, backlog, Some(owner), core);
        self.entry_mut(port).local[core.index()] = Some(id);
        id
    }

    /// Simulates the owner process of `core`'s local listen socket (or
    /// reuseport copy) crashing: the kernel destroys the copied socket.
    /// Embryonic and un-accepted connections on it are returned for the
    /// caller to migrate to the global fallback (Fastsocket) or to
    /// reset/free (stock kernels). Both lists come back sorted by
    /// socket id so every downstream decision is deterministic — the
    /// syn queue is a `HashMap` and drains in random order.
    pub fn destroy_process_socket(&mut self, port: u16, core: CoreId) -> DestroyedListener {
        let removed: Option<LsId> = match self.variant {
            ListenVariant::Local => self.entry_mut(port).local[core.index()].take(),
            ListenVariant::ReusePort => {
                let victim = self.by_port[&port]
                    .copies
                    .iter()
                    .copied()
                    .find(|&id| self.sockets[id.0 as usize].core == Some(core));
                if let Some(v) = victim {
                    self.entry_mut(port).copies.retain(|&id| id != v);
                }
                victim
            }
            ListenVariant::Global => None,
        };
        match removed {
            Some(id) => {
                let ls = &mut self.sockets[id.0 as usize];
                let mut embryos: Vec<(FlowTuple, SockId)> = ls.syn_queue.drain().collect();
                embryos.sort_unstable_by_key(|&(_, s)| s);
                let accepted: Vec<SockId> = ls.accept_queue.drain(..).collect();
                ls.watchers.clear();
                DestroyedListener { embryos, accepted }
            }
            None => DestroyedListener::default(),
        }
    }

    fn entry(&self, port: u16) -> &PortEntry {
        self.by_port
            .get(&port)
            .unwrap_or_else(|| panic!("port {port} is not listened"))
    }

    fn entry_mut(&mut self, port: u16) -> &mut PortEntry {
        self.by_port
            .get_mut(&port)
            .unwrap_or_else(|| panic!("port {port} is not listened"))
    }

    /// Whether any listen socket exists for `port` (RFD rule 3 probe).
    pub fn has_listener(&self, port: u16) -> bool {
        self.by_port.contains_key(&port)
    }

    /// `inet_lookup_listener`: finds the listen socket that should take
    /// a SYN arriving on `core` for `flow` (local perspective), charging
    /// the variant's lookup cost. Returns `None` when the port is not
    /// listened (caller sends RST).
    #[allow(clippy::too_many_arguments)]
    pub fn lookup(
        &mut self,
        ctx: &mut KernelCtx,
        op: &mut Op,
        core: CoreId,
        flow: &FlowTuple,
        socks: &SockTable,
        costs: &StackCosts,
        stats: &mut StackStats,
    ) -> Option<LsId> {
        op.trace_enter(sim_trace::TraceLabel::ListenLookup);
        let found = self.lookup_inner(ctx, op, core, flow, socks, costs, stats);
        op.trace_exit(sim_trace::TraceLabel::ListenLookup);
        found
    }

    #[allow(clippy::too_many_arguments)]
    fn lookup_inner(
        &mut self,
        ctx: &mut KernelCtx,
        op: &mut Op,
        core: CoreId,
        flow: &FlowTuple,
        socks: &SockTable,
        costs: &StackCosts,
        stats: &mut StackStats,
    ) -> Option<LsId> {
        let port = flow.src_port; // local perspective: src = local = service port
        stats.listen_lookups += 1;
        op.work(CycleClass::ListenLookup, costs.listen_lookup);
        let entry = self.by_port.get(&port)?;
        match self.variant {
            ListenVariant::Global => {
                stats.listen_entries_walked += 1;
                let ls = &self.sockets[entry.global.0 as usize];
                op.touch(ctx, socks.get(ls.sock).obj);
                Some(entry.global)
            }
            ListenVariant::ReusePort => {
                // Walk the whole bucket, touching every copy's socket
                // (they live on different cores), then select by flow
                // hash — `reuseport_select_sock`.
                let n = entry.copies.len();
                if n == 0 {
                    stats.listen_entries_walked += 1;
                    let ls = &self.sockets[entry.global.0 as usize];
                    op.touch(ctx, socks.get(ls.sock).obj);
                    return Some(entry.global);
                }
                stats.listen_entries_walked += n as u64;
                op.work(CycleClass::ListenLookup, costs.listen_walk_entry * n as u64);
                let copies: Vec<LsId> = entry.copies.clone();
                for &c in &copies {
                    let obj = socks.get(self.sockets[c.0 as usize].sock).obj;
                    op.touch_class(ctx, obj, CycleClass::ListenLookup);
                }
                let pick = (flow_hash(flow) as usize) % n;
                Some(copies[pick])
            }
            ListenVariant::Local => {
                match entry.local[core.index()] {
                    Some(local) => {
                        // Fast path: O(1), core-local.
                        stats.listen_entries_walked += 1;
                        let obj = socks.get(self.sockets[local.0 as usize].sock).obj;
                        op.touch(ctx, obj);
                        Some(local)
                    }
                    None => {
                        // Slow path (Figure 2, step 11): fall back to
                        // the global listen socket.
                        stats.listen_entries_walked += 1;
                        let ls = &self.sockets[entry.global.0 as usize];
                        op.touch(ctx, socks.get(ls.sock).obj);
                        Some(entry.global)
                    }
                }
            }
        }
    }

    /// The global listen socket for `port`.
    pub fn global_of(&self, port: u16) -> LsId {
        self.entry(port).global
    }

    /// The local listen socket of `core` for `port`, if present.
    pub fn local_of(&self, port: u16, core: CoreId) -> Option<LsId> {
        self.entry(port).local[core.index()]
    }

    /// The reuseport copy owned by the process on `core`, if present.
    pub fn copy_of(&self, port: u16, core: CoreId) -> Option<LsId> {
        self.entry(port)
            .copies
            .iter()
            .copied()
            .find(|&id| self.sockets[id.0 as usize].core == Some(core))
    }

    /// Access a listen socket.
    pub fn ls(&self, id: LsId) -> &ListenSocket {
        &self.sockets[id.0 as usize]
    }

    /// Access a listen socket mutably.
    pub fn ls_mut(&mut self, id: LsId) -> &mut ListenSocket {
        &mut self.sockets[id.0 as usize]
    }

    /// All ports with listeners.
    pub fn ports(&self) -> impl Iterator<Item = u16> + '_ {
        self.by_port.keys().copied()
    }
}
