//! Stack-level counters used by the experiment harnesses.

use serde::{Deserialize, Serialize};

/// Counters the TCP stack accumulates during a run.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct StackStats {
    /// Passive connections fully established (3-way handshake done).
    pub passive_established: u64,
    /// Active connections fully established.
    pub active_established: u64,
    /// Connections that reached CLOSED (both directions finished).
    pub closed: u64,
    /// RST segments sent.
    pub rst_sent: u64,
    /// SYNs dropped because the listen backlog was full.
    pub syn_drops: u64,
    /// Segments dropped because no matching socket existed.
    pub no_match_drops: u64,
    /// `accept()`s served from a Fastsocket *local* listen table.
    pub accepts_local: u64,
    /// `accept()`s served from the global listen socket (slow path, or
    /// the only path for non-Fastsocket kernels).
    pub accepts_global: u64,
    /// Listen-bucket entries walked by `inet_lookup_listener` (for the
    /// SO_REUSEPORT O(n) analysis).
    pub listen_entries_walked: u64,
    /// Listen lookups performed.
    pub listen_lookups: u64,
    /// Incoming packets belonging to *active* connections.
    pub active_in_packets: u64,
    /// Of those, packets the NIC delivered to the owning app's core
    /// (measured before any RFD software steering) — Figure 5b's "local
    /// packet proportion".
    pub active_in_local: u64,
    /// Packets RFD re-steered to another core in software.
    pub steered_packets: u64,
    /// Packets classified by RFD rule 1 (well-known source port).
    pub rfd_rule1: u64,
    /// Packets classified by RFD rule 2 (well-known destination port).
    pub rfd_rule2: u64,
    /// Packets classified by RFD rule 3 (listen-table probe).
    pub rfd_rule3: u64,
    /// Segments retransmitted after an RTO.
    pub retransmits: u64,
    /// Duplicate segments re-ACKed and dropped.
    pub duplicate_segments: u64,
    /// SYN cookies sent (backlog full).
    pub syn_cookies_sent: u64,
    /// Connections established by validating a SYN cookie.
    pub syn_cookies_ok: u64,
    /// Connections aborted after exhausting retransmission attempts.
    pub rtx_abandoned: u64,
    /// TIME_WAIT sockets recycled early by a fresh SYN (tcp_tw_reuse).
    pub tw_reused: u64,
    /// SYNs answered with RST because no listener was bound to the
    /// destination port (connection refused).
    pub syn_refusals: u64,
    /// SYNs dropped by the TCB memory-pressure cap (admission control
    /// under orphan/embryo buildup; Linux's `tcp_max_orphans` analogue).
    pub mem_pressure_drops: u64,
    /// Data-plane (sliding-window bulk transfer) counters. `None`
    /// unless `StackConfig::cc` armed the data plane and a counter
    /// fired, and elided from the serialized form when `None`, so
    /// legacy report digests are unchanged.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub dp: Option<DataPlaneStats>,
    /// Memory-pressure reaction counters (`sim-res`). `None` unless
    /// `StackConfig::mem` armed the accounting subsystem, and elided
    /// from the serialized form when `None`, so legacy report digests
    /// are unchanged.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub mem: Option<sim_res::MemStats>,
}

/// Counters specific to the sliding-window data plane.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct DataPlaneStats {
    /// Segments retransmitted by dup-ACK fast retransmit (as opposed to
    /// the RTO-driven `StackStats::retransmits`).
    pub fast_retransmits: u64,
    /// Data segments dropped because they arrived beyond `rcv_nxt` (no
    /// reassembly queue is modeled) or overran the receive budget.
    pub out_of_order_segments: u64,
    /// ACKs carrying an ECN echo (ECE) consumed by the congestion
    /// controller.
    pub ecn_echoes: u64,
    /// Payload bytes emitted by the sliding-window send path.
    pub bytes_streamed: u64,
}

impl StackStats {
    /// Figure 5b's metric: fraction of active-connection incoming
    /// packets that were NIC-delivered to the right core.
    pub fn local_packet_proportion(&self) -> f64 {
        if self.active_in_packets == 0 {
            0.0
        } else {
            self.active_in_local as f64 / self.active_in_packets as f64
        }
    }

    /// Average listen-bucket entries walked per lookup.
    pub fn avg_listen_walk(&self) -> f64 {
        if self.listen_lookups == 0 {
            0.0
        } else {
            self.listen_entries_walked as f64 / self.listen_lookups as f64
        }
    }

    /// Total connections established.
    pub fn established(&self) -> u64 {
        self.passive_established + self.active_established
    }

    /// The data-plane counters, materializing them on first use.
    pub fn dp_mut(&mut self) -> &mut DataPlaneStats {
        self.dp.get_or_insert_with(DataPlaneStats::default)
    }

    /// The memory-pressure counters, materializing them on first use.
    pub fn mem_mut(&mut self) -> &mut sim_res::MemStats {
        self.mem.get_or_insert_with(sim_res::MemStats::default)
    }

    /// Folds `other`'s counters into `self`. Used when per-lane stacks
    /// are merged into one machine-wide report; `dp` stays `None` only
    /// if no lane armed the data plane, preserving legacy digests.
    pub fn merge(&mut self, other: &StackStats) {
        self.passive_established += other.passive_established;
        self.active_established += other.active_established;
        self.closed += other.closed;
        self.rst_sent += other.rst_sent;
        self.syn_drops += other.syn_drops;
        self.no_match_drops += other.no_match_drops;
        self.accepts_local += other.accepts_local;
        self.accepts_global += other.accepts_global;
        self.listen_entries_walked += other.listen_entries_walked;
        self.listen_lookups += other.listen_lookups;
        self.active_in_packets += other.active_in_packets;
        self.active_in_local += other.active_in_local;
        self.steered_packets += other.steered_packets;
        self.rfd_rule1 += other.rfd_rule1;
        self.rfd_rule2 += other.rfd_rule2;
        self.rfd_rule3 += other.rfd_rule3;
        self.retransmits += other.retransmits;
        self.duplicate_segments += other.duplicate_segments;
        self.syn_cookies_sent += other.syn_cookies_sent;
        self.syn_cookies_ok += other.syn_cookies_ok;
        self.rtx_abandoned += other.rtx_abandoned;
        self.tw_reused += other.tw_reused;
        self.syn_refusals += other.syn_refusals;
        self.mem_pressure_drops += other.mem_pressure_drops;
        if let Some(odp) = &other.dp {
            let dp = self.dp_mut();
            dp.fast_retransmits += odp.fast_retransmits;
            dp.out_of_order_segments += odp.out_of_order_segments;
            dp.ecn_echoes += odp.ecn_echoes;
            dp.bytes_streamed += odp.bytes_streamed;
        }
        if let Some(omem) = &other.mem {
            self.mem_mut().merge(omem);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportions_handle_zero() {
        let s = StackStats::default();
        assert_eq!(s.local_packet_proportion(), 0.0);
        assert_eq!(s.avg_listen_walk(), 0.0);
    }

    #[test]
    fn proportions_compute() {
        let s = StackStats {
            active_in_packets: 200,
            active_in_local: 50,
            listen_lookups: 10,
            listen_entries_walked: 240,
            passive_established: 3,
            active_established: 4,
            ..StackStats::default()
        };
        assert!((s.local_packet_proportion() - 0.25).abs() < 1e-12);
        assert!((s.avg_listen_walk() - 24.0).abs() < 1e-12);
        assert_eq!(s.established(), 7);
    }

    #[test]
    fn merge_sums_counters_and_dp() {
        let mut a = StackStats {
            passive_established: 2,
            retransmits: 1,
            ..StackStats::default()
        };
        let b = StackStats {
            passive_established: 3,
            tw_reused: 4,
            dp: Some(DataPlaneStats {
                fast_retransmits: 5,
                bytes_streamed: 100,
                ..DataPlaneStats::default()
            }),
            ..StackStats::default()
        };
        a.merge(&b);
        assert_eq!(a.passive_established, 5);
        assert_eq!(a.retransmits, 1);
        assert_eq!(a.tw_reused, 4);
        let dp = a.dp.expect("dp materialized by merge");
        assert_eq!(dp.fast_retransmits, 5);
        assert_eq!(dp.bytes_streamed, 100);
    }

    #[test]
    fn merge_without_dp_keeps_none() {
        let mut a = StackStats::default();
        a.merge(&StackStats::default());
        assert!(a.dp.is_none());
        assert!(a.mem.is_none());
    }

    #[test]
    fn merge_sums_mem_counters() {
        let mut a = StackStats::default();
        a.mem_mut().window_clamps = 2;
        let mut b = StackStats::default();
        b.mem_mut().window_clamps = 3;
        b.mem_mut().orphans_killed = 1;
        a.merge(&b);
        let mem = a.mem.expect("mem block survives merge");
        assert_eq!(mem.window_clamps, 5);
        assert_eq!(mem.orphans_killed, 1);
    }
}
