//! Cycle costs of TCP-stack operations.
//!
//! One struct holds every tunable cost so calibration lives in a single
//! place. Defaults are set so that one short-lived HTTP connection costs
//! ~115k cycles of kernel+app work on an uncontended core — matching the
//! paper's single-core throughput of roughly 23k connections/sec at
//! 2.7 GHz (Figure 4).

use serde::{Deserialize, Serialize};
use sim_core::Cycles;

/// Tunable cycle costs of the TCP stack paths.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct StackCosts {
    /// NET_RX per-packet base processing (driver, IP layer).
    pub softirq_per_packet: Cycles,
    /// Established-table lookup base cost.
    pub est_lookup: Cycles,
    /// Listen lookup base cost (`inet_lookup_listener`).
    pub listen_lookup: Cycles,
    /// Listen lookup extra cost per bucket entry walked (the
    /// SO_REUSEPORT O(n) term; cache touches are charged separately).
    pub listen_walk_entry: Cycles,
    /// SYN processing: create request sock, build/queue SYN-ACK.
    pub syn_processing: Cycles,
    /// Third-ACK processing: promote to established, queue to accept.
    pub ack_promotion: Cycles,
    /// In-order data segment processing (excluding copy).
    pub data_segment: Cycles,
    /// Per-byte cost of copying payload to/from socket buffers.
    pub copy_per_byte_milli: Cycles,
    /// FIN/teardown segment processing.
    pub fin_processing: Cycles,
    /// Building and sending an RST.
    pub rst: Cycles,
    /// TX path per outgoing packet (qdisc + driver).
    pub tx_per_packet: Cycles,
    /// Receive Flow Deliver software steering of one packet.
    pub steer: Cycles,
    /// `accept()` fixed cost (syscall + dequeue bookkeeping).
    pub accept: Cycles,
    /// `connect()` fixed cost (route, TCB setup, SYN build).
    pub connect: Cycles,
    /// `read()`/`recv()` fixed cost.
    pub recv: Cycles,
    /// `write()`/`send()` fixed cost.
    pub send: Cycles,
    /// `close()` fixed cost.
    pub close: Cycles,
    /// Protected time under a connection's `slock` in softirq context.
    pub slock_hold_softirq: Cycles,
    /// Protected time under a connection's `slock` in process context.
    pub slock_hold_app: Cycles,
    /// Protected time under the listen socket's `slock` for SYN-queue
    /// and accept-queue manipulation in softirq.
    pub listen_hold_softirq: Cycles,
    /// Protected time under the listen socket's `slock` in `accept()`.
    pub listen_hold_accept: Cycles,
    /// Protected time under an `ehash` bucket lock (insert/remove).
    pub ehash_hold: Cycles,
    /// Protected time under the global port-allocator lock.
    pub port_alloc_hold: Cycles,
    /// FD allocation in the process's table.
    pub fd_alloc: Cycles,
    /// User↔kernel transition cost, charged per syscall (amortized to
    /// one per wakeup when FlexSC-style syscall batching is enabled —
    /// the paper's §5 future work).
    pub syscall_entry: Cycles,
}

impl Default for StackCosts {
    fn default() -> Self {
        StackCosts {
            softirq_per_packet: 3_900,
            est_lookup: 700,
            listen_lookup: 250,
            listen_walk_entry: 380,
            syn_processing: 5_400,
            ack_promotion: 6_400,
            data_segment: 3_000,
            copy_per_byte_milli: 900, // 0.9 cycles per byte
            fin_processing: 3_200,
            rst: 1_400,
            tx_per_packet: 2_500,
            steer: 700,
            accept: 3_900,
            connect: 4_500,
            recv: 2_500,
            send: 3_100,
            close: 3_300,
            slock_hold_softirq: 300,
            slock_hold_app: 250,
            listen_hold_softirq: 300,
            listen_hold_accept: 300,
            ehash_hold: 260,
            port_alloc_hold: 380,
            fd_alloc: 450,
            syscall_entry: 1_100,
        }
    }
}

impl StackCosts {
    /// Cost of copying `bytes` of payload.
    pub fn copy_cost(&self, bytes: u32) -> Cycles {
        (u64::from(bytes) * self.copy_per_byte_milli) / 1_000
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_cost_scales_with_bytes() {
        let c = StackCosts::default();
        assert_eq!(c.copy_cost(0), 0);
        let one_k = c.copy_cost(1_000);
        let two_k = c.copy_cost(2_000);
        assert_eq!(two_k, one_k * 2);
        assert_eq!(one_k, c.copy_per_byte_milli);
    }

    #[test]
    fn defaults_are_positive() {
        let c = StackCosts::default();
        assert!(c.softirq_per_packet > 0);
        assert!(c.accept > 0);
        assert!(c.listen_walk_entry > 0);
    }
}
