//! Ephemeral port allocation for active connections.
//!
//! Two allocators are modelled:
//!
//! * [`PortAllocVariant::Global`] — the stock kernel's allocator: a
//!   single cursor over the ephemeral range protected by a global lock
//!   (every `connect()` on every core serializes here);
//! * [`PortAllocVariant::PerCore`] — Fastsocket's RFD-aware allocator:
//!   core `c` only hands out ports with `hash(p) = c`, walking the
//!   range with stride `mask+1`; allocation is lock-free and the chosen
//!   port *encodes the core*, which is what Receive Flow Deliver decodes
//!   on the receive side.

use std::collections::HashSet;
use std::net::Ipv4Addr;

use sim_core::{CoreId, CycleClass};
use sim_os::{KernelCtx, Op};
use sim_sync::{LockClass, LockId};

use crate::costs::StackCosts;
use crate::rfd::Rfd;

/// Start of the ephemeral port range (Linux default).
pub const EPHEMERAL_MIN: u16 = 32_768;
/// End of the ephemeral port range, exclusive (Linux default 61000).
pub const EPHEMERAL_MAX: u16 = 61_000;

/// Which allocator is in use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortAllocVariant {
    /// Global cursor + global lock.
    Global,
    /// Per-core RFD-partitioned, lock-free.
    PerCore,
}

/// The ephemeral port allocator.
#[derive(Debug)]
pub struct PortAlloc {
    variant: PortAllocVariant,
    rfd: Rfd,
    lock: Option<LockId>,
    cursor: u16,
    per_core_cursor: Vec<u16>,
    /// Ports in use, per destination (a port may be reused towards a
    /// different destination).
    used: HashSet<(Ipv4Addr, u16, u16)>,
}

impl PortAlloc {
    /// Creates the allocator; the `Global` variant registers its lock.
    pub fn new(ctx: &mut KernelCtx, variant: PortAllocVariant, cores: u16) -> Self {
        Self::with_rfd(ctx, variant, cores, Rfd::new(cores))
    }

    /// Creates the allocator with an explicit RFD engine (needed when
    /// the security shift moves the core field).
    pub fn with_rfd(ctx: &mut KernelCtx, variant: PortAllocVariant, cores: u16, rfd: Rfd) -> Self {
        let lock = match variant {
            PortAllocVariant::Global => Some(ctx.locks.register(LockClass::PortAlloc)),
            PortAllocVariant::PerCore => None,
        };
        let per_core_cursor = (0..cores)
            .map(|c| {
                // First port in the range with hash(p) == c.
                let mut p = EPHEMERAL_MIN;
                while !rfd.port_matches_core(p, CoreId(c)) {
                    p += 1;
                }
                p
            })
            .collect();
        PortAlloc {
            variant,
            rfd,
            lock,
            cursor: EPHEMERAL_MIN,
            per_core_cursor,
            used: HashSet::new(),
        }
    }

    /// Allocates a source port towards `(dst_ip, dst_port)` from `core`,
    /// charging costs to `op`. Returns `None` when the range towards
    /// that destination is exhausted.
    pub fn alloc(
        &mut self,
        ctx: &mut KernelCtx,
        op: &mut Op,
        core: CoreId,
        dst_ip: Ipv4Addr,
        dst_port: u16,
        costs: &StackCosts,
    ) -> Option<u16> {
        match self.variant {
            PortAllocVariant::Global => {
                let lock = self.lock.expect("global variant has a lock");
                op.lock_do(
                    &mut ctx.locks,
                    lock,
                    CycleClass::TcbManage,
                    costs.port_alloc_hold,
                );
                let span = (EPHEMERAL_MAX - EPHEMERAL_MIN) as u32;
                for _ in 0..span {
                    let p = self.cursor;
                    self.cursor = if self.cursor + 1 >= EPHEMERAL_MAX {
                        EPHEMERAL_MIN
                    } else {
                        self.cursor + 1
                    };
                    if self.used.insert((dst_ip, dst_port, p)) {
                        return Some(p);
                    }
                }
                None
            }
            PortAllocVariant::PerCore => {
                op.work(CycleClass::TcbManage, costs.port_alloc_hold / 2);
                let stride = (u32::from(self.rfd.mask()) + 1) << self.rfd.shift();
                let slots = (EPHEMERAL_MAX - EPHEMERAL_MIN) as u32 / stride.max(1) + 2;
                // Each stride window contains 2^shift ports for this
                // core; advance port-by-port within the window, then
                // jump to the next window.
                for _ in 0..slots * (1 << self.rfd.shift()) {
                    let p = self.per_core_cursor[core.index()];
                    // Advance the cursor to the next matching port.
                    let mut next = u32::from(p) + 1;
                    loop {
                        if next >= u32::from(EPHEMERAL_MAX) {
                            next = u32::from(EPHEMERAL_MIN);
                        }
                        if self.rfd.port_matches_core(next as u16, core) {
                            break;
                        }
                        next += 1;
                    }
                    self.per_core_cursor[core.index()] = next as u16;
                    debug_assert!(self.rfd.port_matches_core(p, core));
                    if self.used.insert((dst_ip, dst_port, p)) {
                        return Some(p);
                    }
                }
                None
            }
        }
    }

    /// Releases a port previously allocated towards a destination.
    pub fn release(&mut self, dst_ip: Ipv4Addr, dst_port: u16, port: u16) {
        let removed = self.used.remove(&(dst_ip, dst_port, port));
        debug_assert!(removed, "releasing port {port} that was not allocated");
    }

    /// Number of ports currently allocated.
    pub fn in_use(&self) -> usize {
        self.used.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::SimRng;
    use sim_mem::{CacheCosts, CacheModel};
    use sim_sync::{LockCosts, LockTable};

    fn ctx(cores: usize) -> KernelCtx {
        KernelCtx::new(
            cores,
            LockTable::new(LockCosts::default()),
            CacheModel::new(CacheCosts::default()),
            SimRng::seed(17),
        )
    }

    fn dst() -> (Ipv4Addr, u16) {
        (Ipv4Addr::new(10, 0, 0, 100), 80)
    }

    #[test]
    fn per_core_ports_encode_the_core() {
        let mut c = ctx(24);
        let mut alloc = PortAlloc::new(&mut c, PortAllocVariant::PerCore, 24);
        let costs = StackCosts::default();
        let rfd = Rfd::new(24);
        let (ip, port) = dst();
        for core in [0u16, 5, 11, 23] {
            let mut op = c.begin(CoreId(core), 0);
            for _ in 0..50 {
                let p = alloc
                    .alloc(&mut c, &mut op, CoreId(core), ip, port, &costs)
                    .unwrap();
                assert!(
                    rfd.port_matches_core(p, CoreId(core)),
                    "port {p} core {core}"
                );
                assert!((EPHEMERAL_MIN..EPHEMERAL_MAX).contains(&p));
            }
            op.commit(&mut c.cpu);
        }
    }

    #[test]
    fn global_allocator_never_reuses_inflight_port() {
        let mut c = ctx(2);
        let mut alloc = PortAlloc::new(&mut c, PortAllocVariant::Global, 2);
        let costs = StackCosts::default();
        let (ip, port) = dst();
        let mut seen = HashSet::new();
        let mut op = c.begin(CoreId(0), 0);
        for _ in 0..2_000 {
            let p = alloc
                .alloc(&mut c, &mut op, CoreId(0), ip, port, &costs)
                .unwrap();
            assert!(seen.insert(p), "duplicate port {p}");
        }
        op.commit(&mut c.cpu);
        assert_eq!(alloc.in_use(), 2_000);
    }

    #[test]
    fn released_ports_are_reusable() {
        let mut c = ctx(1);
        let mut alloc = PortAlloc::new(&mut c, PortAllocVariant::PerCore, 1);
        let costs = StackCosts::default();
        let (ip, port) = dst();
        let mut op = c.begin(CoreId(0), 0);
        let p = alloc
            .alloc(&mut c, &mut op, CoreId(0), ip, port, &costs)
            .unwrap();
        alloc.release(ip, port, p);
        assert_eq!(alloc.in_use(), 0);
        // The cursor has moved on, but after a full wrap the port comes
        // back; just verify a new allocation still succeeds.
        assert!(alloc
            .alloc(&mut c, &mut op, CoreId(0), ip, port, &costs)
            .is_some());
        op.commit(&mut c.cpu);
    }

    #[test]
    fn same_port_ok_for_different_destinations() {
        let mut c = ctx(1);
        let mut alloc = PortAlloc::new(&mut c, PortAllocVariant::Global, 1);
        let costs = StackCosts::default();
        let mut op = c.begin(CoreId(0), 0);
        let a = alloc
            .alloc(
                &mut c,
                &mut op,
                CoreId(0),
                Ipv4Addr::new(10, 0, 0, 1),
                80,
                &costs,
            )
            .unwrap();
        // Exhaust nothing: just check the tuple-keyed used set allows
        // the same port to a different destination.
        alloc.used.insert((Ipv4Addr::new(10, 0, 0, 2), 80, a));
        op.commit(&mut c.cpu);
        assert_eq!(alloc.in_use(), 2);
    }

    #[test]
    fn global_variant_contends_across_cores() {
        let mut c = ctx(4);
        let mut alloc = PortAlloc::new(&mut c, PortAllocVariant::Global, 4);
        let costs = StackCosts::default();
        let (ip, port) = dst();
        for core in 0..4u16 {
            let mut op = c.begin(CoreId(core), 0);
            alloc
                .alloc(&mut c, &mut op, CoreId(core), ip, port, &costs)
                .unwrap();
            op.commit(&mut c.cpu);
        }
        assert!(c.locks.stats(LockClass::PortAlloc).contentions > 0);
    }

    #[test]
    fn per_core_variant_takes_no_lock() {
        let mut c = ctx(4);
        let mut alloc = PortAlloc::new(&mut c, PortAllocVariant::PerCore, 4);
        let costs = StackCosts::default();
        let (ip, port) = dst();
        for core in 0..4u16 {
            let mut op = c.begin(CoreId(core), 0);
            alloc
                .alloc(&mut c, &mut op, CoreId(core), ip, port, &costs)
                .unwrap();
            op.commit(&mut c.cpu);
        }
        assert_eq!(c.locks.stats(LockClass::PortAlloc).acquisitions, 0);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut c = ctx(1);
        let mut alloc = PortAlloc::new(&mut c, PortAllocVariant::Global, 1);
        let costs = StackCosts::default();
        let (ip, port) = dst();
        let mut op = c.begin(CoreId(0), 0);
        let span = (EPHEMERAL_MAX - EPHEMERAL_MIN) as usize;
        for _ in 0..span {
            assert!(alloc
                .alloc(&mut c, &mut op, CoreId(0), ip, port, &costs)
                .is_some());
        }
        assert_eq!(
            alloc.alloc(&mut c, &mut op, CoreId(0), ip, port, &costs),
            None
        );
        op.commit(&mut c.cpu);
    }
}
