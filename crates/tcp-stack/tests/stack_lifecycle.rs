//! End-to-end lifecycle tests for the simulated TCP stack: full
//! handshakes, data transfer and teardown through `net_rx`, across all
//! three kernel variants.

use sim_core::{CoreId, SimRng};
use sim_mem::{CacheCosts, CacheModel};
use sim_net::{FlowTuple, Packet, TcpFlags};
use sim_os::process::Pid;
use sim_os::KernelCtx;
use sim_sync::{LockClass, LockCosts, LockTable};
use std::net::Ipv4Addr;
use tcp_stack::stack::{
    OsServices, RxOutcome, StackConfig, TcpStack, MAX_RTO_BACKOFF_SHIFT, MAX_RTX_ATTEMPTS,
};
use tcp_stack::{AcceptSource, ListenVariant, SockId, TcpState};

const SERVER_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const CLIENT_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
const PORT: u16 = 80;

/// A test rig holding one simulated server kernel.
struct Rig {
    ctx: KernelCtx,
    os: OsServices,
    stack: TcpStack,
    now: u64,
}

impl Rig {
    fn new(config: StackConfig) -> Rig {
        let mut ctx = KernelCtx::new(
            config.cores as usize,
            LockTable::new(LockCosts::default()),
            CacheModel::new(CacheCosts::default()),
            SimRng::seed(99),
        );
        let os = OsServices::new(&mut ctx, &config);
        let stack = TcpStack::new(&mut ctx, config);
        Rig {
            ctx,
            os,
            stack,
            now: 0,
        }
    }

    /// Runs `f` as one costed operation on `core`, advancing time.
    fn op<T>(&mut self, core: CoreId, f: impl FnOnce(&mut Self, &mut sim_os::Op) -> T) -> T {
        let mut op = self.ctx.begin(core, self.now);
        let out = f(self, &mut op);
        let span = op.commit(&mut self.ctx.cpu);
        self.now = self.now.max(span.end) + 50;
        out
    }

    fn rx(&mut self, core: CoreId, pkt: Packet) -> RxOutcome {
        self.op(core, |rig, op| {
            rig.stack.net_rx(&mut rig.ctx, &mut rig.os, op, &pkt, false)
        })
    }

    /// Sets up the server listening per the configured variant, with
    /// one worker per core.
    fn listen_all(&mut self) {
        let cores = self.stack.config().cores;
        let variant = self.stack.config().listen;
        self.op(CoreId(0), |rig, op| {
            rig.stack.listen(&mut rig.ctx, op, PORT, 1024, CoreId(0));
        });
        for c in 0..cores {
            let pid = Pid(c as u32);
            match variant {
                ListenVariant::Global => {}
                ListenVariant::ReusePort => {
                    self.op(CoreId(c), |rig, op| {
                        rig.stack
                            .reuseport_listen(&mut rig.ctx, op, PORT, 1024, pid, CoreId(c));
                    });
                }
                ListenVariant::Local => {
                    self.op(CoreId(c), |rig, op| {
                        rig.stack
                            .local_listen(&mut rig.ctx, op, PORT, 1024, pid, CoreId(c));
                    });
                }
            }
        }
    }
}

/// A scripted TCP client endpoint for driving the server stack.
struct Client {
    flow: FlowTuple, // client perspective
    snd_nxt: u32,
    rcv_nxt: u32,
}

impl Client {
    fn new(src_port: u16) -> Client {
        Client {
            flow: FlowTuple::new(CLIENT_IP, src_port, SERVER_IP, PORT),
            snd_nxt: 1_000,
            rcv_nxt: 0,
        }
    }

    fn syn(&mut self) -> Packet {
        let p = Packet::new(self.flow, TcpFlags::SYN).with_seq(self.snd_nxt);
        self.snd_nxt = self.snd_nxt.wrapping_add(1);
        p
    }

    /// Consumes the server's SYN-ACK and produces the 3rd ACK.
    fn ack_synack(&mut self, synack: &Packet) -> Packet {
        assert!(synack.flags.syn() && synack.flags.ack(), "expected SYN-ACK");
        assert_eq!(synack.ack, self.snd_nxt, "server must ack our ISN+1");
        self.rcv_nxt = synack.seq.wrapping_add(1);
        Packet::new(self.flow, TcpFlags::ACK)
            .with_seq(self.snd_nxt)
            .with_ack(self.rcv_nxt)
    }

    fn data(&mut self, len: u16) -> Packet {
        let p = Packet::new(self.flow, TcpFlags::PSH | TcpFlags::ACK)
            .with_seq(self.snd_nxt)
            .with_ack(self.rcv_nxt);
        self.snd_nxt = self.snd_nxt.wrapping_add(u32::from(len));
        p.with_payload(len)
    }

    /// Absorbs a server segment (data or FIN), updating rcv_nxt.
    fn absorb(&mut self, pkt: &Packet) {
        self.rcv_nxt = self.rcv_nxt.wrapping_add(pkt.seq_len());
    }

    fn ack(&self) -> Packet {
        Packet::new(self.flow, TcpFlags::ACK)
            .with_seq(self.snd_nxt)
            .with_ack(self.rcv_nxt)
    }

    fn fin(&mut self) -> Packet {
        let p = Packet::new(self.flow, TcpFlags::FIN | TcpFlags::ACK)
            .with_seq(self.snd_nxt)
            .with_ack(self.rcv_nxt);
        self.snd_nxt = self.snd_nxt.wrapping_add(1);
        p
    }
}

/// Drives one complete HTTP-style exchange on `core`, returning the
/// accepted socket.
fn run_one_connection(rig: &mut Rig, core: CoreId, src_port: u16) -> SockId {
    let pid = Pid(core.0 as u32);
    let mut client = Client::new(src_port);

    // Handshake.
    let out = rig.rx(core, client.syn());
    assert_eq!(out.replies.len(), 1, "expected SYN-ACK");
    let third = client.ack_synack(&out.replies[0]);
    let out = rig.rx(core, third);
    assert!(out.replies.is_empty(), "3rd ACK needs no reply");

    // Accept.
    let (sock, _src) = rig
        .op(core, |rig, op| {
            rig.stack
                .accept(&mut rig.ctx, &mut rig.os, op, PORT, core, pid)
        })
        .expect("connection must be accepted");

    // Request.
    let out = rig.rx(core, client.data(600));
    assert_eq!(out.replies.len(), 1, "data must be ACKed");
    let (got, wnd_update) = rig.op(core, |rig, op| rig.stack.recv(&mut rig.ctx, op, sock));
    assert_eq!(got, 600);
    assert!(
        wnd_update.is_none(),
        "no window updates without a data plane"
    );

    // Response + server-initiated close.
    let resp = rig
        .op(core, |rig, op| {
            rig.stack.send(&mut rig.ctx, &mut rig.os, op, sock, 1200)
        })
        .expect("send on established socket");
    client.absorb(&resp);
    let fin = rig.op(core, |rig, op| {
        rig.stack.close(&mut rig.ctx, &mut rig.os, op, sock)
    });
    let fin = fin.expect("close sends FIN");
    client.absorb(&fin);

    // Client ACKs response+FIN, then FINs itself.
    let out = rig.rx(core, client.ack());
    assert!(out.time_wait.is_empty());
    let out = rig.rx(core, client.fin());
    assert_eq!(out.time_wait, vec![sock], "server entered TIME_WAIT");
    assert_eq!(out.replies.len(), 1, "FIN must be ACKed");

    // Recycle.
    let gen = rig.stack.sock_gen(sock);
    rig.stack.tw_expire(&mut rig.ctx, &mut rig.os, sock, gen);
    sock
}

#[test]
fn full_lifecycle_base_kernel() {
    let mut rig = Rig::new(StackConfig::base_linux(4));
    rig.listen_all();
    run_one_connection(&mut rig, CoreId(1), 40_001);
    let stats = rig.stack.stats();
    assert_eq!(stats.passive_established, 1);
    assert_eq!(stats.closed, 1);
    assert_eq!(stats.rst_sent, 0);
    assert_eq!(
        rig.stack.socks.live_count(),
        1,
        "only the listen socket remains"
    );
}

#[test]
fn full_lifecycle_reuseport() {
    let mut rig = Rig::new(StackConfig::linux_313(4));
    rig.listen_all();
    run_one_connection(&mut rig, CoreId(2), 40_002);
    let stats = rig.stack.stats();
    assert_eq!(stats.passive_established, 1);
    // ReusePort walks all 4 copies per lookup.
    assert!(
        stats.avg_listen_walk() >= 3.9,
        "walk={}",
        stats.avg_listen_walk()
    );
}

#[test]
fn full_lifecycle_fastsocket() {
    let mut rig = Rig::new(StackConfig::fastsocket(4));
    rig.listen_all();
    run_one_connection(&mut rig, CoreId(3), 40_003);
    let stats = rig.stack.stats();
    assert_eq!(stats.passive_established, 1);
    assert_eq!(stats.accepts_local, 1, "fast path used");
    assert_eq!(stats.accepts_global, 0);
    // O(1) lookups.
    assert!(stats.avg_listen_walk() <= 1.01);
}

#[test]
fn fastsocket_many_connections_zero_contention() {
    // With complete locality (all activity on one connection's core),
    // the partitioned design contends on nothing.
    let mut rig = Rig::new(StackConfig::fastsocket(4));
    rig.listen_all();
    for i in 0..32 {
        let core = CoreId(i % 4);
        run_one_connection(&mut rig, core, 41_000 + i);
    }
    for class in [
        LockClass::DcacheLock,
        LockClass::InodeLock,
        LockClass::EhashLock,
    ] {
        assert_eq!(
            rig.ctx.locks.stats(class).acquisitions,
            0,
            "{class:?} must not be taken at all under Fastsocket"
        );
    }
    assert_eq!(rig.stack.stats().passive_established, 32);
}

#[test]
fn syn_to_unlistened_port_is_reset() {
    let mut rig = Rig::new(StackConfig::base_linux(2));
    rig.listen_all();
    let flow = FlowTuple::new(CLIENT_IP, 40_000, SERVER_IP, 8_080);
    let out = rig.rx(CoreId(0), Packet::new(flow, TcpFlags::SYN).with_seq(5));
    assert_eq!(out.replies.len(), 1);
    assert!(out.replies[0].flags.rst(), "expected RST");
    assert_eq!(rig.stack.stats().rst_sent, 1);
}

#[test]
fn backlog_overflow_drops_syn_without_cookies() {
    let mut config = StackConfig::base_linux(1);
    config.syn_cookies = false;
    let mut rig = Rig::new(config);
    rig.op(CoreId(0), |rig, op| {
        rig.stack.listen(&mut rig.ctx, op, PORT, 4, CoreId(0));
    });
    for i in 0..8u16 {
        let mut c = Client::new(42_000 + i);
        rig.rx(CoreId(0), c.syn());
    }
    let stats = rig.stack.stats();
    assert_eq!(stats.syn_drops, 4, "4 fit in the backlog, 4 dropped");
}

#[test]
fn backlog_overflow_answers_with_syn_cookies() {
    // Default kernels answer overflow SYNs statelessly (§1's security
    // requirement), and the cookie ACK completes the handshake.
    let mut rig = Rig::new(StackConfig::base_linux(1));
    rig.op(CoreId(0), |rig, op| {
        rig.stack.listen(&mut rig.ctx, op, PORT, 2, CoreId(0));
    });
    // Fill the backlog with embryonic connections.
    for i in 0..2u16 {
        let mut c = Client::new(42_100 + i);
        rig.rx(CoreId(0), c.syn());
    }
    // The next SYN gets a cookie SYN-ACK, not a drop.
    let mut c = Client::new(42_200);
    let out = rig.rx(CoreId(0), c.syn());
    assert_eq!(out.replies.len(), 1);
    assert!(out.replies[0].flags.syn() && out.replies[0].flags.ack());
    assert_eq!(rig.stack.stats().syn_cookies_sent, 1);
    assert_eq!(rig.stack.stats().syn_drops, 0);

    // Completing the handshake with the cookie establishes the
    // connection even though no SYN-queue entry ever existed.
    let third = c.ack_synack(&out.replies[0]);
    rig.rx(CoreId(0), third);
    assert_eq!(rig.stack.stats().syn_cookies_ok, 1);
    let got = rig.op(CoreId(0), |rig, op| {
        rig.stack
            .accept(&mut rig.ctx, &mut rig.os, op, PORT, CoreId(0), Pid(0))
    });
    assert!(got.is_some(), "cookie connection must be acceptable");
}

#[test]
fn invalid_cookie_ack_is_reset() {
    let mut rig = Rig::new(StackConfig::base_linux(1));
    rig.op(CoreId(0), |rig, op| {
        rig.stack.listen(&mut rig.ctx, op, PORT, 1024, CoreId(0));
    });
    // A stray ACK that matches no SYN-queue entry and carries no valid
    // cookie must be refused.
    let flow = FlowTuple::new(CLIENT_IP, 47_000, SERVER_IP, PORT);
    let stray = Packet::new(flow, TcpFlags::ACK)
        .with_seq(9)
        .with_ack(0xdead);
    let out = rig.rx(CoreId(0), stray);
    assert_eq!(out.replies.len(), 1);
    assert!(out.replies[0].flags.rst());
}

#[test]
fn rto_retransmits_lost_syn_ack() {
    // Lose the SYN-ACK: the RTO mechanism must offer it again.
    let mut rig = Rig::new(StackConfig::fastsocket(2));
    rig.listen_all();
    let mut c = Client::new(48_000);
    let out = rig.rx(CoreId(0), c.syn());
    let synack = out.replies[0];
    let arms = rig.stack.take_rto_arms();
    assert_eq!(arms.len(), 1, "the SYN-ACK must arm an RTO");
    let (sock, gen, delay) = arms[0];
    assert_eq!(delay, rig.stack.config().rto, "first arm uses the base RTO");
    // Pretend the SYN-ACK was lost: fire the RTO.
    let reseg = rig
        .stack
        .on_rto(&mut rig.ctx, &mut rig.os, sock, gen)
        .expect("unacked SYN-ACK must be retransmitted");
    assert_eq!(reseg, synack);
    assert_eq!(rig.stack.stats().retransmits, 1);
    // The client completes with the retransmitted copy.
    let third = c.ack_synack(&reseg);
    rig.rx(CoreId(0), third);
    // The ACK cleared the queue: the next RTO finds nothing.
    let arms = rig.stack.take_rto_arms();
    let (s2, g2, _) = arms[0];
    assert!(rig
        .stack
        .on_rto(&mut rig.ctx, &mut rig.os, s2, g2)
        .is_none());
}

#[test]
fn rto_backs_off_exponentially_and_still_aborts() {
    // Each retry doubles the timer (capped), and the `tcp_retries2`
    // abort still fires after MAX_RTX_ATTEMPTS.
    let mut rig = Rig::new(StackConfig::fastsocket(2));
    rig.listen_all();
    let mut c = Client::new(48_500);
    rig.rx(CoreId(0), c.syn());
    let rto = rig.stack.config().rto;
    let (mut sock, mut gen, first) = rig.stack.take_rto_arms()[0];
    assert_eq!(first, rto);
    let mut delays = Vec::new();
    while rig
        .stack
        .on_rto(&mut rig.ctx, &mut rig.os, sock, gen)
        .is_some()
    {
        let arms = rig.stack.take_rto_arms();
        assert_eq!(arms.len(), 1);
        let (s, g, d) = arms[0];
        delays.push(d);
        sock = s;
        gen = g;
    }
    // Doubling per retry, capped at rto << MAX_RTO_BACKOFF_SHIFT.
    let expected: Vec<u64> = (1..=MAX_RTX_ATTEMPTS)
        .map(|a| rto << a.min(MAX_RTO_BACKOFF_SHIFT))
        .collect();
    assert_eq!(delays, expected);
    assert!(delays.windows(2).all(|w| w[1] >= w[0]), "monotone backoff");
    assert_eq!(rig.stack.stats().retransmits, u64::from(MAX_RTX_ATTEMPTS));
    assert_eq!(rig.stack.stats().rtx_abandoned, 1, "abort still fires");
    assert_eq!(rig.stack.take_rto_arms().len(), 0, "no re-arm after abort");
}

#[test]
fn rto_backoff_ceiling_is_configurable() {
    // A lowered `rto_backoff_shift` clamps the doubling earlier — long
    // fault schedules use this so a connection's retry timeline cannot
    // overshoot the simulated window.
    let mut config = StackConfig::fastsocket(2);
    config.rto_backoff_shift = 2;
    let mut rig = Rig::new(config);
    rig.listen_all();
    let mut c = Client::new(48_700);
    rig.rx(CoreId(0), c.syn());
    let rto = rig.stack.config().rto;
    let (mut sock, mut gen, _) = rig.stack.take_rto_arms()[0];
    let mut delays = Vec::new();
    while rig
        .stack
        .on_rto(&mut rig.ctx, &mut rig.os, sock, gen)
        .is_some()
    {
        let arms = rig.stack.take_rto_arms();
        assert_eq!(arms.len(), 1);
        let (s, g, d) = arms[0];
        delays.push(d);
        sock = s;
        gen = g;
    }
    let expected: Vec<u64> = (1..=MAX_RTX_ATTEMPTS).map(|a| rto << a.min(2)).collect();
    assert_eq!(delays, expected, "doubling clamps at rto << 2");
    assert_eq!(
        *delays.last().expect("retries ran"),
        rto << 2,
        "ceiling honored to abandonment"
    );
}

#[test]
fn fastsocket_slow_path_survives_worker_crash() {
    // Figure 2 steps (7), (11), (12): the local listen socket of core 1
    // is destroyed (its process died); a SYN delivered to core 1 must
    // still be accepted — through the global listen socket — by any
    // other worker. A naive local-only partition would send RST here.
    let mut rig = Rig::new(StackConfig::fastsocket(4));
    rig.listen_all();
    rig.stack
        .listen_table_mut()
        .destroy_process_socket(PORT, CoreId(1));

    let mut client = Client::new(43_000);
    let out = rig.rx(CoreId(1), client.syn());
    assert_eq!(out.replies.len(), 1);
    assert!(
        out.replies[0].flags.syn() && out.replies[0].flags.ack(),
        "robustness: SYN-ACK, not RST, after worker crash"
    );
    let third = client.ack_synack(&out.replies[0]);
    rig.rx(CoreId(1), third);

    // Another worker (core 2) accepts it via the global queue.
    let got = rig.op(CoreId(2), |rig, op| {
        rig.stack
            .accept(&mut rig.ctx, &mut rig.os, op, PORT, CoreId(2), Pid(2))
    });
    let (_sock, src) = got.expect("slow-path connection must be acceptable");
    assert_eq!(src, AcceptSource::Global);
    assert_eq!(rig.stack.stats().accepts_global, 1);
}

#[test]
fn global_queue_checked_before_local() {
    // Figure 2's ordering argument: on a busy server the local queue is
    // never empty, so checking local first would starve the global
    // (slow-path) connections.
    let mut rig = Rig::new(StackConfig::fastsocket(2));
    rig.listen_all();

    // One connection lands in the global queue (core 1's local socket
    // destroyed mid-run), then gets re-created for the local one.
    rig.stack
        .listen_table_mut()
        .destroy_process_socket(PORT, CoreId(1));
    let mut slowpath = Client::new(44_000);
    let out = rig.rx(CoreId(1), slowpath.syn());
    let third = slowpath.ack_synack(&out.replies[0]);
    rig.rx(CoreId(1), third);

    // Core 1's worker restarts and fills its local queue.
    rig.op(CoreId(1), |rig, op| {
        rig.stack
            .local_listen(&mut rig.ctx, op, PORT, 1024, Pid(1), CoreId(1));
    });
    let mut fastpath = Client::new(44_001);
    let out = rig.rx(CoreId(1), fastpath.syn());
    let third = fastpath.ack_synack(&out.replies[0]);
    rig.rx(CoreId(1), third);

    // Accept on core 1: must take the GLOBAL connection first.
    let (_s1, src1) = rig
        .op(CoreId(1), |rig, op| {
            rig.stack
                .accept(&mut rig.ctx, &mut rig.os, op, PORT, CoreId(1), Pid(1))
        })
        .unwrap();
    assert_eq!(src1, AcceptSource::Global, "global queue served first");
    let (_s2, src2) = rig
        .op(CoreId(1), |rig, op| {
            rig.stack
                .accept(&mut rig.ctx, &mut rig.os, op, PORT, CoreId(1), Pid(1))
        })
        .unwrap();
    assert_eq!(src2, AcceptSource::Local);
}

#[test]
fn active_connection_lifecycle() {
    // The server actively connects out (proxy behaviour); a scripted
    // backend answers.
    let mut rig = Rig::new(StackConfig::fastsocket(2));
    rig.listen_all();
    let core = CoreId(1);
    let backend_ip = Ipv4Addr::new(10, 0, 0, 100);

    let (sock, syn) = rig
        .op(core, |rig, op| {
            rig.stack.connect(
                &mut rig.ctx,
                &mut rig.os,
                op,
                core,
                Pid(1),
                SERVER_IP,
                backend_ip,
                PORT,
            )
        })
        .expect("ports available");
    assert!(syn.flags.syn() && !syn.flags.ack());
    // RFD chose a port encoding core 1.
    assert!(rig.stack.rfd().port_matches_core(syn.flow.src_port, core));

    // Backend SYN-ACK.
    let synack = Packet::new(syn.flow.reversed(), TcpFlags::SYN | TcpFlags::ACK)
        .with_seq(7_000)
        .with_ack(syn.seq.wrapping_add(1));
    let out = rig.rx(core, synack);
    assert_eq!(out.replies.len(), 1, "handshake ACK");
    assert_eq!(rig.stack.socks.get(sock).state, TcpState::Established);
    assert_eq!(rig.stack.stats().active_established, 1);

    // Send the request, receive the response + FIN from the backend.
    let req = rig
        .op(core, |rig, op| {
            rig.stack.send(&mut rig.ctx, &mut rig.os, op, sock, 600)
        })
        .unwrap();
    assert_eq!(req.payload_len, 600);
    let resp = Packet::new(syn.flow.reversed(), TcpFlags::PSH | TcpFlags::ACK)
        .with_seq(7_001)
        .with_ack(req.seq.wrapping_add(600))
        .with_payload(1_200);
    let out = rig.rx(core, resp);
    assert_eq!(out.replies.len(), 1);
    let fin = Packet::new(syn.flow.reversed(), TcpFlags::FIN | TcpFlags::ACK)
        .with_seq(8_201)
        .with_ack(req.seq.wrapping_add(600));
    let out = rig.rx(core, fin);
    assert!(out.replies.len() == 1, "FIN acked");

    // Proxy side closes: CLOSE_WAIT -> LAST_ACK -> CLOSED.
    let fin = rig
        .op(core, |rig, op| {
            rig.stack.close(&mut rig.ctx, &mut rig.os, op, sock)
        })
        .expect("close sends FIN");
    let lastack = Packet::new(syn.flow.reversed(), TcpFlags::ACK)
        .with_seq(8_202)
        .with_ack(fin.seq.wrapping_add(1));
    let out = rig.rx(core, lastack);
    assert_eq!(out.closed, vec![sock]);
    assert_eq!(rig.stack.stats().closed, 1);
}

#[test]
fn rfd_steers_active_packets_to_owning_core() {
    let mut rig = Rig::new(StackConfig::fastsocket(4));
    rig.listen_all();
    let backend_ip = Ipv4Addr::new(10, 0, 0, 100);

    let (_sock, syn) = rig
        .op(CoreId(2), |rig, op| {
            rig.stack.connect(
                &mut rig.ctx,
                &mut rig.os,
                op,
                CoreId(2),
                Pid(2),
                SERVER_IP,
                backend_ip,
                PORT,
            )
        })
        .unwrap();

    // The backend's reply lands on the WRONG core (0). RFD must steer
    // it to core 2 without touching any table.
    let synack = Packet::new(syn.flow.reversed(), TcpFlags::SYN | TcpFlags::ACK)
        .with_seq(1)
        .with_ack(syn.seq.wrapping_add(1));
    let out = rig.rx(CoreId(0), synack);
    assert_eq!(out.steer, Some(CoreId(2)));
    assert!(out.replies.is_empty());
    assert_eq!(rig.stack.stats().steered_packets, 1);

    // Re-delivered on the right core it completes the handshake.
    let out = rig.op(CoreId(2), |rig, op| {
        rig.stack
            .net_rx(&mut rig.ctx, &mut rig.os, op, &synack, true)
    });
    assert_eq!(out.steer, None);
    assert_eq!(out.replies.len(), 1);
    assert_eq!(rig.stack.stats().active_established, 1);
    // Locality accounting: 1 active packet seen at NIC level, 0 local.
    assert_eq!(rig.stack.stats().active_in_packets, 1);
    assert_eq!(rig.stack.stats().active_in_local, 0);
}

#[test]
fn reuseport_distributes_by_flow_hash() {
    let mut rig = Rig::new(StackConfig::linux_313(4));
    rig.listen_all();
    // Many SYNs: connections should spread over the 4 copies.
    let mut accepted_per_core = [0u32; 4];
    for i in 0..64u16 {
        let mut c = Client::new(45_000 + i);
        let out = rig.rx(CoreId(i % 4), c.syn());
        let third = c.ack_synack(&out.replies[0]);
        rig.rx(CoreId(i % 4), third);
    }
    for core in 0..4u16 {
        loop {
            let got = rig.op(CoreId(core), |rig, op| {
                rig.stack.accept(
                    &mut rig.ctx,
                    &mut rig.os,
                    op,
                    PORT,
                    CoreId(core),
                    Pid(core as u32),
                )
            });
            if got.is_none() {
                break;
            }
            accepted_per_core[core as usize] += 1;
        }
    }
    let total: u32 = accepted_per_core.iter().sum();
    assert_eq!(total, 64);
    for (c, &n) in accepted_per_core.iter().enumerate() {
        assert!(n >= 4, "copy on core {c} starved: {accepted_per_core:?}");
    }
}

#[test]
fn proc_net_tcp_shows_sockets_in_every_vfs_mode() {
    // §3.4 "Keep Compatibility": the fast path keeps enough state for
    // /proc-based tools. The dump must show LISTEN sockets and live
    // connections under the Fastsocket VFS just as under the legacy one.
    for config in [StackConfig::base_linux(2), StackConfig::fastsocket(2)] {
        let mut rig = Rig::new(config);
        rig.listen_all();
        let mut client = Client::new(49_000);
        let out = rig.rx(CoreId(0), client.syn());
        let third = client.ack_synack(&out.replies[0]);
        rig.rx(CoreId(0), third);

        let dump = rig.stack.proc_net_tcp();
        assert!(dump.contains("local_address"), "{dump}");
        assert!(
            dump.contains(" 0A\n"),
            "a LISTEN socket must appear: {dump}"
        );
        assert!(
            dump.contains(" 01\n"),
            "an ESTABLISHED socket must appear: {dump}"
        );
        // Port 80 in hex.
        assert!(
            dump.contains(":0050"),
            "service port rendered in hex: {dump}"
        );

        let summary = rig.stack.socket_summary();
        assert!(summary
            .iter()
            .any(|(s, n)| *s == TcpState::Established && *n == 1));
        assert!(summary.iter().any(|(s, _)| *s == TcpState::Listen));
    }
}
