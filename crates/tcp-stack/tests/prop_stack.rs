//! Property tests on the paper's core mechanisms: the Receive Flow
//! Deliver hash, the port allocators, and the TCP state machine.

use proptest::prelude::*;
use sim_core::{CoreId, SimRng};
use sim_mem::{CacheCosts, CacheModel};
use sim_net::TcpFlags;
use sim_os::KernelCtx;
use sim_sync::{LockCosts, LockTable};
use std::net::Ipv4Addr;
use tcp_stack::costs::StackCosts;
use tcp_stack::ports::{PortAlloc, PortAllocVariant, EPHEMERAL_MAX, EPHEMERAL_MIN};
use tcp_stack::rfd::Rfd;
use tcp_stack::state::{on_close, on_segment};
use tcp_stack::TcpState;

fn ctx(cores: usize) -> KernelCtx {
    KernelCtx::new(
        cores,
        LockTable::new(LockCosts::default()),
        CacheModel::new(CacheCosts::default()),
        SimRng::seed(41),
    )
}

proptest! {
    /// The RFD invariant that makes active-connection locality work:
    /// any port the per-core allocator hands to core `c` decodes back
    /// to `c` under the RFD hash, for every machine size.
    #[test]
    fn rfd_port_choice_round_trips(cores in 1u16..=32, core_sel in any::<u16>(), n in 1usize..60) {
        let core = CoreId(core_sel % cores);
        let mut c = ctx(cores as usize);
        let mut alloc = PortAlloc::new(&mut c, PortAllocVariant::PerCore, cores);
        let rfd = Rfd::new(cores);
        let costs = StackCosts::default();
        let mut op = c.begin(core, 0);
        for _ in 0..n {
            let p = alloc
                .alloc(&mut c, &mut op, core, Ipv4Addr::new(10, 0, 0, 9), 80, &costs)
                .unwrap();
            prop_assert!(rfd.port_matches_core(p, core), "port {} core {}", p, core.0);
            prop_assert!((EPHEMERAL_MIN..EPHEMERAL_MAX).contains(&p));
        }
        op.commit(&mut c.cpu);
    }

    /// Ports are never handed out twice towards the same destination
    /// while in use, under interleaved alloc/release.
    #[test]
    fn port_allocator_uniqueness(ops in collection::vec(any::<bool>(), 1..200)) {
        let mut c = ctx(2);
        let mut alloc = PortAlloc::new(&mut c, PortAllocVariant::Global, 2);
        let costs = StackCosts::default();
        let dst = Ipv4Addr::new(10, 0, 0, 9);
        let mut live: Vec<u16> = Vec::new();
        let mut op = c.begin(CoreId(0), 0);
        for take in ops {
            if take || live.is_empty() {
                let p = alloc.alloc(&mut c, &mut op, CoreId(0), dst, 80, &costs).unwrap();
                prop_assert!(!live.contains(&p), "port {} reissued", p);
                live.push(p);
            } else {
                let p = live.swap_remove(live.len() / 2);
                alloc.release(dst, 80, p);
            }
        }
        op.commit(&mut c.cpu);
        prop_assert_eq!(alloc.in_use(), live.len());
    }

    /// The state machine never resurrects a closed connection, and RST
    /// always closes from any state.
    #[test]
    fn state_machine_terminal_and_rst(flags in 0u8..0x40, state_idx in 0usize..11) {
        let states = [
            TcpState::Closed, TcpState::Listen, TcpState::SynSent, TcpState::SynRcvd,
            TcpState::Established, TcpState::FinWait1, TcpState::FinWait2,
            TcpState::CloseWait, TcpState::Closing, TcpState::LastAck, TcpState::TimeWait,
        ];
        let state = states[state_idx];
        let t = on_segment(state, TcpFlags(flags), 0);
        if TcpFlags(flags).rst() {
            prop_assert_eq!(t.next, TcpState::Closed);
            prop_assert!(!t.send_ack);
        }
        if state == TcpState::Closed {
            // Nothing transitions OUT of closed via segments.
            prop_assert!(t.next == TcpState::Closed || t.reset);
        }
        // `established` is only signalled from opening states.
        if t.established {
            prop_assert!(matches!(state, TcpState::SynSent | TcpState::SynRcvd));
        }
    }

    /// close() is idempotent in effect: applying it twice never yields
    /// a second FIN.
    #[test]
    fn close_never_double_fins(state_idx in 0usize..11) {
        let states = [
            TcpState::Closed, TcpState::Listen, TcpState::SynSent, TcpState::SynRcvd,
            TcpState::Established, TcpState::FinWait1, TcpState::FinWait2,
            TcpState::CloseWait, TcpState::Closing, TcpState::LastAck, TcpState::TimeWait,
        ];
        let state = states[state_idx];
        if let Some((next, fin1)) = on_close(state) {
            if fin1 {
                // A second close in the post-FIN state must not FIN again.
                prop_assert!(on_close(next).is_none(), "double FIN from {}", state);
            }
        }
    }

    /// RFD classification is total and deterministic: every packet is
    /// classified, and classification agrees with itself.
    #[test]
    fn rfd_classification_total(src in any::<u16>(), dst in any::<u16>(), listened in any::<bool>()) {
        let rfd = Rfd::new(16);
        let flow = sim_net::FlowTuple::new(
            Ipv4Addr::new(1, 2, 3, 4), src, Ipv4Addr::new(5, 6, 7, 8), dst,
        );
        let (a, _) = rfd.classify(&flow, |_| listened);
        let (b, _) = rfd.classify(&flow, |_| listened);
        prop_assert_eq!(a, b);
    }
}

proptest! {
    /// The security bit-shift preserves the RFD round-trip invariant:
    /// ports chosen for core `c` decode back to `c` under any valid
    /// shift.
    #[test]
    fn rfd_shifted_port_choice_round_trips(
        cores in 1u16..=16,
        shift in 0u8..=6,
        core_sel in any::<u16>(),
    ) {
        let core = CoreId(core_sel % cores);
        let rfd = Rfd::with_shift(cores, shift);
        let mut c = ctx(cores as usize);
        let mut alloc = PortAlloc::with_rfd(&mut c, PortAllocVariant::PerCore, cores, rfd);
        let costs = StackCosts::default();
        let mut op = c.begin(core, 0);
        for _ in 0..20 {
            let p = alloc
                .alloc(&mut c, &mut op, core, Ipv4Addr::new(10, 0, 0, 9), 80, &costs)
                .unwrap();
            prop_assert!(rfd.port_matches_core(p, core), "port {} core {} shift {}", p, core.0, shift);
        }
        op.commit(&mut c.cpu);
    }

    /// Two engines with different shifts distribute an attacker's
    /// chosen ports differently (the hardening's point: a fixed port
    /// no longer pins a known core across deployments).
    #[test]
    fn rfd_shift_changes_the_mapping(port in 32_768u16..61_000) {
        let plain = Rfd::with_shift(16, 0);
        let shifted = Rfd::with_shift(16, 4);
        // Not a strict inequality for every port, but decoding uses
        // disjoint bit ranges; sweep a few neighbours to observe a
        // difference somewhere.
        let differs = (0..32u16).any(|d| {
            let p = port.wrapping_add(d);
            plain.hash(p) != shifted.hash(p)
        });
        prop_assert!(differs);
    }
}
