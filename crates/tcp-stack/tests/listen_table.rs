//! Direct tests of the listen-table variants (the paper's §3.2.1 data
//! structure, without the full stack around it).

use sim_core::{CoreId, SimRng};
use sim_mem::{CacheCosts, CacheModel};
use sim_net::FlowTuple;
use sim_os::process::Pid;
use sim_os::KernelCtx;
use sim_sync::{LockCosts, LockTable};
use std::net::Ipv4Addr;
use tcp_stack::costs::StackCosts;
use tcp_stack::listen::{ListenTable, ListenVariant};
use tcp_stack::stats::StackStats;
use tcp_stack::tcb::SockTable;

fn ctx(cores: usize) -> KernelCtx {
    KernelCtx::new(
        cores,
        LockTable::new(LockCosts::default()),
        CacheModel::new(CacheCosts::default()),
        SimRng::seed(77),
    )
}

fn lflow(client_port: u16) -> FlowTuple {
    // Local perspective: src = service endpoint.
    FlowTuple::new(
        Ipv4Addr::new(10, 0, 0, 1),
        80,
        Ipv4Addr::new(10, 0, 0, 2),
        client_port,
    )
}

#[test]
fn global_variant_always_finds_the_single_socket() {
    let mut c = ctx(4);
    let mut socks = SockTable::new();
    let mut t = ListenTable::new(ListenVariant::Global, 4);
    let global = t.listen(&mut c, &mut socks, 80, 128, CoreId(0));
    let costs = StackCosts::default();
    let mut stats = StackStats::default();
    for core in 0..4u16 {
        let mut op = c.begin(CoreId(core), 0);
        let hit = t.lookup(
            &mut c,
            &mut op,
            CoreId(core),
            &lflow(40_000 + core),
            &socks,
            &costs,
            &mut stats,
        );
        op.commit(&mut c.cpu);
        assert_eq!(hit, Some(global));
    }
    assert_eq!(stats.listen_lookups, 4);
    assert_eq!(stats.listen_entries_walked, 4, "O(1) walk");
}

#[test]
fn lookup_on_unlistened_port_returns_none() {
    let mut c = ctx(2);
    let mut socks = SockTable::new();
    let mut t = ListenTable::new(ListenVariant::Global, 2);
    t.listen(&mut c, &mut socks, 80, 128, CoreId(0));
    let costs = StackCosts::default();
    let mut stats = StackStats::default();
    let mut op = c.begin(CoreId(0), 0);
    let other = FlowTuple::new(
        Ipv4Addr::new(10, 0, 0, 1),
        8_080,
        Ipv4Addr::new(10, 0, 0, 2),
        40_000,
    );
    assert_eq!(
        t.lookup(
            &mut c,
            &mut op,
            CoreId(0),
            &other,
            &socks,
            &costs,
            &mut stats
        ),
        None
    );
    op.commit(&mut c.cpu);
    assert!(t.has_listener(80));
    assert!(!t.has_listener(8_080));
}

#[test]
fn reuseport_walk_is_linear_in_copies() {
    let mut c = ctx(8);
    let mut socks = SockTable::new();
    let mut t = ListenTable::new(ListenVariant::ReusePort, 8);
    t.listen(&mut c, &mut socks, 80, 128, CoreId(0));
    for core in 0..8u16 {
        t.add_reuseport_copy(&mut c, &mut socks, 80, 128, Pid(core.into()), CoreId(core));
    }
    let costs = StackCosts::default();
    let mut stats = StackStats::default();
    let mut op = c.begin(CoreId(0), 0);
    for i in 0..10u16 {
        t.lookup(
            &mut c,
            &mut op,
            CoreId(0),
            &lflow(40_000 + i),
            &socks,
            &costs,
            &mut stats,
        );
    }
    op.commit(&mut c.cpu);
    assert_eq!(
        stats.listen_entries_walked, 80,
        "8 copies walked per lookup"
    );
}

#[test]
fn reuseport_selection_is_flow_stable() {
    let mut c = ctx(4);
    let mut socks = SockTable::new();
    let mut t = ListenTable::new(ListenVariant::ReusePort, 4);
    t.listen(&mut c, &mut socks, 80, 128, CoreId(0));
    for core in 0..4u16 {
        t.add_reuseport_copy(&mut c, &mut socks, 80, 128, Pid(core.into()), CoreId(core));
    }
    let costs = StackCosts::default();
    let mut stats = StackStats::default();
    let flow = lflow(45_123);
    let mut op = c.begin(CoreId(0), 0);
    let a = t.lookup(
        &mut c,
        &mut op,
        CoreId(0),
        &flow,
        &socks,
        &costs,
        &mut stats,
    );
    // Same flow from a different core selects the same copy (the
    // selection hashes the flow, not the receiving core).
    let b = t.lookup(
        &mut c,
        &mut op,
        CoreId(3),
        &flow,
        &socks,
        &costs,
        &mut stats,
    );
    op.commit(&mut c.cpu);
    assert_eq!(a, b);
}

#[test]
fn local_variant_prefers_the_cores_own_socket() {
    let mut c = ctx(4);
    let mut socks = SockTable::new();
    let mut t = ListenTable::new(ListenVariant::Local, 4);
    let global = t.listen(&mut c, &mut socks, 80, 128, CoreId(0));
    let mut locals = Vec::new();
    for core in 0..4u16 {
        locals.push(t.local_listen(&mut c, &mut socks, 80, 128, Pid(core.into()), CoreId(core)));
    }
    let costs = StackCosts::default();
    let mut stats = StackStats::default();
    for core in 0..4u16 {
        let mut op = c.begin(CoreId(core), 0);
        let hit = t.lookup(
            &mut c,
            &mut op,
            CoreId(core),
            &lflow(41_000),
            &socks,
            &costs,
            &mut stats,
        );
        op.commit(&mut c.cpu);
        assert_eq!(hit, Some(locals[core as usize]));
        assert_ne!(hit, Some(global));
    }
    assert_eq!(t.local_of(80, CoreId(2)), Some(locals[2]));
    assert_eq!(t.global_of(80), global);
}

#[test]
fn local_variant_falls_back_to_global_after_crash() {
    let mut c = ctx(2);
    let mut socks = SockTable::new();
    let mut t = ListenTable::new(ListenVariant::Local, 2);
    let global = t.listen(&mut c, &mut socks, 80, 128, CoreId(0));
    t.local_listen(&mut c, &mut socks, 80, 128, Pid(0), CoreId(0));
    t.local_listen(&mut c, &mut socks, 80, 128, Pid(1), CoreId(1));
    let orphans = t.destroy_process_socket(80, CoreId(1));
    assert!(orphans.is_empty(), "no embryonic connections existed");
    assert_eq!(t.local_of(80, CoreId(1)), None);

    let costs = StackCosts::default();
    let mut stats = StackStats::default();
    let mut op = c.begin(CoreId(1), 0);
    let hit = t.lookup(
        &mut c,
        &mut op,
        CoreId(1),
        &lflow(42_000),
        &socks,
        &costs,
        &mut stats,
    );
    op.commit(&mut c.cpu);
    assert_eq!(hit, Some(global), "Figure 2 slow path: global fallback");
}

#[test]
fn destroy_on_global_variant_is_a_noop() {
    let mut c = ctx(2);
    let mut socks = SockTable::new();
    let mut t = ListenTable::new(ListenVariant::Global, 2);
    let global = t.listen(&mut c, &mut socks, 80, 128, CoreId(0));
    let orphans = t.destroy_process_socket(80, CoreId(0));
    assert!(orphans.is_empty());
    assert_eq!(t.global_of(80), global, "the shared socket survives");
}

#[test]
fn backlog_room_accounts_both_queues() {
    let mut c = ctx(1);
    let mut socks = SockTable::new();
    let mut t = ListenTable::new(ListenVariant::Global, 1);
    let ls = t.listen(&mut c, &mut socks, 80, 2, CoreId(0));
    assert!(t.ls(ls).has_room());
    let s1 = socks.alloc(
        &mut c,
        lflow(1_100),
        tcp_stack::TcpState::SynRcvd,
        false,
        CoreId(0),
    );
    t.ls_mut(ls).syn_queue.insert(lflow(1_100), s1);
    assert!(t.ls(ls).has_room());
    let s2 = socks.alloc(
        &mut c,
        lflow(1_101),
        tcp_stack::TcpState::Established,
        false,
        CoreId(0),
    );
    t.ls_mut(ls).accept_queue.push_back(s2);
    assert!(!t.ls(ls).has_room(), "syn + accept occupancy sums");
}
