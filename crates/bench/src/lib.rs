//! Shared helpers for the experiment harness binaries.
//!
//! Every binary regenerates one table or figure of the paper, prints a
//! paper-vs-measured report to stdout, and (when `--json <path>` or the
//! `FS_RESULTS_DIR` environment variable is given) writes the raw
//! result as JSON for EXPERIMENTS.md bookkeeping.

use std::path::PathBuf;

/// Parsed common CLI options for harness binaries.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Simulated measurement seconds per run.
    pub measure_secs: f64,
    /// Where to write the JSON result, if anywhere.
    pub json_path: Option<PathBuf>,
    /// Override core counts (comma-separated), when the experiment
    /// sweeps cores.
    pub cores: Option<Vec<u16>>,
}

impl HarnessArgs {
    /// Parses `[measure_secs] [--cores a,b,c] [--json path]` from the
    /// process arguments, with the given default measurement length.
    pub fn parse(default_measure: f64, experiment: &str) -> HarnessArgs {
        Self::parse_from(
            std::env::args().skip(1).collect(),
            default_measure,
            experiment,
        )
    }

    /// [`HarnessArgs::parse`] over an explicit argument vector —
    /// for binaries that consume extra flags of their own first and
    /// forward the remainder.
    pub fn parse_from(args: Vec<String>, default_measure: f64, experiment: &str) -> HarnessArgs {
        let mut measure_secs = default_measure;
        let mut json_path = None;
        let mut cores = None;
        let mut it = args.iter().peekable();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--json" => {
                    json_path = it.next().map(PathBuf::from);
                }
                "--cores" => {
                    cores = it.next().map(|s| {
                        s.split(',')
                            .map(|x| x.parse().expect("core count"))
                            .collect()
                    });
                }
                other => {
                    if let Ok(v) = other.parse::<f64>() {
                        measure_secs = v;
                    }
                }
            }
        }
        if json_path.is_none() {
            if let Ok(dir) = std::env::var("FS_RESULTS_DIR") {
                json_path = Some(PathBuf::from(dir).join(format!("{experiment}.json")));
            }
        }
        HarnessArgs {
            measure_secs,
            json_path,
            cores,
        }
    }

    /// Writes `value` as pretty JSON to the configured path, if any.
    pub fn write_json<T: serde::Serialize>(&self, value: &T) {
        if let Some(path) = &self.json_path {
            if let Some(parent) = path.parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            match serde_json::to_string_pretty(value) {
                Ok(s) => {
                    if let Err(e) = std::fs::write(path, s) {
                        eprintln!("warning: cannot write {}: {e}", path.display());
                    } else {
                        eprintln!("(raw results written to {})", path.display());
                    }
                }
                Err(e) => eprintln!("warning: cannot serialize results: {e}"),
            }
        }
    }
}

/// Runs the same cell twice and asserts the chosen digest is
/// bit-identical, returning the first run's result.
///
/// This is the shared "doubled run" reproducibility gate the harness
/// binaries used to hand-roll: `run` must build a **fresh** config each
/// call (taking a closure, rather than a prebuilt result pair, makes it
/// structurally impossible for the second run to reuse mutated config
/// state), and `digest` picks what must reproduce — a results digest, a
/// schedule digest, a shard-report digest, or any tuple of them.
///
/// # Panics
///
/// Panics with `what` in the message when the two digests differ.
pub fn assert_deterministic<R, D>(
    what: impl std::fmt::Display,
    run: impl Fn() -> R,
    digest: impl Fn(&R) -> D,
) -> R
where
    D: PartialEq + std::fmt::Debug,
{
    let first = run();
    let again = run();
    let (a, b) = (digest(&first), digest(&again));
    assert_eq!(a, b, "{what}: same-seed reruns must be bit-identical");
    first
}

/// Formats a ratio as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Formats connections/sec in the paper's "475K" style.
pub fn kcps(x: f64) -> String {
    format!("{:.0}K", x / 1_000.0)
}
