//! Ablation: why does the base kernel's curve *fall* past its peak
//! (Figure 4a) instead of flattening?
//!
//! The model attributes it to the ticket-spinlock handoff storm: on a
//! contended release, every polling core re-reads the lock line, so
//! service time grows with the number of cores hammering the lock.
//! Setting the per-poller handoff cost to zero turns the collapse into
//! a plateau — the signature of a work-conserving lock.

use fastsocket::{AppSpec, KernelSpec, SimConfig, Simulation};
use fastsocket_bench::{kcps, HarnessArgs};
use sim_sync::LockCosts;

fn main() {
    let args = HarnessArgs::parse(0.15, "ablate_lock_model");
    let cores_list = args.cores.clone().unwrap_or_else(|| vec![8, 16, 24]);
    println!("base-kernel nginx throughput vs ticket-handoff cost");
    println!(
        "{:>18} {}",
        "handoff/poller",
        cores_list
            .iter()
            .map(|c| format!("{:>10}", format!("{c} cores")))
            .collect::<String>()
    );
    let mut results = Vec::new();
    for handoff in [0u64, 100, 210, 420] {
        print!("{handoff:>18}");
        for &cores in &cores_list {
            let mut cfg = SimConfig::new(KernelSpec::BaseLinux, AppSpec::web(), cores)
                .warmup_secs(0.1)
                .measure_secs(args.measure_secs);
            cfg.lock_costs = LockCosts {
                handoff_per_waiter: handoff,
                ..LockCosts::default()
            };
            let r = Simulation::new(cfg).run();
            print!("{:>10}", kcps(r.throughput_cps));
            results.push((handoff, cores, r.throughput_cps));
        }
        println!();
    }
    println!(
        "\nWith handoff = 0 the saturated listen/dcache locks serve at a \
         fixed rate and the\ncurve plateaus; with realistic handoff costs the \
         per-acquisition service time\ngrows with core count and throughput \
         declines past the peak — the paper's base\nkernel behaviour."
    );
    args.write_json(&results);
}
