//! Edge-tier resilience matrix: every kernel × {no-defense,
//! early-drop} × {backend-crash, backend-flap, syn-flood}, scoring the
//! health-checked pool's failover and the NIC pre-steering drop stage.
//!
//! Every cell executes **twice** with the same seed and the two
//! [`RunReport::results_digest`]s must be bit-identical (the
//! reproducibility gate). The analysis then asserts the edge tier's
//! headline claims: with a retry budget ≥ 1 a backend crash loses zero
//! requests end to end, and the XDP-style early-drop filter recovers at
//! least half of the SYN-flood throughput degradation measured without
//! it.
//!
//! `--smoke` runs one short cell per kernel with all five sim-check
//! detectors armed and exits nonzero on any finding or lost request —
//! the CI gate wired into `scripts/check.sh`.

use fastsocket::{
    AppSpec, EdgeReport, FaultRecord, FaultSchedule, KernelSpec, RunReport, SimConfig, Simulation,
};
use fastsocket_bench::{assert_deterministic, kcps, pct, HarnessArgs};
use serde::Serialize;
use sim_apps::edge::EdgeConfig;
use sim_core::secs_to_cycles;

/// The fault scenarios of the matrix, in presentation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Scenario {
    BackendCrash,
    BackendFlap,
    SynFlood,
}

impl Scenario {
    const ALL: [Scenario; 3] = [
        Scenario::BackendCrash,
        Scenario::BackendFlap,
        Scenario::SynFlood,
    ];

    fn label(self) -> &'static str {
        match self {
            Scenario::BackendCrash => "backend-crash",
            Scenario::BackendFlap => "backend-flap",
            Scenario::SynFlood => "syn-flood",
        }
    }
}

/// Injection/heal timing for one run, in simulated seconds from the
/// start of the run (warmup included).
#[derive(Debug, Clone, Copy)]
struct Timing {
    warmup: f64,
    measure: f64,
    inject: f64,
    heal: f64,
}

impl Timing {
    fn full(measure: f64) -> Timing {
        Timing {
            warmup: 0.04,
            measure,
            inject: 0.04 + measure / 3.0,
            heal: 0.04 + measure * 2.0 / 3.0,
        }
    }

    fn smoke() -> Timing {
        Timing {
            warmup: 0.02,
            measure: 0.10,
            inject: 0.05,
            heal: 0.09,
        }
    }
}

/// One row of `results/edge.json`.
#[derive(Debug, Serialize)]
struct Row {
    scenario: String,
    kernel: String,
    early_drop: bool,
    seed: u64,
    /// `RunReport::results_digest()` — equal across the doubled runs.
    digest: String,
    completed: u64,
    timeouts: u64,
    throughput_cps: f64,
    degradation_depth: f64,
    time_to_recover: Option<u64>,
    edge: EdgeReport,
    record: FaultRecord,
}

fn schedule(scenario: Scenario, t: Timing) -> FaultSchedule {
    let at = secs_to_cycles(t.inject);
    let heal = Some(secs_to_cycles(t.heal));
    let s = FaultSchedule::new().sample_every(secs_to_cycles(0.005));
    match scenario {
        Scenario::BackendCrash => s.backend_crash(at, heal, 0),
        Scenario::BackendFlap => {
            s.backend_flap(at, secs_to_cycles(0.01), secs_to_cycles(0.005), 2, 1)
        }
        Scenario::SynFlood => s.syn_flood(at, heal, 50),
    }
}

fn config(
    kernel: KernelSpec,
    scenario: Scenario,
    early_drop: bool,
    t: Timing,
    check: bool,
) -> SimConfig {
    let mut cfg = SimConfig::new(kernel, AppSpec::proxy(), 2)
        .warmup_secs(t.warmup)
        .measure_secs(t.measure)
        .concurrency(80)
        .seed(0xed9e)
        .check(check)
        .edge(EdgeConfig::default().early_drop(early_drop))
        .faults(schedule(scenario, t));
    if scenario == Scenario::SynFlood {
        // A small backlog and no cookies make the flood bite on every
        // kernel; the pre-steering drop filter is the variable under
        // test, not the cookie path already covered by `chaos`.
        cfg = cfg.syn_cookies(false).client_timeout_secs(0.05);
        cfg.backlog = 128;
    }
    cfg
}

/// Runs one cell twice with the same seed and verifies the two full
/// results digests are bit-identical before returning the report.
fn run_cell(
    kernel: KernelSpec,
    scenario: Scenario,
    early_drop: bool,
    t: Timing,
    check: bool,
) -> (RunReport, Row) {
    let defense = if early_drop {
        "early-drop"
    } else {
        "no-defense"
    };
    let a = assert_deterministic(
        format_args!("{} × {} × {}", kernel.label(), scenario.label(), defense),
        || Simulation::new(config(kernel.clone(), scenario, early_drop, t, check)).run(),
        RunReport::results_digest,
    );
    let rec = a
        .robustness
        .as_ref()
        .expect("fault schedule => robustness")
        .faults[0]
        .clone();
    let row = Row {
        scenario: scenario.label().to_string(),
        kernel: kernel.label().to_string(),
        early_drop,
        seed: a.seed,
        digest: a.results_digest(),
        completed: a.completed,
        timeouts: a.timeouts,
        throughput_cps: a.throughput_cps,
        degradation_depth: rec.degradation_depth,
        time_to_recover: rec.time_to_recover,
        edge: a.edge.clone().expect("edge config => edge report"),
        record: rec,
    };
    (a, row)
}

fn fmt_recover(rec: &FaultRecord) -> String {
    match rec.time_to_recover {
        Some(c) => format!("{:.1}ms", c as f64 / secs_to_cycles(1.0) as f64 * 1_000.0),
        None => "NEVER".to_string(),
    }
}

fn smoke() {
    // One short cell per kernel with all five sim-check detectors
    // armed. Any sanitizer finding or lost request is fatal.
    let t = Timing::smoke();
    println!("edge smoke: sanitizers armed, one edge fault schedule per kernel\n");
    let cells = [
        (KernelSpec::BaseLinux, Scenario::SynFlood, true),
        (KernelSpec::Linux313, Scenario::BackendFlap, false),
        (KernelSpec::Fastsocket, Scenario::BackendCrash, false),
    ];
    for (kernel, scenario, early_drop) in cells {
        let (report, row) = run_cell(kernel.clone(), scenario, early_drop, t, true);
        let checks = report.checks.as_ref().expect("check(true) => report");
        println!(
            "{:<14} {:<14} depth {:<6} recover {:<8} lost {:<3} sanitizers {}",
            row.kernel,
            row.scenario,
            pct(row.degradation_depth),
            fmt_recover(&row.record),
            row.edge.lost,
            if checks.is_clean() { "clean" } else { "DIRTY" }
        );
        assert!(
            checks.is_clean(),
            "{} × {}: sanitizer findings under edge fault schedule: {checks:?}",
            row.kernel,
            row.scenario
        );
        assert_eq!(
            row.edge.lost, 0,
            "{} × {}: the retry budget must save every request: {:?}",
            row.kernel, row.scenario, row.edge
        );
    }
    println!("\nedge smoke passed");
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    let args = HarnessArgs::parse(0.3, "edge");
    let t = Timing::full(args.measure_secs);
    println!(
        "edge matrix: 3 kernels × 2 defenses × 3 scenarios, {:.2}s windows, \
         inject at {:.2}s / heal at {:.2}s, doubled runs\n",
        t.measure, t.inject, t.heal
    );
    println!(
        "{:<14} {:<14} {:<11} {:>9} {:>7} {:>9} {:>9} {:>7} {:>7} {:>5} {:>8}",
        "scenario",
        "kernel",
        "defense",
        "cps",
        "depth",
        "recover",
        "dropped",
        "retried",
        "f-over",
        "lost",
        "digest"
    );

    let mut rows: Vec<Row> = Vec::new();
    let mut texts: Vec<String> = Vec::new();
    for scenario in Scenario::ALL {
        for kernel in [
            KernelSpec::BaseLinux,
            KernelSpec::Linux313,
            KernelSpec::Fastsocket,
        ] {
            for early_drop in [false, true] {
                let (report, row) = run_cell(kernel.clone(), scenario, early_drop, t, false);
                println!(
                    "{:<14} {:<14} {:<11} {:>9} {:>7} {:>9} {:>9} {:>7} {:>7} {:>5} {:>8}",
                    row.scenario,
                    row.kernel,
                    if early_drop {
                        "early-drop"
                    } else {
                        "no-defense"
                    },
                    kcps(row.throughput_cps),
                    pct(row.degradation_depth),
                    fmt_recover(&row.record),
                    row.edge.early_dropped,
                    row.edge.retried,
                    row.edge.failed_over,
                    row.edge.lost,
                    &row.digest[..8]
                );
                if matches!(kernel, KernelSpec::Fastsocket) && early_drop {
                    texts.push(format!(
                        "== {} × fastsocket × early-drop ==\n{}",
                        row.scenario,
                        report.netstat_ext()
                    ));
                }
                rows.push(row);
            }
        }
    }

    // The acceptance claims, asserted so a regression fails the run.
    let find = |s: Scenario, k: &str, d: bool| {
        rows.iter()
            .find(|r| r.scenario == s.label() && r.kernel == k && r.early_drop == d)
            .expect("matrix is complete")
    };
    for kernel in ["base-2.6.32", "linux-3.13", "fastsocket"] {
        // Backend crash: with retry budget >= 1 every request that hit
        // the dead backend is re-dispatched — zero lost end to end.
        for d in [false, true] {
            let r = find(Scenario::BackendCrash, kernel, d);
            assert_eq!(
                r.edge.lost, 0,
                "{kernel}: crash failover must lose zero requests: {:?}",
                r.edge
            );
            assert!(
                r.edge.retried > 0 && r.edge.failed_over > 0,
                "{kernel}: the crash must force failover retries: {:?}",
                r.edge
            );
        }
        // SYN flood: the pre-steering drop filter must recover at
        // least half of the degradation measured without it.
        let nodef = find(Scenario::SynFlood, kernel, false);
        let def = find(Scenario::SynFlood, kernel, true);
        assert!(
            def.edge.early_dropped > 0 && nodef.edge.early_dropped == 0,
            "{kernel}: the filter must drop iff armed"
        );
        if nodef.degradation_depth > 0.10 {
            assert!(
                def.degradation_depth <= nodef.degradation_depth * 0.5,
                "{kernel}: early drop must recover ≥ half the flood degradation \
                 ({} with vs {} without)",
                pct(def.degradation_depth),
                pct(nodef.degradation_depth)
            );
        }
    }
    let flood_base = find(Scenario::SynFlood, "base-2.6.32", false);
    assert!(
        flood_base.degradation_depth > 0.10,
        "the undefended flood must bite on the cookie-less base kernel: {}",
        pct(flood_base.degradation_depth)
    );

    println!("\nverdicts:");
    for kernel in ["base-2.6.32", "linux-3.13", "fastsocket"] {
        let crash = find(Scenario::BackendCrash, kernel, false);
        let nodef = find(Scenario::SynFlood, kernel, false);
        let def = find(Scenario::SynFlood, kernel, true);
        println!(
            "  {kernel}: crash lost {} / retried {} / failed over {}; \
             flood depth {} undefended vs {} with early drop",
            crash.edge.lost,
            crash.edge.retried,
            crash.edge.failed_over,
            pct(nodef.degradation_depth),
            pct(def.degradation_depth)
        );
    }
    println!("\nnetstat -s (TcpExt) per fastsocket early-drop cell:\n");
    for t in &texts {
        println!("{t}");
    }
    args.write_json(&rows);
}
