//! Connection-setup tail latency vs cores — the paper's throughput
//! collapse (Figure 4) restated as latency: the base kernel's shared
//! accept queue and global locks stretch the SYN→ESTABLISHED tail as
//! cores grow, while Fastsocket's per-core partitioning holds it flat.
//!
//! Runs each kernel with tracing enabled and reports setup-latency
//! percentiles per core count. Set `FS_TRACE_DIR` to also dump the
//! 24-core Fastsocket run as chrome://tracing JSON and flamegraph
//! `.folded` text.

use fastsocket::{AppSpec, KernelSpec, SimConfig, Simulation};
use fastsocket_bench::HarnessArgs;
use serde::Serialize;
use sim_core::usecs_to_cycles;
use sim_trace::{LatencyReport, Tracer};

const DEFAULT_CORES: [u16; 5] = [1, 4, 8, 16, 24];

/// One (kernel, cores) measurement.
#[derive(Debug, Clone, Serialize)]
struct LatencyPoint {
    kernel: String,
    cores: u16,
    seed: u64,
    config_hash: String,
    throughput_cps: f64,
    latency: LatencyReport,
}

/// The full sweep, as written to `--json` / `FS_RESULTS_DIR`.
#[derive(Debug, Clone, Serialize, Default)]
struct LatencyTail {
    points: Vec<LatencyPoint>,
}

fn run_one(kernel: &KernelSpec, cores: u16, measure_secs: f64) -> Option<(LatencyPoint, Tracer)> {
    // Moderate closed-loop load (50 slots/core, vs http_load's 500):
    // at full saturation every kernel's tail is dominated by its own
    // backlog queueing, which rewards *low* throughput; at matched
    // moderate load the tail isolates lock contention and accept-queue
    // serialization — the effects the paper attributes to the VFS and
    // shared listen queue.
    let cfg = SimConfig::new(kernel.clone(), AppSpec::web(), cores)
        .warmup_secs(0.05)
        .measure_secs(measure_secs)
        .concurrency(u32::from(cores) * 50)
        .trace(true);
    let sim = Simulation::new(cfg);
    let tracer = sim.tracer();
    let report = sim.run();
    let latency = report.latency?;
    Some((
        LatencyPoint {
            kernel: report.kernel,
            cores,
            seed: report.seed,
            config_hash: report.config_hash,
            throughput_cps: report.throughput_cps,
            latency,
        },
        tracer,
    ))
}

fn dump_trace(tracer: &Tracer, kernel: &str, cores: u16) {
    let Ok(dir) = std::env::var("FS_TRACE_DIR") else {
        return;
    };
    let dir = std::path::PathBuf::from(dir);
    let _ = std::fs::create_dir_all(&dir);
    let chrome = dir.join(format!("{kernel}-{cores}c.trace.json"));
    let folded = dir.join(format!("{kernel}-{cores}c.folded"));
    let trace = tracer.chrome_trace(usecs_to_cycles(1.0) as f64);
    if let Err(e) = std::fs::write(&chrome, trace.to_json()) {
        eprintln!("warning: cannot write {}: {e}", chrome.display());
    }
    if let Err(e) = std::fs::write(&folded, tracer.folded()) {
        eprintln!("warning: cannot write {}: {e}", folded.display());
    } else {
        eprintln!(
            "(trace dumps written to {} and {})",
            chrome.display(),
            folded.display()
        );
    }
}

fn main() {
    let args = HarnessArgs::parse(0.2, "latency_tail");
    let cores = args.cores.clone().unwrap_or_else(|| DEFAULT_CORES.to_vec());
    let kernels = [
        KernelSpec::BaseLinux,
        KernelSpec::Linux313,
        KernelSpec::Fastsocket,
    ];
    eprintln!(
        "Tail latency sweep: connection setup percentiles (cores {cores:?}, {}s windows)...",
        args.measure_secs
    );

    let mut out = LatencyTail::default();
    for kernel in &kernels {
        for &c in &cores {
            let Some((point, tracer)) = run_one(kernel, c, args.measure_secs) else {
                eprintln!(
                    "warning: {} at {c} cores measured no setups",
                    kernel.label()
                );
                continue;
            };
            dump_trace(&tracer, &point.kernel, c);
            out.points.push(point);
        }
    }

    println!("Connection-setup latency (SYN -> ESTABLISHED), microseconds");
    println!(
        "{:<14}{:>6}{:>10}{:>10}{:>10}{:>10}{:>10}{:>12}",
        "kernel", "cores", "p50", "p90", "p99", "p99.9", "max", "setups/s"
    );
    for p in &out.points {
        let s = p.latency.setup;
        println!(
            "{:<14}{:>6}{:>10.1}{:>10.1}{:>10.1}{:>10.1}{:>10.1}{:>12.0}",
            p.kernel, p.cores, s.p50_us, s.p90_us, s.p99_us, s.p999_us, s.max_us, p.throughput_cps
        );
    }

    let tail = |kernel: &str, c: u16| {
        out.points
            .iter()
            .find(|p| p.kernel == kernel && p.cores == c)
            .map(|p| p.latency.setup.p99_us)
    };
    if let Some(&max_cores) = cores.iter().max() {
        if let (Some(base), Some(fs)) = (
            tail("base-2.6.32", max_cores),
            tail("fastsocket", max_cores),
        ) {
            println!(
                "\np99 setup at {max_cores} cores: base {base:.1}us vs fastsocket {fs:.1}us \
                 ({:.1}x)",
                base / fs.max(f64::EPSILON)
            );
        }
    }
    args.write_json(&out);
}
