//! Self-profiles the simulator's event core: the fig4a 24-core cell
//! under the timing-wheel scheduler vs the retained `BinaryHeap`
//! baseline, plus a queue-replay microbenchmark that drives both
//! backends with the same event-arrival profile the cell generates.
//!
//! Writes `BENCH_event_core.json`; `--baseline <path>` compares the
//! wheel wall-clock against a committed baseline and exits nonzero on a
//! >10% regression (tolerance overridable with `--tolerance 0.25`).

use std::path::PathBuf;
use std::time::Instant;

use fastsocket::{AppSpec, KernelSpec, SimConfig, Simulation};
use serde::{Deserialize, Serialize};
use sim_core::{EventQueue, SchedulerKind};

/// One kernel's fig4a 24-core cell timed under both backends.
#[derive(Debug, Serialize, Deserialize)]
struct CellRow {
    kernel: String,
    events: u64,
    heap_secs: f64,
    wheel_secs: f64,
    heap_events_per_sec: f64,
    wheel_events_per_sec: f64,
    /// wheel events/sec over heap events/sec (whole stack, model
    /// dispatch included).
    speedup: f64,
    /// Both backends must produce bit-identical reports.
    digests_match: bool,
}

/// The queue-replay microbenchmark: event-core throughput alone.
#[derive(Debug, Serialize, Deserialize)]
struct ReplayRow {
    events: u64,
    heap_secs: f64,
    wheel_secs: f64,
    heap_events_per_sec: f64,
    wheel_events_per_sec: f64,
    speedup: f64,
}

#[derive(Debug, Serialize, Deserialize)]
struct SelfProfile {
    /// Simulated seconds measured per cell.
    measure_secs: f64,
    cells: Vec<CellRow>,
    /// Sum over cells: wheel wall-clock and the whole-stack speedup.
    total_wheel_secs: f64,
    whole_stack_speedup: f64,
    /// Event-core replay of the cell's arrival profile (no dispatch).
    queue_replay: ReplayRow,
}

fn cell(
    kernel: KernelSpec,
    measure_secs: f64,
    sched: SchedulerKind,
) -> (f64, fastsocket::RunReport) {
    let cfg = SimConfig::new(kernel, AppSpec::web(), 24)
        .warmup_secs(0.1)
        .measure_secs(measure_secs)
        .scheduler(sched);
    let start = Instant::now();
    let report = Simulation::new(cfg).run();
    (start.elapsed().as_secs_f64(), report)
}

/// Replays the fig4a event-arrival profile through one backend: bursty
/// same-timestamp NIC deliveries, near-future softirq/syscall wakeups
/// within the wheel horizon, and a far tail of RTO/TIME_WAIT timers.
/// The mix is generated from a deterministic LCG so both backends see
/// the identical schedule.
fn replay(sched: SchedulerKind, total: u64) -> f64 {
    let mut q: EventQueue<u32> = EventQueue::with_scheduler(sched, 1 << 16);
    let mut rng: u64 = 0x5eed_cafe_f00d_0001;
    let mut next = || {
        rng = rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        rng >> 11
    };
    let mut now: u64 = 0;
    let mut pushed: u64 = 0;
    let mut batch = Vec::new();
    let start = Instant::now();
    // Keep a steady backlog like the sim does (one event per in-flight
    // connection plus armed timers), popping batches between pushes.
    while pushed < total {
        for _ in 0..8 {
            let r = next();
            let delta = match r % 100 {
                // NIC burst: several segments at the same tick.
                0..=44 => r % 64,
                // softirq / syscall continuations: a few microseconds.
                45..=84 => 1_000 + r % 2_000_000,
                // delayed-ACK / RTO: around the wheel horizon.
                85..=97 => 2_000_000 + r % 600_000_000,
                // TIME_WAIT-scale far future.
                _ => 2_000_000_000 + r % 8_000_000_000,
            };
            q.push(now + delta, pushed as u32);
            pushed += 1;
        }
        while q.len() > 12_000 {
            if let Some(t) = q.pop_batch(&mut batch) {
                now = t;
                batch.clear();
            }
        }
    }
    while q.pop_batch(&mut batch).is_some() {
        batch.clear();
    }
    start.elapsed().as_secs_f64()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut measure_secs = 0.05;
    let mut json_path: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut tolerance = 0.10;
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json_path = it.next().map(PathBuf::from),
            "--baseline" => baseline = it.next().map(PathBuf::from),
            "--tolerance" => {
                tolerance = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--tolerance <fraction>");
            }
            other => measure_secs = other.parse().expect("measure seconds"),
        }
    }
    if json_path.is_none() {
        if let Ok(dir) = std::env::var("FS_RESULTS_DIR") {
            json_path = Some(PathBuf::from(dir).join("BENCH_event_core.json"));
        }
    }

    eprintln!("self-profiling the event core (fig4a 24-core cells, {measure_secs}s windows)...");
    let mut cells = Vec::new();
    for kernel in [
        KernelSpec::BaseLinux,
        KernelSpec::Linux313,
        KernelSpec::Fastsocket,
    ] {
        let (heap_secs, heap_report) = cell(kernel.clone(), measure_secs, SchedulerKind::Heap);
        let (wheel_secs, wheel_report) = cell(kernel.clone(), measure_secs, SchedulerKind::Wheel);
        let events = wheel_report.events;
        cells.push(CellRow {
            kernel: wheel_report.kernel.clone(),
            events,
            heap_secs,
            wheel_secs,
            heap_events_per_sec: events as f64 / heap_secs,
            wheel_events_per_sec: events as f64 / wheel_secs,
            speedup: heap_secs / wheel_secs,
            digests_match: heap_report.results_digest() == wheel_report.results_digest(),
        });
    }

    let replay_events: u64 = 8_000_000;
    let heap_secs = replay(SchedulerKind::Heap, replay_events);
    let wheel_secs = replay(SchedulerKind::Wheel, replay_events);
    let queue_replay = ReplayRow {
        events: replay_events,
        heap_secs,
        wheel_secs,
        heap_events_per_sec: replay_events as f64 / heap_secs,
        wheel_events_per_sec: replay_events as f64 / wheel_secs,
        speedup: heap_secs / wheel_secs,
    };

    let total_wheel_secs: f64 = cells.iter().map(|c| c.wheel_secs).sum();
    let total_heap_secs: f64 = cells.iter().map(|c| c.heap_secs).sum();
    let profile = SelfProfile {
        measure_secs,
        whole_stack_speedup: total_heap_secs / total_wheel_secs,
        total_wheel_secs,
        cells,
        queue_replay,
    };

    println!("event-core self-profile (fig4a 24-core cell, {measure_secs}s simulated)");
    println!(
        "{:<14}{:>10}{:>12}{:>12}{:>14}{:>14}{:>9}",
        "kernel", "events", "heap s", "wheel s", "heap ev/s", "wheel ev/s", "speedup"
    );
    for c in &profile.cells {
        println!(
            "{:<14}{:>10}{:>12.3}{:>12.3}{:>14.0}{:>14.0}{:>8.2}x{}",
            c.kernel,
            c.events,
            c.heap_secs,
            c.wheel_secs,
            c.heap_events_per_sec,
            c.wheel_events_per_sec,
            c.speedup,
            if c.digests_match {
                ""
            } else {
                "  DIGEST MISMATCH"
            },
        );
    }
    let r = &profile.queue_replay;
    println!(
        "{:<14}{:>10}{:>12.3}{:>12.3}{:>14.0}{:>14.0}{:>8.2}x",
        "queue-replay",
        r.events,
        r.heap_secs,
        r.wheel_secs,
        r.heap_events_per_sec,
        r.wheel_events_per_sec,
        r.speedup
    );
    println!(
        "whole-stack speedup: {:.2}x; event-core speedup: {:.2}x",
        profile.whole_stack_speedup, r.speedup
    );

    if profile.cells.iter().any(|c| !c.digests_match) {
        eprintln!("FAIL: scheduler backends disagree on results");
        std::process::exit(1);
    }

    if let Some(path) = &json_path {
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        let s = serde_json::to_string_pretty(&profile).expect("serialize");
        std::fs::write(path, s).unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        eprintln!("(raw results written to {})", path.display());
    }

    if let Some(path) = &baseline {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read baseline {}: {e}", path.display()));
        let base: SelfProfile = serde_json::from_str(&text).expect("baseline parses");
        // Compare events/sec rather than raw wall-clock so a short smoke
        // window can be held against the committed full-length baseline
        // (events/sec is window-independent; wall-clock is not).
        let eps = |p: &SelfProfile| {
            let events: u64 = p.cells.iter().map(|c| c.events).sum();
            events as f64 / p.total_wheel_secs
        };
        let (ours, theirs) = (eps(&profile), eps(&base));
        println!(
            "regression check: {ours:.0} ev/s vs baseline {theirs:.0} ev/s (-{:.0}% allowed)",
            tolerance * 100.0
        );
        if ours < theirs * (1.0 - tolerance) {
            eprintln!(
                "FAIL: wheel throughput regressed >{:.0}% vs baseline",
                tolerance * 100.0
            );
            std::process::exit(1);
        }
    }
}
