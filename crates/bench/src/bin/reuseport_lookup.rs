//! Regenerates the §2.1 in-text claim: with `SO_REUSEPORT`,
//! `inet_lookup_listener` costs 0.26% of CPU cycles on one core but
//! soars to 24.2% per core at 24 cores (the O(n) bucket walk over
//! per-process listen socket copies).

use fastsocket::experiments::micro;
use fastsocket_bench::{pct, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse(0.2, "reuseport_lookup");
    let cores = args
        .cores
        .clone()
        .unwrap_or_else(|| vec![1, 4, 8, 12, 16, 20, 24]);
    eprintln!("SO_REUSEPORT listener-lookup cost sweep (cores {cores:?})...");
    let points = micro::reuseport_lookup_share(&cores, args.measure_secs);

    println!("inet_lookup_listener cycle share under SO_REUSEPORT (nginx workload)");
    println!("{:>6} {:>12} {:>14}", "cores", "share", "entries/walk");
    for p in &points {
        println!("{:>6} {:>12} {:>14.1}", p.cores, pct(p.share), p.avg_walk);
    }
    println!("\npaper: 0.26% at 1 core, 24.2% per core at 24 cores");
    args.write_json(&points);
}
