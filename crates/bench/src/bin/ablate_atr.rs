//! Ablation: Flow Director ATR's locality as a function of its
//! signature-table size and sampling rate.
//!
//! The paper measures 76.5% local packets from ATR — a best-effort
//! figure set by hardware limits. This sweep shows the two mechanisms:
//! a small table collides (evicting live flows), and a large sampling
//! period misses short flows whose SYN/FIN installs got overwritten.

use fastsocket::experiments::fig5::NicSetup;
use fastsocket::{AppSpec, KernelSpec, SimConfig, Simulation};
use fastsocket_bench::{pct, HarnessArgs};
use sim_nic::AtrConfig;

fn main() {
    let args = HarnessArgs::parse(0.15, "ablate_atr");
    let cores = 16;
    println!("ATR locality vs signature-table size (HAProxy, {cores} cores)\n");
    println!(
        "{:>12} {:>12} {:>12} {:>12}",
        "table slots", "sample rate", "local", "cps"
    );
    let mut rows = Vec::new();
    for slots in [512usize, 2_048, 8_192, 32_768] {
        for sample in [20u32, 200] {
            let mut cfg = SimConfig::new(
                KernelSpec::Custom(Box::new(NicSetup::FdirAtr.kernel(cores))),
                AppSpec::proxy(),
                cores,
            )
            .steering(sim_nic::SteeringMode::FdirAtr)
            .warmup_secs(0.05)
            .measure_secs(args.measure_secs);
            cfg.atr = AtrConfig {
                table_slots: slots,
                sample_rate: sample,
            };
            let r = Simulation::new(cfg).run();
            println!(
                "{:>12} {:>12} {:>12} {:>12.0}",
                slots,
                sample,
                pct(r.local_packet_proportion),
                r.throughput_cps
            );
            rows.push((slots, sample, r.local_packet_proportion, r.throughput_cps));
        }
    }
    println!("\npaper's 82599 measurement: 76.5% local under ATR");
    args.write_json(&rows);
}
