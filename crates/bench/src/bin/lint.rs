//! Write-scope lint: enforces component ownership of mutable state in
//! `tcp-stack` at the source level, complementing the runtime
//! detectors in `sim-check`.
//!
//! Three rules, checked by a small token scanner over
//! `crates/tcp-stack/src/*.rs` (comments and strings stripped):
//!
//! 1. **Congestion-control scope** — `cwnd` / `ssthresh` may be
//!    constructed or mutated only inside `cc.rs`. Everyone else goes
//!    through `CongestionControl` trait methods.
//! 2. **Window scope** — the sliding-window state fields (`una`,
//!    `pending`, `fin_pending`, `gso_idx`, ...) may be assigned only
//!    inside `window.rs`, and `SendWindow` / `RecvWindow` /
//!    `DataPlane` may be struct-literal-constructed only there
//!    (everyone else calls `new`).
//! 3. **TCB component map** — every field of the `Tcb` struct maps to
//!    exactly one owning component; an unmapped or doubly-mapped field
//!    fails the lint, so adding a TCB field forces an explicit
//!    ownership decision.
//!
//! Run with `--self-test` to prove the scanner actually fails on
//! deliberately mis-scoped writes before trusting its clean bill.

use std::fmt::Write as _;
use std::path::Path;
use std::process::ExitCode;

/// Fields whose writes must stay inside `window.rs`.
const WINDOW_FIELDS: &[&str] = &[
    "una",
    "peer_wnd",
    "dup_acks",
    "in_recovery",
    "recover",
    "pending",
    "fin_pending",
    "budget",
    "used",
    "gso_idx",
    "gro_idx",
];

/// Types that may only be struct-literal-constructed in `window.rs`.
const WINDOW_TYPES: &[&str] = &["SendWindow", "RecvWindow", "DataPlane"];

/// Fields whose writes must stay inside `cc.rs`.
const CC_FIELDS: &[&str] = &["cwnd", "ssthresh"];

/// The TCB ownership map: every `Tcb` field belongs to exactly one
/// component. Rule 3 cross-checks this against the struct definition
/// in `tcb.rs`, so the list cannot silently go stale.
const TCB_COMPONENTS: &[(&str, &[&str])] = &[
    (
        "tcb.rs (identity & registry)",
        &[
            "id", "gen", "flow", "active", "lock", "obj", "buf_obj", "app_core",
        ],
    ),
    ("state.rs (state machine)", &["state"]),
    (
        "stack.rs (sequence & retransmit path)",
        &[
            "snd_nxt",
            "rcv_nxt",
            "rx_ready",
            "peer_fin_seen",
            "unacked",
            "rtx_attempts",
            "rtx_timer",
        ],
    ),
    (
        "sim-os integration (vfs/epoll/process)",
        &["owner", "epoll", "epoll_data", "vfs"],
    ),
    (
        "listen.rs (accept & SYN queues)",
        &["queued_in", "syn_queued_in"],
    ),
    ("established.rs (table membership)", &["in_est", "est_home"]),
    ("window.rs (data plane)", &["dp"]),
    (
        "stack.rs mem_* helpers (sim-res ledger)",
        &["mem_charge", "mem_rcv", "mem_snd", "mem_orphan", "mem_core"],
    ),
];

/// One lint finding: file, 1-based line, and what went wrong.
#[derive(Debug, PartialEq, Eq)]
struct Violation {
    file: String,
    line: usize,
    detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}", self.file, self.line, self.detail)
    }
}

/// Strips line comments, block comments, and string/char literals so
/// the token rules never fire on prose or test fixtures. Keeps line
/// structure intact (newlines survive) so reported line numbers match
/// the source. `in_block` carries `/* ... */` state across lines.
fn strip_noise(src: &str) -> String {
    let mut out = String::with_capacity(src.len());
    let b = src.as_bytes();
    let mut i = 0;
    let mut in_block = false;
    while i < b.len() {
        if in_block {
            if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                in_block = false;
                i += 2;
            } else {
                if b[i] == b'\n' {
                    out.push('\n');
                }
                i += 1;
            }
            continue;
        }
        match b[i] {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                // Line comment: skip to end of line.
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                in_block = true;
                i += 2;
            }
            b'"' => {
                // String literal: skip, honoring escapes.
                out.push(' ');
                i += 1;
                while i < b.len() && b[i] != b'"' {
                    if b[i] == b'\\' {
                        i += 1;
                    }
                    if i < b.len() {
                        if b[i] == b'\n' {
                            out.push('\n');
                        }
                        i += 1;
                    }
                }
                i += 1;
            }
            b'\'' if i + 2 < b.len() && (b[i + 1] == b'\\' || b[i + 2] == b'\'') => {
                // Char literal (not a lifetime): skip it.
                i += 1;
                while i < b.len() && b[i] != b'\'' {
                    if b[i] == b'\\' {
                        i += 1;
                    }
                    i += 1;
                }
                i += 1;
            }
            c => {
                out.push(char::from(c));
                i += 1;
            }
        }
    }
    out
}

/// Whether the byte at `pos` starts an assignment operator (`=`,
/// `+=`, ..., but not `==`, `<=`, `>=`, `!=` or `=>`).
fn is_assignment(rest: &str) -> bool {
    let rest = rest.trim_start();
    for op in ["+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="] {
        if rest.starts_with(op) {
            return true;
        }
    }
    rest.starts_with('=') && !rest.starts_with("==") && !rest.starts_with("=>")
}

/// Whether `line[at..]` starts with `word` at an identifier boundary
/// on both sides.
fn word_at(line: &str, at: usize, word: &str) -> bool {
    if !line[at..].starts_with(word) {
        return false;
    }
    let after = at + word.len();
    !line[after..]
        .chars()
        .next()
        .is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// Scans one (already noise-stripped) line for field writes and
/// struct-literal constructions outside their owning module.
fn scan_line(file: &str, lineno: usize, line: &str, out: &mut Vec<Violation>) {
    let in_cc = file == "cc.rs";
    let in_window = file == "window.rs";

    // Rule 1 & 2 (mutation): `.field` followed by an assignment op.
    for (idx, _) in line.match_indices('.') {
        let at = idx + 1;
        for &f in CC_FIELDS.iter().chain(WINDOW_FIELDS) {
            if !word_at(line, at, f) {
                continue;
            }
            let cc_field = CC_FIELDS.contains(&f);
            if (cc_field && in_cc) || (!cc_field && in_window) {
                continue;
            }
            if is_assignment(&line[at + f.len()..]) {
                let owner = if cc_field { "cc.rs" } else { "window.rs" };
                out.push(Violation {
                    file: file.to_string(),
                    line: lineno,
                    detail: format!(
                        "write to `{f}` outside {owner}: this field may only \
                         be mutated through {owner} methods"
                    ),
                });
            }
        }
    }

    // Rule 1 (construction): `cwnd:` / `ssthresh:` struct-literal
    // field init outside cc.rs. Lines declaring a `fn` are exempt —
    // a parameter named `cwnd: u32` is a read-side binding.
    if !in_cc && !line.contains("fn ") {
        for &f in CC_FIELDS {
            for (idx, _) in line.match_indices(f) {
                let boundary_ok = idx == 0
                    || !line[..idx]
                        .chars()
                        .next_back()
                        .is_some_and(|c| c.is_alphanumeric() || c == '_' || c == '.');
                if boundary_ok
                    && word_at(line, idx, f)
                    && line[idx + f.len()..].trim_start().starts_with(':')
                    && !line[idx + f.len()..].trim_start().starts_with("::")
                {
                    out.push(Violation {
                        file: file.to_string(),
                        line: lineno,
                        detail: format!(
                            "`{f}` constructed outside cc.rs: congestion state \
                             is built only by cc::build"
                        ),
                    });
                }
            }
        }
    }

    // Rule 2 (construction): `SendWindow {` etc. outside window.rs.
    if !in_window {
        for &ty in WINDOW_TYPES {
            for (idx, _) in line.match_indices(ty) {
                let boundary_ok = idx == 0
                    || !line[..idx]
                        .chars()
                        .next_back()
                        .is_some_and(|c| c.is_alphanumeric() || c == '_');
                if boundary_ok
                    && word_at(line, idx, ty)
                    && line[idx + ty.len()..].trim_start().starts_with('{')
                {
                    out.push(Violation {
                        file: file.to_string(),
                        line: lineno,
                        detail: format!(
                            "`{ty}` struct literal outside window.rs: \
                             construct it with `{ty}::new`"
                        ),
                    });
                }
            }
        }
    }
}

/// Scans one file's source text.
fn scan_file(file: &str, src: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    for (i, line) in strip_noise(src).lines().enumerate() {
        scan_line(file, i + 1, line, &mut out);
    }
    out
}

/// Extracts the field names of `pub struct Tcb` from (noise-stripped)
/// `tcb.rs` source.
fn tcb_fields(src: &str) -> Vec<String> {
    let stripped = strip_noise(src);
    let mut fields = Vec::new();
    let mut in_struct = false;
    for line in stripped.lines() {
        let t = line.trim();
        if t.starts_with("pub struct Tcb {") {
            in_struct = true;
            continue;
        }
        if in_struct {
            if t.starts_with('}') {
                break;
            }
            if let Some(rest) = t.strip_prefix("pub ") {
                if let Some((name, _)) = rest.split_once(':') {
                    let name = name.trim();
                    if name.chars().all(|c| c.is_alphanumeric() || c == '_') && !name.is_empty() {
                        fields.push(name.to_string());
                    }
                }
            }
        }
    }
    fields
}

/// Rule 3: every `Tcb` field maps to exactly one component.
fn check_tcb_map(fields: &[String]) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in fields {
        let owners: Vec<&str> = TCB_COMPONENTS
            .iter()
            .filter(|(_, fs)| fs.contains(&f.as_str()))
            .map(|(c, _)| *c)
            .collect();
        match owners.len() {
            1 => {}
            0 => out.push(Violation {
                file: "tcb.rs".to_string(),
                line: 0,
                detail: format!(
                    "Tcb field `{f}` is not mapped to any component: \
                     assign it an owner in the lint's TCB_COMPONENTS map"
                ),
            }),
            _ => out.push(Violation {
                file: "tcb.rs".to_string(),
                line: 0,
                detail: format!("Tcb field `{f}` is mapped to {owners:?} (must be exactly one)"),
            }),
        }
    }
    // And the reverse: a mapped field that no longer exists is stale.
    for (comp, fs) in TCB_COMPONENTS {
        for f in *fs {
            if !fields.iter().any(|x| x == f) {
                out.push(Violation {
                    file: "tcb.rs".to_string(),
                    line: 0,
                    detail: format!(
                        "component map lists `{f}` under {comp} but Tcb has no such field"
                    ),
                });
            }
        }
    }
    out
}

/// Deliberately mis-scoped snippets: the scanner must flag each, and
/// must stay silent on the clean one. Exercised by `--self-test`.
fn self_test() -> Result<(), String> {
    let bad: &[(&str, &str, &str)] = &[
        (
            "stack.rs",
            "fn f(t: &mut Tcb) { t.dp.as_mut().unwrap().cc.cwnd = 10; }",
            "cwnd",
        ),
        (
            "established.rs",
            "fn f(dp: &mut DataPlane) {\n    dp.snd.pending -= 4;\n}",
            "pending",
        ),
        (
            "stack.rs",
            "let w = SendWindow { una: 0, peer_wnd: 0 };",
            "SendWindow",
        ),
        (
            "listen.rs",
            "fn f(s: &mut Snd) { s.fin_pending = true; }",
            "fin_pending",
        ),
        ("stack.rs", "let c = Reno { cwnd: 4, ssthresh: 8 };", "cwnd"),
    ];
    for (file, src, needle) in bad {
        let v = scan_file(file, src);
        if v.is_empty() {
            return Err(format!(
                "self-test: mis-scoped write in {file} was NOT flagged: {src}"
            ));
        }
        if !v.iter().any(|v| v.detail.contains(needle)) {
            return Err(format!(
                "self-test: {file} flagged, but not for `{needle}`: {v:?}"
            ));
        }
    }
    let clean: &[(&str, &str)] = &[
        ("cc.rs", "self.cwnd = self.ssthresh;"),
        ("window.rs", "self.snd.pending -= u64::from(seg_len);"),
        (
            "stack.rs",
            "if dp.snd.pending == 0 { dp.snd.on_ack(ack, wnd); }\n\
             let b = Box::new(DataPlane::new(c, snd_nxt));\n\
             // dp.snd.pending = 99; (commented out)\n\
             let s = \"dp.gso_idx = 1\";",
        ),
        (
            "window.rs",
            "pub fn usable(&self, snd_nxt: u32, cwnd: u32) -> u32 {",
        ),
        ("stats.rs", "pub dp: Option<DataPlaneStats>,"),
    ];
    for (file, src) in clean {
        let v = scan_file(file, src);
        if !v.is_empty() {
            return Err(format!("self-test: false positive in {file}: {v:?}"));
        }
    }
    // Rule 3 must catch both an unmapped and a vanished field.
    let fields = vec!["id".to_string(), "brand_new_field".to_string()];
    let v = check_tcb_map(&fields);
    if !v.iter().any(|v| v.detail.contains("brand_new_field")) {
        return Err("self-test: unmapped Tcb field was NOT flagged".to_string());
    }
    Ok(())
}

fn main() -> ExitCode {
    let self_test_mode = std::env::args().any(|a| a == "--self-test");
    if self_test_mode {
        return match self_test() {
            Ok(()) => {
                println!("write-scope lint self-test: all mis-scoped snippets flagged");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        };
    }

    let src_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../tcp-stack/src");
    let mut entries: Vec<_> = match std::fs::read_dir(&src_dir) {
        Ok(rd) => rd
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "rs"))
            .collect(),
        Err(e) => {
            eprintln!("lint: cannot read {}: {e}", src_dir.display());
            return ExitCode::FAILURE;
        }
    };
    entries.sort();

    let mut violations = Vec::new();
    let mut files = 0usize;
    let mut tcb_src = None;
    for path in &entries {
        let Ok(src) = std::fs::read_to_string(path) else {
            eprintln!("lint: cannot read {}", path.display());
            return ExitCode::FAILURE;
        };
        let file = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        if file == "tcb.rs" {
            tcb_src = Some(src.clone());
        }
        violations.extend(scan_file(&file, &src));
        files += 1;
    }
    match tcb_src {
        Some(src) => violations.extend(check_tcb_map(&tcb_fields(&src))),
        None => violations.push(Violation {
            file: "tcb.rs".to_string(),
            line: 0,
            detail: "tcb.rs not found; cannot check the TCB component map".to_string(),
        }),
    }

    if violations.is_empty() {
        let mut summary = String::new();
        let _ = write!(
            summary,
            "write-scope lint: {files} files clean ({} cc-scoped, {} window-scoped fields, \
             {} TCB components)",
            CC_FIELDS.len(),
            WINDOW_FIELDS.len(),
            TCB_COMPONENTS.len()
        );
        println!("{summary}");
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("lint: {v}");
        }
        eprintln!("write-scope lint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}
