//! Regenerates Table 1: lock contention counts (HAProxy, 24 cores,
//! scaled to the paper's 60-second window) as Fastsocket features are
//! enabled incrementally.

use fastsocket::experiments::table1::{self, FeatureStep, PAPER_BASELINE, TABLE1_LOCKS};
use fastsocket_bench::{kcps, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse(0.25, "table1");
    let cores = args
        .cores
        .as_ref()
        .and_then(|c| c.first().copied())
        .unwrap_or(24);
    eprintln!(
        "Table 1: lockstat across feature steps ({cores} cores, {}s windows, scaled to 60s)...",
        args.measure_secs
    );
    let table = table1::run(cores, args.measure_secs);

    println!("Table 1 — lock contention counts (scaled to 60 s), {cores} cores, HAProxy");
    print!("{:<14}", "lock");
    for step in FeatureStep::ALL {
        print!("{:>14}", step.label());
    }
    println!("{:>14}", "paper(Base)");
    for &lock in &TABLE1_LOCKS {
        print!("{lock:<14}");
        for step in FeatureStep::ALL {
            let v = table.get(step.label(), lock).unwrap_or(0);
            print!("{:>14}", humanize(v));
        }
        let paper = PAPER_BASELINE
            .iter()
            .find(|(n, _)| *n == lock)
            .map_or(0, |(_, v)| *v);
        println!("{:>14}", humanize(paper));
    }
    print!("{:<14}", "throughput");
    for col in &table.columns {
        print!("{:>14}", kcps(col.cps));
    }
    println!();

    // The paper's qualitative deltas.
    let final_step = FeatureStep::Vlre.label();
    let zeroed = [
        "dcache_lock",
        "inode_lock",
        "slock",
        "ep.lock",
        "ehash.lock",
    ]
    .iter()
    .all(|l| table.get(final_step, l) == Some(0));
    println!(
        "\nfull Fastsocket zeroes dcache/inode/slock/ep/ehash contention: {} (paper: yes)",
        if zeroed { "yes" } else { "NO" }
    );
    args.write_json(&table);
}

fn humanize(v: u64) -> String {
    if v >= 1_000_000 {
        format!("{:.1}M", v as f64 / 1e6)
    } else if v >= 1_000 {
        format!("{:.1}K", v as f64 / 1e3)
    } else {
        v.to_string()
    }
}
