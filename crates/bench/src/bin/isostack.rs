//! Related-work baseline (§5, IsoStack): dedicate one core to the whole
//! network stack and run applications on the rest.
//!
//! "when adopting IsoStack in 10G and even 40G network, the dedicated
//! single CPU core will be overloaded, especially in the CPU-intensive
//! short-lived connection scenarios. Fastsocket shows that full
//! partition of TCB management is a more efficient and feasible
//! alternative."

use fastsocket::{AppSpec, KernelSpec, SimConfig, Simulation};
use fastsocket_bench::{kcps, pct, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse(0.2, "isostack");
    let cores_list = args.cores.clone().unwrap_or_else(|| vec![4, 8, 16, 24]);
    println!("web server throughput: IsoStack (dedicated stack core) vs Fastsocket\n");
    println!(
        "{:<12} {:>12} {:>16} {:>12}",
        "cores", "isostack", "stack-core util", "fastsocket"
    );
    let mut rows = Vec::new();
    for &cores in &cores_list {
        let iso = {
            let mut cfg = SimConfig::new(KernelSpec::BaseLinux, AppSpec::web(), cores)
                .warmup_secs(0.1)
                .measure_secs(args.measure_secs);
            cfg.dedicated_stack_core = true;
            Simulation::new(cfg).run()
        };
        let fs = {
            let cfg = SimConfig::new(KernelSpec::Fastsocket, AppSpec::web(), cores)
                .warmup_secs(0.1)
                .measure_secs(args.measure_secs);
            Simulation::new(cfg).run()
        };
        println!(
            "{:<12} {:>12} {:>16} {:>12}",
            cores,
            kcps(iso.throughput_cps),
            pct(iso.core_utilization[0]),
            kcps(fs.throughput_cps),
        );
        rows.push((
            cores,
            iso.throughput_cps,
            iso.core_utilization[0],
            fs.throughput_cps,
        ));
    }
    println!(
        "\nThe dedicated stack core saturates (util → 100%) and throughput \
         flatlines no\nmatter how many application cores are added; the \
         partitioned design keeps\nscaling — the paper's §5 argument."
    );
    args.write_json(&rows);
}
