//! SLO-capacity sweep: latency-vs-load curves under *open-loop* traffic.
//!
//! Closed-loop sweeps (fig4a/fig4b) measure peak throughput with a
//! fixed client population that politely waits for the server. This
//! harness instead offers a Poisson arrival schedule (`sim-load`) that
//! does not slow down when the kernel falls behind, climbs a ladder of
//! offered rates per kernel, and reports the **SLO capacity**: the
//! highest rung where connection-setup p99 stays at or under 1 ms *and*
//! goodput keeps up with the offered load. Latency is measured from the
//! scheduled arrival cycle (queue wait included), so the curves are
//! free of coordinated omission.
//!
//! The arrival schedule depends only on the seed and the rung — every
//! kernel on a rung serves the byte-identical offered load (asserted
//! via `LoadReport::schedule_digest`), and the first rung of every
//! ladder runs twice with the same seed to pin determinism.
//!
//! `--smoke` runs a short 2-core ladder with the sanitizers armed and
//! schema-validates its own emitted `BENCH_capacity.json`; `--validate
//! <path>` schema-checks a committed full-matrix result. Both exit
//! nonzero on any violation — the CI gates wired into
//! `scripts/check.sh`.
//!
//! Full run: `capacity --json results/capacity.json > results/capacity.txt`
//! (also rewrites `results/BENCH_capacity.json` next to the JSON path).

use fastsocket::{AppSpec, KernelSpec, OpenLoopConfig, RunReport, SimConfig, Simulation};
use fastsocket_bench::{assert_deterministic, kcps, pct, HarnessArgs};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Connection-setup p99 budget (µs) a rung must meet.
const SLO_P99_US: f64 = 1_000.0;
/// Fraction of the offered rate that must complete within the window.
const GOODPUT_FLOOR: f64 = 0.97;
/// A ladder stops early after this many consecutive failing rungs.
const EARLY_STOP: usize = 2;

const KERNELS: [KernelSpec; 3] = [
    KernelSpec::BaseLinux,
    KernelSpec::Linux313,
    KernelSpec::Fastsocket,
];

/// Offered-rate ladders (connections/sec), bracketing every kernel's
/// closed-loop peak at that core count (fig4a) from well under to
/// slightly over, so each column fails somewhere on the ladder.
fn ladder_rates(cores: u16) -> Vec<f64> {
    let kcps: &[f64] = match cores {
        0..=2 => &[20.0, 35.0, 50.0, 65.0],
        8 => &[60.0, 90.0, 115.0, 135.0, 155.0, 175.0, 195.0, 215.0],
        _ => &[
            100.0, 150.0, 190.0, 230.0, 280.0, 330.0, 380.0, 430.0, 480.0, 530.0, 580.0, 640.0,
        ],
    };
    kcps.iter().map(|k| k * 1_000.0).collect()
}

/// Window lengths for one run.
#[derive(Debug, Clone, Copy)]
struct Timing {
    warmup: f64,
    measure: f64,
}

impl Timing {
    fn full(measure: f64) -> Timing {
        Timing {
            warmup: 0.05,
            measure,
        }
    }

    fn smoke() -> Timing {
        Timing {
            warmup: 0.01,
            measure: 0.05,
        }
    }
}

/// One (kernel, cores, offered-rate) measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Rung {
    rate_cps: f64,
    throughput_cps: f64,
    /// Completions as a fraction of the offered rate.
    goodput: f64,
    setup_p50_us: f64,
    setup_p99_us: f64,
    abandoned: u64,
    timeouts: u64,
    peak_backlog: u64,
    slo_pass: bool,
    /// Arrival-schedule digest — identical for every kernel on a rung.
    schedule_digest: String,
}

/// One kernel's climb at one core count.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Ladder {
    kernel: String,
    cores: u16,
    /// Highest offered rate that met the SLO (0 if none did).
    slo_capacity_cps: f64,
    rungs: Vec<Rung>,
}

/// The whole emitted artifact (`capacity.json` and
/// `BENCH_capacity.json` share this schema).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CapacityReport {
    measure_secs: f64,
    slo_p99_us: f64,
    goodput_floor: f64,
    seed: u64,
    ladders: Vec<Ladder>,
}

impl CapacityReport {
    fn capacity(&self, kernel: &str, cores: u16) -> Option<f64> {
        self.ladders
            .iter()
            .find(|l| l.kernel == kernel && l.cores == cores)
            .map(|l| l.slo_capacity_cps)
    }
}

fn cell(kernel: KernelSpec, cores: u16, rate: f64, t: Timing, check: bool, seed: u64) -> RunReport {
    let cfg = SimConfig::new(kernel, AppSpec::web(), cores)
        .warmup_secs(t.warmup)
        .measure_secs(t.measure)
        .seed(seed)
        .trace(true)
        .check(check)
        .open_loop(OpenLoopConfig::poisson(rate).population(500 * u32::from(cores)));
    Simulation::new(cfg).run()
}

/// Runs one rung; `doubled` repeats it with the same seed and asserts
/// the reproducibility gate (bit-identical results and schedule).
fn run_rung(
    kernel: KernelSpec,
    cores: u16,
    rate: f64,
    t: Timing,
    check: bool,
    seed: u64,
    doubled: bool,
) -> Rung {
    let run = || cell(kernel.clone(), cores, rate, t, check, seed);
    let r = if doubled {
        assert_deterministic(
            format_args!("open loop {} {cores}c @{}", kernel.label(), kcps(rate)),
            run,
            |r| {
                (
                    r.results_digest(),
                    r.load.as_ref().unwrap().schedule_digest.clone(),
                )
            },
        )
    } else {
        run()
    };
    if check {
        let checks = r.checks.as_ref().expect("sanitizers were armed");
        assert!(
            checks.is_clean(),
            "sanitizer findings at {} {cores}c @{}: {checks:?}",
            kernel.label(),
            kcps(rate)
        );
    }
    let load = r.load.as_ref().expect("open-loop run reports load");
    let lat = r.latency.as_ref().expect("trace was on");
    let goodput = r.throughput_cps / rate;
    let slo_pass = lat.setup.p99_us <= SLO_P99_US && goodput >= GOODPUT_FLOOR;
    Rung {
        rate_cps: rate,
        throughput_cps: r.throughput_cps,
        goodput,
        setup_p50_us: lat.setup.p50_us,
        setup_p99_us: lat.setup.p99_us,
        abandoned: load.abandoned_wait + load.abandoned_connect,
        timeouts: r.timeouts,
        peak_backlog: load.peak_backlog,
        slo_pass,
        schedule_digest: load.schedule_digest.clone(),
    }
}

/// Climbs the ladder for one kernel, stopping after [`EARLY_STOP`]
/// consecutive SLO failures (the curve only gets worse from there).
fn climb(
    kernel: KernelSpec,
    cores: u16,
    rates: &[f64],
    t: Timing,
    check: bool,
    seed: u64,
) -> Ladder {
    let mut rungs = Vec::new();
    let mut fails = 0usize;
    for (i, &rate) in rates.iter().enumerate() {
        let rung = run_rung(kernel.clone(), cores, rate, t, check, seed, i == 0);
        eprintln!(
            "  {:<12} {cores:>2}c @{:>6}: {:>6} cps  p99 {:>8.1}µs  goodput {}  {}",
            kernel.label(),
            kcps(rate),
            kcps(rung.throughput_cps),
            rung.setup_p99_us,
            pct(rung.goodput),
            if rung.slo_pass { "pass" } else { "FAIL" }
        );
        fails = if rung.slo_pass { 0 } else { fails + 1 };
        rungs.push(rung);
        if fails >= EARLY_STOP {
            break;
        }
    }
    let slo_capacity_cps = rungs
        .iter()
        .filter(|r| r.slo_pass)
        .map(|r| r.rate_cps)
        .fold(0.0, f64::max);
    Ladder {
        kernel: kernel.label().to_string(),
        cores,
        slo_capacity_cps,
        rungs,
    }
}

/// Every kernel on a rung must have served the byte-identical arrival
/// schedule — the offered load is a property of the seed, not the
/// kernel under test.
fn assert_shared_schedule(ladders: &[Ladder]) {
    for cores in ladders.iter().map(|l| l.cores).collect::<Vec<_>>() {
        let cohort: Vec<&Ladder> = ladders.iter().filter(|l| l.cores == cores).collect();
        let Some(first) = cohort.first() else {
            continue;
        };
        for l in &cohort[1..] {
            for (a, b) in first.rungs.iter().zip(l.rungs.iter()) {
                assert_eq!(
                    a.schedule_digest,
                    b.schedule_digest,
                    "kernel {} saw a different arrival schedule than {} at {cores} cores @{}",
                    l.kernel,
                    first.kernel,
                    kcps(a.rate_cps)
                );
            }
        }
    }
}

fn sweep(core_counts: &[u16], t: Timing, check: bool, seed: u64) -> CapacityReport {
    let mut ladders = Vec::new();
    for &cores in core_counts {
        let rates = ladder_rates(cores);
        for kernel in KERNELS {
            ladders.push(climb(kernel, cores, &rates, t, check, seed));
        }
    }
    assert_shared_schedule(&ladders);
    CapacityReport {
        measure_secs: t.measure,
        slo_p99_us: SLO_P99_US,
        goodput_floor: GOODPUT_FLOOR,
        seed,
        ladders,
    }
}

fn print_report(report: &CapacityReport, core_counts: &[u16]) {
    println!(
        "SLO capacity under open-loop Poisson load (p99 setup ≤ {:.0}µs, \
         goodput ≥ {}, {:.2}s windows)",
        report.slo_p99_us,
        pct(report.goodput_floor),
        report.measure_secs
    );
    println!();
    for &cores in core_counts {
        println!("latency-vs-load at {cores} cores (setup p99 µs; * = SLO pass):");
        let cohort: Vec<&Ladder> = report.ladders.iter().filter(|l| l.cores == cores).collect();
        let Some(longest) = cohort.iter().max_by_key(|l| l.rungs.len()) else {
            continue;
        };
        print!("{:<14}", "offered");
        for r in &longest.rungs {
            print!("{:>10}", kcps(r.rate_cps));
        }
        println!();
        for l in &cohort {
            print!("{:<14}", l.kernel);
            for r in &l.rungs {
                let mark = if r.slo_pass { "*" } else { "" };
                print!("{:>10}", format!("{:.0}{mark}", r.setup_p99_us));
            }
            println!();
        }
        println!();
    }
    println!("SLO capacity (max sustainable offered cps):");
    print!("{:<14}", "kernel");
    for &cores in core_counts {
        print!("{:>12}", format!("{cores} cores"));
    }
    println!();
    for kernel in KERNELS {
        print!("{:<14}", kernel.label());
        for &cores in core_counts {
            let v = report.capacity(kernel.label(), cores).unwrap_or(0.0);
            print!("{:>12}", kcps(v));
        }
        println!();
    }
}

/// Schema + ordering gate for a full-matrix artifact: all three
/// kernels at 8 and 24 cores, positive capacities, and the paper's
/// scaling story at 24 cores (Fastsocket > SO_REUSEPORT > base).
fn validate_full(path: &Path) {
    let report = parse(path);
    for kernel in KERNELS {
        for cores in [8u16, 24] {
            let cap = report.capacity(kernel.label(), cores).unwrap_or_else(|| {
                panic!(
                    "{}: missing {} @ {cores} cores",
                    path.display(),
                    kernel.label()
                )
            });
            assert!(
                cap > 0.0,
                "{}: {} @ {cores} cores has no passing rung",
                path.display(),
                kernel.label()
            );
        }
    }
    let fs = report.capacity("fastsocket", 24).unwrap();
    let rp = report.capacity("linux-3.13", 24).unwrap();
    let base = report.capacity("base-2.6.32", 24).unwrap();
    assert!(
        fs > rp && rp > base,
        "24-core SLO capacity ordering broken: fastsocket {} / linux-3.13 {} / base {}",
        kcps(fs),
        kcps(rp),
        kcps(base)
    );
    println!(
        "{}: schema OK, 24-core capacity {} > {} > {}",
        path.display(),
        kcps(fs),
        kcps(rp),
        kcps(base)
    );
}

fn parse(path: &Path) -> CapacityReport {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    serde_json::from_str(&text)
        .unwrap_or_else(|e| panic!("{} does not match the capacity schema: {e}", path.display()))
}

fn write_bench(report: &CapacityReport, path: &Path) {
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    let text = serde_json::to_string_pretty(report).expect("serialize capacity report");
    std::fs::write(path, text).unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    eprintln!("(bench summary written to {})", path.display());
}

/// Short 2-core ladder under full sanitizers; emits its own bench
/// artifact to a scratch path and re-parses it, so the writer and the
/// schema cannot drift apart.
fn smoke() {
    let t = Timing::smoke();
    let report = sweep(&[2], t, true, 42);
    print_report(&report, &[2]);
    for l in &report.ladders {
        assert!(
            l.rungs.iter().any(|r| r.slo_pass),
            "{} @ 2 cores never met the SLO in smoke",
            l.kernel
        );
        assert!(
            !l.rungs.is_empty() && l.rungs[0].throughput_cps > 0.0,
            "{} served nothing",
            l.kernel
        );
    }
    let scratch = PathBuf::from("target/capacity-smoke/BENCH_capacity.json");
    write_bench(&report, &scratch);
    let back = parse(&scratch);
    assert_eq!(back.ladders.len(), report.ladders.len());
    for cores in [2u16] {
        for kernel in KERNELS {
            assert_eq!(
                back.capacity(kernel.label(), cores),
                report.capacity(kernel.label(), cores),
                "bench artifact round-trip drifted"
            );
        }
    }
    println!(
        "\ncapacity smoke clean: sanitizers quiet, reruns bit-identical, artifact round-trips."
    );
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.iter().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    if let Some(i) = raw.iter().position(|a| a == "--validate") {
        let path = raw.get(i + 1).expect("--validate <path>");
        validate_full(Path::new(path));
        return;
    }

    let args = HarnessArgs::parse(0.25, "capacity");
    let core_counts: Vec<u16> = args.cores.clone().unwrap_or_else(|| vec![8, 24]);
    let t = Timing::full(args.measure_secs);
    eprintln!(
        "capacity sweep (cores {core_counts:?}, {:.2}s windows)...",
        t.measure
    );
    let report = sweep(&core_counts, t, false, 42);
    print_report(&report, &core_counts);

    if core_counts.contains(&24) {
        let fs = report.capacity("fastsocket", 24).unwrap_or(0.0);
        let rp = report.capacity("linux-3.13", 24).unwrap_or(0.0);
        let base = report.capacity("base-2.6.32", 24).unwrap_or(0.0);
        println!(
            "\n24-core SLO capacity: fastsocket {} vs linux-3.13 {} vs base {} \
             ({:.2}x over base)",
            kcps(fs),
            kcps(rp),
            kcps(base),
            if base > 0.0 { fs / base } else { 0.0 }
        );
        assert!(
            fs > rp && rp > base,
            "open load must reproduce the paper's ordering at 24 cores"
        );
    }

    args.write_json(&report);
    let bench_path = args
        .json_path
        .as_ref()
        .and_then(|p| p.parent())
        .map_or_else(|| PathBuf::from("results"), Path::to_path_buf)
        .join("BENCH_capacity.json");
    write_bench(&report, &bench_path);
}
