//! Regenerates Figure 3: per-core CPU utilization of two 8-core HAProxy
//! servers over a diurnal day — stock kernel vs Fastsocket — and the
//! derived 53.5% effective-capacity improvement.

use fastsocket::experiments::fig3::{self, PAPER_CAPACITY_IMPROVEMENT};
use fastsocket_bench::{pct, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse(0.2, "fig3");
    let cores = args
        .cores
        .as_ref()
        .and_then(|c| c.first().copied())
        .unwrap_or(8);
    // Peak offered load: the production boxes run below saturation so
    // the hottest core stays under the 75% SLA threshold.
    let peak_cps: f64 = std::env::var("FIG3_PEAK_CPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42_000.0);
    eprintln!(
        "Figure 3: diurnal utilization ({cores}-core HAProxy, peak {peak_cps} cps, {}s windows per hour)...",
        args.measure_secs
    );
    let fig = fig3::run(cores, peak_cps, args.measure_secs);

    println!("Figure 3 — per-core utilization over 24 hours ({cores}-core HAProxy)");
    println!(
        "{:>4} {:>10} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8}",
        "hour", "offered", "base avg", "min", "max", "fs avg", "min", "max"
    );
    for (b, f) in fig.base.hours.iter().zip(&fig.fastsocket.hours) {
        println!(
            "{:>4} {:>10.0} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8}",
            b.hour,
            b.offered_cps,
            pct(b.avg),
            pct(b.min),
            pct(b.max),
            pct(f.avg),
            pct(f.min),
            pct(f.max),
        );
    }

    let busiest = fig
        .base
        .hours
        .iter()
        .max_by(|a, b| a.avg.total_cmp(&b.avg))
        .unwrap();
    let fs_same = &fig.fastsocket.hours[busiest.hour as usize];
    println!(
        "\nbusiest hour ({}:00): base avg {} spread {}..{}, fastsocket avg {} spread {}..{}",
        busiest.hour,
        pct(busiest.avg),
        pct(busiest.min),
        pct(busiest.max),
        pct(fs_same.avg),
        pct(fs_same.min),
        pct(fs_same.max),
    );
    println!(
        "paper at 18:30: base avg 45.1% spread 31.7%..57.7%, fastsocket avg 34.3% spread 32.7%..37.6%"
    );
    println!(
        "effective capacity improvement: {} (paper: {})",
        pct(fig.capacity_improvement()),
        pct(PAPER_CAPACITY_IMPROVEMENT)
    );
    println!(
        "average-utilization reduction at peak: {} (paper: 31.5% CPU-efficiency gain)",
        pct(fig.avg_utilization_reduction())
    );
    args.write_json(&fig);
}
