//! Regenerates Figure 4(a): nginx connections/sec vs CPU cores.

use fastsocket::experiments::fig4::{self, CORE_COUNTS, PAPER_AT_24};
use fastsocket::AppSpec;
use fastsocket_bench::{kcps, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse(0.2, "fig4a");
    let cores = args.cores.clone().unwrap_or_else(|| CORE_COUNTS.to_vec());
    eprintln!(
        "Figure 4(a): nginx throughput sweep (cores {cores:?}, {}s windows)...",
        args.measure_secs
    );
    let fig = fig4::run(AppSpec::web(), &cores, args.measure_secs);

    println!("Figure 4(a) — nginx connections/sec vs cores");
    print!("{:<14}", "kernel");
    for c in &cores {
        print!("{:>10}", format!("{c} cores"));
    }
    println!();
    for kernel in ["base-2.6.32", "linux-3.13", "fastsocket"] {
        print!("{kernel:<14}");
        for &c in &cores {
            let v = fig.at(kernel, c).map_or(0.0, |p| p.cps);
            print!("{:>10}", kcps(v));
        }
        println!();
    }

    println!("\npaper vs measured at 24 cores:");
    for (kernel, nginx_paper, _) in PAPER_AT_24 {
        if let Some(p) = fig.at(kernel, 24) {
            println!(
                "  {kernel:<14} paper {:>8}   measured {:>8}",
                kcps(nginx_paper),
                kcps(p.cps)
            );
        }
    }
    if let (Some(s), Some(fs), Some(base)) = (
        fig.speedup("fastsocket", 24),
        fig.at("fastsocket", 24),
        fig.at("base-2.6.32", 24),
    ) {
        println!(
            "  fastsocket speedup at 24 cores: {s:.1}x (paper: 20.0x); \
             vs base: {:.2}x (paper: 2.67x)",
            fs.cps / base.cps
        );
    }
    args.write_json(&fig);
}
