//! Regenerates Figure 5: throughput, L3 cache miss rate (5a) and local
//! packet proportion (5b) for the five NIC delivery configurations.

use fastsocket::experiments::fig5::{self, PAPER};
use fastsocket_bench::{kcps, pct, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse(0.25, "fig5");
    let cores = args
        .cores
        .as_ref()
        .and_then(|c| c.first().copied())
        .unwrap_or(16);
    eprintln!(
        "Figure 5: NIC steering configurations (HAProxy, {cores} cores, {}s windows)...",
        args.measure_secs
    );
    let fig = fig5::run(cores, args.measure_secs);

    println!("Figure 5 — HAProxy on {cores} cores under NIC delivery features");
    println!(
        "{:<18} {:>10} {:>10} {:>10} | {:>10} {:>10} {:>10}",
        "configuration", "cps", "L3 miss", "local", "paper cps", "paper L3", "paper loc"
    );
    for row in &fig.rows {
        let paper = PAPER.iter().find(|(l, ..)| *l == row.setup);
        let (pc, pm, pl) = paper.map_or((0.0, 0.0, 0.0), |&(_, c, m, l)| (c, m, l));
        println!(
            "{:<18} {:>10} {:>10} {:>10} | {:>10} {:>10} {:>10}",
            row.setup,
            kcps(row.cps),
            pct(row.l3_miss_rate),
            pct(row.local_proportion),
            kcps(pc),
            pct(pm),
            pct(pl),
        );
    }

    // The paper's headline deltas.
    if let (Some(rss), Some(rfd_rss), Some(atr), Some(perfect)) = (
        fig.row("RSS"),
        fig.row("RFD+RSS"),
        fig.row("FDir_ATR"),
        fig.row("RFD+FDir_perfect"),
    ) {
        println!(
            "\nRFD over RSS: {:+.1}% throughput, {:+.1}pp L3 miss (paper: +6.1%, -6pp)",
            100.0 * (rfd_rss.cps / rss.cps - 1.0),
            100.0 * (rfd_rss.l3_miss_rate - rss.l3_miss_rate)
        );
        println!(
            "ATR locality {} (paper 76.5%); RFD+Perfect locality {} (paper 100%)",
            pct(atr.local_proportion),
            pct(perfect.local_proportion)
        );
        println!(
            "RFD+Perfect over ATR: {:+.1}% throughput (paper: +2.4% wrt ATR+RFD base of 293K)",
            100.0 * (perfect.cps / atr.cps - 1.0)
        );
    }
    args.write_json(&fig);
}
