//! Parallel lane-sharding speedup: wall-clock of the threaded executor
//! vs the serial legacy engine on the Figure 4(a) 24-core Fastsocket
//! profile, across a lane-count sweep.
//!
//! Correctness rides along with the timing: at every lane count the
//! serial-windowed and threaded executors must produce bit-identical
//! [`RunReport`](fastsocket::RunReport) digests (the differential
//! oracle of `tests/par_engine.rs`, re-asserted here on the full-size
//! profile), so the speedup numbers are only ever reported for runs
//! the determinism gate accepted.
//!
//! Speedup is bounded by the host, not the simulation: a lane can only
//! run concurrently if a host core is free, so the emitted
//! `BENCH_par.json` records `host_cores`
//! ([`std::thread::available_parallelism`]) next to every measurement
//! and `--min-speedup X` lets CI gate the 8-lane point only on hosts
//! with enough parallelism to express it.
//!
//! `--smoke` is the `scripts/check.sh` stage: a short 2-lane run with
//! every sanitizer armed, digest-asserted against the serial executor.

use fastsocket::{effective_lanes, run_sharded, AppSpec, KernelSpec, ParConfig, SimConfig};
use fastsocket_bench::{kcps, HarnessArgs};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Lane counts swept by the full benchmark (all divisors of 24 that
/// the 24-core profile can express, plus the serial baseline).
const LANE_SWEEP: [u16; 6] = [1, 2, 4, 8, 12, 24];

/// One measured lane count.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct LanePoint {
    /// Requested lane count (1 = legacy serial engine).
    lanes: u16,
    /// Lane count the engine actually ran with.
    effective_lanes: u16,
    /// Wall-clock seconds, serial windowed executor.
    serial_wall_secs: f64,
    /// Wall-clock seconds, one host thread per lane.
    threaded_wall_secs: f64,
    /// Legacy-baseline wall over threaded wall.
    speedup: f64,
    /// `results_digest()` — identical across both executors.
    results_digest: String,
    /// Simulated connections/sec (sanity: the profile really ran).
    throughput_cps: f64,
}

/// The emitted `BENCH_par.json` artifact.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ParBenchReport {
    /// Simulated seconds per measurement window.
    measure_secs: f64,
    /// Simulated cores of the profile.
    cores: u16,
    /// Host threads available to the executor — the hard ceiling on
    /// any observable speedup.
    host_cores: usize,
    seed: u64,
    /// Wall-clock of the legacy (non-windowed) serial engine.
    baseline_wall_secs: f64,
    points: Vec<LanePoint>,
}

fn profile(cores: u16, measure_secs: f64, check: bool) -> SimConfig {
    // Figure 4(a): nginx-like web workload on the 24-core Fastsocket
    // column — the run the paper's headline 475K cps comes from.
    SimConfig::new(KernelSpec::Fastsocket, AppSpec::web(), cores)
        .warmup_secs(0.05)
        .measure_secs(measure_secs)
        .check(check)
        .seed(0xf194a)
}

fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Times one digest-asserted (serial, threaded) executor pair.
fn measure_point(base: &SimConfig, lanes: u16, baseline_wall: f64) -> LanePoint {
    let serial_cfg = base.clone().par(ParConfig::lanes(lanes).threads(false));
    let threaded_cfg = base.clone().par(ParConfig::lanes(lanes));
    let effective = effective_lanes(&serial_cfg);

    let t0 = Instant::now();
    let serial = run_sharded(serial_cfg);
    let serial_wall = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let threaded = run_sharded(threaded_cfg);
    let threaded_wall = t1.elapsed().as_secs_f64();

    let digest = serial.results_digest();
    assert_eq!(
        digest,
        threaded.results_digest(),
        "{lanes} lanes: serial and threaded executors diverged"
    );

    LanePoint {
        lanes,
        effective_lanes: effective,
        serial_wall_secs: serial_wall,
        threaded_wall_secs: threaded_wall,
        speedup: baseline_wall / threaded_wall.max(1e-9),
        results_digest: digest,
        throughput_cps: serial.throughput_cps,
    }
}

fn sweep(cores: u16, measure_secs: f64, check: bool, seed_note: &str) -> ParBenchReport {
    let base = profile(cores, measure_secs, check);
    eprintln!(
        "par speedup sweep: fastsocket {cores}c web profile, {measure_secs}s windows, \
         host has {} core(s){seed_note}",
        host_cores()
    );

    // Legacy engine (no par block at all) is the speedup denominator.
    let t0 = Instant::now();
    let legacy = run_sharded(base.clone());
    let baseline_wall = t0.elapsed().as_secs_f64();
    eprintln!(
        "  legacy serial engine: {:.2}s wall, {} cps",
        baseline_wall,
        kcps(legacy.throughput_cps)
    );

    let mut points = Vec::new();
    for lanes in LANE_SWEEP {
        if lanes > cores {
            continue;
        }
        let p = measure_point(&base, lanes, baseline_wall);
        eprintln!(
            "  {:>2} lanes (effective {:>2}): serial {:.2}s, threaded {:.2}s, \
             speedup {:.2}x, digest {}",
            p.lanes,
            p.effective_lanes,
            p.serial_wall_secs,
            p.threaded_wall_secs,
            p.speedup,
            &p.results_digest[..8.min(p.results_digest.len())]
        );
        points.push(p);
    }

    ParBenchReport {
        measure_secs,
        cores,
        host_cores: host_cores(),
        seed: base.seed,
        baseline_wall_secs: baseline_wall,
        points,
    }
}

/// The `scripts/check.sh` stage: 2 lanes, sanitizers armed, digests
/// asserted serial-vs-threaded, merged check report must be clean.
fn smoke() {
    println!("par smoke: 2-lane sharded run under sanitizers, digest-asserted\n");
    let base = profile(8, 0.05, true);
    let cfg = base.clone().par(ParConfig::lanes(2));
    assert_eq!(effective_lanes(&cfg), 2, "smoke profile must shard");
    let p = measure_point(&base, 2, 1.0);
    let report = run_sharded(base.par(ParConfig::lanes(2)));
    let checks = report.checks.expect("sanitizers were armed");
    assert!(
        checks.is_clean(),
        "sanitizer findings inside sharded lanes: {checks:?}"
    );
    println!(
        "par smoke clean: 2 lanes, digest {} reproduced across executors, \
         sanitizers quiet, {} cps",
        p.results_digest,
        kcps(report.throughput_cps)
    );
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.iter().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    let min_speedup: Option<f64> = raw
        .iter()
        .position(|a| a == "--min-speedup")
        .map(|i| raw[i + 1].parse().expect("--min-speedup <x>"));
    // Strip `--min-speedup X` so HarnessArgs does not read X as the
    // measurement window.
    let args = HarnessArgs::parse_from(
        {
            let mut rest = raw.clone();
            if let Some(i) = rest.iter().position(|a| a == "--min-speedup") {
                rest.drain(i..=(i + 1).min(rest.len() - 1));
            }
            rest
        },
        0.2,
        "BENCH_par",
    );

    let report = sweep(24, args.measure_secs, false, "");

    println!("\nparallel lane-sharding speedup (fastsocket, 24 simulated cores)");
    println!(
        "{:>6} {:>10} {:>12} {:>14} {:>9}",
        "lanes", "effective", "serial wall", "threaded wall", "speedup"
    );
    for p in &report.points {
        println!(
            "{:>6} {:>10} {:>11.2}s {:>13.2}s {:>8.2}x",
            p.lanes, p.effective_lanes, p.serial_wall_secs, p.threaded_wall_secs, p.speedup
        );
    }
    println!(
        "\nhost cores: {} (speedup is capped by host parallelism, \
         not by the lane protocol)",
        report.host_cores
    );

    if let Some(min) = min_speedup {
        let eight = report
            .points
            .iter()
            .find(|p| p.lanes == 8)
            .expect("sweep includes 8 lanes");
        assert!(
            eight.speedup >= min,
            "8-lane speedup {:.2}x regressed below the {min:.1}x gate \
             (host cores: {})",
            eight.speedup,
            report.host_cores
        );
        println!(
            "8-lane speedup {:.2}x meets the {min:.1}x gate",
            eight.speedup
        );
    }

    args.write_json(&report);
}
