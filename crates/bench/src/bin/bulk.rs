//! Bulk-transfer goodput sweep: the sliding-window data plane under
//! multi-segment responses.
//!
//! The paper's experiments are all short-lived request/response
//! exchanges where connection *setup* dominates. This harness arms the
//! `sim-cc` data plane instead — real sequence/ACK-clocked bulk
//! responses with a pluggable congestion controller and NIC GSO/GRO
//! batch offload — and sweeps kernel × congestion-control algorithm ×
//! response size, reporting goodput in Gbps plus the retransmit
//! breakdown (RTO vs dup-ACK fast retransmit) from `netstat_ext`.
//!
//! The first cell of every (kernel, cc) column runs twice with the same
//! seed and must be bit-identical (`results_digest`), pinning the data
//! plane to the deterministic event path.
//!
//! `--smoke` runs a short 2-core matrix with the sanitizers armed and
//! schema-validates its own emitted `BENCH_bulk.json`; `--validate
//! <path>` schema-checks a committed full-matrix result. Both exit
//! nonzero on any violation — the CI gates wired into
//! `scripts/check.sh`.
//!
//! Full run: `bulk --json results/bulk.json > results/bulk.txt`
//! (also rewrites `results/BENCH_bulk.json` next to the JSON path).

use fastsocket::{AppSpec, DataPlaneConfig, KernelSpec, RunReport, SimConfig, Simulation};
use fastsocket_bench::{assert_deterministic, kcps, HarnessArgs};
use serde::{Deserialize, Serialize};
use sim_nic::BatchConfig;
use std::path::{Path, PathBuf};
use tcp_stack::CcAlgo;

const KERNELS: [KernelSpec; 3] = [
    KernelSpec::BaseLinux,
    KernelSpec::Linux313,
    KernelSpec::Fastsocket,
];

/// Response sizes swept per (kernel, cc) column: one-ish window, a
/// 64 KiB page, and a quarter-megabyte object that must ACK-clock
/// through several congestion-window doublings.
const SIZES: [u32; 3] = [16_384, 65_536, 262_144];

/// Window lengths for one run.
#[derive(Debug, Clone, Copy)]
struct Timing {
    warmup: f64,
    measure: f64,
}

impl Timing {
    fn full(measure: f64) -> Timing {
        Timing {
            warmup: 0.02,
            measure,
        }
    }

    fn smoke() -> Timing {
        Timing {
            warmup: 0.01,
            measure: 0.04,
        }
    }
}

/// One (kernel, cc, response-size) measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Cell {
    kernel: String,
    cc: String,
    response_bytes: u32,
    goodput_gbps: f64,
    throughput_cps: f64,
    payload_bytes: u64,
    /// RTO-driven retransmits (the pre-existing timer path).
    rto_retransmits: u64,
    /// Dup-ACK fast retransmits (data plane only).
    fast_retransmits: u64,
    ecn_echoes: u64,
    out_of_order_segments: u64,
    results_digest: String,
}

/// The whole emitted artifact (`bulk.json` and `BENCH_bulk.json`
/// share this schema).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BulkBenchReport {
    measure_secs: f64,
    cores: u16,
    seed: u64,
    cells: Vec<Cell>,
}

impl BulkBenchReport {
    fn find(&self, kernel: &str, cc: &str, size: u32) -> Option<&Cell> {
        self.cells
            .iter()
            .find(|c| c.kernel == kernel && c.cc == cc && c.response_bytes == size)
    }
}

fn gbps(x: f64) -> String {
    format!("{x:.3}")
}

fn run(
    kernel: KernelSpec,
    cc: CcAlgo,
    size: u32,
    cores: u16,
    t: Timing,
    check: bool,
    seed: u64,
) -> RunReport {
    let cfg = SimConfig::new(kernel, AppSpec::web(), cores)
        .warmup_secs(t.warmup)
        .measure_secs(t.measure)
        .seed(seed)
        .check(check)
        .data_plane(DataPlaneConfig {
            cc,
            response_bytes: size,
            batch: BatchConfig::offload(),
            ..DataPlaneConfig::default()
        });
    Simulation::new(cfg).run()
}

/// Runs one cell; `doubled` repeats it with the same seed and asserts
/// bit-identical results — the data plane must live entirely on the
/// deterministic event path.
#[allow(clippy::too_many_arguments)]
fn run_cell(
    kernel: KernelSpec,
    cc: CcAlgo,
    size: u32,
    cores: u16,
    t: Timing,
    check: bool,
    seed: u64,
    doubled: bool,
) -> Cell {
    let cell = || run(kernel.clone(), cc, size, cores, t, check, seed);
    let r = if doubled {
        assert_deterministic(
            format_args!("bulk {} {} {size}B", kernel.label(), cc.name()),
            cell,
            RunReport::results_digest,
        )
    } else {
        cell()
    };
    if check {
        let checks = r.checks.as_ref().expect("sanitizers were armed");
        assert!(
            checks.is_clean(),
            "sanitizer findings at {} {} {size}B: {checks:?}",
            kernel.label(),
            cc.name()
        );
    }
    let bulk = r.bulk.as_ref().expect("data plane was armed");
    assert_eq!(bulk.cc, cc.name(), "report credits the wrong controller");
    let dp = r.stack.dp.unwrap_or_default();
    Cell {
        kernel: kernel.label().to_string(),
        cc: cc.name().to_string(),
        response_bytes: size,
        goodput_gbps: bulk.goodput_gbps,
        throughput_cps: r.throughput_cps,
        payload_bytes: bulk.payload_bytes,
        rto_retransmits: r.stack.retransmits,
        fast_retransmits: dp.fast_retransmits,
        ecn_echoes: dp.ecn_echoes,
        out_of_order_segments: dp.out_of_order_segments,
        results_digest: r.results_digest(),
    }
}

fn sweep(cores: u16, t: Timing, check: bool, seed: u64) -> BulkBenchReport {
    let mut cells = Vec::new();
    for kernel in KERNELS {
        for cc in CcAlgo::ALL {
            for (i, &size) in SIZES.iter().enumerate() {
                let cell = run_cell(kernel.clone(), cc, size, cores, t, check, seed, i == 0);
                eprintln!(
                    "  {:<12} {:<8} {:>7}B: {:>7} Gbps  {:>6} cps  rto {} fast {} ecn {}",
                    kernel.label(),
                    cc.name(),
                    size,
                    gbps(cell.goodput_gbps),
                    kcps(cell.throughput_cps),
                    cell.rto_retransmits,
                    cell.fast_retransmits,
                    cell.ecn_echoes,
                );
                cells.push(cell);
            }
        }
    }
    BulkBenchReport {
        measure_secs: t.measure,
        cores,
        seed,
        cells,
    }
}

fn print_report(report: &BulkBenchReport) {
    println!(
        "Bulk-transfer goodput (Gbps) at {} cores, {:.2}s windows, GSO/GRO offload on",
        report.cores, report.measure_secs
    );
    for &size in &SIZES {
        println!("\nresponse size {size} bytes:");
        print!("{:<14}", "kernel");
        for cc in CcAlgo::ALL {
            print!("{:>10}", cc.name());
        }
        println!();
        for kernel in KERNELS {
            print!("{:<14}", kernel.label());
            for cc in CcAlgo::ALL {
                let v = report
                    .find(kernel.label(), cc.name(), size)
                    .map_or(0.0, |c| c.goodput_gbps);
                print!("{:>10}", gbps(v));
            }
            println!();
        }
    }
    println!("\nretransmit breakdown (rto / fast / ecn-echoes / out-of-order):");
    for cell in &report.cells {
        println!(
            "  {:<12} {:<8} {:>7}B: {} / {} / {} / {}",
            cell.kernel,
            cell.cc,
            cell.response_bytes,
            cell.rto_retransmits,
            cell.fast_retransmits,
            cell.ecn_echoes,
            cell.out_of_order_segments
        );
    }
}

/// Schema + coverage gate for a full-matrix artifact: all three
/// kernels × all three congestion controllers × at least three
/// response sizes, every cell moving payload.
fn validate_full(path: &Path) {
    let report = parse(path);
    let mut sizes: Vec<u32> = report.cells.iter().map(|c| c.response_bytes).collect();
    sizes.sort_unstable();
    sizes.dedup();
    assert!(
        sizes.len() >= 3,
        "{}: only {} response sizes swept (need >= 3)",
        path.display(),
        sizes.len()
    );
    for kernel in KERNELS {
        for cc in CcAlgo::ALL {
            for &size in &sizes {
                let cell = report
                    .find(kernel.label(), cc.name(), size)
                    .unwrap_or_else(|| {
                        panic!(
                            "{}: missing cell {} {} {size}B",
                            path.display(),
                            kernel.label(),
                            cc.name()
                        )
                    });
                assert!(
                    cell.goodput_gbps > 0.0 && cell.payload_bytes > 0,
                    "{}: {} {} {size}B moved no payload",
                    path.display(),
                    kernel.label(),
                    cc.name()
                );
            }
        }
    }
    println!(
        "{}: schema OK, {} cells ({} kernels x {} cc x {} sizes), all moving payload",
        path.display(),
        report.cells.len(),
        KERNELS.len(),
        CcAlgo::ALL.len(),
        sizes.len()
    );
}

fn parse(path: &Path) -> BulkBenchReport {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    serde_json::from_str(&text)
        .unwrap_or_else(|e| panic!("{} does not match the bulk schema: {e}", path.display()))
}

fn write_bench(report: &BulkBenchReport, path: &Path) {
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    let text = serde_json::to_string_pretty(report).expect("serialize bulk report");
    std::fs::write(path, text).unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    eprintln!("(bench summary written to {})", path.display());
}

/// Short 2-core matrix under full sanitizers; emits its own bench
/// artifact to a scratch path and re-parses it, so the writer and the
/// schema cannot drift apart.
fn smoke() {
    let t = Timing::smoke();
    let report = sweep(2, t, true, 42);
    print_report(&report);
    for cell in &report.cells {
        assert!(
            cell.goodput_gbps > 0.0 && cell.payload_bytes > 0,
            "{} {} {}B moved no payload in smoke",
            cell.kernel,
            cell.cc,
            cell.response_bytes
        );
    }
    // Same seed, same offered work: only the controller differs, and it
    // must leave a distinguishable fingerprint in the results.
    for kernel in KERNELS {
        let digests: Vec<&str> = CcAlgo::ALL
            .iter()
            .map(|cc| {
                report
                    .find(kernel.label(), cc.name(), SIZES[2])
                    .map_or("", |c| c.results_digest.as_str())
            })
            .collect();
        assert!(
            digests[0] != digests[1] && digests[1] != digests[2] && digests[0] != digests[2],
            "{}: congestion controllers produced identical runs: {digests:?}",
            kernel.label()
        );
    }
    let scratch = PathBuf::from("target/bulk-smoke/BENCH_bulk.json");
    write_bench(&report, &scratch);
    let back = parse(&scratch);
    assert_eq!(back.cells.len(), report.cells.len());
    for cell in &report.cells {
        let round = back
            .find(&cell.kernel, &cell.cc, cell.response_bytes)
            .expect("bench artifact round-trip lost a cell");
        assert_eq!(
            round.results_digest, cell.results_digest,
            "bench artifact round-trip drifted"
        );
    }
    println!("\nbulk smoke clean: sanitizers quiet, reruns bit-identical, artifact round-trips.");
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.iter().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    if let Some(i) = raw.iter().position(|a| a == "--validate") {
        let path = raw.get(i + 1).expect("--validate <path>");
        validate_full(Path::new(path));
        return;
    }

    let args = HarnessArgs::parse(0.1, "bulk");
    let cores = args
        .cores
        .as_ref()
        .and_then(|c| c.first().copied())
        .unwrap_or(8);
    let t = Timing::full(args.measure_secs);
    eprintln!(
        "bulk goodput sweep ({cores} cores, {:.2}s windows)...",
        t.measure
    );
    let report = sweep(cores, t, false, 42);
    print_report(&report);

    args.write_json(&report);
    let bench_path = args
        .json_path
        .as_ref()
        .and_then(|p| p.parent())
        .map_or_else(|| PathBuf::from("results"), Path::to_path_buf)
        .join("BENCH_bulk.json");
    write_bench(&report, &bench_path);
}
