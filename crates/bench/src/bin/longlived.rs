//! Regenerates the paper's *motivating contrast* (§1): "For long-lived
//! connections, the metadata management for new connections is not
//! frequent enough to cause significant contentions. Thus we do not
//! observe scalability issues of the TCP stack in these cases."
//!
//! With HTTP keep-alive (many requests per connection), TCB
//! creation/destruction — and with it every shared-table lock — drops
//! out of the hot path, and even the stock 2.6.32 kernel scales.
//!
//! Each cell also runs with the sim-res ledger armed (a roomy budget,
//! so no pressure reaction fires) and reports the peak concurrent
//! socket population and peak TIME_WAIT occupancy: the short-lived
//! column churns through TIME_WAIT buckets while holding few sockets
//! live; the long-lived column is the opposite shape.

use fastsocket::{AppSpec, KernelSpec, MemConfig, RunReport, SimConfig, Simulation};
use fastsocket_bench::{pct, HarnessArgs};
use serde::Serialize;

/// One (kernel, cores) row of the emitted JSON: throughput plus the
/// ledger's population shape for both connection lifetimes.
#[derive(Debug, Clone, Serialize)]
struct Row {
    kernel: String,
    cores: u16,
    short_rps: f64,
    long_rps: f64,
    short_peak_sockets: u64,
    short_peak_time_wait: u64,
    long_peak_sockets: u64,
    long_peak_time_wait: u64,
}

/// One cell with the memory ledger armed. The 16 GiB budget is far
/// above anything these runs charge — the ledger observes, never
/// reacts — and every cell is audited for conservation at drain.
fn cell(kernel: KernelSpec, cores: u16, requests_per_conn: u32, measure: f64) -> RunReport {
    let mut cfg = SimConfig::new(kernel, AppSpec::web(), cores)
        .warmup_secs(0.1)
        .measure_secs(measure)
        .mem(MemConfig::ram_mb(16_384));
    cfg.workload.requests_per_conn = requests_per_conn;
    let r = Simulation::new(cfg).run();
    let mem = r.mem.as_ref().expect("ledger was armed");
    assert!(
        mem.balanced,
        "{} {cores}c x{requests_per_conn}: memory accounts did not balance at drain",
        r.kernel
    );
    r
}

fn main() {
    let args = HarnessArgs::parse(0.2, "longlived");
    let cores_list = args.cores.clone().unwrap_or_else(|| vec![1, 8, 16, 24]);
    println!("requests/sec, short-lived (1 req/conn) vs long-lived (64 req/conn)\n");
    println!(
        "{:<14} {:>6} {:>12} {:>6} {:>8} {:>8} | {:>12} {:>6} {:>8} {:>8}",
        "kernel",
        "cores",
        "short req/s",
        "spin",
        "peak sk",
        "peak tw",
        "long req/s",
        "spin",
        "peak sk",
        "peak tw"
    );
    let mut rows = Vec::new();
    for kernel in [KernelSpec::BaseLinux, KernelSpec::Fastsocket] {
        for &cores in &cores_list {
            let short = cell(kernel.clone(), cores, 1, args.measure_secs);
            let long = cell(kernel.clone(), cores, 64, args.measure_secs);
            let (sm, lm) = (
                short.mem.as_ref().expect("ledger armed"),
                long.mem.as_ref().expect("ledger armed"),
            );
            println!(
                "{:<14} {:>6} {:>12.0} {:>6} {:>8} {:>8} | {:>12.0} {:>6} {:>8} {:>8}",
                short.kernel,
                cores,
                short.requests_per_sec,
                pct(short.lock_spin_share()),
                sm.peak_sockets,
                sm.peak_time_wait,
                long.requests_per_sec,
                pct(long.lock_spin_share()),
                lm.peak_sockets,
                lm.peak_time_wait,
            );
            rows.push(Row {
                kernel: short.kernel.clone(),
                cores,
                short_rps: short.requests_per_sec,
                long_rps: long.requests_per_sec,
                short_peak_sockets: sm.peak_sockets,
                short_peak_time_wait: sm.peak_time_wait,
                long_peak_sockets: lm.peak_sockets,
                long_peak_time_wait: lm.peak_time_wait,
            });
        }
    }
    // The claim: the base kernel's long-lived scaling efficiency is
    // close to Fastsocket's, while its short-lived efficiency collapses.
    println!(
        "\npaper §1: long-lived connections show no TCP-stack scalability issue \
         even on the\nstock kernel — only short-lived connections (frequent TCB \
         create/destroy) expose\nthe shared-table bottlenecks."
    );
    // The ledger's shape check: per connection served, the short-lived
    // cell churns far more TIME_WAIT buckets than the long-lived one.
    println!(
        "ledger shape: short-lived cells peak in TIME_WAIT buckets; long-lived \
         cells hold\nestablished sockets with near-idle TIME_WAIT churn."
    );
    args.write_json(&rows);
}
