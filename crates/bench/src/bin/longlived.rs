//! Regenerates the paper's *motivating contrast* (§1): "For long-lived
//! connections, the metadata management for new connections is not
//! frequent enough to cause significant contentions. Thus we do not
//! observe scalability issues of the TCP stack in these cases."
//!
//! With HTTP keep-alive (many requests per connection), TCB
//! creation/destruction — and with it every shared-table lock — drops
//! out of the hot path, and even the stock 2.6.32 kernel scales.

use fastsocket::{AppSpec, KernelSpec, SimConfig, Simulation};
use fastsocket_bench::{pct, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse(0.2, "longlived");
    let cores_list = args.cores.clone().unwrap_or_else(|| vec![1, 8, 16, 24]);
    println!("requests/sec, short-lived (1 req/conn) vs long-lived (64 req/conn)\n");
    println!(
        "{:<14} {:>6} {:>14} {:>8} | {:>14} {:>8}",
        "kernel", "cores", "short req/s", "spin", "long req/s", "spin"
    );
    let mut rows = Vec::new();
    for kernel in [KernelSpec::BaseLinux, KernelSpec::Fastsocket] {
        for &cores in &cores_list {
            let short = {
                let cfg = SimConfig::new(kernel.clone(), AppSpec::web(), cores)
                    .warmup_secs(0.1)
                    .measure_secs(args.measure_secs);
                Simulation::new(cfg).run()
            };
            let long = {
                let mut cfg = SimConfig::new(kernel.clone(), AppSpec::web(), cores)
                    .warmup_secs(0.1)
                    .measure_secs(args.measure_secs);
                cfg.workload.requests_per_conn = 64;
                Simulation::new(cfg).run()
            };
            println!(
                "{:<14} {:>6} {:>14.0} {:>8} | {:>14.0} {:>8}",
                short.kernel,
                cores,
                short.requests_per_sec,
                pct(short.lock_spin_share()),
                long.requests_per_sec,
                pct(long.lock_spin_share()),
            );
            rows.push((
                short.kernel.clone(),
                cores,
                short.requests_per_sec,
                long.requests_per_sec,
            ));
        }
    }
    // The claim: the base kernel's long-lived scaling efficiency is
    // close to Fastsocket's, while its short-lived efficiency collapses.
    println!(
        "\npaper §1: long-lived connections show no TCP-stack scalability issue \
         even on the\nstock kernel — only short-lived connections (frequent TCB \
         create/destroy) expose\nthe shared-table bottlenecks."
    );
    args.write_json(&rows);
}
