//! Chaos matrix: every kernel × every fault scenario, with the
//! degrade-and-recover verdicts the paper's architecture implies.
//!
//! Four scheduled faults — a worker crash with restart, an RX queue
//! failure, a packet-loss burst, and a spoofed SYN flood — run against
//! the base 2.6.32 kernel, Linux 3.13 (`SO_REUSEPORT`), and Fastsocket.
//! Every run executes **twice** with the same seed and the two
//! [`RobustnessReport`]s must be bit-identical (the reproducibility
//! gate); the analysis itself must show Fastsocket's global fallback
//! riding out the crash with zero refusals and SYN cookies preserving
//! legitimate goodput under flood.
//!
//! `--smoke` runs one short schedule per kernel with the sanitizers
//! armed and exits nonzero on any finding or unrecovered fault — the
//! CI gate wired into `scripts/check.sh`.

use fastsocket::{
    AppSpec, FaultRecord, FaultSchedule, KernelSpec, RobustnessReport, RunReport, SimConfig,
    Simulation,
};
use fastsocket_bench::{assert_deterministic, kcps, pct, HarnessArgs};
use serde::Serialize;
use sim_core::secs_to_cycles;

/// The fault scenarios of the matrix, in presentation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Scenario {
    WorkerCrashRestart,
    QueueFailure,
    LossBurst,
    SynFlood,
}

impl Scenario {
    const ALL: [Scenario; 4] = [
        Scenario::WorkerCrashRestart,
        Scenario::QueueFailure,
        Scenario::LossBurst,
        Scenario::SynFlood,
    ];

    fn label(self) -> &'static str {
        match self {
            Scenario::WorkerCrashRestart => "worker-crash-restart",
            Scenario::QueueFailure => "queue-failure",
            Scenario::LossBurst => "loss-burst",
            Scenario::SynFlood => "syn-flood",
        }
    }
}

/// Injection/heal timing for one run, all in simulated seconds from
/// the start of the run (warmup included).
#[derive(Debug, Clone, Copy)]
struct Timing {
    warmup: f64,
    measure: f64,
    inject: f64,
    heal: f64,
}

impl Timing {
    fn full(measure: f64) -> Timing {
        // Inject a third of the way into the window so the analysis
        // gets a solid baseline before and recovery room after.
        Timing {
            warmup: 0.05,
            measure,
            inject: 0.05 + measure / 3.0,
            heal: 0.05 + measure / 2.0,
        }
    }

    fn smoke() -> Timing {
        Timing {
            warmup: 0.02,
            measure: 0.12,
            inject: 0.06,
            heal: 0.08,
        }
    }
}

/// One row of `results/robustness.json`.
#[derive(Debug, Serialize)]
struct Row {
    scenario: String,
    kernel: String,
    seed: u64,
    /// `RobustnessReport::digest()` — equal across the doubled runs.
    digest: String,
    completed: u64,
    resets: u64,
    timeouts: u64,
    throughput_cps: f64,
    /// Mean windowed throughput while the fault was active, as a
    /// fraction of the pre-fault baseline (legitimate goodput under
    /// flood; load retained under the other faults).
    goodput_ratio: f64,
    syn_cookies_sent: u64,
    syn_cookies_ok: u64,
    syn_drops: u64,
    mem_pressure_drops: u64,
    record: FaultRecord,
}

fn schedule(scenario: Scenario, t: Timing) -> FaultSchedule {
    let at = secs_to_cycles(t.inject);
    let heal = Some(secs_to_cycles(t.heal));
    let s = FaultSchedule::new().sample_every(secs_to_cycles(0.005));
    match scenario {
        Scenario::WorkerCrashRestart => s.worker_crash(at, heal, 2),
        Scenario::QueueFailure => s.queue_failure(at, heal, 2),
        Scenario::LossBurst => s.loss_burst(at, heal, 0.05),
        Scenario::SynFlood => s.syn_flood(at, heal, 6),
    }
}

fn config(kernel: KernelSpec, scenario: Scenario, t: Timing, check: bool) -> SimConfig {
    let fastsocket = matches!(kernel, KernelSpec::Fastsocket);
    let mut cfg = SimConfig::new(kernel, AppSpec::web(), 4)
        .warmup_secs(t.warmup)
        .measure_secs(t.measure)
        .concurrency(120)
        .seed(0xfa57)
        .check(check)
        .faults(schedule(scenario, t));
    match scenario {
        Scenario::WorkerCrashRestart | Scenario::QueueFailure => {
            // Stranded in-flight connections must time out inside the
            // run so the recovery window is visible.
            cfg = cfg.client_timeout_secs(0.04);
        }
        Scenario::LossBurst => {
            // Give RTO retransmission room to recover every loss.
            cfg = cfg.client_timeout_secs(0.2);
        }
        Scenario::SynFlood => {
            // A small backlog makes the flood bite; the cookie knob is
            // the variable under test — Fastsocket runs with cookies,
            // the stock kernels without, isolating the differential.
            cfg = cfg.client_timeout_secs(0.05);
            cfg = cfg.syn_cookies(fastsocket);
            cfg.backlog = 128;
        }
    }
    cfg
}

/// Mean windowed cps while the fault was active, over the baseline.
fn goodput_ratio(rob: &RobustnessReport, rec: &FaultRecord) -> f64 {
    let cycles_per_sec = secs_to_cycles(1.0) as f64;
    let until = rec.healed_at.unwrap_or(u64::MAX);
    let during: Vec<f64> = rob
        .samples
        .iter()
        .filter(|s| s.start < until && s.end > rec.injected_at)
        .map(|s| s.cps(cycles_per_sec))
        .collect();
    if during.is_empty() || rec.baseline_cps <= 0.0 {
        return 1.0;
    }
    (during.iter().sum::<f64>() / during.len() as f64) / rec.baseline_cps
}

/// Runs one cell twice with the same seed and verifies the two
/// robustness reports are bit-identical before returning the report.
fn run_cell(kernel: KernelSpec, scenario: Scenario, t: Timing, check: bool) -> (RunReport, Row) {
    let a = assert_deterministic(
        format_args!("{} × {}", kernel.label(), scenario.label()),
        || Simulation::new(config(kernel.clone(), scenario, t, check)).run(),
        |r| {
            r.robustness
                .as_ref()
                .expect("fault schedule => robustness")
                .digest()
        },
    );
    let ra = a.robustness.clone().expect("fault schedule => robustness");
    let rec = ra.faults[0].clone();
    let row = Row {
        scenario: scenario.label().to_string(),
        kernel: kernel.label().to_string(),
        seed: a.seed,
        digest: ra.digest(),
        completed: a.completed,
        resets: a.resets,
        timeouts: a.timeouts,
        throughput_cps: a.throughput_cps,
        goodput_ratio: goodput_ratio(&ra, &rec),
        syn_cookies_sent: a.stack.syn_cookies_sent,
        syn_cookies_ok: a.stack.syn_cookies_ok,
        syn_drops: a.stack.syn_drops,
        mem_pressure_drops: a.stack.mem_pressure_drops,
        record: rec,
    };
    (a, row)
}

fn fmt_recover(rec: &FaultRecord) -> String {
    match rec.time_to_recover {
        Some(c) => format!("{:.1}ms", c as f64 / secs_to_cycles(1.0) as f64 * 1_000.0),
        None => "NEVER".to_string(),
    }
}

fn smoke() {
    // One short schedule per kernel, sanitizers armed: the stock
    // kernels ride out a loss burst, Fastsocket a worker crash with
    // restart. Any sanitizer finding or unrecovered fault is fatal.
    let t = Timing::smoke();
    println!("chaos smoke: sanitizers armed, one fault schedule per kernel\n");
    let cells = [
        (KernelSpec::BaseLinux, Scenario::LossBurst),
        (KernelSpec::Linux313, Scenario::LossBurst),
        (KernelSpec::Fastsocket, Scenario::WorkerCrashRestart),
    ];
    for (kernel, scenario) in cells {
        let (report, row) = run_cell(kernel.clone(), scenario, t, true);
        let checks = report.checks.as_ref().expect("check(true) => report");
        println!(
            "{:<14} {:<22} depth {:<6} recover {:<8} sanitizers {}",
            row.kernel,
            row.scenario,
            pct(row.record.degradation_depth),
            fmt_recover(&row.record),
            if checks.is_clean() { "clean" } else { "DIRTY" }
        );
        assert!(
            checks.is_clean(),
            "{} × {}: sanitizer findings under fault schedule: {checks:?}",
            row.kernel,
            row.scenario
        );
        assert!(
            row.record.time_to_recover.is_some(),
            "{} × {}: throughput never recovered: {:?}",
            row.kernel,
            row.scenario,
            row.record
        );
    }
    println!("\nchaos smoke passed");
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    let args = HarnessArgs::parse(0.3, "robustness");
    let t = Timing::full(args.measure_secs);
    println!(
        "chaos matrix: 3 kernels × 4 fault scenarios, {:.2}s windows, \
         inject at {:.2}s / heal at {:.2}s, doubled runs\n",
        t.measure, t.inject, t.heal
    );
    println!(
        "{:<22} {:<14} {:>9} {:>9} {:>7} {:>9} {:>8} {:>7} {:>7} {:>8}",
        "scenario",
        "kernel",
        "baseline",
        "degraded",
        "depth",
        "recover",
        "goodput",
        "resets",
        "refused",
        "digest"
    );

    let mut rows: Vec<Row> = Vec::new();
    let mut texts: Vec<String> = Vec::new();
    for scenario in Scenario::ALL {
        for kernel in [
            KernelSpec::BaseLinux,
            KernelSpec::Linux313,
            KernelSpec::Fastsocket,
        ] {
            let (report, row) = run_cell(kernel, scenario, t, false);
            println!(
                "{:<22} {:<14} {:>9} {:>9} {:>7} {:>9} {:>8} {:>7} {:>7} {:>8}",
                row.scenario,
                row.kernel,
                kcps(row.record.baseline_cps),
                kcps(row.record.degraded_cps),
                pct(row.record.degradation_depth),
                fmt_recover(&row.record),
                pct(row.goodput_ratio),
                row.record.resets_during,
                row.record.refusals_during,
                &row.digest[..8]
            );
            texts.push(format!(
                "== {} × {} ==\n{}",
                row.scenario,
                row.kernel,
                report.netstat_ext()
            ));
            rows.push(row);
        }
    }

    // The acceptance claims, asserted so a regression fails the run.
    let find = |s: Scenario, k: &str| {
        rows.iter()
            .find(|r| r.scenario == s.label() && r.kernel == k)
            .expect("matrix is complete")
    };
    let crash_fs = find(Scenario::WorkerCrashRestart, "fastsocket");
    assert_eq!(
        crash_fs.record.refusals_during, 0,
        "fastsocket's global fallback must refuse no client during the crash"
    );
    assert!(
        crash_fs.record.time_to_recover.is_some(),
        "fastsocket must return to 90% of baseline after the restart"
    );
    let crash_313 = find(Scenario::WorkerCrashRestart, "linux-3.13");
    assert!(
        crash_313.record.resets_during > crash_fs.record.resets_during,
        "SO_REUSEPORT strands the dead copy's connections; the fallback does not"
    );
    let flood_fs = find(Scenario::SynFlood, "fastsocket");
    let flood_base = find(Scenario::SynFlood, "base-2.6.32");
    assert!(
        flood_fs.goodput_ratio >= 0.5,
        "SYN cookies must preserve ≥50% legitimate goodput under flood: {}",
        flood_fs.goodput_ratio
    );
    assert!(
        flood_base.goodput_ratio < 0.5,
        "the cookie-less base kernel must drop below 50% goodput: {}",
        flood_base.goodput_ratio
    );
    assert!(flood_fs.syn_cookies_sent > 0 && flood_fs.syn_cookies_ok > 0);

    println!("\nverdicts:");
    println!(
        "  worker crash+restart: fastsocket refused {} clients, recovered in {} \
         (linux-3.13 reset {} clients)",
        crash_fs.record.refusals_during,
        fmt_recover(&crash_fs.record),
        crash_313.record.resets_during
    );
    println!(
        "  syn flood: fastsocket+cookies kept {} of baseline goodput; base-2.6.32 kept {}",
        pct(flood_fs.goodput_ratio),
        pct(flood_base.goodput_ratio)
    );
    println!("\nnetstat -s (TcpExt) per cell:\n");
    for t in &texts {
        println!("{t}");
    }
    args.write_json(&rows);
}
