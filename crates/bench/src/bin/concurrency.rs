//! Max-concurrent-connections ladder under a modeled RAM budget: the
//! "path to a million clients" experiment.
//!
//! The capacity sweep asks how many *short-lived* connections per
//! second a kernel sustains; this harness asks how many connections a
//! kernel can *hold open at once* while still meeting the setup SLO.
//! Each rung targets a concurrent-socket population: an open-loop
//! Poisson arrival schedule feeds a long-lived session mix
//! (`LongLivedMix`) whose holds overlap into a standing population of
//! `rate x held_fraction x hold` connections. With the sim-res ledger
//! armed at `scale` modeled sockets per simulated socket, the ladder
//! climbs past a million modeled concurrent connections against a
//! fixed `tcp_mem`-style RAM budget.
//!
//! A rung passes when (a) connection-setup p99 stays at or under 1 ms,
//! (b) goodput keeps up with the offered load, (c) the ledger actually
//! peaked at >= 90% of the rung's target (the population was held, not
//! just offered), and (d) the memory accounts balance at drain. The
//! per-kernel result is the highest passing target. Climbing costs
//! grow two ways as rungs rise: epoll ready-list scans scale with the
//! modeled watched-set size, and the ledger's pressure reactions
//! (window clamps, buffer reclaim, SYN drops) kick in as the standing
//! population approaches the budget.
//!
//! `--smoke` runs a short 2-core ladder with all five sim-check
//! detectors armed, the first rung doubled and digest-asserted, and
//! round-trips its own `BENCH_concurrency.json`; `--validate <path>`
//! schema-checks a committed full artifact (fastsocket must hold 1M+
//! modeled sockets under the SLO). Both are wired into
//! `scripts/check.sh`.
//!
//! Full run: `concurrency --json results/concurrency.json`
//! (also rewrites `results/BENCH_concurrency.json` next to it).

use fastsocket::{
    AppSpec, KernelSpec, LongLivedMix, MemConfig, OpenLoopConfig, RunReport, SimConfig, Simulation,
};
use fastsocket_bench::{assert_deterministic, pct, HarnessArgs};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Connection-setup p99 budget (µs) a rung must meet.
const SLO_P99_US: f64 = 1_000.0;
/// Fraction of the offered rate that must complete within the window.
const GOODPUT_FLOOR: f64 = 0.97;
/// A rung only counts as *held* when the ledger's peak reached this
/// fraction of the target population.
const REACH_FLOOR: f64 = 0.90;
/// Fraction of arrivals that hold their connection open.
const HELD_FRACTION: f64 = 0.9;

const KERNELS: [KernelSpec; 3] = [
    KernelSpec::BaseLinux,
    KernelSpec::Linux313,
    KernelSpec::Fastsocket,
];

/// Window lengths, hold time and modeling scale for one ladder shape.
#[derive(Debug, Clone, Copy)]
struct Shape {
    warmup: f64,
    measure: f64,
    /// How long a held session parks before releasing (must be shorter
    /// than the warmup so the population is standing when measurement
    /// starts).
    hold_secs: f64,
    /// Modeled sockets per simulated socket (`MemConfig::scale`).
    scale: u32,
    /// Modeled RAM budget (MiB) the ladder climbs against.
    ram_mb: u64,
}

impl Shape {
    fn full(measure: f64) -> Shape {
        Shape {
            warmup: 0.12,
            measure,
            hold_secs: 0.08,
            scale: 256,
            ram_mb: 8_192,
        }
    }

    fn smoke() -> Shape {
        Shape {
            warmup: 0.035,
            measure: 0.05,
            hold_secs: 0.02,
            scale: 128,
            ram_mb: 256,
        }
    }
}

/// Target modeled-concurrent-socket ladder for one shape.
fn ladder_targets(smoke: bool) -> Vec<u64> {
    if smoke {
        vec![49_152, 131_072]
    } else {
        vec![
            524_288, 1_048_576, 1_572_864, 2_097_152, 2_621_440, 3_145_728, 3_670_016,
        ]
    }
}

/// One (kernel, cores, target-concurrency) measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Rung {
    /// Modeled concurrent sockets this rung tries to hold.
    target_sockets: u64,
    rate_cps: f64,
    throughput_cps: f64,
    goodput: f64,
    setup_p50_us: f64,
    setup_p99_us: f64,
    /// Ledger peak: modeled concurrent sockets actually held.
    peak_sockets: u64,
    /// Ledger peak: modeled bytes charged against the budget.
    peak_bytes: u64,
    peak_embryos: u64,
    /// Pressure reactions observed while climbing.
    window_clamps: u64,
    buffer_reclaims: u64,
    pressure_syn_drops: u64,
    embryos_pruned: u64,
    orphans_killed: u64,
    enter_pressure: u64,
    /// Memory-account conservation at drain.
    balanced: bool,
    /// Peak reached >= [`REACH_FLOOR`] of the target.
    reached: bool,
    slo_pass: bool,
    /// Arrival-schedule digest — identical for every kernel on a rung.
    schedule_digest: String,
}

/// One kernel's climb at one core count.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Ladder {
    kernel: String,
    cores: u16,
    /// Highest held-and-passing modeled concurrency (0 if none).
    max_sockets: u64,
    rungs: Vec<Rung>,
}

/// The whole emitted artifact (`concurrency.json` and
/// `BENCH_concurrency.json` share this schema).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ConcurrencyReport {
    measure_secs: f64,
    slo_p99_us: f64,
    goodput_floor: f64,
    /// Modeled RAM budget (MiB) shared by every rung.
    ram_mb: u64,
    /// Modeled sockets per simulated socket.
    scale: u32,
    seed: u64,
    ladders: Vec<Ladder>,
}

impl ConcurrencyReport {
    fn max_sockets(&self, kernel: &str, cores: u16) -> Option<u64> {
        self.ladders
            .iter()
            .find(|l| l.kernel == kernel && l.cores == cores)
            .map(|l| l.max_sockets)
    }
}

/// Formats a modeled socket count in the "1.05M" style.
fn msock(n: u64) -> String {
    if n >= 1_000_000 {
        format!("{:.2}M", n as f64 / 1e6)
    } else {
        format!("{:.0}K", n as f64 / 1e3)
    }
}

fn cell(
    kernel: KernelSpec,
    cores: u16,
    target: u64,
    s: Shape,
    check: bool,
    seed: u64,
) -> (RunReport, f64) {
    // Standing population = rate x held_fraction x hold (Little's law),
    // so the offered rate is derived from the rung's target.
    let sim_target = target / u64::from(s.scale);
    let rate = sim_target as f64 / (HELD_FRACTION * s.hold_secs);
    // 2x headroom over the standing population: arrivals that find
    // every slot busy are abandoned, which is a client-pool artifact,
    // not the kernel's fault.
    let population = u32::try_from(sim_target * 2).expect("population fits u32");
    let cfg = SimConfig::new(kernel, AppSpec::web(), cores)
        .warmup_secs(s.warmup)
        .measure_secs(s.measure)
        .seed(seed)
        .trace(true)
        .check(check)
        .mem(MemConfig::ram_mb(s.ram_mb).scaled(s.scale))
        .open_loop(
            OpenLoopConfig::poisson(rate)
                .population(population)
                .longlived(LongLivedMix::fraction_held(HELD_FRACTION, s.hold_secs)),
        );
    (Simulation::new(cfg).run(), rate)
}

/// Runs one rung; `doubled` repeats it with the same seed and asserts
/// the reproducibility gate (bit-identical results and schedule).
fn run_rung(
    kernel: KernelSpec,
    cores: u16,
    target: u64,
    s: Shape,
    check: bool,
    seed: u64,
    doubled: bool,
) -> Rung {
    let run = || cell(kernel.clone(), cores, target, s, check, seed);
    let (r, rate) = if doubled {
        assert_deterministic(
            format_args!("concurrency {} {cores}c @{}", kernel.label(), msock(target)),
            run,
            |(r, _)| {
                (
                    r.results_digest(),
                    r.load.as_ref().unwrap().schedule_digest.clone(),
                )
            },
        )
    } else {
        run()
    };
    if check {
        let checks = r.checks.as_ref().expect("sanitizers were armed");
        assert!(
            checks.is_clean(),
            "sanitizer findings at {} {cores}c @{}: {checks:?}",
            kernel.label(),
            msock(target)
        );
    }
    let load = r.load.as_ref().expect("open-loop run reports load");
    let lat = r.latency.as_ref().expect("trace was on");
    let mem = r.mem.as_ref().expect("ledger was armed");
    let goodput = r.throughput_cps / rate;
    let slo_pass = lat.setup.p99_us <= SLO_P99_US && goodput >= GOODPUT_FLOOR;
    let reached = mem.peak_sockets as f64 >= REACH_FLOOR * target as f64;
    Rung {
        target_sockets: target,
        rate_cps: rate,
        throughput_cps: r.throughput_cps,
        goodput,
        setup_p50_us: lat.setup.p50_us,
        setup_p99_us: lat.setup.p99_us,
        peak_sockets: mem.peak_sockets,
        peak_bytes: mem.peak_bytes,
        peak_embryos: mem.peak_embryos,
        window_clamps: mem.stats.window_clamps,
        buffer_reclaims: mem.stats.buffer_reclaims,
        pressure_syn_drops: mem.stats.pressure_syn_drops,
        embryos_pruned: mem.stats.embryos_pruned,
        orphans_killed: mem.stats.orphans_killed,
        enter_pressure: mem.stats.enter_pressure,
        balanced: mem.balanced,
        reached,
        slo_pass,
        schedule_digest: load.schedule_digest.clone(),
    }
}

/// Climbs the full target ladder for one kernel (no early stop: the
/// top rungs are exactly where the pressure reactions live).
fn climb(
    kernel: KernelSpec,
    cores: u16,
    targets: &[u64],
    s: Shape,
    check: bool,
    seed: u64,
) -> Ladder {
    let mut rungs = Vec::new();
    for (i, &target) in targets.iter().enumerate() {
        let rung = run_rung(kernel.clone(), cores, target, s, check, seed, i == 0);
        eprintln!(
            "  {:<12} {cores:>2}c @{:>6}: held {:>6}  p99 {:>8.1}µs  goodput {}  {}{}",
            kernel.label(),
            msock(target),
            msock(rung.peak_sockets),
            rung.setup_p99_us,
            pct(rung.goodput),
            if rung.slo_pass && rung.reached {
                "pass"
            } else {
                "FAIL"
            },
            if rung.enter_pressure > 0 {
                "  [pressure]"
            } else {
                ""
            }
        );
        assert!(
            rung.balanced,
            "{} {cores}c @{}: memory accounts did not balance at drain",
            kernel.label(),
            msock(target)
        );
        rungs.push(rung);
    }
    let max_sockets = rungs
        .iter()
        .filter(|r| r.slo_pass && r.reached)
        .map(|r| r.target_sockets)
        .max()
        .unwrap_or(0);
    Ladder {
        kernel: kernel.label().to_string(),
        cores,
        max_sockets,
        rungs,
    }
}

/// Every kernel on a rung must have served the byte-identical arrival
/// schedule — the offered load is a property of the seed, not the
/// kernel under test.
fn assert_shared_schedule(ladders: &[Ladder]) {
    for cores in ladders.iter().map(|l| l.cores).collect::<Vec<_>>() {
        let cohort: Vec<&Ladder> = ladders.iter().filter(|l| l.cores == cores).collect();
        let Some(first) = cohort.first() else {
            continue;
        };
        for l in &cohort[1..] {
            for (a, b) in first.rungs.iter().zip(l.rungs.iter()) {
                assert_eq!(
                    a.schedule_digest,
                    b.schedule_digest,
                    "kernel {} saw a different arrival schedule than {} at {cores} cores @{}",
                    l.kernel,
                    first.kernel,
                    msock(a.target_sockets)
                );
            }
        }
    }
}

fn sweep(
    core_counts: &[u16],
    targets: &[u64],
    s: Shape,
    check: bool,
    seed: u64,
) -> ConcurrencyReport {
    let mut ladders = Vec::new();
    for &cores in core_counts {
        for kernel in KERNELS {
            ladders.push(climb(kernel, cores, targets, s, check, seed));
        }
    }
    assert_shared_schedule(&ladders);
    ConcurrencyReport {
        measure_secs: s.measure,
        slo_p99_us: SLO_P99_US,
        goodput_floor: GOODPUT_FLOOR,
        ram_mb: s.ram_mb,
        scale: s.scale,
        seed,
        ladders,
    }
}

fn print_report(report: &ConcurrencyReport, core_counts: &[u16]) {
    println!(
        "max concurrent connections under a {} MiB modeled RAM budget \
         (x{} socket scale; p99 setup ≤ {:.0}µs, goodput ≥ {}, {:.2}s windows)",
        report.ram_mb,
        report.scale,
        report.slo_p99_us,
        pct(report.goodput_floor),
        report.measure_secs
    );
    println!();
    for &cores in core_counts {
        println!("held-vs-target at {cores} cores (setup p99 µs; * = pass):");
        let cohort: Vec<&Ladder> = report.ladders.iter().filter(|l| l.cores == cores).collect();
        let Some(longest) = cohort.iter().max_by_key(|l| l.rungs.len()) else {
            continue;
        };
        print!("{:<14}", "target");
        for r in &longest.rungs {
            print!("{:>10}", msock(r.target_sockets));
        }
        println!();
        for l in &cohort {
            print!("{:<14}", l.kernel);
            for r in &l.rungs {
                let mark = if r.slo_pass && r.reached { "*" } else { "" };
                print!("{:>10}", format!("{:.0}{mark}", r.setup_p99_us));
            }
            println!();
        }
        println!();
    }
    println!("max held modeled sockets (SLO met, population held, ledger balanced):");
    print!("{:<14}", "kernel");
    for &cores in core_counts {
        print!("{:>12}", format!("{cores} cores"));
    }
    println!();
    for kernel in KERNELS {
        print!("{:<14}", kernel.label());
        for &cores in core_counts {
            let v = report.max_sockets(kernel.label(), cores).unwrap_or(0);
            print!("{:>12}", msock(v));
        }
        println!();
    }
}

/// Schema gate for a full artifact: all three kernels at 8 cores,
/// fastsocket holding 1M+ modeled sockets under the SLO, and never
/// behind either baseline.
fn validate_full(path: &Path) {
    let report = parse(path);
    for kernel in KERNELS {
        let max = report
            .max_sockets(kernel.label(), 8)
            .unwrap_or_else(|| panic!("{}: missing {} @ 8 cores", path.display(), kernel.label()));
        assert!(
            max > 0,
            "{}: {} @ 8 cores held nothing under the SLO",
            path.display(),
            kernel.label()
        );
    }
    for l in &report.ladders {
        for r in &l.rungs {
            assert!(
                r.balanced,
                "{}: {} @ {} cores @{} left an unbalanced ledger",
                path.display(),
                l.kernel,
                l.cores,
                msock(r.target_sockets)
            );
        }
    }
    let fs = report.max_sockets("fastsocket", 8).unwrap();
    let rp = report.max_sockets("linux-3.13", 8).unwrap();
    let base = report.max_sockets("base-2.6.32", 8).unwrap();
    assert!(
        fs >= 1_048_576,
        "{}: fastsocket must hold 1M+ modeled sockets under the SLO (held {})",
        path.display(),
        msock(fs)
    );
    assert!(
        fs >= rp && fs >= base,
        "{}: fastsocket fell behind a baseline ({} vs {} / {})",
        path.display(),
        msock(fs),
        msock(rp),
        msock(base)
    );
    println!(
        "{}: schema OK, 8-core max concurrency {} / {} / {} (fastsocket / linux-3.13 / base)",
        path.display(),
        msock(fs),
        msock(rp),
        msock(base)
    );
}

fn parse(path: &Path) -> ConcurrencyReport {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    serde_json::from_str(&text).unwrap_or_else(|e| {
        panic!(
            "{} does not match the concurrency schema: {e}",
            path.display()
        )
    })
}

fn write_bench(report: &ConcurrencyReport, path: &Path) {
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    let text = serde_json::to_string_pretty(report).expect("serialize concurrency report");
    std::fs::write(path, text).unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    eprintln!("(bench summary written to {})", path.display());
}

/// Short 2-core ladder under full sanitizers against a deliberately
/// tight 256 MiB budget, so the top rung crosses into the pressure
/// zone; emits its own bench artifact to a scratch path and re-parses
/// it, so the writer and the schema cannot drift apart.
fn smoke() {
    let s = Shape::smoke();
    let targets = ladder_targets(true);
    let report = sweep(&[2], &targets, s, true, 42);
    print_report(&report, &[2]);
    for l in &report.ladders {
        assert!(
            l.max_sockets > 0,
            "{} @ 2 cores never held a rung in smoke",
            l.kernel
        );
        assert!(
            l.rungs.iter().all(|r| r.balanced),
            "{} left an unbalanced ledger",
            l.kernel
        );
        let top = l.rungs.last().expect("ladder has rungs");
        if top.reached {
            assert!(
                top.enter_pressure > 0,
                "{}: top smoke rung held {} sockets but never crossed \
                 the pressure threshold of the 256 MiB budget",
                l.kernel,
                msock(top.peak_sockets)
            );
        }
    }
    let scratch = PathBuf::from("target/concurrency-smoke/BENCH_concurrency.json");
    write_bench(&report, &scratch);
    let back = parse(&scratch);
    assert_eq!(back.ladders.len(), report.ladders.len());
    for kernel in KERNELS {
        assert_eq!(
            back.max_sockets(kernel.label(), 2),
            report.max_sockets(kernel.label(), 2),
            "bench artifact round-trip drifted"
        );
    }
    println!(
        "\nconcurrency smoke clean: sanitizers quiet, ledger balanced, \
         reruns bit-identical, artifact round-trips."
    );
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.iter().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    if let Some(i) = raw.iter().position(|a| a == "--validate") {
        let path = raw.get(i + 1).expect("--validate <path>");
        validate_full(Path::new(path));
        return;
    }

    let args = HarnessArgs::parse(0.3, "concurrency");
    let core_counts: Vec<u16> = args.cores.clone().unwrap_or_else(|| vec![8]);
    let s = Shape::full(args.measure_secs);
    let targets = ladder_targets(false);
    eprintln!(
        "concurrency ladder (cores {core_counts:?}, {} MiB budget, x{} scale, {:.2}s windows)...",
        s.ram_mb, s.scale, s.measure
    );
    let report = sweep(&core_counts, &targets, s, false, 42);
    print_report(&report, &core_counts);

    if core_counts.contains(&8) {
        let fs = report.max_sockets("fastsocket", 8).unwrap_or(0);
        let rp = report.max_sockets("linux-3.13", 8).unwrap_or(0);
        let base = report.max_sockets("base-2.6.32", 8).unwrap_or(0);
        println!(
            "\n8-core max concurrency: fastsocket {} vs linux-3.13 {} vs base {} \
             under {} MiB modeled RAM",
            msock(fs),
            msock(rp),
            msock(base),
            report.ram_mb
        );
        assert!(
            fs >= 1_048_576,
            "fastsocket must hold a million modeled concurrent sockets under the SLO"
        );
        assert!(
            fs >= rp && fs >= base,
            "fastsocket fell behind a baseline on max concurrency"
        );
    }

    args.write_json(&report);
    let bench_path = args
        .json_path
        .as_ref()
        .and_then(|p| p.parent())
        .map_or_else(|| PathBuf::from("results"), Path::to_path_buf)
        .join("BENCH_concurrency.json");
    write_bench(&report, &bench_path);
}
