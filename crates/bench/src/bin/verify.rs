//! Verification gate: every stock kernel variant must come out of the
//! full three-detector suite — lockset, happens-before vector clocks,
//! and the shard-safety certifier — **clean**, at 1, 8, and 24 cores,
//! with partition invariants promoted to hard failures (no fault
//! schedule is active, so strict mode is armed).
//!
//! Beyond the clean/dirty verdict, the run prints each kernel's
//! cross-core ownership traffic from the shard certifier's report:
//! how many objects of each kind ever changed cores, over how many
//! distinct core-pair edges, and whether every transfer rode a
//! synchronization channel. This is the simulator's analog of the
//! paper's Table 1 story — Fastsocket's partitioned tables shrink
//! cross-core edges to the connection objects that legitimately
//! migrate (RFD handoff), while shared-table kernels bounce table
//! buckets and listen sockets between every pair of cores.
//!
//! Determinism is part of the contract: a doubled same-seed run must
//! reproduce a bit-identical shard report digest per kernel.

use fastsocket::{AppSpec, KernelSpec, ShardReport, SimConfig, Simulation};
use fastsocket_bench::{assert_deterministic, HarnessArgs};

fn run(kernel: KernelSpec, cores: u16, measure: f64, seed: u64) -> fastsocket::RunReport {
    let cfg = SimConfig::new(kernel, AppSpec::web(), cores)
        .warmup_secs(0.05)
        .measure_secs(measure)
        .concurrency(u32::from(cores) * 80)
        .seed(seed)
        .check(true);
    Simulation::new(cfg).run()
}

fn shard_report(r: &fastsocket::RunReport) -> &ShardReport {
    r.checks
        .as_ref()
        .and_then(|c| c.shard_report.as_ref())
        .expect("check(true) must produce a shard report")
}

fn main() {
    let args = HarnessArgs::parse(0.25, "verify");
    let core_counts = args.cores.clone().unwrap_or_else(|| vec![1, 8, 24]);
    let max_cores = *core_counts.iter().max().expect("at least one core count");

    println!("verification gate: hb + lockset + shard + partition (strict), web workload\n");
    println!(
        "{:<14} {:>5} {:>4} {:>6} {:>8} {:>8} {:>10} {:>10} {:>8}",
        "kernel", "cores", "hb", "shard", "lockdep", "lockset", "partition", "transfers", "verdict"
    );
    let mut failures = 0u32;
    let mut rows = Vec::new();
    let mut edge_tables: Vec<(String, u16, ShardReport)> = Vec::new();
    for kernel in [
        KernelSpec::BaseLinux,
        KernelSpec::Linux313,
        KernelSpec::Fastsocket,
    ] {
        for &cores in &core_counts {
            let r = run(kernel.clone(), cores, args.measure_secs, 0xfa57_50c7);
            let checks = r.checks.as_ref().expect("check report");
            let rep = shard_report(&r).clone();
            let clean = checks.is_clean();
            if !clean {
                failures += 1;
                for d in &checks.diagnostics {
                    eprintln!("  {d}");
                }
            }
            println!(
                "{:<14} {:>5} {:>4} {:>6} {:>8} {:>8} {:>10} {:>10} {:>8}",
                kernel.label(),
                cores,
                checks.hb,
                checks.shard,
                checks.lockdep,
                checks.lockset,
                checks.partition,
                rep.total_transfers(),
                if clean { "clean" } else { "DIRTY" }
            );
            if cores == max_cores {
                edge_tables.push((kernel.label().to_string(), cores, rep.clone()));
            }
            rows.push((kernel.label().to_string(), cores, checks.clone()));
        }
    }

    println!("\ncross-core ownership traffic at {max_cores} cores (shard certifier):\n");
    for (kernel, cores, rep) in &edge_tables {
        println!("  {kernel} x{cores}:");
        println!(
            "    {:<13} {:>8} {:>10} {:>9} {:>6} {:>10} {:>9}",
            "object kind", "objects", "transfers", "unsynced", "edges", "class", "allowed"
        );
        for k in &rep.kinds {
            println!(
                "    {:<13} {:>8} {:>10} {:>9} {:>6} {:>10} {:>9}",
                k.kind,
                k.objects,
                k.transfers,
                k.unsynced,
                k.edges.len(),
                k.class,
                k.allowed
            );
        }
        println!(
            "    total: {} transfers over {} core-pair edges\n",
            rep.total_transfers(),
            rep.total_edges()
        );
    }

    // Determinism: the same seed must reproduce the exact ownership
    // history, down to every edge and witness site.
    let det_cores = core_counts.iter().copied().find(|&c| c > 1).unwrap_or(1);
    println!("doubled-run determinism at {det_cores} cores:");
    for kernel in [
        KernelSpec::BaseLinux,
        KernelSpec::Linux313,
        KernelSpec::Fastsocket,
    ] {
        let a = assert_deterministic(
            format_args!("shard report {} {det_cores}c", kernel.label()),
            || {
                run(
                    kernel.clone(),
                    det_cores,
                    args.measure_secs.min(0.15),
                    0x5eed,
                )
            },
            |r| shard_report(r).digest(),
        );
        println!(
            "  {:<14} digest {}  reproduced",
            kernel.label(),
            shard_report(&a).digest()
        );
    }

    if failures == 0 {
        println!("\nall kernels verified clean at {core_counts:?} cores, digests stable");
    } else {
        println!("\n{failures} FAILURES");
    }
    args.write_json(&rows);
    assert_eq!(failures, 0, "verification gate failed");
}
