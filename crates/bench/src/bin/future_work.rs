//! The paper's §5 future-work candidates, measured: FlexSC-style
//! syscall batching and zero-copy I/O on top of full Fastsocket.
//!
//! "It is possible to implement system call batching in Fastsocket ...
//! integrating system call batching is left as future work. ...
//! Fastsocket can use zero-copy technologies in POSIX OSes."

use fastsocket::{AppSpec, KernelSpec, SimConfig, Simulation};
use fastsocket_bench::{kcps, HarnessArgs};
use tcp_stack::stack::StackConfig;

fn run(batching: bool, zero_copy: bool, cores: u16, measure: f64) -> f64 {
    let mut stack = StackConfig::fastsocket(cores);
    stack.syscall_batching = batching;
    stack.zero_copy = zero_copy;
    let cfg = SimConfig::new(KernelSpec::Custom(Box::new(stack)), AppSpec::web(), cores)
        .warmup_secs(0.1)
        .measure_secs(measure);
    Simulation::new(cfg).run().throughput_cps
}

fn main() {
    let args = HarnessArgs::parse(0.2, "future_work");
    let cores = args
        .cores
        .as_ref()
        .and_then(|c| c.first().copied())
        .unwrap_or(24);
    println!("Fastsocket web server on {cores} cores, §5 extensions\n");
    let mut rows = Vec::new();
    let base = run(false, false, cores, args.measure_secs);
    for (label, batching, zero_copy) in [
        ("fastsocket", false, false),
        ("+ syscall batching", true, false),
        ("+ zero-copy", false, true),
        ("+ both", true, true),
    ] {
        let cps = if batching || zero_copy {
            run(batching, zero_copy, cores, args.measure_secs)
        } else {
            base
        };
        println!(
            "{:<20} {:>10}  ({:+.1}%)",
            label,
            kcps(cps),
            100.0 * (cps / base - 1.0)
        );
        rows.push((label, cps));
    }
    println!(
        "\nBoth optimizations compose with the partitioned design: they shave \
         per-request\nfixed costs without touching the (already contention-free) \
         shared structures."
    );
    args.write_json(&rows);
}
