//! Regenerates the production profiling claims (§1, §4.2.4): on the
//! 8-core HAProxy boxes, spin locks consume ~9% (TCB) + ~11% (VFS) of
//! cycles before Fastsocket, and no more than 6% after.

use fastsocket::experiments::micro;
use fastsocket_bench::{pct, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse(0.25, "lock_cycles");
    let cores = args
        .cores
        .as_ref()
        .and_then(|c| c.first().copied())
        .unwrap_or(8);
    eprintln!("lock-cycle shares (HAProxy, {cores} cores)...");
    let shares = micro::lock_cycle_shares(cores, args.measure_secs);

    println!("cycle shares on the {cores}-core HAProxy workload");
    println!(
        "{:<14} {:>10} {:>10} {:>12}",
        "kernel", "spin", "vfs", "throughput"
    );
    for s in &shares {
        println!(
            "{:<14} {:>10} {:>10} {:>11.0}cps",
            s.kernel,
            pct(s.spin),
            pct(s.vfs),
            s.cps
        );
    }
    println!(
        "\npaper: base spends 9% (TCB) + 11% (VFS) of cycles in spin locks; \
         with Fastsocket locks consume no more than 6%"
    );
    args.write_json(&shares);
}
