//! Ablation: Receive Flow Deliver's packet-classification rules.
//!
//! When the proxy serves a well-known port (80), rules 1 and 2 classify
//! every packet without touching the listen table. Serving a
//! non-well-known port (8080) forces rule 3 (the listen-table probe) —
//! still a correct classification, at a small extra probe cost.

use fastsocket::{AppSpec, KernelSpec, SimConfig, Simulation};
use fastsocket_bench::HarnessArgs;
use sim_apps::proxy::ProxyConfig;

fn main() {
    let args = HarnessArgs::parse(0.15, "ablate_rfd_rules");
    println!("RFD classification-rule usage (Fastsocket proxy, 8 cores)\n");
    println!(
        "{:>14} {:>12} {:>12} {:>12} {:>10} {:>8}",
        "service port", "rule1", "rule2", "rule3", "cps", "resets"
    );
    let mut rows = Vec::new();
    for port in [80u16, 8_080] {
        // Backends also move off the well-known range in the second
        // scenario, so even backend traffic needs rule 3.
        let pc = ProxyConfig {
            port,
            backend_port: if port == 80 { 80 } else { 8_080 },
            ..ProxyConfig::default()
        };
        let cfg = SimConfig::new(KernelSpec::Fastsocket, AppSpec::Proxy(pc), 8)
            .warmup_secs(0.05)
            .measure_secs(args.measure_secs);
        let r = Simulation::new(cfg).run();
        println!(
            "{:>14} {:>12} {:>12} {:>12} {:>10.0} {:>8}",
            port,
            r.stack.rfd_rule1,
            r.stack.rfd_rule2,
            r.stack.rfd_rule3,
            r.throughput_cps,
            r.resets
        );
        assert_eq!(r.resets, 0, "classification must stay correct");
        rows.push((
            port,
            r.stack.rfd_rule1,
            r.stack.rfd_rule2,
            r.stack.rfd_rule3,
        ));
    }
    println!(
        "\nOn port 80 the cheap rules classify everything; on 8080 the \
         listen-table probe\n(rule 3) takes over for passive traffic — and \
         no connection misclassifies\n(zero resets), confirming the rules' \
         correctness argument in §3.3."
    );
    args.write_json(&rows);
}
