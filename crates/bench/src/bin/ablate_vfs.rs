//! Ablation: the three VFS designs at fixed TCP-stack features.
//!
//! Holding the listen/established tables constant (stock global
//! tables), swap only the VFS: 2.6.32's global locks, 3.13-era sharded
//! locks, and the Fastsocket-aware fast path. This isolates how much of
//! the scalability story is VFS alone.

use fastsocket::{AppSpec, KernelSpec, SimConfig, Simulation};
use fastsocket_bench::{kcps, pct, HarnessArgs};
use sim_os::vfs::VfsMode;
use tcp_stack::stack::StackConfig;

fn main() {
    let args = HarnessArgs::parse(0.15, "ablate_vfs");
    let cores_list = args.cores.clone().unwrap_or_else(|| vec![8, 16, 24]);
    println!("HAProxy throughput with ONLY the VFS swapped (stock TCP tables)\n");
    println!(
        "{:<12} {}",
        "vfs",
        cores_list
            .iter()
            .map(|c| format!("{:>16}", format!("{c} cores (spin)")))
            .collect::<String>()
    );
    let mut rows = Vec::new();
    for (label, mode) in [
        ("legacy", VfsMode::Legacy),
        ("sharded", VfsMode::Sharded),
        ("fastpath", VfsMode::Fastpath),
    ] {
        print!("{label:<12}");
        for &cores in &cores_list {
            let mut stack = StackConfig::base_linux(cores);
            stack.vfs_mode = mode;
            let cfg = SimConfig::new(KernelSpec::Custom(Box::new(stack)), AppSpec::proxy(), cores)
                .warmup_secs(0.05)
                .measure_secs(args.measure_secs);
            let r = Simulation::new(cfg).run();
            print!(
                "{:>16}",
                format!("{} ({})", kcps(r.throughput_cps), pct(r.lock_spin_share()))
            );
            rows.push((label, cores, r.throughput_cps, r.lock_spin_share()));
        }
        println!();
    }
    println!(
        "\nThe fast path removes the VFS wall entirely, but the remaining \
         global listen\nsocket still caps scaling — each partition matters \
         (Table 1's incremental story)."
    );
    args.write_json(&rows);
}
