//! Ablation: why must `accept()` check the *global* queue before the
//! local one (Figure 2, step 7)?
//!
//! With a crashed worker, its core's connections land in the global
//! listen socket's accept queue. On a busy server the local queues are
//! never empty, so a local-first `accept()` would never reach the
//! global queue: the slow-path clients starve until they time out. The
//! paper's global-first ordering serves them immediately.

use fastsocket::{AppSpec, KernelSpec, SimConfig, Simulation};
use fastsocket_bench::HarnessArgs;
use sim_core::CoreId;
use tcp_stack::stack::StackConfig;

fn run(local_first: bool, measure: f64) -> (u64, u64, u64) {
    let mut stack = StackConfig::fastsocket(4);
    stack.accept_local_first = local_first;
    let cfg = SimConfig::new(KernelSpec::Custom(Box::new(stack)), AppSpec::web(), 4)
        .warmup_secs(0.05)
        .measure_secs(measure)
        .concurrency(800);
    let mut sim = Simulation::new(cfg);
    sim.crash_worker(CoreId(1));
    let r = sim.run();
    (r.stack.accepts_global, r.timeouts, r.completed)
}

fn main() {
    let args = HarnessArgs::parse(0.3, "ablate_accept_order");
    println!("4-core Fastsocket web server, worker on core 1 crashed, saturating load\n");
    println!(
        "{:<22} {:>16} {:>10} {:>12}",
        "accept() ordering", "global accepts", "timeouts", "completed"
    );
    let mut rows = Vec::new();
    for (label, local_first) in [
        ("global-first (paper)", false),
        ("local-first (naive)", true),
    ] {
        let (global, timeouts, completed) = run(local_first, args.measure_secs);
        println!("{label:<22} {global:>16} {timeouts:>10} {completed:>12}");
        rows.push((label, global, timeouts, completed));
    }
    println!(
        "\nIn this closed-loop regime workers drain their local queues to empty \
         on every\nwakeup, so both orderings serve the slow path and throughput \
         matches — i.e. the\npaper's global-first rule costs nothing. Its value \
         is the *guarantee*: under\nsustained overload a local queue may never \
         empty, and only global-first bounds\nthe slow-path wait (the ordering \
         is asserted in tests/stack_lifecycle.rs)."
    );
    args.write_json(&rows);
}
