//! Calibration sweep: prints cps and diagnostic metrics across kernels
//! and core counts so the cost model can be tuned against the paper's
//! absolute numbers (Figure 4).
//!
//! Usage: `calibrate [app] [measure_secs]` where app = web | proxy.

use fastsocket::{AppSpec, KernelSpec, SimConfig, Simulation};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let app_name = args.get(1).map_or("web", String::as_str);
    let measure: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0.5);
    let cores_list: Vec<u16> = args.get(3).map_or_else(
        || vec![1, 4, 8, 12, 16, 20, 24],
        |s| s.split(',').map(|x| x.parse().unwrap()).collect(),
    );

    println!(
        "{:<12} {:>5} {:>10} {:>7} {:>7} {:>7} {:>8} {:>8} {:>7} {:>7} {:>7}",
        "kernel",
        "cores",
        "cps",
        "spin%",
        "vfs%",
        "llkup%",
        "miss%",
        "local%",
        "util",
        "rst",
        "tmo"
    );
    for kernel in [
        KernelSpec::BaseLinux,
        KernelSpec::Linux313,
        KernelSpec::Fastsocket,
    ] {
        for &cores in &cores_list {
            let app = match app_name {
                "proxy" => AppSpec::proxy(),
                _ => AppSpec::web(),
            };
            let cfg = SimConfig::new(kernel.clone(), app, cores)
                .warmup_secs(0.1)
                .measure_secs(measure);
            let r = Simulation::new(cfg).run();
            println!(
                "{:<12} {:>5} {:>10.0} {:>6.1}% {:>6.1}% {:>6.1}% {:>7.1}% {:>7.1}% {:>6.2} {:>7} {:>7}",
                r.kernel,
                cores,
                r.throughput_cps,
                100.0 * r.lock_spin_share(),
                100.0 * r.cycle_share(sim_core::CycleClass::Vfs),
                100.0 * r.cycle_share(sim_core::CycleClass::ListenLookup),
                100.0 * r.l3_miss_rate,
                100.0 * r.local_packet_proportion,
                r.avg_utilization(),
                r.resets,
                r.timeouts,
            );
            if std::env::var("CAL_LOCKS").is_ok() {
                for l in &r.locks {
                    if l.acquisitions > 0 {
                        println!(
                            "    {:<14} acq={:<10} cont={:<10} wait_mcyc={:<9.1} reserved_mcyc={:.1}",
                            l.name,
                            l.acquisitions,
                            l.contentions,
                            l.wait_cycles as f64 / 1e6,
                            l.reserved_cycles as f64 / 1e6
                        );
                    }
                }
            }
        }
    }
}
