//! Sanitizer sweep: every stock kernel variant × core count runs under
//! the full `sim-check` suite (lockdep, lockset race detection,
//! happens-before vector clocks, the shard-safety certifier, and the
//! partition lints) and must report **zero** violations.
//!
//! This is the repo's analog of booting a kernel with
//! `CONFIG_PROVE_LOCKING` and KCSAN enabled and watching dmesg stay
//! quiet: a correctness gate, not a performance figure. A second table
//! turns each fault-injection knob and verifies that the corresponding
//! detector *does* fire — the sanitizers are proven live, not merely
//! silent.

use fastsocket::{AppSpec, CheckReport, FaultInjection, KernelSpec, SimConfig, Simulation};
use fastsocket_bench::HarnessArgs;

/// One fault-injection row: the knob, the kernel to run it under, and
/// the predicate proving the right detector fired.
type FaultRow = (FaultInjection, KernelSpec, fn(&CheckReport) -> bool);

fn run(
    kernel: KernelSpec,
    app: AppSpec,
    cores: u16,
    measure: f64,
    fault: FaultInjection,
) -> CheckReport {
    let cfg = SimConfig::new(kernel, app, cores)
        .warmup_secs(0.05)
        .measure_secs(measure)
        .concurrency(u32::from(cores) * 100)
        .check(true)
        .fault(fault);
    Simulation::new(cfg)
        .run()
        .checks
        .expect("check(true) must produce a report")
}

fn main() {
    let args = HarnessArgs::parse(0.3, "checks");
    let core_counts = args
        .cores
        .clone()
        .unwrap_or_else(|| vec![1, 2, 4, 8, 12, 16, 24]);

    println!("sim-check sweep: lockdep + lockset + hb + shard + partition lints, web workload\n");
    println!(
        "{:<14} {:>5} {:>8} {:>8} {:>4} {:>6} {:>10} {:>10} {:>9}",
        "kernel", "cores", "lockdep", "lockset", "hb", "shard", "partition", "invariant", "verdict"
    );
    let mut rows = Vec::new();
    let mut dirty = 0u32;
    for kernel in [
        KernelSpec::BaseLinux,
        KernelSpec::Linux313,
        KernelSpec::Fastsocket,
    ] {
        for &cores in &core_counts {
            let r = run(
                kernel.clone(),
                AppSpec::web(),
                cores,
                args.measure_secs,
                FaultInjection::None,
            );
            let verdict = if r.is_clean() { "clean" } else { "DIRTY" };
            if !r.is_clean() {
                dirty += 1;
                for d in &r.diagnostics {
                    eprintln!(
                        "  {}: {} at {}: {}",
                        d.detector.name(),
                        d.subject,
                        d.site,
                        d.detail
                    );
                }
            }
            println!(
                "{:<14} {:>5} {:>8} {:>8} {:>4} {:>6} {:>10} {:>10} {:>9}",
                kernel.label(),
                cores,
                r.lockdep,
                r.lockset,
                r.hb,
                r.shard,
                r.partition,
                r.invariant,
                verdict
            );
            rows.push((kernel.label(), cores, r));
        }
    }

    println!("\nfault-injection cross-check (each knob must trip its own detector):\n");
    println!(
        "{:<18} {:>8} {:>8} {:>4} {:>6} {:>10} {:>9}",
        "fault", "lockdep", "lockset", "hb", "shard", "partition", "verdict"
    );
    let faults: [FaultRow; 7] = [
        (FaultInjection::SkipSlock, KernelSpec::BaseLinux, |r| {
            r.lockset > 0
        }),
        (
            FaultInjection::ReverseLockOrder,
            KernelSpec::BaseLinux,
            |r| r.lockdep > 0,
        ),
        (FaultInjection::MisSteer, KernelSpec::Fastsocket, |r| {
            r.partition > 0
        }),
        (
            FaultInjection::CrossCoreAccept,
            KernelSpec::Fastsocket,
            |r| r.partition > 0,
        ),
        (
            FaultInjection::CrossCoreTimer,
            KernelSpec::Fastsocket,
            |r| r.partition > 0,
        ),
        (FaultInjection::SilentHandoff, KernelSpec::BaseLinux, |r| {
            r.hb > 0 && r.lockset == 0
        }),
        (FaultInjection::OwnerPingPong, KernelSpec::Fastsocket, |r| {
            r.shard > 0 && r.hb == 0 && r.lockset == 0
        }),
    ];
    for (fault, kernel, fired) in faults {
        let app = if fault == FaultInjection::MisSteer {
            AppSpec::proxy()
        } else {
            AppSpec::web()
        };
        let r = run(kernel, app, 4, args.measure_secs.min(0.15), fault);
        let ok = fired(&r);
        if !ok {
            dirty += 1;
        }
        println!(
            "{:<18} {:>8} {:>8} {:>4} {:>6} {:>10} {:>9}",
            format!("{fault:?}"),
            r.lockdep,
            r.lockset,
            r.hb,
            r.shard,
            r.partition,
            if ok { "fires" } else { "SILENT" }
        );
    }

    if dirty == 0 {
        println!("\nall stock variants clean, all fault knobs detected");
    } else {
        println!("\n{dirty} FAILURES");
    }
    args.write_json(&rows);
    assert_eq!(dirty, 0, "sanitizer sweep failed");
}
