//! Criterion end-to-end benchmarks: one short simulated burst per
//! kernel/application pair. These are the building blocks of every
//! figure; their host-time cost bounds full regeneration runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fastsocket::{AppSpec, KernelSpec, SimConfig, Simulation};

fn short_run(kernel: KernelSpec, app: AppSpec, cores: u16) -> f64 {
    let cfg = SimConfig::new(kernel, app, cores)
        .warmup_secs(0.005)
        .measure_secs(0.02)
        .concurrency(u32::from(cores) * 40);
    Simulation::new(cfg).run().throughput_cps
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_20ms_web_8core");
    group.sample_size(10);
    for (label, kernel) in [
        ("base", KernelSpec::BaseLinux),
        ("linux313", KernelSpec::Linux313),
        ("fastsocket", KernelSpec::Fastsocket),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &kernel, |b, k| {
            b.iter(|| short_run(k.clone(), AppSpec::web(), 8));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("sim_20ms_proxy_8core");
    group.sample_size(10);
    for (label, kernel) in [
        ("base", KernelSpec::BaseLinux),
        ("fastsocket", KernelSpec::Fastsocket),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &kernel, |b, k| {
            b.iter(|| short_run(k.clone(), AppSpec::proxy(), 8));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
