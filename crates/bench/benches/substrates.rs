//! Criterion microbenchmarks of the simulation substrates: these bound
//! how much host time each model costs per simulated event, which is
//! what determines how long the figure-regeneration runs take.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sim_core::cpu::{CostSheet, CycleClass};
use sim_core::{CoreId, Cpu, EventQueue, SimRng};
use sim_mem::{CacheCosts, CacheModel, ObjKind};
use sim_net::{FlowTuple, Packet, TcpFlags};
use sim_nic::{toeplitz::hash_flow, Nic, NicConfig, QueueId, SteeringMode, RSS_KEY};
use sim_sync::{LockClass, LockCosts, LockTable};
use std::net::Ipv4Addr;
use tcp_stack::established::flow_hash;

fn flow(port: u16) -> FlowTuple {
    FlowTuple::new(
        Ipv4Addr::new(10, 0, 0, 2),
        port,
        Ipv4Addr::new(10, 0, 0, 1),
        80,
    )
}

fn bench_toeplitz(c: &mut Criterion) {
    let f = flow(40_000);
    c.bench_function("toeplitz_hash_flow", |b| {
        b.iter(|| hash_flow(black_box(&RSS_KEY), black_box(&f)));
    });
    c.bench_function("fnv_flow_hash", |b| b.iter(|| flow_hash(black_box(&f))));
}

fn bench_packet_codec(c: &mut Criterion) {
    let pkt = Packet::new(flow(40_000), TcpFlags::PSH | TcpFlags::ACK)
        .with_seq(1)
        .with_ack(2)
        .with_payload(600);
    c.bench_function("packet_to_wire_600B", |b| b.iter(|| pkt.to_wire()));
    let wire = pkt.to_wire();
    c.bench_function("packet_parse_600B", |b| {
        b.iter(|| Packet::parse(black_box(&wire)).unwrap());
    });
}

fn bench_nic(c: &mut Criterion) {
    let mut nic = Nic::new(NicConfig::new(24, SteeringMode::FdirAtr));
    let pkt = Packet::new(flow(40_001), TcpFlags::SYN);
    c.bench_function("nic_rx_queue_atr", |b| {
        b.iter(|| nic.rx_queue(black_box(&pkt)));
    });
    c.bench_function("nic_tx_atr_observe", |b| {
        b.iter(|| nic.tx(black_box(&pkt), QueueId(3)));
    });
}

fn bench_locks(c: &mut Criterion) {
    let mut t = LockTable::new(LockCosts::default());
    let lock = t.register(LockClass::Slock);
    let mut now = 0u64;
    c.bench_function("lock_acquire_uncontended", |b| {
        b.iter(|| {
            now += 10_000;
            t.set_epoch(now);
            t.acquire(lock, CoreId(0), now, 500)
        });
    });
    let mut t2 = LockTable::new(LockCosts::default());
    let hot = t2.register(LockClass::DcacheLock);
    let mut i = 0u64;
    c.bench_function("lock_acquire_contended_8core", |b| {
        b.iter(|| {
            i += 1;
            t2.set_epoch(i * 100);
            t2.acquire(hot, CoreId((i % 8) as u16), i * 100, 2_000)
        });
    });
}

fn bench_cache(c: &mut Criterion) {
    let mut cache = CacheModel::new(CacheCosts::default());
    let mut rng = SimRng::seed(1);
    let obj = cache.alloc(ObjKind::Tcb, CoreId(0));
    let mut i = 0u16;
    c.bench_function("cache_access_pingpong", |b| {
        b.iter(|| {
            i = (i + 1) % 2;
            cache.access(obj, CoreId(i), &mut rng)
        });
    });
}

fn bench_engine(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(1_024);
            for i in 0..1_000u64 {
                q.push((i * 7919) % 10_000, i);
            }
            while q.pop().is_some() {}
        });
    });
    let mut cpu = Cpu::new(24);
    let mut sheet = CostSheet::new();
    sheet.add(CycleClass::AppWork, 1_000);
    c.bench_function("cpu_execute", |b| {
        b.iter(|| cpu.execute(CoreId(3), 0, black_box(&sheet)));
    });
}

criterion_group!(
    benches,
    bench_toeplitz,
    bench_packet_codec,
    bench_nic,
    bench_locks,
    bench_cache,
    bench_engine
);
criterion_main!(benches);
