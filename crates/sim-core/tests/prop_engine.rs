//! Property tests for the simulation engine: the event queue delivers
//! in time order with FIFO ties, and the CPU never runs two operations
//! concurrently on one core.

use proptest::prelude::*;
use sim_core::cpu::{CostSheet, CycleClass};
use sim_core::{CoreId, Cpu, EventQueue};

proptest! {
    /// Events pop in nondecreasing time order; equal times preserve
    /// insertion order.
    #[test]
    fn event_queue_total_order(times in collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(t, i);
        }
        let mut last: Option<(u64, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(t > lt || (t == lt && i > li), "({lt},{li}) then ({t},{i})");
            }
            last = Some((t, i));
        }
    }

    /// A core's operations never overlap: each starts at or after the
    /// previous one ended, regardless of requested start times.
    #[test]
    fn core_operations_serialize(
        ops in collection::vec((0u64..10_000, 1u64..5_000), 1..100)
    ) {
        let mut cpu = Cpu::new(1);
        let mut busy_total = 0u64;
        let mut prev_end = 0u64;
        for (earliest, dur) in ops {
            let mut sheet = CostSheet::new();
            sheet.add(CycleClass::AppWork, dur);
            let span = cpu.execute(CoreId(0), earliest, &sheet);
            prop_assert!(span.start >= prev_end, "overlap: {span:?} after {prev_end}");
            prop_assert!(span.start >= earliest);
            prop_assert_eq!(span.end - span.start, dur);
            prev_end = span.end;
            busy_total += dur;
        }
        prop_assert_eq!(cpu.busy_cycles(CoreId(0)), busy_total);
        // Busy time can never exceed elapsed time on a core.
        prop_assert!(busy_total <= prev_end);
    }

    /// Per-class accounting always sums to total busy time.
    #[test]
    fn class_accounting_conserves(
        parts in collection::vec((0usize..14, 1u64..1_000), 1..50)
    ) {
        let mut cpu = Cpu::new(1);
        for (class_idx, dur) in &parts {
            let mut sheet = CostSheet::new();
            sheet.add(CycleClass::ALL[*class_idx], *dur);
            cpu.execute(CoreId(0), 0, &sheet);
        }
        let by_class: u64 = CycleClass::ALL
            .iter()
            .map(|c| cpu.class_cycles(CoreId(0), *c))
            .sum();
        prop_assert_eq!(by_class, cpu.busy_cycles(CoreId(0)));
    }
}
