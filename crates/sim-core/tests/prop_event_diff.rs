//! Differential proptest: the timing-wheel scheduler must reproduce the
//! binary heap's pop order bit-for-bit — including FIFO tie-breaking at
//! duplicate timestamps — under arbitrary interleaved push/pop schedules.

use proptest::prelude::*;
use sim_core::event::SchedulerKind;
use sim_core::{Cycles, EventQueue};

/// Decodes one raw `(kind, magnitude)` pair into a schedule step.
///
/// * `0..=7` — push at `now + offset`, with the offset scaled so cases
///   cluster on duplicate timestamps and same-slot collisions but also
///   reach past the wheel horizon (~2.1M cycles), exercising the far
///   tier and its slab recycling. Simulations only ever schedule at or
///   after "now", which is why offsets are relative to the last pop.
/// * `8..=11` — pop one event from both queues.
/// * `12..=13` — drain one same-timestamp batch from both queues.
#[derive(Debug, Clone, Copy)]
enum Step {
    Push(Cycles),
    Pop,
    PopBatch,
}

fn decode(kind: u8, magnitude: u64) -> Step {
    match kind % 14 {
        0 | 1 => Step::Push(0),
        2 | 3 => Step::Push(magnitude % 8),
        4 | 5 => Step::Push(magnitude % 10_000),
        6 => Step::Push(magnitude % 3_000_000),
        7 => Step::Push(magnitude % 600_000_000),
        8..=11 => Step::Pop,
        _ => Step::PopBatch,
    }
}

proptest! {
    #[test]
    fn wheel_and_heap_pop_identically(
        raw in collection::vec((0u8..14, 0u64..u64::MAX), 1..400)
    ) {
        let mut wheel: EventQueue<u32> = EventQueue::with_scheduler(SchedulerKind::Wheel, 0);
        let mut heap: EventQueue<u32> = EventQueue::with_scheduler(SchedulerKind::Heap, 0);
        let mut now: Cycles = 0;
        let mut id: u32 = 0;
        let (mut wb, mut hb) = (Vec::new(), Vec::new());
        for (kind, magnitude) in raw {
            match decode(kind, magnitude) {
                Step::Push(off) => {
                    wheel.push(now + off, id);
                    heap.push(now + off, id);
                    id += 1;
                }
                Step::Pop => {
                    let w = wheel.pop();
                    let h = heap.pop();
                    prop_assert_eq!(w, h);
                    if let Some((t, _)) = w {
                        now = t;
                    }
                }
                Step::PopBatch => {
                    wb.clear();
                    hb.clear();
                    let wt = wheel.pop_batch(&mut wb);
                    let ht = heap.pop_batch(&mut hb);
                    prop_assert_eq!(wt, ht);
                    prop_assert_eq!(&wb, &hb);
                    if let Some(t) = wt {
                        now = t;
                    }
                }
            }
            prop_assert_eq!(wheel.len(), heap.len());
        }
        // Drain the rest: the full residual order must match too.
        loop {
            let w = wheel.pop();
            let h = heap.pop();
            prop_assert_eq!(w, h);
            if w.is_none() {
                break;
            }
        }
        prop_assert_eq!(wheel.delivered(), heap.delivered());
    }
}
