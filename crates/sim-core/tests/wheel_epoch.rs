//! Wheel epoch-boundary regression tests.
//!
//! An event scheduled exactly one full wheel span (`WHEEL_SLOTS`
//! rotations' worth of cycles) ahead of the current slot computes the
//! *same* ring index under `slot & WHEEL_MASK` as the current slot. If
//! the push path ever classified such an event as near-future it would
//! alias into the current rotation and pop a whole span early. The
//! push bound is strict (`slot < cur_slot + WHEEL_SLOTS`), which routes
//! span-ahead events to the far-future heap — these tests pin that,
//! both with targeted cases and with a multi-rotation differential
//! proptest against the binary-heap oracle.

use proptest::prelude::*;
use sim_core::event::WHEEL_SPAN_CYCLES;
use sim_core::{Cycles, EventQueue, SchedulerKind};

/// Drains both queues completely, asserting identical pop order.
fn assert_identical_drain(wheel: &mut EventQueue<u64>, heap: &mut EventQueue<u64>) {
    loop {
        let a = wheel.pop();
        let b = heap.pop();
        assert_eq!(a, b, "wheel diverged from heap oracle");
        if a.is_none() {
            break;
        }
    }
}

#[test]
fn span_ahead_event_does_not_alias_into_current_slot() {
    let mut q: EventQueue<u64> = EventQueue::with_scheduler(SchedulerKind::Wheel, 16);
    // Same ring index (slot & MASK), one full rotation apart.
    q.push(0, 0);
    q.push(WHEEL_SPAN_CYCLES, 1);
    q.push(WHEEL_SPAN_CYCLES + 1, 2);
    q.push(5, 3);
    assert_eq!(q.pop(), Some((0, 0)));
    assert_eq!(q.pop(), Some((5, 3)));
    // The span-ahead events must surface *after* the near ones, in
    // time order — not interleaved into slot 0's batch.
    assert_eq!(q.pop(), Some((WHEEL_SPAN_CYCLES, 1)));
    assert_eq!(q.pop(), Some((WHEEL_SPAN_CYCLES + 1, 2)));
    assert_eq!(q.pop(), None);
}

#[test]
fn multiple_whole_rotations_keep_time_order() {
    let mut wheel: EventQueue<u64> = EventQueue::with_scheduler(SchedulerKind::Wheel, 64);
    let mut heap: EventQueue<u64> = EventQueue::with_scheduler(SchedulerKind::Heap, 64);
    // Events at k whole spans + the same intra-slot offset, pushed in
    // scrambled order: every one shares the aliased ring index.
    for &k in &[3u64, 0, 7, 1, 5, 2, 6, 4] {
        let t = k * WHEEL_SPAN_CYCLES + 42;
        wheel.push(t, k);
        heap.push(t, k);
    }
    assert_identical_drain(&mut wheel, &mut heap);
}

#[test]
fn aliased_pushes_after_partial_drain_stay_ordered() {
    // Advance the wheel mid-rotation first, then push events that alias
    // the *new* current slot — the regression is not specific to slot 0.
    let mut wheel: EventQueue<u64> = EventQueue::with_scheduler(SchedulerKind::Wheel, 64);
    let mut heap: EventQueue<u64> = EventQueue::with_scheduler(SchedulerKind::Heap, 64);
    for (t, v) in [(100_000u64, 0u64), (150_000, 1)] {
        wheel.push(t, v);
        heap.push(t, v);
    }
    assert_eq!(wheel.pop(), Some((100_000, 0)));
    assert_eq!(heap.pop(), Some((100_000, 0)));
    // cur_slot now covers 100_000; alias it one and two spans out.
    for (t, v) in [
        (100_000 + WHEEL_SPAN_CYCLES, 2u64),
        (100_000 + 2 * WHEEL_SPAN_CYCLES, 3),
        (100_001 + WHEEL_SPAN_CYCLES, 4),
    ] {
        wheel.push(t, v);
        heap.push(t, v);
    }
    assert_identical_drain(&mut wheel, &mut heap);
}

/// One step of the generated schedule: push at `now + offset` (offsets
/// engineered to land on whole-span aliases), or pop from both queues.
#[derive(Debug, Clone, Copy)]
enum Step {
    Push(Cycles),
    Pop,
}

fn decode(kind: u8, spans: u64, jitter: u64) -> Step {
    match kind % 8 {
        // Exact whole-span aliases of the current slot, 1–8 rotations
        // out — the epoch-boundary hazard itself.
        0 | 1 | 2 => Step::Push((1 + spans % 8) * WHEEL_SPAN_CYCLES),
        // One slot either side of a whole span, so the boundary's
        // neighbours are exercised too.
        3 => Step::Push((1 + spans % 4) * WHEEL_SPAN_CYCLES - 1 - (jitter % 8192)),
        4 => Step::Push((1 + spans % 4) * WHEEL_SPAN_CYCLES + 1 + (jitter % 8192)),
        // Near-future filler so rotations actually advance.
        5 => Step::Push(jitter % 10_000),
        _ => Step::Pop,
    }
}

proptest! {
    /// Multi-rotation differential: under schedules dense in exact
    /// whole-span offsets, the wheel must reproduce the heap oracle's
    /// pop order bit-for-bit.
    #[test]
    fn wheel_matches_heap_across_epoch_boundaries(
        raw in collection::vec((0u8..8, 0u64..64, 0u64..u64::MAX), 1..300)
    ) {
        let mut wheel: EventQueue<u64> = EventQueue::with_scheduler(SchedulerKind::Wheel, 16);
        let mut heap: EventQueue<u64> = EventQueue::with_scheduler(SchedulerKind::Heap, 16);
        let mut now: Cycles = 0;
        let mut next_val: u64 = 0;
        for (kind, spans, jitter) in raw {
            match decode(kind, spans, jitter) {
                Step::Push(offset) => {
                    wheel.push(now + offset, next_val);
                    heap.push(now + offset, next_val);
                    next_val += 1;
                }
                Step::Pop => {
                    let a = wheel.pop();
                    let b = heap.pop();
                    prop_assert_eq!(a, b, "wheel diverged from heap");
                    if let Some((t, _)) = a {
                        now = t;
                    }
                }
            }
        }
        // Drain the tail: every remaining event must agree too.
        loop {
            let a = wheel.pop();
            let b = heap.pop();
            prop_assert_eq!(a, b, "wheel diverged from heap in final drain");
            if a.is_none() {
                break;
            }
        }
    }
}
