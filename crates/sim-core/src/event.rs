//! Deterministic event queue.
//!
//! The simulation is driven by a single priority queue of timestamped
//! events. Two events with the same timestamp are delivered in the order
//! they were pushed (FIFO tie-breaking via a monotonically increasing
//! sequence number), which makes every run bit-for-bit reproducible for a
//! given seed.
//!
//! Two interchangeable backends implement that contract:
//!
//! * [`SchedulerKind::Wheel`] (the default) — a hashed timing wheel for the
//!   near future (Varghese & Lauck), cascading into a slab-backed binary
//!   heap only for far-future events such as TIME_WAIT expiry, RTO backoff
//!   and client timeouts. Near events (packets, softirqs, process wakes)
//!   land in O(1) wheel slots instead of paying an O(log n) sift past the
//!   tens of thousands of pending far-future timers.
//! * [`SchedulerKind::Heap`] — the original global `BinaryHeap`, kept as
//!   the differential-testing and benchmarking baseline.
//!
//! Both backends produce bit-identical pop orders; the differential
//! proptest in `tests/prop_event_diff.rs` drives them with identical
//! push/pop schedules and asserts exactly that.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use sim_trace::Tracer;

use crate::time::Cycles;

/// A dispatch-count hook: the tracer plus the event-labeling function.
type DispatchTrace<E> = (Tracer, fn(&E) -> &'static str);

/// Which event-queue backend drives the simulation.
///
/// Both orders are proven identical; the knob exists so benchmarks and
/// tests can compare them and so a regression can be bisected to the
/// scheduler in one config flip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// Two-tier timing wheel + far-future heap (default, fast).
    #[default]
    Wheel,
    /// Single global binary heap (baseline).
    Heap,
}

/// Log2 of the wheel-slot width in cycles: 8192 cycles ≈ 3 µs per slot.
const SLOT_BITS: u32 = 13;
/// Number of wheel slots; the near horizon is `SLOTS << SLOT_BITS` cycles
/// (≈ 0.78 ms at 2.7 GHz) — comfortably past one RTT, so every packet,
/// softirq and wake event stays on the wheel while protocol timers
/// (TIME_WAIT ≥ 1 ms, RTO, client timeouts) go to the far heap.
const WHEEL_SLOTS: usize = 256;
const WHEEL_MASK: u64 = WHEEL_SLOTS as u64 - 1;
const OCC_WORDS: usize = WHEEL_SLOTS / 64;

/// One full rotation of the wheel, in cycles. An event scheduled
/// exactly this far ahead has the same `slot & WHEEL_MASK` ring index
/// as the current slot — the epoch-aliasing hazard. The push-side
/// bound is strict (`slot < cur_slot + WHEEL_SLOTS`), so such an event
/// is routed to the far-future heap rather than aliasing into the
/// current rotation; `tests/wheel_epoch.rs` pins that behaviour across
/// multiple rotations.
pub const WHEEL_SPAN_CYCLES: Cycles = (WHEEL_SLOTS as u64) << SLOT_BITS;

/// An event queue ordered by `(time, insertion order)`: equal-time
/// events dispatch in the order they were scheduled.
///
/// # Example
///
/// ```
/// # use sim_core::event::EventQueue;
/// let mut q = EventQueue::new();
/// q.push(20, 'b');
/// q.push(10, 'a');
/// q.push(20, 'c');
/// assert_eq!(q.pop(), Some((10, 'a')));
/// assert_eq!(q.pop(), Some((20, 'b')));
/// assert_eq!(q.pop(), Some((20, 'c')));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    backend: Backend<E>,
    seq: u64,
    popped: u64,
    trace: Option<DispatchTrace<E>>,
}

#[derive(Debug)]
enum Backend<E> {
    Heap(BinaryHeap<Entry<E>>),
    Wheel(Box<Wheel<E>>),
}

#[derive(Debug)]
struct Entry<E> {
    time: Cycles,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq)
        // pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Far-tier heap key: the event payload lives in a slab so sift
/// operations move 20-byte keys, not whole events.
#[derive(Debug)]
struct FarKey {
    time: Cycles,
    seq: u64,
    idx: u32,
}

impl PartialEq for FarKey {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for FarKey {}
impl PartialOrd for FarKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for FarKey {
    fn cmp(&self, other: &Self) -> Ordering {
        // Inverted: earliest (time, seq) on top of the max-heap.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Two-tier scheduler state.
///
/// Invariants:
/// * `batch` holds *all* pending events whose slot is `cur_slot`, sorted
///   descending by `(time, seq)` so `Vec::pop` yields the minimum.
/// * `ring[s]` holds events whose absolute slot is in
///   `(cur_slot, cur_slot + WHEEL_SLOTS)`; `occupied` mirrors non-empty
///   slots.
/// * `far` holds only events with slot `>= cur_slot + WHEEL_SLOTS`.
#[derive(Debug)]
struct Wheel<E> {
    /// Absolute slot index (`time >> SLOT_BITS`) the batch covers.
    cur_slot: u64,
    /// Events of the current slot, sorted descending; pop from the end.
    batch: Vec<Entry<E>>,
    /// Near-future slots, indexed by absolute slot & `WHEEL_MASK`.
    ring: Vec<Vec<Entry<E>>>,
    /// Occupancy bitmap over `ring` (one bit per slot).
    occupied: [u64; OCC_WORDS],
    /// Far-future tier: small keys in a heap, payloads in the slab.
    far: BinaryHeap<FarKey>,
    /// Slab of far-event payloads; `None` entries are free.
    slab: Vec<Option<E>>,
    /// Free-list of slab indices, recycled to kill per-push allocation.
    free: Vec<u32>,
    len: usize,
}

impl<E> Wheel<E> {
    fn new(cap: usize) -> Self {
        Wheel {
            cur_slot: 0,
            batch: Vec::new(),
            ring: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; OCC_WORDS],
            far: BinaryHeap::with_capacity(cap),
            slab: Vec::with_capacity(cap),
            free: Vec::new(),
            len: 0,
        }
    }

    fn push(&mut self, time: Cycles, seq: u64, event: E) {
        self.len += 1;
        let slot = time >> SLOT_BITS;
        if slot <= self.cur_slot {
            // Current (or past) slot: merge into the sorted batch. The
            // batch is descending, so find the first entry not greater
            // than the new key and insert before it.
            let entry = Entry { time, seq, event };
            let pos = self
                .batch
                .partition_point(|e| (e.time, e.seq) > (entry.time, entry.seq));
            self.batch.insert(pos, entry);
        } else if slot < self.cur_slot + WHEEL_SLOTS as u64 {
            let idx = (slot & WHEEL_MASK) as usize;
            self.ring[idx].push(Entry { time, seq, event });
            self.occupied[idx / 64] |= 1 << (idx % 64);
        } else {
            let idx = if let Some(i) = self.free.pop() {
                self.slab[i as usize] = Some(event);
                i
            } else {
                let i = u32::try_from(self.slab.len()).expect("far slab exceeds u32 range");
                self.slab.push(Some(event));
                i
            };
            self.far.push(FarKey { time, seq, idx });
        }
    }

    /// First occupied ring slot with absolute index in
    /// `[start, cur_slot + WHEEL_SLOTS)`, scanning the bitmap a word at a
    /// time.
    fn next_occupied(&self, start: u64) -> Option<u64> {
        let limit = self.cur_slot + WHEEL_SLOTS as u64;
        let mut abs = start;
        while abs < limit {
            let idx = (abs & WHEEL_MASK) as usize;
            let word = self.occupied[idx / 64] >> (idx % 64);
            if word != 0 {
                let cand = abs + u64::from(word.trailing_zeros());
                return (cand < limit).then_some(cand);
            }
            abs += 64 - (idx % 64) as u64;
        }
        None
    }

    /// Refills `batch` from the earliest non-empty tier. Called only when
    /// `batch` is empty and `len > 0`.
    fn advance(&mut self) {
        debug_assert!(self.batch.is_empty());
        let ring_slot = self.next_occupied(self.cur_slot + 1);
        let far_slot = self.far.peek().map(|k| k.time >> SLOT_BITS);
        let target = match (ring_slot, far_slot) {
            (Some(r), Some(f)) => r.min(f),
            (Some(r), None) => r,
            (None, Some(f)) => f,
            (None, None) => unreachable!("advance called on empty wheel"),
        };
        self.cur_slot = target;
        if ring_slot == Some(target) {
            let idx = (target & WHEEL_MASK) as usize;
            std::mem::swap(&mut self.batch, &mut self.ring[idx]);
            self.occupied[idx / 64] &= !(1 << (idx % 64));
        }
        // Drain every far event that belongs to the new current slot so
        // the batch invariant (all pending events of cur_slot) holds.
        while let Some(k) = self.far.peek() {
            if k.time >> SLOT_BITS != target {
                break;
            }
            let k = self.far.pop().expect("peeked entry vanished");
            let event = self.slab[k.idx as usize]
                .take()
                .expect("far slab slot empty");
            self.free.push(k.idx);
            self.batch.push(Entry {
                time: k.time,
                seq: k.seq,
                event,
            });
        }
        // Descending order: the minimum (time, seq) sits at the end.
        self.batch
            .sort_unstable_by_key(|e| core::cmp::Reverse((e.time, e.seq)));
    }

    fn pop(&mut self) -> Option<Entry<E>> {
        if self.len == 0 {
            return None;
        }
        if self.batch.is_empty() {
            self.advance();
        }
        self.len -= 1;
        self.batch.pop()
    }

    fn peek_time(&mut self) -> Option<Cycles> {
        if self.len == 0 {
            return None;
        }
        if self.batch.is_empty() {
            self.advance();
        }
        self.batch.last().map(|e| e.time)
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the default (wheel) scheduler.
    pub fn new() -> Self {
        Self::with_scheduler(SchedulerKind::default(), 0)
    }

    /// Creates an empty queue with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self::with_scheduler(SchedulerKind::default(), cap)
    }

    /// Creates an empty queue with an explicit backend.
    pub fn with_scheduler(kind: SchedulerKind, cap: usize) -> Self {
        let backend = match kind {
            SchedulerKind::Wheel => Backend::Wheel(Box::new(Wheel::new(cap))),
            SchedulerKind::Heap => Backend::Heap(BinaryHeap::with_capacity(cap)),
        };
        EventQueue {
            backend,
            seq: 0,
            popped: 0,
            trace: None,
        }
    }

    /// Which backend this queue runs on.
    pub fn scheduler(&self) -> SchedulerKind {
        match self.backend {
            Backend::Heap(_) => SchedulerKind::Heap,
            Backend::Wheel(_) => SchedulerKind::Wheel,
        }
    }

    /// Counts every delivered event under the label `label(&event)`
    /// returns, feeding the tracer's dispatch-mix table.
    pub fn set_tracer(&mut self, tracer: Tracer, label: fn(&E) -> &'static str) {
        self.trace = Some((tracer, label));
    }

    /// Schedules `event` at absolute time `time`.
    pub fn push(&mut self, time: Cycles, event: E) {
        let seq = self.seq;
        self.seq += 1;
        match &mut self.backend {
            Backend::Heap(heap) => heap.push(Entry { time, seq, event }),
            Backend::Wheel(wheel) => wheel.push(time, seq, event),
        }
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(Cycles, E)> {
        let e = match &mut self.backend {
            Backend::Heap(heap) => heap.pop()?,
            Backend::Wheel(wheel) => wheel.pop()?,
        };
        self.popped += 1;
        if let Some((tracer, label)) = &self.trace {
            tracer.count_dispatch(label(&e.event));
        }
        Some((e.time, e.event))
    }

    /// Drains every pending event that shares the earliest timestamp into
    /// `out` (in FIFO order) and returns that timestamp, or `None` when
    /// empty. Events the caller schedules *at* the returned timestamp
    /// while dispatching the batch get later sequence numbers, so they
    /// form the next batch — exactly the order per-event `pop` yields.
    pub fn pop_batch(&mut self, out: &mut Vec<E>) -> Option<Cycles> {
        let (t, first) = self.pop()?;
        out.push(first);
        while self.peek_time() == Some(t) {
            let (_, e) = self.pop().expect("peeked event vanished");
            out.push(e);
        }
        Some(t)
    }

    /// Time of the earliest pending event without removing it.
    pub fn peek_time(&mut self) -> Option<Cycles> {
        match &mut self.backend {
            Backend::Heap(heap) => heap.peek().map(|e| e.time),
            Backend::Wheel(wheel) => wheel.peek_time(),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Heap(heap) => heap.len(),
            Backend::Wheel(wheel) => wheel.len,
        }
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events delivered so far (diagnostics).
    pub fn delivered(&self) -> u64 {
        self.popped
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both() -> [EventQueue<u32>; 2] {
        [
            EventQueue::with_scheduler(SchedulerKind::Wheel, 0),
            EventQueue::with_scheduler(SchedulerKind::Heap, 0),
        ]
    }

    #[test]
    fn orders_by_time() {
        for mut q in both() {
            q.push(5, 5u32);
            q.push(1, 1);
            q.push(3, 3);
            let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            assert_eq!(order, vec![1, 3, 5]);
        }
    }

    #[test]
    fn fifo_on_equal_time() {
        for mut q in both() {
            for i in 0..100u32 {
                q.push(42, i);
            }
            let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            assert_eq!(order, (0..100).collect::<Vec<_>>());
        }
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        for kind in [SchedulerKind::Wheel, SchedulerKind::Heap] {
            let mut q = EventQueue::with_scheduler(kind, 0);
            q.push(10, "a");
            q.push(30, "c");
            assert_eq!(q.pop(), Some((10, "a")));
            q.push(20, "b");
            assert_eq!(q.pop(), Some((20, "b")));
            assert_eq!(q.pop(), Some((30, "c")));
        }
    }

    #[test]
    fn far_future_events_cascade_back() {
        // Far beyond the wheel horizon, with slab recycling in between.
        let horizon = (WHEEL_SLOTS as u64) << SLOT_BITS;
        for mut q in both() {
            q.push(3 * horizon, 3u32);
            q.push(1, 1);
            q.push(7 * horizon, 7);
            q.push(horizon + 5, 2);
            assert_eq!(q.pop(), Some((1, 1)));
            assert_eq!(q.pop(), Some((horizon + 5, 2)));
            // Push after draining part of the far tier: indices recycle.
            q.push(5 * horizon, 5);
            assert_eq!(q.pop(), Some((3 * horizon, 3)));
            assert_eq!(q.pop(), Some((5 * horizon, 5)));
            assert_eq!(q.pop(), Some((7 * horizon, 7)));
            assert_eq!(q.pop(), None);
        }
    }

    #[test]
    fn same_slot_mixed_tiers_keep_fifo() {
        // Events in one slot arriving via ring, far tier and late pushes
        // must still come out in (time, seq) order.
        let t = ((WHEEL_SLOTS as u64) + 3) << SLOT_BITS;
        for mut q in both() {
            q.push(t + 2, 20u32); // far at creation time
            q.push(t + 1, 10);
            q.push(t + 2, 21);
            q.push(0, 0);
            assert_eq!(q.pop(), Some((0, 0)));
            // Now cur advances into range; same-slot push lands in batch.
            assert_eq!(q.pop(), Some((t + 1, 10)));
            q.push(t + 2, 22);
            assert_eq!(q.pop(), Some((t + 2, 20)));
            assert_eq!(q.pop(), Some((t + 2, 21)));
            assert_eq!(q.pop(), Some((t + 2, 22)));
        }
    }

    #[test]
    fn pop_batch_groups_equal_times() {
        for mut q in both() {
            q.push(10, 1u32);
            q.push(10, 2);
            q.push(20, 3);
            q.push(10, 4);
            let mut out = Vec::new();
            assert_eq!(q.pop_batch(&mut out), Some(10));
            assert_eq!(out, vec![1, 2, 4]);
            out.clear();
            assert_eq!(q.pop_batch(&mut out), Some(20));
            assert_eq!(out, vec![3]);
            out.clear();
            assert_eq!(q.pop_batch(&mut out), None);
            assert_eq!(q.delivered(), 4);
        }
    }

    #[test]
    fn dispatch_labels_reach_the_tracer() {
        let mut q = EventQueue::new();
        let t = Tracer::enabled(1, 16);
        q.set_tracer(t.clone(), |e: &u32| {
            if (*e).is_multiple_of(2) {
                "even"
            } else {
                "odd"
            }
        });
        for i in 0..5u32 {
            q.push(i as Cycles, i);
        }
        while q.pop().is_some() {}
        let counts = t.dispatch_counts();
        assert_eq!(counts, vec![("even", 3), ("odd", 2)]);
    }

    #[test]
    fn counters_track_len_and_delivered() {
        for mut q in both() {
            assert!(q.is_empty());
            q.push(1, 1);
            q.push(2, 2);
            assert_eq!(q.len(), 2);
            assert_eq!(q.peek_time(), Some(1));
            q.pop();
            assert_eq!(q.delivered(), 1);
            assert_eq!(q.len(), 1);
        }
    }
}
