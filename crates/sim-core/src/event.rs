//! Deterministic event queue.
//!
//! The simulation is driven by a single priority queue of timestamped
//! events. Two events with the same timestamp are delivered in the order
//! they were pushed (FIFO tie-breaking via a monotonically increasing
//! sequence number), which makes every run bit-for-bit reproducible for a
//! given seed.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use sim_trace::Tracer;

use crate::time::Cycles;

/// A dispatch-count hook: the tracer plus the event-labeling function.
type DispatchTrace<E> = (Tracer, fn(&E) -> &'static str);

/// An event queue ordered by `(time, insertion order)`: equal-time
/// events dispatch in the order they were scheduled.
///
/// # Example
///
/// ```
/// # use sim_core::event::EventQueue;
/// let mut q = EventQueue::new();
/// q.push(20, 'b');
/// q.push(10, 'a');
/// q.push(20, 'c');
/// assert_eq!(q.pop(), Some((10, 'a')));
/// assert_eq!(q.pop(), Some((20, 'b')));
/// assert_eq!(q.pop(), Some((20, 'c')));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    popped: u64,
    trace: Option<DispatchTrace<E>>,
}

#[derive(Debug)]
struct Entry<E> {
    time: Cycles,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq)
        // pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            popped: 0,
            trace: None,
        }
    }

    /// Creates an empty queue with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            seq: 0,
            popped: 0,
            trace: None,
        }
    }

    /// Counts every delivered event under the label `label(&event)`
    /// returns, feeding the tracer's dispatch-mix table.
    pub fn set_tracer(&mut self, tracer: Tracer, label: fn(&E) -> &'static str) {
        self.trace = Some((tracer, label));
    }

    /// Schedules `event` at absolute time `time`.
    pub fn push(&mut self, time: Cycles, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(Cycles, E)> {
        let e = self.heap.pop()?;
        self.popped += 1;
        if let Some((tracer, label)) = &self.trace {
            tracer.count_dispatch(label(&e.event));
        }
        Some((e.time, e.event))
    }

    /// Time of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<Cycles> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events delivered so far (diagnostics).
    pub fn delivered(&self) -> u64 {
        self.popped
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(5, 5u32);
        q.push(1, 1);
        q.push(3, 3);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn fifo_on_equal_time() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.push(42, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(10, "a");
        q.push(30, "c");
        assert_eq!(q.pop(), Some((10, "a")));
        q.push(20, "b");
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
    }

    #[test]
    fn dispatch_labels_reach_the_tracer() {
        let mut q = EventQueue::new();
        let t = Tracer::enabled(1, 16);
        q.set_tracer(t.clone(), |e: &u32| {
            if (*e).is_multiple_of(2) {
                "even"
            } else {
                "odd"
            }
        });
        for i in 0..5u32 {
            q.push(i as Cycles, i);
        }
        while q.pop().is_some() {}
        let counts = t.dispatch_counts();
        assert_eq!(counts, vec![("even", 3), ("odd", 2)]);
    }

    #[test]
    fn counters_track_len_and_delivered() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(1, ());
        q.push(2, ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(1));
        q.pop();
        assert_eq!(q.delivered(), 1);
        assert_eq!(q.len(), 1);
    }
}
