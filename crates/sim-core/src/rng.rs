//! Deterministic random number generation for the simulation.
//!
//! Every stochastic decision in the simulator (workload inter-arrivals,
//! RSS spreading randomness, capacity-miss draws) flows through a single
//! [`SimRng`] seeded from the experiment configuration, so runs are
//! exactly reproducible.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Seeded deterministic RNG used throughout the simulation.
///
/// # Example
///
/// ```
/// # use sim_core::rng::SimRng;
/// let mut a = SimRng::seed(7);
/// let mut b = SimRng::seed(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Next uniformly distributed 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.inner.gen_range(0..bound)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.gen::<f64>() < p
        }
    }

    /// Exponentially distributed value with the given mean.
    ///
    /// Used for Poisson inter-arrival times in open-loop workloads.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        -mean * u.ln()
    }

    /// Derives an independent child RNG (e.g. one per client slot).
    ///
    /// The child depends on how many values the parent has already
    /// produced, so *call order matters*. Use [`SimRng::stream`] when
    /// siblings must be derivable independently of one another (the
    /// parallel lane engine forks per-lane streams this way).
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed(self.next_u64())
    }

    /// Derives stream `id` of the family rooted at `seed`, *without*
    /// consuming any RNG state: the same `(seed, id)` pair always
    /// yields the same stream, no matter how many sibling streams were
    /// created before it or in what order.
    ///
    /// This is what makes parallel lane execution reproducible — lane
    /// `i` draws from `stream(seed, i)` whether it starts first, last,
    /// or on another thread entirely. The seed material is mixed with a
    /// splitmix64 finalizer so adjacent ids land on uncorrelated
    /// streams.
    pub fn stream(seed: u64, id: u64) -> SimRng {
        let mut z = seed
            ^ id.wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(0x6a09_e667_f3bc_c909);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        SimRng::seed(z ^ (z >> 31))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SimRng::seed(42);
        let mut b = SimRng::seed(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed(1);
        let mut b = SimRng::seed(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::seed(3);
        for _ in 0..1_000 {
            assert!(r.below(10) < 10);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed(4);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn exponential_mean_is_plausible() {
        let mut r = SimRng::seed(5);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.exponential(3.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 3.0).abs() < 0.15, "mean={mean}");
    }

    #[test]
    fn stream_is_order_independent() {
        // Deriving streams in any order (or skipping siblings entirely)
        // yields the same per-id sequences — unlike `fork`, which
        // advances the parent.
        let draws = |id: u64| -> Vec<u64> {
            let mut r = SimRng::stream(42, id);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let forward: Vec<Vec<u64>> = (0..4).map(draws).collect();
        let backward: Vec<Vec<u64>> = (0..4).rev().map(draws).collect();
        for id in 0..4usize {
            assert_eq!(forward[id], backward[3 - id], "stream {id} shifted");
        }
        assert_ne!(forward[0], forward[1], "streams must differ");
    }

    #[test]
    fn stream_families_are_seed_sensitive() {
        let mut a = SimRng::stream(1, 0);
        let mut b = SimRng::stream(2, 0);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_is_independent_stream() {
        let mut parent = SimRng::seed(6);
        let mut child = parent.fork();
        // The child stream should not replay the parent's next values.
        let p: Vec<u64> = (0..8).map(|_| parent.next_u64()).collect();
        let c: Vec<u64> = (0..8).map(|_| child.next_u64()).collect();
        assert_ne!(p, c);
    }
}
