//! Multicore CPU model with per-class cycle accounting.
//!
//! Each simulated kernel or application operation is costed as a
//! [`CostSheet`] — a breakdown of cycles over [`CycleClass`]es — and then
//! *executed* on a core. A core processes operations serially: an
//! operation scheduled while the core is busy starts when the core
//! becomes free. Per-class totals are what the experiment harnesses use
//! to regenerate the paper's profiling claims (spinlock cycle shares,
//! `inet_lookup_listener` share, per-core utilization).

use serde::{Deserialize, Serialize};

use crate::time::Cycles;

/// Identifies one CPU core of the simulated machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CoreId(pub u16);

impl CoreId {
    /// The core index as a `usize`, for table indexing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for CoreId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

/// Classification of where cycles are spent, mirroring the kernel
/// function groups the paper profiles with `perf`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(usize)]
pub enum CycleClass {
    /// Per-packet NET_RX softirq base processing.
    SoftirqBase,
    /// Listen-socket lookup (`inet_lookup_listener`).
    ListenLookup,
    /// Established-table lookup (`__inet_lookup_established`).
    EstLookup,
    /// Three-way-handshake and teardown segment processing.
    Handshake,
    /// Socket (TCB) allocation, table insertion/removal, freeing.
    TcbManage,
    /// Cycles wasted spinning on contended locks.
    LockSpin,
    /// Stall cycles from cache-coherence transfers and L3 misses.
    CacheMiss,
    /// VFS work: dentry/inode setup and teardown for socket FDs.
    Vfs,
    /// Syscall entry/exit and fixed syscall bodies.
    Syscall,
    /// Epoll event posting and draining.
    Epoll,
    /// TCP timer arm/disarm/fire.
    Timer,
    /// User-level application work (request parsing, response build).
    AppWork,
    /// Transmit-path processing (qdisc, driver, XPS).
    TxPath,
    /// Receive Flow Deliver software packet steering.
    Steering,
}

impl CycleClass {
    /// Number of classes; sizes the accounting arrays.
    pub const COUNT: usize = 14;

    /// All classes in declaration order.
    pub const ALL: [CycleClass; Self::COUNT] = [
        CycleClass::SoftirqBase,
        CycleClass::ListenLookup,
        CycleClass::EstLookup,
        CycleClass::Handshake,
        CycleClass::TcbManage,
        CycleClass::LockSpin,
        CycleClass::CacheMiss,
        CycleClass::Vfs,
        CycleClass::Syscall,
        CycleClass::Epoll,
        CycleClass::Timer,
        CycleClass::AppWork,
        CycleClass::TxPath,
        CycleClass::Steering,
    ];

    /// Stable short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            CycleClass::SoftirqBase => "softirq",
            CycleClass::ListenLookup => "listen_lookup",
            CycleClass::EstLookup => "est_lookup",
            CycleClass::Handshake => "handshake",
            CycleClass::TcbManage => "tcb_manage",
            CycleClass::LockSpin => "lock_spin",
            CycleClass::CacheMiss => "cache_miss",
            CycleClass::Vfs => "vfs",
            CycleClass::Syscall => "syscall",
            CycleClass::Epoll => "epoll",
            CycleClass::Timer => "timer",
            CycleClass::AppWork => "app_work",
            CycleClass::TxPath => "tx_path",
            CycleClass::Steering => "steering",
        }
    }
}

/// Accumulated cycle cost of one operation, broken down by class.
///
/// # Example
///
/// ```
/// # use sim_core::cpu::{CostSheet, CycleClass};
/// let mut sheet = CostSheet::new();
/// sheet.add(CycleClass::Syscall, 300);
/// sheet.add(CycleClass::AppWork, 700);
/// assert_eq!(sheet.total(), 1_000);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CostSheet {
    by_class: [Cycles; CycleClass::COUNT],
    total: Cycles,
}

impl CostSheet {
    /// Creates an empty (zero-cost) sheet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `cycles` of work classified as `class`.
    pub fn add(&mut self, class: CycleClass, cycles: Cycles) {
        self.by_class[class as usize] += cycles;
        self.total += cycles;
    }

    /// Total cycles across all classes.
    pub fn total(&self) -> Cycles {
        self.total
    }

    /// Cycles attributed to `class`.
    pub fn class(&self, class: CycleClass) -> Cycles {
        self.by_class[class as usize]
    }

    /// Resets the sheet to zero cost, keeping the allocation.
    pub fn clear(&mut self) {
        *self = Self::default();
    }
}

/// The time span an operation occupied a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// When the core began executing the operation.
    pub start: Cycles,
    /// When the core finished (and became free again).
    pub end: Cycles,
}

#[derive(Debug, Clone, Default)]
struct Core {
    busy_until: Cycles,
    busy_cycles: Cycles,
    window_busy: Cycles,
    by_class: [Cycles; CycleClass::COUNT],
}

/// The simulated multicore CPU.
#[derive(Debug)]
pub struct Cpu {
    cores: Vec<Core>,
}

impl Cpu {
    /// Creates a CPU with `n` cores, all idle at time 0.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > u16::MAX as usize`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a CPU needs at least one core");
        assert!(n <= u16::MAX as usize, "core count exceeds CoreId range");
        Cpu {
            cores: vec![Core::default(); n],
        }
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Executes an operation costed by `sheet` on `core`, not earlier
    /// than `earliest`. Returns the span actually occupied. The core's
    /// busy-until pointer advances; per-class totals accumulate.
    pub fn execute(&mut self, core: CoreId, earliest: Cycles, sheet: &CostSheet) -> Span {
        let c = &mut self.cores[core.index()];
        let start = earliest.max(c.busy_until);
        let end = start + sheet.total();
        c.busy_until = end;
        c.busy_cycles += sheet.total();
        c.window_busy += sheet.total();
        for i in 0..CycleClass::COUNT {
            c.by_class[i] += sheet.by_class[i];
        }
        Span { start, end }
    }

    /// The earliest time `core` can begin new work.
    pub fn free_at(&self, core: CoreId) -> Cycles {
        self.cores[core.index()].busy_until
    }

    /// Total busy cycles accumulated on `core` since construction.
    pub fn busy_cycles(&self, core: CoreId) -> Cycles {
        self.cores[core.index()].busy_cycles
    }

    /// Busy cycles on `core` since the last [`Cpu::take_window`] call.
    pub fn window_busy(&self, core: CoreId) -> Cycles {
        self.cores[core.index()].window_busy
    }

    /// Returns each core's busy cycles since the last call, then resets
    /// the window counters. Used for windowed utilization (Figure 3).
    pub fn take_window(&mut self) -> Vec<Cycles> {
        self.cores
            .iter_mut()
            .map(|c| std::mem::take(&mut c.window_busy))
            .collect()
    }

    /// Cycles attributed to `class` on `core`.
    pub fn class_cycles(&self, core: CoreId, class: CycleClass) -> Cycles {
        self.cores[core.index()].by_class[class as usize]
    }

    /// Cycles attributed to `class`, summed over all cores.
    pub fn class_cycles_total(&self, class: CycleClass) -> Cycles {
        self.cores.iter().map(|c| c.by_class[class as usize]).sum()
    }

    /// Total busy cycles summed over all cores.
    pub fn busy_cycles_total(&self) -> Cycles {
        self.cores.iter().map(|c| c.busy_cycles).sum()
    }

    /// Per-core utilization over `[window_start, now]` as fractions,
    /// using the lifetime busy counters (callers must snapshot).
    pub fn utilization(&self, elapsed: Cycles) -> Vec<f64> {
        self.cores
            .iter()
            .map(|c| {
                if elapsed == 0 {
                    0.0
                } else {
                    c.busy_cycles as f64 / elapsed as f64
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sheet(cycles: Cycles) -> CostSheet {
        let mut s = CostSheet::new();
        s.add(CycleClass::AppWork, cycles);
        s
    }

    #[test]
    fn back_to_back_operations_queue() {
        let mut cpu = Cpu::new(2);
        let a = cpu.execute(CoreId(0), 0, &sheet(100));
        assert_eq!(a, Span { start: 0, end: 100 });
        // Scheduled at t=50 but core 0 busy until 100.
        let b = cpu.execute(CoreId(0), 50, &sheet(100));
        assert_eq!(
            b,
            Span {
                start: 100,
                end: 200
            }
        );
        // Other core is unaffected.
        let c = cpu.execute(CoreId(1), 50, &sheet(100));
        assert_eq!(
            c,
            Span {
                start: 50,
                end: 150
            }
        );
    }

    #[test]
    fn idle_gap_respected() {
        let mut cpu = Cpu::new(1);
        cpu.execute(CoreId(0), 0, &sheet(10));
        let b = cpu.execute(CoreId(0), 1_000, &sheet(10));
        assert_eq!(b.start, 1_000);
        assert_eq!(cpu.busy_cycles(CoreId(0)), 20);
    }

    #[test]
    fn class_accounting_sums() {
        let mut cpu = Cpu::new(1);
        let mut s = CostSheet::new();
        s.add(CycleClass::Vfs, 30);
        s.add(CycleClass::LockSpin, 70);
        cpu.execute(CoreId(0), 0, &s);
        cpu.execute(CoreId(0), 0, &s);
        assert_eq!(cpu.class_cycles(CoreId(0), CycleClass::Vfs), 60);
        assert_eq!(cpu.class_cycles_total(CycleClass::LockSpin), 140);
        assert_eq!(cpu.busy_cycles_total(), 200);
    }

    #[test]
    fn window_counters_reset() {
        let mut cpu = Cpu::new(2);
        cpu.execute(CoreId(0), 0, &sheet(100));
        cpu.execute(CoreId(1), 0, &sheet(40));
        assert_eq!(cpu.take_window(), vec![100, 40]);
        assert_eq!(cpu.take_window(), vec![0, 0]);
        // Lifetime counters are unaffected by windows.
        assert_eq!(cpu.busy_cycles(CoreId(0)), 100);
    }

    #[test]
    fn utilization_fractions() {
        let mut cpu = Cpu::new(2);
        cpu.execute(CoreId(0), 0, &sheet(500));
        let u = cpu.utilization(1_000);
        assert!((u[0] - 0.5).abs() < 1e-12);
        assert_eq!(u[1], 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        let _ = Cpu::new(0);
    }

    #[test]
    fn cost_sheet_clear() {
        let mut s = sheet(10);
        s.clear();
        assert_eq!(s.total(), 0);
        assert_eq!(s.class(CycleClass::AppWork), 0);
    }

    #[test]
    fn class_names_are_unique() {
        let mut names: Vec<&str> = CycleClass::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), CycleClass::COUNT);
    }
}
