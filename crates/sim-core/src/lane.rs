//! Conservative parallel lane execution for the discrete-event engine.
//!
//! A *lane* is an independent sub-simulation owning a slice of the
//! modeled machine (its own event queue, its own per-core state).
//! Lanes only interact through explicit boundary messages — packets
//! crossing the simulated network — and the network gives us
//! *lookahead*: a message emitted at virtual time `t` cannot take
//! effect before `t + latency`. That is the classic conservative-PDES
//! (null-message) argument: every lane may safely advance `horizon ≤
//! latency` cycles past the last synchronization point without waiting
//! to hear from its peers.
//!
//! Execution is windowed: all lanes pump `[T, T + horizon)`, exchange
//! the boundary messages generated in that window (an empty vector is
//! the null message), and advance to the next window. The exchange
//! doubles as the barrier — a lane starts window `n + 1` only after it
//! has received window `n` traffic from every peer.
//!
//! Two executors run the *identical* protocol:
//!
//! * [`run_lanes_serial`] — one thread, lanes pumped in index order.
//! * [`run_lanes_threads`] — one host thread per lane, `std::sync::mpsc`
//!   channels carrying the per-window message vectors.
//!
//! Because message delivery is ordered (by source lane, then emission
//! order) and each lane is internally deterministic, both executors
//! produce bit-identical results; the differential tests in the
//! top-level crate hold them to that.

use std::sync::mpsc::{channel, Receiver, Sender};

use crate::time::Cycles;

/// `wires[a][b]` — one channel endpoint per ordered lane pair (the
/// diagonal stays `None`).
type Wires<M> = Vec<Vec<Option<M>>>;

/// One lane of a partitioned simulation.
///
/// Implementors own an event queue plus whatever model state the lane
/// covers; the engine only ever drives the three hooks below, once per
/// window.
pub trait LaneSim {
    /// Boundary message crossing between lanes (must be plain data —
    /// it is sent over channels in the threaded executor).
    type Msg: Send;

    /// Processes every local event with timestamp `< until`.
    fn pump(&mut self, until: Cycles);

    /// Moves the boundary messages generated since the last call into
    /// `buckets` (one bucket per destination lane), preserving emission
    /// order. `buckets.len()` equals the lane count; a lane's own
    /// bucket stays empty.
    fn drain_outbox(&mut self, buckets: &mut [Vec<Self::Msg>]);

    /// Delivers one window's messages from lane `src`. `not_before` is
    /// the start of the next unprocessed window: with a valid horizon
    /// every message already takes effect at or after it, so a clamp to
    /// `not_before` is a no-op — and with a deliberately violated
    /// horizon the clamp turns causality errors into a deterministic
    /// (and detectable) divergence instead of time travel.
    fn deliver(&mut self, src: u16, msgs: Vec<Self::Msg>, not_before: Cycles);
}

/// The barrier-window schedule shared by both executors.
#[derive(Debug, Clone, Copy)]
pub struct LaneSchedule {
    /// Window length in cycles — must not exceed the minimum cross-lane
    /// message latency (the lookahead).
    pub horizon: Cycles,
    /// Virtual end time: no event at or after `end` is processed.
    pub end: Cycles,
}

impl LaneSchedule {
    /// A schedule covering `[0, end)` in `horizon`-sized windows.
    ///
    /// # Panics
    ///
    /// Panics if `horizon == 0`.
    pub fn new(horizon: Cycles, end: Cycles) -> LaneSchedule {
        assert!(horizon > 0, "lane horizon must be positive");
        LaneSchedule { horizon, end }
    }
}

/// Runs the windowed protocol over `lanes` on the current thread.
///
/// This is the serial oracle the threaded executor is differentially
/// tested against: same windows, same exchange order, no concurrency.
pub fn run_lanes_serial<S: LaneSim>(lanes: &mut [S], sched: LaneSchedule) {
    let n = lanes.len();
    let mut t: Cycles = 0;
    while t < sched.end {
        let w_end = sched.end.min(t.saturating_add(sched.horizon));
        let mut all: Vec<Vec<Vec<S::Msg>>> = Vec::with_capacity(n);
        for lane in lanes.iter_mut() {
            lane.pump(w_end);
            let mut buckets: Vec<Vec<S::Msg>> = (0..n).map(|_| Vec::new()).collect();
            lane.drain_outbox(&mut buckets);
            all.push(buckets);
        }
        for (dst, lane) in lanes.iter_mut().enumerate() {
            for (src, buckets) in all.iter_mut().enumerate() {
                if src == dst {
                    continue;
                }
                lane.deliver(src as u16, std::mem::take(&mut buckets[dst]), w_end);
            }
        }
        t = w_end;
    }
}

/// Runs the windowed protocol with one host thread per lane.
///
/// Lanes are *built inside their threads* (simulations typically hold
/// `!Send` state), so the caller passes one builder per lane plus a
/// `finish` function that reduces the completed lane to a `Send`
/// outcome. Each pair of lanes is wired with a dedicated channel; the
/// per-window receive from every peer is the synchronization barrier,
/// and an empty message vector is the null message that lets a quiet
/// lane's neighbors advance.
///
/// Returns the outcomes in lane-index order.
///
/// # Panics
///
/// Panics if a lane thread panics or a channel is severed (both
/// indicate a bug in the lane implementation, not recoverable state).
pub fn run_lanes_threads<S, B, O, F>(builders: Vec<B>, sched: LaneSchedule, finish: F) -> Vec<O>
where
    S: LaneSim,
    B: FnOnce() -> S + Send,
    O: Send,
    F: Fn(S) -> O + Sync,
{
    let n = builders.len();
    // txs[src][dst] / rxs[dst][src]: a channel per ordered lane pair.
    let mut txs: Wires<Sender<Vec<S::Msg>>> =
        (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
    let mut rxs: Wires<Receiver<Vec<S::Msg>>> =
        (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
    for src in 0..n {
        for dst in 0..n {
            if src == dst {
                continue;
            }
            let (tx, rx) = channel();
            txs[src][dst] = Some(tx);
            rxs[dst][src] = Some(rx);
        }
    }

    let finish = &finish;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        for (i, build) in builders.into_iter().enumerate() {
            let my_txs = std::mem::take(&mut txs[i]);
            let my_rxs = std::mem::take(&mut rxs[i]);
            handles.push(scope.spawn(move || {
                let mut lane = build();
                let mut t: Cycles = 0;
                while t < sched.end {
                    let w_end = sched.end.min(t.saturating_add(sched.horizon));
                    lane.pump(w_end);
                    let mut buckets: Vec<Vec<S::Msg>> = (0..n).map(|_| Vec::new()).collect();
                    lane.drain_outbox(&mut buckets);
                    for (dst, msgs) in buckets.into_iter().enumerate() {
                        if let Some(tx) = &my_txs[dst] {
                            tx.send(msgs).expect("peer lane hung up mid-run");
                        }
                    }
                    for (src, rx) in my_rxs.iter().enumerate() {
                        if let Some(rx) = rx {
                            let msgs = rx.recv().expect("peer lane hung up mid-run");
                            lane.deliver(src as u16, msgs, w_end);
                        }
                    }
                    t = w_end;
                }
                finish(lane)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("lane thread panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy lane: counts ticks, forwards a token to the next lane with
    /// +`latency` cycles, and records every (time, value) it sees.
    struct TokenLane {
        id: u16,
        lanes: u16,
        latency: Cycles,
        queue: Vec<(Cycles, u64)>,
        seen: Vec<(Cycles, u64)>,
        outbox: Vec<(u16, (Cycles, u64))>,
        now: Cycles,
    }

    impl TokenLane {
        fn new(id: u16, lanes: u16, latency: Cycles) -> TokenLane {
            let queue = if id == 0 { vec![(0, 0)] } else { Vec::new() };
            TokenLane {
                id,
                lanes,
                latency,
                queue,
                seen: Vec::new(),
                outbox: Vec::new(),
                now: 0,
            }
        }
    }

    impl LaneSim for TokenLane {
        type Msg = (Cycles, u64);

        fn pump(&mut self, until: Cycles) {
            self.queue.sort_unstable();
            while let Some(&(t, v)) = self.queue.first() {
                if t >= until {
                    break;
                }
                self.queue.remove(0);
                self.now = t;
                self.seen.push((t, v));
                let next = (self.id + 1) % self.lanes;
                let msg = (t + self.latency, v + 1);
                if next == self.id {
                    self.queue.push(msg);
                } else {
                    self.outbox.push((next, msg));
                }
            }
        }

        fn drain_outbox(&mut self, buckets: &mut [Vec<Self::Msg>]) {
            for (dst, msg) in self.outbox.drain(..) {
                buckets[usize::from(dst)].push(msg);
            }
        }

        fn deliver(&mut self, _src: u16, msgs: Vec<Self::Msg>, not_before: Cycles) {
            for (t, v) in msgs {
                assert!(t >= not_before, "causality violated: {t} < {not_before}");
                self.queue.push((t, v));
            }
        }
    }

    fn outcome_serial(lanes_n: u16, latency: Cycles, end: Cycles) -> Vec<Vec<(Cycles, u64)>> {
        let mut lanes: Vec<TokenLane> = (0..lanes_n)
            .map(|i| TokenLane::new(i, lanes_n, latency))
            .collect();
        run_lanes_serial(&mut lanes, LaneSchedule::new(latency, end));
        lanes.into_iter().map(|l| l.seen).collect()
    }

    fn outcome_threads(lanes_n: u16, latency: Cycles, end: Cycles) -> Vec<Vec<(Cycles, u64)>> {
        let builders: Vec<_> = (0..lanes_n)
            .map(|i| move || TokenLane::new(i, lanes_n, latency))
            .collect();
        run_lanes_threads(builders, LaneSchedule::new(latency, end), |l| l.seen)
    }

    #[test]
    fn token_ring_advances_across_lanes() {
        let seen = outcome_serial(3, 10, 100);
        // The token visits lane 0 at t=0, lane 1 at t=10, ... 10 hops.
        let total: usize = seen.iter().map(Vec::len).sum();
        assert_eq!(total, 10);
        assert_eq!(seen[1][0], (10, 1));
        assert_eq!(seen[2][0], (20, 2));
    }

    #[test]
    fn serial_and_threaded_executors_agree() {
        for lanes_n in [1u16, 2, 3, 5] {
            let a = outcome_serial(lanes_n, 7, 200);
            let b = outcome_threads(lanes_n, 7, 200);
            assert_eq!(a, b, "executors diverged at {lanes_n} lanes");
        }
    }

    #[test]
    fn shorter_valid_horizons_preserve_causality() {
        // Any horizon ≤ latency is conservative; the TokenLane asserts
        // causality on every delivery.
        let full = outcome_serial(4, 12, 240);
        let mut lanes: Vec<TokenLane> = (0..4).map(|i| TokenLane::new(i, 4, 12)).collect();
        run_lanes_serial(&mut lanes, LaneSchedule::new(5, 240));
        let short: Vec<_> = lanes.into_iter().map(|l| l.seen).collect();
        assert_eq!(full, short, "token ring is horizon-invariant");
    }

    #[test]
    #[should_panic(expected = "lane horizon must be positive")]
    fn zero_horizon_is_rejected() {
        LaneSchedule::new(0, 100);
    }
}
