//! Simulated time, measured in CPU cycles.
//!
//! All latencies and costs in the simulation are expressed in cycles of
//! the evaluation machine's cores. The paper's testbed uses two 12-core
//! Intel Xeon E5-2697 v2 processors, whose nominal frequency is 2.7 GHz;
//! [`CYCLES_PER_SEC`] encodes that.

/// A point in simulated time or a duration, in CPU cycles.
pub type Cycles = u64;

/// Nominal core frequency of the simulated machine (2.7 GHz).
pub const CYCLES_PER_SEC: Cycles = 2_700_000_000;

/// One simulated microsecond, in cycles.
pub const CYCLES_PER_USEC: Cycles = CYCLES_PER_SEC / 1_000_000;

/// One simulated millisecond, in cycles.
pub const CYCLES_PER_MSEC: Cycles = CYCLES_PER_SEC / 1_000;

/// Converts a duration in (possibly fractional) seconds to cycles.
///
/// # Example
///
/// ```
/// # use sim_core::time::{secs_to_cycles, CYCLES_PER_SEC};
/// assert_eq!(secs_to_cycles(2.0), 2 * CYCLES_PER_SEC);
/// ```
pub fn secs_to_cycles(secs: f64) -> Cycles {
    (secs * CYCLES_PER_SEC as f64).round() as Cycles
}

/// Converts a duration in cycles to seconds.
///
/// # Example
///
/// ```
/// # use sim_core::time::{cycles_to_secs, CYCLES_PER_SEC};
/// assert!((cycles_to_secs(CYCLES_PER_SEC / 2) - 0.5).abs() < 1e-12);
/// ```
pub fn cycles_to_secs(cycles: Cycles) -> f64 {
    cycles as f64 / CYCLES_PER_SEC as f64
}

/// Converts microseconds to cycles.
pub fn usecs_to_cycles(usecs: f64) -> Cycles {
    (usecs * CYCLES_PER_USEC as f64).round() as Cycles
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_round_trip() {
        for secs in [0.0, 0.001, 0.5, 1.0, 60.0] {
            let c = secs_to_cycles(secs);
            assert!((cycles_to_secs(c) - secs).abs() < 1e-9, "secs={secs}");
        }
    }

    #[test]
    fn usec_is_consistent_with_sec() {
        assert_eq!(usecs_to_cycles(1_000_000.0), secs_to_cycles(1.0));
    }

    #[test]
    fn frequency_matches_testbed() {
        // Guard against accidental recalibration: the rest of the cost
        // model is expressed against a 2.7 GHz core.
        assert_eq!(CYCLES_PER_SEC, 2_700_000_000);
        assert_eq!(CYCLES_PER_USEC, 2_700);
    }
}
