//! Discrete-event simulation engine for the Fastsocket reproduction.
//!
//! This crate provides the foundations every other simulation crate builds
//! on:
//!
//! * a cycle-granularity clock ([`Cycles`], [`time`]) modelled on the
//!   paper's evaluation machine (2.7 GHz Xeon E5-2697 v2),
//! * a deterministic [`event::EventQueue`] with stable FIFO tie-breaking,
//! * a multicore CPU model ([`cpu::Cpu`]) that accounts busy time per core
//!   and per kernel-function class, which is how the reproduction recovers
//!   the paper's `perf`-style figures (e.g. "`inet_lookup_listener`
//!   consumes 24.2% of per-core cycles"),
//! * a seeded deterministic RNG ([`rng::SimRng`]).
//!
//! # Example
//!
//! ```
//! use sim_core::{cpu::{Cpu, CoreId, CostSheet, CycleClass}, event::EventQueue};
//!
//! let mut cpu = Cpu::new(4);
//! let mut sheet = CostSheet::new();
//! sheet.add(CycleClass::AppWork, 1_000);
//! let span = cpu.execute(CoreId(0), 0, &sheet);
//! assert_eq!(span.end, 1_000);
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.push(span.end, "done");
//! assert_eq!(q.pop(), Some((1_000, "done")));
//! ```

pub mod cpu;
pub mod event;
pub mod lane;
pub mod rng;
pub mod time;

pub use cpu::{CoreId, CostSheet, Cpu, CycleClass};
pub use event::{EventQueue, SchedulerKind};
pub use lane::{run_lanes_serial, run_lanes_threads, LaneSchedule, LaneSim};
pub use rng::SimRng;
pub use time::{cycles_to_secs, secs_to_cycles, usecs_to_cycles, Cycles, CYCLES_PER_SEC};
