//! Cache-coherence and L3-miss model for the simulated multicore machine.
//!
//! The paper's connection-locality argument is a cache argument: when the
//! NET_RX softirq half and the application half of a connection run on
//! different cores, the connection's kernel objects (TCB, epoll entries,
//! timers) bounce between private caches, and the shared L3 miss rate
//! rises (Figure 5a). This crate models that at *object* granularity:
//!
//! * every shared kernel object is registered as a [`ObjId`] with a
//!   current **owner core** (the core whose private cache holds its
//!   lines);
//! * a same-core re-access is a hit, except for a capacity-miss
//!   probability that grows with the total live-object footprint versus
//!   the L3 size (this reproduces Fastsocket's mild sub-linearity at 24
//!   cores — more in-flight connections, more pressure);
//! * a cross-core access always pays a coherence-transfer penalty and
//!   counts as an L3 miss with a calibrated probability (dirty lines are
//!   often serviced cache-to-cache; clean evicted lines come from DRAM),
//!   and migrates ownership to the accessing core.
//!
//! The reported **L3 miss rate** is misses / tracked accesses, the same
//! ratio the paper reads from hardware counters.
//!
//! # Example
//!
//! ```
//! use sim_core::{CoreId, SimRng};
//! use sim_mem::{CacheCosts, CacheModel, ObjKind};
//!
//! let mut rng = SimRng::seed(1);
//! let mut cache = CacheModel::new(CacheCosts::default());
//! let tcb = cache.alloc(ObjKind::Tcb, CoreId(0));
//! let local = cache.access(tcb, CoreId(0), &mut rng);
//! let remote = cache.access(tcb, CoreId(5), &mut rng);
//! assert!(remote.cost > local.cost);
//! assert!(remote.remote);
//! ```

use serde::{Deserialize, Serialize};
use sim_core::{CoreId, Cycles, SimRng};

/// Kinds of tracked kernel objects, for per-kind accounting and
/// footprint estimation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(usize)]
pub enum ObjKind {
    /// A TCP control block (socket).
    Tcb,
    /// A listen socket (global or local copy).
    ListenSock,
    /// A bucket head of a listen or established hash table.
    TableBucket,
    /// An epoll instance (ready list head and wait queue).
    Epoll,
    /// A per-core timer wheel base.
    TimerBase,
    /// A VFS dentry.
    Dentry,
    /// A VFS inode.
    Inode,
    /// Socket receive/transmit buffer pages.
    SockBuf,
    /// Per-process file-descriptor table.
    FdTable,
}

impl ObjKind {
    /// Number of kinds.
    pub const COUNT: usize = 9;

    /// All kinds in declaration order.
    pub const ALL: [ObjKind; Self::COUNT] = [
        ObjKind::Tcb,
        ObjKind::ListenSock,
        ObjKind::TableBucket,
        ObjKind::Epoll,
        ObjKind::TimerBase,
        ObjKind::Dentry,
        ObjKind::Inode,
        ObjKind::SockBuf,
        ObjKind::FdTable,
    ];

    /// Approximate resident footprint of one object, in bytes, used for
    /// L3 pressure estimation (Linux 2.6.32 struct sizes, rounded).
    pub fn footprint(self) -> u64 {
        match self {
            ObjKind::Tcb => 1_664,        // struct tcp_sock
            ObjKind::ListenSock => 1_664, // listen sockets are sockets
            ObjKind::TableBucket => 64,
            ObjKind::Epoll => 256,
            ObjKind::TimerBase => 512,
            ObjKind::Dentry => 192,
            ObjKind::Inode => 592,
            ObjKind::SockBuf => 4_096,
            ObjKind::FdTable => 1_024,
        }
    }

    /// Number of hot cache lines one access typically touches (a TCB
    /// access reads/writes state spread over several lines; a table
    /// bucket is a single line). Coherence and DRAM penalties scale
    /// with this.
    pub fn lines(self) -> u64 {
        match self {
            ObjKind::Tcb => 4,
            ObjKind::ListenSock => 1, // bucket-chain walk reads one line
            ObjKind::TableBucket => 1,
            ObjKind::Epoll => 2,
            ObjKind::TimerBase => 2,
            ObjKind::Dentry => 2,
            ObjKind::Inode => 2,
            ObjKind::SockBuf => 6,
            ObjKind::FdTable => 1,
        }
    }

    /// Stable short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            ObjKind::Tcb => "tcb",
            ObjKind::ListenSock => "listen_sock",
            ObjKind::TableBucket => "table_bucket",
            ObjKind::Epoll => "epoll",
            ObjKind::TimerBase => "timer_base",
            ObjKind::Dentry => "dentry",
            ObjKind::Inode => "inode",
            ObjKind::SockBuf => "sock_buf",
            ObjKind::FdTable => "fd_table",
        }
    }
}

/// Cycle costs and probabilities of the cache model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheCosts {
    /// Cost of a private-cache hit (charged on every tracked access).
    pub hit: Cycles,
    /// Extra cost of pulling lines from another core's cache.
    pub remote_transfer: Cycles,
    /// Extra cost of an L3/DRAM miss.
    pub dram: Cycles,
    /// Baseline capacity-miss probability for same-core re-accesses.
    pub capacity_miss_base: f64,
    /// Additional capacity-miss probability at 100% L3 footprint
    /// pressure (scales linearly, saturating at 150% pressure).
    pub capacity_miss_slope: f64,
    /// Probability that a cross-core access misses L3 and goes to DRAM
    /// (the rest are cache-to-cache transfers).
    pub remote_dram_p: f64,
    /// Shared L3 capacity in bytes (per socket; the testbed's E5-2697 v2
    /// has 30 MB per package).
    pub l3_bytes: u64,
}

impl Default for CacheCosts {
    fn default() -> Self {
        CacheCosts {
            hit: 6,
            remote_transfer: 420,
            dram: 580,
            capacity_miss_base: 0.042,
            capacity_miss_slope: 0.022,
            remote_dram_p: 0.30,
            l3_bytes: 30 * 1024 * 1024,
        }
    }
}

/// Handle to a tracked cache object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ObjId(u32);

impl ObjId {
    /// Raw slab-slot index. Combined with [`CacheModel::gen_of`] this
    /// forms a stable identity across slot recycling (used by the
    /// sim-check lockset detector to key per-object state).
    pub fn index(self) -> u32 {
        self.0
    }
}

/// Outcome of one tracked access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Cycles this access stalls the core.
    pub cost: Cycles,
    /// Whether the object was owned by a different core.
    pub remote: bool,
    /// Whether this access counted as an L3 miss (DRAM).
    pub l3_miss: bool,
}

#[derive(Debug, Clone, Copy)]
struct Obj {
    kind: ObjKind,
    owner: CoreId,
    live: bool,
    /// Allocation generation of this slot, bumped every time the slot
    /// is (re)used, so deferred consumers can tell recycled objects
    /// apart from the ones they first saw.
    gen: u64,
}

/// Per-kind and global access statistics.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Tracked accesses.
    pub accesses: u64,
    /// Accesses that found the object on another core.
    pub remote: u64,
    /// Accesses that went to DRAM.
    pub l3_misses: u64,
}

impl CacheStats {
    /// L3 miss rate = misses / accesses, in `[0, 1]`.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.l3_misses as f64 / self.accesses as f64
        }
    }

    /// Fraction of accesses that were cross-core.
    pub fn remote_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.remote as f64 / self.accesses as f64
        }
    }

    /// Folds `other`'s counters into `self`. Used when per-lane cache
    /// models are merged into one machine-wide report.
    pub fn merge(&mut self, other: &CacheStats) {
        self.accesses += other.accesses;
        self.remote += other.remote;
        self.l3_misses += other.l3_misses;
    }
}

/// The object-granularity cache-coherence model.
#[derive(Debug)]
pub struct CacheModel {
    objs: Vec<Obj>,
    free: Vec<u32>,
    costs: CacheCosts,
    footprint: u64,
    global: CacheStats,
    by_kind: [CacheStats; ObjKind::COUNT],
}

impl CacheModel {
    /// Creates an empty model with the given cost parameters.
    pub fn new(costs: CacheCosts) -> Self {
        CacheModel {
            objs: Vec::new(),
            free: Vec::new(),
            costs,
            footprint: 0,
            global: CacheStats::default(),
            by_kind: [CacheStats::default(); ObjKind::COUNT],
        }
    }

    /// Registers a new object homed on `core`.
    pub fn alloc(&mut self, kind: ObjKind, core: CoreId) -> ObjId {
        self.footprint += kind.footprint();
        if let Some(idx) = self.free.pop() {
            let slot = &mut self.objs[idx as usize];
            *slot = Obj {
                kind,
                owner: core,
                live: true,
                gen: slot.gen + 1,
            };
            ObjId(idx)
        } else {
            let idx = self.objs.len() as u32;
            self.objs.push(Obj {
                kind,
                owner: core,
                live: true,
                gen: 0,
            });
            ObjId(idx)
        }
    }

    /// Unregisters an object.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) on double free.
    pub fn free(&mut self, id: ObjId) {
        let obj = &mut self.objs[id.0 as usize];
        debug_assert!(obj.live, "double free of cache object {id:?}");
        obj.live = false;
        self.footprint -= obj.kind.footprint();
        self.free.push(id.0);
    }

    /// Performs a tracked access to `id` from `core`, migrating
    /// ownership to `core`.
    pub fn access(&mut self, id: ObjId, core: CoreId, rng: &mut SimRng) -> Access {
        let pressure = (self.footprint as f64 / self.costs.l3_bytes as f64).min(1.5);
        let obj = &mut self.objs[id.0 as usize];
        debug_assert!(obj.live, "access to freed cache object {id:?}");

        let remote = obj.owner != core;
        obj.owner = core;

        let lines = obj.kind.lines();
        let mut cost = self.costs.hit * lines;
        let l3_miss = if remote {
            cost += self.costs.remote_transfer * lines;
            rng.chance(self.costs.remote_dram_p)
        } else {
            let p = self.costs.capacity_miss_base + self.costs.capacity_miss_slope * pressure;
            rng.chance(p)
        };
        if l3_miss {
            cost += self.costs.dram * lines;
        }

        let g = &mut self.global;
        g.accesses += 1;
        g.remote += remote as u64;
        g.l3_misses += l3_miss as u64;
        let k = &mut self.by_kind[obj.kind as usize];
        k.accesses += 1;
        k.remote += remote as u64;
        k.l3_misses += l3_miss as u64;

        Access {
            cost,
            remote,
            l3_miss,
        }
    }

    /// Current owner core of an object (diagnostics and tests).
    pub fn owner(&self, id: ObjId) -> CoreId {
        self.objs[id.0 as usize].owner
    }

    /// Kind of a tracked object.
    pub fn kind_of(&self, id: ObjId) -> ObjKind {
        self.objs[id.0 as usize].kind
    }

    /// Allocation generation of an object's slot (see [`ObjId::index`]).
    pub fn gen_of(&self, id: ObjId) -> u64 {
        self.objs[id.0 as usize].gen
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> CacheStats {
        self.global
    }

    /// Statistics for one object kind.
    pub fn kind_stats(&self, kind: ObjKind) -> CacheStats {
        self.by_kind[kind as usize]
    }

    /// Current live footprint in bytes.
    pub fn footprint(&self) -> u64 {
        self.footprint
    }

    /// Resets statistics (e.g. after warmup), keeping objects.
    pub fn reset_stats(&mut self) {
        self.global = CacheStats::default();
        self.by_kind = [CacheStats::default(); ObjKind::COUNT];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> (CacheModel, SimRng) {
        (CacheModel::new(CacheCosts::default()), SimRng::seed(9))
    }

    #[test]
    fn local_access_is_cheap_remote_is_not() {
        let (mut m, mut rng) = model();
        let o = m.alloc(ObjKind::Tcb, CoreId(0));
        let local = m.access(o, CoreId(0), &mut rng);
        assert!(!local.remote);
        let remote = m.access(o, CoreId(1), &mut rng);
        assert!(remote.remote);
        assert!(remote.cost >= CacheCosts::default().remote_transfer);
    }

    #[test]
    fn ownership_migrates_on_access() {
        let (mut m, mut rng) = model();
        let o = m.alloc(ObjKind::Tcb, CoreId(0));
        m.access(o, CoreId(3), &mut rng);
        assert_eq!(m.owner(o), CoreId(3));
        // Re-access from the new owner is local again.
        let a = m.access(o, CoreId(3), &mut rng);
        assert!(!a.remote);
    }

    #[test]
    fn footprint_tracks_alloc_free() {
        let (mut m, _) = model();
        let a = m.alloc(ObjKind::Tcb, CoreId(0));
        let b = m.alloc(ObjKind::SockBuf, CoreId(0));
        assert_eq!(
            m.footprint(),
            ObjKind::Tcb.footprint() + ObjKind::SockBuf.footprint()
        );
        m.free(a);
        m.free(b);
        assert_eq!(m.footprint(), 0);
    }

    #[test]
    fn miss_rate_rises_with_remote_accesses() {
        let (mut m, mut rng) = model();
        let objs: Vec<ObjId> = (0..64).map(|_| m.alloc(ObjKind::Tcb, CoreId(0))).collect();
        // Phase 1: purely local traffic.
        for _ in 0..200 {
            for &o in &objs {
                m.access(o, CoreId(0), &mut rng);
            }
        }
        let local_rate = m.stats().miss_rate();
        m.reset_stats();
        // Phase 2: ping-pong between two cores.
        for round in 0..200 {
            let core = CoreId((round % 2) as u16);
            for &o in &objs {
                m.access(o, core, &mut rng);
            }
        }
        let pingpong_rate = m.stats().miss_rate();
        assert!(
            pingpong_rate > local_rate + 0.02,
            "local={local_rate:.3} pingpong={pingpong_rate:.3}"
        );
    }

    #[test]
    fn capacity_pressure_raises_local_miss_rate() {
        let costs = CacheCosts::default();
        let mut m = CacheModel::new(costs);
        let mut rng = SimRng::seed(11);
        let o = m.alloc(ObjKind::Tcb, CoreId(0));
        for _ in 0..40_000 {
            m.access(o, CoreId(0), &mut rng);
        }
        let low = m.stats().miss_rate();
        // Blow up the footprint past the L3 size.
        let ballast: Vec<ObjId> = (0..10_000)
            .map(|_| m.alloc(ObjKind::SockBuf, CoreId(1)))
            .collect();
        m.reset_stats();
        let mut rng2 = SimRng::seed(12);
        for _ in 0..40_000 {
            m.access(o, CoreId(0), &mut rng2);
        }
        let high = m.stats().miss_rate();
        assert!(high > low, "low={low:.4} high={high:.4}");
        for b in ballast {
            m.free(b);
        }
    }

    #[test]
    fn per_kind_stats_are_separate() {
        let (mut m, mut rng) = model();
        let t = m.alloc(ObjKind::Tcb, CoreId(0));
        let d = m.alloc(ObjKind::Dentry, CoreId(0));
        m.access(t, CoreId(0), &mut rng);
        m.access(t, CoreId(0), &mut rng);
        m.access(d, CoreId(0), &mut rng);
        assert_eq!(m.kind_stats(ObjKind::Tcb).accesses, 2);
        assert_eq!(m.kind_stats(ObjKind::Dentry).accesses, 1);
        assert_eq!(m.stats().accesses, 3);
    }

    #[test]
    fn slots_are_recycled() {
        let (mut m, _) = model();
        let a = m.alloc(ObjKind::Tcb, CoreId(0));
        m.free(a);
        let b = m.alloc(ObjKind::Epoll, CoreId(1));
        // Same backing slot reused, distinguishable by generation.
        assert_eq!(a.0, b.0);
        assert_eq!(a.index(), b.index());
        assert_eq!(m.owner(b), CoreId(1));
        assert_eq!(m.gen_of(b), 1);
        assert_eq!(m.kind_of(b), ObjKind::Epoll);
    }

    #[test]
    fn stats_rate_helpers() {
        let s = CacheStats {
            accesses: 100,
            remote: 25,
            l3_misses: 10,
        };
        assert!((s.miss_rate() - 0.10).abs() < 1e-12);
        assert!((s.remote_rate() - 0.25).abs() < 1e-12);
        assert_eq!(CacheStats::default().miss_rate(), 0.0);
    }
}
