//! Property tests for the wire formats: arbitrary packets round-trip
//! through real header bytes, and corruption never parses.

use proptest::prelude::*;
use sim_net::{FlowTuple, Packet, TcpFlags};
use std::net::Ipv4Addr;

fn arb_flow() -> impl Strategy<Value = FlowTuple> {
    (any::<u32>(), any::<u16>(), any::<u32>(), any::<u16>())
        .prop_map(|(s, sp, d, dp)| FlowTuple::new(Ipv4Addr::from(s), sp, Ipv4Addr::from(d), dp))
}

fn arb_packet() -> impl Strategy<Value = Packet> {
    (
        arb_flow(),
        any::<u32>(),
        any::<u32>(),
        any::<u8>(),
        0u16..4_000,
        any::<u16>(),
    )
        .prop_map(|(flow, seq, ack, flags, len, wnd)| Packet {
            flow,
            seq,
            ack,
            flags: TcpFlags(flags),
            payload_len: len,
            wnd,
        })
}

proptest! {
    #[test]
    fn wire_round_trip(pkt in arb_packet()) {
        let wire = pkt.to_wire();
        let parsed = Packet::parse(&wire).unwrap();
        prop_assert_eq!(parsed, pkt);
    }

    #[test]
    fn corrupted_wire_never_parses_silently(pkt in arb_packet(), byte in 0usize..40, bit in 0u8..8) {
        let mut wire = pkt.to_wire().to_vec();
        let idx = byte % wire.len();
        wire[idx] ^= 1 << bit;
        // Either the parse fails (checksum) or — if the flip hit a
        // pure-payload byte, which the checksum still covers — it must
        // still fail. Headers and payload are both checksummed, so any
        // single-bit flip is detected.
        prop_assert!(Packet::parse(&wire).is_err());
    }

    #[test]
    fn reversed_is_involution(flow in arb_flow()) {
        prop_assert_eq!(flow.reversed().reversed(), flow);
    }

    #[test]
    fn canonical_is_direction_independent(flow in arb_flow()) {
        prop_assert_eq!(flow.canonical(), flow.reversed().canonical());
    }

    #[test]
    fn seq_len_is_payload_plus_ctrl_flags(pkt in arb_packet()) {
        let expect = u32::from(pkt.payload_len)
            + u32::from(pkt.flags.syn())
            + u32::from(pkt.flags.fin());
        prop_assert_eq!(pkt.seq_len(), expect);
    }
}
