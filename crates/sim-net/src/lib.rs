//! Wire formats for the simulated network.
//!
//! The NIC model hashes real header bytes (Toeplitz RSS, Flow Director
//! filters), so packets carry genuine IPv4/TCP headers. This crate
//! provides:
//!
//! * [`flow::FlowTuple`] — the 4-tuple that identifies a connection,
//! * [`packet::Packet`] and [`packet::TcpFlags`] — the simulator's
//!   segment representation,
//! * [`headers`] — byte-level IPv4/TCP encode/decode with checksums,
//!   round-trip-tested under proptest,
//! * [`checksum`] — the Internet checksum.
//!
//! # Example
//!
//! ```
//! use sim_net::{FlowTuple, Packet, TcpFlags};
//! use std::net::Ipv4Addr;
//!
//! let flow = FlowTuple::new(
//!     Ipv4Addr::new(10, 0, 0, 2), 40000,
//!     Ipv4Addr::new(10, 0, 0, 1), 80,
//! );
//! let syn = Packet::new(flow, TcpFlags::SYN).with_seq(1000);
//! let bytes = syn.to_wire();
//! let parsed = Packet::parse(&bytes).unwrap();
//! assert_eq!(parsed, syn);
//! ```

pub mod checksum;
pub mod flow;
pub mod headers;
pub mod packet;

pub use flow::FlowTuple;
pub use packet::{Packet, ParsePacketError, TcpFlags};
