//! Connection 4-tuples.

use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

/// Largest "well-known" port number; the paper's Receive Flow Deliver
/// classification rules treat ports `< 1024` as server-side ports.
pub const WELL_KNOWN_MAX: u16 = 1023;

/// The 4-tuple identifying a TCP connection, from the perspective of the
/// packet or endpoint that carries it (`src` = sender).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FlowTuple {
    /// Source IPv4 address.
    pub src_ip: Ipv4Addr,
    /// Source TCP port.
    pub src_port: u16,
    /// Destination IPv4 address.
    pub dst_ip: Ipv4Addr,
    /// Destination TCP port.
    pub dst_port: u16,
}

impl FlowTuple {
    /// Creates a tuple.
    pub fn new(src_ip: Ipv4Addr, src_port: u16, dst_ip: Ipv4Addr, dst_port: u16) -> Self {
        FlowTuple {
            src_ip,
            src_port,
            dst_ip,
            dst_port,
        }
    }

    /// The same connection seen from the other direction.
    pub fn reversed(self) -> FlowTuple {
        FlowTuple {
            src_ip: self.dst_ip,
            src_port: self.dst_port,
            dst_ip: self.src_ip,
            dst_port: self.src_port,
        }
    }

    /// A direction-independent key: both directions of one connection
    /// map to the same value. Used by connection tables.
    pub fn canonical(self) -> FlowTuple {
        let a = (self.src_ip, self.src_port);
        let b = (self.dst_ip, self.dst_port);
        if a <= b {
            self
        } else {
            self.reversed()
        }
    }

    /// Whether the source port is in the well-known range.
    pub fn src_is_well_known(self) -> bool {
        self.src_port <= WELL_KNOWN_MAX
    }

    /// Whether the destination port is in the well-known range.
    pub fn dst_is_well_known(self) -> bool {
        self.dst_port <= WELL_KNOWN_MAX
    }
}

impl std::fmt::Display for FlowTuple {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{} -> {}:{}",
            self.src_ip, self.src_port, self.dst_ip, self.dst_port
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuple() -> FlowTuple {
        FlowTuple::new(
            Ipv4Addr::new(10, 0, 0, 2),
            40_000,
            Ipv4Addr::new(10, 0, 0, 1),
            80,
        )
    }

    #[test]
    fn reverse_is_involution() {
        let t = tuple();
        assert_eq!(t.reversed().reversed(), t);
        assert_ne!(t.reversed(), t);
    }

    #[test]
    fn canonical_is_direction_independent() {
        let t = tuple();
        assert_eq!(t.canonical(), t.reversed().canonical());
    }

    #[test]
    fn well_known_boundaries() {
        let t = tuple();
        assert!(t.dst_is_well_known()); // port 80
        assert!(!t.src_is_well_known()); // port 40000
        let edge = FlowTuple::new(t.src_ip, 1023, t.dst_ip, 1024);
        assert!(edge.src_is_well_known());
        assert!(!edge.dst_is_well_known());
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(tuple().to_string(), "10.0.0.2:40000 -> 10.0.0.1:80");
    }
}
