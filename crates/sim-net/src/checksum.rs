//! The Internet checksum (RFC 1071).

/// Computes the 16-bit ones'-complement Internet checksum over `data`,
/// starting from an `initial` partial sum (useful for pseudo-headers).
///
/// # Example
///
/// ```
/// # use sim_net::checksum::internet_checksum;
/// // RFC 1071 worked example.
/// let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
/// assert_eq!(internet_checksum(&data, 0), !0xddf2u16);
/// ```
pub fn internet_checksum(data: &[u8], initial: u32) -> u16 {
    !finish(sum_words(data, initial))
}

/// Accumulates 16-bit words of `data` into a 32-bit partial sum.
pub fn sum_words(data: &[u8], initial: u32) -> u32 {
    let mut sum = initial;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    sum
}

/// Folds a 32-bit partial sum down to 16 bits (without complementing).
pub fn finish(mut sum: u32) -> u16 {
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    sum as u16
}

/// Verifies that `data` (which embeds its checksum field) sums to the
/// all-ones pattern, i.e. the checksum is valid.
pub fn verify(data: &[u8], initial: u32) -> bool {
    finish(sum_words(data, initial)) == 0xffff
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_data_checksums_to_all_ones() {
        assert_eq!(internet_checksum(&[], 0), 0xffff);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        // [0xab] is treated as the word 0xab00.
        assert_eq!(internet_checksum(&[0xab], 0), !0xab00);
    }

    #[test]
    fn carry_folding() {
        // 0xffff + 0x0001 wraps with end-around carry to 0x0001.
        let data = [0xff, 0xff, 0x00, 0x01];
        assert_eq!(internet_checksum(&data, 0), !0x0001);
    }

    #[test]
    fn verify_round_trip() {
        let mut data = vec![0x45u8, 0x00, 0x00, 0x28, 0x12, 0x34, 0x40, 0x00, 0x40, 0x06];
        let ck = internet_checksum(&data, 0);
        data.extend_from_slice(&ck.to_be_bytes());
        assert!(verify(&data, 0));
        data[0] ^= 0x01;
        assert!(!verify(&data, 0));
    }

    #[test]
    fn initial_partial_sum_is_included() {
        let data = [0x00u8, 0x01];
        let with = internet_checksum(&data, 0x0002);
        let without = internet_checksum(&data, 0);
        assert_ne!(with, without);
        assert_eq!(with, !0x0003u16);
    }
}
