//! The simulator's TCP segment representation.

use bytes::BytesMut;
use serde::{Deserialize, Serialize};

use crate::flow::FlowTuple;
use crate::headers::{Ipv4Header, ParseHeaderError, TcpHeader, IPV4_HEADER_LEN, TCP_HEADER_LEN};

/// TCP flag bits, as they appear in the header's flags byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// No flags set.
    pub const NONE: TcpFlags = TcpFlags(0);
    /// FIN: sender has finished sending.
    pub const FIN: TcpFlags = TcpFlags(0x01);
    /// SYN: synchronize sequence numbers.
    pub const SYN: TcpFlags = TcpFlags(0x02);
    /// RST: reset the connection.
    pub const RST: TcpFlags = TcpFlags(0x04);
    /// PSH: push buffered data to the application.
    pub const PSH: TcpFlags = TcpFlags(0x08);
    /// ACK: acknowledgment field is significant.
    pub const ACK: TcpFlags = TcpFlags(0x10);
    /// ECE: ECN-echo — the receiver is echoing a congestion mark back
    /// to the sender (RFC 3168).
    pub const ECE: TcpFlags = TcpFlags(0x40);
    /// CE: congestion experienced. On the real wire this is the IP
    /// header's ECN CE codepoint; the simulator's merged L3/L4 segment
    /// carries it in the spare top flag bit (CWR's position, which the
    /// model does not otherwise use).
    pub const CE: TcpFlags = TcpFlags(0x80);

    /// Whether every flag in `other` is set in `self`.
    pub fn contains(self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Convenience accessors.
    pub fn syn(self) -> bool {
        self.contains(TcpFlags::SYN)
    }
    /// True if ACK is set.
    pub fn ack(self) -> bool {
        self.contains(TcpFlags::ACK)
    }
    /// True if FIN is set.
    pub fn fin(self) -> bool {
        self.contains(TcpFlags::FIN)
    }
    /// True if RST is set.
    pub fn rst(self) -> bool {
        self.contains(TcpFlags::RST)
    }
    /// True if ECE (ECN echo) is set.
    pub fn ece(self) -> bool {
        self.contains(TcpFlags::ECE)
    }
    /// True if CE (congestion experienced) is set.
    pub fn ce(self) -> bool {
        self.contains(TcpFlags::CE)
    }
}

impl std::ops::BitOr for TcpFlags {
    type Output = TcpFlags;
    fn bitor(self, rhs: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | rhs.0)
    }
}

impl std::fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut parts = Vec::new();
        if self.syn() {
            parts.push("SYN");
        }
        if self.ack() {
            parts.push("ACK");
        }
        if self.fin() {
            parts.push("FIN");
        }
        if self.rst() {
            parts.push("RST");
        }
        if self.contains(TcpFlags::PSH) {
            parts.push("PSH");
        }
        if self.ece() {
            parts.push("ECE");
        }
        if self.ce() {
            parts.push("CE");
        }
        if parts.is_empty() {
            parts.push("-");
        }
        f.write_str(&parts.join("|"))
    }
}

/// A TCP segment in flight.
///
/// Payload bytes are represented by their length only (the simulation
/// never inspects payload contents), but headers encode and parse to
/// real wire bytes via [`Packet::to_wire`] / [`Packet::parse`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Packet {
    /// Sender-perspective connection tuple.
    pub flow: FlowTuple,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgment number.
    pub ack: u32,
    /// Flags.
    pub flags: TcpFlags,
    /// Payload length in bytes.
    pub payload_len: u16,
    /// Advertised receive window.
    pub wnd: u16,
}

/// Errors from [`Packet::parse`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParsePacketError(ParseHeaderError);

impl std::fmt::Display for ParsePacketError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid packet: {}", self.0)
    }
}

impl std::error::Error for ParsePacketError {}

impl Packet {
    /// Creates a payload-less segment with the given flags.
    pub fn new(flow: FlowTuple, flags: TcpFlags) -> Packet {
        Packet {
            flow,
            seq: 0,
            ack: 0,
            flags,
            payload_len: 0,
            wnd: 65_535,
        }
    }

    /// Sets the sequence number (builder style).
    pub fn with_seq(mut self, seq: u32) -> Packet {
        self.seq = seq;
        self
    }

    /// Sets the acknowledgment number (builder style).
    pub fn with_ack(mut self, ack: u32) -> Packet {
        self.ack = ack;
        self
    }

    /// Sets the payload length (builder style).
    pub fn with_payload(mut self, len: u16) -> Packet {
        self.payload_len = len;
        self
    }

    /// Sets the advertised receive window (builder style).
    pub fn with_wnd(mut self, wnd: u16) -> Packet {
        self.wnd = wnd;
        self
    }

    /// Sets extra flags on top of the existing ones (builder style).
    pub fn with_flags(mut self, extra: TcpFlags) -> Packet {
        self.flags = self.flags | extra;
        self
    }

    /// Sequence space consumed by this segment (payload plus SYN/FIN).
    pub fn seq_len(&self) -> u32 {
        u32::from(self.payload_len) + u32::from(self.flags.syn()) + u32::from(self.flags.fin())
    }

    /// Encodes the segment to wire bytes (IPv4 + TCP + zeroed payload).
    pub fn to_wire(&self) -> BytesMut {
        let payload = vec![0u8; usize::from(self.payload_len)];
        let total = IPV4_HEADER_LEN + TCP_HEADER_LEN + payload.len();
        let mut buf = BytesMut::with_capacity(total);
        Ipv4Header {
            src: self.flow.src_ip,
            dst: self.flow.dst_ip,
            total_len: total as u16,
            ttl: 64,
        }
        .encode(&mut buf);
        TcpHeader {
            src_port: self.flow.src_port,
            dst_port: self.flow.dst_port,
            seq: self.seq,
            ack: self.ack,
            flags: self.flags.0,
            window: self.wnd,
        }
        .encode(&mut buf, self.flow.src_ip, self.flow.dst_ip, &payload);
        buf.extend_from_slice(&payload);
        buf
    }

    /// Parses wire bytes back into a segment.
    ///
    /// # Errors
    ///
    /// Returns [`ParsePacketError`] when either header is malformed or a
    /// checksum fails.
    pub fn parse(data: &[u8]) -> Result<Packet, ParsePacketError> {
        let ip = Ipv4Header::decode(data).map_err(ParsePacketError)?;
        let tcp_bytes = &data[IPV4_HEADER_LEN..];
        let tcp = TcpHeader::decode(tcp_bytes, ip.src, ip.dst).map_err(ParsePacketError)?;
        let payload_len = (usize::from(ip.total_len) - IPV4_HEADER_LEN - TCP_HEADER_LEN) as u16;
        Ok(Packet {
            flow: FlowTuple::new(ip.src, tcp.src_port, ip.dst, tcp.dst_port),
            seq: tcp.seq,
            ack: tcp.ack,
            flags: TcpFlags(tcp.flags),
            payload_len,
            wnd: tcp.window,
        })
    }
}

impl std::fmt::Display for Packet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{} {} seq={} ack={} len={}]",
            self.flow, self.flags, self.seq, self.ack, self.payload_len
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn flow() -> FlowTuple {
        FlowTuple::new(
            Ipv4Addr::new(10, 0, 0, 2),
            40_000,
            Ipv4Addr::new(10, 0, 0, 1),
            80,
        )
    }

    #[test]
    fn wire_round_trip() {
        let p = Packet::new(flow(), TcpFlags::SYN | TcpFlags::ACK)
            .with_seq(123)
            .with_ack(456)
            .with_payload(600);
        let wire = p.to_wire();
        assert_eq!(Packet::parse(&wire).unwrap(), p);
    }

    #[test]
    fn wire_round_trip_keeps_window_and_ecn_bits() {
        let p = Packet::new(flow(), TcpFlags::ACK | TcpFlags::ECE)
            .with_seq(1)
            .with_ack(2)
            .with_wnd(12_345);
        let wire = p.to_wire();
        assert_eq!(Packet::parse(&wire).unwrap(), p);
        let marked = Packet::new(flow(), TcpFlags::ACK | TcpFlags::CE).with_payload(1_448);
        assert_eq!(Packet::parse(&marked.to_wire()).unwrap(), marked);
        assert_eq!(marked.to_string().contains("CE"), true);
    }

    #[test]
    fn seq_len_counts_syn_fin_and_payload() {
        let f = flow();
        assert_eq!(Packet::new(f, TcpFlags::SYN).seq_len(), 1);
        assert_eq!(Packet::new(f, TcpFlags::ACK).seq_len(), 0);
        assert_eq!(Packet::new(f, TcpFlags::FIN).with_payload(10).seq_len(), 11);
        assert_eq!(Packet::new(f, TcpFlags::SYN | TcpFlags::FIN).seq_len(), 2);
    }

    #[test]
    fn parse_rejects_corruption() {
        let p = Packet::new(flow(), TcpFlags::ACK).with_payload(8);
        let mut raw = p.to_wire().to_vec();
        raw[IPV4_HEADER_LEN + 4] ^= 0x40; // flip a seq bit
        assert!(Packet::parse(&raw).is_err());
    }

    #[test]
    fn flags_display_and_contains() {
        let f = TcpFlags::SYN | TcpFlags::ACK;
        assert!(f.syn() && f.ack());
        assert!(!f.fin());
        assert!(f.contains(TcpFlags::SYN));
        assert!(!f.contains(TcpFlags::SYN | TcpFlags::FIN));
        assert_eq!(f.to_string(), "SYN|ACK");
        assert_eq!(TcpFlags::NONE.to_string(), "-");
    }

    #[test]
    fn display_packet() {
        let p = Packet::new(flow(), TcpFlags::SYN).with_seq(7);
        let s = p.to_string();
        assert!(s.contains("SYN"), "{s}");
        assert!(s.contains("seq=7"), "{s}");
    }
}
