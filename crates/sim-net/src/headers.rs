//! Byte-level IPv4 and TCP header encoding and decoding.
//!
//! Only the fields the simulation needs are modelled (no IP options, no
//! TCP options), but layouts, lengths and checksums follow RFC 791 and
//! RFC 793, so the NIC's hash functions operate on authentic bytes.

use std::net::Ipv4Addr;

use bytes::{Buf, BufMut};

use crate::checksum::{finish, internet_checksum, sum_words};

/// Length of the encoded IPv4 header (no options).
pub const IPV4_HEADER_LEN: usize = 20;
/// Length of the encoded TCP header (no options).
pub const TCP_HEADER_LEN: usize = 20;
/// IP protocol number for TCP.
pub const IPPROTO_TCP: u8 = 6;

/// Errors from header parsing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseHeaderError {
    /// Input shorter than the fixed header.
    Truncated,
    /// Version or IHL field is unsupported.
    BadVersion,
    /// Header checksum does not verify.
    BadChecksum,
    /// Protocol is not TCP.
    NotTcp,
}

impl std::fmt::Display for ParseHeaderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            ParseHeaderError::Truncated => "input truncated",
            ParseHeaderError::BadVersion => "unsupported IP version or header length",
            ParseHeaderError::BadChecksum => "header checksum mismatch",
            ParseHeaderError::NotTcp => "protocol is not TCP",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for ParseHeaderError {}

/// A minimal IPv4 header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Header {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Total datagram length (header + payload).
    pub total_len: u16,
    /// Time to live.
    pub ttl: u8,
}

impl Ipv4Header {
    /// Encodes the header (with checksum) into `buf`.
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        let mut hdr = [0u8; IPV4_HEADER_LEN];
        hdr[0] = 0x45; // version 4, IHL 5
        hdr[2..4].copy_from_slice(&self.total_len.to_be_bytes());
        hdr[6] = 0x40; // DF
        hdr[8] = self.ttl;
        hdr[9] = IPPROTO_TCP;
        hdr[12..16].copy_from_slice(&self.src.octets());
        hdr[16..20].copy_from_slice(&self.dst.octets());
        let ck = internet_checksum(&hdr, 0);
        hdr[10..12].copy_from_slice(&ck.to_be_bytes());
        buf.put_slice(&hdr);
    }

    /// Decodes and validates a header from the front of `data`.
    ///
    /// # Errors
    ///
    /// Returns [`ParseHeaderError`] if the input is truncated, is not
    /// IPv4 with a 20-byte header, fails its checksum, or does not carry
    /// TCP.
    pub fn decode(data: &[u8]) -> Result<Ipv4Header, ParseHeaderError> {
        if data.len() < IPV4_HEADER_LEN {
            return Err(ParseHeaderError::Truncated);
        }
        let hdr = &data[..IPV4_HEADER_LEN];
        if hdr[0] != 0x45 {
            return Err(ParseHeaderError::BadVersion);
        }
        if internet_checksum(hdr, 0) != 0 {
            return Err(ParseHeaderError::BadChecksum);
        }
        if hdr[9] != IPPROTO_TCP {
            return Err(ParseHeaderError::NotTcp);
        }
        let mut b = hdr;
        b.advance(2);
        let total_len = b.get_u16();
        b.advance(4);
        let ttl = b.get_u8();
        b.advance(3);
        let src = Ipv4Addr::from(b.get_u32());
        let dst = Ipv4Addr::from(b.get_u32());
        Ok(Ipv4Header {
            src,
            dst,
            total_len,
            ttl,
        })
    }
}

/// A minimal TCP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgment number.
    pub ack: u32,
    /// Flag bits (full byte: CWR/ECE/URG/ACK/PSH/RST/SYN/FIN).
    pub flags: u8,
    /// Receive window.
    pub window: u16,
}

impl TcpHeader {
    /// Encodes the header into `buf`, computing the checksum over the
    /// IPv4 pseudo-header, this header, and `payload`.
    pub fn encode<B: BufMut>(&self, buf: &mut B, src: Ipv4Addr, dst: Ipv4Addr, payload: &[u8]) {
        let mut hdr = [0u8; TCP_HEADER_LEN];
        hdr[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        hdr[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        hdr[4..8].copy_from_slice(&self.seq.to_be_bytes());
        hdr[8..12].copy_from_slice(&self.ack.to_be_bytes());
        hdr[12] = (5 << 4) as u8; // data offset 5 words
        hdr[13] = self.flags;
        hdr[14..16].copy_from_slice(&self.window.to_be_bytes());
        let pseudo = pseudo_header_sum(src, dst, (TCP_HEADER_LEN + payload.len()) as u16);
        let partial = sum_words(&hdr, pseudo);
        let ck = !finish(sum_words(payload, partial));
        hdr[16..18].copy_from_slice(&ck.to_be_bytes());
        buf.put_slice(&hdr);
    }

    /// Decodes and validates a header from the front of `data` (which
    /// must include the payload for checksum verification).
    ///
    /// # Errors
    ///
    /// Returns [`ParseHeaderError::Truncated`] on short input or
    /// [`ParseHeaderError::BadChecksum`] on checksum failure.
    pub fn decode(
        data: &[u8],
        src: Ipv4Addr,
        dst: Ipv4Addr,
    ) -> Result<TcpHeader, ParseHeaderError> {
        if data.len() < TCP_HEADER_LEN {
            return Err(ParseHeaderError::Truncated);
        }
        let pseudo = pseudo_header_sum(src, dst, data.len() as u16);
        if finish(sum_words(data, pseudo)) != 0xffff {
            return Err(ParseHeaderError::BadChecksum);
        }
        let mut b = data;
        let src_port = b.get_u16();
        let dst_port = b.get_u16();
        let seq = b.get_u32();
        let ack = b.get_u32();
        b.advance(1);
        let flags = b.get_u8();
        let window = b.get_u16();
        Ok(TcpHeader {
            src_port,
            dst_port,
            seq,
            ack,
            flags,
            window,
        })
    }
}

fn pseudo_header_sum(src: Ipv4Addr, dst: Ipv4Addr, tcp_len: u16) -> u32 {
    let mut pseudo = [0u8; 12];
    pseudo[0..4].copy_from_slice(&src.octets());
    pseudo[4..8].copy_from_slice(&dst.octets());
    pseudo[9] = IPPROTO_TCP;
    pseudo[10..12].copy_from_slice(&tcp_len.to_be_bytes());
    sum_words(&pseudo, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    fn addrs() -> (Ipv4Addr, Ipv4Addr) {
        (Ipv4Addr::new(10, 0, 0, 2), Ipv4Addr::new(10, 0, 0, 1))
    }

    #[test]
    fn ipv4_round_trip() {
        let (src, dst) = addrs();
        let h = Ipv4Header {
            src,
            dst,
            total_len: 40,
            ttl: 64,
        };
        let mut buf = BytesMut::new();
        h.encode(&mut buf);
        assert_eq!(buf.len(), IPV4_HEADER_LEN);
        assert_eq!(Ipv4Header::decode(&buf).unwrap(), h);
    }

    #[test]
    fn ipv4_detects_corruption() {
        let (src, dst) = addrs();
        let h = Ipv4Header {
            src,
            dst,
            total_len: 40,
            ttl: 64,
        };
        let mut buf = BytesMut::new();
        h.encode(&mut buf);
        let mut raw = buf.to_vec();
        raw[15] ^= 0xff;
        assert_eq!(
            Ipv4Header::decode(&raw).unwrap_err(),
            ParseHeaderError::BadChecksum
        );
    }

    #[test]
    fn ipv4_rejects_truncated_and_bad_version() {
        assert_eq!(
            Ipv4Header::decode(&[0u8; 10]).unwrap_err(),
            ParseHeaderError::Truncated
        );
        let mut raw = [0u8; IPV4_HEADER_LEN];
        raw[0] = 0x46; // IHL 6 unsupported
        assert_eq!(
            Ipv4Header::decode(&raw).unwrap_err(),
            ParseHeaderError::BadVersion
        );
    }

    #[test]
    fn tcp_round_trip_with_payload() {
        let (src, dst) = addrs();
        let h = TcpHeader {
            src_port: 40_000,
            dst_port: 80,
            seq: 0xdead_beef,
            ack: 0x0102_0304,
            flags: 0x18, // PSH|ACK
            window: 65_535,
        };
        let payload = b"GET / HTTP/1.0\r\n\r\n";
        let mut buf = BytesMut::new();
        h.encode(&mut buf, src, dst, payload);
        buf.extend_from_slice(payload);
        assert_eq!(TcpHeader::decode(&buf, src, dst).unwrap(), h);
    }

    #[test]
    fn tcp_detects_payload_corruption() {
        let (src, dst) = addrs();
        let h = TcpHeader {
            src_port: 1,
            dst_port: 2,
            seq: 3,
            ack: 4,
            flags: 0x10,
            window: 100,
        };
        let payload = b"hello";
        let mut buf = BytesMut::new();
        h.encode(&mut buf, src, dst, payload);
        buf.extend_from_slice(payload);
        let mut raw = buf.to_vec();
        *raw.last_mut().unwrap() ^= 0x01;
        assert_eq!(
            TcpHeader::decode(&raw, src, dst).unwrap_err(),
            ParseHeaderError::BadChecksum
        );
    }

    #[test]
    fn tcp_checksum_covers_pseudo_header() {
        let (src, dst) = addrs();
        let h = TcpHeader {
            src_port: 1,
            dst_port: 2,
            seq: 3,
            ack: 4,
            flags: 0x02,
            window: 10,
        };
        let mut buf = BytesMut::new();
        h.encode(&mut buf, src, dst, &[]);
        // Decoding against different addresses must fail: the pseudo
        // header participates in the checksum.
        let other = Ipv4Addr::new(192, 168, 1, 1);
        assert_eq!(
            TcpHeader::decode(&buf, other, dst).unwrap_err(),
            ParseHeaderError::BadChecksum
        );
        assert!(TcpHeader::decode(&buf, src, dst).is_ok());
    }
}
