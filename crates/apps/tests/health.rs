//! Property tests for the edge tier's health-check state machine and
//! weighted round-robin scheduler.
//!
//! The guarantee the failover design leans on: whatever interleaving of
//! probe successes and connection errors a backend sees, the tracker's
//! final state is a pure function of the sequence's *suffix* — a long
//! enough terminal streak always converges it — and every intermediate
//! state is reachable only through full threshold streaks.

use proptest::prelude::*;
use sim_apps::edge::{HealthTracker, WeightedRr};

/// Reference model: the tracker's state is determined by replaying the
/// sequence with explicit consecutive counters.
fn reference_is_up(fail_t: u8, succ_t: u8, seq: &[bool]) -> bool {
    let mut up = true;
    let mut fails = 0u32;
    let mut succs = 0u32;
    for &ok in seq {
        if ok {
            fails = 0;
            if !up {
                succs += 1;
                if succs >= u32::from(succ_t) {
                    up = true;
                    succs = 0;
                }
            }
        } else {
            succs = 0;
            if up {
                fails += 1;
                if fails >= u32::from(fail_t) {
                    up = false;
                    fails = 0;
                }
            }
        }
    }
    up
}

proptest! {
    /// Any probe/error sequence leaves the tracker in exactly the state
    /// the reference model computes.
    #[test]
    fn tracker_matches_reference_model(
        fail_t in 1u8..=5,
        succ_t in 1u8..=5,
        seq in collection::vec(any::<bool>(), 0..200),
    ) {
        let mut h = HealthTracker::new(fail_t, succ_t);
        for &ok in &seq {
            if ok {
                h.on_success();
            } else {
                h.on_failure();
            }
        }
        prop_assert_eq!(h.is_up(), reference_is_up(fail_t, succ_t, &seq));
    }

    /// A terminal streak at least as long as the relevant threshold
    /// forces convergence to that streak's state, no matter the prefix.
    #[test]
    fn terminal_streak_converges(
        fail_t in 1u8..=4,
        succ_t in 1u8..=4,
        prefix in collection::vec(any::<bool>(), 0..100),
        terminal_ok in any::<bool>(),
    ) {
        let mut h = HealthTracker::new(fail_t, succ_t);
        for &ok in &prefix {
            if ok { h.on_success(); } else { h.on_failure(); }
        }
        let streak = usize::from(fail_t.max(succ_t));
        for _ in 0..streak {
            if terminal_ok { h.on_success(); } else { h.on_failure(); }
        }
        prop_assert_eq!(h.is_up(), terminal_ok);
    }

    /// Transition notifications fire exactly on state changes: replaying
    /// the returned booleans reconstructs the state.
    #[test]
    fn transition_returns_track_state(
        fail_t in 1u8..=4,
        succ_t in 1u8..=4,
        seq in collection::vec(any::<bool>(), 0..150),
    ) {
        let mut h = HealthTracker::new(fail_t, succ_t);
        let mut up = true;
        let mut readmissions = 0u64;
        for &ok in &seq {
            if ok {
                if h.on_success() {
                    prop_assert!(!up, "re-admission from Up");
                    up = true;
                    readmissions += 1;
                }
            } else if h.on_failure() {
                prop_assert!(up, "down transition from Down");
                up = false;
            }
            prop_assert_eq!(h.is_up(), up);
        }
        prop_assert_eq!(h.readmissions, readmissions);
    }

    /// Smooth WRR is fair over one full cycle: picking
    /// `sum(weights)` times hands each healthy member exactly its
    /// weight, and never selects an unhealthy one.
    #[test]
    fn weighted_rr_is_exact_over_a_cycle(
        weights in collection::vec(1u32..=5, 1..6),
        healthy in collection::vec(any::<bool>(), 1..6),
    ) {
        let n = weights.len().min(healthy.len());
        let weights = &weights[..n];
        let healthy = &healthy[..n];
        let total: u32 = weights
            .iter()
            .zip(healthy)
            .filter(|(_, &h)| h)
            .map(|(&w, _)| w)
            .sum();
        let mut rr = WeightedRr::new(n);
        let mut picks = vec![0u32; n];
        for _ in 0..total {
            let Some(i) = rr.pick(weights, healthy) else {
                prop_assert_eq!(total, 0);
                return Ok(());
            };
            prop_assert!(healthy[i], "picked an unhealthy member");
            picks[i] += 1;
        }
        for i in 0..n {
            let expect = if healthy[i] { weights[i] } else { 0 };
            prop_assert_eq!(picks[i], expect, "member {} share", i);
        }
    }
}
