//! Unit tests of the application workers, driven through a minimal rig
//! (stack + OS services + hand-delivered packets).

use sim_apps::proxy::{Proxy, ProxyConfig};
use sim_apps::sys::{Sys, Worker, LISTEN_TOKEN};
use sim_apps::web::{WebConfig, WebServer};
use sim_core::{CoreId, SimRng};
use sim_mem::{CacheCosts, CacheModel};
use sim_net::{FlowTuple, Packet, TcpFlags};
use sim_os::epoll::{EpollEvent, EpollId};
use sim_os::process::Pid;
use sim_os::KernelCtx;
use sim_sync::{LockCosts, LockTable};
use std::net::Ipv4Addr;
use tcp_stack::stack::{OsServices, StackConfig, TcpStack};

const SERVER: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const CLIENT: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

struct Rig {
    ctx: KernelCtx,
    os: OsServices,
    stack: TcpStack,
    ep: EpollId,
}

impl Rig {
    fn new() -> Rig {
        let config = StackConfig::fastsocket(1);
        let mut ctx = KernelCtx::new(
            1,
            LockTable::new(LockCosts::default()),
            CacheModel::new(CacheCosts::default()),
            SimRng::seed(5),
        );
        let mut os = OsServices::new(&mut ctx, &config);
        let mut stack = TcpStack::new(&mut ctx, config);
        let ep = os.epolls.create(&mut ctx, CoreId(0));
        let mut op = ctx.begin(CoreId(0), 0);
        let ls = stack.listen(&mut ctx, &mut op, 80, 128, CoreId(0));
        let local = stack.local_listen(&mut ctx, &mut op, 80, 128, Pid(0), CoreId(0));
        stack.watch_listen(&mut ctx, &mut os, &mut op, ls, ep, Pid(0), LISTEN_TOKEN);
        stack.watch_listen(&mut ctx, &mut os, &mut op, local, ep, Pid(0), LISTEN_TOKEN);
        op.commit(&mut ctx.cpu);
        Rig { ctx, os, stack, ep }
    }

    /// Delivers a packet to the stack; returns outgoing segments.
    fn rx(&mut self, pkt: Packet) -> Vec<Packet> {
        let mut op = self.ctx.begin(CoreId(0), 0);
        let out = self
            .stack
            .net_rx(&mut self.ctx, &mut self.os, &mut op, &pkt, false);
        op.commit(&mut self.ctx.cpu);
        out.replies
    }

    /// Runs the worker over its pending epoll events; returns what the
    /// worker transmitted.
    fn run_worker(&mut self, worker: &mut dyn Worker) -> Vec<Packet> {
        let mut op = self.ctx.begin(CoreId(0), 0);
        let mut events: Vec<EpollEvent> = Vec::new();
        self.os
            .epolls
            .wait(&mut self.ctx, &mut op, self.ep, 64, &mut events);
        let mut tx = Vec::new();
        {
            let mut sys = Sys {
                ctx: &mut self.ctx,
                os: &mut self.os,
                stack: &mut self.stack,
                op: &mut op,
                core: CoreId(0),
                pid: Pid(0),
                ep: self.ep,
                local_ip: SERVER,
                tx: &mut tx,
            };
            worker.on_events(&mut sys, &events);
        }
        op.commit(&mut self.ctx.cpu);
        tx
    }
}

fn handshake_and_request(rig: &mut Rig, port: u16, len: u16) {
    let flow = FlowTuple::new(CLIENT, port, SERVER, 80);
    let reply = rig.rx(Packet::new(flow, TcpFlags::SYN).with_seq(100));
    let synack = reply[0];
    rig.rx(Packet::new(flow, TcpFlags::ACK)
        .with_seq(101)
        .with_ack(synack.seq.wrapping_add(1)));
    rig.rx(Packet::new(flow, TcpFlags::PSH | TcpFlags::ACK)
        .with_seq(101)
        .with_ack(synack.seq.wrapping_add(1))
        .with_payload(len));
}

#[test]
fn web_worker_serves_and_closes() {
    let mut rig = Rig::new();
    let mut web = WebServer::new(WebConfig::default());
    handshake_and_request(&mut rig, 40_000, 600);
    let tx = rig.run_worker(&mut web);
    assert_eq!(web.served(), 1);
    assert_eq!(web.open_conns(), 0, "HTTP/1.0: closed after the response");
    // Response data followed by a FIN.
    assert!(tx.iter().any(|p| p.payload_len == 1_200));
    assert!(tx.iter().any(|p| p.flags.fin()));
}

#[test]
fn web_worker_keepalive_keeps_the_connection() {
    let mut rig = Rig::new();
    let mut web = WebServer::new(WebConfig {
        keep_alive: true,
        ..WebConfig::default()
    });
    handshake_and_request(&mut rig, 40_001, 600);
    let tx = rig.run_worker(&mut web);
    assert_eq!(web.served(), 1);
    assert_eq!(web.open_conns(), 1, "keep-alive holds the connection");
    assert!(!tx.iter().any(|p| p.flags.fin()), "no FIN under keep-alive");
}

#[test]
fn web_worker_ignores_empty_readable_without_fin() {
    let mut rig = Rig::new();
    let mut web = WebServer::new(WebConfig::default());
    // Handshake only (no request yet): the accept happens, nothing to
    // serve, and the connection stays open awaiting data.
    let flow = FlowTuple::new(CLIENT, 40_002, SERVER, 80);
    let reply = rig.rx(Packet::new(flow, TcpFlags::SYN).with_seq(7));
    rig.rx(Packet::new(flow, TcpFlags::ACK)
        .with_seq(8)
        .with_ack(reply[0].seq.wrapping_add(1)));
    rig.run_worker(&mut web);
    assert_eq!(web.served(), 0);
    assert_eq!(web.open_conns(), 1);
}

#[test]
fn proxy_worker_relays_via_active_connection() {
    let mut rig = Rig::new();
    let mut proxy = Proxy::new(ProxyConfig::default());
    handshake_and_request(&mut rig, 40_003, 600);

    // Wake 1: accept + read request + connect() to a backend.
    let tx = rig.run_worker(&mut proxy);
    let syn = tx
        .iter()
        .find(|p| p.flags.syn() && !p.flags.ack())
        .copied()
        .expect("proxy must open an active connection");
    assert_eq!(proxy.open_conns(), 2, "client side + backend side");

    // Backend answers the handshake; the epoll writable event triggers
    // the request relay.
    rig.rx(
        Packet::new(syn.flow.reversed(), TcpFlags::SYN | TcpFlags::ACK)
            .with_seq(900)
            .with_ack(syn.seq.wrapping_add(1)),
    );
    let tx = rig.run_worker(&mut proxy);
    let relayed = tx
        .iter()
        .find(|p| p.payload_len == 600)
        .expect("request relayed");
    assert_eq!(relayed.flow.dst_ip, syn.flow.dst_ip);

    // Backend responds and closes; the proxy relays to the client and
    // tears both sides down.
    rig.rx(
        Packet::new(syn.flow.reversed(), TcpFlags::PSH | TcpFlags::ACK)
            .with_seq(901)
            .with_ack(relayed.seq.wrapping_add(600))
            .with_payload(1_200),
    );
    rig.rx(
        Packet::new(syn.flow.reversed(), TcpFlags::FIN | TcpFlags::ACK)
            .with_seq(2_101)
            .with_ack(relayed.seq.wrapping_add(600)),
    );
    let tx = rig.run_worker(&mut proxy);
    assert_eq!(proxy.served(), 1);
    assert!(
        tx.iter().any(|p| p.payload_len == 1_200),
        "response to client"
    );
    assert!(tx.iter().any(|p| p.flags.fin()), "both sides closed");
    assert_eq!(proxy.open_conns(), 0);
}

#[test]
fn proxy_worker_drops_client_that_never_sends() {
    let mut rig = Rig::new();
    let mut proxy = Proxy::new(ProxyConfig::default());
    let flow = FlowTuple::new(CLIENT, 40_004, SERVER, 80);
    let reply = rig.rx(Packet::new(flow, TcpFlags::SYN).with_seq(1));
    rig.rx(Packet::new(flow, TcpFlags::ACK)
        .with_seq(2)
        .with_ack(reply[0].seq.wrapping_add(1)));
    rig.run_worker(&mut proxy); // accepts; no request yet
    assert_eq!(proxy.open_conns(), 1);
    // The client gives up without sending anything.
    rig.rx(Packet::new(flow, TcpFlags::FIN | TcpFlags::ACK)
        .with_seq(2)
        .with_ack(reply[0].seq.wrapping_add(1)));
    rig.run_worker(&mut proxy);
    assert_eq!(proxy.open_conns(), 0, "aborted client is cleaned up");
    assert_eq!(proxy.served(), 0);
}
