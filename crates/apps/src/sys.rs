//! The syscall surface a simulated worker process sees.

use sim_core::{CoreId, CycleClass, Cycles};
use sim_net::Packet;
use sim_os::epoll::{EpollEvent, EpollId};
use sim_os::process::Pid;
use sim_os::{KernelCtx, Op};
use sim_trace::TraceLabel;
use tcp_stack::stack::{OsServices, TcpStack};
use tcp_stack::SockId;

/// The `epoll_data` token workers register their listen socket with.
pub const LISTEN_TOKEN: u64 = u64::MAX;

/// Everything a worker needs to make "syscalls" during one scheduled
/// run: the kernel context, the stack, and the costed operation being
/// accumulated. Packets produced by syscalls are collected in `tx` for
/// the driver to transmit when the operation commits.
pub struct Sys<'a> {
    /// Kernel context (CPU, locks, cache, RNG).
    pub ctx: &'a mut KernelCtx,
    /// VFS/epoll/timer services.
    pub os: &'a mut OsServices,
    /// The TCP stack.
    pub stack: &'a mut TcpStack,
    /// The operation accumulating this run's cost.
    pub op: &'a mut Op,
    /// The worker's core.
    pub core: CoreId,
    /// The worker's PID.
    pub pid: Pid,
    /// The worker's epoll instance.
    pub ep: EpollId,
    /// Server's local IP (source for active connections).
    pub local_ip: std::net::Ipv4Addr,
    /// Outgoing packets to transmit after this run.
    pub tx: &'a mut Vec<Packet>,
}

impl Sys<'_> {
    /// `accept()` one connection on `port`, or `None` (EAGAIN).
    pub fn accept(&mut self, port: u16) -> Option<SockId> {
        self.op.trace_enter(TraceLabel::SysAccept);
        let sock = self
            .stack
            .accept(self.ctx, self.os, self.op, port, self.core, self.pid)
            .map(|(sock, _)| sock);
        self.op.trace_exit(TraceLabel::SysAccept);
        self.op.check_boundary();
        sock
    }

    /// Registers `sock` in this worker's epoll with `token`.
    pub fn register(&mut self, sock: SockId, token: u64) {
        self.op.trace_enter(TraceLabel::SysEpollCtl);
        self.stack
            .register_epoll(self.ctx, self.os, self.op, sock, self.ep, token);
        self.op.trace_exit(TraceLabel::SysEpollCtl);
        self.op.check_boundary();
    }

    /// `read()`: drains and returns buffered receive bytes. Draining a
    /// mostly-closed receive window queues a window-update ACK for the
    /// peer (sliding-window data plane only).
    pub fn recv(&mut self, sock: SockId) -> u32 {
        self.op.trace_enter(TraceLabel::SysRecv);
        let (n, window_update) = self.stack.recv(self.ctx, self.op, sock);
        if let Some(pkt) = window_update {
            self.tx.push(pkt);
        }
        self.op.trace_exit(TraceLabel::SysRecv);
        self.op.check_boundary();
        n
    }

    /// Bytes buffered for reading (level-triggered readiness probe:
    /// data may have arrived before the socket was registered).
    pub fn rx_pending(&self, sock: SockId) -> u32 {
        self.stack.socks.get(sock).rx_ready
    }

    /// Whether the peer has closed its direction.
    pub fn peer_fin(&self, sock: SockId) -> bool {
        self.stack.socks.get(sock).peer_fin_seen
    }

    /// Whether `sock` still exists (it may have been torn down by an
    /// RST while an event for it was queued).
    pub fn alive(&self, sock: SockId) -> bool {
        self.stack.socks.exists(sock)
    }

    /// The allocation generation of a live socket. Slot ids are reused
    /// after teardown; pairing the id with its generation lets callers
    /// detect that a queued event refers to a previous occupant.
    pub fn sock_gen(&self, sock: SockId) -> u64 {
        self.stack.sock_gen(sock)
    }

    /// Whether `sock` still exists *and* is the same allocation the
    /// caller recorded. [`Sys::alive`] alone cannot tell a reused slot
    /// apart from the original socket.
    pub fn alive_gen(&self, sock: SockId, gen: u64) -> bool {
        self.stack.socks.exists(sock) && self.stack.sock_gen(sock) == gen
    }

    /// The flow hash of an established connection — the edge tier's
    /// SNI-token stand-in: simulated packets carry no payload bytes, so
    /// the ClientHello's server-name token is modelled as a
    /// deterministic per-connection hash (stable across doubled
    /// same-seed runs because the flow tuple is).
    pub fn flow_hash(&self, sock: SockId) -> u64 {
        tcp_stack::established::flow_hash(&self.stack.socks.get(sock).flow)
    }

    /// The current simulated time (cycles) of the running operation.
    pub fn now(&self) -> Cycles {
        self.op.now()
    }

    /// `write()`: sends `bytes` of payload.
    pub fn send(&mut self, sock: SockId, bytes: u16) {
        self.op.trace_enter(TraceLabel::SysSend);
        if let Some(pkt) = self.stack.send(self.ctx, self.os, self.op, sock, bytes) {
            self.tx.push(pkt);
        }
        self.op.trace_exit(TraceLabel::SysSend);
        self.op.check_boundary();
    }

    /// `write()` of a bulk response: queues `bytes` on the socket's
    /// sliding send window and transmits whatever the congestion and
    /// peer windows allow right now; the rest follows ACK-clocked from
    /// the receive path. Falls back to a single-packet `send` when the
    /// data plane is not armed.
    pub fn send_bulk(&mut self, sock: SockId, bytes: u32) {
        self.op.trace_enter(TraceLabel::SysSend);
        let pkts = self
            .stack
            .send_bulk(self.ctx, self.os, self.op, sock, bytes);
        self.tx.extend(pkts);
        self.op.trace_exit(TraceLabel::SysSend);
        self.op.check_boundary();
    }

    /// `close()`: releases the FD side and starts TCP teardown.
    pub fn close(&mut self, sock: SockId) {
        self.op.trace_enter(TraceLabel::SysClose);
        if let Some(fin) = self.stack.close(self.ctx, self.os, self.op, sock) {
            self.tx.push(fin);
        }
        self.op.trace_exit(TraceLabel::SysClose);
        self.op.check_boundary();
    }

    /// `connect()` to `(dst_ip, dst_port)`; the SYN is queued for
    /// transmission. `None` when ephemeral ports are exhausted.
    pub fn connect(&mut self, dst_ip: std::net::Ipv4Addr, dst_port: u16) -> Option<SockId> {
        self.op.trace_enter(TraceLabel::SysConnect);
        let conn = self.stack.connect(
            self.ctx,
            self.os,
            self.op,
            self.core,
            self.pid,
            self.local_ip,
            dst_ip,
            dst_port,
        );
        self.op.trace_exit(TraceLabel::SysConnect);
        self.op.check_boundary();
        let (sock, syn) = conn?;
        self.tx.push(syn);
        Some(sock)
    }

    /// Pure user-level work (request parsing, response building).
    pub fn work(&mut self, cycles: Cycles) {
        self.op.trace_enter(TraceLabel::AppWork);
        self.op.work(CycleClass::AppWork, cycles);
        self.op.trace_exit(TraceLabel::AppWork);
    }

    /// Whether more connections are ready to accept on `port`
    /// (level-triggered readiness probe).
    pub fn accept_ready(&self, port: u16) -> bool {
        self.stack.accept_ready(port, self.core)
    }

    /// Re-arms the listen-readiness event on this worker's own epoll
    /// (level-triggered `epoll_wait` re-reports a still-backlogged
    /// accept queue; the event-posted model needs an explicit re-arm
    /// after a budgeted accept batch).
    pub fn repoll_listen(&mut self) {
        let ep = self.ep;
        self.os.epolls.post(
            self.ctx,
            self.op,
            ep,
            EpollEvent {
                data: LISTEN_TOKEN,
                readable: true,
                writable: false,
            },
        );
        self.op.check_boundary();
    }
}

/// A worker process's application logic, driven by epoll events.
pub trait Worker {
    /// Handles one batch of epoll events.
    fn on_events(&mut self, sys: &mut Sys<'_>, events: &[EpollEvent]);

    /// Connections currently tracked by the worker (diagnostics).
    fn open_conns(&self) -> usize;

    /// Completed request/response exchanges served by this worker.
    fn served(&self) -> u64;

    /// Periodic maintenance tick (health probes, retry release). The
    /// driver calls this on every worker at the edge tier's probe
    /// interval; workers without timed duties ignore it.
    fn on_tick(&mut self, _sys: &mut Sys<'_>) {}

    /// Resilience counters, when the worker runs the edge tier.
    fn edge_counters(&self) -> Option<crate::edge::EdgeCounters> {
        None
    }
}
