//! The nginx-like web server worker.
//!
//! Short-lived HTTP/1.0 service: accept, read the one-packet request,
//! write the one-packet response, close. The paper's nginx benchmark
//! serves a 64-byte in-memory file; request parsing and response
//! building are pure user-level cycles.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use sim_core::{Cycles, SimRng};
use sim_load::SizeDist;
use sim_os::epoll::EpollEvent;
use sim_os::fdtable::{Fd, FdTable};
use tcp_stack::SockId;

use crate::sys::{Sys, Worker, LISTEN_TOKEN};

/// Web-server tuning.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct WebConfig {
    /// Service port.
    pub port: u16,
    /// Response payload length.
    pub response_len: u16,
    /// User-level cycles to parse a request and build a response.
    pub app_work: Cycles,
    /// Maximum connections accepted per listen-readable event.
    pub accept_batch: u32,
    /// HTTP keep-alive: serve multiple requests per connection and let
    /// the client close. The paper's benchmarks disable this.
    pub keep_alive: bool,
}

impl Default for WebConfig {
    fn default() -> Self {
        WebConfig {
            port: 80,
            response_len: 1_200,
            app_work: 24_000,
            accept_batch: 4,
            keep_alive: false,
        }
    }
}

#[derive(Debug)]
struct Conn {
    sock: SockId,
    fd: Fd,
}

/// One nginx-like worker process.
#[derive(Debug)]
pub struct WebServer {
    config: WebConfig,
    fds: FdTable<SockId>,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    served: u64,
    /// Per-response size sampling (open-loop heavy-tailed workloads);
    /// `None` serves the fixed `config.response_len`.
    response_sizer: Option<(SizeDist, SimRng)>,
    /// Bulk mode: stream responses of this many bytes through the
    /// sliding-window data plane instead of one-packet sends.
    bulk: Option<u32>,
}

impl WebServer {
    /// Creates a worker.
    pub fn new(config: WebConfig) -> Self {
        WebServer {
            config,
            fds: FdTable::new(1 << 20),
            conns: HashMap::new(),
            next_token: 0,
            served: 0,
            response_sizer: None,
            bulk: None,
        }
    }

    /// Streams `response_bytes`-sized responses through the data plane
    /// (builder style); requires `StackConfig::cc` to be armed.
    pub fn with_bulk(mut self, response_bytes: u32) -> Self {
        self.bulk = Some(response_bytes);
        self
    }

    /// Samples response sizes from `dist` (with a worker-private RNG)
    /// instead of serving the fixed configured length (builder style).
    pub fn with_response_sizer(mut self, dist: SizeDist, rng: SimRng) -> Self {
        self.response_sizer = Some((dist, rng));
        self
    }

    fn response_len(&mut self) -> u16 {
        match &mut self.response_sizer {
            Some((dist, rng)) => dist.sample(rng),
            None => self.config.response_len,
        }
    }

    fn accept_loop(&mut self, sys: &mut Sys<'_>) {
        for _ in 0..self.config.accept_batch {
            let Some(sock) = sys.accept(self.config.port) else {
                break;
            };
            let fd = self.fds.alloc(sock).expect("fd limit");
            let token = self.next_token;
            self.next_token += 1;
            sys.register(sock, token);
            self.conns.insert(token, Conn { sock, fd });
            // Level-triggered: the request may already be buffered.
            if sys.rx_pending(sock) > 0 {
                self.serve(sys, token);
            }
        }
        // Level-triggered: if the queue still has connections after a
        // budgeted batch, re-arm our own readiness event.
        if sys.accept_ready(self.config.port) {
            sys.repoll_listen();
        }
    }

    fn serve(&mut self, sys: &mut Sys<'_>, token: u64) {
        let Some(conn) = self.conns.get(&token) else {
            return;
        };
        let sock = conn.sock;
        let bytes = sys.recv(sock);
        if bytes == 0 {
            if sys.peer_fin(sock) {
                // Keep-alive client finished (or the client went away
                // before sending a request): close our side.
                self.teardown(sys, token);
            }
            return;
        }
        // One request per readable event: the closed-loop client sends
        // the next request only after the previous response.
        let _ = bytes;
        sys.work(self.config.app_work);
        match self.bulk {
            Some(resp) => sys.send_bulk(sock, resp),
            None => {
                let len = self.response_len();
                sys.send(sock, len);
            }
        }
        self.served += 1;
        if self.config.keep_alive {
            if sys.peer_fin(sock) {
                self.teardown(sys, token);
            }
        } else {
            self.teardown(sys, token);
        }
    }

    fn teardown(&mut self, sys: &mut Sys<'_>, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            sys.close(conn.sock);
            let _ = self.fds.close(conn.fd);
        }
    }
}

impl Worker for WebServer {
    fn on_events(&mut self, sys: &mut Sys<'_>, events: &[EpollEvent]) {
        for ev in events {
            if ev.data == LISTEN_TOKEN {
                self.accept_loop(sys);
            } else if ev.readable {
                // The connection may already be gone (served + closed
                // earlier in this same batch).
                if let Some(conn) = self.conns.get(&ev.data) {
                    if sys.alive(conn.sock) {
                        self.serve(sys, ev.data);
                    } else {
                        let token = ev.data;
                        if let Some(c) = self.conns.remove(&token) {
                            let _ = self.fds.close(c.fd);
                        }
                    }
                }
            }
        }
    }

    fn open_conns(&self) -> usize {
        self.conns.len()
    }

    fn served(&self) -> u64 {
        self.served
    }
}
