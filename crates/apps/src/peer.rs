//! Scripted remote endpoints: the closed-loop client (`http_load`) and
//! the backend HTTP server.
//!
//! The paper saturates the server under test with Fastsocket-enabled
//! clients and backends ("we have to deploy Fastsocket on the clients
//! and backend servers to increase their throughput to the same
//! level"); accordingly, peers here are infinitely fast — they cost no
//! simulated CPU, only wire latency — but follow exact TCP sequencing.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use sim_net::{FlowTuple, Packet, TcpFlags};

/// A closed-loop client slot: runs one short-lived connection at a
/// time, immediately starting the next when one completes.
#[derive(Debug)]
pub struct ClientSlot {
    ip: Ipv4Addr,
    server_ip: Ipv4Addr,
    server_port: u16,
    request_len: u16,
    /// Requests issued per connection (HTTP keep-alive when > 1).
    requests_per_conn: u32,
    requests_left: u32,
    /// Whether this side closes first after the last response. True
    /// whenever the server runs keep-alive (it waits for our FIN);
    /// false for HTTP/1.0 servers, which close after one response.
    client_closes: bool,
    /// The request in flight, kept for retransmission when the server's
    /// duplicate SYN-ACK reveals our ACK/request was lost.
    inflight_request: Option<Packet>,
    next_port: u16,
    state: ClientState,
    flow: FlowTuple,
    snd_nxt: u32,
    rcv_nxt: u32,
    /// Completed connections.
    pub completed: u64,
    /// Responses received (= requests served), across all connections.
    pub responses: u64,
    /// Connections aborted by RST.
    pub resets: u64,
    /// Long-lived mode: after the last response the slot parks in
    /// `Holding` with the connection open instead of closing; the
    /// driver releases the hold later (WebSocket-like sessions).
    hold: bool,
    /// Set when the slot just entered `Holding`; the driver consumes it
    /// via [`ClientSlot::take_hold_started`] to schedule the release.
    hold_started: bool,
    /// Bulk mode: expected response size in bytes. The slot then ACKs
    /// every in-order data segment (the server's ACK clock), echoes ECN
    /// marks, dup-ACKs on gaps, and counts a response complete only
    /// once all its bytes arrived.
    bulk: Option<u32>,
    /// Bytes of the current response still outstanding (bulk mode).
    resp_remaining: u32,
    /// Response payload bytes received across all connections (bulk
    /// goodput accounting).
    pub bytes_received: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ClientState {
    Idle,
    SynSent,
    AwaitResponse,
    /// Server closed first (no keep-alive); we FIN'd back and await the
    /// final ACK.
    AwaitFinalAck,
    /// We closed first (keep-alive); awaiting the server's FIN.
    Closing,
    /// Long-lived session: all responses received, connection parked
    /// open until the driver releases the hold (sends our FIN).
    Holding,
}

impl ClientSlot {
    /// Creates a slot with its own client IP, issuing
    /// `requests_per_conn` request/response rounds per connection.
    pub fn new(
        ip: Ipv4Addr,
        server_ip: Ipv4Addr,
        server_port: u16,
        request_len: u16,
        requests_per_conn: u32,
    ) -> Self {
        assert!(
            requests_per_conn >= 1,
            "a connection carries at least one request"
        );
        ClientSlot {
            ip,
            server_ip,
            server_port,
            request_len,
            requests_per_conn,
            requests_left: 0,
            client_closes: requests_per_conn > 1,
            hold: false,
            hold_started: false,
            inflight_request: None,
            next_port: 1_025,
            state: ClientState::Idle,
            flow: FlowTuple::new(ip, 0, server_ip, server_port),
            snd_nxt: 0,
            rcv_nxt: 0,
            completed: 0,
            responses: 0,
            resets: 0,
            bulk: None,
            resp_remaining: 0,
            bytes_received: 0,
        }
    }

    /// Switches the slot to bulk mode (builder style): responses are
    /// `response_bytes` long, streamed over many segments.
    pub fn with_bulk(mut self, response_bytes: u32) -> Self {
        self.bulk = Some(response_bytes);
        self
    }

    /// Starts a new connection, returning the SYN to send.
    ///
    /// # Panics
    ///
    /// Panics if a connection is already in flight.
    pub fn start(&mut self, isn: u32) -> Packet {
        assert_eq!(self.state, ClientState::Idle, "connection already active");
        let port = self.next_port;
        self.next_port = if self.next_port >= 60_999 {
            1_025
        } else {
            self.next_port + 1
        };
        self.flow = FlowTuple::new(self.ip, port, self.server_ip, self.server_port);
        self.snd_nxt = isn.wrapping_add(1);
        self.rcv_nxt = 0;
        self.requests_left = self.requests_per_conn;
        self.inflight_request = None;
        self.hold_started = false;
        self.state = ClientState::SynSent;
        Packet::new(self.flow, TcpFlags::SYN).with_seq(isn)
    }

    /// Whether the slot is between connections.
    pub fn idle(&self) -> bool {
        self.state == ClientState::Idle
    }

    /// Reprofiles the slot for its next connection (open-loop sessions
    /// draw a fresh request size and length per arrival). Must be
    /// called between connections; `client_closes` decides who FINs
    /// first after the last response (see the field on [`ClientSlot`]).
    ///
    /// # Panics
    ///
    /// Panics if a connection is in flight or `requests_per_conn == 0`.
    pub fn set_session(&mut self, request_len: u16, requests_per_conn: u32, client_closes: bool) {
        assert_eq!(self.state, ClientState::Idle, "connection already active");
        assert!(
            requests_per_conn >= 1,
            "a connection carries at least one request"
        );
        self.request_len = request_len;
        self.requests_per_conn = requests_per_conn;
        self.client_closes = client_closes;
    }

    /// Arms or disarms the long-lived hold for the next session (the
    /// open-loop long-lived mix). With the hold armed the slot parks
    /// in `Holding` after its last response instead of closing.
    ///
    /// # Panics
    ///
    /// Panics if a connection is in flight.
    pub fn set_hold(&mut self, on: bool) {
        assert_eq!(self.state, ClientState::Idle, "connection already active");
        self.hold = on;
    }

    /// Whether the slot just parked into its idle hold. Edge-triggered:
    /// reading clears the flag, so the driver schedules exactly one
    /// release per hold.
    pub fn take_hold_started(&mut self) -> bool {
        std::mem::take(&mut self.hold_started)
    }

    /// Ends the idle hold: appends the deferred FIN to `out` and moves
    /// to `Closing`. Returns `false` (sending nothing) when the
    /// connection already ended some other way (reset, abort).
    pub fn release_hold(&mut self, out: &mut Vec<Packet>) -> bool {
        if self.state != ClientState::Holding {
            return false;
        }
        out.push(
            Packet::new(self.flow, TcpFlags::FIN | TcpFlags::ACK)
                .with_seq(self.snd_nxt)
                .with_ack(self.rcv_nxt),
        );
        self.snd_nxt = self.snd_nxt.wrapping_add(1);
        self.state = ClientState::Closing;
        true
    }

    /// Aborts the in-flight connection (client-side timeout). Returns
    /// an RST to send so the server can reclaim its state, or `None`
    /// when the slot was idle.
    pub fn abort(&mut self) -> Option<Packet> {
        if self.state == ClientState::Idle {
            return None;
        }
        self.state = ClientState::Idle;
        Some(Packet::new(self.flow, TcpFlags::RST).with_seq(self.snd_nxt))
    }

    /// The flow of the connection in flight (client perspective).
    pub fn flow(&self) -> FlowTuple {
        self.flow
    }

    fn request(&mut self) -> Packet {
        let p = Packet::new(self.flow, TcpFlags::PSH | TcpFlags::ACK)
            .with_seq(self.snd_nxt)
            .with_ack(self.rcv_nxt)
            .with_payload(self.request_len);
        self.snd_nxt = self.snd_nxt.wrapping_add(u32::from(self.request_len));
        self.inflight_request = Some(p);
        self.resp_remaining = self.bulk.unwrap_or(0);
        p
    }

    fn fin_ack_resend(&self) -> Packet {
        // Our FIN (already counted in snd_nxt) retransmitted.
        Packet::new(self.flow, TcpFlags::FIN | TcpFlags::ACK)
            .with_seq(self.snd_nxt.wrapping_sub(1))
            .with_ack(self.rcv_nxt)
    }

    /// Client-side retransmission: called by the driver when the
    /// connection has made no progress for a while. Resends whatever
    /// the slot is waiting on (its own last transmission may have been
    /// lost). Returns nothing when idle.
    pub fn nudge(&mut self, out: &mut Vec<Packet>) {
        match self.state {
            ClientState::Idle => {}
            ClientState::SynSent => {
                // Our SYN may have been lost.
                out.push(
                    Packet::new(self.flow, TcpFlags::SYN).with_seq(self.snd_nxt.wrapping_sub(1)),
                );
            }
            ClientState::AwaitResponse => {
                // The handshake ACK and/or request may have been lost.
                out.push(
                    Packet::new(self.flow, TcpFlags::ACK)
                        .with_seq(self.snd_nxt.wrapping_sub(u32::from(self.request_len)))
                        .with_ack(self.rcv_nxt),
                );
                if let Some(req) = self.inflight_request {
                    out.push(req);
                }
            }
            ClientState::AwaitFinalAck | ClientState::Closing => {
                out.push(self.fin_ack_resend());
            }
            // Nothing of ours is in flight during the hold.
            ClientState::Holding => {}
        }
    }

    /// Handles a packet from the server. Replies are appended to
    /// `out`; returns `true` when the connection just completed (the
    /// driver should schedule the next `start`).
    pub fn on_packet(&mut self, pkt: &Packet, out: &mut Vec<Packet>) -> bool {
        debug_assert_eq!(pkt.flow.reversed(), self.flow, "packet for wrong slot");
        if pkt.flags.rst() {
            self.resets += 1;
            self.state = ClientState::Idle;
            return true;
        }
        match self.state {
            ClientState::Idle => false,
            ClientState::SynSent => {
                if pkt.flags.syn() && pkt.flags.ack() {
                    debug_assert_eq!(pkt.ack, self.snd_nxt);
                    self.rcv_nxt = pkt.seq.wrapping_add(1);
                    // Handshake ACK, then the first request immediately.
                    out.push(
                        Packet::new(self.flow, TcpFlags::ACK)
                            .with_seq(self.snd_nxt)
                            .with_ack(self.rcv_nxt),
                    );
                    out.push(self.request());
                    self.state = ClientState::AwaitResponse;
                }
                false
            }
            ClientState::AwaitResponse => {
                if pkt.flags.syn() {
                    // Duplicate SYN-ACK: our handshake ACK and request
                    // were lost — resend both.
                    out.push(
                        Packet::new(self.flow, TcpFlags::ACK)
                            .with_seq(self.snd_nxt.wrapping_sub(u32::from(self.request_len)))
                            .with_ack(self.rcv_nxt),
                    );
                    if let Some(req) = self.inflight_request {
                        out.push(req);
                    }
                    return false;
                }
                if pkt.seq_len() > 0 && pkt.seq != self.rcv_nxt {
                    if self.bulk.is_some() {
                        // A gap (a segment ahead of this one was lost)
                        // or a duplicate: re-ACK the hole so the
                        // server's dup-ACK counter can trip fast
                        // retransmit.
                        out.push(
                            Packet::new(self.flow, TcpFlags::ACK)
                                .with_seq(self.snd_nxt)
                                .with_ack(self.rcv_nxt),
                        );
                    }
                    // Stale duplicate (the server's RTO fired while the
                    // original was in flight): ignore.
                    return false;
                }
                self.rcv_nxt = self.rcv_nxt.wrapping_add(pkt.seq_len());
                if pkt.payload_len > 0 {
                    let complete = match self.bulk {
                        Some(_) => {
                            // Bulk: one segment of many. ACK it (the
                            // sender's ACK clock), echoing a CE mark as
                            // ECE so the congestion controller sees it.
                            self.bytes_received += u64::from(pkt.payload_len);
                            self.resp_remaining = self
                                .resp_remaining
                                .saturating_sub(u32::from(pkt.payload_len));
                            let flags = if pkt.flags.ce() {
                                TcpFlags::ACK | TcpFlags::ECE
                            } else {
                                TcpFlags::ACK
                            };
                            out.push(
                                Packet::new(self.flow, flags)
                                    .with_seq(self.snd_nxt)
                                    .with_ack(self.rcv_nxt),
                            );
                            self.resp_remaining == 0
                        }
                        // One response per packet.
                        None => true,
                    };
                    if complete {
                        self.responses += 1;
                        self.requests_left = self.requests_left.saturating_sub(1);
                        if self.requests_left > 0 {
                            // Keep-alive: next request on the same connection.
                            out.push(self.request());
                            return false;
                        }
                        if self.client_closes && !pkt.flags.fin() {
                            if self.hold {
                                // Long-lived: park with the connection
                                // open; the driver sends the FIN when
                                // the hold expires.
                                self.hold_started = true;
                                self.state = ClientState::Holding;
                                return false;
                            }
                            // Keep-alive done: the client closes first.
                            out.push(
                                Packet::new(self.flow, TcpFlags::FIN | TcpFlags::ACK)
                                    .with_seq(self.snd_nxt)
                                    .with_ack(self.rcv_nxt),
                            );
                            self.snd_nxt = self.snd_nxt.wrapping_add(1);
                            self.state = ClientState::Closing;
                            return false;
                        }
                    }
                }
                if pkt.flags.fin() {
                    // Server closed first (HTTP/1.0): FIN back and wait
                    // for the final ACK (delayed-ACK coalescing).
                    out.push(
                        Packet::new(self.flow, TcpFlags::FIN | TcpFlags::ACK)
                            .with_seq(self.snd_nxt)
                            .with_ack(self.rcv_nxt),
                    );
                    self.snd_nxt = self.snd_nxt.wrapping_add(1);
                    self.state = ClientState::AwaitFinalAck;
                }
                false
            }
            ClientState::AwaitFinalAck => {
                if pkt.flags.fin() {
                    // The server re-sent its FIN: our FIN+ACK was lost.
                    out.push(self.fin_ack_resend());
                    return false;
                }
                if pkt.flags.ack() && pkt.ack == self.snd_nxt {
                    self.completed += 1;
                    self.state = ClientState::Idle;
                    true
                } else {
                    false
                }
            }
            ClientState::Holding => {
                if pkt.flags.fin() {
                    // The server closed under our hold (shutdown or an
                    // orphan kill): FIN back and finish normally.
                    self.rcv_nxt = self.rcv_nxt.wrapping_add(pkt.seq_len());
                    out.push(
                        Packet::new(self.flow, TcpFlags::FIN | TcpFlags::ACK)
                            .with_seq(self.snd_nxt)
                            .with_ack(self.rcv_nxt),
                    );
                    self.snd_nxt = self.snd_nxt.wrapping_add(1);
                    self.state = ClientState::AwaitFinalAck;
                }
                false
            }
            ClientState::Closing => {
                if pkt.seq_len() > 0 && pkt.seq != self.rcv_nxt {
                    // Duplicate data: our FIN was lost — resend it.
                    out.push(self.fin_ack_resend());
                    return false;
                }
                self.rcv_nxt = self.rcv_nxt.wrapping_add(pkt.seq_len());
                if pkt.flags.fin() {
                    // The server's FIN (LAST_ACK side): acknowledge it
                    // and the connection is done.
                    out.push(
                        Packet::new(self.flow, TcpFlags::ACK)
                            .with_seq(self.snd_nxt)
                            .with_ack(self.rcv_nxt),
                    );
                    self.completed += 1;
                    self.state = ClientState::Idle;
                    true
                } else {
                    false
                }
            }
        }
    }
}

#[derive(Debug)]
struct BackendConn {
    snd_nxt: u32,
    rcv_nxt: u32,
    established: bool,
    fin_sent: bool,
    /// In-flight bulk response (bulk mode only).
    bulk: Option<BulkSend>,
}

/// A sliding-window bulk response in flight from the backend: the
/// scripted peer paces itself by the proxy's advertised window (carried
/// on every ACK the proxy's stack emits), so it never overruns the
/// proxy's receive budget. The backend LAN is lossless and in-order, so
/// no retransmission state is needed.
#[derive(Debug)]
struct BulkSend {
    /// Sequence number of the response's first byte.
    base: u32,
    /// Total response bytes.
    total: u32,
    /// Bytes sent so far (offset past `base`).
    sent: u32,
    /// Bytes the proxy has cumulatively ACKed (offset past `base`).
    una: u32,
    /// The proxy's advertised receive window, from its last ACK.
    peer_wnd: u32,
}

/// A scripted backend HTTP/1.0 server: accepts connections, answers
/// each one-packet request with a response and a FIN (the backend
/// closes first, so the proxy side avoids TIME_WAIT on its active
/// connections).
#[derive(Debug)]
pub struct Backend {
    ip: Ipv4Addr,
    port: u16,
    response_len: u16,
    conns: HashMap<FlowTuple, BackendConn>,
    /// Bulk mode: `(response_bytes, mss)` — responses stream as MSS
    /// segments paced by the proxy's advertised window.
    bulk: Option<(u32, u16)>,
    /// Keep-alive mode: respond without a FIN so the proxy can pool
    /// the connection for later requests.
    keep_alive: bool,
    /// Crashed: every arriving segment is answered with RST, exactly
    /// what a host whose process died does to live connections.
    down: bool,
    /// Requests served.
    pub served: u64,
}

impl Backend {
    /// Creates a backend at `ip:port`.
    pub fn new(ip: Ipv4Addr, port: u16, response_len: u16) -> Self {
        Backend {
            ip,
            port,
            response_len,
            conns: HashMap::new(),
            bulk: None,
            keep_alive: false,
            down: false,
            served: 0,
        }
    }

    /// Switches the backend to bulk mode (builder style): each request
    /// is answered with `response_bytes` streamed in `mss`-sized
    /// segments, flow-controlled by the proxy's advertised window.
    pub fn with_bulk(mut self, response_bytes: u32, mss: u16) -> Self {
        self.bulk = Some((response_bytes, mss));
        self
    }

    /// Switches the backend to keep-alive mode (builder style):
    /// responses carry no FIN and the connection stays open for the
    /// proxy's next pooled request; the proxy closes first.
    pub fn with_keep_alive(mut self, on: bool) -> Self {
        self.keep_alive = on;
        self
    }

    /// Crashes the backend: all connection state is lost and every
    /// subsequent segment (including new SYNs) is answered with RST
    /// until [`heal`](Self::heal).
    pub fn crash(&mut self) {
        self.down = true;
        self.conns.clear();
    }

    /// Restores a crashed backend. Its conn table starts empty — the
    /// proxy's health checker decides when it re-enters rotation.
    pub fn heal(&mut self) {
        self.down = false;
    }

    /// Whether the backend is currently crashed.
    pub fn is_down(&self) -> bool {
        self.down
    }

    /// Sends whatever the flow-control window currently allows of a
    /// bulk response, followed by the FIN once everything is out.
    fn push_bulk(conn: &mut BackendConn, lflow: FlowTuple, mss: u16, out: &mut Vec<Packet>) {
        let Some(b) = &mut conn.bulk else {
            return;
        };
        while b.sent < b.total {
            let inflight = b.sent - b.una;
            let usable = b.peer_wnd.saturating_sub(inflight);
            let seg = (b.total - b.sent).min(u32::from(mss)).min(usable);
            if seg == 0 {
                return; // window closed: resume on the next ACK
            }
            out.push(
                Packet::new(lflow, TcpFlags::PSH | TcpFlags::ACK)
                    .with_seq(b.base.wrapping_add(b.sent))
                    .with_ack(conn.rcv_nxt)
                    .with_payload(seg as u16),
            );
            b.sent += seg;
            conn.snd_nxt = conn.snd_nxt.wrapping_add(seg);
        }
        // Everything queued for the wire: the FIN rides right behind
        // the last segment (HTTP/1.0 close).
        out.push(
            Packet::new(lflow, TcpFlags::FIN | TcpFlags::ACK)
                .with_seq(conn.snd_nxt)
                .with_ack(conn.rcv_nxt),
        );
        conn.snd_nxt = conn.snd_nxt.wrapping_add(1);
        conn.fin_sent = true;
        conn.bulk = None;
    }

    /// The backend's address.
    pub fn ip(&self) -> Ipv4Addr {
        self.ip
    }

    /// Handles a packet from the proxy, appending replies to `out`.
    pub fn on_packet(&mut self, pkt: &Packet, isn: u32, out: &mut Vec<Packet>) {
        debug_assert_eq!(pkt.flow.dst_ip, self.ip);
        debug_assert_eq!(pkt.flow.dst_port, self.port);
        let lflow = pkt.flow.reversed();
        if self.down {
            // A crashed host: no listener, no connection state. RFC
            // 9293-style refusal — RST seq'd at the peer's ACK so the
            // proxy's stack accepts it in SYN_SENT and ESTABLISHED
            // alike (nothing answers an RST with an RST).
            if !pkt.flags.rst() {
                out.push(
                    Packet::new(lflow, TcpFlags::RST)
                        .with_seq(pkt.ack)
                        .with_ack(pkt.seq.wrapping_add(pkt.seq_len())),
                );
            }
            return;
        }
        if pkt.flags.syn() && !pkt.flags.ack() {
            let conn = BackendConn {
                snd_nxt: isn.wrapping_add(1),
                rcv_nxt: pkt.seq.wrapping_add(1),
                established: false,
                fin_sent: false,
                bulk: None,
            };
            self.conns.insert(lflow, conn);
            out.push(
                Packet::new(lflow, TcpFlags::SYN | TcpFlags::ACK)
                    .with_seq(isn)
                    .with_ack(pkt.seq.wrapping_add(1)),
            );
            return;
        }
        let Some(conn) = self.conns.get_mut(&lflow) else {
            return; // stray segment for a finished connection
        };
        if pkt.flags.rst() {
            self.conns.remove(&lflow);
            return;
        }
        if pkt.seq_len() > 0 && pkt.seq != conn.rcv_nxt {
            // A retransmission (the proxy's RTO fired before our
            // response/ACK made it back). Serving it again would
            // duplicate the response — fatal for a pooled keep-alive
            // connection, where the stray response reaches whichever
            // client owns the conn by then. Re-ACK the cumulative
            // point to quench the retransmit timer and drop it.
            out.push(
                Packet::new(lflow, TcpFlags::ACK)
                    .with_seq(conn.snd_nxt)
                    .with_ack(conn.rcv_nxt),
            );
            return;
        }
        conn.rcv_nxt = conn.rcv_nxt.wrapping_add(pkt.seq_len());
        if !conn.established && pkt.flags.ack() {
            conn.established = true;
        }
        if let Some(b) = &mut conn.bulk {
            // Mid-transfer ACK from the proxy: advance the cumulative
            // ACK point, refresh the advertised window, and send more.
            if pkt.flags.ack() {
                let off = pkt.ack.wrapping_sub(b.base);
                if off <= b.sent {
                    b.una = b.una.max(off);
                }
                b.peer_wnd = u32::from(pkt.wnd);
                Self::push_bulk(conn, lflow, self.bulk.map_or(1_448, |(_, m)| m), out);
            }
        } else if pkt.payload_len > 0 && !conn.fin_sent {
            match self.bulk {
                Some((total, mss)) => {
                    // The request: stream the bulk response, windowed.
                    conn.bulk = Some(BulkSend {
                        base: conn.snd_nxt,
                        total,
                        sent: 0,
                        una: 0,
                        peer_wnd: u32::from(pkt.wnd),
                    });
                    self.served += 1;
                    Self::push_bulk(conn, lflow, mss, out);
                }
                None => {
                    // The request: answer with the response, followed
                    // by a FIN (HTTP/1.0 close) unless keep-alive keeps
                    // the connection open for the proxy's next request.
                    out.push(
                        Packet::new(lflow, TcpFlags::PSH | TcpFlags::ACK)
                            .with_seq(conn.snd_nxt)
                            .with_ack(conn.rcv_nxt)
                            .with_payload(self.response_len),
                    );
                    conn.snd_nxt = conn.snd_nxt.wrapping_add(u32::from(self.response_len));
                    if !self.keep_alive {
                        out.push(
                            Packet::new(lflow, TcpFlags::FIN | TcpFlags::ACK)
                                .with_seq(conn.snd_nxt)
                                .with_ack(conn.rcv_nxt),
                        );
                        conn.snd_nxt = conn.snd_nxt.wrapping_add(1);
                        conn.fin_sent = true;
                    }
                    self.served += 1;
                }
            }
        }
        if pkt.flags.fin() {
            if conn.fin_sent {
                // The proxy's FIN (LAST_ACK side): acknowledge, forget.
                out.push(
                    Packet::new(lflow, TcpFlags::ACK)
                        .with_seq(conn.snd_nxt)
                        .with_ack(conn.rcv_nxt),
                );
            } else {
                // The proxy closed first (a pooled keep-alive conn, or
                // a probe): close our side with the acknowledging FIN.
                out.push(
                    Packet::new(lflow, TcpFlags::FIN | TcpFlags::ACK)
                        .with_seq(conn.snd_nxt)
                        .with_ack(conn.rcv_nxt),
                );
            }
            self.conns.remove(&lflow);
        }
    }

    /// Connections currently tracked.
    pub fn open_conns(&self) -> usize {
        self.conns.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SERVER: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const CLIENT: Ipv4Addr = Ipv4Addr::new(10, 1, 0, 2);
    const BACKEND: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 100);

    #[test]
    fn client_slot_runs_full_exchange() {
        let mut slot = ClientSlot::new(CLIENT, SERVER, 80, 600, 1);
        let syn = slot.start(100);
        assert!(syn.flags.syn());
        assert!(!slot.idle());

        // Server SYN-ACK -> client sends ACK + request.
        let synack = Packet::new(syn.flow.reversed(), TcpFlags::SYN | TcpFlags::ACK)
            .with_seq(500)
            .with_ack(101);
        let mut out = Vec::new();
        assert!(!slot.on_packet(&synack, &mut out));
        assert_eq!(out.len(), 2);
        assert_eq!(out[1].payload_len, 600);

        // Server ACKs the request (ignored), sends response, FIN.
        out.clear();
        let resp = Packet::new(syn.flow.reversed(), TcpFlags::PSH | TcpFlags::ACK)
            .with_seq(501)
            .with_ack(701)
            .with_payload(1_200);
        slot.on_packet(&resp, &mut out);
        assert!(out.is_empty(), "delayed ACK: no reply to data alone");
        let fin = Packet::new(syn.flow.reversed(), TcpFlags::FIN | TcpFlags::ACK)
            .with_seq(1_701)
            .with_ack(701);
        slot.on_packet(&fin, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].flags.fin() && out[0].flags.ack());
        assert_eq!(out[0].ack, 1_702, "acks response + FIN");

        // Server's final ACK completes the exchange.
        let last = Packet::new(syn.flow.reversed(), TcpFlags::ACK)
            .with_seq(1_702)
            .with_ack(out[0].seq.wrapping_add(1));
        assert!(slot.on_packet(&last, &mut Vec::new()));
        assert_eq!(slot.completed, 1);
        assert!(slot.idle());
    }

    #[test]
    fn client_hold_parks_then_releases_fin() {
        let mut slot = ClientSlot::new(CLIENT, SERVER, 80, 600, 1);
        slot.set_session(600, 1, true);
        slot.set_hold(true);
        let syn = slot.start(100);
        let rev = syn.flow.reversed();
        let mut out = Vec::new();
        let synack = Packet::new(rev, TcpFlags::SYN | TcpFlags::ACK)
            .with_seq(500)
            .with_ack(101);
        assert!(!slot.on_packet(&synack, &mut out));
        out.clear();

        // Last response arrives: the slot parks instead of closing.
        let resp = Packet::new(rev, TcpFlags::PSH | TcpFlags::ACK)
            .with_seq(501)
            .with_ack(701)
            .with_payload(1_200);
        assert!(!slot.on_packet(&resp, &mut out));
        assert!(out.is_empty(), "parked: no FIN on the wire yet");
        assert!(slot.take_hold_started());
        assert!(!slot.take_hold_started(), "edge-triggered");
        assert!(!slot.idle(), "the connection is still open");

        // The driver releases the hold: our FIN goes out.
        assert!(slot.release_hold(&mut out));
        assert_eq!(out.len(), 1);
        assert!(out[0].flags.fin());
        out.clear();
        assert!(!slot.release_hold(&mut out), "hold already released");

        // Server FINs back; the close handshake completes the session.
        let fin = Packet::new(rev, TcpFlags::FIN | TcpFlags::ACK)
            .with_seq(1_701)
            .with_ack(702);
        assert!(slot.on_packet(&fin, &mut out));
        assert_eq!(slot.completed, 1);
        assert!(slot.idle());
    }

    #[test]
    fn server_fin_during_hold_closes_cleanly() {
        let mut slot = ClientSlot::new(CLIENT, SERVER, 80, 600, 1);
        slot.set_hold(true);
        slot.set_session(600, 1, true);
        let syn = slot.start(100);
        let rev = syn.flow.reversed();
        let mut out = Vec::new();
        slot.on_packet(
            &Packet::new(rev, TcpFlags::SYN | TcpFlags::ACK)
                .with_seq(500)
                .with_ack(101),
            &mut out,
        );
        out.clear();
        slot.on_packet(
            &Packet::new(rev, TcpFlags::PSH | TcpFlags::ACK)
                .with_seq(501)
                .with_ack(701)
                .with_payload(1_200),
            &mut out,
        );
        assert!(slot.take_hold_started());

        // The server closes under the hold: FIN back, await final ACK.
        out.clear();
        let fin = Packet::new(rev, TcpFlags::FIN | TcpFlags::ACK)
            .with_seq(1_701)
            .with_ack(701);
        assert!(!slot.on_packet(&fin, &mut out));
        assert_eq!(out.len(), 1);
        assert!(out[0].flags.fin() && out[0].flags.ack());
        let last = Packet::new(rev, TcpFlags::ACK)
            .with_seq(1_702)
            .with_ack(out[0].seq.wrapping_add(1));
        assert!(slot.on_packet(&last, &mut Vec::new()));
        assert_eq!(slot.completed, 1);
    }

    #[test]
    fn client_rotates_source_ports() {
        let mut slot = ClientSlot::new(CLIENT, SERVER, 80, 600, 1);
        let a = slot.start(1);
        slot.state = ClientState::Idle;
        let b = slot.start(1);
        assert_ne!(a.flow.src_port, b.flow.src_port);
    }

    #[test]
    fn client_handles_rst() {
        let mut slot = ClientSlot::new(CLIENT, SERVER, 80, 600, 1);
        let syn = slot.start(7);
        let rst = Packet::new(syn.flow.reversed(), TcpFlags::RST);
        assert!(slot.on_packet(&rst, &mut Vec::new()));
        assert_eq!(slot.resets, 1);
        assert!(slot.idle());
    }

    #[test]
    fn backend_serves_request_then_fin() {
        let mut be = Backend::new(BACKEND, 80, 1_200);
        let flow = FlowTuple::new(SERVER, 40_000, BACKEND, 80);
        let mut out = Vec::new();

        be.on_packet(
            &Packet::new(flow, TcpFlags::SYN).with_seq(10),
            900,
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert!(out[0].flags.syn() && out[0].flags.ack());

        out.clear();
        be.on_packet(
            &Packet::new(flow, TcpFlags::ACK).with_seq(11).with_ack(901),
            0,
            &mut out,
        );
        assert!(out.is_empty());

        be.on_packet(
            &Packet::new(flow, TcpFlags::PSH | TcpFlags::ACK)
                .with_seq(11)
                .with_ack(901)
                .with_payload(600),
            0,
            &mut out,
        );
        assert_eq!(out.len(), 2, "response + FIN");
        assert_eq!(out[0].payload_len, 1_200);
        assert!(out[1].flags.fin());
        assert_eq!(be.served, 1);

        // Proxy's FIN ends it.
        out.clear();
        be.on_packet(
            &Packet::new(flow, TcpFlags::FIN | TcpFlags::ACK)
                .with_seq(611)
                .with_ack(out.len() as u32), // ack value unused by the model
            0,
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert!(out[0].flags.ack());
        assert_eq!(be.open_conns(), 0);
    }

    #[test]
    fn crashed_backend_rsts_everything_and_heals_empty() {
        let mut be = Backend::new(BACKEND, 80, 1_200);
        let flow = FlowTuple::new(SERVER, 40_000, BACKEND, 80);
        let mut out = Vec::new();

        // Establish a connection, then crash under it.
        be.on_packet(
            &Packet::new(flow, TcpFlags::SYN).with_seq(10),
            900,
            &mut out,
        );
        assert_eq!(be.open_conns(), 1);
        be.crash();
        assert!(be.is_down());
        assert_eq!(be.open_conns(), 0, "crash wipes connection state");

        out.clear();
        be.on_packet(
            &Packet::new(flow, TcpFlags::SYN).with_seq(50),
            901,
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert!(out[0].flags.rst(), "new SYN refused with RST");

        out.clear();
        be.on_packet(
            &Packet::new(flow, TcpFlags::PSH | TcpFlags::ACK)
                .with_seq(11)
                .with_ack(901)
                .with_payload(600),
            0,
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert!(out[0].flags.rst(), "old-connection data refused with RST");

        out.clear();
        be.on_packet(&Packet::new(flow, TcpFlags::RST).with_seq(11), 0, &mut out);
        assert!(out.is_empty(), "nothing answers an RST with an RST");

        be.heal();
        out.clear();
        be.on_packet(
            &Packet::new(flow, TcpFlags::SYN).with_seq(99),
            902,
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert!(
            out[0].flags.syn() && out[0].flags.ack(),
            "healed: accepts again"
        );
    }

    #[test]
    fn keep_alive_backend_serves_repeat_requests_without_fin() {
        let mut be = Backend::new(BACKEND, 80, 1_200).with_keep_alive(true);
        let flow = FlowTuple::new(SERVER, 41_000, BACKEND, 80);
        let mut out = Vec::new();

        be.on_packet(
            &Packet::new(flow, TcpFlags::SYN).with_seq(10),
            900,
            &mut out,
        );
        out.clear();
        be.on_packet(
            &Packet::new(flow, TcpFlags::PSH | TcpFlags::ACK)
                .with_seq(11)
                .with_ack(901)
                .with_payload(600),
            0,
            &mut out,
        );
        assert_eq!(out.len(), 1, "response only, no FIN");
        assert_eq!(out[0].payload_len, 1_200);
        assert!(!out[0].flags.fin());
        assert_eq!(be.open_conns(), 1, "connection stays pooled");

        // A second request on the same connection is served too.
        out.clear();
        be.on_packet(
            &Packet::new(flow, TcpFlags::PSH | TcpFlags::ACK)
                .with_seq(611)
                .with_ack(2_101)
                .with_payload(600),
            0,
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(be.served, 2);

        // The proxy closes first; the backend FINs back and forgets.
        out.clear();
        be.on_packet(
            &Packet::new(flow, TcpFlags::FIN | TcpFlags::ACK)
                .with_seq(1_211)
                .with_ack(3_301),
            0,
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert!(out[0].flags.fin() && out[0].flags.ack());
        assert_eq!(be.open_conns(), 0);
    }
}
