//! The HAProxy-like proxy worker.
//!
//! For every client connection accepted, the proxy opens an **active**
//! connection to a backend, forwards the request, relays the response
//! back, and closes both sides. Active connections are the workload
//! that exposes the paper's active-connection locality problem: the
//! backend's reply packets land wherever the NIC hashes them unless
//! Receive Flow Deliver steers them home.
//!
//! With [`Proxy::with_keep_alive`] the client side stays open across
//! requests (each request still opens a fresh backend connection, as
//! HAProxy's default `http-server-close` mode does); the client closes
//! first, exactly like the keep-alive web server.
//!
//! With [`Proxy::with_edge`] the proxy becomes a resilient edge tier:
//! the client's first payload carries an SNI-like token selecting a
//! weighted backend *pool*, per-backend health is tracked from active
//! probes and passive connection errors, failed requests retry with
//! jittered exponential backoff against the next healthy backend, and
//! idle backend connections are pooled for reuse. See [`crate::edge`]
//! for the mechanism layer.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};
use sim_core::{Cycles, SimRng};
use sim_load::{BackoffPolicy, SizeDist};
use sim_os::epoll::EpollEvent;
use sim_os::fdtable::{Fd, FdTable};
use tcp_stack::SockId;

use crate::edge::{EdgeConfig, EdgeCounters, HealthTracker, WeightedRr};
use crate::sys::{Sys, Worker, LISTEN_TOKEN};

/// The `client` link of a pooled (idle) backend connection. Client
/// tokens count up from 0, so the sentinel is unreachable.
const IDLE_CLIENT: u64 = u64::MAX;

/// Proxy tuning.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProxyConfig {
    /// Client-facing service port.
    pub port: u16,
    /// Backend addresses, used round-robin.
    pub backends: Vec<Ipv4Addr>,
    /// Backend service port.
    pub backend_port: u16,
    /// Request length forwarded to the backend.
    pub request_len: u16,
    /// Response length relayed to the client.
    pub response_len: u16,
    /// User-level cycles per relay direction.
    pub app_work: Cycles,
    /// Maximum accepts per listen-readable event.
    pub accept_batch: u32,
}

impl Default for ProxyConfig {
    fn default() -> Self {
        ProxyConfig {
            port: 80,
            backends: vec![Ipv4Addr::new(10, 0, 0, 100), Ipv4Addr::new(10, 0, 0, 101)],
            backend_port: 80,
            request_len: 600,
            response_len: 1_200,
            app_work: 4_200,
            accept_batch: 4,
        }
    }
}

#[derive(Debug)]
enum Conn {
    /// A client-facing connection.
    Client {
        sock: SockId,
        fd: Fd,
        /// Token of the backend side once the request was relayed.
        backend: Option<u64>,
    },
    /// A backend-facing (active) connection.
    Backend {
        sock: SockId,
        fd: Fd,
        /// Client token served, or [`IDLE_CLIENT`] when pooled.
        client: u64,
        request_sent: bool,
        /// Index into the edge tier's backend list (0 without edge).
        backend_idx: usize,
        /// Socket allocation generation at connect time. Teardown can
        /// free the slot and a later connect can reuse it before this
        /// conn's last epoll event drains; a bare [`SockId`] would then
        /// alias the stranger. All edge-tier liveness checks are
        /// generation-checked for exactly this reason.
        gen: u64,
    },
    /// An active health probe (edge tier only).
    Probe {
        sock: SockId,
        fd: Fd,
        backend_idx: usize,
        /// Socket generation at connect time (see [`Conn::Backend`]).
        gen: u64,
    },
}

/// Edge-tier view of one backend: health, pooled idle connections, and
/// the in-flight probe.
#[derive(Debug)]
struct EdgeBackend {
    ip: Ipv4Addr,
    health: HealthTracker,
    /// Tokens of pooled idle connections (most-recently-idled last).
    idle: Vec<u64>,
    /// Token of the in-flight health probe, if any.
    probe: Option<u64>,
}

/// One SNI-routed pool: member indices into the backend list plus the
/// smooth weighted round-robin scheduler over them.
#[derive(Debug)]
struct PoolState {
    members: Vec<usize>,
    weights: Vec<u32>,
    rr: WeightedRr,
}

/// A client request waiting out its backoff before re-dispatch.
#[derive(Debug)]
struct PendingRetry {
    due: Cycles,
    client: u64,
}

/// Where a client request currently stands in the routing state
/// machine: its pool, how many dispatch attempts it has burned, and
/// the backend the last attempt went to (for failover accounting).
#[derive(Debug, Clone, Copy)]
struct RouteState {
    pool: usize,
    attempt: u8,
    last_backend: usize,
}

/// The edge tier bolted onto a proxy worker by [`Proxy::with_edge`].
#[derive(Debug)]
struct EdgeState {
    cfg: EdgeConfig,
    rng: SimRng,
    backoff: BackoffPolicy,
    backends: Vec<EdgeBackend>,
    pools: Vec<PoolState>,
    /// Requests waiting out their backoff, released on ticks in
    /// insertion order (deterministic).
    retries: Vec<PendingRetry>,
    /// Routing state per live client token.
    route: HashMap<u64, RouteState>,
    counters: EdgeCounters,
}

/// One HAProxy-like worker process.
#[derive(Debug)]
pub struct Proxy {
    config: ProxyConfig,
    fds: FdTable<SockId>,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    rr: usize,
    served: u64,
    /// Keep client connections open across requests (the client closes).
    keep_alive: bool,
    /// Per-response size sampling (open-loop heavy-tailed workloads);
    /// `None` relays the fixed `config.response_len`.
    response_sizer: Option<(SizeDist, SimRng)>,
    /// Bulk mode: backend responses stream in over many segments and
    /// are relayed chunk-by-chunk through the data plane; the client
    /// side closes when the backend's FIN arrives.
    bulk: bool,
    /// The edge tier, when armed via [`Proxy::with_edge`].
    edge: Option<EdgeState>,
    /// Backend connects that failed (port exhaustion).
    pub connect_failures: u64,
}

impl Proxy {
    /// Creates a worker.
    pub fn new(config: ProxyConfig) -> Self {
        Proxy {
            config,
            fds: FdTable::new(1 << 20),
            conns: HashMap::new(),
            next_token: 0,
            rr: 0,
            served: 0,
            keep_alive: false,
            response_sizer: None,
            bulk: false,
            edge: None,
            connect_failures: 0,
        }
    }

    /// Arms the edge tier (builder style): SNI-routed weighted pools,
    /// health checks, failover retries and connection pooling. `rng`
    /// must be a per-worker forked stream so retry jitter is
    /// deterministic per seed yet decorrelated across workers.
    pub fn with_edge(mut self, cfg: EdgeConfig, rng: SimRng) -> Self {
        cfg.validate();
        let union = cfg.union_backends();
        let backends: Vec<EdgeBackend> = union
            .iter()
            .map(|&ip| EdgeBackend {
                ip,
                health: HealthTracker::new(cfg.fail_threshold, cfg.success_threshold),
                idle: Vec::new(),
                probe: None,
            })
            .collect();
        let pools: Vec<PoolState> = cfg
            .pools
            .iter()
            .map(|p| {
                let members: Vec<usize> = p
                    .backends
                    .iter()
                    .map(|b| union.iter().position(|&ip| ip == b.ip).expect("union"))
                    .collect();
                let weights: Vec<u32> = p.backends.iter().map(|b| b.weight).collect();
                let rr = WeightedRr::new(members.len());
                PoolState {
                    members,
                    weights,
                    rr,
                }
            })
            .collect();
        let backoff = BackoffPolicy::new(cfg.retry_base, cfg.retry_cap_shift);
        self.edge = Some(EdgeState {
            cfg,
            rng,
            backoff,
            backends,
            pools,
            retries: Vec::new(),
            route: HashMap::new(),
            counters: EdgeCounters::default(),
        });
        self
    }

    /// Relays backend responses as streamed chunks through the data
    /// plane (builder style); requires `StackConfig::cc` to be armed.
    pub fn with_bulk(mut self, on: bool) -> Self {
        self.bulk = on;
        self
    }

    /// Serves multiple requests per client connection (builder style):
    /// after each relayed response the client side stays open and the
    /// next request opens a fresh backend connection.
    pub fn with_keep_alive(mut self, on: bool) -> Self {
        self.keep_alive = on;
        self
    }

    /// Samples relayed response sizes from `dist` (with a
    /// worker-private RNG) instead of the fixed configured length
    /// (builder style).
    pub fn with_response_sizer(mut self, dist: SizeDist, rng: SimRng) -> Self {
        self.response_sizer = Some((dist, rng));
        self
    }

    fn response_len(&mut self) -> u16 {
        match &mut self.response_sizer {
            Some((dist, rng)) => dist.sample(rng),
            None => self.config.response_len,
        }
    }

    fn token(&mut self) -> u64 {
        let t = self.next_token;
        self.next_token += 1;
        t
    }

    fn accept_loop(&mut self, sys: &mut Sys<'_>) {
        for _ in 0..self.config.accept_batch {
            let Some(sock) = sys.accept(self.config.port) else {
                break;
            };
            let fd = self.fds.alloc(sock).expect("fd limit");
            let token = self.token();
            sys.register(sock, token);
            self.conns.insert(
                token,
                Conn::Client {
                    sock,
                    fd,
                    backend: None,
                },
            );
            if sys.rx_pending(sock) > 0 {
                self.on_client_readable(sys, token);
            }
        }
        if sys.accept_ready(self.config.port) {
            sys.repoll_listen();
        }
    }

    fn on_client_readable(&mut self, sys: &mut Sys<'_>, token: u64) {
        let (sock, has_backend) = match self.conns.get(&token) {
            Some(Conn::Client { sock, backend, .. }) => (*sock, backend.is_some()),
            _ => return,
        };
        if !sys.alive(sock) {
            self.drop_conn(sys, token, false);
            return;
        }
        let bytes = sys.recv(sock);
        if bytes == 0 {
            if sys.peer_fin(sock) && !has_backend {
                // Client gave up before sending a request.
                self.drop_conn(sys, token, true);
            }
            return;
        }
        if has_backend {
            return; // pipelined bytes after the request: ignore
        }
        sys.work(self.config.app_work);
        if self.edge.is_some() {
            // SNI routing: the first payload's server-name token (the
            // per-connection flow hash — packets carry no bytes in the
            // model) selects the pool; dispatch picks the backend.
            let e = self.edge.as_mut().expect("edge armed");
            let pool = (sys.flow_hash(sock) % e.pools.len() as u64) as usize;
            e.route.insert(
                token,
                RouteState {
                    pool,
                    attempt: 0,
                    last_backend: usize::MAX,
                },
            );
            self.edge_dispatch(sys, token);
            return;
        }
        // Open the active connection to a backend.
        let dst = self.config.backends[self.rr % self.config.backends.len()];
        self.rr += 1;
        let Some(bsock) = sys.connect(dst, self.config.backend_port) else {
            self.connect_failures += 1;
            self.drop_conn(sys, token, true);
            return;
        };
        let bfd = self.fds.alloc(bsock).expect("fd limit");
        let btoken = self.token();
        sys.register(bsock, btoken);
        self.conns.insert(
            btoken,
            Conn::Backend {
                sock: bsock,
                fd: bfd,
                client: token,
                request_sent: false,
                backend_idx: 0,
                gen: sys.sock_gen(bsock),
            },
        );
        if let Some(Conn::Client { backend, .. }) = self.conns.get_mut(&token) {
            *backend = Some(btoken);
        }
    }

    /// Dispatches (or re-dispatches) a routed client request: picks a
    /// healthy backend from its pool by smooth weighted round-robin,
    /// reusing a pooled idle connection when one is available, else
    /// opening a fresh one. No healthy backend or a failed connect
    /// counts as an attempt and goes through the retry policy.
    fn edge_dispatch(&mut self, sys: &mut Sys<'_>, client: u64) {
        let e = self.edge.as_mut().expect("edge armed");
        let Some(route) = e.route.get(&client).copied() else {
            return; // client vanished while queued
        };
        let pool = &mut e.pools[route.pool];
        let healthy: Vec<bool> = pool
            .members
            .iter()
            .map(|&b| e.backends[b].health.is_up())
            .collect();
        let weights = pool.weights.clone();
        let Some(slot) = pool.rr.pick(&weights, &healthy) else {
            // Whole pool down: burn the attempt, back off, retry.
            self.edge_retry_or_lose(sys, client);
            return;
        };
        let bidx = pool.members[slot];
        if route.attempt > 0 && route.last_backend != bidx {
            e.counters.failed_over += 1;
        }
        if let Some(r) = e.route.get_mut(&client) {
            r.last_backend = bidx;
        }
        // Prefer a pooled idle connection (skipping any that died).
        while let Some(btoken) = self.edge.as_mut().expect("edge").backends[bidx].idle.pop() {
            let alive = match self.conns.get(&btoken) {
                Some(Conn::Backend { sock, gen, .. }) => sys.alive_gen(*sock, *gen),
                _ => false,
            };
            if !alive {
                self.drop_conn(sys, btoken, false);
                continue;
            }
            let Some(Conn::Backend {
                sock,
                client: owner,
                request_sent,
                ..
            }) = self.conns.get_mut(&btoken)
            else {
                unreachable!("checked above");
            };
            *owner = client;
            *request_sent = true;
            let bsock = *sock;
            let e = self.edge.as_mut().expect("edge");
            e.counters.reused_conns += 1;
            if let Some(Conn::Client { backend, .. }) = self.conns.get_mut(&client) {
                *backend = Some(btoken);
            }
            // Already established: the request goes out immediately.
            sys.send(bsock, self.config.request_len);
            return;
        }
        let ip = self.edge.as_ref().expect("edge").backends[bidx].ip;
        let Some(bsock) = sys.connect(ip, self.config.backend_port) else {
            self.connect_failures += 1;
            self.edge_retry_or_lose(sys, client);
            return;
        };
        let bfd = self.fds.alloc(bsock).expect("fd limit");
        let btoken = self.token();
        sys.register(bsock, btoken);
        self.conns.insert(
            btoken,
            Conn::Backend {
                sock: bsock,
                fd: bfd,
                client,
                request_sent: false,
                backend_idx: bidx,
                gen: sys.sock_gen(bsock),
            },
        );
        if let Some(Conn::Client { backend, .. }) = self.conns.get_mut(&client) {
            *backend = Some(btoken);
        }
    }

    /// One dispatch attempt failed: schedule a backoff-jittered retry
    /// if the client's budget allows, else count the request lost and
    /// drop the client connection (it will be reset by its timeout).
    fn edge_retry_or_lose(&mut self, sys: &mut Sys<'_>, client: u64) {
        let e = self.edge.as_mut().expect("edge armed");
        let Some(route) = e.route.get_mut(&client) else {
            return;
        };
        if route.attempt < e.cfg.retry_budget {
            let attempt = route.attempt;
            route.attempt += 1;
            let delay = e.backoff.delay(attempt, &mut e.rng);
            e.counters.retried += 1;
            e.retries.push(PendingRetry {
                due: sys.now() + delay,
                client,
            });
        } else {
            e.counters.lost += 1;
            self.drop_conn(sys, client, true);
        }
    }

    /// Passive health signal plus failover: a backend connection died
    /// under a live request. Marks the backend, then retries the
    /// client within its budget.
    fn edge_backend_failed(&mut self, sys: &mut Sys<'_>, btoken: u64) {
        let (client, bidx) = match self.conns.get(&btoken) {
            Some(Conn::Backend {
                client,
                backend_idx,
                ..
            }) => (*client, *backend_idx),
            _ => return,
        };
        let e = self.edge.as_mut().expect("edge armed");
        e.backends[bidx].health.on_failure();
        e.backends[bidx].idle.retain(|&t| t != btoken);
        self.drop_conn(sys, btoken, false);
        if client == IDLE_CLIENT {
            return; // a pooled conn died: nothing to retry
        }
        if let Some(Conn::Client { backend, .. }) = self.conns.get_mut(&client) {
            *backend = None;
        }
        self.edge_retry_or_lose(sys, client);
    }

    /// A request finished on a backend connection: either pool it for
    /// reuse (keep-alive backends, pooling armed) or close it.
    fn edge_release_backend(&mut self, sys: &mut Sys<'_>, btoken: u64) {
        let e = self.edge.as_mut().expect("edge armed");
        let cap = e.cfg.pooling as usize;
        let (bidx, alive) = match self.conns.get(&btoken) {
            Some(Conn::Backend {
                sock,
                backend_idx,
                gen,
                ..
            }) => (*backend_idx, sys.alive_gen(*sock, *gen)),
            _ => return,
        };
        let e = self.edge.as_mut().expect("edge");
        if cap > 0
            && alive
            && e.backends[bidx].idle.len() < cap
            && !e.backends[bidx].idle.contains(&btoken)
        {
            e.backends[bidx].idle.push(btoken);
            if let Some(Conn::Backend {
                client,
                request_sent,
                ..
            }) = self.conns.get_mut(&btoken)
            {
                *client = IDLE_CLIENT;
                *request_sent = false;
            }
        } else {
            self.drop_conn(sys, btoken, true);
        }
    }

    /// Handles an event on a health-probe connection: writability means
    /// the handshake completed (probe success); a torn-down socket
    /// means the backend refused or timed out (probe failure). The
    /// liveness check is generation-checked: a refused probe's error
    /// event can drain *after* the socket slot was reused by a fresh
    /// connection, and a bare slot check would mistake the stranger for
    /// a live probe and wedge the probe slot forever.
    fn on_probe_event(&mut self, sys: &mut Sys<'_>, token: u64, ev: &EpollEvent) {
        let (sock, bidx, gen) = match self.conns.get(&token) {
            Some(Conn::Probe {
                sock,
                backend_idx,
                gen,
                ..
            }) => (*sock, *backend_idx, *gen),
            _ => return,
        };
        if !sys.alive_gen(sock, gen) {
            let e = self.edge.as_mut().expect("edge armed");
            e.counters.probe_failures += 1;
            e.backends[bidx].health.on_failure();
            e.backends[bidx].probe = None;
            self.drop_conn(sys, token, false);
            return;
        }
        if ev.writable {
            let e = self.edge.as_mut().expect("edge armed");
            if e.backends[bidx].health.on_success() {
                e.counters.readmissions += 1;
            }
            e.backends[bidx].probe = None;
            self.drop_conn(sys, token, true);
        }
    }

    /// The edge tier's timed duties, run at the probe interval:
    /// release due retries (in insertion order) and launch one active
    /// probe per backend without one in flight.
    fn edge_tick(&mut self, sys: &mut Sys<'_>) {
        if self.edge.is_none() {
            return;
        }
        let now = sys.now();
        // Release due retries first: a re-dispatch may pick a backend
        // this tick's probes are about to re-admit — next tick's work.
        let due: Vec<u64> = {
            let e = self.edge.as_mut().expect("edge armed");
            let mut due = Vec::new();
            let mut keep = Vec::with_capacity(e.retries.len());
            for r in e.retries.drain(..) {
                if r.due <= now {
                    due.push(r.client);
                } else {
                    keep.push(r);
                }
            }
            e.retries = keep;
            due
        };
        for client in due {
            let live = matches!(
                self.conns.get(&client),
                Some(Conn::Client { sock, .. }) if sys.alive(*sock)
            );
            if live {
                self.edge_dispatch(sys, client);
            } else {
                // Client reset or timed out while we backed off.
                self.edge.as_mut().expect("edge").route.remove(&client);
            }
        }
        let n = self.edge.as_ref().expect("edge armed").backends.len();
        for bidx in 0..n {
            if self.edge.as_ref().expect("edge").backends[bidx]
                .probe
                .is_some()
            {
                continue;
            }
            let ip = self.edge.as_ref().expect("edge").backends[bidx].ip;
            let Some(psock) = sys.connect(ip, self.config.backend_port) else {
                continue; // ephemeral ports exhausted: skip this round
            };
            let pfd = self.fds.alloc(psock).expect("fd limit");
            let ptoken = self.token();
            sys.register(psock, ptoken);
            self.conns.insert(
                ptoken,
                Conn::Probe {
                    sock: psock,
                    fd: pfd,
                    backend_idx: bidx,
                    gen: sys.sock_gen(psock),
                },
            );
            let e = self.edge.as_mut().expect("edge");
            e.backends[bidx].probe = Some(ptoken);
            e.counters.probes_sent += 1;
        }
    }

    fn on_backend_event(&mut self, sys: &mut Sys<'_>, token: u64, ev: &EpollEvent) {
        let (sock, client, request_sent, gen) = match self.conns.get(&token) {
            Some(Conn::Backend {
                sock,
                client,
                request_sent,
                gen,
                ..
            }) => (*sock, *client, *request_sent, *gen),
            _ => return,
        };
        // Generation-checked in edge mode: a crashed backend's RST can
        // free the slot for reuse before this conn's error event drains
        // (see `on_probe_event`). The plain proxy keeps the bare check:
        // without error events a dead socket delivers nothing late.
        let alive = if self.edge.is_some() {
            sys.alive_gen(sock, gen)
        } else {
            sys.alive(sock)
        };
        if !alive {
            if self.edge.is_some() {
                // RST from a crashed backend, or retransmission gave
                // up: a passive health signal plus a failover retry.
                self.edge_backend_failed(sys, token);
            } else {
                self.drop_conn(sys, token, false);
            }
            return;
        }
        if ev.writable && !request_sent {
            // Connection to the backend established: forward the request.
            sys.send(sock, self.config.request_len);
            if let Some(Conn::Backend { request_sent, .. }) = self.conns.get_mut(&token) {
                *request_sent = true;
            }
        }
        if ev.readable && self.bulk {
            // Streamed relay: forward every drained chunk to the client
            // immediately; the response is done when the backend's FIN
            // arrives behind its last byte.
            let bytes = sys.recv(sock);
            if bytes > 0 {
                sys.work(self.config.app_work);
                let client_sock = match self.conns.get(&client) {
                    Some(Conn::Client { sock, .. }) => Some(*sock),
                    _ => None,
                };
                if let Some(cs) = client_sock {
                    sys.send_bulk(cs, bytes);
                }
            }
            if sys.peer_fin(sock) {
                self.served += 1;
                let client_sock = match self.conns.get(&client) {
                    Some(Conn::Client { sock, .. }) => Some(*sock),
                    _ => None,
                };
                if let Some(cs) = client_sock {
                    if self.keep_alive && !sys.peer_fin(cs) {
                        if let Some(Conn::Client { backend, .. }) = self.conns.get_mut(&client) {
                            *backend = None;
                        }
                    } else {
                        self.drop_conn(sys, client, true);
                    }
                }
                self.drop_conn(sys, token, true);
            }
            return;
        }
        if ev.readable {
            let bytes = sys.recv(sock);
            if bytes > 0 {
                // Relay the response to the client; without keep-alive
                // that side closes, with keep-alive it stays open for
                // the next request (which gets a fresh backend).
                sys.work(self.config.app_work);
                let client_sock = match self.conns.get(&client) {
                    Some(Conn::Client { sock, .. }) => Some(*sock),
                    _ => None,
                };
                if let Some(cs) = client_sock {
                    let len = self.response_len();
                    sys.send(cs, len);
                    self.served += 1;
                    if let Some(e) = &mut self.edge {
                        e.route.remove(&client); // request fulfilled
                    }
                    if self.keep_alive && !sys.peer_fin(cs) {
                        if let Some(Conn::Client { backend, .. }) = self.conns.get_mut(&client) {
                            *backend = None;
                        }
                    } else {
                        self.drop_conn(sys, client, true);
                    }
                }
                if self.edge.is_some() && !sys.peer_fin(sock) {
                    // Keep-alive backend: no FIN follows the response —
                    // pool the connection (or close it) right away.
                    self.edge_release_backend(sys, token);
                    return;
                }
            }
            if sys.peer_fin(sock) {
                // Backend closed after responding; close our side too.
                self.drop_conn(sys, token, true);
            }
        }
    }

    /// Removes a connection; `close` additionally issues the `close()`
    /// syscall (skipped when the socket was already reset). Edge-tier
    /// bookkeeping (routes, idle pools, probe slots) is scrubbed of the
    /// dropped token.
    fn drop_conn(&mut self, sys: &mut Sys<'_>, token: u64, close: bool) {
        if let Some(conn) = self.conns.remove(&token) {
            let (sock, fd, gen) = match conn {
                Conn::Client { sock, fd, .. } => {
                    if let Some(e) = &mut self.edge {
                        e.route.remove(&token);
                    }
                    (sock, fd, None)
                }
                Conn::Backend {
                    sock,
                    fd,
                    backend_idx,
                    gen,
                    ..
                } => {
                    if let Some(e) = &mut self.edge {
                        e.backends[backend_idx].idle.retain(|&t| t != token);
                    }
                    (sock, fd, Some(gen))
                }
                Conn::Probe {
                    sock,
                    fd,
                    backend_idx,
                    gen,
                } => {
                    if let Some(e) = &mut self.edge {
                        if e.backends[backend_idx].probe == Some(token) {
                            e.backends[backend_idx].probe = None;
                        }
                    }
                    (sock, fd, Some(gen))
                }
            };
            // A gen-carrying conn must never close a reused slot: the
            // socket living there now belongs to someone else.
            if close && gen.map_or_else(|| sys.alive(sock), |g| sys.alive_gen(sock, g)) {
                sys.close(sock);
            }
            let _ = self.fds.close(fd);
        }
    }
}

impl Worker for Proxy {
    fn on_events(&mut self, sys: &mut Sys<'_>, events: &[EpollEvent]) {
        for ev in events {
            if ev.data == LISTEN_TOKEN {
                self.accept_loop(sys);
                continue;
            }
            match self.conns.get(&ev.data) {
                Some(Conn::Client { .. }) if ev.readable => {
                    self.on_client_readable(sys, ev.data);
                }
                Some(Conn::Backend { .. }) => self.on_backend_event(sys, ev.data, ev),
                Some(Conn::Probe { .. }) => self.on_probe_event(sys, ev.data, ev),
                _ => {} // client write-readiness, or a stale token
            }
        }
    }

    fn on_tick(&mut self, sys: &mut Sys<'_>) {
        self.edge_tick(sys);
    }

    fn edge_counters(&self) -> Option<EdgeCounters> {
        self.edge.as_ref().map(|e| e.counters)
    }

    fn open_conns(&self) -> usize {
        self.conns.len()
    }

    fn served(&self) -> u64 {
        self.served
    }
}
