//! The HAProxy-like proxy worker.
//!
//! For every client connection accepted, the proxy opens an **active**
//! connection to a backend, forwards the request, relays the response
//! back, and closes both sides. Active connections are the workload
//! that exposes the paper's active-connection locality problem: the
//! backend's reply packets land wherever the NIC hashes them unless
//! Receive Flow Deliver steers them home.
//!
//! With [`Proxy::with_keep_alive`] the client side stays open across
//! requests (each request still opens a fresh backend connection, as
//! HAProxy's default `http-server-close` mode does); the client closes
//! first, exactly like the keep-alive web server.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};
use sim_core::{Cycles, SimRng};
use sim_load::SizeDist;
use sim_os::epoll::EpollEvent;
use sim_os::fdtable::{Fd, FdTable};
use tcp_stack::SockId;

use crate::sys::{Sys, Worker, LISTEN_TOKEN};

/// Proxy tuning.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProxyConfig {
    /// Client-facing service port.
    pub port: u16,
    /// Backend addresses, used round-robin.
    pub backends: Vec<Ipv4Addr>,
    /// Backend service port.
    pub backend_port: u16,
    /// Request length forwarded to the backend.
    pub request_len: u16,
    /// Response length relayed to the client.
    pub response_len: u16,
    /// User-level cycles per relay direction.
    pub app_work: Cycles,
    /// Maximum accepts per listen-readable event.
    pub accept_batch: u32,
}

impl Default for ProxyConfig {
    fn default() -> Self {
        ProxyConfig {
            port: 80,
            backends: vec![Ipv4Addr::new(10, 0, 0, 100), Ipv4Addr::new(10, 0, 0, 101)],
            backend_port: 80,
            request_len: 600,
            response_len: 1_200,
            app_work: 4_200,
            accept_batch: 4,
        }
    }
}

#[derive(Debug)]
enum Conn {
    /// A client-facing connection.
    Client {
        sock: SockId,
        fd: Fd,
        /// Token of the backend side once the request was relayed.
        backend: Option<u64>,
    },
    /// A backend-facing (active) connection.
    Backend {
        sock: SockId,
        fd: Fd,
        client: u64,
        request_sent: bool,
    },
}

/// One HAProxy-like worker process.
#[derive(Debug)]
pub struct Proxy {
    config: ProxyConfig,
    fds: FdTable<SockId>,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    rr: usize,
    served: u64,
    /// Keep client connections open across requests (the client closes).
    keep_alive: bool,
    /// Per-response size sampling (open-loop heavy-tailed workloads);
    /// `None` relays the fixed `config.response_len`.
    response_sizer: Option<(SizeDist, SimRng)>,
    /// Bulk mode: backend responses stream in over many segments and
    /// are relayed chunk-by-chunk through the data plane; the client
    /// side closes when the backend's FIN arrives.
    bulk: bool,
    /// Backend connects that failed (port exhaustion).
    pub connect_failures: u64,
}

impl Proxy {
    /// Creates a worker.
    pub fn new(config: ProxyConfig) -> Self {
        Proxy {
            config,
            fds: FdTable::new(1 << 20),
            conns: HashMap::new(),
            next_token: 0,
            rr: 0,
            served: 0,
            keep_alive: false,
            response_sizer: None,
            bulk: false,
            connect_failures: 0,
        }
    }

    /// Relays backend responses as streamed chunks through the data
    /// plane (builder style); requires `StackConfig::cc` to be armed.
    pub fn with_bulk(mut self, on: bool) -> Self {
        self.bulk = on;
        self
    }

    /// Serves multiple requests per client connection (builder style):
    /// after each relayed response the client side stays open and the
    /// next request opens a fresh backend connection.
    pub fn with_keep_alive(mut self, on: bool) -> Self {
        self.keep_alive = on;
        self
    }

    /// Samples relayed response sizes from `dist` (with a
    /// worker-private RNG) instead of the fixed configured length
    /// (builder style).
    pub fn with_response_sizer(mut self, dist: SizeDist, rng: SimRng) -> Self {
        self.response_sizer = Some((dist, rng));
        self
    }

    fn response_len(&mut self) -> u16 {
        match &mut self.response_sizer {
            Some((dist, rng)) => dist.sample(rng),
            None => self.config.response_len,
        }
    }

    fn token(&mut self) -> u64 {
        let t = self.next_token;
        self.next_token += 1;
        t
    }

    fn accept_loop(&mut self, sys: &mut Sys<'_>) {
        for _ in 0..self.config.accept_batch {
            let Some(sock) = sys.accept(self.config.port) else {
                break;
            };
            let fd = self.fds.alloc(sock).expect("fd limit");
            let token = self.token();
            sys.register(sock, token);
            self.conns.insert(
                token,
                Conn::Client {
                    sock,
                    fd,
                    backend: None,
                },
            );
            if sys.rx_pending(sock) > 0 {
                self.on_client_readable(sys, token);
            }
        }
        if sys.accept_ready(self.config.port) {
            sys.repoll_listen();
        }
    }

    fn on_client_readable(&mut self, sys: &mut Sys<'_>, token: u64) {
        let (sock, has_backend) = match self.conns.get(&token) {
            Some(Conn::Client { sock, backend, .. }) => (*sock, backend.is_some()),
            _ => return,
        };
        if !sys.alive(sock) {
            self.drop_conn(sys, token, false);
            return;
        }
        let bytes = sys.recv(sock);
        if bytes == 0 {
            if sys.peer_fin(sock) && !has_backend {
                // Client gave up before sending a request.
                self.drop_conn(sys, token, true);
            }
            return;
        }
        if has_backend {
            return; // pipelined bytes after the request: ignore
        }
        sys.work(self.config.app_work);
        // Open the active connection to a backend.
        let dst = self.config.backends[self.rr % self.config.backends.len()];
        self.rr += 1;
        let Some(bsock) = sys.connect(dst, self.config.backend_port) else {
            self.connect_failures += 1;
            self.drop_conn(sys, token, true);
            return;
        };
        let bfd = self.fds.alloc(bsock).expect("fd limit");
        let btoken = self.token();
        sys.register(bsock, btoken);
        self.conns.insert(
            btoken,
            Conn::Backend {
                sock: bsock,
                fd: bfd,
                client: token,
                request_sent: false,
            },
        );
        if let Some(Conn::Client { backend, .. }) = self.conns.get_mut(&token) {
            *backend = Some(btoken);
        }
    }

    fn on_backend_event(&mut self, sys: &mut Sys<'_>, token: u64, ev: &EpollEvent) {
        let (sock, client, request_sent) = match self.conns.get(&token) {
            Some(Conn::Backend {
                sock,
                client,
                request_sent,
                ..
            }) => (*sock, *client, *request_sent),
            _ => return,
        };
        if !sys.alive(sock) {
            self.drop_conn(sys, token, false);
            return;
        }
        if ev.writable && !request_sent {
            // Connection to the backend established: forward the request.
            sys.send(sock, self.config.request_len);
            if let Some(Conn::Backend { request_sent, .. }) = self.conns.get_mut(&token) {
                *request_sent = true;
            }
        }
        if ev.readable && self.bulk {
            // Streamed relay: forward every drained chunk to the client
            // immediately; the response is done when the backend's FIN
            // arrives behind its last byte.
            let bytes = sys.recv(sock);
            if bytes > 0 {
                sys.work(self.config.app_work);
                let client_sock = match self.conns.get(&client) {
                    Some(Conn::Client { sock, .. }) => Some(*sock),
                    _ => None,
                };
                if let Some(cs) = client_sock {
                    sys.send_bulk(cs, bytes);
                }
            }
            if sys.peer_fin(sock) {
                self.served += 1;
                let client_sock = match self.conns.get(&client) {
                    Some(Conn::Client { sock, .. }) => Some(*sock),
                    _ => None,
                };
                if let Some(cs) = client_sock {
                    if self.keep_alive && !sys.peer_fin(cs) {
                        if let Some(Conn::Client { backend, .. }) = self.conns.get_mut(&client) {
                            *backend = None;
                        }
                    } else {
                        self.drop_conn(sys, client, true);
                    }
                }
                self.drop_conn(sys, token, true);
            }
            return;
        }
        if ev.readable {
            let bytes = sys.recv(sock);
            if bytes > 0 {
                // Relay the response to the client; without keep-alive
                // that side closes, with keep-alive it stays open for
                // the next request (which gets a fresh backend).
                sys.work(self.config.app_work);
                let client_sock = match self.conns.get(&client) {
                    Some(Conn::Client { sock, .. }) => Some(*sock),
                    _ => None,
                };
                if let Some(cs) = client_sock {
                    let len = self.response_len();
                    sys.send(cs, len);
                    self.served += 1;
                    if self.keep_alive && !sys.peer_fin(cs) {
                        if let Some(Conn::Client { backend, .. }) = self.conns.get_mut(&client) {
                            *backend = None;
                        }
                    } else {
                        self.drop_conn(sys, client, true);
                    }
                }
            }
            if sys.peer_fin(sock) {
                // Backend closed after responding; close our side too.
                self.drop_conn(sys, token, true);
            }
        }
    }

    /// Removes a connection; `close` additionally issues the `close()`
    /// syscall (skipped when the socket was already reset).
    fn drop_conn(&mut self, sys: &mut Sys<'_>, token: u64, close: bool) {
        if let Some(conn) = self.conns.remove(&token) {
            let (sock, fd) = match conn {
                Conn::Client { sock, fd, .. } => (sock, fd),
                Conn::Backend { sock, fd, .. } => (sock, fd),
            };
            if close && sys.alive(sock) {
                sys.close(sock);
            }
            let _ = self.fds.close(fd);
        }
    }
}

impl Worker for Proxy {
    fn on_events(&mut self, sys: &mut Sys<'_>, events: &[EpollEvent]) {
        for ev in events {
            if ev.data == LISTEN_TOKEN {
                self.accept_loop(sys);
                continue;
            }
            match self.conns.get(&ev.data) {
                Some(Conn::Client { .. }) if ev.readable => {
                    self.on_client_readable(sys, ev.data);
                }
                Some(Conn::Backend { .. }) => self.on_backend_event(sys, ev.data, ev),
                _ => {} // client write-readiness, or a stale token
            }
        }
    }

    fn open_conns(&self) -> usize {
        self.conns.len()
    }

    fn served(&self) -> u64 {
        self.served
    }
}
