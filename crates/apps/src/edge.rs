//! Edge-tier resilience: weighted backend pools, health checks,
//! failover, and the knobs that drive them.
//!
//! The paper's 500K-cps short-connection storms are exactly the traffic
//! an edge/proxy tier faces, and surviving them takes more than peak
//! throughput: backends crash and flap, hostile flows spoof SYNs, and
//! the proxy must keep serving. This module holds the *mechanism*
//! layer, all pure state machines with no simulation dependencies:
//!
//! * [`EdgeConfig`] / [`PoolConfig`] / [`BackendSpec`] — named backend
//!   pools with per-member weights plus the health-check, retry and
//!   pooling knobs (embedded as `SimConfig::edge`);
//! * [`HealthTracker`] — the per-backend up/down state machine driven
//!   by active probes and passive connection errors, with
//!   consecutive-failure / consecutive-success thresholds;
//! * [`WeightedRr`] — nginx-style smooth weighted round-robin over the
//!   currently-healthy pool members (deterministic, no RNG);
//! * [`EdgeCounters`] — the proxy-side resilience counters surfaced
//!   through the run report's `netstat_ext` rows.
//!
//! The policy layer (how the proxy uses these) lives in
//! [`crate::proxy`]; the wire effects (RSTs from a crashed backend, the
//! XDP-style early-drop stage) live in the peer model and `sim-nic`.

use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};
use sim_core::Cycles;

/// One backend in a pool, with its load-balancing weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BackendSpec {
    /// Backend address (the driver instantiates a scripted peer here).
    pub ip: Ipv4Addr,
    /// Smooth-weighted-round-robin weight (≥ 1).
    pub weight: u32,
}

/// A named pool of weighted backends, selected by the SNI token of a
/// client's first payload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolConfig {
    /// Pool name (the SNI-token space maps onto pool indices).
    pub name: String,
    /// The pool's members.
    pub backends: Vec<BackendSpec>,
}

/// Edge-tier tuning, embedded as `SimConfig::edge`.
///
/// Arming this turns `crates/apps`' proxy into a resilient edge tier:
/// SNI-routed weighted pools, active health probes, passive
/// connection-error health signals, retry with jittered exponential
/// backoff, and optional backend connection pooling.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgeConfig {
    /// Backend pools; a client's SNI token selects one.
    pub pools: Vec<PoolConfig>,
    /// Active health-probe period, in cycles (also the granularity at
    /// which queued retries are released).
    pub probe_interval: Cycles,
    /// Consecutive failures (probe or passive) that mark a backend down.
    pub fail_threshold: u8,
    /// Consecutive probe successes that re-admit a down backend.
    pub success_threshold: u8,
    /// Retries granted per client request after its backend fails; 0
    /// disables failover retry entirely.
    pub retry_budget: u8,
    /// First-retry backoff ceiling, in cycles.
    pub retry_base: Cycles,
    /// Backoff stops doubling after this many attempts.
    pub retry_cap_shift: u8,
    /// Idle backend connections kept pooled per backend; 0 opens a
    /// fresh backend connection per request (HAProxy's
    /// `http-server-close` mode, the pre-edge behaviour).
    pub pooling: u32,
    /// Arms the XDP-style pre-steering drop stage in the NIC against
    /// the spoofed-source flood space.
    pub early_drop: bool,
}

impl Default for EdgeConfig {
    fn default() -> Self {
        EdgeConfig {
            pools: vec![
                PoolConfig {
                    name: "static".into(),
                    backends: vec![
                        BackendSpec {
                            ip: Ipv4Addr::new(10, 0, 0, 100),
                            weight: 2,
                        },
                        BackendSpec {
                            ip: Ipv4Addr::new(10, 0, 0, 101),
                            weight: 1,
                        },
                    ],
                },
                PoolConfig {
                    name: "api".into(),
                    backends: vec![
                        BackendSpec {
                            ip: Ipv4Addr::new(10, 0, 0, 102),
                            weight: 1,
                        },
                        BackendSpec {
                            ip: Ipv4Addr::new(10, 0, 0, 103),
                            weight: 1,
                        },
                    ],
                },
            ],
            // 0.5 ms at the simulated 2.7 GHz clock.
            probe_interval: 1_350_000,
            fail_threshold: 2,
            success_threshold: 2,
            retry_budget: 2,
            // 0.1 ms first-retry ceiling, capped at 1.6 ms.
            retry_base: 270_000,
            retry_cap_shift: 4,
            pooling: 4,
            early_drop: false,
        }
    }
}

impl EdgeConfig {
    /// Enables/disables the NIC early-drop stage (builder style).
    pub fn early_drop(mut self, on: bool) -> Self {
        self.early_drop = on;
        self
    }

    /// Sets the per-request retry budget (builder style).
    pub fn retry_budget(mut self, budget: u8) -> Self {
        self.retry_budget = budget;
        self
    }

    /// Sets the pooled idle connections per backend (builder style).
    pub fn pooling(mut self, n: u32) -> Self {
        self.pooling = n;
        self
    }

    /// Every backend address across all pools, deduplicated in
    /// first-seen order — the set of scripted peers the driver must
    /// instantiate, and the index space fault schedules address with
    /// `FaultKind::BackendCrash { backend }`.
    pub fn union_backends(&self) -> Vec<Ipv4Addr> {
        let mut out: Vec<Ipv4Addr> = Vec::new();
        for pool in &self.pools {
            for b in &pool.backends {
                if !out.contains(&b.ip) {
                    out.push(b.ip);
                }
            }
        }
        out
    }

    /// Validates the config: at least one pool, every pool non-empty,
    /// every weight ≥ 1, thresholds ≥ 1.
    ///
    /// # Panics
    ///
    /// Panics on any violated invariant (misconfiguration is a bench
    /// bug, not a runtime condition).
    pub fn validate(&self) {
        assert!(
            !self.pools.is_empty(),
            "edge config needs at least one pool"
        );
        assert!(self.fail_threshold >= 1, "fail_threshold must be >= 1");
        assert!(
            self.success_threshold >= 1,
            "success_threshold must be >= 1"
        );
        assert!(self.probe_interval > 0, "probe_interval must be positive");
        assert!(self.retry_base > 0, "retry_base must be positive");
        for pool in &self.pools {
            assert!(
                !pool.backends.is_empty(),
                "pool {:?} has no backends",
                pool.name
            );
            for b in &pool.backends {
                assert!(b.weight >= 1, "backend {} weight must be >= 1", b.ip);
            }
        }
    }
}

/// A backend's health as seen by one proxy worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HealthState {
    /// In rotation: eligible for routing.
    Up,
    /// Out of rotation: only probes go there.
    Down,
}

/// The per-backend health state machine: `fail_threshold` consecutive
/// failures (active probe or passive connection error) take a backend
/// out of rotation; `success_threshold` consecutive probe successes
/// re-admit it. A success resets the failure streak and vice versa, so
/// any probe/error sequence converges to the state its suffix demands.
#[derive(Debug, Clone)]
pub struct HealthTracker {
    state: HealthState,
    fails: u8,
    successes: u8,
    fail_threshold: u8,
    success_threshold: u8,
    /// Down→Up transitions (recovery re-admissions).
    pub readmissions: u64,
}

impl HealthTracker {
    /// Creates a tracker that starts `Up` (backends are presumed
    /// healthy until proven otherwise, as HAProxy does).
    ///
    /// # Panics
    ///
    /// Panics if either threshold is zero.
    pub fn new(fail_threshold: u8, success_threshold: u8) -> Self {
        assert!(fail_threshold >= 1, "fail_threshold must be >= 1");
        assert!(success_threshold >= 1, "success_threshold must be >= 1");
        HealthTracker {
            state: HealthState::Up,
            fails: 0,
            successes: 0,
            fail_threshold,
            success_threshold,
            readmissions: 0,
        }
    }

    /// Whether the backend is in rotation.
    pub fn is_up(&self) -> bool {
        self.state == HealthState::Up
    }

    /// Records a probe success (or any successful exchange). Returns
    /// `true` when this re-admits a down backend.
    pub fn on_success(&mut self) -> bool {
        self.fails = 0;
        match self.state {
            HealthState::Up => false,
            HealthState::Down => {
                self.successes = self.successes.saturating_add(1);
                if self.successes >= self.success_threshold {
                    self.state = HealthState::Up;
                    self.successes = 0;
                    self.readmissions += 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records a probe failure or passive connection error. Returns
    /// `true` when this takes an up backend out of rotation.
    pub fn on_failure(&mut self) -> bool {
        self.successes = 0;
        match self.state {
            HealthState::Down => false,
            HealthState::Up => {
                self.fails = self.fails.saturating_add(1);
                if self.fails >= self.fail_threshold {
                    self.state = HealthState::Down;
                    self.fails = 0;
                    true
                } else {
                    false
                }
            }
        }
    }
}

/// Nginx-style smooth weighted round-robin over a fixed member list,
/// restricted per pick to the currently-healthy members. Deterministic
/// (no RNG): each pick adds every healthy member's weight to its
/// running credit, selects the highest credit (ties to the lowest
/// index), and debits the winner by the total healthy weight — a
/// weight-2 member gets every other pick, not two in a row.
#[derive(Debug, Clone)]
pub struct WeightedRr {
    current: Vec<i64>,
}

impl WeightedRr {
    /// Creates a scheduler over `n` member slots.
    pub fn new(n: usize) -> Self {
        WeightedRr {
            current: vec![0; n],
        }
    }

    /// Picks the next member index among those with `healthy[i]`,
    /// or `None` when no member is healthy. `weights` and `healthy`
    /// must both have the scheduler's length.
    pub fn pick(&mut self, weights: &[u32], healthy: &[bool]) -> Option<usize> {
        assert_eq!(weights.len(), self.current.len());
        assert_eq!(healthy.len(), self.current.len());
        let total: i64 = weights
            .iter()
            .zip(healthy)
            .filter(|(_, &h)| h)
            .map(|(&w, _)| i64::from(w))
            .sum();
        if total == 0 {
            return None;
        }
        let mut best: Option<usize> = None;
        for i in 0..self.current.len() {
            if !healthy[i] {
                continue;
            }
            self.current[i] += i64::from(weights[i]);
            if best.is_none_or(|b| self.current[i] > self.current[b]) {
                best = Some(i);
            }
        }
        let b = best.expect("total > 0 implies a healthy member");
        self.current[b] -= total;
        Some(b)
    }
}

/// Per-worker resilience counters, merged machine-wide into the run
/// report's `EdgeReport` and surfaced as `netstat_ext` rows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgeCounters {
    /// Active health probes launched.
    pub probes_sent: u64,
    /// Probes that failed (RST, timeout abandonment, or connect error).
    pub probe_failures: u64,
    /// Client requests re-dispatched after a backend failure.
    pub retried: u64,
    /// Of `retried`, how many landed on a *different* backend.
    pub failed_over: u64,
    /// Client requests dropped with their retry budget exhausted (or
    /// budget 0) — the "requests lost" the acceptance gate scores.
    pub lost: u64,
    /// Down→Up health re-admissions observed.
    pub readmissions: u64,
    /// Requests served over a pooled (reused) backend connection.
    pub reused_conns: u64,
}

impl EdgeCounters {
    /// Folds another worker's counters into this one.
    pub fn merge(&mut self, o: &EdgeCounters) {
        self.probes_sent += o.probes_sent;
        self.probe_failures += o.probe_failures;
        self.retried += o.retried;
        self.failed_over += o.failed_over;
        self.lost += o.lost;
        self.readmissions += o.readmissions;
        self.reused_conns += o.reused_conns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        let cfg = EdgeConfig::default();
        cfg.validate();
        assert_eq!(cfg.pools.len(), 2);
        assert_eq!(cfg.union_backends().len(), 4);
    }

    #[test]
    fn union_backends_dedups_across_pools() {
        let shared = BackendSpec {
            ip: Ipv4Addr::new(10, 0, 0, 100),
            weight: 1,
        };
        let cfg = EdgeConfig {
            pools: vec![
                PoolConfig {
                    name: "a".into(),
                    backends: vec![shared],
                },
                PoolConfig {
                    name: "b".into(),
                    backends: vec![
                        shared,
                        BackendSpec {
                            ip: Ipv4Addr::new(10, 0, 0, 101),
                            weight: 1,
                        },
                    ],
                },
            ],
            ..EdgeConfig::default()
        };
        assert_eq!(cfg.union_backends().len(), 2);
    }

    #[test]
    fn health_tracker_downs_after_threshold() {
        let mut h = HealthTracker::new(2, 2);
        assert!(h.is_up());
        assert!(!h.on_failure());
        assert!(h.is_up(), "one failure below threshold");
        assert!(h.on_failure(), "second consecutive failure downs it");
        assert!(!h.is_up());
        assert!(!h.on_failure(), "already down");
    }

    #[test]
    fn health_tracker_readmits_after_threshold() {
        let mut h = HealthTracker::new(1, 2);
        assert!(h.on_failure());
        assert!(!h.on_success());
        assert!(!h.is_up(), "one success below threshold");
        assert!(h.on_success());
        assert!(h.is_up());
        assert_eq!(h.readmissions, 1);
    }

    #[test]
    fn mixed_streak_resets_counters() {
        let mut h = HealthTracker::new(2, 2);
        h.on_failure();
        h.on_success(); // resets the failure streak
        assert!(!h.on_failure());
        assert!(h.is_up(), "streak was broken, still one short");
        assert!(h.on_failure());
        assert!(!h.is_up());
    }

    #[test]
    fn weighted_rr_honors_weights_smoothly() {
        let mut rr = WeightedRr::new(2);
        let weights = [2, 1];
        let healthy = [true, true];
        let picks: Vec<usize> = (0..6)
            .map(|_| rr.pick(&weights, &healthy).unwrap())
            .collect();
        // Smooth WRR with weights (2, 1) interleaves: 0 1 0, not 0 0 1.
        assert_eq!(picks, vec![0, 1, 0, 0, 1, 0]);
    }

    #[test]
    fn weighted_rr_skips_unhealthy_and_recovers() {
        let mut rr = WeightedRr::new(3);
        let weights = [1, 1, 1];
        assert_eq!(rr.pick(&weights, &[false, true, false]), Some(1));
        assert_eq!(rr.pick(&weights, &[false, true, false]), Some(1));
        assert_eq!(rr.pick(&weights, &[false, false, false]), None);
        // All healthy again: rotation resumes over everyone.
        let mut seen = [false; 3];
        for _ in 0..3 {
            seen[rr.pick(&weights, &[true, true, true]).unwrap()] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }

    #[test]
    fn counters_merge_sums_fields() {
        let mut a = EdgeCounters {
            probes_sent: 1,
            retried: 2,
            lost: 3,
            ..EdgeCounters::default()
        };
        let b = EdgeCounters {
            probes_sent: 10,
            failed_over: 5,
            ..EdgeCounters::default()
        };
        a.merge(&b);
        assert_eq!(a.probes_sent, 11);
        assert_eq!(a.retried, 2);
        assert_eq!(a.failed_over, 5);
        assert_eq!(a.lost, 3);
    }

    #[test]
    fn edge_config_round_trips_through_json() {
        let cfg = EdgeConfig::default().early_drop(true).retry_budget(3);
        let json = serde_json::to_string(&cfg).unwrap();
        let back: EdgeConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
    }
}
