//! Workload profiles.

use serde::{Deserialize, Serialize};

/// The short-lived HTTP connection profile the paper's introduction
/// describes for Sina Weibo: a ~600-byte request, a ~1200-byte
/// response, one connection per request (HTTP keep-alive disabled).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HttpWorkload {
    /// Request payload length in bytes.
    pub request_len: u16,
    /// Response payload length in bytes.
    pub response_len: u16,
    /// Concurrent connections per server core (http_load runs a
    /// concurrency of 500 × cores in the paper's benchmarks).
    pub concurrency_per_core: u32,
    /// Requests per connection (HTTP keep-alive). The paper's
    /// benchmarks disable keep-alive (1 request per connection); larger
    /// values reproduce the *long-lived* regime of the introduction,
    /// where TCB management is infrequent and even the stock kernel
    /// scales.
    pub requests_per_conn: u32,
}

impl Default for HttpWorkload {
    fn default() -> Self {
        HttpWorkload {
            request_len: 600,
            response_len: 1_200,
            concurrency_per_core: 500,
            requests_per_conn: 1,
        }
    }
}

impl HttpWorkload {
    /// Total client concurrency for a server with `cores` cores.
    pub fn concurrency(&self, cores: u16) -> u32 {
        self.concurrency_per_core * u32::from(cores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let w = HttpWorkload::default();
        assert_eq!(w.request_len, 600);
        assert_eq!(w.response_len, 1_200);
        assert_eq!(w.concurrency(24), 12_000);
        assert_eq!(w.requests_per_conn, 1, "keep-alive off, as in the paper");
    }
}
