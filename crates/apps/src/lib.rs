//! Application models for the Fastsocket evaluation workloads.
//!
//! The paper evaluates with nginx (a web server answering short-lived
//! HTTP connections), HAProxy (a proxy that *actively* connects to
//! backends — the workload that exposes active-connection locality),
//! and `http_load` (a closed-loop client). This crate models:
//!
//! * [`sys::Sys`] — the syscall surface a worker process uses, binding
//!   the TCP stack, OS services and the current costed operation;
//! * [`web::WebServer`] — the nginx-like worker: accept → read request
//!   → write response → close;
//! * [`proxy::Proxy`] — the HAProxy-like worker: accept a client
//!   connection, open an **active** connection to a backend, relay one
//!   request/response, tear both down;
//! * [`peer::ClientSlot`] and [`peer::Backend`] — scripted remote
//!   endpoints (no CPU cost; they live across the wire) implementing
//!   correct TCP sequencing for the 9-packet short-lived exchange;
//! * [`workload::HttpWorkload`] — the 600-byte-request /
//!   1200-byte-response short-lived connection profile from the paper's
//!   introduction;
//! * [`edge`] — the resilient-edge mechanism layer: weighted backend
//!   pools, the health-check state machine, smooth weighted
//!   round-robin, and the resilience counters [`Proxy::with_edge`]
//!   wires into the proxy.

pub mod edge;
pub mod peer;
pub mod proxy;
pub mod sys;
pub mod web;
pub mod workload;

pub use edge::{BackendSpec, EdgeConfig, EdgeCounters, HealthTracker, PoolConfig, WeightedRr};
pub use peer::{Backend, ClientSlot};
pub use proxy::Proxy;
pub use sys::{Sys, Worker, LISTEN_TOKEN};
pub use web::WebServer;
pub use workload::HttpWorkload;
