//! Simulation configuration.

use serde::{Deserialize, Serialize};
use sim_apps::edge::EdgeConfig;
use sim_apps::proxy::ProxyConfig;
use sim_apps::web::WebConfig;
use sim_apps::HttpWorkload;
use sim_core::{secs_to_cycles, usecs_to_cycles, Cycles, SchedulerKind};
use sim_fault::FaultSchedule;
use sim_load::OpenLoopConfig;
use sim_mem::CacheCosts;
use sim_nic::{AtrConfig, BatchConfig, SteeringMode};
use sim_res::MemConfig;
use sim_sync::LockCosts;
use tcp_stack::stack::{FaultInjection, StackConfig};
use tcp_stack::{CcAlgo, CcConfig};

/// Which kernel is being simulated.
#[derive(Debug, Clone)]
pub enum KernelSpec {
    /// Stock Linux 2.6.32 ("base" in Figure 4).
    BaseLinux,
    /// Linux 3.13 with `SO_REUSEPORT`.
    Linux313,
    /// Fastsocket (on 2.6.32, as deployed).
    Fastsocket,
    /// An explicit configuration — used for Table 1's incremental
    /// feature columns and the ablation benches.
    Custom(Box<StackConfig>),
}

impl KernelSpec {
    /// Resolves to a full stack configuration for `cores` cores.
    pub fn resolve(&self, cores: u16) -> StackConfig {
        match self {
            KernelSpec::BaseLinux => StackConfig::base_linux(cores),
            KernelSpec::Linux313 => StackConfig::linux_313(cores),
            KernelSpec::Fastsocket => StackConfig::fastsocket(cores),
            KernelSpec::Custom(c) => {
                let mut c = (**c).clone();
                c.cores = cores;
                c
            }
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            KernelSpec::BaseLinux => "base-2.6.32",
            KernelSpec::Linux313 => "linux-3.13",
            KernelSpec::Fastsocket => "fastsocket",
            KernelSpec::Custom(_) => "custom",
        }
    }
}

/// Which server application runs on the simulated machine.
#[derive(Debug, Clone)]
pub enum AppSpec {
    /// nginx-like web server.
    Web(WebConfig),
    /// HAProxy-like proxy (client side passive, backend side active).
    Proxy(ProxyConfig),
}

impl AppSpec {
    /// A web server with default tuning.
    pub fn web() -> Self {
        AppSpec::Web(WebConfig::default())
    }

    /// A proxy with default tuning.
    pub fn proxy() -> Self {
        AppSpec::Proxy(ProxyConfig::default())
    }

    /// The service port.
    pub fn port(&self) -> u16 {
        match self {
            AppSpec::Web(w) => w.port,
            AppSpec::Proxy(p) => p.port,
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            AppSpec::Web(_) => "nginx",
            AppSpec::Proxy(_) => "haproxy",
        }
    }
}

/// Full configuration of one simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The kernel under test.
    pub kernel: KernelSpec,
    /// The server application.
    pub app: AppSpec,
    /// Number of server cores (= NIC queue pairs).
    pub cores: u16,
    /// NIC receive steering.
    pub steering: SteeringMode,
    /// Client workload profile.
    pub workload: HttpWorkload,
    /// Per-slot pause between connections, in cycles (0 = saturating
    /// closed loop; nonzero paces the load for utilization studies).
    pub think_time: Cycles,
    /// Client↔server round-trip time in cycles.
    pub rtt: Cycles,
    /// Warmup duration (statistics discarded).
    pub warmup: Cycles,
    /// Measured duration.
    pub measure: Cycles,
    /// RNG seed.
    pub seed: u64,
    /// Listen backlog per listen socket.
    pub backlog: usize,
    /// Per-client connection-attempt timeout in cycles.
    pub client_timeout: Cycles,
    /// Lock-model cost parameters (ablation knob).
    pub lock_costs: LockCosts,
    /// Cache-model cost parameters (ablation knob).
    pub cache_costs: CacheCosts,
    /// Flow Director ATR parameters (ablation knob).
    pub atr: AtrConfig,
    /// Packet-loss probability on the client↔server wire (the WAN
    /// side; the backend LAN is lossless). Lost segments are recovered
    /// by the stack's RTO retransmission.
    pub loss: f64,
    /// IsoStack-style architecture (related work, §5): all NIC
    /// interrupts target core 0, which runs *only* the network stack;
    /// worker processes occupy the remaining cores. The paper argues
    /// this dedicated core saturates under short-lived connections.
    pub dedicated_stack_core: bool,
    /// Whether the tracer records events (spans, lifecycle marks,
    /// dispatch counts). Off by default: a disabled tracer costs one
    /// branch per would-be event.
    pub trace: bool,
    /// Per-core trace ring capacity (events retained for inspection and
    /// chrome export; attribution and histograms are unaffected by
    /// overwrites).
    pub trace_ring_capacity: usize,
    /// Whether the `sim-check` sanitizers (lockdep, lockset race
    /// detection, partition lints) run. Defaults to on when the crate is
    /// built with the `check` feature, off otherwise; a disabled checker
    /// costs one branch per would-be hook.
    pub check: bool,
    /// Fault-injection knob forwarded to the stack (sanitizer
    /// validation only).
    pub fault: FaultInjection,
    /// Scheduled fault timeline (worker crashes, queue failures, core
    /// stalls, loss bursts, SYN floods). Non-empty schedules also turn
    /// on windowed throughput sampling and attach a
    /// [`sim_fault::RobustnessReport`] to the run report.
    pub faults: FaultSchedule,
    /// Memory-pressure cap on live TCBs forwarded to the stack
    /// (`None` = uncapped; see `StackConfig::tcb_cap`).
    pub tcb_cap: Option<u32>,
    /// Whether backlog overflow answers with SYN cookies (`None` =
    /// keep the kernel variant's default; chaos scenarios force it off
    /// to isolate the cookies' contribution under a SYN flood).
    pub syn_cookies: Option<bool>,
    /// Event-queue backend. Both produce bit-identical results (proven
    /// by the differential proptest and the cross-scheduler digest
    /// test); the heap is retained as the benchmarking baseline.
    pub scheduler: SchedulerKind,
    /// Open-loop workload (`sim-load`): arrivals come from a seeded
    /// arrival process instead of the closed-loop client slots. `None`
    /// (the default) keeps the closed-loop `http_load` model that every
    /// paper figure uses. The config digest canonicalizes a `None`
    /// away so closed-loop digests are unchanged by the field's
    /// existence.
    pub open_loop: Option<OpenLoopConfig>,
    /// Sliding-window bulk-transfer data plane (`sim-cc`): when set,
    /// responses stream as multi-segment sequence/ACK-driven transfers
    /// under the selected congestion controller instead of the
    /// single-packet response model. `None` (the default) keeps the
    /// 1-packet paths byte-identical to the pre-data-plane model.
    /// Trailing `Option` fields must stay **last**: the config digest
    /// canonicalizes a `None` away so legacy digests are unchanged by
    /// the field's existence.
    pub data_plane: Option<DataPlaneConfig>,
    /// Parallel lane-sharded execution (`run_sharded`): partition the
    /// simulated machine into per-lane event loops synchronized at the
    /// NIC boundary. `None` (the default) keeps the serial engine.
    /// Lane *count* forks result provenance (it changes the client→lane
    /// decomposition); the executor (`threads`) and `horizon` do not —
    /// the digest canonicalizes them away, which is exactly the
    /// serial==parallel bit-identity the differential oracle asserts.
    pub par: Option<ParConfig>,
    /// Edge-tier resilience (`sim_apps::edge`): weighted backend pools,
    /// health checks, failover retries, connection pooling, and the
    /// NIC's XDP-style early-drop stage. `None` (the default) keeps the
    /// plain round-robin proxy; the digest canonicalizes an absent
    /// config away so legacy digests are unchanged.
    pub edge: Option<EdgeConfig>,
    /// Memory accounting and pressure (`sim-res`): per-core ledgers of
    /// TCB / buffer bytes and embryo / TIME_WAIT / orphan buckets
    /// rolled into a `tcp_mem`-style budget, with the pressure
    /// reactions (window clamping, SYN drops, forced TIME_WAIT
    /// recycle, orphan kills) armed in the stack. `None` (the default)
    /// keeps the unaccounted legacy model byte-identical; the digest
    /// canonicalizes an absent config away so legacy digests are
    /// unchanged.
    pub mem: Option<MemConfig>,
}

/// Configuration of the parallel lane-sharded execution engine.
#[derive(Debug, Clone, Copy)]
pub struct ParConfig {
    /// Requested lane count. The engine uses the largest divisor of
    /// `cores` that is ≤ this (each lane owns an equal block of cores);
    /// an effective count of 1 falls back to the serial legacy engine.
    pub lanes: u16,
    /// Run lanes on host threads (`true`) or pump them serially on the
    /// calling thread (`false`). Result-identical by construction;
    /// excluded from the config digest.
    pub threads: bool,
    /// Conservative-sync window (lookahead horizon) in cycles. `None`
    /// picks the model's minimum cross-lane latency (`rtt / 2`), the
    /// largest horizon that is always safe. Values above that violate
    /// lookahead and are only useful to the negative determinism test.
    pub horizon: Option<Cycles>,
}

impl ParConfig {
    /// `lanes` lanes, threaded executor, default horizon.
    pub fn lanes(n: u16) -> ParConfig {
        ParConfig {
            lanes: n,
            threads: true,
            horizon: None,
        }
    }

    /// Switches between the threaded and serial-reference executors
    /// (builder style).
    pub fn threads(mut self, on: bool) -> Self {
        self.threads = on;
        self
    }

    /// Overrides the sync horizon in cycles (builder style).
    pub fn horizon(mut self, cycles: Cycles) -> Self {
        self.horizon = Some(cycles);
        self
    }
}

/// Configuration of the sliding-window data plane (see
/// [`tcp_stack::cc`]).
#[derive(Debug, Clone, Copy)]
pub struct DataPlaneConfig {
    /// Congestion-control algorithm driving cwnd.
    pub cc: CcAlgo,
    /// Maximum segment size in bytes.
    pub mss: u16,
    /// Initial congestion window in segments (RFC 6928 default: 10).
    pub init_cwnd_segs: u16,
    /// Per-connection receive-buffer budget in bytes, backing the
    /// advertised window.
    pub rcv_buf: u32,
    /// NIC GSO/GRO batch-offload and ECN-marking model.
    pub batch: BatchConfig,
    /// Response body size streamed per request, in bytes.
    pub response_bytes: u32,
}

impl Default for DataPlaneConfig {
    fn default() -> Self {
        DataPlaneConfig {
            cc: CcAlgo::NewReno,
            mss: 1448,
            init_cwnd_segs: 10,
            rcv_buf: 65_535,
            batch: BatchConfig::default(),
            response_bytes: 65_536,
        }
    }
}

impl DataPlaneConfig {
    /// The stack-facing slice of this configuration.
    pub fn cc_config(&self) -> CcConfig {
        CcConfig {
            algo: self.cc,
            mss: self.mss,
            init_cwnd_segs: self.init_cwnd_segs,
            rcv_buf: self.rcv_buf,
            batch: self.batch,
        }
    }
}

impl SimConfig {
    /// A configuration with the paper's defaults: 100 µs LAN RTT, RSS
    /// steering, `http_load` concurrency of 500 × cores, 0.2 s warmup,
    /// 1 s measurement.
    pub fn new(kernel: KernelSpec, app: AppSpec, cores: u16) -> Self {
        SimConfig {
            kernel,
            app,
            cores,
            steering: SteeringMode::Rss,
            workload: HttpWorkload::default(),
            think_time: 0,
            rtt: usecs_to_cycles(100.0),
            warmup: secs_to_cycles(0.2),
            measure: secs_to_cycles(1.0),
            seed: 0xfa57_50c7,
            backlog: 8_192,
            client_timeout: secs_to_cycles(2.0),
            lock_costs: LockCosts::default(),
            cache_costs: CacheCosts::default(),
            atr: AtrConfig::default(),
            loss: 0.0,
            dedicated_stack_core: false,
            trace: false,
            trace_ring_capacity: sim_trace::DEFAULT_RING_CAPACITY,
            check: cfg!(feature = "check"),
            fault: FaultInjection::None,
            faults: FaultSchedule::default(),
            tcb_cap: None,
            syn_cookies: None,
            scheduler: SchedulerKind::default(),
            open_loop: None,
            data_plane: None,
            par: None,
            edge: None,
            mem: None,
        }
    }

    /// Sets the client-wire packet-loss probability (builder style).
    pub fn loss(mut self, p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "loss probability in [0,1)");
        self.loss = p;
        self
    }

    /// Sets the warmup duration in seconds (builder style).
    pub fn warmup_secs(mut self, secs: f64) -> Self {
        self.warmup = secs_to_cycles(secs);
        self
    }

    /// Sets the measurement duration in seconds (builder style).
    pub fn measure_secs(mut self, secs: f64) -> Self {
        self.measure = secs_to_cycles(secs);
        self
    }

    /// Sets the NIC steering mode (builder style).
    pub fn steering(mut self, mode: SteeringMode) -> Self {
        self.steering = mode;
        self
    }

    /// Sets the RNG seed (builder style).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets total client concurrency directly (builder style).
    pub fn concurrency(mut self, total: u32) -> Self {
        self.workload.concurrency_per_core = (total / u32::from(self.cores.max(1))).max(1);
        self
    }

    /// Sets per-slot think time in seconds, pacing the offered load
    /// (builder style).
    pub fn think_secs(mut self, secs: f64) -> Self {
        self.think_time = secs_to_cycles(secs);
        self
    }

    /// Enables or disables event tracing (builder style).
    pub fn trace(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }

    /// Enables or disables the sanitizers (builder style).
    pub fn check(mut self, on: bool) -> Self {
        self.check = on;
        self
    }

    /// Selects a fault-injection knob (builder style); implies nothing
    /// about `check` — enable that separately to observe the fault.
    pub fn fault(mut self, fault: FaultInjection) -> Self {
        self.fault = fault;
        self
    }

    /// Installs a scheduled fault timeline (builder style).
    pub fn faults(mut self, schedule: FaultSchedule) -> Self {
        self.faults = schedule;
        self
    }

    /// Caps the number of live TCBs (builder style); SYNs beyond the
    /// cap are dropped by admission control.
    pub fn tcb_cap(mut self, cap: u32) -> Self {
        self.tcb_cap = Some(cap);
        self
    }

    /// Forces SYN cookies on or off (builder style), overriding the
    /// kernel variant's default.
    pub fn syn_cookies(mut self, on: bool) -> Self {
        self.syn_cookies = Some(on);
        self
    }

    /// Sets the per-client connection-attempt timeout in seconds
    /// (builder style). Fault scenarios shorten this so clients
    /// stranded by a crashed worker re-attempt within the run.
    pub fn client_timeout_secs(mut self, secs: f64) -> Self {
        self.client_timeout = secs_to_cycles(secs);
        self
    }

    /// Selects the event-queue backend (builder style).
    pub fn scheduler(mut self, kind: SchedulerKind) -> Self {
        self.scheduler = kind;
        self
    }

    /// Switches the run to an open-loop workload (builder style): the
    /// given arrival process replaces the closed-loop client slots.
    /// See [`OpenLoopConfig`].
    pub fn open_loop(mut self, cfg: OpenLoopConfig) -> Self {
        self.open_loop = Some(cfg);
        self
    }

    /// Arms the sliding-window data plane (builder style): responses
    /// stream as sequence/ACK-driven bulk transfers under `cfg`'s
    /// congestion controller. See [`DataPlaneConfig`].
    pub fn data_plane(mut self, cfg: DataPlaneConfig) -> Self {
        self.data_plane = Some(cfg);
        self
    }

    /// Arms the parallel lane-sharded engine (builder style). See
    /// [`ParConfig`].
    pub fn par(mut self, cfg: ParConfig) -> Self {
        self.par = Some(cfg);
        self
    }

    /// Shorthand for [`par`](Self::par) with `n` threaded lanes.
    pub fn par_lanes(mut self, n: u16) -> Self {
        self.par = Some(ParConfig::lanes(n));
        self
    }

    /// Arms the resilient edge tier (builder style): weighted backend
    /// pools with health checks, failover retries, and (optionally) the
    /// NIC early-drop stage. Proxy workloads only. See [`EdgeConfig`].
    pub fn edge(mut self, cfg: EdgeConfig) -> Self {
        self.edge = Some(cfg);
        self
    }

    /// Arms the memory-accounting and pressure subsystem (builder
    /// style): every TCB, buffer byte, and TIME_WAIT / orphan bucket
    /// is charged against `cfg`'s budget and the stack's pressure
    /// reactions engage at its thresholds. See [`MemConfig`].
    pub fn mem(mut self, cfg: MemConfig) -> Self {
        self.mem = Some(cfg);
        self
    }

    /// FNV-1a hash of the full configuration (via its `Debug` form),
    /// surfaced in reports so results can be tied back to the exact
    /// parameter set that produced them. The scheduler backend is
    /// canonicalized out: it is an implementation detail proven
    /// result-identical, so it must not fork result provenance.
    pub fn config_digest(&self) -> String {
        let mut canon = self.clone();
        canon.scheduler = SchedulerKind::default();
        // Of the parallel-engine knobs only the lane count is
        // provenance: the executor and horizon are implementation
        // details the serial==parallel differential oracle proves
        // immaterial.
        canon.par = canon.par.map(|p| ParConfig {
            lanes: p.lanes,
            threads: false,
            horizon: None,
        });
        let mut s = format!("{canon:?}");
        if canon.open_loop.is_none() {
            // Closed-loop configs must digest exactly as they did
            // before the field existed (pinned by the golden-digest
            // regression test), so an absent open loop is erased from
            // the canonical form rather than printed as `None`.
            s = s.replace(", open_loop: None", "");
        }
        if canon.data_plane.is_none() {
            // Same treatment for the data plane: 1-packet configs must
            // digest exactly as they did before the field existed.
            s = s.replace(", data_plane: None", "");
        }
        if canon.par.is_none() {
            // Same treatment for an absent parallel engine.
            s = s.replace(", par: None", "");
        }
        if canon.edge.is_none() {
            // Same treatment for an absent edge tier.
            s = s.replace(", edge: None", "");
        }
        if canon.mem.is_none() {
            // Same treatment for absent memory accounting.
            s = s.replace(", mem: None", "");
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in s.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        format!("{h:016x}")
    }
}

/// Summary row identifying a run (used by experiment outputs).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunLabel {
    /// Kernel label.
    pub kernel: String,
    /// Application label.
    pub app: String,
    /// Core count.
    pub cores: u16,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_specs_resolve() {
        let base = KernelSpec::BaseLinux.resolve(8);
        assert_eq!(base.cores, 8);
        assert!(!base.rfd);
        let fs = KernelSpec::Fastsocket.resolve(24);
        assert!(fs.rfd);
        assert_eq!(fs.cores, 24);
        let custom = KernelSpec::Custom(Box::new(StackConfig::fastsocket(4))).resolve(16);
        assert_eq!(custom.cores, 16, "custom spec re-targets core count");
    }

    #[test]
    fn builder_methods_chain() {
        let c = SimConfig::new(KernelSpec::BaseLinux, AppSpec::web(), 4)
            .warmup_secs(0.1)
            .measure_secs(0.5)
            .seed(7)
            .concurrency(2_000);
        assert_eq!(c.seed, 7);
        assert_eq!(c.workload.concurrency_per_core, 500);
        assert_eq!(c.warmup, sim_core::secs_to_cycles(0.1));
    }

    #[test]
    fn config_digest_is_stable_and_seed_sensitive() {
        let a = SimConfig::new(KernelSpec::Fastsocket, AppSpec::web(), 4);
        let b = SimConfig::new(KernelSpec::Fastsocket, AppSpec::web(), 4);
        assert_eq!(a.config_digest(), b.config_digest());
        let c = b.seed(1);
        assert_ne!(a.config_digest(), c.config_digest());
        assert!(a.trace(true).trace);
    }

    #[test]
    fn config_digest_ignores_scheduler_backend() {
        let a = SimConfig::new(KernelSpec::Fastsocket, AppSpec::web(), 4);
        let b = SimConfig::new(KernelSpec::Fastsocket, AppSpec::web(), 4)
            .scheduler(SchedulerKind::Heap);
        assert_eq!(a.config_digest(), b.config_digest());
    }

    #[test]
    fn config_digest_unchanged_by_absent_open_loop() {
        // Pinned from before `open_loop` existed: the canonicalization
        // must keep every closed-loop digest stable.
        let a = SimConfig::new(KernelSpec::Fastsocket, AppSpec::web(), 4);
        assert_eq!(a.config_digest(), "827cde302cffa2a4");
        let b = SimConfig::new(KernelSpec::Fastsocket, AppSpec::web(), 4)
            .open_loop(OpenLoopConfig::poisson(50_000.0));
        assert_ne!(a.config_digest(), b.config_digest());
    }

    #[test]
    fn config_digest_unchanged_by_absent_data_plane() {
        // Same pin as above: arming the data plane must fork the
        // digest, but its absence must leave legacy digests alone.
        let a = SimConfig::new(KernelSpec::Fastsocket, AppSpec::web(), 4);
        assert_eq!(a.config_digest(), "827cde302cffa2a4");
        let b = SimConfig::new(KernelSpec::Fastsocket, AppSpec::web(), 4)
            .data_plane(DataPlaneConfig::default());
        assert_ne!(a.config_digest(), b.config_digest());
        let c =
            SimConfig::new(KernelSpec::Fastsocket, AppSpec::web(), 4).data_plane(DataPlaneConfig {
                cc: CcAlgo::Cubic,
                ..DataPlaneConfig::default()
            });
        assert_ne!(
            b.config_digest(),
            c.config_digest(),
            "CC algo is provenance"
        );
    }

    #[test]
    fn config_digest_unchanged_by_absent_par() {
        // Same pin again: the parallel-engine knob must leave legacy
        // digests alone when absent.
        let a = SimConfig::new(KernelSpec::Fastsocket, AppSpec::web(), 4);
        assert_eq!(a.config_digest(), "827cde302cffa2a4");
        let b = SimConfig::new(KernelSpec::Fastsocket, AppSpec::web(), 4).par_lanes(4);
        assert_ne!(
            a.config_digest(),
            b.config_digest(),
            "lane count is provenance"
        );
    }

    #[test]
    fn config_digest_unchanged_by_absent_edge() {
        // Same pin again: the edge-tier knob must leave legacy digests
        // alone when absent, and fork them when armed.
        let a = SimConfig::new(KernelSpec::Fastsocket, AppSpec::web(), 4);
        assert_eq!(a.config_digest(), "827cde302cffa2a4");
        let b =
            SimConfig::new(KernelSpec::Fastsocket, AppSpec::proxy(), 4).edge(EdgeConfig::default());
        let c = SimConfig::new(KernelSpec::Fastsocket, AppSpec::proxy(), 4);
        assert_ne!(b.config_digest(), c.config_digest());
        let d = SimConfig::new(KernelSpec::Fastsocket, AppSpec::proxy(), 4)
            .edge(EdgeConfig::default().early_drop(true));
        assert_ne!(
            b.config_digest(),
            d.config_digest(),
            "early-drop arming is provenance"
        );
    }

    #[test]
    fn config_digest_unchanged_by_absent_mem() {
        // Same pin again: memory accounting must leave legacy digests
        // alone when absent, and fork them when armed.
        let a = SimConfig::new(KernelSpec::Fastsocket, AppSpec::web(), 4);
        assert_eq!(a.config_digest(), "827cde302cffa2a4");
        let b =
            SimConfig::new(KernelSpec::Fastsocket, AppSpec::web(), 4).mem(MemConfig::ram_mb(512));
        assert_ne!(a.config_digest(), b.config_digest());
        let c = SimConfig::new(KernelSpec::Fastsocket, AppSpec::web(), 4)
            .mem(MemConfig::ram_mb(512).scaled(16));
        assert_ne!(
            b.config_digest(),
            c.config_digest(),
            "modeling scale is provenance"
        );
    }

    #[test]
    fn config_digest_ignores_par_executor_and_horizon() {
        let base = || SimConfig::new(KernelSpec::Fastsocket, AppSpec::web(), 8);
        let threads = base().par(ParConfig::lanes(4));
        let serial = base().par(ParConfig::lanes(4).threads(false));
        let horizon = base().par(ParConfig::lanes(4).horizon(999));
        assert_eq!(threads.config_digest(), serial.config_digest());
        assert_eq!(threads.config_digest(), horizon.config_digest());
        let two = base().par(ParConfig::lanes(2));
        assert_ne!(threads.config_digest(), two.config_digest());
    }

    #[test]
    fn app_specs_have_ports_and_labels() {
        assert_eq!(AppSpec::web().port(), 80);
        assert_eq!(AppSpec::proxy().label(), "haproxy");
        assert_eq!(KernelSpec::Fastsocket.label(), "fastsocket");
    }
}
