//! In-text microbenchmarks:
//!
//! * §2.1: `inet_lookup_listener` consumes 0.26% of CPU cycles on one
//!   core but 24.2% per core at 24 cores under `SO_REUSEPORT` (the
//!   O(n) bucket walk);
//! * §1/§4.2.4: spin locks consume 9% (TCB) + 11% (VFS) of cycles on
//!   the 8-core production HAProxy, and no more than 6% total after
//!   Fastsocket.

use serde::{Deserialize, Serialize};
use sim_core::CycleClass;

use crate::config::{AppSpec, KernelSpec, SimConfig};
use crate::sim::Simulation;

/// One point of the listener-lookup cost curve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LookupSharePoint {
    /// Core count (= number of `SO_REUSEPORT` listen socket copies).
    pub cores: u16,
    /// Share of busy cycles spent in listener lookup.
    pub share: f64,
    /// Average bucket entries walked per lookup.
    pub avg_walk: f64,
}

/// Paper reference: 0.26% at 1 core, 24.2% at 24 cores.
pub const PAPER_LOOKUP_SHARE: [(u16, f64); 2] = [(1, 0.0026), (24, 0.242)];

/// Measures the `inet_lookup_listener` cycle share across core counts
/// under SO_REUSEPORT.
pub fn reuseport_lookup_share(core_counts: &[u16], measure_secs: f64) -> Vec<LookupSharePoint> {
    core_counts
        .iter()
        .map(|&cores| {
            let cfg = SimConfig::new(KernelSpec::Linux313, AppSpec::web(), cores)
                .warmup_secs(0.1)
                .measure_secs(measure_secs);
            let r = Simulation::new(cfg).run();
            LookupSharePoint {
                cores,
                share: r.cycle_share(CycleClass::ListenLookup),
                avg_walk: r.avg_listen_walk,
            }
        })
        .collect()
}

/// Cycle shares relevant to the production profiling claims.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LockCycleShares {
    /// Kernel label.
    pub kernel: String,
    /// Core count.
    pub cores: u16,
    /// Spin-wait share of busy cycles.
    pub spin: f64,
    /// VFS share (the "11% in VFS" half of the claim).
    pub vfs: f64,
    /// Throughput context.
    pub cps: f64,
}

/// Measures spin/VFS cycle shares for the production-profile claim
/// (8-core base HAProxy) and the post-deployment claim (≤6% spin).
pub fn lock_cycle_shares(cores: u16, measure_secs: f64) -> Vec<LockCycleShares> {
    [KernelSpec::BaseLinux, KernelSpec::Fastsocket]
        .into_iter()
        .map(|kernel| {
            let cfg = SimConfig::new(kernel, AppSpec::proxy(), cores)
                .warmup_secs(0.1)
                .measure_secs(measure_secs);
            let r = Simulation::new(cfg).run();
            LockCycleShares {
                kernel: r.kernel.clone(),
                cores,
                spin: r.lock_spin_share(),
                vfs: r.cycle_share(CycleClass::Vfs),
                cps: r.throughput_cps,
            }
        })
        .collect()
}
